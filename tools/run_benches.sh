#!/usr/bin/env bash
# Runs the bench_perf_*, bench_stream_* and bench_query_* google-benchmark
# binaries with JSON output and aggregates the results into BENCH_perf.json
# at the repo root, so the perf trajectory is tracked across PRs. User
# counters (the serving bench's p50/p99/qps) are kept in the merge, and
# the BM_ShardedIngest rows are distilled into a top-level
# "shard_scaling" block (events/s and speedup-vs-single-writer per
# shard count — the ROADMAP item 1 curve).
#
# Usage: tools/run_benches.sh [build_dir] [benchmark_filter]
#   build_dir         defaults to "build"
#   benchmark_filter  optional --benchmark_filter regex applied to every binary
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"

# Keep freed arenas mapped so repeated large builds reuse warm pages instead
# of paying mmap/page-fault churn per iteration; applied uniformly so runs
# are comparable across PRs.
export GLIBC_TUNABLES="${GLIBC_TUNABLES:-glibc.malloc.mmap_max=0:glibc.malloc.trim_threshold=-1}"
BUILD_DIR="${1:-$REPO_ROOT/build}"
FILTER="${2:-}"
OUT_DIR="$BUILD_DIR/bench_json"
mkdir -p "$OUT_DIR"

declare -a JSON_FILES=()
for bin in "$BUILD_DIR"/bench_perf_* "$BUILD_DIR"/bench_stream_* \
           "$BUILD_DIR"/bench_query_*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  out="$OUT_DIR/$name.json"
  echo ">>> $name"
  args=(--benchmark_format=json --benchmark_out="$out" \
        --benchmark_out_format=json)
  if [ -n "$FILTER" ]; then
    args+=("--benchmark_filter=$FILTER")
  fi
  "$bin" "${args[@]}" >/dev/null
  JSON_FILES+=("$out")
done

if [ "${#JSON_FILES[@]}" -eq 0 ]; then
  echo "no bench_perf_*/bench_stream_*/bench_query_* binaries found in" \
       "$BUILD_DIR (build them first)" >&2
  exit 1
fi

python3 - "$REPO_ROOT/BENCH_perf.json" "${JSON_FILES[@]}" <<'EOF'
import json, sys

out_path, *inputs = sys.argv[1:]
merged = {"schema": 1, "benches": {}}
for path in inputs:
    with open(path) as f:
        data = json.load(f)
    name = path.rsplit("/", 1)[-1].removesuffix(".json")
    ctx = data.get("context", {})
    merged.setdefault("context", {
        "host": ctx.get("host_name"),
        "num_cpus": ctx.get("num_cpus"),
        "build_type": ctx.get("library_build_type"),
        "date": ctx.get("date"),
    })
    bench = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        bench[b["name"]] = {
            "real_time_ns": b["real_time"],
            "cpu_time_ns": b["cpu_time"],
            "iterations": b["iterations"],
        }
        if "items_per_second" in b:
            bench[b["name"]]["items_per_second"] = b["items_per_second"]
        # google-benchmark user counters (state.counters[...]): the
        # serving bench reports p50/p99/qps/interference through these.
        known = {"real_time", "cpu_time", "iterations", "items_per_second",
                 "name", "run_name", "run_type", "family_index",
                 "per_family_instance_index", "repetitions",
                 "repetition_index", "threads", "time_unit"}
        for key, value in b.items():
            if key not in known and isinstance(value, (int, float)):
                bench[b["name"]][key] = value
    merged["benches"][name] = bench

# Shard-scaling curve (docs/STREAMING.md, "Sharded ingestion"): distill
# the BM_ShardedIngest/N rows into one comparable record — events/s per
# shard count plus the speedup over the single-writer (N=1) baseline.
# On this single-CPU CI host the curve measures ring/barrier overhead,
# not parallel speedup; the raw rows stay in "benches" either way.
curve = {}
for bench in merged["benches"].values():
    for name, row in bench.items():
        # Row names look like "BM_ShardedIngest/4/real_time" (the bench
        # uses a wall-clock base; see bench_stream_throughput.cc).
        parts = name.split("/")
        if parts[0] == "BM_ShardedIngest" and len(parts) > 1 \
                and parts[1].isdigit():
            curve[parts[1]] = row.get("items_per_second")
if curve and curve.get("1"):
    merged["shard_scaling"] = {
        "bench": "BM_ShardedIngest",
        "events_per_second": curve,
        "speedup_vs_single_writer": {
            shards: round(rate / curve["1"], 4)
            for shards, rate in curve.items() if rate is not None
        },
    }

with open(out_path, "w") as f:
    json.dump(merged, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}")
EOF
