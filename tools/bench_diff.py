#!/usr/bin/env python3
"""Compare two BENCH_perf.json files and flag regressions.

Usage:
    tools/bench_diff.py BASELINE.json CURRENT.json [--threshold 1.15]
                        [--metric cpu_time_ns|real_time_ns] [--filter REGEX]

Prints a per-benchmark table of baseline vs current times with the ratio
(current / baseline; > 1 is slower), then exits non-zero when any
benchmark regressed by more than the threshold factor. Benchmarks present
in only one file are listed but never fail the run (new benches appear,
old ones get renamed — that is not a regression).

Intended use: stash the committed BENCH_perf.json, rerun
tools/run_benches.sh, and diff —

    cp BENCH_perf.json /tmp/base.json
    tools/run_benches.sh
    tools/bench_diff.py /tmp/base.json BENCH_perf.json

Numbers on the emulated CI host are noisy; 1.15 (the default) tolerates
run-to-run jitter while catching real order-of-magnitude slips. Raise it
(e.g. --threshold 1.3) for very short micro benches.
"""

import argparse
import json
import re
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    if "benches" not in data:
        raise SystemExit(f"{path}: not a BENCH_perf.json (no 'benches' key)")
    flat = {}
    for binary, benches in data["benches"].items():
        for name, metrics in benches.items():
            flat[f"{binary}:{name}"] = metrics
    return flat


def main():
    parser = argparse.ArgumentParser(
        description="Compare two BENCH_perf.json files")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=1.15,
                        help="fail when current/baseline exceeds this "
                             "(default 1.15)")
    parser.add_argument("--metric", default="cpu_time_ns",
                        choices=["cpu_time_ns", "real_time_ns"],
                        help="which time to compare (default cpu_time_ns)")
    parser.add_argument("--filter", default="",
                        help="only compare benchmarks matching this regex")
    args = parser.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    pattern = re.compile(args.filter) if args.filter else None

    shared = sorted(k for k in base if k in cur
                    and (pattern is None or pattern.search(k)))
    only_base = sorted(k for k in base if k not in cur
                       and (pattern is None or pattern.search(k)))
    only_cur = sorted(k for k in cur if k not in base
                      and (pattern is None or pattern.search(k)))

    if not shared and not only_base and not only_cur:
        raise SystemExit("no benchmarks matched")

    width = max((len(k) for k in shared), default=20)
    regressions = []
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    for key in shared:
        b = base[key].get(args.metric)
        c = cur[key].get(args.metric)
        if not b or not c:
            continue
        ratio = c / b
        flag = ""
        if ratio > args.threshold:
            flag = "  << REGRESSION"
            regressions.append((key, ratio))
        elif ratio < 1.0 / args.threshold:
            flag = "  (faster)"
        print(f"{key:<{width}}  {b:>12.0f}  {c:>12.0f}  {ratio:5.2f}{flag}")

    for key in only_base:
        print(f"{key:<{width}}  only in baseline (removed or renamed)")
    for key in only_cur:
        print(f"{key:<{width}}  only in current (new benchmark)")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.2f}x:", file=sys.stderr)
        for key, ratio in regressions:
            print(f"  {key}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"\nno regressions beyond {args.threshold:.2f}x "
          f"({len(shared)} benchmarks compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
