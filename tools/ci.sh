#!/usr/bin/env bash
# Tier-1 gate in one command: lint + configure + build + ctest.
#
#   tools/ci.sh                         # release build, all tests
#   BIKEGRAPH_SANITIZE=address tools/ci.sh          # ASan build
#   BIKEGRAPH_SANITIZE=undefined tools/ci.sh        # UBSan build
#   BIKEGRAPH_SANITIZE=thread tools/ci.sh           # TSan build (see note)
#   BIKEGRAPH_SANITIZE=leak tools/ci.sh             # LSan build
#   tools/ci.sh -R community_detector_test          # extra args go to ctest
#
# The default run starts with tools/lint.py (pure Python, no compiler —
# fails in seconds on a repo-invariant violation) and builds with the full
# diagnostic set promoted to errors (BIKEGRAPH_WERROR=ON is the CMake
# default; set BIKEGRAPH_WERROR=OFF in the environment to triage new
# warnings without the gate).
#
# TSan note: the query serving layer (src/query) runs real reader
# threads against the live publisher, and the sharded stream engine runs
# one worker thread per shard behind SPSC rings, so
# BIKEGRAPH_SANITIZE=thread gates the stream and query suites by default
# — stream_publisher_test and query_concurrent_test race readers pinning
# epochs against the publishing thread, and stream_shard_test /
# stream_reorder_test / stream_snapshot_delta_test /
# stream_durability_test race the shard workers against the ingest
# thread's rings and barriers.
#
# Opt-in sanitizer matrix (the flag must come first): after the regular
# FULL run, build the tree into build-asan/ and build-ubsan/ and re-run
# a ctest subset under each. Extra args select the sanitized subset only
# — the unsanitized gate always runs everything; with none, the
# streaming suites (including stream_reorder_test: the reorder heap /
# expiry ring interplay is exactly where lifetime bugs would live),
# warm-start and grid suites run by default.
#
#   tools/ci.sh --sanitize-matrix                   # default subset
#   tools/ci.sh --sanitize-matrix -R stream         # explicit subset
#
# Bench smoke (the flag must come first): after the test pass, run every
# bench_stream_* / bench_query_* binary once with a minimal measuring
# budget — a cheap
# crash/assert canary for the benchmark code itself (it measures nothing
# meaningful; use tools/run_benches.sh + tools/bench_diff.py to track
# performance).
#
#   tools/ci.sh --bench-smoke
#
# Durability/chaos gate (the flag must come first): after the regular
# run, re-run the crash-recovery and hostile-input suites
# (stream_durability_test: randomized kill-point recovery, torn tails,
# corrupt checkpoints; stream_chaos_test: demand surges, outages, clock
# skew, duplicate storms, boundary floods) under ASan and UBSan — the
# memory- and UB-sensitive paths ISSUE durability acceptance names.
#
#   tools/ci.sh --chaos
#
# Fault-schedule gate (the flag must come first): after the regular run,
# re-run the deterministic I/O fault-injection suite (stream_fault_test:
# randomized FaultPlans × kill-point recovery, ENOSPC self-heal, torn
# checkpoint renames, retry/backoff determinism, degraded mode) plus the
# crash-recovery suite under ASan and UBSan — the fault paths allocate
# and tear down file state aggressively, exactly where lifetime bugs
# would hide.
#
#   tools/ci.sh --faults
#
# Deep-analysis gate (the flag must come first; takes no ctest args):
# rebuild the whole tree — src, tests, benches, tools, examples — into
# build-analyze/ under GCC's interprocedural -fanalyzer, capture the
# compiler output, and gate every -Wanalyzer-* finding against
# tools/analyzer_suppressions.txt via tools/check_analyzer.py. Exits
# nonzero on any unsuppressed finding; every suppression entry carries a
# written justification. Substantially slower than a normal build — run
# it before merging analyzer-sensitive work, not on every edit.
#
#   tools/ci.sh --analyze
#
# The build directory defaults to build/ (build-asan/, build-ubsan/,
# build-tsan/, build-lsan/ or build-analyze/ for the special modes, so
# they never clobber the main tree).
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
SANITIZE="${BIKEGRAPH_SANITIZE:-}"
WERROR="${BIKEGRAPH_WERROR:-ON}"

MATRIX=0
BENCH_SMOKE=0
CHAOS=0
FAULTS=0
ANALYZE=0
while :; do
  case "${1:-}" in
    --sanitize-matrix) MATRIX=1; shift ;;
    --bench-smoke)     BENCH_SMOKE=1; shift ;;
    --chaos)           CHAOS=1; shift ;;
    --faults)          FAULTS=1; shift ;;
    --analyze)         ANALYZE=1; shift ;;
    *) break ;;
  esac
done
for arg in "$@"; do
  if [ "$arg" = "--sanitize-matrix" ] || [ "$arg" = "--bench-smoke" ] ||
     [ "$arg" = "--chaos" ] || [ "$arg" = "--faults" ] ||
     [ "$arg" = "--analyze" ]; then
    echo "$arg must come before any ctest arguments" >&2
    exit 2
  fi
done

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

if [ "$ANALYZE" = 1 ]; then
  BUILD_DIR="${BUILD_DIR:-$ROOT/build-analyze}"
  LOG="$BUILD_DIR/analyze-build.log"
  echo ">>> deep analysis: GCC -fanalyzer over the full tree"
  cmake -B "$BUILD_DIR" -S "$ROOT" -DBIKEGRAPH_ANALYZE=ON \
        -DBIKEGRAPH_WERROR=OFF -DBIKEGRAPH_SANITIZE=""
  # No -Werror here: the gate must see every finding, not stop at the
  # first. The log (stdout+stderr) is what check_analyzer.py parses.
  mkdir -p "$BUILD_DIR"
  cmake --build "$BUILD_DIR" -j "$JOBS" 2>&1 | tee "$LOG"
  python3 "$ROOT/tools/check_analyzer.py" --log "$LOG" \
          --suppressions "$ROOT/tools/analyzer_suppressions.txt"
  exit 0
fi

case "$SANITIZE" in
  "")        BUILD_DIR="${BUILD_DIR:-$ROOT/build}" ;;
  address)   BUILD_DIR="${BUILD_DIR:-$ROOT/build-asan}" ;;
  undefined) BUILD_DIR="${BUILD_DIR:-$ROOT/build-ubsan}" ;;
  thread)    BUILD_DIR="${BUILD_DIR:-$ROOT/build-tsan}" ;;
  leak)      BUILD_DIR="${BUILD_DIR:-$ROOT/build-lsan}" ;;
  *) echo "BIKEGRAPH_SANITIZE must be empty, 'address', 'undefined'," \
          "'thread' or 'leak'" >&2
     exit 2 ;;
esac

# Repo-invariant lint first: pure Python, fails in seconds, and the same
# checks also run as the `lint` / `lint_golden_test` ctest targets.
python3 "$ROOT/tools/lint.py" --root "$ROOT"
python3 "$ROOT/tools/lint.py" --root "$ROOT" --selftest

# The threaded surface is the publisher hand-off, the query serving
# layer, and the shard workers behind the sharded engine; default the
# thread gate to exactly those suites (explicit ctest args still
# override). 'shard' is matched by 'stream' (stream_shard_test) but is
# named anyway so the intent survives a test-file rename. The
# suppression file silences one documented libstdc++-internal report
# (see tools/tsan_suppressions.txt) — races in repo code still fail the
# gate.
if [ "$SANITIZE" = thread ]; then
  export TSAN_OPTIONS="suppressions=$ROOT/tools/tsan_suppressions.txt${TSAN_OPTIONS:+:$TSAN_OPTIONS}"
  if [ "$#" -eq 0 ] && [ "$MATRIX" = 0 ]; then
    set -- -R 'stream|query|shard'
  fi
fi

cmake -B "$BUILD_DIR" -S "$ROOT" -DBIKEGRAPH_SANITIZE="$SANITIZE" \
      -DBIKEGRAPH_WERROR="$WERROR"
cmake --build "$BUILD_DIR" -j "$JOBS"
if [ "$MATRIX" = 1 ]; then
  # The tier-1 gate itself: matrix args select the sanitized subset
  # below, never narrow this run.
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" "$@"
fi

if [ "$BENCH_SMOKE" = 1 ]; then
  echo ">>> bench smoke: one minimal pass over the stream/query benches"
  found=0
  for bin in "$BUILD_DIR"/bench_stream_* "$BUILD_DIR"/bench_query_*; do
    [ -x "$bin" ] || continue
    found=1
    echo ">>> $(basename "$bin")"
    "$bin" --benchmark_min_time=0.01 >/dev/null
  done
  if [ "$found" = 0 ]; then
    echo "no bench_stream_*/bench_query_* binaries in $BUILD_DIR" \
         "(benches disabled?)" >&2
    exit 1
  fi
fi

if [ "$CHAOS" = 1 ]; then
  # The plain-build pass already ran above (the suites are part of the
  # full ctest); what --chaos adds is the sanitized re-runs.
  for san in address undefined; do
    echo ">>> chaos gate: $san"
    env -u BUILD_DIR BIKEGRAPH_SANITIZE="$san" \
        "${BASH_SOURCE[0]}" -R 'stream_durability|stream_chaos'
  done
fi

if [ "$FAULTS" = 1 ]; then
  # Plain-build pass already covered the suites; the gate's value is the
  # sanitized re-runs over the fault-injection and recovery paths.
  for san in address undefined; do
    echo ">>> fault gate: $san"
    env -u BUILD_DIR BIKEGRAPH_SANITIZE="$san" \
        "${BASH_SOURCE[0]}" -R 'stream_fault|stream_durability'
  done
fi

if [ "$MATRIX" = 1 ]; then
  declare -a MATRIX_ARGS
  if [ "$#" -gt 0 ]; then
    MATRIX_ARGS=("$@")
  else
    # 'reorder' is matched by 'stream' (stream_reorder_test) but is named
    # anyway so the intent survives a test-file rename.
    MATRIX_ARGS=(-R 'stream|query|reorder|warm_start|grid_index')
  fi
  for san in address undefined; do
    echo ">>> sanitizer matrix: $san"
    env -u BUILD_DIR BIKEGRAPH_SANITIZE="$san" \
        "${BASH_SOURCE[0]}" "${MATRIX_ARGS[@]}"
  done
fi
