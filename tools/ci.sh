#!/usr/bin/env bash
# Tier-1 gate in one command: configure + build + ctest.
#
#   tools/ci.sh                         # release build, all tests
#   BIKEGRAPH_SANITIZE=address tools/ci.sh          # ASan build
#   BIKEGRAPH_SANITIZE=undefined tools/ci.sh        # UBSan build
#   tools/ci.sh -R community_detector_test          # extra args go to ctest
#
# Opt-in sanitizer matrix (the flag must come first): after the regular
# FULL run, build the tree into build-asan/ and build-ubsan/ and re-run
# a ctest subset under each. Extra args select the sanitized subset only
# — the unsanitized gate always runs everything; with none, the
# streaming suites (including stream_reorder_test: the reorder heap /
# expiry ring interplay is exactly where lifetime bugs would live),
# warm-start and grid suites run by default.
#
#   tools/ci.sh --sanitize-matrix                   # default subset
#   tools/ci.sh --sanitize-matrix -R stream         # explicit subset
#
# Bench smoke (the flag must come first): after the test pass, run every
# bench_stream_* binary once with a minimal measuring budget — a cheap
# crash/assert canary for the benchmark code itself (it measures nothing
# meaningful; use tools/run_benches.sh + tools/bench_diff.py to track
# performance).
#
#   tools/ci.sh --bench-smoke
#
# Durability/chaos gate (the flag must come first): after the regular
# run, re-run the crash-recovery and hostile-input suites
# (stream_durability_test: randomized kill-point recovery, torn tails,
# corrupt checkpoints; stream_chaos_test: demand surges, outages, clock
# skew, duplicate storms, boundary floods) under ASan and UBSan — the
# memory- and UB-sensitive paths ISSUE durability acceptance names.
#
#   tools/ci.sh --chaos
#
# The build directory defaults to build/ (build-asan/ or build-ubsan/ for
# sanitized runs, so a sanitizer pass never clobbers the main tree).
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
SANITIZE="${BIKEGRAPH_SANITIZE:-}"

MATRIX=0
BENCH_SMOKE=0
CHAOS=0
while :; do
  case "${1:-}" in
    --sanitize-matrix) MATRIX=1; shift ;;
    --bench-smoke)     BENCH_SMOKE=1; shift ;;
    --chaos)           CHAOS=1; shift ;;
    *) break ;;
  esac
done
for arg in "$@"; do
  if [ "$arg" = "--sanitize-matrix" ] || [ "$arg" = "--bench-smoke" ] ||
     [ "$arg" = "--chaos" ]; then
    echo "$arg must come before any ctest arguments" >&2
    exit 2
  fi
done

case "$SANITIZE" in
  "")        BUILD_DIR="${BUILD_DIR:-$ROOT/build}" ;;
  address)   BUILD_DIR="${BUILD_DIR:-$ROOT/build-asan}" ;;
  undefined) BUILD_DIR="${BUILD_DIR:-$ROOT/build-ubsan}" ;;
  *) echo "BIKEGRAPH_SANITIZE must be empty, 'address' or 'undefined'" >&2
     exit 2 ;;
esac

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S "$ROOT" -DBIKEGRAPH_SANITIZE="$SANITIZE"
cmake --build "$BUILD_DIR" -j "$JOBS"
if [ "$MATRIX" = 1 ]; then
  # The tier-1 gate itself: matrix args select the sanitized subset
  # below, never narrow this run.
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" "$@"
fi

if [ "$BENCH_SMOKE" = 1 ]; then
  echo ">>> bench smoke: one minimal pass over the stream benches"
  found=0
  for bin in "$BUILD_DIR"/bench_stream_*; do
    [ -x "$bin" ] || continue
    found=1
    echo ">>> $(basename "$bin")"
    "$bin" --benchmark_min_time=0.01 >/dev/null
  done
  if [ "$found" = 0 ]; then
    echo "no bench_stream_* binaries in $BUILD_DIR (benches disabled?)" >&2
    exit 1
  fi
fi

if [ "$CHAOS" = 1 ]; then
  # The plain-build pass already ran above (the suites are part of the
  # full ctest); what --chaos adds is the sanitized re-runs.
  for san in address undefined; do
    echo ">>> chaos gate: $san"
    env -u BUILD_DIR BIKEGRAPH_SANITIZE="$san" \
        "${BASH_SOURCE[0]}" -R 'stream_durability|stream_chaos'
  done
fi

if [ "$MATRIX" = 1 ]; then
  declare -a MATRIX_ARGS
  if [ "$#" -gt 0 ]; then
    MATRIX_ARGS=("$@")
  else
    # 'reorder' is matched by 'stream' (stream_reorder_test) but is named
    # anyway so the intent survives a test-file rename.
    MATRIX_ARGS=(-R 'stream|reorder|warm_start|grid_index')
  fi
  for san in address undefined; do
    echo ">>> sanitizer matrix: $san"
    env -u BUILD_DIR BIKEGRAPH_SANITIZE="$san" \
        "${BASH_SOURCE[0]}" "${MATRIX_ARGS[@]}"
  done
fi
