#!/usr/bin/env bash
# Tier-1 gate in one command: configure + build + ctest.
#
#   tools/ci.sh                         # release build, all tests
#   BIKEGRAPH_SANITIZE=address tools/ci.sh          # ASan build
#   BIKEGRAPH_SANITIZE=undefined tools/ci.sh        # UBSan build
#   tools/ci.sh -R community_detector_test          # extra args go to ctest
#
# The build directory defaults to build/ (build-asan/ or build-ubsan/ for
# sanitized runs, so a sanitizer pass never clobbers the main tree).
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
SANITIZE="${BIKEGRAPH_SANITIZE:-}"

case "$SANITIZE" in
  "")        BUILD_DIR="${BUILD_DIR:-$ROOT/build}" ;;
  address)   BUILD_DIR="${BUILD_DIR:-$ROOT/build-asan}" ;;
  undefined) BUILD_DIR="${BUILD_DIR:-$ROOT/build-ubsan}" ;;
  *) echo "BIKEGRAPH_SANITIZE must be empty, 'address' or 'undefined'" >&2
     exit 2 ;;
esac

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S "$ROOT" -DBIKEGRAPH_SANITIZE="$SANITIZE"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" "$@"
