// Internal calibration sweep (not installed): explores generator and
// projection parameters against the paper's target shapes.
#include <cstdio>
#include "analysis/experiment.h"
using namespace bikegraph;

int main() {
  for (double fidelity : {0.6, 0.7}) {
    data::SyntheticConfig syn;
    syn.kind_fidelity = fidelity;
    auto raw = data::GenerateSyntheticMoby(syn);
    if (!raw.ok()) { std::printf("gen failed\n"); return 1; }
    auto pipe = expansion::RunExpansionPipeline(*raw);
    if (!pipe.ok()) { std::printf("pipe failed: %s\n", pipe.status().ToString().c_str()); return 1; }
    const auto& net = pipe->final_network;
    community::DetectSpec lv;  // default: Louvain, paper options
    analysis::TemporalGraphOptions null_opt;
    auto gb = analysis::RunCommunityExperiment(net, null_opt, lv);
    if (!gb.ok()) {
      // Dereferencing an error Result aborts; the old code dropped this
      // Status and did exactly that on any experiment failure.
      std::printf("GBasic experiment failed: %s\n",
                  gb.status().ToString().c_str());
      return 1;
    }
    std::printf("fidelity=%.2f selected=%zu GBasic k=%zu Q=%.2f self=%.0f%%\n",
                fidelity, net.selected_count(),
                gb->detection.partition.CommunityCount(), gb->detection.modularity,
                100 * gb->stats.SelfContainedFraction());
    for (auto [gran, name] : {std::pair{analysis::TemporalGranularity::kDay, "Day "},
                              std::pair{analysis::TemporalGranularity::kHour, "Hour"}}) {
      for (double contrast : {2.0, 8.0, 16.0, 32.0, 64.0}) {
        for (double floor : {0.05, 0.01}) {
          analysis::TemporalGraphOptions o{gran, floor, contrast};
          auto e = analysis::RunCommunityExperiment(net, o, lv);
          if (!e.ok()) {
            std::printf("  %s c=%4.1f f=%.2f  FAILED: %s\n", name, contrast,
                        floor, e.status().ToString().c_str());
            return 1;
          }
          std::printf("  %s c=%4.1f f=%.2f  k=%2zu Q=%.2f self=%.0f%%\n", name,
                      contrast, floor, e->detection.partition.CommunityCount(),
                      e->detection.modularity,
                      100 * e->stats.SelfContainedFraction());
        }
      }
    }
  }
  return 0;
}
