#!/usr/bin/env python3
"""Repo-specific lint driver for bikegraph (see docs/STATIC_ANALYSIS.md).

Enforces invariants generic tools cannot know. Runs in the default tier-1
gate as the `lint` ctest target (pure Python, no compiler); the golden-file
selftest (`--selftest`, the `lint_golden_test` ctest target) proves every
check still rejects its known-bad snippet under tests/lint_golden/.

Checks
------
  umbrella-export       every public header under src/ is #included by the
                        umbrella src/bikegraph.h (internal-only headers are
                        exempted in INTERNAL_HEADERS with a justification)
  pragma-once           every public header opens with #pragma once (the
                        compile-level self-containment proof is the generated
                        header_selfcontained_test target; see
                        --emit-header-matrix)
  unordered-iteration   no iteration over std::unordered_{map,set} feeding
                        ordered output — the seed's tie-break bug class. Any
                        range-for over an unordered container must carry a
                        `// lint: unordered-iter-ok: <why>` justification
                        (same line or the line above) arguing order
                        independence (pure counting, sort-after, ...).
  naked-io-syscall      raw durability syscalls (fsync/fdatasync/rename/
                        renameat and the ::open/::write/::unlink globals)
                        only inside src/core/io_env.cc — the single syscall
                        seam. Everything else routes I/O through IoEnv so
                        the fault injector sees every operation; a direct
                        syscall is invisible to fault schedules and
                        unprotected by the retry policy.
  unseeded-rng          no rand()/srand()/std::random_device outside
                        src/core/rng — all randomness must flow through the
                        seeded deterministic RNG so every run is replayable.
  float-equality        no ==/!= against floating-point literals (and no
                        EXPECT_EQ/NE on them) outside the locked bit-identity
                        suites; annotate intentional exact compares with
                        `// lint: float-eq-ok: <why>`.
  naked-concurrency     concurrency primitives (<thread>/<mutex>/<atomic>
                        includes, std::thread, std::call_once, ...) only
                        inside the designated threaded surface: src/query/
                        (the serving layer), the snapshot publisher, the
                        stream engine and the logging sink. Threading is a
                        file-level design decision, so the escape is
                        file-level too: any other file must carry a
                        `// lint: thread-ok: <why this file must thread>`
                        justification somewhere in the file (threaded
                        tests and benches are the expected users).
  tracked-build-artifacts
                        no git-tracked path under a top-level build*/
                        directory — build trees are generated output and
                        once committed they bloat every clone and go stale
                        silently (a 744-file build-review/ tree slipped in
                        this way). Outside a git checkout the check skips.

Modes
-----
  lint.py --root R                    run all checks; exit 1 on violations
  lint.py --root R --selftest         golden-file tests (bad snippets fail)
  lint.py --root R --emit-header-matrix DIR
                                      write one self-containment TU per
                                      public header (consumed by CMake's
                                      header_selfcontained_test target)
  lint.py --root R --list-checks      print the check catalog
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

# --------------------------------------------------------------------------
# Tree layout
# --------------------------------------------------------------------------

SCAN_DIRS = ("src", "tests", "tools", "examples", "bench")
CXX_EXTENSIONS = (".h", ".cc", ".cpp")
EXCLUDE_PARTS = ("lint_golden",)  # known-bad snippets live here on purpose

# Public headers intentionally absent from the umbrella, each with the
# justification the check requires.
INTERNAL_HEADERS = {
    "stream/testing.h": "test-support seams (kill-point hooks), not API",
}

# The single file allowed to issue raw durability syscalls: the IoEnv
# passthrough. wal.cc/checkpoint.cc call through IoEnv so every open,
# write, fsync, rename and unlink is visible to the fault injector.
IO_ENV_FILES = {"src/core/io_env.cc"}

# The seeded deterministic RNG wrapper — the only place allowed to touch
# platform randomness primitives.
RNG_FILES = {"src/core/rng.h", "src/core/rng.cc"}

# Locked bit-identity suites: exact floating-point comparison is the whole
# point there (delta-vs-full freezes, recovered-vs-uninterrupted engines,
# flat-vs-map algorithm rewrites must match bit for bit).
BIT_IDENTITY_TESTS = {
    "tests/perf_equivalence_test.cc",
    "tests/stream_snapshot_delta_test.cc",
    "tests/stream_durability_test.cc",
    "tests/stream_fault_test.cc",
    "tests/stream_reorder_test.cc",
    "tests/stream_engine_test.cc",
    "tests/stream_shard_test.cc",
    "tests/community_warm_start_test.cc",
    "tests/community_detector_test.cc",
    "tests/query_service_test.cc",
}

# The designated threaded surface: the only places allowed to hold
# concurrency primitives without a file-level justification. Everything
# here is covered by the TSan gate (tools/ci.sh, BIKEGRAPH_SANITIZE=thread)
# and the concurrent serving suites.
CONCURRENCY_DIRS = ("src/query/",)
CONCURRENCY_FILES = {
    "src/stream/snapshot.h",   # the atomic epoch publisher itself
    "src/stream/snapshot.cc",
    "src/stream/engine.h",     # freeze counters + sharded ingest engine
    "src/stream/engine.cc",    # shard workers, barrier quiescence
    "src/stream/spsc_ring.h",  # the shard command channel (Lamport ring)
    "src/core/logging.cc",     # process-wide sink registration
}


class Violation:
    def __init__(self, check, path, line, message):
        self.check = check
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


def list_tree_files(root):
    """All C++ sources under the scanned dirs, as root-relative paths."""
    out = []
    for d in SCAN_DIRS:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [n for n in dirnames if n not in EXCLUDE_PARTS]
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    out.append(rel.replace(os.sep, "/"))
    return sorted(out)


def public_headers(files):
    return [f for f in files if f.startswith("src/") and f.endswith(".h")]


def strip_comments(line):
    """Best-effort removal of comment and string-literal text from one
    line (so quoted text can't trip the code-pattern regexes)."""
    line = re.sub(r"/\*.*?\*/", "", line)
    line = re.sub(r"//.*", "", line)
    line = re.sub(r"/\*.*", "", line)
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    return line


def has_annotation(lines, idx, tag):
    """True when line idx, or the contiguous comment block immediately
    above it, carries a `lint: <tag>:` justification."""
    pat = f"lint: {tag}:"
    if pat in lines[idx]:
        return True
    j = idx - 1
    while j >= 0 and lines[j].strip().startswith("//"):
        if pat in lines[j]:
            return True
        j -= 1
    return False


# --------------------------------------------------------------------------
# Checks. Each takes (root, files) and returns a list of Violations.
# --------------------------------------------------------------------------

def check_umbrella_export(root, files):
    umbrella_rel = "src/bikegraph.h"
    umbrella = os.path.join(root, umbrella_rel)
    violations = []
    if not os.path.isfile(umbrella):
        return [Violation("umbrella-export", umbrella_rel, 1,
                          "umbrella header missing")]
    with open(umbrella, encoding="utf-8") as f:
        text = f.read()
    included = set(re.findall(r'#include\s+"([^"]+)"', text))
    for hdr in public_headers(files):
        rel = hdr[len("src/"):]
        if rel == "bikegraph.h":
            continue
        if rel in INTERNAL_HEADERS:
            continue
        if rel not in included:
            violations.append(Violation(
                "umbrella-export", hdr, 1,
                f'public header not exported by src/bikegraph.h (add '
                f'#include "{rel}" or register it in INTERNAL_HEADERS '
                f"with a justification)"))
    return violations


def check_pragma_once(root, files):
    violations = []
    for hdr in public_headers(files):
        with open(os.path.join(root, hdr), encoding="utf-8") as f:
            for line in f:
                stripped = line.strip()
                if not stripped or stripped.startswith("//"):
                    continue
                if stripped != "#pragma once":
                    violations.append(Violation(
                        "pragma-once", hdr, 1,
                        "first directive must be #pragma once"))
                break
            else:
                violations.append(Violation(
                    "pragma-once", hdr, 1, "empty header"))
    return violations


UNORDERED_DECL = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>[\s\n]*&?[\s\n]*"
    r"(\w+(?:\s*,\s*\w+)*)")
RANGE_FOR = re.compile(r"\bfor\s*\([^;]*?:\s*&?\s*([A-Za-z_]\w*(?:\.\w+\(\))?)\s*\)")


def check_unordered_iteration(root, files):
    """File-local heuristic: declarations and loops must be in the same
    file (members declared in another header are not seen — the compile-
    level equivalence locks cover those paths)."""
    violations = []
    for rel in files:
        if not rel.endswith((".cc", ".cpp", ".h")):
            continue
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            lines = f.read().splitlines()
        stripped_text = "\n".join(strip_comments(l) for l in lines)
        unordered_names = set()
        for m in UNORDERED_DECL.finditer(stripped_text):
            for name in m.group(1).split(","):
                unordered_names.add(name.strip())
        if not unordered_names:
            continue
        for i, line in enumerate(lines):
            code = strip_comments(line)
            m = RANGE_FOR.search(code)
            if not m:
                continue
            target = m.group(1).split(".")[0]
            if target not in unordered_names:
                continue
            if has_annotation(lines, i, "unordered-iter-ok"):
                continue
            violations.append(Violation(
                "unordered-iteration", rel, i + 1,
                f"range-for over unordered container '{target}' — iteration "
                "order is unspecified and has fed ordered output before "
                "(the seed's tie-break bug class); sort first, or justify "
                "with `// lint: unordered-iter-ok: <why order cannot leak>`"))
    return violations


IO_SYSCALL = re.compile(
    r"\b(?:fsync|fdatasync|rename|renameat)\s*\("
    r"|(?<![\w])::\s*(?:open|write|unlink)\s*\(")


def check_naked_io_syscall(root, files):
    violations = []
    for rel in files:
        if rel in IO_ENV_FILES:
            continue
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            lines = f.read().splitlines()
        for i, line in enumerate(lines):
            code = strip_comments(line)
            if IO_SYSCALL.search(code):
                violations.append(Violation(
                    "naked-io-syscall", rel, i + 1,
                    "raw I/O syscall outside src/core/io_env.cc — route it "
                    "through IoEnv so fault injection sees it and the "
                    "retry/degrade policy protects it"))
    return violations


RNG_CALL = re.compile(r"\b(?:rand|srand)\s*\(|\brandom_device\b")


def check_unseeded_rng(root, files):
    violations = []
    for rel in files:
        if rel in RNG_FILES:
            continue
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            lines = f.read().splitlines()
        for i, line in enumerate(lines):
            code = strip_comments(line)
            if RNG_CALL.search(code):
                violations.append(Violation(
                    "unseeded-rng", rel, i + 1,
                    "rand()/srand()/std::random_device outside core/rng — "
                    "all randomness must be seeded and replayable "
                    "(use bikegraph::Rng)"))
    return violations


FLOAT_LITERAL = r"[-+]?(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?f?"
FLOAT_EQ = re.compile(
    rf"(?:(?<![<>=!])[=!]=\s*{FLOAT_LITERAL}(?![\w.]))|"
    rf"(?:(?<![\w.]){FLOAT_LITERAL}\s*[=!]=(?!=))")
GTEST_EQ_CALL = re.compile(r"\b(?:EXPECT|ASSERT)_(?:EQ|NE)\s*\(")
FLOAT_LITERAL_ONLY = re.compile(rf"^\(?\s*{FLOAT_LITERAL}\s*\)?$")


def gtest_compares_float_literal(code):
    """True when an EXPECT_EQ/NE on this line has a *top-level* argument
    that is itself a floating literal — a float literal nested inside a
    call argument (a radius, a coordinate) is not an equality operand."""
    m = GTEST_EQ_CALL.search(code)
    if not m:
        return False
    depth, arg, args = 0, "", []
    for ch in code[m.end():]:
        if ch == "(" or ch == "{" or ch == "[":
            depth += 1
        elif ch == ")" or ch == "}" or ch == "]":
            if ch == ")" and depth == 0:
                break
            depth -= 1
        elif ch == "," and depth == 0:
            args.append(arg)
            arg = ""
            continue
        arg += ch
    args.append(arg)
    return any(FLOAT_LITERAL_ONLY.match(a.strip()) for a in args)


def check_float_equality(root, files):
    violations = []
    for rel in files:
        if rel in BIT_IDENTITY_TESTS:
            continue
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            lines = f.read().splitlines()
        for i, line in enumerate(lines):
            code = strip_comments(line)
            if FLOAT_EQ.search(code) or gtest_compares_float_literal(code):
                if has_annotation(lines, i, "float-eq-ok"):
                    continue
                violations.append(Violation(
                    "float-equality", rel, i + 1,
                    "exact ==/!= against a floating-point literal outside "
                    "the locked bit-identity suites; compare with a "
                    "tolerance, or justify the exactness with "
                    "`// lint: float-eq-ok: <why bit-exact>`"))
    return violations


CONCURRENCY_INCLUDE = re.compile(
    r"#\s*include\s*<(?:thread|mutex|shared_mutex|condition_variable|"
    r"atomic|future|stop_token|semaphore|latch|barrier)>")
CONCURRENCY_USE = re.compile(
    r"\bstd::(?:jthread\b|thread\b|this_thread\b|mutex\b|shared_mutex\b|"
    r"recursive_mutex\b|timed_mutex\b|condition_variable\w*|atomic\w*|"
    r"async\b|future\b|promise\b|packaged_task\b|call_once\b|once_flag\b|"
    r"lock_guard\b|unique_lock\b|scoped_lock\b|shared_lock\b|"
    r"counting_semaphore\b|binary_semaphore\b|latch\b|barrier\b|"
    r"stop_token\b|memory_order\w*)")


def check_naked_concurrency(root, files):
    """Threading must live in the designated surface or be justified per
    file — a naked std::thread mutating shared state from a random helper
    is exactly the bug class the TSan gate cannot see (it only races what
    the suites exercise). One violation per file, pointing at the first
    concurrency site."""
    violations = []
    for rel in files:
        if rel in CONCURRENCY_FILES:
            continue
        if any(rel.startswith(d) for d in CONCURRENCY_DIRS):
            continue
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            lines = f.read().splitlines()
        if any("lint: thread-ok:" in l for l in lines):
            continue
        hits = []
        for i, line in enumerate(lines):
            code = strip_comments(line)
            if CONCURRENCY_INCLUDE.search(code) or \
                    CONCURRENCY_USE.search(code):
                hits.append(i)
        if hits:
            violations.append(Violation(
                "naked-concurrency", rel, hits[0] + 1,
                f"concurrency primitive outside the designated threaded "
                f"surface ({len(hits)} site(s) in this file) — shared-state "
                "threading lives in src/query/ plus the publisher/engine/"
                "logging files, where the TSan gate races it; move the "
                "code there, or justify the whole file with "
                "`// lint: thread-ok: <why this file must thread>`"))
    return violations


def check_tracked_build_artifacts(root, files):
    """No build tree may be committed. Build output is reproducible from
    the sources, so tracking it bloats every clone and rots silently; the
    .gitignore entries only stop *new* adds — this check catches paths
    that were force-added or tracked before the ignore existed. One
    violation per offending top-level build*/ directory. Gracefully skips
    when `root` is not a git checkout (release tarballs, selftest trees)."""
    del files  # consults the git index, not the C++ source list
    try:
        proc = subprocess.run(
            ["git", "-C", root, "ls-files", "-z"],
            capture_output=True, check=False)
    except OSError:
        return []  # no git binary — nothing to enforce against
    if proc.returncode != 0:
        return []  # not a git checkout
    by_dir = {}
    for path in proc.stdout.decode("utf-8", "replace").split("\0"):
        if "/" not in path:
            continue
        top = path.split("/", 1)[0]
        if top == "build" or top.startswith("build-") or \
                top.startswith("build_"):
            by_dir.setdefault(top, []).append(path)
    violations = []
    for top in sorted(by_dir):
        paths = sorted(by_dir[top])
        violations.append(Violation(
            "tracked-build-artifacts", paths[0], 1,
            f"{len(paths)} git-tracked file(s) under '{top}/' — build "
            "trees are generated output; `git rm -r --cached` the "
            f"directory and keep '{top}/' in .gitignore"))
    return violations


CHECKS = [
    ("umbrella-export", check_umbrella_export),
    ("pragma-once", check_pragma_once),
    ("unordered-iteration", check_unordered_iteration),
    ("naked-io-syscall", check_naked_io_syscall),
    ("unseeded-rng", check_unseeded_rng),
    ("float-equality", check_float_equality),
    ("naked-concurrency", check_naked_concurrency),
    ("tracked-build-artifacts", check_tracked_build_artifacts),
]


# --------------------------------------------------------------------------
# Header self-containment matrix
# --------------------------------------------------------------------------

def emit_header_matrix(root, out_dir):
    """One TU per public header: the header first, twice, nothing else.

    Compiling the whole set (CMake's header_selfcontained_test target)
    proves every public header is self-contained (brings in everything it
    needs) and include-guarded (the second include is a no-op).
    """
    files = list_tree_files(root)
    headers = public_headers(files)
    os.makedirs(out_dir, exist_ok=True)
    for stale in os.listdir(out_dir):
        if stale.endswith(".cc"):
            os.unlink(os.path.join(out_dir, stale))
    for hdr in headers:
        rel = hdr[len("src/"):]
        slug = re.sub(r"[^A-Za-z0-9]", "_", rel)
        path = os.path.join(out_dir, f"selfcontained_{slug}.cc")
        with open(path, "w", encoding="utf-8") as f:
            f.write(
                "// Generated by tools/lint.py --emit-header-matrix; "
                "do not edit.\n"
                f'// Self-containment probe for "{rel}": it must compile as\n'
                "// the first include, and twice (include-guard proof).\n"
                f'#include "{rel}"\n'
                f'#include "{rel}"\n')
    with open(os.path.join(out_dir, "selfcontained_main.cc"), "w",
              encoding="utf-8") as f:
        f.write(
            "// Generated by tools/lint.py --emit-header-matrix; "
            "do not edit.\n"
            "int main() { return 0; }\n")
    print(f"header matrix: {len(headers)} TUs in {out_dir}")
    return 0


# --------------------------------------------------------------------------
# Golden-file selftest
# --------------------------------------------------------------------------

def _mini_tree(tmp, files):
    """Builds a scratch repo tree from {relpath: content} and returns it."""
    for rel, content in files.items():
        path = os.path.join(tmp, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)
    return tmp


def _golden(root, name):
    path = os.path.join(root, "tests", "lint_golden", name)
    with open(path, encoding="utf-8") as f:
        return f.read()


def run_selftest(root):
    """Each check must flag its known-bad golden snippet and pass its good
    counterpart. Exits nonzero on the first broken check."""
    failures = []

    def expect(check_name, fn, tree_files, want_violation, label):
        with tempfile.TemporaryDirectory(prefix="bikegraph_lint_") as tmp:
            _mini_tree(tmp, tree_files)
            got = fn(tmp, list_tree_files(tmp))
            got = [v for v in got if v.check == check_name]
            if want_violation and not got:
                failures.append(
                    f"{check_name}: golden BAD snippet '{label}' was not "
                    "flagged — the check has gone blind")
            if not want_violation and got:
                failures.append(
                    f"{check_name}: golden GOOD snippet '{label}' was "
                    f"flagged: {got[0]}")

    umbrella_ok = '#include "exported.h"\n'
    exported = "#pragma once\n"
    expect("umbrella-export", check_umbrella_export,
           {"src/bikegraph.h": umbrella_ok,
            "src/exported.h": exported,
            "src/orphan.h": _golden(root, "bad_unexported_header.h")},
           True, "bad_unexported_header.h")
    expect("umbrella-export", check_umbrella_export,
           {"src/bikegraph.h": umbrella_ok, "src/exported.h": exported},
           False, "all exported")

    expect("pragma-once", check_pragma_once,
           {"src/guardless.h": _golden(root, "bad_missing_pragma_once.h")},
           True, "bad_missing_pragma_once.h")
    expect("pragma-once", check_pragma_once,
           {"src/guarded.h": "#pragma once\nint x();\n"},
           False, "guarded header")

    expect("unordered-iteration", check_unordered_iteration,
           {"src/bad.cc": _golden(root, "bad_unordered_iteration.cc")},
           True, "bad_unordered_iteration.cc")
    expect("unordered-iteration", check_unordered_iteration,
           {"src/good.cc": _golden(root, "good_annotated.cc")},
           False, "good_annotated.cc")

    expect("naked-io-syscall", check_naked_io_syscall,
           {"src/bad.cc": _golden(root, "bad_naked_fsync.cc")},
           True, "bad_naked_fsync.cc")
    expect("naked-io-syscall", check_naked_io_syscall,
           {"src/bad.cc": _golden(root, "bad_naked_syscall.cc")},
           True, "bad_naked_syscall.cc")
    expect("naked-io-syscall", check_naked_io_syscall,
           {"src/stream/wal.cc": _golden(root, "bad_naked_fsync.cc")},
           True, "wal.cc must go through IoEnv too")
    expect("naked-io-syscall", check_naked_io_syscall,
           {"src/core/io_env.cc": _golden(root, "bad_naked_syscall.cc")},
           False, "raw syscalls inside io_env.cc are the seam")

    expect("unseeded-rng", check_unseeded_rng,
           {"src/bad.cc": _golden(root, "bad_unseeded_rng.cc")},
           True, "bad_unseeded_rng.cc")
    expect("unseeded-rng", check_unseeded_rng,
           {"src/core/rng.cc": _golden(root, "bad_unseeded_rng.cc")},
           False, "randomness primitives inside core/rng")

    expect("float-equality", check_float_equality,
           {"src/bad.cc": _golden(root, "bad_float_equality.cc")},
           True, "bad_float_equality.cc")
    expect("float-equality", check_float_equality,
           {"src/good.cc": _golden(root, "good_annotated.cc")},
           False, "good_annotated.cc")

    expect("naked-concurrency", check_naked_concurrency,
           {"src/bad.cc": _golden(root, "bad_naked_concurrency.cc")},
           True, "bad_naked_concurrency.cc")
    expect("naked-concurrency", check_naked_concurrency,
           {"src/query/bad.cc": _golden(root, "bad_naked_concurrency.cc")},
           False, "threads inside src/query are the serving layer")
    expect("naked-concurrency", check_naked_concurrency,
           {"src/good.cc": _golden(root, "good_annotated.cc")},
           False, "good_annotated.cc")

    # tracked-build-artifacts consults the git index, so its goldens need
    # a real scratch repo rather than the plain-tree expect() helper.
    with tempfile.TemporaryDirectory(prefix="bikegraph_lint_") as tmp:
        _mini_tree(tmp, {
            "build-review/stale_artifact.txt": "generated output\n",
            "src/good.cc": "int main() { return 0; }\n",
        })
        env = dict(os.environ,
                   GIT_CONFIG_GLOBAL=os.devnull, GIT_CONFIG_SYSTEM=os.devnull)
        git_ok = True
        for cmd in (["git", "init", "-q"],
                    ["git", "add", "-f",
                     "build-review/stale_artifact.txt", "src/good.cc"]):
            if subprocess.run(cmd, cwd=tmp, env=env,
                              capture_output=True).returncode != 0:
                git_ok = False
                break
        if not git_ok:
            failures.append(
                "tracked-build-artifacts: scratch `git init`/`git add` "
                "failed — golden snippets could not be exercised")
        else:
            got = check_tracked_build_artifacts(tmp, list_tree_files(tmp))
            got = [v for v in got if v.check == "tracked-build-artifacts"]
            if not got:
                failures.append(
                    "tracked-build-artifacts: golden BAD tree (tracked "
                    "build-review/ file) was not flagged — the check has "
                    "gone blind")
            subprocess.run(
                ["git", "rm", "-r", "-q", "--cached", "build-review"],
                cwd=tmp, env=env, capture_output=True)
            got = check_tracked_build_artifacts(tmp, list_tree_files(tmp))
            got = [v for v in got if v.check == "tracked-build-artifacts"]
            if got:
                failures.append(
                    "tracked-build-artifacts: golden GOOD tree (index "
                    f"purged) was flagged: {got[0]}")

    if failures:
        for f in failures:
            print(f"SELFTEST FAIL: {f}", file=sys.stderr)
        return 1
    print(f"selftest: {len(CHECKS)} checks × bad+good golden snippets OK")
    return 0


# --------------------------------------------------------------------------
# Entry point
# --------------------------------------------------------------------------

def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repo root")
    parser.add_argument("--selftest", action="store_true")
    parser.add_argument("--emit-header-matrix", metavar="DIR")
    parser.add_argument("--list-checks", action="store_true")
    args = parser.parse_args(argv)
    root = os.path.abspath(args.root)

    if args.list_checks:
        for name, _ in CHECKS:
            print(name)
        return 0
    if args.emit_header_matrix:
        return emit_header_matrix(root, args.emit_header_matrix)
    if args.selftest:
        return run_selftest(root)

    files = list_tree_files(root)
    violations = []
    for _, fn in CHECKS:
        violations.extend(fn(root, files))
    for v in sorted(violations, key=lambda v: (v.path, v.line)):
        print(v, file=sys.stderr)
    if violations:
        print(f"lint: {len(violations)} violation(s) across "
              f"{len({v.path for v in violations})} file(s)", file=sys.stderr)
        return 1
    print(f"lint: {len(files)} files clean across {len(CHECKS)} checks")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
