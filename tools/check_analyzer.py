#!/usr/bin/env python3
"""Gate a GCC -fanalyzer build log against the suppression file.

tools/ci.sh --analyze builds the tree with -fanalyzer (no -Werror — one
finding must not hide the rest), captures the compiler output, and runs

    check_analyzer.py --log <build.log> --suppressions tools/analyzer_suppressions.txt

Exit status is nonzero when any analyzer finding is not matched by a
suppression entry. Suppression entries each require a written
justification (see the file's header for the format); an entry that
matches nothing is reported as stale so the file cannot silently rot.
"""

import argparse
import fnmatch
import re
import sys

# "path:line:col: warning: ... [-Wanalyzer-xyz]" — the analyzer always
# tags its findings with a -Wanalyzer-* group.
FINDING = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):(?:\d+:)?\s+warning:.*"
    r"\[(?P<flag>-Wanalyzer-[\w-]+)\]\s*$")
# Locationless findings ("cc1plus: warning: ... [-Wanalyzer-xyz]"): GCC
# emits these when the poisoned value's location was optimized away.
# They are still findings — suppressable with the literal path 'cc1plus'.
FINDING_NOLOC = re.compile(
    r"^(?P<path>cc1plus):\s+warning:.*\[(?P<flag>-Wanalyzer-[\w-]+)\]\s*$")


class Suppression:
    def __init__(self, path_glob, flag, justification, lineno):
        self.path_glob = path_glob
        self.flag = flag
        self.justification = justification
        self.lineno = lineno
        self.hits = 0

    def matches(self, path, flag):
        if self.flag != flag:
            return False
        return fnmatch.fnmatch(path, self.path_glob) or fnmatch.fnmatch(
            path, "*/" + self.path_glob)


def parse_suppressions(path):
    entries = []
    errors = []
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 2)
            if len(parts) < 3:
                errors.append(
                    f"{path}:{lineno}: entry needs "
                    "'<path-glob> <-Wanalyzer-flag> <justification>'")
                continue
            glob, flag, justification = parts
            if not flag.startswith("-Wanalyzer-"):
                errors.append(
                    f"{path}:{lineno}: second field must be a "
                    f"-Wanalyzer-* flag, got '{flag}'")
                continue
            if len(justification.split()) < 3:
                errors.append(
                    f"{path}:{lineno}: justification must be a real "
                    f"sentence, got '{justification}'")
                continue
            entries.append(Suppression(glob, flag, justification, lineno))
    return entries, errors


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--log", required=True, help="captured build log")
    parser.add_argument("--suppressions", required=True)
    args = parser.parse_args(argv)

    suppressions, errors = parse_suppressions(args.suppressions)
    if errors:
        for e in errors:
            print(e, file=sys.stderr)
        return 2

    findings = []
    with open(args.log, encoding="utf-8", errors="replace") as f:
        for line in f:
            stripped = line.rstrip()
            m = FINDING.match(stripped)
            if m:
                findings.append(
                    (m.group("path"), int(m.group("line")), m.group("flag"),
                     line.strip()))
                continue
            m = FINDING_NOLOC.match(stripped)
            if m:
                findings.append(
                    (m.group("path"), 0, m.group("flag"), line.strip()))

    unsuppressed = []
    for path, line, flag, text in findings:
        for s in suppressions:
            if s.matches(path, flag):
                s.hits += 1
                break
        else:
            unsuppressed.append(text)

    for s in suppressions:
        if s.hits == 0:
            print(f"stale suppression ({args.suppressions}:{s.lineno}): "
                  f"{s.path_glob} {s.flag} — matched no finding; delete it",
                  file=sys.stderr)

    if unsuppressed:
        print(f"\n{len(unsuppressed)} unsuppressed analyzer finding(s):",
              file=sys.stderr)
        for text in unsuppressed:
            print(f"  {text}", file=sys.stderr)
        print("\nFix the code, or add a justified entry to "
              f"{args.suppressions} (format in its header).",
              file=sys.stderr)
        return 1

    print(f"analyzer gate: {len(findings)} finding(s), all suppressed with "
          f"justification; {len(suppressions)} suppression(s) on file")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
