// Out-of-order ingestion: the ReorderBuffer's ordering/lateness/duplicate
// contract, the StreamEngine wiring around it (watermark regression,
// buffered-event visibility, end-of-stream flush, surfaced stats), and the
// headline property — a jittered replay of the full synthetic dataset
// through the buffer reproduces the ordered replay's window graph,
// snapshot, and Louvain partition bit for bit.

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "community/detector.h"
#include "core/civil_time.h"
#include "core/rng.h"
#include "data/synthetic.h"
#include "expansion/pipeline.h"
#include "stream/engine.h"
#include "stream/reorder_buffer.h"
#include "stream/replay.h"
#include "stream/testing.h"

#include <gtest/gtest.h>

#include "graph_test_util.h"

namespace bikegraph::stream {
namespace {

CivilTime At(int day, int hour, int minute = 0) {
  return CivilTime::FromCalendar(2020, 1, day, hour, minute).ValueOrDie();
}

TripEvent Trip(int32_t from, int32_t to, CivilTime start,
               int64_t rental_id = 1) {
  TripEvent e;
  e.rental_id = rental_id;
  e.from_station = from;
  e.to_station = to;
  e.start_time = start;
  e.end_time = start.AddSeconds(600);
  return e;
}

/// The one shared jitter model (stream::JitterArrivalOrder), arrival
/// order only — what the engine equivalence tests feed.
std::vector<TripEvent> JitterOrder(const std::vector<TripEvent>& events,
                                   int64_t lag_seconds, uint64_t seed) {
  return JitterArrivalOrder(events, lag_seconds, seed).events;
}

bool IsStartOrdered(const std::vector<TripEvent>& events) {
  for (size_t i = 1; i < events.size(); ++i) {
    if (events[i].start_time < events[i - 1].start_time) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// ReorderBuffer unit behaviour — identical for both backends, so every
// test here runs against the heap AND the timing wheel.
// ---------------------------------------------------------------------------

class ReorderBufferTest : public ::testing::TestWithParam<ReorderBackend> {
 protected:
  ReorderBufferOptions Opts(
      int64_t max_lateness_seconds = 0,
      LateEventPolicy late_policy = LateEventPolicy::kError,
      bool suppress_duplicates = false) const {
    return ReorderBufferOptions{max_lateness_seconds, late_policy,
                                suppress_duplicates, GetParam()};
  }
};

INSTANTIATE_TEST_SUITE_P(
    Backends, ReorderBufferTest,
    ::testing::Values(ReorderBackend::kHeap, ReorderBackend::kWheel),
    [](const ::testing::TestParamInfo<ReorderBackend>& param_info) {
      return param_info.param == ReorderBackend::kHeap ? "Heap" : "Wheel";
    });

TEST_P(ReorderBufferTest, StrictModeIsPassThrough) {
  ReorderBuffer buffer(Opts());  // max_lateness 0, kError: the pre-buffer
                                 // contract
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 8), 1)).ok());
  auto released = buffer.PopReady();
  ASSERT_TRUE(released.has_value());
  EXPECT_EQ(released->rental_id, 1);
  // Equal start times are fine, a regression is not.
  ASSERT_TRUE(buffer.Push(Trip(1, 0, At(6, 8), 2)).ok());
  EXPECT_TRUE(buffer.PopReady().has_value());
  auto late = buffer.Push(Trip(0, 1, At(6, 7), 3));
  EXPECT_EQ(late.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(buffer.reordered_count(), 0u);
}

TEST_P(ReorderBufferTest, ReordersWithinHorizon) {
  ReorderBuffer buffer(Opts(3600));
  // Arrival order 10:00, 9:30, 10:20, 9:40 — all within an hour of the
  // running watermark.
  for (const TripEvent& e :
       {Trip(0, 1, At(6, 10, 0), 1), Trip(0, 1, At(6, 9, 30), 2),
        Trip(0, 1, At(6, 10, 20), 3), Trip(0, 1, At(6, 9, 40), 4)}) {
    ASSERT_TRUE(buffer.Push(e).ok());
  }
  EXPECT_EQ(buffer.reordered_count(), 2u);  // 9:30 and 9:40 arrived late
  EXPECT_EQ(buffer.buffered_count(), 4u);
  EXPECT_FALSE(buffer.HasReady());  // nothing is an hour behind 10:20 yet

  buffer.AdvanceWatermark(At(6, 11, 20));
  std::vector<int64_t> released;
  while (auto e = buffer.PopReady()) {
    released.push_back(e->start_time.seconds_since_epoch());
  }
  // Everything up to 10:20 is now safe, and comes out in start order.
  ASSERT_EQ(released.size(), 4u);
  EXPECT_TRUE(std::is_sorted(released.begin(), released.end()));
  EXPECT_EQ(buffer.released_count(), 4u);
}

TEST_P(ReorderBufferTest, TiesReleaseInRentalIdOrder) {
  ReorderBuffer buffer(Opts(600));
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 8), 9)).ok());
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 8), 3)).ok());
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 8), 7)).ok());
  buffer.Flush();
  std::vector<int64_t> ids;
  while (auto e = buffer.PopReady()) ids.push_back(e->rental_id);
  EXPECT_EQ(ids, (std::vector<int64_t>{3, 7, 9}));
}

TEST_P(ReorderBufferTest, TiesReleaseInRentalIdOrderThroughTheDirectSlot) {
  // Strict mode: both events are releasable on arrival, so the first
  // occupies the direct slot. The smaller rental id arriving second must
  // still come out first.
  ReorderBuffer buffer(Opts());  // max_lateness 0
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 8), 9)).ok());
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 8), 3)).ok());
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 8), 7)).ok());
  std::vector<int64_t> ids;
  while (auto e = buffer.PopReady()) ids.push_back(e->rental_id);
  EXPECT_EQ(ids, (std::vector<int64_t>{3, 7, 9}));
}

TEST(JitterModelTest, HasBoundedNonDecreasingReportTimes) {
  const auto ordered = testing::PlantedStream(12, 2, 3, 200, 5);
  const int64_t lag = 1800;
  const JitteredStream jittered = JitterArrivalOrder(ordered, lag, 42);
  ASSERT_EQ(jittered.events.size(), ordered.size());
  ASSERT_EQ(jittered.report_seconds.size(), ordered.size());
  EXPECT_TRUE(std::is_sorted(jittered.report_seconds.begin(),
                             jittered.report_seconds.end()));
  for (size_t i = 0; i < jittered.events.size(); ++i) {
    const int64_t delay =
        jittered.report_seconds[i] -
        jittered.events[i].start_time.seconds_since_epoch();
    EXPECT_GE(delay, 0) << i;
    EXPECT_LE(delay, lag) << i;
  }
}

TEST_P(ReorderBufferTest, LateDropPolicyCountsAndDiscards) {
  ReorderBuffer buffer(Opts(600, LateEventPolicy::kDrop));
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 10), 1)).ok());
  // 20 minutes behind a 10-minute horizon: dropped, not an error.
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 9, 40), 2)).ok());
  EXPECT_EQ(buffer.late_dropped_count(), 1u);
  buffer.Flush();
  std::vector<int64_t> ids;
  while (auto e = buffer.PopReady()) ids.push_back(e->rental_id);
  EXPECT_EQ(ids, (std::vector<int64_t>{1}));  // the late event never releases
}

TEST_P(ReorderBufferTest, LateErrorPolicyRefuses) {
  ReorderBuffer buffer(Opts(600, LateEventPolicy::kError));
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 10), 1)).ok());
  auto late = buffer.Push(Trip(0, 1, At(6, 9, 40), 2));
  EXPECT_EQ(late.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(buffer.late_dropped_count(), 0u);
  // An event exactly at the horizon is still admissible.
  EXPECT_TRUE(buffer.Push(Trip(0, 1, At(6, 9, 50), 3)).ok());
}

TEST_P(ReorderBufferTest, DuplicateRentalIdsAreSuppressed) {
  ReorderBuffer buffer(Opts(3600, LateEventPolicy::kDrop, true));
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 10), 42)).ok());
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 10), 42)).ok());  // redelivery
  EXPECT_EQ(buffer.duplicate_count(), 1u);
  EXPECT_EQ(buffer.buffered_count(), 1u);
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 10, 5), 43)).ok());
  EXPECT_EQ(buffer.duplicate_count(), 1u);
  EXPECT_EQ(buffer.buffered_count(), 2u);

  // Once the id's start time leaves the horizon the redelivery is late
  // instead (that bound is what keeps the id set finite).
  buffer.AdvanceWatermark(At(6, 12));
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 10), 42)).ok());
  EXPECT_EQ(buffer.duplicate_count(), 1u);
  EXPECT_EQ(buffer.late_dropped_count(), 1u);
}

TEST_P(ReorderBufferTest, InvalidIdsAreNeverSuppressed) {
  ReorderBuffer buffer(Opts(3600, LateEventPolicy::kError, true));
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 10), data::kInvalidId)).ok());
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 10), data::kInvalidId)).ok());
  EXPECT_EQ(buffer.duplicate_count(), 0u);
  EXPECT_EQ(buffer.buffered_count(), 2u);
}

TEST_P(ReorderBufferTest, FlushDrainsAndSealsTheStream) {
  ReorderBuffer buffer(Opts(7200));
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 10), 2)).ok());
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 9), 1)).ok());
  EXPECT_FALSE(buffer.HasReady());
  buffer.Flush();
  EXPECT_TRUE(buffer.HasReady());
  EXPECT_EQ(buffer.PopReady()->rental_id, 1);
  EXPECT_EQ(buffer.PopReady()->rental_id, 2);
  EXPECT_FALSE(buffer.PopReady().has_value());
  // End of stream means end of stream.
  EXPECT_EQ(buffer.Push(Trip(0, 1, At(6, 11), 3)).code(),
            StatusCode::kFailedPrecondition);
}

TEST_P(ReorderBufferTest, NegativeLatenessIsRejected) {
  ReorderBuffer buffer(Opts(-1));
  EXPECT_EQ(buffer.Push(Trip(0, 1, At(6, 10), 1)).code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Wheel-specific behaviour: boundary stragglers after their second was
// walked, and watermark jumps past a whole wheel revolution.
// ---------------------------------------------------------------------------

TEST(ReorderBufferWheelTest, BoundaryStragglerAfterWalkReleasesInOrder) {
  ReorderBufferOptions options;
  options.max_lateness_seconds = 600;
  options.backend = ReorderBackend::kWheel;
  ReorderBuffer buffer(options);
  const CivilTime t0 = At(6, 10);
  ASSERT_TRUE(buffer.Push(Trip(0, 1, t0, 1)).ok());
  // Watermark to t0+600: t0 hits the horizon exactly and releases.
  ASSERT_TRUE(buffer.Push(Trip(0, 1, t0.AddSeconds(600), 2)).ok());
  EXPECT_EQ(buffer.PopReady()->rental_id, 1);  // walk passes second t0
  // A straggler at exactly the cutoff (== t0) is still admissible and
  // immediately releasable — its second was already walked, so it takes
  // the FIFO path, and must still precede everything younger.
  ASSERT_TRUE(buffer.Push(Trip(0, 1, t0, 3)).ok());
  ASSERT_TRUE(buffer.Push(Trip(0, 1, t0.AddSeconds(1), 4)).ok());
  EXPECT_EQ(buffer.PopReady()->rental_id, 3);
  EXPECT_FALSE(buffer.PopReady().has_value());  // 4 and 2 still held
  buffer.Flush();
  EXPECT_EQ(buffer.PopReady()->rental_id, 4);
  EXPECT_EQ(buffer.PopReady()->rental_id, 2);
  EXPECT_FALSE(buffer.PopReady().has_value());
}

TEST(ReorderBufferWheelTest, WatermarkJumpPastOneRevolutionStaysOrdered) {
  // Lateness 64 -> a 128-bucket wheel; an Advance of several thousand
  // seconds crosses many revolutions and must spill-and-release every
  // held second in order (the emergency drain path).
  ReorderBufferOptions options;
  options.max_lateness_seconds = 64;
  options.backend = ReorderBackend::kWheel;
  ReorderBuffer buffer(options);
  const CivilTime t0 = At(6, 10);
  ASSERT_TRUE(buffer.Push(Trip(0, 1, t0.AddSeconds(30), 2)).ok());
  ASSERT_TRUE(buffer.Push(Trip(0, 1, t0, 1)).ok());
  ASSERT_TRUE(buffer.Push(Trip(0, 1, t0.AddSeconds(60), 3)).ok());
  EXPECT_EQ(buffer.buffered_count(), 3u);
  buffer.AdvanceWatermark(t0.AddSeconds(10000));
  std::vector<int64_t> ids;
  while (auto e = buffer.PopReady()) ids.push_back(e->rental_id);
  EXPECT_EQ(ids, (std::vector<int64_t>{1, 2, 3}));
  // New events deep into a later revolution still work (same buckets,
  // new seconds), including one landing exactly on the new cutoff.
  const CivilTime t1 = t0.AddSeconds(10000);
  ASSERT_TRUE(buffer.Push(Trip(0, 1, t1.AddSeconds(-64), 4)).ok());  // edge
  ASSERT_TRUE(buffer.Push(Trip(0, 1, t1.AddSeconds(-30), 5)).ok());
  ASSERT_TRUE(buffer.Push(Trip(0, 1, t1.AddSeconds(20), 6)).ok());
  buffer.Flush();
  ids.clear();
  while (auto e = buffer.PopReady()) ids.push_back(e->rental_id);
  EXPECT_EQ(ids, (std::vector<int64_t>{4, 5, 6}));
  EXPECT_EQ(buffer.late_dropped_count(), 0u);
}

// ---------------------------------------------------------------------------
// Randomized wheel-vs-heap equivalence: any admissible interleaving of
// pushes (in-horizon jitter, exact-boundary stragglers, hopeless
// latecomers, duplicate redeliveries), watermark advances (small and
// multi-revolution), incremental pops, and batch releases must produce
// the identical released (start, rental id) sequence, identical
// counters, and identical buffered counts from both backends.
// ---------------------------------------------------------------------------

TEST(ReorderWheelVsHeapTest, RandomizedReleaseOrderEquivalence) {
  Rng rng(0xC0FFEE);
  const int64_t base = At(6, 0).seconds_since_epoch();
  const int64_t lateness_choices[] = {0, 1, 7, 64, 600, 3600};
  for (int trial = 0; trial < 24; ++trial) {
    ReorderBufferOptions options;
    options.max_lateness_seconds =
        lateness_choices[rng.NextBounded(6)];
    options.late_policy = LateEventPolicy::kDrop;
    options.suppress_duplicates = rng.NextBounded(2) == 0;
    options.backend = ReorderBackend::kHeap;
    ReorderBuffer heap(options);
    options.backend = ReorderBackend::kWheel;
    ReorderBuffer wheel(options);
    const int64_t lateness = options.max_lateness_seconds;

    std::vector<std::pair<int64_t, int64_t>> released;
    const auto pop_both = [&]() {
      auto he = heap.PopReady();
      auto we = wheel.PopReady();
      EXPECT_EQ(he.has_value(), we.has_value());
      if (!he.has_value() || !we.has_value()) return false;
      EXPECT_EQ(he->start_time, we->start_time);
      EXPECT_EQ(he->rental_id, we->rental_id);
      released.emplace_back(he->start_time.seconds_since_epoch(),
                            he->rental_id);
      return true;
    };

    int64_t now = base;
    for (int step = 0; step < 500; ++step) {
      const uint64_t action = rng.NextBounded(100);
      if (action < 70) {
        now += static_cast<int64_t>(rng.NextBounded(40));
        int64_t start;
        const uint64_t kind = rng.NextBounded(12);
        const int64_t mark = heap.watermark().seconds_since_epoch();
        if (kind == 0 && mark != INT64_MIN) {
          start = mark - lateness;  // exactly on the horizon edge
        } else if (kind == 1) {
          start = now - lateness - 1 -
                  static_cast<int64_t>(rng.NextBounded(120));  // hopeless
        } else {
          start = now - static_cast<int64_t>(
                            rng.NextBounded(
                                static_cast<uint64_t>(lateness) + 2));
        }
        // A small id space under duplicate suppression produces real
        // redeliveries.
        const int64_t id = options.suppress_duplicates
                               ? static_cast<int64_t>(rng.NextBounded(64))
                               : step;
        const TripEvent e = Trip(0, 1, CivilTime(start), id);
        const Status hs = heap.Push(e);
        const Status ws = wheel.Push(e);
        EXPECT_EQ(hs.code(), ws.code());
      } else if (action < 80) {
        const int64_t jump =
            static_cast<int64_t>(rng.NextBounded(5000));  // may cross
                                                          // revolutions
        const CivilTime to(now + jump);
        heap.AdvanceWatermark(to);
        wheel.AdvanceWatermark(to);
        now = std::max(now, now + jump);
      } else {
        for (uint64_t k = rng.NextBounded(8); k > 0; --k) {
          if (!pop_both()) break;
        }
      }
      ASSERT_EQ(heap.buffered_count(), wheel.buffered_count())
          << "trial " << trial << " step " << step;
      ASSERT_EQ(heap.watermark(), wheel.watermark());
    }
    heap.Flush();
    wheel.Flush();
    // Batch release for the tail: ForEachReady on both must agree too.
    std::vector<std::pair<int64_t, int64_t>> heap_tail, wheel_tail;
    ASSERT_TRUE(heap.ForEachReady([&](const TripEvent& e) {
                      heap_tail.emplace_back(
                          e.start_time.seconds_since_epoch(), e.rental_id);
                      return Status::OK();
                    }).ok());
    ASSERT_TRUE(wheel
                    .ForEachReady([&](const TripEvent& e) {
                      wheel_tail.emplace_back(
                          e.start_time.seconds_since_epoch(), e.rental_id);
                      return Status::OK();
                    })
                    .ok());
    EXPECT_EQ(heap_tail, wheel_tail) << "trial " << trial;
    released.insert(released.end(), heap_tail.begin(), heap_tail.end());
    // Start times never regress. (Full (start, id) order is NOT asserted
    // globally: an exact-boundary straggler may legitimately arrive
    // after an earlier same-second event was already popped, and nothing
    // can release before an already-released event — both backends
    // handle that identically, which the element-wise comparison above
    // locks.)
    EXPECT_TRUE(std::is_sorted(
        released.begin(), released.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; }))
        << "trial " << trial;
    EXPECT_EQ(heap.released_count(), wheel.released_count());
    EXPECT_EQ(heap.reordered_count(), wheel.reordered_count());
    EXPECT_EQ(heap.late_dropped_count(), wheel.late_dropped_count());
    EXPECT_EQ(heap.duplicate_count(), wheel.duplicate_count());
    EXPECT_EQ(heap.buffered_count(), 0u);
    EXPECT_EQ(wheel.buffered_count(), 0u);
  }
}

// ---------------------------------------------------------------------------
// StreamEngine wiring.
// ---------------------------------------------------------------------------

using testing::PlantedStream;

TEST(StreamEngineReorderTest, BufferedEventsBecomeVisibleOnRelease) {
  StreamEngineConfig config;
  config.station_count = 4;
  config.window_seconds = 0;
  config.max_lateness_seconds = 3600;
  StreamEngine engine(config);

  ASSERT_TRUE(engine.Ingest(Trip(0, 1, At(6, 10), 1)).ok());
  // Held: the event could still be preceded by an admissible straggler.
  EXPECT_EQ(engine.buffered_count(), 1u);
  EXPECT_EQ(engine.window().trip_count(), 0u);

  // An event an hour later makes the first one safe to release.
  ASSERT_TRUE(engine.Ingest(Trip(2, 3, At(6, 11), 2)).ok());
  EXPECT_EQ(engine.window().trip_count(), 1u);
  EXPECT_EQ(engine.buffered_count(), 1u);

  ASSERT_TRUE(engine.Flush().ok());
  EXPECT_EQ(engine.window().trip_count(), 2u);
  EXPECT_EQ(engine.buffered_count(), 0u);
  // A flushed engine refuses further events rather than reordering them
  // against an already-drained buffer.
  EXPECT_FALSE(engine.Ingest(Trip(0, 1, At(6, 12), 3)).ok());
}

TEST(StreamEngineReorderTest, WatermarkNeverRegressesThroughAdvance) {
  StreamEngineConfig config;
  config.station_count = 2;
  config.window_seconds = 3600;
  config.max_lateness_seconds = 600;
  config.late_policy = LateEventPolicy::kDrop;
  StreamEngine engine(config);

  ASSERT_TRUE(engine.Advance(At(6, 12)).ok());
  EXPECT_EQ(engine.watermark(), At(6, 12));
  // Advancing backwards is a no-op on both the window and the buffer.
  ASSERT_TRUE(engine.Advance(At(6, 9)).ok());
  EXPECT_EQ(engine.watermark(), At(6, 12));
  EXPECT_EQ(engine.reorder().watermark(), At(6, 12));

  // Lateness is judged against the non-regressed watermark: an event from
  // 9:00 is three hours behind a 10-minute horizon.
  ASSERT_TRUE(engine.Ingest(Trip(0, 1, At(6, 9), 1)).ok());
  EXPECT_EQ(engine.late_dropped_count(), 1u);
  EXPECT_EQ(engine.window().trip_count(), 0u);
}

TEST(StreamEngineReorderTest, LateAndDuplicateStatsSurface) {
  StreamEngineConfig config;
  config.station_count = 2;
  config.window_seconds = 0;
  config.max_lateness_seconds = 600;
  config.late_policy = LateEventPolicy::kDrop;
  config.suppress_duplicate_rentals = true;
  StreamEngine engine(config);

  ASSERT_TRUE(engine.Ingest(Trip(0, 1, At(6, 10), 1)).ok());
  ASSERT_TRUE(engine.Ingest(Trip(0, 1, At(6, 10), 1)).ok());   // redelivery
  ASSERT_TRUE(engine.Ingest(Trip(0, 1, At(6, 9), 2)).ok());    // too late
  ASSERT_TRUE(engine.Ingest(Trip(0, 1, At(6, 10, 5), 3)).ok());
  ASSERT_TRUE(engine.Flush().ok());
  EXPECT_EQ(engine.duplicate_count(), 1u);
  EXPECT_EQ(engine.late_dropped_count(), 1u);
  EXPECT_EQ(engine.window().trip_count(), 2u);
  // Out-of-range endpoints fail at arrival, not a horizon later.
  StreamEngine fresh(config);
  EXPECT_EQ(fresh.Ingest(Trip(0, 5, At(6, 10), 9)).code(),
            StatusCode::kInvalidArgument);
}

using bikegraph::ExpectGraphsIdentical;  // tests/graph_test_util.h

TEST(StreamEngineReorderTest, JitteredPlantedStreamMatchesOrdered) {
  const size_t stations = 24;
  const auto ordered = PlantedStream(stations, 3, 10, 300, 7);
  const auto jittered = JitterOrder(ordered, /*lag_seconds=*/1800, 99);
  ASSERT_FALSE(IsStartOrdered(jittered));

  StreamEngineConfig config;
  config.station_count = stations;
  config.window_seconds = 3 * 86400;
  StreamEngine ordered_engine(config);
  config.max_lateness_seconds = 1800;
  StreamEngine jittered_engine(config);

  for (const TripEvent& e : ordered) {
    ASSERT_TRUE(ordered_engine.Ingest(e).ok());
  }
  for (const TripEvent& e : jittered) {
    ASSERT_TRUE(jittered_engine.Ingest(e).ok());
  }
  ASSERT_TRUE(ordered_engine.Flush().ok());
  ASSERT_TRUE(jittered_engine.Flush().ok());
  EXPECT_GT(jittered_engine.reordered_count(), 0u);
  EXPECT_EQ(jittered_engine.late_dropped_count(), 0u);
  EXPECT_EQ(jittered_engine.ingested_count(),
            ordered_engine.ingested_count());
  EXPECT_EQ(jittered_engine.watermark(), ordered_engine.watermark());

  auto ordered_snap = ordered_engine.Snapshot();
  auto jittered_snap = jittered_engine.Snapshot();
  ASSERT_TRUE(ordered_snap.ok());
  ASSERT_TRUE(jittered_snap.ok());
  EXPECT_EQ((*jittered_snap)->trip_count, (*ordered_snap)->trip_count);
  EXPECT_EQ((*jittered_snap)->window_start, (*ordered_snap)->window_start);
  EXPECT_EQ((*jittered_snap)->profiles.day, (*ordered_snap)->profiles.day);
  EXPECT_EQ((*jittered_snap)->profiles.hour, (*ordered_snap)->profiles.hour);
  ExpectGraphsIdentical((*jittered_snap)->graph, (*ordered_snap)->graph);
}

TEST(StreamEngineReorderTest, WheelAndHeapBackendsProduceIdenticalResults) {
  const size_t stations = 24;
  const auto jittered =
      JitterOrder(PlantedStream(stations, 3, 10, 300, 7), 1800, 42);

  StreamEngineConfig config;
  config.station_count = stations;
  config.window_seconds = 3 * 86400;
  config.max_lateness_seconds = 1800;
  config.reorder_backend = ReorderBackend::kHeap;
  StreamEngine heap_engine(config);
  config.reorder_backend = ReorderBackend::kWheel;
  StreamEngine wheel_engine(config);

  for (const TripEvent& e : jittered) {
    ASSERT_TRUE(heap_engine.Ingest(e).ok());
    ASSERT_TRUE(wheel_engine.Ingest(e).ok());
    ASSERT_EQ(heap_engine.buffered_count(), wheel_engine.buffered_count());
    ASSERT_EQ(heap_engine.window().trip_count(),
              wheel_engine.window().trip_count());
  }
  ASSERT_TRUE(heap_engine.Flush().ok());
  ASSERT_TRUE(wheel_engine.Flush().ok());
  EXPECT_EQ(heap_engine.reordered_count(), wheel_engine.reordered_count());
  EXPECT_GT(wheel_engine.reordered_count(), 0u);

  auto heap_snap = heap_engine.Snapshot();
  auto wheel_snap = wheel_engine.Snapshot();
  ASSERT_TRUE(heap_snap.ok());
  ASSERT_TRUE(wheel_snap.ok());
  EXPECT_EQ((*wheel_snap)->profiles.day, (*heap_snap)->profiles.day);
  EXPECT_EQ((*wheel_snap)->profiles.hour, (*heap_snap)->profiles.hour);
  ExpectGraphsIdentical((*wheel_snap)->graph, (*heap_snap)->graph);
}

// ---------------------------------------------------------------------------
// Headline acceptance: jittered replay of the full synthetic dataset.
// ---------------------------------------------------------------------------

class JitteredReplayEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticConfig synth;  // the full synthetic Moby dataset
    auto raw = data::GenerateSyntheticMoby(synth);
    ASSERT_TRUE(raw.ok());
    auto pipeline = expansion::RunExpansionPipeline(*raw);
    ASSERT_TRUE(pipeline.ok());
    pipeline_ = new expansion::PipelineResult(std::move(*pipeline));
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }

  static expansion::PipelineResult* pipeline_;
};

expansion::PipelineResult* JitteredReplayEquivalenceTest::pipeline_ = nullptr;

/// Runs ordered and jittered replays of the whole cleaned dataset through
/// two engines with the given window, then requires the final window
/// graphs, snapshots, and Louvain partitions to match bit for bit. The
/// jittered engine additionally ingests through `shard_count` shards
/// (1 = the single-writer engine), so the sharded variants lock the
/// merge-at-freeze path against the same ordered single-writer oracle.
void ExpectJitteredReplayEquivalent(const expansion::PipelineResult& pipeline,
                                    int64_t window_seconds,
                                    size_t shard_count = 1) {
  const expansion::FinalNetwork& net = pipeline.final_network;
  const int64_t lag = 3600;  // an hour of report jitter, paper-trip scale

  StreamEngineConfig config;
  config.station_count = net.stations.size();
  config.window_seconds = window_seconds;
  StreamEngine ordered_engine(config);
  config.max_lateness_seconds = lag;
  config.shard_count = shard_count;
  StreamEngine jittered_engine(config);
  ASSERT_EQ(jittered_engine.shard_count(), shard_count);

  ReplaySource ordered = ReplaySource::FromFinalNetwork(pipeline.cleaned, net);
  ReplayOptions jitter;
  jitter.shuffle_seconds = lag;
  jitter.shuffle_seed = 2024;
  ReplaySource jittered =
      ReplaySource::FromFinalNetwork(pipeline.cleaned, net, jitter);

  // The jittered stream really is out of start-time order, and is a
  // permutation of the ordered one.
  ASSERT_EQ(jittered.events().size(), ordered.events().size());
  ASSERT_FALSE(IsStartOrdered(jittered.events()));

  ASSERT_TRUE(ordered.ReplayInto(&ordered_engine).ok());
  ASSERT_TRUE(jittered.ReplayInto(&jittered_engine).ok());
  EXPECT_GT(jittered_engine.reordered_count(), 0u);
  EXPECT_EQ(jittered_engine.late_dropped_count(), 0u);
  EXPECT_EQ(jittered_engine.buffered_count(), 0u);
  EXPECT_EQ(jittered_engine.ingested_count(), ordered.events().size());
  EXPECT_EQ(jittered_engine.watermark(), ordered_engine.watermark());

  auto ordered_snap = ordered_engine.Snapshot();
  auto jittered_snap = jittered_engine.Snapshot();
  ASSERT_TRUE(ordered_snap.ok());
  ASSERT_TRUE(jittered_snap.ok());
  EXPECT_EQ((*jittered_snap)->trip_count, (*ordered_snap)->trip_count);
  EXPECT_EQ((*jittered_snap)->window_start, (*ordered_snap)->window_start);
  EXPECT_EQ((*jittered_snap)->window_end, (*ordered_snap)->window_end);
  EXPECT_EQ((*jittered_snap)->profiles.day, (*ordered_snap)->profiles.day);
  EXPECT_EQ((*jittered_snap)->profiles.hour,
            (*ordered_snap)->profiles.hour);
  ExpectGraphsIdentical((*jittered_snap)->graph, (*ordered_snap)->graph);

  auto ordered_detect = ordered_engine.DetectCurrent();
  auto jittered_detect = jittered_engine.DetectCurrent();
  ASSERT_TRUE(ordered_detect.ok());
  ASSERT_TRUE(jittered_detect.ok());
  EXPECT_EQ(jittered_detect->result.partition.assignment,
            ordered_detect->result.partition.assignment);
  EXPECT_EQ(jittered_detect->result.modularity,
            ordered_detect->result.modularity);  // bitwise
}

TEST_F(JitteredReplayEquivalenceTest, SlidingWindowBitForBit) {
  ExpectJitteredReplayEquivalent(*pipeline_, /*window_seconds=*/7 * 86400);
}

TEST_F(JitteredReplayEquivalenceTest, LandmarkWindowBitForBit) {
  ExpectJitteredReplayEquivalent(*pipeline_, /*window_seconds=*/0);
}

// Sharded acceptance: the same full-dataset jittered replay through 2-
// and 4-shard engines must still reproduce the ordered single-writer
// result bit for bit — window graph, snapshot, and Louvain partition.
TEST_F(JitteredReplayEquivalenceTest, SlidingWindowBitForBitTwoShards) {
  ExpectJitteredReplayEquivalent(*pipeline_, /*window_seconds=*/7 * 86400,
                                 /*shard_count=*/2);
}

TEST_F(JitteredReplayEquivalenceTest, SlidingWindowBitForBitFourShards) {
  ExpectJitteredReplayEquivalent(*pipeline_, /*window_seconds=*/7 * 86400,
                                 /*shard_count=*/4);
}

TEST_F(JitteredReplayEquivalenceTest, LandmarkWindowBitForBitTwoShards) {
  ExpectJitteredReplayEquivalent(*pipeline_, /*window_seconds=*/0,
                                 /*shard_count=*/2);
}

TEST_F(JitteredReplayEquivalenceTest, LandmarkWindowBitForBitFourShards) {
  ExpectJitteredReplayEquivalent(*pipeline_, /*window_seconds=*/0,
                                 /*shard_count=*/4);
}

// ---------------------------------------------------------------------------
// Duplicate-suppression memory bound (max_duplicate_ids).
// ---------------------------------------------------------------------------

// The pre-fix failure mode: with the cap disabled, a long-lateness stream
// of distinct rental ids grows the suppression set without bound — the
// high-water mark tracks the stream length, not any horizon.
TEST_P(ReorderBufferTest, DuplicateIdSetGrowsUnboundedWithoutCap) {
  ReorderBufferOptions options =
      Opts(/*max_lateness_seconds=*/86400, LateEventPolicy::kDrop,
           /*suppress_duplicates=*/true);
  options.max_duplicate_ids = 0;  // unbounded (the pre-fix behaviour)
  ReorderBuffer buffer(options);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        buffer.Push(Trip(0, 1, At(6, 8).AddSeconds(i), 1000 + i)).ok());
  }
  // One live set entry per distinct id: nothing aged out (the horizon is
  // a day) and nothing was evicted (no cap).
  EXPECT_EQ(buffer.duplicate_ids_high_water(), 500u);
  EXPECT_EQ(buffer.duplicate_ids_evicted(), 0u);
}

TEST_P(ReorderBufferTest, DuplicateIdCapEvictsOldestStartsFirst) {
  ReorderBufferOptions options =
      Opts(/*max_lateness_seconds=*/86400, LateEventPolicy::kDrop,
           /*suppress_duplicates=*/true);
  options.max_duplicate_ids = 64;
  ReorderBuffer buffer(options);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        buffer.Push(Trip(0, 1, At(6, 8).AddSeconds(i), 1000 + i)).ok());
  }
  // Eviction happens before insertion, so the set never exceeds the cap.
  EXPECT_EQ(buffer.duplicate_ids_high_water(), 64u);
  EXPECT_EQ(buffer.duplicate_ids_evicted(), 436u);

  // A redelivery of a *recent* id is still suppressed...
  const uint64_t duplicates_before = buffer.duplicate_count();
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 8).AddSeconds(499), 1499)).ok());
  EXPECT_EQ(buffer.duplicate_count(), duplicates_before + 1);

  // ...but a redelivery of an *evicted* id (oldest start, well inside the
  // lateness horizon) is re-admitted — the documented price of the bound.
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 8), 1000)).ok());
  EXPECT_EQ(buffer.duplicate_count(), duplicates_before + 1);
  EXPECT_EQ(buffer.late_dropped_count(), 0u);
}

}  // namespace
}  // namespace bikegraph::stream
