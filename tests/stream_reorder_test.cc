// Out-of-order ingestion: the ReorderBuffer's ordering/lateness/duplicate
// contract, the StreamEngine wiring around it (watermark regression,
// buffered-event visibility, end-of-stream flush, surfaced stats), and the
// headline property — a jittered replay of the full synthetic dataset
// through the buffer reproduces the ordered replay's window graph,
// snapshot, and Louvain partition bit for bit.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "community/detector.h"
#include "core/civil_time.h"
#include "data/synthetic.h"
#include "expansion/pipeline.h"
#include "stream/engine.h"
#include "stream/reorder_buffer.h"
#include "stream/replay.h"
#include "stream/testing.h"

#include <gtest/gtest.h>

namespace bikegraph::stream {
namespace {

CivilTime At(int day, int hour, int minute = 0) {
  return CivilTime::FromCalendar(2020, 1, day, hour, minute).ValueOrDie();
}

TripEvent Trip(int32_t from, int32_t to, CivilTime start,
               int64_t rental_id = 1) {
  TripEvent e;
  e.rental_id = rental_id;
  e.from_station = from;
  e.to_station = to;
  e.start_time = start;
  e.end_time = start.AddSeconds(600);
  return e;
}

/// The one shared jitter model (stream::JitterArrivalOrder), arrival
/// order only — what the engine equivalence tests feed.
std::vector<TripEvent> JitterOrder(const std::vector<TripEvent>& events,
                                   int64_t lag_seconds, uint64_t seed) {
  return JitterArrivalOrder(events, lag_seconds, seed).events;
}

bool IsStartOrdered(const std::vector<TripEvent>& events) {
  for (size_t i = 1; i < events.size(); ++i) {
    if (events[i].start_time < events[i - 1].start_time) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// ReorderBuffer unit behaviour.
// ---------------------------------------------------------------------------

TEST(ReorderBufferTest, StrictModeIsPassThrough) {
  ReorderBuffer buffer;  // max_lateness 0, kError: the pre-buffer contract
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 8), 1)).ok());
  auto released = buffer.PopReady();
  ASSERT_TRUE(released.has_value());
  EXPECT_EQ(released->rental_id, 1);
  // Equal start times are fine, a regression is not.
  ASSERT_TRUE(buffer.Push(Trip(1, 0, At(6, 8), 2)).ok());
  EXPECT_TRUE(buffer.PopReady().has_value());
  auto late = buffer.Push(Trip(0, 1, At(6, 7), 3));
  EXPECT_EQ(late.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(buffer.reordered_count(), 0u);
}

TEST(ReorderBufferTest, ReordersWithinHorizon) {
  ReorderBufferOptions options;
  options.max_lateness_seconds = 3600;
  ReorderBuffer buffer(options);
  // Arrival order 10:00, 9:30, 10:20, 9:40 — all within an hour of the
  // running watermark.
  for (const TripEvent& e :
       {Trip(0, 1, At(6, 10, 0), 1), Trip(0, 1, At(6, 9, 30), 2),
        Trip(0, 1, At(6, 10, 20), 3), Trip(0, 1, At(6, 9, 40), 4)}) {
    ASSERT_TRUE(buffer.Push(e).ok());
  }
  EXPECT_EQ(buffer.reordered_count(), 2u);  // 9:30 and 9:40 arrived late
  EXPECT_EQ(buffer.buffered_count(), 4u);
  EXPECT_FALSE(buffer.HasReady());  // nothing is an hour behind 10:20 yet

  buffer.AdvanceWatermark(At(6, 11, 20));
  std::vector<int64_t> released;
  while (auto e = buffer.PopReady()) {
    released.push_back(e->start_time.seconds_since_epoch());
  }
  // Everything up to 10:20 is now safe, and comes out in start order.
  ASSERT_EQ(released.size(), 4u);
  EXPECT_TRUE(std::is_sorted(released.begin(), released.end()));
  EXPECT_EQ(buffer.released_count(), 4u);
}

TEST(ReorderBufferTest, TiesReleaseInRentalIdOrder) {
  ReorderBufferOptions options;
  options.max_lateness_seconds = 600;
  ReorderBuffer buffer(options);
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 8), 9)).ok());
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 8), 3)).ok());
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 8), 7)).ok());
  buffer.Flush();
  std::vector<int64_t> ids;
  while (auto e = buffer.PopReady()) ids.push_back(e->rental_id);
  EXPECT_EQ(ids, (std::vector<int64_t>{3, 7, 9}));
}

TEST(ReorderBufferTest, TiesReleaseInRentalIdOrderThroughTheDirectSlot) {
  // Strict mode: both events are releasable on arrival, so the first
  // occupies the direct slot. The smaller rental id arriving second must
  // still come out first.
  ReorderBuffer buffer;  // max_lateness 0
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 8), 9)).ok());
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 8), 3)).ok());
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 8), 7)).ok());
  std::vector<int64_t> ids;
  while (auto e = buffer.PopReady()) ids.push_back(e->rental_id);
  EXPECT_EQ(ids, (std::vector<int64_t>{3, 7, 9}));
}

TEST(ReorderBufferTest, JitterModelHasBoundedNonDecreasingReportTimes) {
  const auto ordered = testing::PlantedStream(12, 2, 3, 200, 5);
  const int64_t lag = 1800;
  const JitteredStream jittered = JitterArrivalOrder(ordered, lag, 42);
  ASSERT_EQ(jittered.events.size(), ordered.size());
  ASSERT_EQ(jittered.report_seconds.size(), ordered.size());
  EXPECT_TRUE(std::is_sorted(jittered.report_seconds.begin(),
                             jittered.report_seconds.end()));
  for (size_t i = 0; i < jittered.events.size(); ++i) {
    const int64_t delay =
        jittered.report_seconds[i] -
        jittered.events[i].start_time.seconds_since_epoch();
    EXPECT_GE(delay, 0) << i;
    EXPECT_LE(delay, lag) << i;
  }
}

TEST(ReorderBufferTest, LateDropPolicyCountsAndDiscards) {
  ReorderBufferOptions options;
  options.max_lateness_seconds = 600;
  options.late_policy = LateEventPolicy::kDrop;
  ReorderBuffer buffer(options);
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 10), 1)).ok());
  // 20 minutes behind a 10-minute horizon: dropped, not an error.
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 9, 40), 2)).ok());
  EXPECT_EQ(buffer.late_dropped_count(), 1u);
  buffer.Flush();
  std::vector<int64_t> ids;
  while (auto e = buffer.PopReady()) ids.push_back(e->rental_id);
  EXPECT_EQ(ids, (std::vector<int64_t>{1}));  // the late event never releases
}

TEST(ReorderBufferTest, LateErrorPolicyRefuses) {
  ReorderBufferOptions options;
  options.max_lateness_seconds = 600;
  options.late_policy = LateEventPolicy::kError;
  ReorderBuffer buffer(options);
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 10), 1)).ok());
  auto late = buffer.Push(Trip(0, 1, At(6, 9, 40), 2));
  EXPECT_EQ(late.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(buffer.late_dropped_count(), 0u);
  // An event exactly at the horizon is still admissible.
  EXPECT_TRUE(buffer.Push(Trip(0, 1, At(6, 9, 50), 3)).ok());
}

TEST(ReorderBufferTest, DuplicateRentalIdsAreSuppressed) {
  ReorderBufferOptions options;
  options.max_lateness_seconds = 3600;
  options.late_policy = LateEventPolicy::kDrop;
  options.suppress_duplicates = true;
  ReorderBuffer buffer(options);
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 10), 42)).ok());
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 10), 42)).ok());  // redelivery
  EXPECT_EQ(buffer.duplicate_count(), 1u);
  EXPECT_EQ(buffer.buffered_count(), 1u);
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 10, 5), 43)).ok());
  EXPECT_EQ(buffer.duplicate_count(), 1u);
  EXPECT_EQ(buffer.buffered_count(), 2u);

  // Once the id's start time leaves the horizon the redelivery is late
  // instead (that bound is what keeps the id set finite).
  buffer.AdvanceWatermark(At(6, 12));
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 10), 42)).ok());
  EXPECT_EQ(buffer.duplicate_count(), 1u);
  EXPECT_EQ(buffer.late_dropped_count(), 1u);
}

TEST(ReorderBufferTest, InvalidIdsAreNeverSuppressed) {
  ReorderBufferOptions options;
  options.max_lateness_seconds = 3600;
  options.suppress_duplicates = true;
  ReorderBuffer buffer(options);
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 10), data::kInvalidId)).ok());
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 10), data::kInvalidId)).ok());
  EXPECT_EQ(buffer.duplicate_count(), 0u);
  EXPECT_EQ(buffer.buffered_count(), 2u);
}

TEST(ReorderBufferTest, FlushDrainsAndSealsTheStream) {
  ReorderBufferOptions options;
  options.max_lateness_seconds = 7200;
  ReorderBuffer buffer(options);
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 10), 2)).ok());
  ASSERT_TRUE(buffer.Push(Trip(0, 1, At(6, 9), 1)).ok());
  EXPECT_FALSE(buffer.HasReady());
  buffer.Flush();
  EXPECT_TRUE(buffer.HasReady());
  EXPECT_EQ(buffer.PopReady()->rental_id, 1);
  EXPECT_EQ(buffer.PopReady()->rental_id, 2);
  EXPECT_FALSE(buffer.PopReady().has_value());
  // End of stream means end of stream.
  EXPECT_EQ(buffer.Push(Trip(0, 1, At(6, 11), 3)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ReorderBufferTest, NegativeLatenessIsRejected) {
  ReorderBufferOptions options;
  options.max_lateness_seconds = -1;
  ReorderBuffer buffer(options);
  EXPECT_EQ(buffer.Push(Trip(0, 1, At(6, 10), 1)).code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// StreamEngine wiring.
// ---------------------------------------------------------------------------

using testing::PlantedStream;

TEST(StreamEngineReorderTest, BufferedEventsBecomeVisibleOnRelease) {
  StreamEngineConfig config;
  config.station_count = 4;
  config.window_seconds = 0;
  config.max_lateness_seconds = 3600;
  StreamEngine engine(config);

  ASSERT_TRUE(engine.Ingest(Trip(0, 1, At(6, 10), 1)).ok());
  // Held: the event could still be preceded by an admissible straggler.
  EXPECT_EQ(engine.buffered_count(), 1u);
  EXPECT_EQ(engine.window().trip_count(), 0u);

  // An event an hour later makes the first one safe to release.
  ASSERT_TRUE(engine.Ingest(Trip(2, 3, At(6, 11), 2)).ok());
  EXPECT_EQ(engine.window().trip_count(), 1u);
  EXPECT_EQ(engine.buffered_count(), 1u);

  ASSERT_TRUE(engine.Flush().ok());
  EXPECT_EQ(engine.window().trip_count(), 2u);
  EXPECT_EQ(engine.buffered_count(), 0u);
  // A flushed engine refuses further events rather than reordering them
  // against an already-drained buffer.
  EXPECT_FALSE(engine.Ingest(Trip(0, 1, At(6, 12), 3)).ok());
}

TEST(StreamEngineReorderTest, WatermarkNeverRegressesThroughAdvance) {
  StreamEngineConfig config;
  config.station_count = 2;
  config.window_seconds = 3600;
  config.max_lateness_seconds = 600;
  config.late_policy = LateEventPolicy::kDrop;
  StreamEngine engine(config);

  ASSERT_TRUE(engine.Advance(At(6, 12)).ok());
  EXPECT_EQ(engine.watermark(), At(6, 12));
  // Advancing backwards is a no-op on both the window and the buffer.
  ASSERT_TRUE(engine.Advance(At(6, 9)).ok());
  EXPECT_EQ(engine.watermark(), At(6, 12));
  EXPECT_EQ(engine.reorder().watermark(), At(6, 12));

  // Lateness is judged against the non-regressed watermark: an event from
  // 9:00 is three hours behind a 10-minute horizon.
  ASSERT_TRUE(engine.Ingest(Trip(0, 1, At(6, 9), 1)).ok());
  EXPECT_EQ(engine.late_dropped_count(), 1u);
  EXPECT_EQ(engine.window().trip_count(), 0u);
}

TEST(StreamEngineReorderTest, LateAndDuplicateStatsSurface) {
  StreamEngineConfig config;
  config.station_count = 2;
  config.window_seconds = 0;
  config.max_lateness_seconds = 600;
  config.late_policy = LateEventPolicy::kDrop;
  config.suppress_duplicate_rentals = true;
  StreamEngine engine(config);

  ASSERT_TRUE(engine.Ingest(Trip(0, 1, At(6, 10), 1)).ok());
  ASSERT_TRUE(engine.Ingest(Trip(0, 1, At(6, 10), 1)).ok());   // redelivery
  ASSERT_TRUE(engine.Ingest(Trip(0, 1, At(6, 9), 2)).ok());    // too late
  ASSERT_TRUE(engine.Ingest(Trip(0, 1, At(6, 10, 5), 3)).ok());
  ASSERT_TRUE(engine.Flush().ok());
  EXPECT_EQ(engine.duplicate_count(), 1u);
  EXPECT_EQ(engine.late_dropped_count(), 1u);
  EXPECT_EQ(engine.window().trip_count(), 2u);
  // Out-of-range endpoints fail at arrival, not a horizon later.
  StreamEngine fresh(config);
  EXPECT_EQ(fresh.Ingest(Trip(0, 5, At(6, 10), 9)).code(),
            StatusCode::kInvalidArgument);
}

void ExpectGraphsIdentical(const graphdb::WeightedGraph& a,
                           const graphdb::WeightedGraph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  ASSERT_EQ(a.self_loop_count(), b.self_loop_count());
  EXPECT_EQ(a.total_weight(), b.total_weight());  // bitwise, not NEAR
  for (size_t u = 0; u < a.node_count(); ++u) {
    const auto ui = static_cast<int32_t>(u);
    EXPECT_EQ(a.self_weight(ui), b.self_weight(ui)) << "node " << u;
    EXPECT_EQ(a.strength(ui), b.strength(ui)) << "node " << u;
    auto na = a.neighbors(ui);
    auto nb = b.neighbors(ui);
    ASSERT_EQ(na.size(), nb.size()) << "node " << u;
    for (size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].node, nb[i].node) << "node " << u << " nb " << i;
      EXPECT_EQ(na[i].weight, nb[i].weight) << "node " << u << " nb " << i;
    }
  }
}

TEST(StreamEngineReorderTest, JitteredPlantedStreamMatchesOrdered) {
  const size_t stations = 24;
  const auto ordered = PlantedStream(stations, 3, 10, 300, 7);
  const auto jittered = JitterOrder(ordered, /*lag_seconds=*/1800, 99);
  ASSERT_FALSE(IsStartOrdered(jittered));

  StreamEngineConfig config;
  config.station_count = stations;
  config.window_seconds = 3 * 86400;
  StreamEngine ordered_engine(config);
  config.max_lateness_seconds = 1800;
  StreamEngine jittered_engine(config);

  for (const TripEvent& e : ordered) {
    ASSERT_TRUE(ordered_engine.Ingest(e).ok());
  }
  for (const TripEvent& e : jittered) {
    ASSERT_TRUE(jittered_engine.Ingest(e).ok());
  }
  ASSERT_TRUE(ordered_engine.Flush().ok());
  ASSERT_TRUE(jittered_engine.Flush().ok());
  EXPECT_GT(jittered_engine.reordered_count(), 0u);
  EXPECT_EQ(jittered_engine.late_dropped_count(), 0u);
  EXPECT_EQ(jittered_engine.ingested_count(),
            ordered_engine.ingested_count());
  EXPECT_EQ(jittered_engine.watermark(), ordered_engine.watermark());

  auto ordered_snap = ordered_engine.Snapshot();
  auto jittered_snap = jittered_engine.Snapshot();
  ASSERT_TRUE(ordered_snap.ok());
  ASSERT_TRUE(jittered_snap.ok());
  EXPECT_EQ((*jittered_snap)->trip_count, (*ordered_snap)->trip_count);
  EXPECT_EQ((*jittered_snap)->window_start, (*ordered_snap)->window_start);
  EXPECT_EQ((*jittered_snap)->profiles.day, (*ordered_snap)->profiles.day);
  EXPECT_EQ((*jittered_snap)->profiles.hour, (*ordered_snap)->profiles.hour);
  ExpectGraphsIdentical((*jittered_snap)->graph, (*ordered_snap)->graph);
}

// ---------------------------------------------------------------------------
// Headline acceptance: jittered replay of the full synthetic dataset.
// ---------------------------------------------------------------------------

class JitteredReplayEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticConfig synth;  // the full synthetic Moby dataset
    auto raw = data::GenerateSyntheticMoby(synth);
    ASSERT_TRUE(raw.ok());
    auto pipeline = expansion::RunExpansionPipeline(*raw);
    ASSERT_TRUE(pipeline.ok());
    pipeline_ = new expansion::PipelineResult(std::move(*pipeline));
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }

  static expansion::PipelineResult* pipeline_;
};

expansion::PipelineResult* JitteredReplayEquivalenceTest::pipeline_ = nullptr;

/// Runs ordered and jittered replays of the whole cleaned dataset through
/// two engines with the given window, then requires the final window
/// graphs, snapshots, and Louvain partitions to match bit for bit.
void ExpectJitteredReplayEquivalent(const expansion::PipelineResult& pipeline,
                                    int64_t window_seconds) {
  const expansion::FinalNetwork& net = pipeline.final_network;
  const int64_t lag = 3600;  // an hour of report jitter, paper-trip scale

  StreamEngineConfig config;
  config.station_count = net.stations.size();
  config.window_seconds = window_seconds;
  StreamEngine ordered_engine(config);
  config.max_lateness_seconds = lag;
  StreamEngine jittered_engine(config);

  ReplaySource ordered = ReplaySource::FromFinalNetwork(pipeline.cleaned, net);
  ReplayOptions jitter;
  jitter.shuffle_seconds = lag;
  jitter.shuffle_seed = 2024;
  ReplaySource jittered =
      ReplaySource::FromFinalNetwork(pipeline.cleaned, net, jitter);

  // The jittered stream really is out of start-time order, and is a
  // permutation of the ordered one.
  ASSERT_EQ(jittered.events().size(), ordered.events().size());
  ASSERT_FALSE(IsStartOrdered(jittered.events()));

  ASSERT_TRUE(ordered.ReplayInto(&ordered_engine).ok());
  ASSERT_TRUE(jittered.ReplayInto(&jittered_engine).ok());
  EXPECT_GT(jittered_engine.reordered_count(), 0u);
  EXPECT_EQ(jittered_engine.late_dropped_count(), 0u);
  EXPECT_EQ(jittered_engine.buffered_count(), 0u);
  EXPECT_EQ(jittered_engine.ingested_count(), ordered.events().size());
  EXPECT_EQ(jittered_engine.watermark(), ordered_engine.watermark());

  auto ordered_snap = ordered_engine.Snapshot();
  auto jittered_snap = jittered_engine.Snapshot();
  ASSERT_TRUE(ordered_snap.ok());
  ASSERT_TRUE(jittered_snap.ok());
  EXPECT_EQ((*jittered_snap)->trip_count, (*ordered_snap)->trip_count);
  EXPECT_EQ((*jittered_snap)->window_start, (*ordered_snap)->window_start);
  EXPECT_EQ((*jittered_snap)->window_end, (*ordered_snap)->window_end);
  EXPECT_EQ((*jittered_snap)->profiles.day, (*ordered_snap)->profiles.day);
  EXPECT_EQ((*jittered_snap)->profiles.hour,
            (*ordered_snap)->profiles.hour);
  ExpectGraphsIdentical((*jittered_snap)->graph, (*ordered_snap)->graph);

  auto ordered_detect = ordered_engine.DetectCurrent();
  auto jittered_detect = jittered_engine.DetectCurrent();
  ASSERT_TRUE(ordered_detect.ok());
  ASSERT_TRUE(jittered_detect.ok());
  EXPECT_EQ(jittered_detect->result.partition.assignment,
            ordered_detect->result.partition.assignment);
  EXPECT_EQ(jittered_detect->result.modularity,
            ordered_detect->result.modularity);  // bitwise
}

TEST_F(JitteredReplayEquivalenceTest, SlidingWindowBitForBit) {
  ExpectJitteredReplayEquivalent(*pipeline_, /*window_seconds=*/7 * 86400);
}

TEST_F(JitteredReplayEquivalenceTest, LandmarkWindowBitForBit) {
  ExpectJitteredReplayEquivalent(*pipeline_, /*window_seconds=*/0);
}

}  // namespace
}  // namespace bikegraph::stream
