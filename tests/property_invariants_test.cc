// Cross-cutting property tests: invariants that must hold on randomly
// generated inputs, swept over seeds with TEST_P.

#include <cmath>
#include <set>

#include "community/fast_greedy.h"
#include "community/infomap.h"
#include "community/label_propagation.h"
#include "community/louvain.h"
#include "community/modularity.h"
#include "community/aggregate.h"
#include "core/rng.h"
#include "data/cleaning.h"
#include "data/synthetic.h"
#include "geo/dublin.h"
#include "graphdb/weighted_graph.h"
#include "metrics/centrality.h"

#include <gtest/gtest.h>

namespace bikegraph {
namespace {

/// Random weighted graph with planted noise (no structure guaranteed).
graphdb::WeightedGraph RandomGraph(uint64_t seed, size_t n, size_t edges) {
  Rng rng(seed);
  graphdb::WeightedGraphBuilder b(n);
  for (size_t e = 0; e < edges; ++e) {
    int32_t u = static_cast<int32_t>(rng.NextBounded(n));
    int32_t v = static_cast<int32_t>(rng.NextBounded(n));
    (void)b.AddEdge(u, v, 0.25 + rng.NextDouble());
  }
  return b.Build();
}

class GraphSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphSeedTest, StrengthSumsToTwiceTotalWeight) {
  auto g = RandomGraph(GetParam(), 60, 300);
  double sum = 0.0;
  for (size_t u = 0; u < g.node_count(); ++u) {
    sum += g.strength(static_cast<int32_t>(u));
  }
  EXPECT_NEAR(sum, 2.0 * g.total_weight(), 1e-9);
}

TEST_P(GraphSeedTest, ModularityWithinTheoreticalBounds) {
  auto g = RandomGraph(GetParam(), 60, 300);
  Rng rng(GetParam() ^ 0xABCD);
  community::Partition p;
  p.assignment.resize(g.node_count());
  for (auto& a : p.assignment) a = static_cast<int32_t>(rng.NextBounded(7));
  p.Renumber();
  const double q = community::Modularity(g, p);
  EXPECT_GE(q, -1.0);
  EXPECT_LE(q, 1.0);
}

TEST_P(GraphSeedTest, LouvainNeverWorseThanSingletonsOrTrivial) {
  auto g = RandomGraph(GetParam(), 60, 300);
  auto result = community::RunLouvain(g);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->modularity,
            community::Modularity(g, community::Partition::Trivial(
                                         g.node_count())) -
                1e-9);
  EXPECT_GE(result->modularity,
            community::Modularity(
                g, community::Partition::Singletons(g.node_count())) -
                1e-9);
}

TEST_P(GraphSeedTest, AllAlgorithmsReturnValidPartitions) {
  auto g = RandomGraph(GetParam(), 50, 200);
  auto check = [&](const community::Partition& p) {
    ASSERT_EQ(p.assignment.size(), g.node_count());
    const size_t k = p.CommunityCount();
    std::set<int32_t> labels(p.assignment.begin(), p.assignment.end());
    EXPECT_EQ(labels.size(), k);  // dense labels
    for (int32_t c : p.assignment) {
      EXPECT_GE(c, 0);
      EXPECT_LT(static_cast<size_t>(c), k);
    }
  };
  check(community::RunLouvain(g)->partition);
  check(community::RunLabelPropagation(g)->partition);
  check(community::RunFastGreedy(g)->partition);
  check(community::RunInfomapLite(g)->partition);
}

TEST_P(GraphSeedTest, AggregationPreservesModularity) {
  auto g = RandomGraph(GetParam(), 40, 160);
  auto louvain = community::RunLouvain(g);
  ASSERT_TRUE(louvain.ok());
  const auto& p = louvain->partition;
  auto coarse = community::AggregateByPartition(g, p);
  EXPECT_NEAR(community::Modularity(g, p),
              community::Modularity(
                  coarse, community::Partition::Singletons(coarse.node_count())),
              1e-9);
  EXPECT_NEAR(coarse.total_weight(), g.total_weight(), 1e-9);
}

TEST_P(GraphSeedTest, MapEquationNonNegativeAndConsistent) {
  auto g = RandomGraph(GetParam(), 40, 160);
  auto infomap = community::RunInfomapLite(g);
  ASSERT_TRUE(infomap.ok());
  EXPECT_GE(infomap->codelength, 0.0);
  // The optimiser never returns something worse than all-singletons.
  EXPECT_LE(infomap->codelength, infomap->singleton_codelength + 1e-9);
}

TEST_P(GraphSeedTest, PageRankIsAProbabilityVector) {
  Rng rng(GetParam());
  graphdb::DigraphBuilder b(40);
  for (int e = 0; e < 200; ++e) {
    (void)b.AddEdge(static_cast<int32_t>(rng.NextBounded(40)),
                    static_cast<int32_t>(rng.NextBounded(40)),
                    0.5 + rng.NextDouble());
  }
  auto pr = metrics::PageRank(b.Build());
  ASSERT_TRUE(pr.ok());
  double sum = 0.0;
  for (double v : *pr) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST_P(GraphSeedTest, BetweennessNonNegativeAndEndpointsExcluded) {
  auto g = RandomGraph(GetParam(), 30, 90);
  auto bc = metrics::Betweenness(g);
  ASSERT_TRUE(bc.ok());
  for (double v : *bc) EXPECT_GE(v, -1e-9);
}

TEST_P(GraphSeedTest, ClusteringCoefficientsInUnitInterval) {
  auto g = RandomGraph(GetParam(), 30, 120);
  for (double v : metrics::LocalClusteringCoefficients(g)) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  const double global = metrics::GlobalClusteringCoefficient(g);
  EXPECT_GE(global, 0.0);
  EXPECT_LE(global, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphSeedTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

/// Generator-level properties swept over seeds: cleaning is idempotent and
/// the cleaned dataset always validates.
class GeneratorSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorSeedTest, CleaningIsIdempotent) {
  data::SyntheticConfig cfg;
  cfg.seed = GetParam();
  cfg.clean_rental_count = 2500;
  cfg.station_count = 30;
  cfg.micro_concentration = 80.0;
  auto raw = data::GenerateSyntheticMoby(cfg);
  ASSERT_TRUE(raw.ok());
  auto once = data::CleanDataset(*raw, geo::DublinLand());
  ASSERT_TRUE(once.ok());
  auto twice = data::CleanDataset(once->dataset, geo::DublinLand());
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(twice->report.TotalRentalsDropped(), 0u);
  EXPECT_EQ(twice->report.TotalLocationsDropped(), 0u);
  EXPECT_EQ(twice->dataset.Summarize().rental_count,
            once->dataset.Summarize().rental_count);
}

TEST_P(GeneratorSeedTest, RentalVolumeMatchesConfigAfterCleaning) {
  data::SyntheticConfig cfg;
  cfg.seed = GetParam();
  cfg.clean_rental_count = 2500;
  cfg.station_count = 30;
  cfg.micro_concentration = 80.0;
  auto raw = data::GenerateSyntheticMoby(cfg);
  ASSERT_TRUE(raw.ok());
  auto cleaned = data::CleanDataset(*raw, geo::DublinLand());
  ASSERT_TRUE(cleaned.ok());
  EXPECT_EQ(cleaned->dataset.Summarize().rental_count, 2500u);
  EXPECT_TRUE(cleaned->dataset.Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace bikegraph
