// Verifies that the umbrella header is self-contained and that the main
// entry points of each module are reachable through it alone.

#include "bikegraph.h"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaHeaderTest, CoreTypesReachable) {
  bikegraph::Status s = bikegraph::Status::OK();
  EXPECT_TRUE(s.ok());
  bikegraph::Rng rng(1);
  EXPECT_LT(rng.NextDouble(), 1.0);
  auto t = bikegraph::CivilTime::FromCalendar(2020, 1, 3);
  EXPECT_TRUE(t.ok());
}

TEST(UmbrellaHeaderTest, GeoAndDataReachable) {
  EXPECT_GT(bikegraph::geo::HaversineMeters({53.35, -6.26}, {53.30, -6.13}),
            0.0);
  EXPECT_TRUE(bikegraph::geo::DublinLand().Contains({53.3498, -6.2603}));
  bikegraph::data::SyntheticConfig cfg;
  EXPECT_EQ(cfg.station_count, 92);
}

TEST(UmbrellaHeaderTest, GraphAndCommunityReachable) {
  bikegraph::graphdb::WeightedGraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(b.AddEdge(1, 2, 1.0).ok());
  auto g = b.Build();
  auto louvain = bikegraph::community::RunLouvain(g);
  ASSERT_TRUE(louvain.ok());
  EXPECT_EQ(louvain->partition.node_count(), 3u);
}

TEST(UmbrellaHeaderTest, UnifiedDetectorApiReachable) {
  namespace community = bikegraph::community;
  // The whole registry surface compiles and runs through the umbrella
  // header alone: enumeration, name round-trip, and unified dispatch.
  bikegraph::graphdb::WeightedGraphBuilder b(4);
  ASSERT_TRUE(b.AddEdge(0, 1, 2.0).ok());
  ASSERT_TRUE(b.AddEdge(2, 3, 2.0).ok());
  auto g = b.Build();
  const auto ids = community::ListAlgorithms();
  EXPECT_EQ(ids.size(), community::AlgorithmRegistry().size());
  for (community::AlgorithmId id : ids) {
    auto parsed = community::ParseAlgorithm(community::AlgorithmName(id));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, id);
    community::DetectSpec spec;
    spec.algorithm = id;
    auto result = community::Detect(g, spec);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->partition.node_count(), 4u);
  }
}

TEST(UmbrellaHeaderTest, StreamingEngineReachable) {
  namespace stream = bikegraph::stream;
  stream::StreamEngineConfig config;
  config.station_count = 2;
  config.window_seconds = 3600;
  stream::StreamEngine engine(config);
  stream::TripEvent e;
  e.from_station = 0;
  e.to_station = 1;
  e.start_time = bikegraph::CivilTime::FromCalendar(2020, 6, 1, 8)
                     .ValueOrDie();
  e.end_time = e.start_time.AddSeconds(300);
  ASSERT_TRUE(engine.Ingest(e).ok());
  auto snapshot = engine.Snapshot();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ((*snapshot)->epoch, 1u);
  EXPECT_EQ((*snapshot)->graph.node_count(), 2u);
  auto refresh = engine.DetectCurrent();
  ASSERT_TRUE(refresh.ok());
  EXPECT_EQ(refresh->result.partition.node_count(), 2u);
}

TEST(UmbrellaHeaderTest, PipelineEntryPointsReachable) {
  // Type-level smoke: the experiment config composes all module configs.
  bikegraph::analysis::ExperimentConfig config;
  // lint: float-eq-ok: config defaults are assigned literals,
  // never computed.
  EXPECT_EQ(config.pipeline.clustering.cluster_boundary_m, 100.0);
  // lint: float-eq-ok: assigned-literal default, as above.
  EXPECT_EQ(config.pipeline.selection.secondary_distance_m, 250.0);
  EXPECT_EQ(config.detection.algorithm,
            bikegraph::community::AlgorithmId::kLouvain);
  // lint: float-eq-ok: assigned-literal default, as above.
  EXPECT_EQ(config.detection.options.resolution, 1.0);
  bikegraph::analysis::PaperExpectations paper;
  EXPECT_EQ(paper.selected_total_stations, 238u);
}

}  // namespace
