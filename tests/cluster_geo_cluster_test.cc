#include "cluster/geo_cluster.h"

#include <set>

#include "core/rng.h"
#include "geo/haversine.h"

#include <gtest/gtest.h>

#include "core/checked_cast.h"

using bikegraph::AsIndex;

namespace bikegraph::cluster {
namespace {

using geo::LatLon;
using geo::Offset;

const LatLon kCenter(53.35, -6.26);

TEST(CentroidTest, MeanOfPoints) {
  EXPECT_EQ(Centroid({}), LatLon());
  LatLon c = Centroid({{53.0, -6.0}, {53.2, -6.4}});
  EXPECT_NEAR(c.lat, 53.1, 1e-9);
  EXPECT_NEAR(c.lon, -6.2, 1e-9);
}

TEST(GeoClusterTest, RejectsBadParamsAndPoints) {
  GeoClusterParams bad;
  bad.cluster_boundary_m = 0.0;
  EXPECT_FALSE(ClusterLocations({kCenter}, {}, bad).ok());
  EXPECT_FALSE(
      ClusterLocations({LatLon(200.0, 0.0)}, {}, GeoClusterParams{}).ok());
  EXPECT_FALSE(
      ClusterLocations({kCenter}, {LatLon(200.0, 0.0)}, GeoClusterParams{})
          .ok());
}

TEST(GeoClusterTest, AbsorptionIntoNearestStation) {
  std::vector<LatLon> stations = {kCenter, Offset(kCenter, 300.0, 90.0)};
  std::vector<LatLon> locations = {
      Offset(kCenter, 20.0, 0.0),           // absorbed by station 0
      Offset(kCenter, 49.0, 180.0),         // absorbed by station 0 (edge)
      Offset(stations[1], 30.0, 90.0),      // absorbed by station 1
      Offset(kCenter, 150.0, 0.0),          // free
  };
  auto result = ClusterLocations(locations, stations, GeoClusterParams{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->absorbed_count, 3u);
  EXPECT_EQ(result->station_group_count(), 2u);
  EXPECT_EQ(result->free_cluster_count(), 1u);
  // Station groups come first and keep station positions as centroids.
  EXPECT_EQ(result->clusters[0].centroid, stations[0]);
  EXPECT_EQ(result->clusters[0].station_index, 0);
  EXPECT_EQ(result->assignment[0], 0);
  EXPECT_EQ(result->assignment[2], 1);
  EXPECT_EQ(result->assignment[3], 2);
}

TEST(GeoClusterTest, FreeClustersRespectBoundary) {
  Rng rng(7);
  std::vector<LatLon> locations;
  for (int i = 0; i < 200; ++i) {
    locations.push_back(Offset(kCenter, rng.NextUniform(60.0, 700.0),
                               rng.NextUniform(0.0, 360.0)));
  }
  GeoClusterParams params;
  params.cluster_boundary_m = 100.0;
  auto result = ClusterLocations(locations, {kCenter}, params);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < locations.size(); ++i) {
    for (size_t j = i + 1; j < locations.size(); ++j) {
      if (result->assignment[i] == result->assignment[j] &&
          result->assignment[i] >= 1) {  // same free cluster
        EXPECT_LE(geo::HaversineMeters(locations[i], locations[j]), 100.0 + 1e-6);
      }
    }
  }
}

TEST(GeoClusterTest, CentroidIsMemberMean) {
  std::vector<LatLon> locations = {Offset(kCenter, 1000.0, 90.0),
                                   Offset(kCenter, 1040.0, 90.0)};
  auto result = ClusterLocations(locations, {}, GeoClusterParams{});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->clusters.size(), 1u);
  LatLon expected = Centroid(locations);
  EXPECT_NEAR(result->clusters[0].centroid.lat, expected.lat, 1e-9);
  EXPECT_NEAR(result->clusters[0].centroid.lon, expected.lon, 1e-9);
}

TEST(GeoClusterTest, EveryLocationAssignedExactlyOnce) {
  Rng rng(13);
  std::vector<LatLon> stations;
  for (int i = 0; i < 5; ++i) {
    stations.push_back(Offset(kCenter, 200.0 * i, 45.0));
  }
  std::vector<LatLon> locations;
  for (int i = 0; i < 300; ++i) {
    locations.push_back(Offset(kCenter, rng.NextUniform(0.0, 1500.0),
                               rng.NextUniform(0.0, 360.0)));
  }
  auto result = ClusterLocations(locations, stations, GeoClusterParams{});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->assignment.size(), locations.size());
  std::vector<size_t> seen(locations.size(), 0);
  for (const auto& cluster : result->clusters) {
    for (int32_t member : cluster.member_indices) {
      ASSERT_GE(member, 0);
      ASSERT_LT(static_cast<size_t>(member), locations.size());
      ++seen[AsIndex(member)];
    }
  }
  for (size_t i = 0; i < locations.size(); ++i) {
    EXPECT_EQ(seen[i], 1u) << "location " << i;
    EXPECT_GE(result->assignment[i], 0);
  }
}

TEST(GeoClusterTest, NoStationsMeansNoAbsorption) {
  std::vector<LatLon> locations = {kCenter, Offset(kCenter, 10.0, 0.0)};
  auto result = ClusterLocations(locations, {}, GeoClusterParams{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->absorbed_count, 0u);
  EXPECT_EQ(result->station_group_count(), 0u);
  EXPECT_EQ(result->free_cluster_count(), 1u);
}

TEST(GeoClusterTest, AbsorptionRadiusIsConfigurable) {
  std::vector<LatLon> locations = {Offset(kCenter, 80.0, 0.0)};
  GeoClusterParams narrow;
  narrow.station_absorption_m = 50.0;
  GeoClusterParams wide;
  wide.station_absorption_m = 100.0;
  auto r_narrow = ClusterLocations(locations, {kCenter}, narrow);
  auto r_wide = ClusterLocations(locations, {kCenter}, wide);
  ASSERT_TRUE(r_narrow.ok());
  ASSERT_TRUE(r_wide.ok());
  EXPECT_EQ(r_narrow->absorbed_count, 0u);
  EXPECT_EQ(r_wide->absorbed_count, 1u);
}

}  // namespace
}  // namespace bikegraph::cluster
