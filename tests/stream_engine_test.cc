// StreamEngine end-to-end: a landmark replay of the full synthetic
// dataset must reproduce the batch pipeline's graph and Louvain partition
// bit for bit; sliding windows with warm-start refresh must track the
// full re-detect closely; snapshots are immutable and epoch-stamped.

#include <memory>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/temporal_graph.h"
#include "community/detector.h"
#include "community/partition.h"
#include "core/rng.h"
#include "data/synthetic.h"
#include "expansion/pipeline.h"
#include "stream/engine.h"
#include "stream/replay.h"
#include "stream/testing.h"

#include <gtest/gtest.h>

namespace bikegraph::stream {
namespace {

void ExpectGraphsIdentical(const graphdb::WeightedGraph& a,
                           const graphdb::WeightedGraph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  ASSERT_EQ(a.self_loop_count(), b.self_loop_count());
  EXPECT_EQ(a.total_weight(), b.total_weight());  // bitwise, not NEAR
  for (size_t u = 0; u < a.node_count(); ++u) {
    const auto ui = static_cast<int32_t>(u);
    EXPECT_EQ(a.self_weight(ui), b.self_weight(ui)) << "node " << u;
    EXPECT_EQ(a.strength(ui), b.strength(ui)) << "node " << u;
    auto na = a.neighbors(ui);
    auto nb = b.neighbors(ui);
    ASSERT_EQ(na.size(), nb.size()) << "node " << u;
    for (size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].node, nb[i].node) << "node " << u << " nb " << i;
      EXPECT_EQ(na[i].weight, nb[i].weight) << "node " << u << " nb " << i;
    }
  }
}

/// The batch side of the acceptance criterion, computed once for the
/// whole fixture: synthetic dataset → expansion pipeline → final network.
class StreamBatchEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticConfig synth;  // the full synthetic Moby dataset
    auto raw = data::GenerateSyntheticMoby(synth);
    ASSERT_TRUE(raw.ok());
    auto pipeline = expansion::RunExpansionPipeline(*raw);
    ASSERT_TRUE(pipeline.ok());
    pipeline_ = new expansion::PipelineResult(std::move(*pipeline));
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }

  static expansion::PipelineResult* pipeline_;
};

expansion::PipelineResult* StreamBatchEquivalenceTest::pipeline_ = nullptr;

TEST_F(StreamBatchEquivalenceTest, LandmarkReplayReproducesBatchGBasic) {
  const expansion::FinalNetwork& net = pipeline_->final_network;

  // Batch: GBasic projection + Louvain, exactly as RunPaperExperiment.
  auto batch_graph = analysis::BuildTemporalGraph(net.graph, {});
  ASSERT_TRUE(batch_graph.ok());
  community::DetectSpec spec;  // Louvain, defaults
  auto batch_detect = community::Detect(*batch_graph, spec);
  ASSERT_TRUE(batch_detect.ok());

  // Stream: replay every cleaned rental through a landmark window.
  StreamEngineConfig config;
  config.station_count = net.stations.size();
  config.window_seconds = 0;  // final window covers the whole dataset
  StreamEngine engine(config);
  ReplaySource replay = ReplaySource::FromFinalNetwork(pipeline_->cleaned, net);
  EXPECT_EQ(replay.dropped_count(), 0u);  // Table III: no trips are lost
  EXPECT_EQ(replay.events().size(), pipeline_->cleaned.rentals().size());
  ASSERT_TRUE(replay.ReplayInto(&engine).ok());
  EXPECT_EQ(engine.window().trip_count(), replay.events().size());

  auto snapshot = engine.Snapshot();
  ASSERT_TRUE(snapshot.ok());
  ExpectGraphsIdentical((*snapshot)->graph, *batch_graph);

  auto refresh = engine.DetectCurrent();
  ASSERT_TRUE(refresh.ok());
  EXPECT_EQ(refresh->result.partition.assignment,
            batch_detect->partition.assignment);
  EXPECT_EQ(refresh->result.modularity, batch_detect->modularity);
}

TEST_F(StreamBatchEquivalenceTest, LandmarkReplayReproducesBatchGDay) {
  const expansion::FinalNetwork& net = pipeline_->final_network;
  const analysis::ExperimentConfig defaults;
  auto batch_graph = analysis::BuildTemporalGraph(net.graph, defaults.gday);
  ASSERT_TRUE(batch_graph.ok());

  StreamEngineConfig config;
  config.station_count = net.stations.size();
  config.window_seconds = 0;
  config.projection = defaults.gday;
  StreamEngine engine(config);
  ReplaySource replay = ReplaySource::FromFinalNetwork(pipeline_->cleaned, net);
  ASSERT_TRUE(replay.ReplayInto(&engine).ok());

  auto snapshot = engine.Snapshot();
  ASSERT_TRUE(snapshot.ok());
  ExpectGraphsIdentical((*snapshot)->graph, *batch_graph);

  // The window profiles match the batch extraction exactly.
  auto batch_profiles = analysis::ExtractStationProfiles(net.graph);
  ASSERT_TRUE(batch_profiles.ok());
  EXPECT_EQ((*snapshot)->profiles.day, batch_profiles->day);
  EXPECT_EQ((*snapshot)->profiles.hour, batch_profiles->hour);
}

// ---------------------------------------------------------------------------
// Sliding-window behaviour on a synthetic planted-community stream.
// ---------------------------------------------------------------------------

using testing::PlantedStream;

TEST(StreamEngineTest, WarmRefreshTracksFullRedetect) {
  const size_t stations = 48;
  StreamEngineConfig config;
  config.station_count = stations;
  config.window_seconds = 7 * 86400;
  StreamEngine engine(config);

  const auto events = PlantedStream(stations, 4, 28, 400, 77);
  community::DetectSpec cold_spec;  // Louvain, defaults
  int checked = 0;
  int day = 0;
  for (const TripEvent& e : events) {
    ASSERT_TRUE(engine.Ingest(e).ok());
    const int event_day = static_cast<int>(
        (e.start_time.seconds_since_epoch() -
         events.front().start_time.seconds_since_epoch()) /
        86400);
    if (event_day > day) {
      day = event_day;
      if (day < 7 || day % 3 != 0) continue;  // refresh every 3rd day
      auto refresh = engine.DetectCurrent();
      ASSERT_TRUE(refresh.ok());
      auto snapshot = engine.LatestSnapshot();
      ASSERT_NE(snapshot, nullptr);
      auto cold = community::Detect(snapshot->graph, cold_spec);
      ASSERT_TRUE(cold.ok());
      const double nmi = community::NormalizedMutualInformation(
          refresh->result.partition, cold->partition);
      // Steady-state windows: warm refresh ≥ 0.95 NMI vs full re-detect.
      EXPECT_GE(nmi, 0.95) << "day " << day;
      if (refresh->refresh_count > 1) {
        EXPECT_TRUE(refresh->warm_started || refresh->escalated);
        EXPECT_GE(refresh->nmi_drift, 0.0);
        EXPECT_LE(refresh->nmi_drift, 1.0);
      }
      ++checked;
    }
  }
  EXPECT_GE(checked, 5);
}

TEST(StreamEngineTest, PolicyEscalatesToFullRedetect) {
  const size_t stations = 30;
  StreamEngineConfig config;
  config.station_count = stations;
  config.window_seconds = 7 * 86400;
  config.refresh.min_nmi = 1.1;  // impossible: every warm result escalates
  StreamEngine engine(config);

  const auto events = PlantedStream(stations, 3, 14, 200, 5);
  int day = 0;
  for (const TripEvent& e : events) {
    ASSERT_TRUE(engine.Ingest(e).ok());
    const int event_day = static_cast<int>(
        (e.start_time.seconds_since_epoch() -
         events.front().start_time.seconds_since_epoch()) /
        86400);
    if (event_day > day) {
      day = event_day;
      auto refresh = engine.DetectCurrent();
      ASSERT_TRUE(refresh.ok());
      if (refresh->refresh_count > 1) {
        EXPECT_TRUE(refresh->escalated);
        EXPECT_FALSE(refresh->warm_started);
        // The escalated result is exactly the cold run.
        auto cold = community::Detect(engine.LatestSnapshot()->graph,
                                      config.detection);
        ASSERT_TRUE(cold.ok());
        EXPECT_EQ(refresh->result.partition.assignment,
                  cold->partition.assignment);
      }
    }
  }
  EXPECT_GT(engine.tracker().escalation_count(), 0u);
}

TEST(StreamEngineTest, FullRefreshIntervalForcesColdRuns) {
  StreamEngineConfig config;
  config.station_count = 20;
  config.window_seconds = 0;
  config.refresh.full_refresh_interval = 2;
  StreamEngine engine(config);
  const auto events = PlantedStream(20, 2, 6, 150, 9);
  size_t next = 0;
  std::vector<bool> warm_flags;
  for (int round = 0; round < 4; ++round) {
    for (size_t i = 0; i < events.size() / 4; ++i) {
      ASSERT_TRUE(engine.Ingest(events[next++]).ok());
    }
    auto refresh = engine.DetectCurrent();
    ASSERT_TRUE(refresh.ok());
    warm_flags.push_back(refresh->warm_started);
  }
  // 1st: cold (no previous). 2nd: cold (interval). 3rd: warm. 4th: cold.
  EXPECT_EQ(warm_flags, (std::vector<bool>{false, false, true, false}));
}

TEST(StreamEngineTest, SeedlessAlgorithmsAlwaysRunCold) {
  StreamEngineConfig config;
  config.station_count = 24;
  config.window_seconds = 0;
  config.detection.algorithm = community::AlgorithmId::kFastGreedy;
  config.refresh.min_nmi = 1.1;  // would force escalation if warm ran
  StreamEngine engine(config);
  const auto events = PlantedStream(24, 3, 4, 150, 13);
  size_t next = 0;
  for (int round = 0; round < 2; ++round) {
    for (size_t i = 0; i < events.size() / 2; ++i) {
      ASSERT_TRUE(engine.Ingest(events[next++]).ok());
    }
    auto refresh = engine.DetectCurrent();
    ASSERT_TRUE(refresh.ok());
    // Fast-greedy ignores seeds: the tracker must report a cold run and
    // never double-run via escalation.
    EXPECT_FALSE(refresh->warm_started);
    EXPECT_FALSE(refresh->escalated);
  }
  EXPECT_EQ(engine.tracker().escalation_count(), 0u);
}

TEST(StreamEngineTest, DrainedWindowRefreshRunsCold) {
  StreamEngineConfig config;
  config.station_count = 16;
  config.window_seconds = 3600;
  StreamEngine engine(config);
  const auto events = PlantedStream(16, 2, 1, 200, 21);
  for (const TripEvent& e : events) ASSERT_TRUE(engine.Ingest(e).ok());
  auto first = engine.DetectCurrent();
  ASSERT_TRUE(first.ok());

  // Overnight lull: the window drains to zero trips. The refresh must
  // not claim a warm start — there is no evidence to seed from.
  ASSERT_TRUE(engine.Advance(events.back().start_time.AddDays(1)).ok());
  auto drained = engine.DetectCurrent();
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(engine.window().trip_count(), 0u);
  EXPECT_FALSE(drained->warm_started);
  EXPECT_FALSE(drained->escalated);
}

/// Two 4-cliques with a weak bridge: stable, obvious community structure
/// so warm refreshes reproduce the seed and nothing escalates.
graphdb::WeightedGraph TwoCliqueGraph() {
  graphdb::WeightedGraphBuilder builder(8);
  for (int32_t base : {0, 4}) {
    for (int32_t u = base; u < base + 4; ++u) {
      for (int32_t v = u + 1; v < base + 4; ++v) {
        (void)builder.AddEdge(u, v, 1.0);
      }
    }
  }
  (void)builder.AddEdge(0, 4, 0.25);
  return builder.Build();
}

// Satellite regression (PR 4): Reset() must zero the refresh and
// escalation counters, not just the seed partition — the refresh counter
// phases the full_refresh_interval cadence, so a stale count carried the
// old schedule across the reset.
TEST(IncrementalCommunityTrackerTest, ResetRestartsTheRefreshCadence) {
  const graphdb::WeightedGraph graph = TwoCliqueGraph();
  community::DetectSpec spec;  // Louvain, defaults
  RefreshPolicy policy;
  policy.full_refresh_interval = 3;
  IncrementalCommunityTracker tracker(policy);

  // Two refreshes advance the cadence to mid-phase...
  ASSERT_TRUE(tracker.Refresh(graph, spec).ok());
  ASSERT_TRUE(tracker.Refresh(graph, spec).ok());
  EXPECT_EQ(tracker.refresh_count(), 2u);

  // ...and a reset must restart it from zero, exactly like a fresh
  // tracker.
  tracker.Reset();
  EXPECT_EQ(tracker.refresh_count(), 0u);
  EXPECT_FALSE(tracker.previous_partition().has_value());

  std::vector<bool> warm_flags;
  for (int i = 0; i < 3; ++i) {
    auto outcome = tracker.Refresh(graph, spec);
    ASSERT_TRUE(outcome.ok());
    warm_flags.push_back(outcome->warm_started);
    EXPECT_EQ(outcome->refresh_count, static_cast<uint64_t>(i + 1));
  }
  // Post-reset schedule with interval 3: cold (no seed), warm, cold
  // (interval due). Pre-fix the stale count made the third refresh warm
  // and the second one's phase wrong.
  EXPECT_EQ(warm_flags, (std::vector<bool>{false, true, false}));
}

TEST(IncrementalCommunityTrackerTest, ResetZeroesEscalationCount) {
  const graphdb::WeightedGraph graph = TwoCliqueGraph();
  community::DetectSpec spec;
  RefreshPolicy policy;
  policy.min_nmi = 1.1;  // impossible: every warm refresh escalates
  IncrementalCommunityTracker tracker(policy);
  ASSERT_TRUE(tracker.Refresh(graph, spec).ok());
  ASSERT_TRUE(tracker.Refresh(graph, spec).ok());
  EXPECT_GT(tracker.escalation_count(), 0u);

  tracker.Reset();
  EXPECT_EQ(tracker.escalation_count(), 0u);
  EXPECT_EQ(tracker.refresh_count(), 0u);
  // The first refresh of the tracker's new life is cold, never an
  // escalation.
  auto outcome = tracker.Refresh(graph, spec);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->warm_started);
  EXPECT_FALSE(outcome->escalated);
  EXPECT_EQ(tracker.escalation_count(), 0u);
}

TEST(StreamEngineTest, SnapshotsAreImmutableAndEpochStamped) {
  StreamEngineConfig config;
  config.station_count = 4;
  config.window_seconds = 3600;
  StreamEngine engine(config);
  EXPECT_EQ(engine.LatestSnapshot(), nullptr);

  const CivilTime t0 = CivilTime::FromCalendar(2020, 5, 4, 9).ValueOrDie();
  TripEvent e;
  e.from_station = 0;
  e.to_station = 1;
  e.start_time = t0;
  e.end_time = t0.AddSeconds(300);
  ASSERT_TRUE(engine.Ingest(e).ok());

  auto first = engine.Snapshot();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ((*first)->epoch, 1u);
  EXPECT_EQ((*first)->trip_count, 1u);
  EXPECT_EQ((*first)->graph.WeightBetween(0, 1), 1.0);

  // Nothing changed: Snapshot() reuses the published epoch.
  auto again = engine.Snapshot();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(first->get(), again->get());

  // Keep ingesting: the old snapshot is untouched, the new epoch sees
  // the new trip.
  e.from_station = 2;
  e.to_station = 3;
  e.start_time = t0.AddSeconds(60);
  ASSERT_TRUE(engine.Ingest(e).ok());
  auto second = engine.Snapshot();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*second)->epoch, 2u);
  EXPECT_EQ((*second)->trip_count, 2u);
  EXPECT_EQ((*first)->trip_count, 1u);
  EXPECT_EQ((*first)->graph.WeightBetween(2, 3), 0.0);
  EXPECT_EQ((*second)->graph.WeightBetween(2, 3), 1.0);

  // A quiet stream still expires trips via Advance.
  ASSERT_TRUE(engine.Advance(t0.AddSeconds(7200)).ok());
  auto third = engine.Snapshot();
  ASSERT_TRUE(third.ok());
  EXPECT_EQ((*third)->trip_count, 0u);
  EXPECT_EQ((*third)->graph.edge_count(), 0u);
}

TEST(StreamEngineTest, SnapshotCarriesFrozenStationIndex) {
  StreamEngineConfig config;
  config.station_count = 3;
  config.window_seconds = 0;
  config.station_positions = {geo::LatLon(53.35, -6.26),
                              geo::LatLon(53.36, -6.25),
                              geo::LatLon(53.30, -6.30)};
  StreamEngine engine(config);
  const CivilTime t0 = CivilTime::FromCalendar(2020, 5, 4, 9).ValueOrDie();
  TripEvent e;
  e.from_station = 0;
  e.to_station = 1;
  e.start_time = t0;
  e.end_time = t0;
  ASSERT_TRUE(engine.Ingest(e).ok());
  auto snap = engine.Snapshot();
  ASSERT_TRUE(snap.ok());
  ASSERT_NE((*snap)->station_index, nullptr);
  EXPECT_EQ((*snap)->station_index->size(), 3u);
  auto nearest = (*snap)->station_index->Nearest(geo::LatLon(53.351, -6.261));
  EXPECT_EQ(nearest.id, 0);

  // Consecutive snapshots share the one frozen index (stations don't
  // move between windows).
  e.from_station = 1;
  e.to_station = 2;
  e.start_time = t0.AddSeconds(60);
  ASSERT_TRUE(engine.Ingest(e).ok());
  auto next = engine.Snapshot();
  ASSERT_TRUE(next.ok());
  EXPECT_EQ((*next)->station_index.get(), (*snap)->station_index.get());
}

TEST(StreamEngineTest, ExtraStationPositionsAreNotIndexed) {
  StreamEngineConfig config;
  config.station_count = 2;
  config.window_seconds = 0;
  // Positions for a larger network: only ids < station_count may appear
  // in snapshot spatial queries.
  config.station_positions = {geo::LatLon(53.35, -6.26),
                              geo::LatLon(53.36, -6.25),
                              geo::LatLon(53.30, -6.30),
                              geo::LatLon(53.31, -6.31)};
  StreamEngine engine(config);
  auto snap = engine.Snapshot();
  ASSERT_TRUE(snap.ok());
  ASSERT_NE((*snap)->station_index, nullptr);
  EXPECT_EQ((*snap)->station_index->size(), 2u);

  // Too few positions is an error, not a silent partial index.
  StreamEngineConfig bad = config;
  bad.station_positions.resize(1);
  StreamEngine bad_engine(bad);
  EXPECT_FALSE(bad_engine.Snapshot().ok());
}

}  // namespace

// Friend of SlidingWindowGraph (must live at namespace scope): forges a
// −1 delta for a pair the live graph never saw, the bookkeeping bug that
// delta_desync_count() exists to surface.
struct WindowGraphTestPeer {
  static void ForceDesync(StreamEngine* engine) {
    SlidingWindowGraph::RingEntry entry;
    entry.start_seconds = 0;
    entry.from = 0;
    entry.to = 1;
    entry.day = 0;
    entry.hour = 0;
    const_cast<SlidingWindowGraph&>(engine->window()).ApplyDelta(entry, -1);
  }
};

namespace {

TripEvent TripAt(int32_t from, int32_t to, CivilTime start) {
  TripEvent e;
  e.from_station = from;
  e.to_station = to;
  e.start_time = start;
  e.end_time = start.AddSeconds(300);
  return e;
}

TEST(StreamEngineTest, FlushIsIdempotent) {
  StreamEngineConfig config;
  config.station_count = 4;
  config.window_seconds = 0;
  StreamEngine engine(config);
  const CivilTime t0 = CivilTime::FromCalendar(2020, 5, 4, 9).ValueOrDie();
  ASSERT_TRUE(engine.Ingest(TripAt(0, 1, t0)).ok());

  ASSERT_TRUE(engine.Flush().ok());
  EXPECT_TRUE(engine.flushed());
  EXPECT_EQ(engine.buffered_count(), 0u);
  const size_t ingested = engine.ingested_count();
  const CivilTime watermark = engine.watermark();

  // A second Flush is a no-op, not an error — and moves nothing.
  ASSERT_TRUE(engine.Flush().ok());
  EXPECT_TRUE(engine.flushed());
  EXPECT_EQ(engine.ingested_count(), ingested);
  EXPECT_EQ(engine.watermark(), watermark);
}

TEST(StreamEngineTest, IngestAfterFlushFailsLoudly) {
  StreamEngineConfig config;
  config.station_count = 4;
  config.window_seconds = 0;
  StreamEngine engine(config);
  const CivilTime t0 = CivilTime::FromCalendar(2020, 5, 4, 9).ValueOrDie();
  ASSERT_TRUE(engine.Ingest(TripAt(0, 1, t0)).ok());
  ASSERT_TRUE(engine.Flush().ok());

  Status s = engine.Ingest(TripAt(1, 2, t0.AddSeconds(60)));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.ingested_count(), 1u);
}

// A delta/live desync must (a) surface through the engine's stats and
// (b) force the next freeze down the full-rebuild path, after which
// delta freezing re-arms.
TEST(StreamEngineTest, DesyncForcesFullFreeze) {
#ifndef NDEBUG
  GTEST_SKIP() << "debug builds assert inside ApplyDelta instead of "
                  "counting; the release counter path is what ships";
#else
  StreamEngineConfig config;
  config.station_count = 12;
  config.window_seconds = 0;  // landmark: nothing expires mid-test
  StreamEngine engine(config);
  const CivilTime t0 = CivilTime::FromCalendar(2020, 5, 4, 9).ValueOrDie();

  // Every u<v pair except (0,1): 65 edges, so one dirty pair is 1/66 of
  // the previous graph — comfortably under the 0.25 delta fallback.
  int64_t offset = 0;
  for (int32_t u = 0; u < 12; ++u) {
    for (int32_t v = u + 1; v < 12; ++v) {
      if (u == 0 && v == 1) continue;
      ASSERT_TRUE(engine.Ingest(TripAt(u, v, t0.AddSeconds(offset++))).ok());
    }
  }
  ASSERT_TRUE(engine.Snapshot().ok());  // first freeze is always full
  EXPECT_EQ(engine.full_freeze_count(), 1u);
  EXPECT_EQ(engine.delta_freeze_count(), 0u);

  ASSERT_TRUE(engine.Ingest(TripAt(2, 3, t0.AddSeconds(offset++))).ok());
  ASSERT_TRUE(engine.Snapshot().ok());
  EXPECT_EQ(engine.delta_freeze_count(), 1u);  // the delta path works

  EXPECT_EQ(engine.delta_desync_count(), 0u);
  WindowGraphTestPeer::ForceDesync(&engine);
  EXPECT_EQ(engine.delta_desync_count(), 1u);

  // The freeze after a desync must not trust the dirty set: full rebuild.
  ASSERT_TRUE(engine.Ingest(TripAt(2, 3, t0.AddSeconds(offset++))).ok());
  ASSERT_TRUE(engine.Snapshot().ok());
  EXPECT_EQ(engine.full_freeze_count(), 2u);
  EXPECT_EQ(engine.delta_freeze_count(), 1u);

  // With the desync acknowledged, delta freezing re-arms.
  ASSERT_TRUE(engine.Ingest(TripAt(2, 3, t0.AddSeconds(offset++))).ok());
  ASSERT_TRUE(engine.Snapshot().ok());
  EXPECT_EQ(engine.delta_freeze_count(), 2u);
  EXPECT_EQ(engine.delta_desync_count(), 1u);  // counted once, kept
#endif
}

}  // namespace
}  // namespace bikegraph::stream
