// SnapshotPublisher's RCU-style hand-off: epoch stamping and restore on
// the writer side, and the thread-safety contract — Current()/epoch()
// racing Publish() from reader threads, and the engine's any-thread
// getters (LatestSnapshot, freeze counters) racing a live ingestion
// loop. Run under BIKEGRAPH_SANITIZE=thread this is the TSan lock on
// the whole publication path.

#include <cstdint>
#include <memory>
// lint: thread-ok: this suite's purpose is racing the publisher's
// readers against its writer; threads are the test subject.
#include <thread>
#include <vector>

#include "stream/engine.h"
#include "stream/snapshot.h"
#include "stream/testing.h"

#include <gtest/gtest.h>

namespace bikegraph::stream {
namespace {

TEST(SnapshotPublisherTest, StampsSequentialEpochs) {
  SnapshotPublisher publisher;
  EXPECT_EQ(publisher.epoch(), 0u);
  EXPECT_EQ(publisher.Current(), nullptr);

  auto first = publisher.Publish(WindowSnapshot{});
  EXPECT_EQ(first->epoch, 1u);
  EXPECT_EQ(publisher.epoch(), 1u);
  EXPECT_EQ(publisher.Current(), first);

  auto second = publisher.Publish(WindowSnapshot{});
  EXPECT_EQ(second->epoch, 2u);
  EXPECT_EQ(publisher.Current(), second);
  // The older epoch stays alive for as long as a reader holds it.
  EXPECT_EQ(first->epoch, 1u);
}

TEST(SnapshotPublisherTest, RestoreEpochRewindsAndDropsCurrent) {
  SnapshotPublisher publisher;
  (void)publisher.Publish(WindowSnapshot{});
  (void)publisher.Publish(WindowSnapshot{});

  publisher.RestoreEpoch(7);
  EXPECT_EQ(publisher.epoch(), 7u);
  EXPECT_EQ(publisher.Current(), nullptr);

  auto next = publisher.Publish(WindowSnapshot{});
  EXPECT_EQ(next->epoch, 8u);
}

// Readers race a publishing writer. The ordering contract under test:
// an epoch observed via epoch() is already retrievable via Current(),
// and a snapshot handle is never torn — its stamped epoch always
// matches the marker the writer stored alongside it.
TEST(SnapshotPublisherTest, ConcurrentPublishAndRead) {
  SnapshotPublisher publisher;
  constexpr uint64_t kEpochs = 400;
  constexpr int kReaders = 4;

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&publisher] {
      uint64_t last_seen = 0;
      while (last_seen < kEpochs) {
        const uint64_t observed = publisher.epoch();
        auto snap = publisher.Current();
        if (observed > 0) {
          // Snapshot stored before the counter: observing epoch N
          // guarantees Current() is at least epoch N.
          ASSERT_NE(snap, nullptr);
          ASSERT_GE(snap->epoch, observed);
        }
        if (snap != nullptr) {
          // The writer publishes trip_count == stamped epoch; a torn
          // or partially-constructed snapshot would break this.
          ASSERT_EQ(snap->trip_count, snap->epoch);
          ASSERT_GE(snap->epoch, last_seen);  // epochs never regress
          last_seen = snap->epoch;
        }
      }
    });
  }

  for (uint64_t i = 1; i <= kEpochs; ++i) {
    WindowSnapshot snap;
    snap.trip_count = i;  // marker readers cross-check against the epoch
    (void)publisher.Publish(std::move(snap));
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(publisher.epoch(), kEpochs);
}

// A dashboard thread polls the engine's any-thread surface —
// LatestSnapshot(), publisher(), delta/full freeze counters — while the
// ingestion thread ingests and freezes. Locks the StreamEngine::Snapshot
// stats counters against reader races (they were plain uint64_t once).
TEST(StreamEngineTest, ReaderPollsStatsWhileIngestionFreezes) {
  StreamEngineConfig config;
  config.station_count = 12;
  config.window_seconds = 86400;
  StreamEngine engine(config);

  const auto events = testing::PlantedStream(12, 3, 2, 150, 99);

  std::atomic<bool> done{false};
  std::thread reader([&] {
    // do-while: on a single-CPU host the ingestion loop can finish
    // before this thread first runs; poll at least once regardless.
    do {
      auto snap = engine.LatestSnapshot();
      // Counters after the acquire load: the publish's release store
      // makes the writer's pre-publish increment visible here.
      const uint64_t delta = engine.delta_freeze_count();
      const uint64_t full = engine.full_freeze_count();
      if (snap != nullptr) {
        ASSERT_GT(delta + full, 0u);
        ASSERT_LE(snap->epoch, engine.publisher().epoch());
      }
    } while (!done.load(std::memory_order_acquire));
  });

  size_t i = 0;
  for (const auto& e : events) {
    ASSERT_TRUE(engine.Ingest(e).ok());
    if (++i % 25 == 0) {
      ASSERT_TRUE(engine.Snapshot().ok());
    }
  }
  ASSERT_TRUE(engine.Flush().ok());
  ASSERT_TRUE(engine.Snapshot().ok());
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(engine.delta_freeze_count() + engine.full_freeze_count(),
            engine.publisher().epoch());
}

}  // namespace
}  // namespace bikegraph::stream
