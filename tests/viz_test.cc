#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/civil_time.h"
#include "expansion/pipeline.h"
#include "geo/haversine.h"
#include "viz/ascii_table.h"
#include "viz/map_export.h"

#include <gtest/gtest.h>

namespace bikegraph::viz {
namespace {

TEST(AsciiTableTest, RendersHeaderAndRows) {
  AsciiTable t({"Measure", "Value"});
  t.AddRow({"#nodes", "1172"});
  t.AddRow({"#trips", "61872"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("Measure"), std::string::npos);
  EXPECT_NE(out.find("1172"), std::string::npos);
  EXPECT_NE(out.find("61872"), std::string::npos);
  EXPECT_NE(out.find("+--"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(AsciiTableTest, PadsAndTruncatesRows) {
  AsciiTable t({"a", "b"});
  t.AddRow({"only-one"});
  t.AddRow({"x", "y", "z-ignored"});
  std::string out = t.ToString();
  EXPECT_EQ(out.find("z-ignored"), std::string::npos);
}

TEST(AsciiTableTest, SeparatorRows) {
  AsciiTable t({"x"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  std::string out = t.ToString();
  // 2 outer + 1 header + 1 mid separator = 4 separator lines.
  size_t count = 0, pos = 0;
  while ((pos = out.find("+-", pos)) != std::string::npos) {
    ++count;
    pos += 2;
  }
  EXPECT_EQ(count, 4u);
}

TEST(AsciiTableTest, ColumnsAlignAcrossRows) {
  AsciiTable t({"name", "n"});
  t.AddRow({"short", "1"});
  t.AddRow({"a-much-longer-name", "22"});
  std::istringstream lines(t.ToString());
  std::string line;
  size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

/// Small final network for exporter smoke tests.
expansion::FinalNetwork SmallNetwork() {
  const geo::LatLon center(53.35, -6.26);
  std::vector<data::LocationRecord> locs = {
      {1, center, true, "A"},
      {2, geo::Offset(center, 800.0, 90.0), true, "B"},
  };
  std::vector<data::RentalRecord> rentals;
  for (int i = 0; i < 5; ++i) {
    data::RentalRecord r;
    r.id = i + 1;
    r.bike_id = 1;
    r.start_time = CivilTime::FromCalendar(2020, 6, 1, 8, 0, 0).ValueOrDie();
    r.end_time = r.start_time.AddSeconds(900);
    r.rental_location_id = i % 2 == 0 ? 1 : 2;
    r.return_location_id = i % 2 == 0 ? 2 : 1;
    rentals.push_back(r);
  }
  data::Dataset ds(std::move(locs), std::move(rentals));
  auto pipeline = expansion::RunExpansionPipeline(ds);
  EXPECT_TRUE(pipeline.ok());
  return std::move(pipeline->final_network);
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(MapExportTest, SelectedMapContainsStations) {
  auto net = SmallNetwork();
  std::string path = ::testing::TempDir() + "/selected.geojson";
  ASSERT_TRUE(WriteSelectedMap(net, path).ok());
  std::string content = ReadAll(path);
  EXPECT_NE(content.find("\"FeatureCollection\""), std::string::npos);
  EXPECT_NE(content.find("\"pre_existing\":1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(MapExportTest, SelectedMapRejectsBadPercentile) {
  auto net = SmallNetwork();
  EXPECT_FALSE(WriteSelectedMap(net, "/tmp/x.geojson", 1.5).ok());
}

TEST(MapExportTest, CommunityMapTagsCommunities) {
  auto net = SmallNetwork();
  community::Partition p;
  p.assignment = {0, 1};
  std::string path = ::testing::TempDir() + "/communities.geojson";
  ASSERT_TRUE(WriteCommunityMap(net, p, path).ok());
  std::string content = ReadAll(path);
  EXPECT_NE(content.find("\"community\":1"), std::string::npos);
  EXPECT_NE(content.find("\"community\":2"), std::string::npos);
  EXPECT_NE(content.find("\"color\":\"blue\""), std::string::npos);
  EXPECT_NE(content.find("\"color\":\"orange\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(MapExportTest, CommunityMapSizeMismatch) {
  auto net = SmallNetwork();
  community::Partition p;
  p.assignment = {0};
  EXPECT_FALSE(WriteCommunityMap(net, p, "/tmp/x.geojson").ok());
}

TEST(MapExportTest, DotExportHasDigraphStructure) {
  auto net = SmallNetwork();
  std::string path = ::testing::TempDir() + "/net.dot";
  ASSERT_TRUE(WriteDot(net, path, /*min_weight=*/1.0).ok());
  std::string content = ReadAll(path);
  EXPECT_NE(content.find("digraph"), std::string::npos);
  EXPECT_NE(content.find("n0 -> n1"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bikegraph::viz
