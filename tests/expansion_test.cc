#include <set>
#include <vector>

#include "core/civil_time.h"
#include "core/rng.h"
#include "expansion/candidate.h"
#include "expansion/final_network.h"
#include "expansion/pipeline.h"
#include "expansion/selection.h"
#include "geo/grid_index.h"
#include "geo/haversine.h"

#include <gtest/gtest.h>

#include "core/checked_cast.h"

using bikegraph::AsIndex;

namespace bikegraph::expansion {
namespace {

using geo::LatLon;
using geo::Offset;

const LatLon kCenter(53.35, -6.26);

CivilTime At(int day, int hour) {
  return CivilTime::FromCalendar(2020, 6, day, hour, 0, 0).ValueOrDie();
}

data::RentalRecord Rental(int64_t id, int64_t from, int64_t to, int day = 1,
                          int hour = 8) {
  data::RentalRecord r;
  r.id = id;
  r.bike_id = 1;
  r.start_time = At(day, hour);
  r.end_time = At(day, hour + 1);
  r.rental_location_id = from;
  r.return_location_id = to;
  return r;
}

/// Fixture: 2 stations 1 km apart; a tight dockless cluster 400 m from
/// station A with heavy traffic; a lone low-traffic location; and a
/// dockless location within absorption range of station B.
data::Dataset Fixture() {
  std::vector<data::LocationRecord> locs = {
      {1, kCenter, true, "Stn A"},
      {2, Offset(kCenter, 1000.0, 90.0), true, "Stn B"},
      // Tight free cluster ~400 m north of A (3 locations within 40 m).
      {10, Offset(kCenter, 400.0, 0.0), false, ""},
      {11, Offset(Offset(kCenter, 400.0, 0.0), 30.0, 90.0), false, ""},
      {12, Offset(Offset(kCenter, 400.0, 0.0), 30.0, 200.0), false, ""},
      // Lone low-traffic location far away.
      {20, Offset(kCenter, 2000.0, 180.0), false, ""},
      // Absorbed by station B (within 50 m).
      {30, Offset(Offset(kCenter, 1000.0, 90.0), 25.0, 0.0), false, ""},
  };
  std::vector<data::RentalRecord> rentals;
  int64_t id = 1;
  // Stations are busy (station degree floor: A and B both high).
  for (int i = 0; i < 6; ++i) rentals.push_back(Rental(id++, 1, 2));
  for (int i = 0; i < 5; ++i) rentals.push_back(Rental(id++, 2, 1));
  // The tight cluster is heavily used: its degree (17) must clear the
  // weakest station's degree (B group: 6 from + 7 to = 13).
  for (int i = 0; i < 10; ++i) rentals.push_back(Rental(id++, 10, 1));
  for (int i = 0; i < 6; ++i) rentals.push_back(Rental(id++, 1, 11));
  rentals.push_back(Rental(id++, 12, 2));
  // The lone location sees a single trip (below threshold).
  rentals.push_back(Rental(id++, 20, 1));
  // The absorbed location trades with A.
  rentals.push_back(Rental(id++, 30, 1));
  return data::Dataset(std::move(locs), std::move(rentals));
}

TEST(CandidateTest, BuildsGroupsAndGraph) {
  auto net = BuildCandidateNetwork(Fixture());
  ASSERT_TRUE(net.ok()) << net.status();
  // Groups: 2 stations + free clusters {10,11,12} and {20}.
  EXPECT_EQ(net->fixed_count, 2u);
  EXPECT_EQ(net->free_count(), 2u);
  EXPECT_EQ(net->graph.NodeCount(), 4u);
  EXPECT_EQ(net->graph.EdgeCount(), 30u);  // one edge per rental

  // Location 30 absorbed into station B's group.
  EXPECT_EQ(net->location_to_candidate.at(30),
            net->location_to_candidate.at(2));
  // The tight cluster groups all three locations.
  EXPECT_EQ(net->location_to_candidate.at(10),
            net->location_to_candidate.at(11));
  EXPECT_EQ(net->location_to_candidate.at(11),
            net->location_to_candidate.at(12));
}

TEST(CandidateTest, DegreesCountTripEndpoints) {
  auto net = BuildCandidateNetwork(Fixture());
  ASSERT_TRUE(net.ok());
  const int32_t cluster = net->location_to_candidate.at(10);
  EXPECT_EQ(net->candidates[AsIndex(cluster)].trips_from, 11);  // 10 from 10 + 1 from 12
  EXPECT_EQ(net->candidates[AsIndex(cluster)].trips_to, 6);
  EXPECT_EQ(net->candidates[AsIndex(cluster)].degree(), 17);
}

TEST(CandidateTest, EdgePropertiesCarryTime) {
  auto net = BuildCandidateNetwork(Fixture());
  ASSERT_TRUE(net.ok());
  bool checked = false;
  net->graph.ForEachEdge("TRIP", [&](graphdb::EdgeId e) {
    auto day = net->graph.GetEdgeProperty(e, "day").AsInt();
    auto hour = net->graph.GetEdgeProperty(e, "hour").AsInt();
    ASSERT_TRUE(day.ok());
    ASSERT_TRUE(hour.ok());
    EXPECT_GE(*day, 0);
    EXPECT_LE(*day, 6);
    EXPECT_EQ(*hour, 8);
    checked = true;
  });
  EXPECT_TRUE(checked);
}

TEST(CandidateTest, RejectsUncleanedDataset) {
  // A location without coordinates must be rejected (cleaning contract).
  std::vector<data::LocationRecord> locs = {{1, kCenter, true, "Stn"}};
  data::LocationRecord broken;
  broken.id = 2;
  locs.push_back(broken);
  data::Dataset ds(std::move(locs), {});
  EXPECT_FALSE(BuildCandidateNetwork(ds).ok());
}

TEST(SelectionTest, ThresholdFromWeakestStation) {
  auto net = BuildCandidateNetwork(Fixture());
  ASSERT_TRUE(net.ok());
  auto sel = SelectStations(*net);
  ASSERT_TRUE(sel.ok());
  // Station A degree: trips touching A; Station B smaller. Threshold is
  // min of the two; the tight cluster (degree 17) passes, the lone one (2)
  // fails.
  const int32_t cluster = net->location_to_candidate.at(10);
  const int32_t lone = net->location_to_candidate.at(20);
  EXPECT_EQ(sel->selected.size(), 1u);
  EXPECT_EQ(sel->selected[0], cluster);
  EXPECT_EQ(sel->reasons[AsIndex(lone)], RejectionReason::kBelowDegree);
  EXPECT_GT(sel->degree_threshold, 0);
}

TEST(SelectionTest, SecondaryDistanceRejectsNearStation) {
  auto net = BuildCandidateNetwork(Fixture());
  ASSERT_TRUE(net.ok());
  SelectionParams params;
  params.secondary_distance_m = 500.0;  // cluster is ~400 m from Stn A
  auto sel = SelectStations(*net, params);
  ASSERT_TRUE(sel.ok());
  EXPECT_TRUE(sel->selected.empty());
  const int32_t cluster = net->location_to_candidate.at(10);
  EXPECT_EQ(sel->reasons[AsIndex(cluster)], RejectionReason::kNearFixedStation);
}

TEST(SelectionTest, ThresholdOverride) {
  auto net = BuildCandidateNetwork(Fixture());
  ASSERT_TRUE(net.ok());
  SelectionParams params;
  params.degree_threshold_override = 1;
  auto sel = SelectStations(*net, params);
  ASSERT_TRUE(sel.ok());
  // Both free candidates now pass the degree rule (lone has degree 2).
  EXPECT_EQ(sel->selected.size(), 2u);
  EXPECT_EQ(sel->degree_threshold, 1);
  // Ranked by degree descending.
  EXPECT_GE(sel->scores[AsIndex(sel->selected[0])], sel->scores[AsIndex(sel->selected[1])]);
}

TEST(SelectionTest, PairwiseSuppressionKeepsHigherDegree) {
  // Two strong candidate clusters 150 m apart: only the stronger survives.
  std::vector<data::LocationRecord> locs = {
      {1, kCenter, true, "Stn"},
      {10, Offset(kCenter, 600.0, 0.0), false, ""},
      {11, Offset(kCenter, 750.0, 0.0), false, ""},
  };
  std::vector<data::RentalRecord> rentals;
  int64_t id = 1;
  for (int i = 0; i < 2; ++i) rentals.push_back(Rental(id++, 1, 1));
  for (int i = 0; i < 6; ++i) rentals.push_back(Rental(id++, 10, 1));
  for (int i = 0; i < 4; ++i) rentals.push_back(Rental(id++, 11, 1));
  data::Dataset ds(std::move(locs), std::move(rentals));

  auto net = BuildCandidateNetwork(ds);
  ASSERT_TRUE(net.ok());
  SelectionParams params;
  params.degree_threshold_override = 1;
  auto sel = SelectStations(*net, params);
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->selected.size(), 1u);
  EXPECT_EQ(sel->selected[0], net->location_to_candidate.at(10));
  EXPECT_EQ(sel->reasons[AsIndex(net->location_to_candidate.at(11))],
            RejectionReason::kSuppressedByPeer);
  EXPECT_GE(sel->suppression_rounds, 1);
}

TEST(SelectionTest, SelectedCandidatesAreMutuallyDistant) {
  auto net = BuildCandidateNetwork(Fixture());
  ASSERT_TRUE(net.ok());
  SelectionParams params;
  params.degree_threshold_override = 1;
  auto sel = SelectStations(*net, params);
  ASSERT_TRUE(sel.ok());
  for (size_t i = 0; i < sel->selected.size(); ++i) {
    for (size_t j = i + 1; j < sel->selected.size(); ++j) {
      EXPECT_GT(geo::HaversineMeters(
                    net->candidates[AsIndex(sel->selected[i])].centroid,
                    net->candidates[AsIndex(sel->selected[j])].centroid),
                params.secondary_distance_m);
    }
  }
}

TEST(SelectionTest, NoFixedStationsIsError) {
  std::vector<data::LocationRecord> locs = {{10, kCenter, false, ""}};
  std::vector<data::RentalRecord> rentals = {Rental(1, 10, 10)};
  data::Dataset ds(std::move(locs), std::move(rentals));
  auto net = BuildCandidateNetwork(ds);
  ASSERT_TRUE(net.ok());
  EXPECT_FALSE(SelectStations(*net).ok());
  SelectionParams params;
  params.degree_threshold_override = 1;
  EXPECT_TRUE(SelectStations(*net, params).ok());
}

TEST(FinalNetworkTest, TripsConservedAfterReassignment) {
  auto net = BuildCandidateNetwork(Fixture());
  ASSERT_TRUE(net.ok());
  auto sel = SelectStations(*net);
  ASSERT_TRUE(sel.ok());
  auto fixture = Fixture();
  auto fin = BuildFinalNetwork(fixture, *net, *sel);
  ASSERT_TRUE(fin.ok()) << fin.status();
  // All 30 trips survive (the paper's invariant: reassignment keeps totals).
  EXPECT_EQ(fin->graph.EdgeCount(), 30u);
  EXPECT_EQ(fin->stations.size(), 2u + sel->selected.size());
  EXPECT_EQ(fin->pre_existing_count, 2u);
  // Lone location 20 was not selected -> reassigned to nearest station.
  EXPECT_GE(fin->reassigned_locations, 1u);
  // Every location maps to a station.
  for (const auto& loc : fixture.locations()) {
    EXPECT_TRUE(fin->location_to_station.count(loc.id)) << loc.id;
  }
}

TEST(FinalNetworkTest, StatsShapeMatchesTableThree) {
  auto net = BuildCandidateNetwork(Fixture());
  ASSERT_TRUE(net.ok());
  auto sel = SelectStations(*net);
  ASSERT_TRUE(sel.ok());
  auto fixture = Fixture();
  auto fin = BuildFinalNetwork(fixture, *net, *sel);
  ASSERT_TRUE(fin.ok());
  auto stats = fin->ComputeStats();
  EXPECT_EQ(stats.pre_existing.stations, 2u);
  EXPECT_EQ(stats.selected.stations, 1u);
  EXPECT_EQ(stats.total_trips, 30);
  EXPECT_EQ(stats.pre_existing.trips_from + stats.selected.trips_from,
            stats.total_trips);
  EXPECT_EQ(stats.pre_existing.trips_to + stats.selected.trips_to,
            stats.total_trips);
  EXPECT_EQ(stats.pre_existing.edges_from + stats.selected.edges_from,
            stats.total_edges);
  EXPECT_EQ(stats.pre_existing.edges_to + stats.selected.edges_to,
            stats.total_edges);
}

TEST(FinalNetworkTest, NewStationsNamedByRank) {
  auto net = BuildCandidateNetwork(Fixture());
  ASSERT_TRUE(net.ok());
  SelectionParams params;
  params.degree_threshold_override = 1;
  auto sel = SelectStations(*net, params);
  ASSERT_TRUE(sel.ok());
  auto fixture = Fixture();
  auto fin = BuildFinalNetwork(fixture, *net, *sel);
  ASSERT_TRUE(fin.ok());
  ASSERT_EQ(fin->selected_count(), 2u);
  EXPECT_EQ(fin->stations[2].name, "New Stn #1");
  EXPECT_EQ(fin->stations[3].name, "New Stn #2");
  EXPECT_FALSE(fin->stations[2].pre_existing);
  EXPECT_TRUE(fin->stations[0].pre_existing);
}

TEST(PipelineTest, EndToEndOnFixture) {
  auto result = RunExpansionPipeline(Fixture());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->cleaning_report.after.rental_count, 30u);
  EXPECT_EQ(result->final_network.pre_existing_count, 2u);
  EXPECT_EQ(result->final_network.graph.EdgeCount(), 30u);
}

// The expansion pipeline now freezes its grid indexes at every
// build/query boundary (Rule-4 fixed-station lookup, the per-round
// survivor suppression grid, final-network nearest-station
// reassignment). Query parity between the frozen (sorted-cell) and
// lazy (hash-bucket) representations is asserted here over randomized
// station layouts at exactly the pipeline's query shapes: Nearest and
// sorted WithinRadius. The pipeline-output tests above double as the
// end-to-end regression lock.
TEST(GridFreezeParityTest, FrozenIndexAnswersPipelineQueriesIdentically) {
  Rng rng(20240731);
  for (const double cell_size_m : {50.0, 120.0, 300.0}) {
    geo::GridIndex lazy(cell_size_m);
    geo::GridIndex frozen(cell_size_m);
    std::vector<LatLon> points;
    for (int i = 0; i < 400; ++i) {
      const double range = rng.NextDouble() * 3000.0;
      const double bearing = rng.NextDouble() * 360.0;
      points.push_back(Offset(kCenter, range, bearing));
      lazy.Add(i, points.back());
      frozen.Add(i, points.back());
    }
    frozen.Freeze();
    ASSERT_TRUE(frozen.frozen());
    ASSERT_FALSE(lazy.frozen());
    for (int q = 0; q < 400; ++q) {
      const LatLon& at = points[AsIndex(q)];
      // SelectStations' Rule-4 shape: nearest fixed station.
      const auto near_lazy = lazy.Nearest(at);
      const auto near_frozen = frozen.Nearest(at);
      EXPECT_EQ(near_frozen.id, near_lazy.id) << "cell " << cell_size_m;
      EXPECT_EQ(near_frozen.distance_m, near_lazy.distance_m);
      // BuildFinalNetwork's shape: nearest excluding the query point.
      const auto excl_lazy = lazy.Nearest(at, q);
      const auto excl_frozen = frozen.Nearest(at, q);
      EXPECT_EQ(excl_frozen.id, excl_lazy.id);
      EXPECT_EQ(excl_frozen.distance_m, excl_lazy.distance_m);
      // The suppression round's shape: everything within the secondary
      // distance (WithinRadius returns sorted ids, so direct equality).
      EXPECT_EQ(frozen.WithinRadius(at, cell_size_m * 2.5),
                lazy.WithinRadius(at, cell_size_m * 2.5));
    }
  }
}

}  // namespace
}  // namespace bikegraph::expansion
