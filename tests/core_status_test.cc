#include "core/result.h"
#include "core/status.h"

#include <gtest/gtest.h>

namespace bikegraph {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::DataLoss("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDataLoss), "DataLoss");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  BIKEGRAPH_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r(3);
  EXPECT_EQ(r.ValueOr(7), 3);
}

// Satellite regression (PR 7): tools/calibrate.cc dereferenced
// RunCommunityExperiment results without checking ok() — the dropped
// Status meant any experiment failure walked straight into this abort.
// Pins that the abort really is the failure mode being defended against.
TEST(ResultTest, ErrorDerefDiesInDebugBuilds) {
#ifndef NDEBUG
  Result<int> r = Status::NotFound("nope");
  EXPECT_DEATH((void)r.ValueOrDie(), "");
#else
  GTEST_SKIP() << "assert(ok()) compiles out under NDEBUG";
#endif
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "hello");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

Result<int> Doubled(int x) {
  BIKEGRAPH_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  auto err = Doubled(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, ArrowOperatorOnStruct) {
  struct Pair {
    int a, b;
  };
  Result<Pair> r(Pair{1, 2});
  EXPECT_EQ(r->a, 1);
  EXPECT_EQ(r->b, 2);
}

}  // namespace
}  // namespace bikegraph
