// Equivalence tests for the flat-memory hot-path rewrites: the sort+scan
// CSR builder, the flat-scratch Louvain, and the grid-driven threshold HAC
// must produce exactly the results of straightforward map-based reference
// implementations (and of the dense reference algorithms).

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <vector>

#include "cluster/hac.h"
#include "community/aggregate.h"
#include "community/louvain.h"
#include "community/modularity.h"
#include "community/partition.h"
#include "core/rng.h"
#include "geo/grid_index.h"
#include "geo/haversine.h"
#include "graphdb/weighted_graph.h"

#include <gtest/gtest.h>

#include "core/checked_cast.h"

using bikegraph::AsIndex;

namespace bikegraph {
namespace {

using cluster::DenseHacGeo;
using cluster::Linkage;
using cluster::ThresholdCompleteLinkage;
using community::AggregateByPartition;
using community::ComposePartitions;
using community::LouvainOptions;
using community::Modularity;
using community::Partition;
using community::RunLouvain;
using geo::LatLon;
using graphdb::WeightedGraph;
using graphdb::WeightedGraphBuilder;

// ---------------------------------------------------------------------------
// Reference CSR builder: per-node ordered maps, exactly the seed scheme.
// ---------------------------------------------------------------------------
struct RefGraph {
  std::vector<size_t> offsets;
  std::vector<WeightedGraph::Neighbor> adj;
  std::vector<double> self_weight, strength;
  double total_weight = 0.0;
  size_t edge_count = 0, self_loop_count = 0;
};

RefGraph ReferenceBuild(size_t n,
                        const std::vector<std::array<double, 3>>& edges) {
  std::vector<std::map<int32_t, double>> pw(n);
  RefGraph g;
  g.self_weight.assign(n, 0.0);
  for (const auto& e : edges) {
    int32_t u = static_cast<int32_t>(e[0]), v = static_cast<int32_t>(e[1]);
    double w = e[2];
    if (u == v) {
      g.self_weight[AsIndex(u)] += w;
      continue;
    }
    if (u > v) std::swap(u, v);
    pw[AsIndex(u)][v] += w;
  }
  g.strength.assign(n, 0.0);
  g.offsets.assign(n + 1, 0);
  std::vector<size_t> deg(n, 0);
  for (size_t u = 0; u < n; ++u) {
    for (const auto& [v, w] : pw[u]) {
      ++deg[u];
      ++deg[AsIndex(v)];
      ++g.edge_count;
      (void)w;
    }
  }
  for (size_t u = 0; u < n; ++u) g.offsets[u + 1] = g.offsets[u] + deg[u];
  g.adj.resize(g.offsets[n]);
  std::vector<size_t> cur(g.offsets.begin(), g.offsets.end() - 1);
  for (size_t u = 0; u < n; ++u) {
    for (const auto& [v, w] : pw[u]) {
      g.adj[cur[u]++] = {v, w};
      g.adj[cur[AsIndex(v)]++] = {static_cast<int32_t>(u), w};
      g.strength[u] += w;
      g.strength[AsIndex(v)] += w;
    }
  }
  double total = 0.0;
  for (size_t u = 0; u < n; ++u) {
    total += g.strength[u];
    if (g.self_weight[u] > 0.0) ++g.self_loop_count;
    g.strength[u] += 2.0 * g.self_weight[u];
  }
  total /= 2.0;
  for (size_t u = 0; u < n; ++u) total += g.self_weight[u];
  g.total_weight = total;
  return g;
}

TEST(FlatCsrBuilderTest, MatchesMapReferenceOnRandomMultigraphs) {
  Rng rng(404);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 2 + rng.NextBounded(60);
    const size_t m = rng.NextBounded(8 * n);
    std::vector<std::array<double, 3>> edges;
    WeightedGraphBuilder builder(n);
    for (size_t e = 0; e < m; ++e) {
      const auto u = static_cast<double>(rng.NextBounded(n));
      // Skew endpoints so parallel edges and self-loops are common.
      const auto v = static_cast<double>(rng.NextBounded(n / 2 + 1));
      const double w = rng.NextBounded(4) == 0 ? 0.0 : rng.NextDouble();
      edges.push_back({u, v, w});
      ASSERT_TRUE(builder
                      .AddEdge(static_cast<int32_t>(u),
                               static_cast<int32_t>(v), w)
                      .ok());
    }
    WeightedGraph g = builder.Build();
    RefGraph ref = ReferenceBuild(n, edges);

    ASSERT_EQ(g.node_count(), n);
    EXPECT_EQ(g.edge_count(), ref.edge_count);
    EXPECT_EQ(g.self_loop_count(), ref.self_loop_count);
    EXPECT_EQ(g.total_weight(), ref.total_weight);  // bit-identical
    for (size_t u = 0; u < n; ++u) {
      const auto ui = static_cast<int32_t>(u);
      EXPECT_EQ(g.strength(ui), ref.strength[u]);
      EXPECT_EQ(g.self_weight(ui), ref.self_weight[u]);
      auto row = g.neighbors(ui);
      ASSERT_EQ(row.size(), ref.offsets[u + 1] - ref.offsets[u]);
      for (size_t i = 0; i < row.size(); ++i) {
        const auto& expect = ref.adj[ref.offsets[u] + i];
        EXPECT_EQ(row[i].node, expect.node);
        EXPECT_EQ(row[i].weight, expect.weight);  // merge order preserved
        // Sorted-adjacency invariant that WeightBetween's binary search
        // relies on.
        if (i > 0) {
          EXPECT_LT(row[i - 1].node, row[i].node);
        }
        EXPECT_EQ(g.WeightBetween(ui, expect.node), expect.weight);
      }
    }
    // WeightBetween (binary search) agrees with a linear reference lookup
    // for every pair, present or absent.
    for (size_t u = 0; u < n; ++u) {
      for (size_t v = 0; v < n; ++v) {
        double expect = 0.0;
        if (u == v) {
          expect = ref.self_weight[u];
        } else {
          for (size_t i = ref.offsets[u]; i < ref.offsets[u + 1]; ++i) {
            if (ref.adj[i].node == static_cast<int32_t>(v)) {
              expect = ref.adj[i].weight;
            }
          }
        }
        EXPECT_EQ(g.WeightBetween(static_cast<int32_t>(u),
                                  static_cast<int32_t>(v)),
                  expect);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Reference Louvain: same algorithm, std::map scratch instead of the flat
// vectors. The selection rule (exact argmax of (gain, -label) among
// strictly-better-than-staying candidates) is order independent, so the two
// implementations must agree exactly.
// ---------------------------------------------------------------------------
struct RefLocalMoveOutcome {
  Partition partition;
  bool improved = false;
};

RefLocalMoveOutcome RefLocalMoving(const WeightedGraph& g,
                                   const LouvainOptions& options, Rng* rng) {
  const size_t n = g.node_count();
  const double m = g.total_weight();
  RefLocalMoveOutcome out;
  out.partition = Partition::Singletons(n);
  if (n == 0 || m <= 0.0) return out;
  std::vector<int32_t>& comm = out.partition.assignment;
  std::vector<double> sigma_tot(n);
  for (size_t u = 0; u < n; ++u) sigma_tot[u] = g.strength(static_cast<int32_t>(u));

  std::vector<int32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<int32_t>(i);
  rng->Shuffle(&order);
  const double inv_two_m = 1.0 / (2.0 * m);

  std::deque<int32_t> queue(order.begin(), order.end());
  std::vector<char> in_queue(n, 1);
  size_t budget = static_cast<size_t>(options.max_sweeps_per_level) * n;
  bool any_move = false;
  while (!queue.empty() && budget > 0) {
    --budget;
    const int32_t u = queue.front();
    queue.pop_front();
    in_queue[AsIndex(u)] = 0;
    const int32_t cu = comm[AsIndex(u)];
    const double k_u = g.strength(u);

    std::map<int32_t, double> w_to_comm;
    w_to_comm[cu];
    for (const auto& nb : g.neighbors(u)) w_to_comm[comm[AsIndex(nb.node)]] += nb.weight;

    sigma_tot[AsIndex(cu)] -= k_u;
    const double ku_res = options.resolution * k_u * inv_two_m;
    const double stay_gain = w_to_comm[cu] - ku_res * sigma_tot[AsIndex(cu)];
    int32_t best_comm = cu;
    double best_gain = stay_gain;
    for (const auto& [c, w_uc] : w_to_comm) {
      if (c == cu) continue;
      const double gain = w_uc - ku_res * sigma_tot[AsIndex(c)];
      if (gain > best_gain ||
          (gain == best_gain && gain > stay_gain && c < best_comm)) {
        best_gain = gain;
        best_comm = c;
      }
    }
    sigma_tot[AsIndex(best_comm)] += k_u;
    if (best_comm != cu) {
      comm[AsIndex(u)] = best_comm;
      any_move = true;
      for (const auto& nb : g.neighbors(u)) {
        if (comm[AsIndex(nb.node)] != best_comm && !in_queue[AsIndex(nb.node)]) {
          in_queue[AsIndex(nb.node)] = 1;
          queue.push_back(nb.node);
        }
      }
    }
  }
  out.partition.Renumber();
  out.improved = any_move;
  return out;
}

community::LouvainResult RefLouvain(const WeightedGraph& graph,
                                    const LouvainOptions& options) {
  community::LouvainResult result;
  const size_t n = graph.node_count();
  result.partition = Partition::Singletons(n);
  if (n == 0) return result;
  Rng rng(options.seed);
  const WeightedGraph* level_graph = &graph;
  WeightedGraph owned;
  Partition cumulative = Partition::Singletons(n);
  double best_q = Modularity(graph, cumulative, options.resolution);
  for (int level = 0; level < options.max_levels; ++level) {
    RefLocalMoveOutcome outcome = RefLocalMoving(*level_graph, options, &rng);
    if (!outcome.improved) break;
    Partition candidate = ComposePartitions(cumulative, outcome.partition);
    candidate.Renumber();
    const double q =
        Modularity(*level_graph, outcome.partition, options.resolution);
    if (q <= best_q + options.min_gain) break;
    best_q = q;
    cumulative = candidate;
    result.level_partitions.push_back(candidate);
    ++result.levels;
    if (outcome.partition.CommunityCount() == level_graph->node_count()) break;
    owned = AggregateByPartition(*level_graph, outcome.partition);
    level_graph = &owned;
  }
  result.partition = cumulative;
  result.partition.Renumber();
  result.modularity = Modularity(graph, result.partition, options.resolution);
  return result;
}

WeightedGraph RandomGraph(size_t n, double edge_rate, uint64_t seed) {
  WeightedGraphBuilder b(n);
  Rng rng(seed);
  const size_t m = static_cast<size_t>(edge_rate * static_cast<double>(n));
  for (size_t e = 0; e < m; ++e) {
    const auto u = static_cast<int32_t>(rng.NextBounded(n));
    const auto v = static_cast<int32_t>(rng.NextBounded(n));
    (void)b.AddEdge(u, v, 0.25 + rng.NextDouble());
  }
  return b.Build();
}

TEST(FlatLouvainTest, MatchesMapReferenceOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    WeightedGraph g = RandomGraph(40 + 15 * seed, 3.0, seed * 77);
    LouvainOptions opts;
    opts.seed = seed;
    auto flat = RunLouvain(g, opts);
    ASSERT_TRUE(flat.ok());
    auto ref = RefLouvain(g, opts);
    EXPECT_EQ(flat->partition.assignment, ref.partition.assignment)
        << "partition diverged for seed " << seed;
    EXPECT_EQ(flat->modularity, ref.modularity);
    EXPECT_EQ(flat->levels, ref.levels);
  }
}

TEST(FlatLouvainTest, MatchesMapReferenceOnCliqueRing) {
  WeightedGraphBuilder b(10 * 8);
  Rng rng(5);
  for (int q = 0; q < 10; ++q) {
    for (int i = 0; i < 8; ++i) {
      for (int j = i + 1; j < 8; ++j) {
        (void)b.AddEdge(q * 8 + i, q * 8 + j, 0.5 + rng.NextDouble());
      }
    }
    (void)b.AddEdge(q * 8, ((q + 1) % 10) * 8 + 1, 0.5);
  }
  WeightedGraph g = b.Build();
  auto flat = RunLouvain(g);
  ASSERT_TRUE(flat.ok());
  auto ref = RefLouvain(g, LouvainOptions{});
  EXPECT_EQ(flat->partition.assignment, ref.partition.assignment);
  EXPECT_EQ(flat->modularity, ref.modularity);
}

// ---------------------------------------------------------------------------
// ThresholdCompleteLinkage vs the dense reference.
// ---------------------------------------------------------------------------
std::vector<LatLon> RandomClumpedPoints(size_t n, uint64_t seed) {
  Rng rng(seed);
  const LatLon center(53.35, -6.26);
  std::vector<LatLon> micros;
  for (size_t i = 0; i < std::max<size_t>(4, n / 10); ++i) {
    micros.push_back(geo::Offset(center, rng.NextUniform(0.0, 1500.0),
                                 rng.NextUniform(0.0, 360.0)));
  }
  std::vector<LatLon> points;
  for (size_t i = 0; i < n; ++i) {
    const LatLon& m = micros[rng.NextBounded(micros.size())];
    points.push_back(geo::Offset(m, rng.NextExponential(1.0 / 40.0),
                                 rng.NextUniform(0.0, 360.0)));
  }
  return points;
}

/// Labels are equivalent iff they induce the same partition of indices.
void ExpectSamePartition(const std::vector<int32_t>& a,
                         const std::vector<int32_t>& b) {
  ASSERT_EQ(a.size(), b.size());
  std::map<int32_t, int32_t> a2b;
  for (size_t i = 0; i < a.size(); ++i) {
    auto [it, inserted] = a2b.emplace(a[i], b[i]);
    EXPECT_EQ(it->second, b[i]) << "partition mismatch at point " << i;
    (void)inserted;
  }
  std::map<int32_t, int32_t> b2a;
  for (size_t i = 0; i < a.size(); ++i) {
    auto [it, inserted] = b2a.emplace(b[i], a[i]);
    EXPECT_EQ(it->second, a[i]) << "partition mismatch at point " << i;
    (void)inserted;
  }
}

TEST(ThresholdHacEquivalenceTest, MatchesDenseCutOnRandomInputs) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const size_t n = 80 + 70 * seed;  // up to 500
    ASSERT_LE(n, 500u);
    auto points = RandomClumpedPoints(n, seed * 13);
    for (double threshold : {40.0, 100.0, 250.0}) {
      auto sparse = ThresholdCompleteLinkage(points, threshold);
      ASSERT_TRUE(sparse.ok());
      auto dense = DenseHacGeo(points, Linkage::kComplete);
      ASSERT_TRUE(dense.ok());
      ExpectSamePartition(*sparse, dense->CutAt(threshold));
    }
  }
}

// ---------------------------------------------------------------------------
// GridIndex: dense-storage queries against brute force, including the
// expanding-ring KNearest and the pair sweep.
// ---------------------------------------------------------------------------
TEST(GridIndexEquivalenceTest, KNearestMatchesBruteForce) {
  Rng rng(99);
  const LatLon center(53.35, -6.26);
  std::vector<LatLon> points;
  geo::GridIndex index(100.0);
  for (int i = 0; i < 300; ++i) {
    points.push_back(geo::Offset(center, rng.NextUniform(0.0, 1200.0),
                                 rng.NextUniform(0.0, 360.0)));
    index.Add(i, points.back());
  }
  for (int q = 0; q < 40; ++q) {
    const LatLon query = geo::Offset(center, rng.NextUniform(0.0, 1500.0),
                                     rng.NextUniform(0.0, 360.0));
    const size_t k = 1 + rng.NextBounded(12);
    const int64_t exclude = q % 3 == 0 ? static_cast<int64_t>(q) : -1;
    std::vector<geo::GridIndex::Neighbor> brute;
    for (size_t i = 0; i < points.size(); ++i) {
      if (static_cast<int64_t>(i) == exclude) continue;
      brute.push_back({static_cast<int64_t>(i),
                       geo::HaversineMeters(points[i], query)});
    }
    std::sort(brute.begin(), brute.end(), [](const auto& a, const auto& b) {
      if (a.distance_m != b.distance_m) return a.distance_m < b.distance_m;
      return a.id < b.id;
    });
    if (brute.size() > k) brute.resize(k);
    auto got = index.KNearest(query, k, exclude);
    ASSERT_EQ(got.size(), brute.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, brute[i].id) << "query " << q << " rank " << i;
      EXPECT_DOUBLE_EQ(got[i].distance_m, brute[i].distance_m);
    }
  }
}

TEST(GridIndexEquivalenceTest, ForEachWithinRadiusMatchesWithinRadius) {
  Rng rng(7);
  const LatLon center(53.35, -6.26);
  geo::GridIndex index(80.0);
  std::vector<LatLon> points;
  for (int i = 0; i < 400; ++i) {
    points.push_back(geo::Offset(center, rng.NextUniform(0.0, 900.0),
                                 rng.NextUniform(0.0, 360.0)));
    index.Add(i, points.back());
  }
  for (int q = 0; q < 30; ++q) {
    const LatLon query = geo::Offset(center, rng.NextUniform(0.0, 1000.0),
                                     rng.NextUniform(0.0, 360.0));
    const double radius = rng.NextUniform(10.0, 300.0);
    std::vector<int64_t> via_visitor;
    index.ForEachWithinRadius(query, radius, [&](int64_t id, double d) {
      EXPECT_LE(d, radius);
      EXPECT_EQ(d, geo::HaversineMeters(index.PointOf(id), query));
      via_visitor.push_back(id);
    });
    std::sort(via_visitor.begin(), via_visitor.end());
    EXPECT_EQ(via_visitor, index.WithinRadius(query, radius));
  }
}

TEST(GridIndexEquivalenceTest, PairSweepMatchesBruteForcePairs) {
  Rng rng(21);
  const LatLon center(53.35, -6.26);
  geo::GridIndex index(100.0);
  std::vector<LatLon> points;
  for (int i = 0; i < 250; ++i) {
    points.push_back(geo::Offset(center, rng.NextUniform(0.0, 700.0),
                                 rng.NextUniform(0.0, 360.0)));
    index.Add(i, points.back());
  }
  for (double radius : {30.0, 100.0, 240.0}) {
    std::vector<std::pair<int64_t, int64_t>> got;
    index.ForEachPairWithinRadius(radius, [&](int64_t a, int64_t b, double d) {
      EXPECT_LE(d, radius);
      EXPECT_EQ(d, geo::HaversineMeters(index.PointOf(a), index.PointOf(b)));
      got.emplace_back(std::min(a, b), std::max(a, b));
    });
    std::sort(got.begin(), got.end());
    ASSERT_TRUE(std::adjacent_find(got.begin(), got.end()) == got.end())
        << "pair enumerated twice at radius " << radius;
    std::vector<std::pair<int64_t, int64_t>> brute;
    for (size_t i = 0; i < points.size(); ++i) {
      for (size_t j = i + 1; j < points.size(); ++j) {
        if (geo::HaversineMeters(points[i], points[j]) <= radius) {
          brute.emplace_back(i, j);
        }
      }
    }
    EXPECT_EQ(got, brute);
  }
}

// The pair sweep's per-row longitude span must widen with latitude (cells
// narrow toward the poles); enumerate at 80°N and compare to brute force.
TEST(GridIndexEquivalenceTest, PairSweepMatchesBruteForceAtHighLatitude) {
  Rng rng(33);
  const LatLon center(80.0, 20.0);
  geo::GridIndex index(100.0);  // reference latitude stays at Dublin
  std::vector<LatLon> points;
  for (int i = 0; i < 150; ++i) {
    points.push_back(geo::Offset(center, rng.NextUniform(0.0, 500.0),
                                 rng.NextUniform(0.0, 360.0)));
    index.Add(i, points.back());
  }
  for (double radius : {60.0, 150.0}) {
    std::vector<std::pair<int64_t, int64_t>> got;
    index.ForEachPairWithinRadius(radius, [&](int64_t a, int64_t b, double) {
      got.emplace_back(std::min(a, b), std::max(a, b));
    });
    std::sort(got.begin(), got.end());
    std::vector<std::pair<int64_t, int64_t>> brute;
    for (size_t i = 0; i < points.size(); ++i) {
      for (size_t j = i + 1; j < points.size(); ++j) {
        if (geo::HaversineMeters(points[i], points[j]) <= radius) {
          brute.emplace_back(i, j);
        }
      }
    }
    EXPECT_EQ(got, brute) << "radius " << radius;
  }
}

// Regression: Nearest's ring termination must account for the longitude
// cell width. Away from the reference latitude, longitude cells are
// narrower (in metres) than latitude cells, so a bound using only the
// latitude edge can stop before a closer point in a lateral cell is seen.
TEST(GridIndexNearestTest, RingTerminationCorrectAwayFromReferenceLatitude) {
  geo::GridIndex index(100.0);  // reference latitude 53.35
  const LatLon query(75.0, 0.0);
  // A sits ~90 m east — about 2 longitude cells away at latitude 75.
  const LatLon a = geo::Offset(query, 90.0, 90.0);
  // B sits ~95 m north — inside the first ring.
  const LatLon b = geo::Offset(query, 95.0, 0.0);
  index.Add(1, a);
  index.Add(2, b);
  auto nearest = index.Nearest(query);
  EXPECT_EQ(nearest.id, 1) << "terminated before scanning the lateral cell";
  EXPECT_NEAR(nearest.distance_m, 90.0, 1.0);
}

}  // namespace
}  // namespace bikegraph
