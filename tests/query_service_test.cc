// QueryService bit-identity and semantics: every vocabulary query through
// an epoch-pinned handle answers bit-identically to the direct computation
// on the same WindowSnapshot (sliding and landmark windows, GBasic and
// temporal projections); pinned handles keep answering from their epoch
// while newer epochs publish; the per-epoch memo computes once, is shared
// across pins of one epoch, and stays bounded; batches answer per slot.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/temporal_graph.h"
#include "community/detector.h"
#include "core/status.h"
#include "geo/latlon.h"
#include "query/query.h"
#include "query/service.h"
#include "stream/engine.h"
#include "stream/snapshot.h"
#include "stream/testing.h"

#include <gtest/gtest.h>

namespace bikegraph::query {
namespace {

using stream::StreamEngine;
using stream::StreamEngineConfig;
using stream::WindowSnapshot;

std::vector<geo::LatLon> GridPositions(size_t n) {
  std::vector<geo::LatLon> positions;
  positions.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    positions.emplace_back(53.33 + 0.002 * static_cast<double>(i % 6),
                           -6.30 + 0.003 * static_cast<double>(i / 6));
  }
  return positions;
}

/// Feeds a planted stream into a fresh engine, publishing an epoch every
/// `snapshot_every` events, and returns the engine (flushed, with a final
/// published epoch).
std::unique_ptr<StreamEngine> ServeStream(StreamEngineConfig config,
                                          size_t stations, uint64_t seed,
                                          size_t snapshot_every = 100) {
  auto engine = std::make_unique<StreamEngine>(std::move(config));
  const auto events = stream::testing::PlantedStream(
      stations, 4, /*days=*/3, /*trips_per_day=*/120, seed);
  size_t i = 0;
  for (const auto& e : events) {
    EXPECT_TRUE(engine->Ingest(e).ok());
    if (++i % snapshot_every == 0) {
      EXPECT_TRUE(engine->Snapshot().ok());
    }
  }
  EXPECT_TRUE(engine->Flush().ok());
  EXPECT_TRUE(engine->Snapshot().ok());
  return engine;
}

/// The test's own top-pairs reference: full enumeration + full sort with
/// the documented order (weight desc, ties (u, v) asc, self pairs
/// included) — independent of ComputeTopPairs' partial_sort.
std::vector<TopPair> ReferenceTopPairs(const graphdb::WeightedGraph& graph,
                                       size_t k) {
  std::vector<TopPair> all;
  for (size_t u = 0; u < graph.node_count(); ++u) {
    const auto iu = static_cast<int32_t>(u);
    if (graph.self_weight(iu) > 0.0) {
      all.push_back({iu, iu, graph.self_weight(iu)});
    }
    for (const auto& nb : graph.neighbors(iu)) {
      if (nb.node > iu) all.push_back({iu, nb.node, nb.weight});
    }
  }
  std::sort(all.begin(), all.end(), [](const TopPair& a, const TopPair& b) {
    if (a.weight > b.weight) return true;
    if (b.weight > a.weight) return false;
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

/// The test's own inter-community flow reference, accumulated in the
/// documented (u ascending, neighbor ascending, canonical community pair)
/// order so the doubles match bit for bit.
std::vector<double> ReferenceFlowMatrix(const graphdb::WeightedGraph& graph,
                                        const std::vector<int32_t>& assignment,
                                        size_t communities) {
  std::vector<double> flow(communities * communities, 0.0);
  for (size_t u = 0; u < graph.node_count(); ++u) {
    const auto iu = static_cast<int32_t>(u);
    const auto cu = static_cast<size_t>(assignment[u]);
    flow[cu * communities + cu] += graph.self_weight(iu);
    for (const auto& nb : graph.neighbors(iu)) {
      if (nb.node <= iu) continue;
      const auto cv = static_cast<size_t>(assignment[static_cast<size_t>(nb.node)]);
      flow[std::min(cu, cv) * communities + std::max(cu, cv)] += nb.weight;
    }
  }
  for (size_t a = 0; a < communities; ++a) {
    for (size_t b = a + 1; b < communities; ++b) {
      flow[b * communities + a] = flow[a * communities + b];
    }
  }
  return flow;
}

struct Scenario {
  const char* name;
  int64_t window_seconds;
  analysis::TemporalGranularity granularity;
  uint64_t seed;
};

TEST(QueryServiceBitMatch, AnswersMatchDirectComputation) {
  constexpr size_t kStations = 24;
  const Scenario scenarios[] = {
      {"sliding_gbasic", 2 * 86400, analysis::TemporalGranularity::kNull, 11},
      {"landmark_gbasic", 0, analysis::TemporalGranularity::kNull, 22},
      {"sliding_gday", 2 * 86400, analysis::TemporalGranularity::kDay, 33},
  };
  for (const Scenario& sc : scenarios) {
    SCOPED_TRACE(sc.name);
    StreamEngineConfig config;
    config.station_count = kStations;
    config.window_seconds = sc.window_seconds;
    config.projection.granularity = sc.granularity;
    config.station_positions = GridPositions(kStations);
    auto engine = ServeStream(std::move(config), kStations, sc.seed);

    QueryService service(*engine);
    auto pinned = service.Pin();
    ASSERT_TRUE(pinned.ok());
    const QueryService::Pinned& pin = *pinned;
    const WindowSnapshot& snap = pin.snapshot();
    ASSERT_GT(snap.graph.node_count(), 0u);

    // Direct detection on the same snapshot graph: deterministic given
    // the seeded spec, so the memoized run must agree exactly.
    auto direct = community::Detect(snap.graph, service.options().detection);
    ASSERT_TRUE(direct.ok());
    const auto& assignment = direct->partition.assignment;
    const auto sizes = direct->partition.CommunitySizes();

    for (size_t s = 0; s < kStations; ++s) {
      const auto station = static_cast<int32_t>(s);

      auto community_of = pin.CommunityOf(station);
      ASSERT_TRUE(community_of.ok());
      EXPECT_EQ(community_of->community, assignment[s]);
      EXPECT_EQ(community_of->community_size,
                sizes[static_cast<size_t>(assignment[s])]);
      EXPECT_EQ(community_of->community_count, sizes.size());
      EXPECT_EQ(community_of->modularity, direct->modularity);

      auto profile = pin.Profile(station);
      ASSERT_TRUE(profile.ok());
      EXPECT_EQ(profile->day, snap.profiles.day[s]);
      EXPECT_EQ(profile->hour, snap.profiles.hour[s]);
      double endpoint_total = 0.0;
      for (double d : snap.profiles.day[s]) endpoint_total += d;
      EXPECT_EQ(profile->endpoint_total, endpoint_total);

      auto knearest = pin.KNearest(station, 4);
      ASSERT_TRUE(knearest.ok());
      const auto reference = snap.station_index->KNearest(
          snap.station_index->PointOf(station), 4, station);
      ASSERT_EQ(knearest->neighbors.size(), reference.size());
      for (size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(knearest->neighbors[i].id, reference[i].id);
        EXPECT_EQ(knearest->neighbors[i].distance_m,
                  reference[i].distance_m);
      }
    }

    // Top pairs: the full ranking and a short prefix.
    const size_t all_pairs =
        snap.graph.edge_count() + snap.graph.self_loop_count();
    for (size_t k : {size_t{3}, all_pairs}) {
      auto top = pin.TopPairs(k);
      ASSERT_TRUE(top.ok());
      const auto reference = ReferenceTopPairs(snap.graph, k);
      ASSERT_EQ(top->pairs.size(), reference.size());
      for (size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(top->pairs[i].u, reference[i].u);
        EXPECT_EQ(top->pairs[i].v, reference[i].v);
        EXPECT_EQ(top->pairs[i].weight, reference[i].weight);
      }
    }

    // Inter-community flow, every label pair.
    auto count = pin.CommunityCount();
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, sizes.size());
    const auto flow_ref =
        ReferenceFlowMatrix(snap.graph, assignment, sizes.size());
    for (size_t a = 0; a < sizes.size(); ++a) {
      for (size_t b = 0; b < sizes.size(); ++b) {
        auto flow = pin.Flow(static_cast<int32_t>(a), static_cast<int32_t>(b));
        ASSERT_TRUE(flow.ok());
        EXPECT_EQ(flow->flow, flow_ref[a * sizes.size() + b]);
      }
    }
  }
}

TEST(QueryServiceTest, PinnedHandleKeepsAnsweringFromItsEpoch) {
  constexpr size_t kStations = 24;
  StreamEngineConfig config;
  config.station_count = kStations;
  config.window_seconds = 0;  // landmark: later trips only add weight
  config.station_positions = GridPositions(kStations);
  StreamEngine engine(std::move(config));
  const auto events =
      stream::testing::PlantedStream(kStations, 4, 2, 150, 44);

  const size_t half = events.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(engine.Ingest(events[i]).ok());
  }
  ASSERT_TRUE(engine.Snapshot().ok());

  QueryService service(engine);
  auto old_pin = service.Pin();
  ASSERT_TRUE(old_pin.ok());
  const uint64_t old_epoch = old_pin->epoch();
  const size_t old_trips = old_pin->snapshot().trip_count;
  auto old_top = old_pin->TopPairs(5);
  ASSERT_TRUE(old_top.ok());

  for (size_t i = half; i < events.size(); ++i) {
    ASSERT_TRUE(engine.Ingest(events[i]).ok());
  }
  ASSERT_TRUE(engine.Flush().ok());
  ASSERT_TRUE(engine.Snapshot().ok());

  auto new_pin = service.Pin();
  ASSERT_TRUE(new_pin.ok());
  EXPECT_GT(new_pin->epoch(), old_epoch);
  EXPECT_GT(new_pin->snapshot().trip_count, old_trips);

  // The old handle still answers from its epoch, bit for bit.
  EXPECT_EQ(old_pin->epoch(), old_epoch);
  EXPECT_EQ(old_pin->snapshot().trip_count, old_trips);
  auto old_top_again = old_pin->TopPairs(5);
  ASSERT_TRUE(old_top_again.ok());
  ASSERT_EQ(old_top_again->pairs.size(), old_top->pairs.size());
  for (size_t i = 0; i < old_top->pairs.size(); ++i) {
    EXPECT_EQ(old_top_again->pairs[i].u, old_top->pairs[i].u);
    EXPECT_EQ(old_top_again->pairs[i].v, old_top->pairs[i].v);
    EXPECT_EQ(old_top_again->pairs[i].weight, old_top->pairs[i].weight);
  }
  // The publisher has moved on regardless.
  EXPECT_EQ(engine.publisher().epoch(), new_pin->epoch());
}

TEST(QueryServiceTest, MemoComputesOncePerEpochAndStaysBounded) {
  constexpr size_t kStations = 12;
  StreamEngineConfig config;
  config.station_count = kStations;
  config.window_seconds = 0;
  StreamEngine engine(std::move(config));
  const auto events =
      stream::testing::PlantedStream(kStations, 3, 2, 120, 55);

  QueryServiceOptions options;
  options.memo_epochs = 2;
  QueryService service(engine, options);

  // Before anything is published, pinning must fail cleanly.
  auto early = service.Pin();
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.status().code(), StatusCode::kFailedPrecondition);

  constexpr size_t kEpochs = 4;
  const size_t chunk = events.size() / kEpochs;
  size_t fed = 0;
  for (size_t e = 0; e < kEpochs; ++e) {
    for (size_t i = 0; i < chunk; ++i) {
      ASSERT_TRUE(engine.Ingest(events[fed++]).ok());
    }
    ASSERT_TRUE(engine.Snapshot().ok());

    auto pin = service.Pin();
    ASSERT_TRUE(pin.ok());
    // First community query of the epoch computes; the second hits.
    ASSERT_TRUE(pin->CommunityOf(0).ok());
    ASSERT_TRUE(pin->CommunityOf(1).ok());
    ASSERT_TRUE(pin->TopPairs(3).ok());
    ASSERT_TRUE(pin->TopPairs(5).ok());

    // A second pin of the SAME epoch shares the memo cell.
    auto again = service.Pin();
    ASSERT_TRUE(again.ok());
    ASSERT_EQ(again->epoch(), pin->epoch());
    ASSERT_TRUE(again->CommunityOf(2).ok());

    EXPECT_LE(service.memo_size(), options.memo_epochs);
  }

  const QueryServiceStats stats = service.stats();
  EXPECT_EQ(stats.community_memo_misses, kEpochs);
  EXPECT_EQ(stats.community_memo_hits, 2 * kEpochs);
  EXPECT_EQ(stats.pairs_memo_misses, kEpochs);
  EXPECT_EQ(stats.pairs_memo_hits, kEpochs);
  EXPECT_EQ(stats.pins, 2 * kEpochs + 0u);
  EXPECT_EQ(service.memo_size(), options.memo_epochs);
}

TEST(QueryServiceTest, BatchAnswersPerSlotAndMatchesIndividualExecution) {
  constexpr size_t kStations = 24;
  StreamEngineConfig config;
  config.station_count = kStations;
  config.station_positions = GridPositions(kStations);
  auto engine = ServeStream(std::move(config), kStations, 66);
  QueryService service(*engine);

  const std::vector<Query> batch = {
      StationProfileQuery{3},
      CommunityOfStationQuery{-1},            // invalid station
      KNearestStationsQuery{5, 3},
      TopPairsQuery{4},
      InterCommunityFlowQuery{0, 1 << 20},    // label out of range
      CommunityOfStationQuery{7},
      StationProfileQuery{1 << 20},           // invalid station
      InterCommunityFlowQuery{0, 0},
  };
  auto outcome = service.ExecuteBatch(batch);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->answers.size(), batch.size());

  EXPECT_FALSE(outcome->answers[1].ok());
  EXPECT_EQ(outcome->answers[1].status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(outcome->answers[4].ok());
  EXPECT_FALSE(outcome->answers[6].ok());

  // Valid slots agree with individual execution against a pin of the
  // same (only) epoch.
  auto pin = service.Pin();
  ASSERT_TRUE(pin.ok());
  ASSERT_EQ(pin->epoch(), outcome->epoch);
  for (size_t i : {size_t{0}, size_t{2}, size_t{3}, size_t{5}, size_t{7}}) {
    ASSERT_TRUE(outcome->answers[i].ok()) << "slot " << i;
    auto individual = pin->Execute(batch[i]);
    ASSERT_TRUE(individual.ok());
    EXPECT_EQ(outcome->answers[i]->index(), individual->index());
  }
  const auto& batch_profile =
      std::get<StationProfileResult>(*outcome->answers[0]);
  const auto direct_profile = pin->Profile(3);
  ASSERT_TRUE(direct_profile.ok());
  EXPECT_EQ(batch_profile.day, direct_profile->day);
  EXPECT_EQ(batch_profile.endpoint_total, direct_profile->endpoint_total);
  const auto& batch_flow =
      std::get<InterCommunityFlowResult>(*outcome->answers[7]);
  const auto direct_flow = pin->Flow(0, 0);
  ASSERT_TRUE(direct_flow.ok());
  EXPECT_EQ(batch_flow.flow, direct_flow->flow);

  const QueryServiceStats stats = service.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_GE(stats.query_errors, 3u);
}

TEST(QueryServiceTest, KNearestWithoutStationIndexFailsCleanly) {
  StreamEngineConfig config;
  config.station_count = 12;  // no station_positions
  config.window_seconds = 0;
  auto engine = ServeStream(std::move(config), 12, 77);
  QueryService service(*engine);
  auto pin = service.Pin();
  ASSERT_TRUE(pin.ok());
  auto knearest = pin->KNearest(0, 3);
  ASSERT_FALSE(knearest.ok());
  EXPECT_EQ(knearest.status().code(), StatusCode::kFailedPrecondition);
  // The rest of the vocabulary still answers.
  EXPECT_TRUE(pin->Profile(0).ok());
  EXPECT_TRUE(pin->CommunityOf(0).ok());
}

}  // namespace
}  // namespace bikegraph::query
