#include "data/cleaning.h"

#include "core/civil_time.h"
#include "geo/dublin.h"

#include <gtest/gtest.h>

namespace bikegraph::data {
namespace {

CivilTime At(int h) {
  return CivilTime::FromCalendar(2020, 6, 1, h, 0, 0).ValueOrDie();
}

RentalRecord Rental(int64_t id, int64_t from, int64_t to) {
  RentalRecord r;
  r.id = id;
  r.bike_id = 1;
  r.start_time = At(8);
  r.end_time = At(9);
  r.rental_location_id = from;
  r.return_location_id = to;
  return r;
}

/// A dirty fixture with exactly one violation per cleaning rule.
Dataset DirtyDataset() {
  std::vector<LocationRecord> locs = {
      {1, {53.35, -6.26}, true, "Stn A"},       // good station
      {2, {53.36, -6.25}, true, "Stn B"},       // good station
      {3, {53.34, -6.27}, false, ""},           // good dockless
      {4, geo::OutsideDublinPoint(), false, ""},  // rule 1
      {5, geo::InBayPoint(), false, ""},          // rule 2
      {7, {53.33, -6.28}, false, ""},             // rule 6 (unreferenced)
  };
  LocationRecord missing;  // rule 3
  missing.id = 6;
  locs.push_back(missing);

  std::vector<RentalRecord> rentals = {
      Rental(1, 1, 3),  // good
      Rental(2, 3, 2),  // good
      Rental(3, 1, 4),  // touches outside-Dublin location
      Rental(4, 5, 1),  // touches water location
      Rental(5, 6, 2),  // touches missing-coords location
      Rental(6, kInvalidId, 1),  // rule 4
      Rental(7, 1, 999),         // rule 5 (dangling)
  };
  return Dataset(std::move(locs), std::move(rentals));
}

TEST(CleaningTest, RemovesEachDirtClass) {
  auto result = CleanDataset(DirtyDataset(), geo::DublinLand());
  ASSERT_TRUE(result.ok()) << result.status();
  const CleaningReport& rep = result->report;

  EXPECT_EQ(rep.locations_outside_area, 1u);
  EXPECT_EQ(rep.locations_in_water, 1u);
  EXPECT_EQ(rep.locations_missing_coords, 1u);
  EXPECT_EQ(rep.rentals_at_bad_locations, 3u);
  EXPECT_EQ(rep.rentals_missing_ids, 1u);
  EXPECT_EQ(rep.rentals_dangling_ids, 1u);
  EXPECT_EQ(rep.locations_unreferenced, 1u);

  EXPECT_EQ(rep.before.rental_count, 7u);
  EXPECT_EQ(rep.after.rental_count, 2u);
  EXPECT_EQ(rep.before.location_count, 7u);
  EXPECT_EQ(rep.after.location_count, 3u);
  EXPECT_EQ(rep.TotalRentalsDropped(), 5u);
  EXPECT_EQ(rep.TotalLocationsDropped(), 4u);
}

TEST(CleaningTest, CleanedDatasetValidates) {
  auto result = CleanDataset(DirtyDataset(), geo::DublinLand());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->dataset.Validate().ok());
}

TEST(CleaningTest, CleanInputPassesThrough) {
  std::vector<LocationRecord> locs = {
      {1, {53.35, -6.26}, true, "Stn A"},
      {2, {53.34, -6.27}, false, ""},
  };
  std::vector<RentalRecord> rentals = {Rental(1, 1, 2), Rental(2, 2, 1)};
  Dataset ds(std::move(locs), std::move(rentals));
  auto result = CleanDataset(ds, geo::DublinLand());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.after.rental_count, 2u);
  EXPECT_EQ(result->report.after.location_count, 2u);
  EXPECT_EQ(result->report.TotalRentalsDropped(), 0u);
  EXPECT_EQ(result->report.TotalLocationsDropped(), 0u);
}

TEST(CleaningTest, StationRemovalIsCounted) {
  std::vector<LocationRecord> locs = {
      {1, {53.35, -6.26}, true, "Good Stn"},
      {2, geo::InBayPoint(), true, "Sunken Stn"},
      {3, {53.34, -6.27}, false, ""},
  };
  std::vector<RentalRecord> rentals = {Rental(1, 1, 3)};
  Dataset ds(std::move(locs), std::move(rentals));
  auto result = CleanDataset(ds, geo::DublinLand());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.stations_removed, 1u);
  EXPECT_EQ(result->report.after.station_count, 1u);
}

TEST(CleaningTest, StationsSurviveViaAnyReference) {
  // A station referenced only as a destination must survive rule 6.
  std::vector<LocationRecord> locs = {
      {1, {53.35, -6.26}, true, "Origin Stn"},
      {2, {53.36, -6.25}, true, "Dest Stn"},
  };
  std::vector<RentalRecord> rentals = {Rental(1, 1, 2)};
  Dataset ds(std::move(locs), std::move(rentals));
  auto result = CleanDataset(ds, geo::DublinLand());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.after.station_count, 2u);
}

TEST(CleaningTest, CascadeRemovesRentalsBeforeRule6) {
  // Location 3 is only referenced by a rental that dies with location 4
  // (outside Dublin) — so 3 must fall to rule 6.
  std::vector<LocationRecord> locs = {
      {1, {53.35, -6.26}, true, "Stn"},
      {2, {53.34, -6.27}, false, ""},
      {3, {53.33, -6.28}, false, ""},
      {4, geo::OutsideDublinPoint(), false, ""},
  };
  std::vector<RentalRecord> rentals = {Rental(1, 1, 2), Rental(2, 3, 4)};
  Dataset ds(std::move(locs), std::move(rentals));
  auto result = CleanDataset(ds, geo::DublinLand());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.locations_unreferenced, 1u);
  EXPECT_FALSE(result->dataset.HasLocation(3));
  EXPECT_FALSE(result->dataset.HasLocation(4));
}

TEST(CleaningTest, ReportToStringMentionsEveryRule) {
  auto result = CleanDataset(DirtyDataset(), geo::DublinLand());
  ASSERT_TRUE(result.ok());
  std::string text = result->report.ToString();
  for (const char* needle :
       {"rule 1", "rule 2", "rule 3", "rule 4", "rule 5", "rule 6",
        "stations removed"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace bikegraph::data
