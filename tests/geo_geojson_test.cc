#include "geo/geojson.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace bikegraph::geo {
namespace {

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(GeoJsonWriterTest, EmptyCollection) {
  GeoJsonWriter w;
  EXPECT_EQ(w.feature_count(), 0u);
  std::string out = w.ToString();
  EXPECT_NE(out.find("\"FeatureCollection\""), std::string::npos);
  EXPECT_NE(out.find("\"features\":["), std::string::npos);
}

TEST(GeoJsonWriterTest, PointFeatureLonLatOrder) {
  GeoJsonWriter w;
  w.AddPoint({53.35, -6.26}, {{"name", "test"}});
  std::string out = w.ToString();
  // GeoJSON is [lon, lat].
  EXPECT_NE(out.find("[-6.260000,53.350000]"), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"test\""), std::string::npos);
  EXPECT_EQ(w.feature_count(), 1u);
}

TEST(GeoJsonWriterTest, NumericPropertiesUnquoted) {
  GeoJsonWriter w;
  w.AddPoint({53.0, -6.0}, {{"degree", "42"}, {"ratio", "0.5"}});
  std::string out = w.ToString();
  EXPECT_NE(out.find("\"degree\":42"), std::string::npos);
  EXPECT_NE(out.find("\"ratio\":0.5"), std::string::npos);
}

TEST(GeoJsonWriterTest, LineAndPolygonGeometry) {
  GeoJsonWriter w;
  w.AddLine({53.0, -6.0}, {53.1, -6.1}, {{"trips", "5"}});
  w.AddPolygon(Polygon({{0, 0}, {0, 1}, {1, 1}}), {});
  std::string out = w.ToString();
  EXPECT_NE(out.find("\"LineString\""), std::string::npos);
  EXPECT_NE(out.find("\"Polygon\""), std::string::npos);
  // Polygon ring is closed: first coordinate repeated.
  EXPECT_EQ(w.feature_count(), 2u);
}

TEST(GeoJsonWriterTest, WriteToFileRoundTrip) {
  GeoJsonWriter w;
  w.AddPoint({53.35, -6.26}, {{"k", "v"}});
  std::string path = ::testing::TempDir() + "/geojson_test.json";
  ASSERT_TRUE(w.WriteToFile(path).ok());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), w.ToString());
  std::remove(path.c_str());
}

TEST(GeoJsonWriterTest, WriteToBadPathFails) {
  GeoJsonWriter w;
  EXPECT_FALSE(w.WriteToFile("/nonexistent-dir/x/y.json").ok());
}

}  // namespace
}  // namespace bikegraph::geo
