// Deterministic I/O fault injection: the IoEnv seam and its crash model,
// the WAL writer's transient-retry/backoff policy (injected clock — no
// real sleeps anywhere in this file), ENOSPC self-healing, torn
// checkpoint renames, loud degraded mode, and the gate the archetype
// demands: randomized FaultPlans crossed with kill points must recover
// bit-identical or fail loudly — never silently diverge.

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/civil_time.h"
#include "core/io_env.h"
#include "core/rng.h"
#include "stream/chaos.h"
#include "stream/checkpoint.h"
#include "stream/engine.h"
#include "stream/replay.h"
#include "stream/testing.h"
#include "stream/wal.h"

#include <fcntl.h>

#include <gtest/gtest.h>

namespace bikegraph::stream {
namespace {

namespace fs = std::filesystem;

fs::path FreshDir(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("bg_fault_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadFileContents(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TripEvent MakeEvent(int64_t rental_id, int32_t from, int32_t to,
                    int64_t start_seconds) {
  TripEvent event;
  event.rental_id = rental_id;
  event.from_station = from;
  event.to_station = to;
  event.start_time = CivilTime(start_seconds);
  event.end_time = CivilTime(start_seconds + 600);
  return event;
}

// ---------------------------------------------------------------------
// IoEnv: production passthrough.

TEST(IoEnvTest, DefaultPassthroughRoundTrips) {
  IoEnv* env = IoEnv::Default();
  const fs::path dir = FreshDir("passthrough");
  const std::string a = (dir / "a.bin").string();
  const std::string b = (dir / "b.bin").string();

  const int fd = env->Open(a.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  const std::string payload = "hello, durable world";
  size_t off = 0;
  while (off < payload.size()) {
    const int64_t n =
        env->Write(fd, payload.data() + off, payload.size() - off);
    ASSERT_GT(n, 0);
    off += static_cast<size_t>(n);
  }
  EXPECT_EQ(env->Fsync(fd), 0);
  EXPECT_EQ(env->Truncate(fd, 5), 0);
  EXPECT_EQ(env->Close(fd), 0);

  ASSERT_EQ(env->Rename(a.c_str(), b.c_str()), 0);
  EXPECT_EQ(env->FsyncDir(dir.string().c_str()), 0);
  EXPECT_FALSE(fs::exists(a));
  EXPECT_EQ(ReadFileContents(b), "hello");

  ASSERT_EQ(env->Unlink(b.c_str()), 0);
  EXPECT_FALSE(fs::exists(b));
  // Error convention: -1 with errno set.
  errno = 0;
  EXPECT_EQ(env->Unlink(b.c_str()), -1);
  EXPECT_EQ(errno, ENOENT);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// FaultInjectingIoEnv: deterministic schedules and the crash model.

TEST(FaultEnvTest, InjectsTheSameScheduleEveryRun) {
  const fs::path dir = FreshDir("deterministic");
  FaultPlan plan;
  {
    FaultPlan::Rule rule;
    rule.op = IoOp::kWrite;
    rule.kind = FaultPlan::Kind::kError;
    rule.after = 1;
    rule.count = 2;
    rule.error = EIO;
    plan.rules.push_back(rule);
  }
  const auto run = [&](const std::string& name) {
    FaultInjectingIoEnv env(plan);
    const std::string path = (dir / name).string();
    const int fd = env.Open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    EXPECT_GE(fd, 0);
    std::vector<int64_t> results;
    for (int i = 0; i < 5; ++i) {
      errno = 0;
      results.push_back(env.Write(fd, "x", 1));
      results.push_back(errno);
    }
    env.Close(fd);
    EXPECT_EQ(env.op_count(IoOp::kWrite), 5u);
    EXPECT_EQ(env.faults_injected(), 2u);
    return results;
  };
  const auto first = run("one.bin");
  const auto second = run("two.bin");
  EXPECT_EQ(first, second) << "same plan + same workload must inject "
                              "identical faults";
  // Write call indices 1 and 2 failed with EIO; 0, 3, 4 succeeded.
  ASSERT_EQ(first.size(), 10u);
  EXPECT_EQ(first[0], 1);
  EXPECT_EQ(first[2], -1);
  EXPECT_EQ(first[3], EIO);
  EXPECT_EQ(first[4], -1);
  EXPECT_EQ(first[6], 1);
  EXPECT_EQ(first[8], 1);
  fs::remove_all(dir);
}

TEST(FaultEnvTest, ShortWritesHalveAndEintrStormsSetErrno) {
  const fs::path dir = FreshDir("short_eintr");
  FaultPlan plan;
  {
    FaultPlan::Rule rule;
    rule.op = IoOp::kWrite;
    rule.kind = FaultPlan::Kind::kShortWrite;
    rule.after = 0;
    rule.count = 1;
    plan.rules.push_back(rule);
  }
  {
    FaultPlan::Rule rule;
    rule.op = IoOp::kFsync;
    rule.kind = FaultPlan::Kind::kEintrStorm;
    rule.after = 0;
    rule.count = 2;
    plan.rules.push_back(rule);
  }
  FaultInjectingIoEnv env(plan);
  const std::string path = (dir / "f.bin").string();
  const int fd = env.Open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(env.Write(fd, "12345678", 8), 4) << "short write: half";
  errno = 0;
  EXPECT_EQ(env.Fsync(fd), -1);
  EXPECT_EQ(errno, EINTR);
  errno = 0;
  EXPECT_EQ(env.Fsync(fd), -1);
  EXPECT_EQ(errno, EINTR);
  EXPECT_EQ(env.Fsync(fd), 0) << "storm window over";
  env.Close(fd);
  EXPECT_EQ(env.faults_injected(), 3u);
  fs::remove_all(dir);
}

TEST(FaultEnvTest, DiskBudgetRunsOutAndUnlinkCreditsItBack) {
  const fs::path dir = FreshDir("disk_budget");
  FaultPlan plan;
  plan.disk_capacity_bytes = 10;
  FaultInjectingIoEnv env(plan);
  const std::string a = (dir / "a.bin").string();
  const std::string b = (dir / "b.bin").string();
  const int fda = env.Open(a.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fda, 0);
  // A nearly-full disk takes what fits, then fails.
  EXPECT_EQ(env.Write(fda, "123456", 6), 6);
  EXPECT_EQ(env.Write(fda, "123456", 6), 4);
  errno = 0;
  EXPECT_EQ(env.Write(fda, "12", 2), -1);
  EXPECT_EQ(errno, ENOSPC);
  EXPECT_EQ(env.disk_used_bytes(), 10u);
  env.Close(fda);

  // Deleting the file frees its bytes — the self-heal contract.
  ASSERT_EQ(env.Unlink(a.c_str()), 0);
  EXPECT_EQ(env.disk_used_bytes(), 0u);
  const int fdb = env.Open(b.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fdb, 0);
  EXPECT_EQ(env.Write(fdb, "12345", 5), 5);
  env.Close(fdb);
  fs::remove_all(dir);
}

TEST(FaultEnvTest, SimulateCrashDropsWhatOnlyALyingFsyncCovered) {
  const fs::path dir = FreshDir("sync_lie");
  FaultPlan plan;
  {
    // The second fsync in this environment lies.
    FaultPlan::Rule rule;
    rule.op = IoOp::kFsync;
    rule.kind = FaultPlan::Kind::kSyncLie;
    rule.after = 1;
    rule.count = 1;
    plan.rules.push_back(rule);
  }
  FaultInjectingIoEnv env(plan);
  const std::string honest = (dir / "honest.bin").string();
  const std::string liar = (dir / "liar.bin").string();

  const int fd1 = env.Open(honest.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd1, 0);
  ASSERT_EQ(env.Write(fd1, "safe", 4), 4);
  ASSERT_EQ(env.Fsync(fd1), 0);  // truthful (index 0)
  env.Close(fd1);

  const int fd2 = env.Open(liar.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd2, 0);
  ASSERT_EQ(env.Write(fd2, "gone", 4), 4);
  ASSERT_EQ(env.Fsync(fd2), 0);  // the lie (index 1): reports success
  env.Close(fd2);

  // Commit both directory entries so the files themselves survive.
  ASSERT_EQ(env.FsyncDir(dir.string().c_str()), 0);
  env.SimulateCrash();
  EXPECT_EQ(env.crash_count(), 1u);
  EXPECT_EQ(ReadFileContents(honest), "safe");
  EXPECT_EQ(ReadFileContents(liar), "") << "the lying fsync's bytes must "
                                           "not survive the crash";
  fs::remove_all(dir);
}

TEST(FaultEnvTest, SimulateCrashUndoesUncommittedCreatesAndRenames) {
  const fs::path dir = FreshDir("crash_metadata");
  FaultInjectingIoEnv env(FaultPlan{});
  const std::string committed = (dir / "committed.bin").string();
  const std::string doomed = (dir / "doomed.bin").string();
  const std::string renamed = (dir / "renamed.bin").string();

  const auto create = [&](const std::string& path) {
    const int fd = env.Open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(env.Write(fd, "x", 1), 1);
    ASSERT_EQ(env.Fsync(fd), 0);
    env.Close(fd);
  };
  create(committed);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  ASSERT_EQ(env.FsyncDir(dir.string().c_str()), 0);  // commits `committed`
  create(doomed);  // never committed by a directory fsync
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  // Rename the committed file without re-syncing the directory: the
  // crash must roll the name back.
  ASSERT_EQ(env.Rename(committed.c_str(), renamed.c_str()), 0);
  ASSERT_TRUE(fs::exists(renamed));

  env.SimulateCrash();
  EXPECT_TRUE(fs::exists(committed)) << "uncommitted rename rolled back";
  EXPECT_FALSE(fs::exists(renamed));
  EXPECT_FALSE(fs::exists(doomed)) << "uncommitted create disappears";
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Randomized plans (the chaos dimension's generator).

TEST(FaultPlanTest, RandomPlansAreDeterministicAndShaped) {
  FaultChaosConfig config;
  config.seed = 42;
  config.rules = 6;
  config.max_burst = 3;
  const FaultPlan a = MakeRandomFaultPlan(config);
  const FaultPlan b = MakeRandomFaultPlan(config);
  ASSERT_EQ(a.rules.size(), 6u);
  ASSERT_EQ(b.rules.size(), 6u);
  for (size_t i = 0; i < a.rules.size(); ++i) {
    EXPECT_EQ(a.rules[i].op, b.rules[i].op) << "rule " << i;
    EXPECT_EQ(a.rules[i].kind, b.rules[i].kind) << "rule " << i;
    EXPECT_EQ(a.rules[i].after, b.rules[i].after) << "rule " << i;
    EXPECT_EQ(a.rules[i].count, b.rules[i].count) << "rule " << i;
    EXPECT_EQ(a.rules[i].error, b.rules[i].error) << "rule " << i;
    // Stride-60 windows: rule i fires in [60i, 60i+40+count), and
    // count <= 59, so windows on the same op can never chain.
    EXPECT_GE(a.rules[i].after, i * 60) << "rule " << i;
    EXPECT_LT(a.rules[i].after, i * 60 + 40) << "rule " << i;
    EXPECT_LE(a.rules[i].count, 59u) << "rule " << i;
  }
  EXPECT_EQ(a.disk_capacity_bytes, b.disk_capacity_bytes);
}

TEST(FaultPlanTest, TransientOnlyPlansDrawOnlyAbsorbableFaults) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    FaultChaosConfig config;
    config.seed = seed;
    config.rules = 5;
    config.max_burst = 3;
    config.transient_only = true;
    const FaultPlan plan = MakeRandomFaultPlan(config);
    EXPECT_EQ(plan.disk_capacity_bytes, 0u) << "seed " << seed;
    size_t budget_rules = 0;
    for (const FaultPlan::Rule& rule : plan.rules) {
      EXPECT_LE(rule.count, 3u) << "seed " << seed;
      if (rule.kind == FaultPlan::Kind::kError) {
        ++budget_rules;
        EXPECT_EQ(rule.error, EAGAIN) << "seed " << seed
                                      << ": only EAGAIN consumes budget";
      } else {
        EXPECT_TRUE(rule.kind == FaultPlan::Kind::kEintrStorm ||
                    rule.kind == FaultPlan::Kind::kShortWrite)
            << "seed " << seed;
      }
    }
    EXPECT_LE(budget_rules, 1u)
        << "seed " << seed << ": at most one budget-consuming burst, so "
        << "max_retries >= max_burst rides out every plan";
  }
}

// ---------------------------------------------------------------------
// Satellite 1: ENOSPC self-healing via WAL pruning.

WalRecord AdvanceRecord(int64_t watermark) {
  WalRecord record;
  record.type = WalRecordType::kAdvance;
  record.watermark_seconds = watermark;
  return record;
}

TEST(WalFaultTest, EnospcSelfHealsByPruningCoveredSegments) {
  const fs::path dir = FreshDir("enospc_heal");
  // A checkpoint covering sequence 500 makes every full segment below it
  // prunable. Only the *name* matters to OldestCheckpointSeq.
  {
    std::ofstream marker(dir /
                         ("ckpt-" + std::string(17, '0') + "500.ckpt"));
  }
  FaultPlan plan;
  plan.disk_capacity_bytes = 600;  // ~2 full segments
  FaultInjectingIoEnv env(plan);

  DurabilityConfig config;
  config.enabled = true;
  config.directory = dir.string();
  config.segment_bytes = 256;  // rotate every ~14 records
  config.sync_interval_records = 1;
  config.faults.max_retries = 2;
  config.faults.backoff_initial_ms = 1;
  config.io_env = &env;

  auto writer = WalWriter::Open(config, /*next_seq=*/1);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  for (int i = 0; i < 120; ++i) {
    const Status status = (*writer)->Append(AdvanceRecord(1000 + i));
    ASSERT_TRUE(status.ok())
        << "append " << i << " should have self-healed: "
        << status.ToString();
  }
  EXPECT_GE((*writer)->enospc_prune_count(), 1u)
      << "the 600-byte disk cannot hold 120 records without pruning";
  EXPECT_GE((*writer)->transient_recovered_count(), 1u);
  EXPECT_LE(env.disk_used_bytes(), 600u);
  writer->reset();

  // The surviving tail still reads back cleanly.
  auto read = ReadWal(dir.string(), /*repair_torn_tail=*/false);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->last_seq, 120u);
  EXPECT_GT(read->first_seq, 1u) << "self-heal must have pruned";
  fs::remove_all(dir);
}

TEST(WalFaultTest, EnospcWithNothingToPrunePoisonsLoudly) {
  const fs::path dir = FreshDir("enospc_poison");
  FaultPlan plan;
  plan.disk_capacity_bytes = 64;  // header + ~2 records, no checkpoint
  FaultInjectingIoEnv env(plan);

  DurabilityConfig config;
  config.enabled = true;
  config.directory = dir.string();
  config.sync_interval_records = 1;
  config.faults.max_retries = 1;
  config.faults.backoff_initial_ms = 1;
  config.io_env = &env;

  auto writer = WalWriter::Open(config, /*next_seq=*/1);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  Status failed = Status::OK();
  for (int i = 0; i < 10 && failed.ok(); ++i) {
    failed = (*writer)->Append(AdvanceRecord(1000 + i));
  }
  ASSERT_FALSE(failed.ok()) << "64 bytes cannot absorb 10 records";
  EXPECT_EQ(failed.code(), StatusCode::kIOError);
  // The self-heal ran (and freed nothing), the budgeted retry ran (and
  // slept on the virtual clock), and then the writer poisoned.
  EXPECT_GE((*writer)->enospc_prune_count(), 1u);
  EXPECT_EQ((*writer)->retry_count(), 1u);
  EXPECT_EQ(env.sleep_log().size(), 1u);
  const Status again = (*writer)->Append(AdvanceRecord(0));
  EXPECT_EQ(again.code(), StatusCode::kIOError) << "poisoned for good";
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Satellite 2: torn checkpoint renames.

StreamEngineConfig SmallEngineConfig(const fs::path& dir, IoEnv* env) {
  StreamEngineConfig config;
  config.station_count = 8;
  config.window_seconds = 86400;
  config.max_lateness_seconds = 1800;
  config.suppress_duplicate_rentals = true;
  config.detection.options.seed = 7;
  config.durability.enabled = true;
  config.durability.directory = dir.string();
  config.durability.sync_interval_records = 1;
  config.durability.io_env = env;
  return config;
}

size_t CountByExtension(const fs::path& dir, const std::string& extension) {
  size_t count = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == extension) ++count;
  }
  return count;
}

TEST(CheckpointFaultTest, FailedRenameLeavesPreviousCheckpointIntact) {
  const fs::path dir = FreshDir("torn_rename_soft");
  FaultInjectingIoEnv env(FaultPlan{});
  {
    StreamEngine engine(SmallEngineConfig(dir, &env));
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          engine.Ingest(MakeEvent(i + 1, i % 8, (i + 3) % 8,
                                  1'600'000'000 + i * 60))
              .ok());
    }
    ASSERT_TRUE(engine.Checkpoint().ok());  // checkpoint A
    EXPECT_EQ(CountByExtension(dir, ".ckpt"), 1u);

    // The very next rename fails: checkpoint B's commit is torn before
    // the atomic step, so its temp is cleaned up and A stays newest.
    FaultPlan::Rule rule;
    rule.op = IoOp::kRename;
    rule.kind = FaultPlan::Kind::kError;
    rule.after = env.op_count(IoOp::kRename);
    rule.count = 1;
    rule.error = EACCES;
    env.AddRule(rule);

    ASSERT_TRUE(
        engine.Ingest(MakeEvent(11, 0, 1, 1'600'001'000)).ok());
    const Status failed = engine.Checkpoint();
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.code(), StatusCode::kIOError);
    EXPECT_EQ(CountByExtension(dir, ".ckpt"), 1u) << "A still newest";
    EXPECT_EQ(CountByExtension(dir, ".tmp"), 0u) << "temp cleaned up";

    // A failed checkpoint commit is not a poison: the engine keeps
    // ingesting and the next attempt succeeds.
    ASSERT_TRUE(
        engine.Ingest(MakeEvent(12, 1, 2, 1'600'001'060)).ok());
    ASSERT_TRUE(engine.Checkpoint().ok());
    EXPECT_EQ(CountByExtension(dir, ".ckpt"), 2u);
  }
  fs::remove_all(dir);
}

TEST(CheckpointFaultTest, CrashBetweenRenameAndDirSyncFallsBackToPrevious) {
  const fs::path dir = FreshDir("torn_rename_crash");
  FaultInjectingIoEnv env(FaultPlan{});
  StreamEngineConfig config = SmallEngineConfig(dir, &env);
  std::vector<TripEvent> events;
  for (int i = 0; i < 20; ++i) {
    events.push_back(
        MakeEvent(i + 1, i % 8, (i + 3) % 8, 1'600'000'000 + i * 60));
  }
  uint64_t ckpt_a_seq = 0;
  {
    StreamEngine engine(config);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(engine.Ingest(events[static_cast<size_t>(i)]).ok());
    }
    ASSERT_TRUE(engine.Checkpoint().ok());  // checkpoint A, seq 10
    ckpt_a_seq = engine.wal_seq();

    // The directory fsync after checkpoint B's rename fails: B is
    // renamed into place but the directory entry is never committed.
    FaultPlan::Rule rule;
    rule.op = IoOp::kFsyncDir;
    rule.kind = FaultPlan::Kind::kError;
    rule.after = env.op_count(IoOp::kFsyncDir);
    rule.count = 1;
    rule.error = EIO;
    env.AddRule(rule);

    for (int i = 10; i < 20; ++i) {
      ASSERT_TRUE(engine.Ingest(events[static_cast<size_t>(i)]).ok());
    }
    const Status failed = engine.Checkpoint();
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.code(), StatusCode::kIOError);
  }
  // The crash undoes the uncommitted rename (and with it the temp file
  // that never survived either): only checkpoint A remains.
  env.SimulateCrash();
  EXPECT_EQ(CountByExtension(dir, ".ckpt"), 1u);
  EXPECT_EQ(CountByExtension(dir, ".tmp"), 0u);

  auto loaded = LoadNewestCheckpoint(dir.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->found);
  EXPECT_EQ(loaded->checkpoint.wal_seq, ckpt_a_seq);

  // Recovery replays the synced WAL past A and reaches the full run.
  StreamEngineConfig recover_config = config;
  recover_config.durability.io_env = nullptr;
  StreamEngine::RecoveryStats stats;
  auto recovered = StreamEngine::Recover(recover_config, &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(stats.used_checkpoint);
  EXPECT_EQ(stats.checkpoint_seq, ckpt_a_seq);
  EXPECT_EQ(stats.recovered_seq, 20u)
      << "every record was truthfully synced before the crash";
  fs::remove_all(dir);
}

TEST(CheckpointFaultTest, StrayTempFilesAreSweptOnLoad) {
  const fs::path dir = FreshDir("tmp_sweep");
  const fs::path stray =
      dir / ("ckpt-" + std::string(17, '0') + "042.ckpt.tmp");
  {
    std::ofstream out(stray, std::ios::binary);
    out << "half-written checkpoint";
  }
  ASSERT_TRUE(fs::exists(stray));
  auto loaded = LoadNewestCheckpoint(dir.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->found);
  EXPECT_FALSE(fs::exists(stray)) << "LoadNewestCheckpoint sweeps temps";
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Satellite 3: retry/backoff determinism on the injected clock, at one
// and at two shards (the WAL is written on the ingestion thread before
// dispatch, so shard count must not change a single counter).

struct RetryRunResult {
  std::vector<int64_t> sleeps;
  uint64_t retries = 0;
  uint64_t recovered = 0;
  uint64_t wal_seq = 0;
};

RetryRunResult RunBackoffSchedule(size_t shard_count,
                                  const std::string& tag) {
  const fs::path dir = FreshDir(tag);
  FaultPlan plan;
  {
    // Write call indices 2 and 3 (the second record's frame, twice) fail
    // with EAGAIN; index 4 succeeds.
    FaultPlan::Rule rule;
    rule.op = IoOp::kWrite;
    rule.kind = FaultPlan::Kind::kError;
    rule.after = 2;
    rule.count = 2;
    rule.error = EAGAIN;
    plan.rules.push_back(rule);
  }
  FaultInjectingIoEnv env(plan);
  StreamEngineConfig config = SmallEngineConfig(dir, &env);
  config.shard_count = shard_count;
  config.durability.faults.max_retries = 4;
  config.durability.faults.backoff_initial_ms = 1;
  config.durability.faults.backoff_max_ms = 64;

  RetryRunResult result;
  {
    StreamEngine engine(config);
    for (int i = 0; i < 4; ++i) {
      const Status status = engine.Ingest(
          MakeEvent(i + 1, i % 8, (i + 3) % 8, 1'600'000'000 + i * 60));
      EXPECT_TRUE(status.ok()) << status.ToString();
    }
    result.retries = engine.wal_retry_count();
    result.recovered = engine.wal_transient_recovered_count();
    result.wal_seq = engine.wal_seq();
  }
  result.sleeps = env.sleep_log();
  fs::remove_all(dir);
  return result;
}

TEST(RetryBackoffTest, ExactScheduleAndCountersAtAnyShardCount) {
  const RetryRunResult one = RunBackoffSchedule(1, "backoff_n1");
  const RetryRunResult two = RunBackoffSchedule(2, "backoff_n2");

  // The exact deterministic schedule: two budgeted retries, backoff
  // doubling from 1 ms, one call that failed transiently then succeeded.
  const std::vector<int64_t> want_sleeps = {1, 2};
  EXPECT_EQ(one.sleeps, want_sleeps);
  EXPECT_EQ(one.retries, 2u);
  EXPECT_EQ(one.recovered, 1u);
  EXPECT_EQ(one.wal_seq, 4u);

  // Sharding must not move a single number.
  EXPECT_EQ(two.sleeps, one.sleeps);
  EXPECT_EQ(two.retries, one.retries);
  EXPECT_EQ(two.recovered, one.recovered);
  EXPECT_EQ(two.wal_seq, one.wal_seq);
}

TEST(RetryBackoffTest, EintrStormsAreFreeEvenWithZeroBudget) {
  const fs::path dir = FreshDir("eintr_free");
  FaultPlan plan;
  {
    FaultPlan::Rule rule;
    rule.op = IoOp::kFsync;
    rule.kind = FaultPlan::Kind::kEintrStorm;
    rule.after = 1;
    rule.count = 3;
    plan.rules.push_back(rule);
  }
  FaultInjectingIoEnv env(plan);
  // Default FaultPolicy: max_retries = 0. EINTR must still be absorbed.
  StreamEngineConfig config = SmallEngineConfig(dir, &env);
  {
    StreamEngine engine(config);
    for (int i = 0; i < 3; ++i) {
      const Status status = engine.Ingest(
          MakeEvent(i + 1, i % 8, (i + 3) % 8, 1'600'000'000 + i * 60));
      EXPECT_TRUE(status.ok()) << status.ToString();
    }
    EXPECT_EQ(engine.wal_retry_count(), 0u) << "EINTR is never budgeted";
    EXPECT_EQ(engine.wal_transient_recovered_count(), 1u);
  }
  EXPECT_TRUE(env.sleep_log().empty()) << "EINTR retries never back off";
  EXPECT_EQ(env.faults_injected(), 3u);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Degraded mode: loudly non-durable, never silently recovered.

TEST(DegradeTest, ExhaustedBudgetDegradesLoudlyAndKeepsIngesting) {
  const fs::path dir = FreshDir("degrade");
  FaultPlan plan;
  {
    // Write indices 2..4 fail with EAGAIN: with max_retries = 2 the
    // second record exhausts its budget and the engine degrades. The
    // marker write (index 5) is past the window and succeeds.
    FaultPlan::Rule rule;
    rule.op = IoOp::kWrite;
    rule.kind = FaultPlan::Kind::kError;
    rule.after = 2;
    rule.count = 3;
    rule.error = EAGAIN;
    plan.rules.push_back(rule);
  }
  FaultInjectingIoEnv env(plan);
  StreamEngineConfig config = SmallEngineConfig(dir, &env);
  config.durability.faults.max_retries = 2;
  config.durability.faults.backoff_initial_ms = 1;
  config.durability.faults.degrade_on_exhausted = true;

  {
    StreamEngine engine(config);
    for (int i = 0; i < 6; ++i) {
      const Status status = engine.Ingest(
          MakeEvent(i + 1, i % 8, (i + 3) % 8, 1'600'000'000 + i * 60));
      EXPECT_TRUE(status.ok())
          << "a degrading engine keeps serving: " << status.ToString();
    }
    EXPECT_TRUE(engine.degraded());
    EXPECT_FALSE(engine.degrade_reason().ok());
    EXPECT_EQ(engine.wal_seq(), 1u) << "only the first record was logged";
    // A degraded engine still processes: advance the watermark past every
    // event and all six land in the window graph.
    ASSERT_TRUE(engine.Advance(CivilTime(1'600'100'000)).ok());
    EXPECT_EQ(engine.ingested_count(), 6u);
    // Counters are conserved across the degrade (the writer is gone but
    // its tallies were stashed).
    EXPECT_EQ(engine.wal_retry_count(), 2u);
    EXPECT_EQ(engine.wal_transient_recovered_count(), 0u);
    const std::vector<int64_t> want_sleeps = {1, 2};
    EXPECT_EQ(env.sleep_log(), want_sleeps);
    EXPECT_TRUE(HasDegradedMarker(dir.string()));
    // Checkpointing a non-durable engine would freeze a lie.
    EXPECT_EQ(engine.Checkpoint().code(), StatusCode::kFailedPrecondition);
  }

  // Recovery refuses the directory: the log is not the whole run.
  StreamEngineConfig recover_config = config;
  recover_config.durability.io_env = nullptr;
  auto refused = StreamEngine::Recover(recover_config);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(refused.status().message().find(kDegradedMarkerName),
            std::string::npos)
      << "the refusal must name the marker: "
      << refused.status().ToString();

  // Deleting the marker is the operator's explicit acceptance of the
  // loss; recovery then serves the logged prefix.
  fs::remove(dir / kDegradedMarkerName);
  StreamEngine::RecoveryStats stats;
  auto recovered = StreamEngine::Recover(recover_config, &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(stats.recovered_seq, 1u);
  EXPECT_FALSE((*recovered)->degraded())
      << "removing the marker restores a fully durable engine";
  ASSERT_TRUE((*recovered)->Advance(CivilTime(1'600'100'000)).ok());
  EXPECT_EQ((*recovered)->ingested_count(), 1u);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// The gate: randomized FaultPlans × kill points. Invariant: recovery is
// bit-identical to the uninterrupted run, or loudly failed — a silent
// divergence is the one forbidden outcome.

struct Op {
  enum Kind : uint8_t { kIngest, kAdvance, kSnapshot, kDetect, kFlush };
  Kind kind = kIngest;
  TripEvent event{};
  int64_t watermark = 0;
};

/// Mirrors stream_durability_test.cc's script: every op appends exactly
/// one WAL record, so `ops[i]` ↔ WAL sequence `i + 1` and recovery's
/// `recovered_seq` is a resume index.
std::vector<Op> BuildOpScript(int64_t lateness, uint64_t seed) {
  auto jittered = JitterArrivalOrder(
      testing::PlantedStream(16, 3, /*days=*/2, /*trips_per_day=*/200, seed),
      /*shuffle_seconds=*/lateness, seed);
  std::vector<Op> ops;
  ops.reserve(jittered.events.size() + jittered.events.size() / 40 + 8);
  int64_t last_advance = INT64_MIN;
  for (size_t i = 0; i < jittered.events.size(); ++i) {
    Op op;
    op.kind = Op::kIngest;
    op.event = jittered.events[i];
    ops.push_back(op);
    if ((i + 1) % 60 == 0) {
      last_advance = std::max(last_advance + 1, jittered.report_seconds[i]);
      ops.push_back({Op::kAdvance, {}, last_advance});
      if ((i + 1) % 120 == 0) ops.push_back({Op::kSnapshot, {}, 0});
      if ((i + 1) % 240 == 0) ops.push_back({Op::kDetect, {}, 0});
    }
  }
  last_advance = std::max(last_advance + 1,
                          jittered.report_seconds.back() + lateness + 1);
  ops.push_back({Op::kAdvance, {}, last_advance});
  ops.push_back({Op::kFlush, {}, 0});
  ops.push_back({Op::kDetect, {}, 0});
  return ops;
}

/// Non-asserting ApplyOp: under fault injection any op may fail, and the
/// gate's job is to stop there and prove recovery, not to abort.
Status TryApplyOp(StreamEngine& engine, const Op& op) {
  switch (op.kind) {
    case Op::kIngest:
      return engine.Ingest(op.event);
    case Op::kAdvance:
      return engine.Advance(CivilTime(op.watermark));
    case Op::kSnapshot:
      return engine.Snapshot().status();
    case Op::kDetect:
      return engine.DetectCurrent().status();
    case Op::kFlush:
      return engine.Flush();
  }
  return Status::OK();
}

/// The bit-lock comparator from the durability suite: everything in the
/// checkpoint except the WAL position and freeze-path counters.
std::string ComparableState(const StreamEngine& engine) {
  EngineCheckpoint c = engine.CaptureState();
  c.wal_seq = 0;
  c.delta_freeze_count = 0;
  c.full_freeze_count = 0;
  return SerializeCheckpoint(c);
}

void RunFaultScheduleGate(bool transient_only, uint64_t seed_base,
                          const std::string& tag) {
  const int64_t lateness = 900;
  const std::vector<Op> ops = BuildOpScript(lateness, 5);

  StreamEngineConfig base;
  base.station_count = 16;
  base.window_seconds = 86400;
  base.max_lateness_seconds = lateness;
  base.suppress_duplicate_rentals = true;
  base.detection.options.seed = 7;

  // The uninterrupted reference run, no durability.
  StreamEngine reference(base);
  for (const Op& op : ops) {
    const Status status = TryApplyOp(reference, op);
    ASSERT_TRUE(status.ok()) << status.ToString();
  }

  Rng rng(seed_base * 1000003 + 29);
  size_t loud_failures = 0;
  const uint64_t trials = 5;
  for (uint64_t trial = 0; trial < trials; ++trial) {
    SCOPED_TRACE(tag + " trial " + std::to_string(trial));
    const fs::path dir = FreshDir(tag + "_" + std::to_string(trial));

    FaultChaosConfig fault_config;
    fault_config.seed = seed_base + trial;
    fault_config.rules = 4;
    fault_config.max_burst = 3;
    fault_config.transient_only = transient_only;
    FaultInjectingIoEnv env(MakeRandomFaultPlan(fault_config));

    StreamEngineConfig durable = base;
    durable.durability.enabled = true;
    durable.durability.directory = dir.string();
    durable.durability.segment_bytes = 1 << 12;  // force rotations
    durable.durability.sync_interval_records = 16;
    durable.durability.io_env = &env;
    durable.durability.faults.max_retries = 4;  // >= max_burst
    durable.durability.faults.backoff_initial_ms = 1;

    const auto kill = static_cast<size_t>(rng.NextBounded(ops.size() + 1));
    const size_t checkpoint_every =
        120 + static_cast<size_t>(rng.NextBounded(120));
    size_t applied = 0;
    bool op_failed = false;
    {
      StreamEngine engine(durable);
      for (size_t i = 0; i < kill; ++i) {
        const Status status = TryApplyOp(engine, ops[i]);
        if (!status.ok()) {
          op_failed = true;
          ASSERT_FALSE(transient_only)
              << "a transient-only schedule with max_retries >= max_burst "
              << "must never surface a failure, got: " << status.ToString();
          break;
        }
        applied = i + 1;
        ASSERT_EQ(engine.wal_seq(), applied) << "op/seq mapping drifted";
        if (applied % checkpoint_every == 0) {
          // A failed checkpoint commit is loud to its caller but leaves
          // the previous checkpoint intact; the run continues.
          const Status ckpt = engine.Checkpoint();
          if (!ckpt.ok() && transient_only) {
            // Transient faults can still fail one commit attempt (the
            // checkpoint path retries only EINTR); the engine itself
            // must stay healthy, which the remaining ops prove.
            continue;
          }
        }
      }
      if (transient_only) {
        EXPECT_FALSE(engine.degraded());
        EXPECT_EQ(engine.wal_retry_count(),
                  static_cast<uint64_t>(env.sleep_log().size()))
            << "every budgeted retry slept exactly once on the virtual "
            << "clock — counters must be conserved";
      }
    }  // engine destroyed: best-effort flush, then the power cut

    env.SimulateCrash();

    StreamEngineConfig recover_config = durable;
    recover_config.durability.io_env = nullptr;  // clean environment
    StreamEngine::RecoveryStats stats;
    auto recovered = StreamEngine::Recover(recover_config, &stats);
    if (!recovered.ok()) {
      // Loud failure is an accepted outcome — but only for hostile
      // schedules, and it must be an error status, never a wrong engine.
      ASSERT_FALSE(transient_only)
          << "transient faults must never sink recovery: "
          << recovered.status().ToString();
      ++loud_failures;
      continue;
    }
    ASSERT_LE(stats.recovered_seq, applied);
    EXPECT_EQ((*recovered)->wal_seq(), stats.recovered_seq);

    // Resume exactly where the surviving log ends and finish the script
    // fault-free: the result must be bit-identical to the reference.
    for (size_t i = stats.recovered_seq; i < ops.size(); ++i) {
      const Status status = TryApplyOp(**recovered, ops[i]);
      ASSERT_TRUE(status.ok()) << "resume op " << i << ": "
                               << status.ToString();
    }
    EXPECT_EQ(ComparableState(**recovered), ComparableState(reference))
        << "silent divergence: recovery succeeded but the state is wrong";
    (void)op_failed;
    fs::remove_all(dir);
  }
  if (transient_only) {
    EXPECT_EQ(loud_failures, 0u);
  }
}

TEST(FaultScheduleGateTest, HostileSchedulesRecoverBitIdenticalOrLoud) {
  RunFaultScheduleGate(/*transient_only=*/false, /*seed_base=*/100,
                       "gate_hostile");
}

TEST(FaultScheduleGateTest, TransientSchedulesCompleteWithoutPoisoning) {
  RunFaultScheduleGate(/*transient_only=*/true, /*seed_base=*/200,
                       "gate_transient");
}

}  // namespace
}  // namespace bikegraph::stream
