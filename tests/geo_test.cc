#include <algorithm>
#include <cmath>

#include "geo/bbox.h"
#include "geo/dublin.h"
#include "geo/haversine.h"
#include "geo/latlon.h"
#include "geo/polygon.h"

#include <gtest/gtest.h>

namespace bikegraph::geo {
namespace {

constexpr double kDublinLat = 53.35;

TEST(LatLonTest, ValidityChecks) {
  EXPECT_TRUE(LatLon(53.35, -6.26).IsValid());
  EXPECT_TRUE(LatLon(-90.0, 180.0).IsValid());
  EXPECT_FALSE(LatLon(91.0, 0.0).IsValid());
  EXPECT_FALSE(LatLon(0.0, -181.0).IsValid());
  EXPECT_FALSE(LatLon(std::nan(""), 0.0).IsValid());
  EXPECT_FALSE(LatLon(0.0, std::nan("")).IsValid());
}

TEST(HaversineTest, ZeroDistanceForIdenticalPoints) {
  LatLon p(53.3498, -6.2603);
  EXPECT_DOUBLE_EQ(HaversineMeters(p, p), 0.0);
}

TEST(HaversineTest, SymmetricAndPositive) {
  LatLon a(53.35, -6.26), b(53.30, -6.13);
  EXPECT_GT(HaversineMeters(a, b), 0.0);
  EXPECT_DOUBLE_EQ(HaversineMeters(a, b), HaversineMeters(b, a));
}

TEST(HaversineTest, KnownDistanceDublinToCork) {
  // Dublin (53.3498, -6.2603) to Cork (51.8985, -8.4756): ~220 km.
  double d = HaversineMeters({53.3498, -6.2603}, {51.8985, -8.4756});
  EXPECT_NEAR(d, 220000.0, 5000.0);
}

TEST(HaversineTest, OneDegreeLatitudeIsAbout111Km) {
  double d = HaversineMeters({53.0, -6.0}, {54.0, -6.0});
  EXPECT_NEAR(d, 111195.0, 200.0);
}

TEST(HaversineTest, AccurateAtSmallDistances) {
  // 50 m offset north.
  LatLon a(kDublinLat, -6.26);
  LatLon b = Offset(a, 50.0, 0.0);
  EXPECT_NEAR(HaversineMeters(a, b), 50.0, 0.01);
}

TEST(HaversineTest, EquirectangularCloseAtCityScale) {
  LatLon a(53.35, -6.26);
  for (double bearing : {0.0, 45.0, 90.0, 135.0, 180.0, 270.0}) {
    for (double dist : {50.0, 500.0, 5000.0}) {
      LatLon b = Offset(a, dist, bearing);
      double h = HaversineMeters(a, b);
      double e = EquirectangularMeters(a, b);
      EXPECT_NEAR(e / h, 1.0, 0.001) << "bearing=" << bearing
                                     << " dist=" << dist;
    }
  }
}

TEST(HaversineTest, TriangleInequalityHolds) {
  LatLon a(53.30, -6.30), b(53.35, -6.20), c(53.40, -6.25);
  EXPECT_LE(HaversineMeters(a, c),
            HaversineMeters(a, b) + HaversineMeters(b, c) + 1e-9);
}

TEST(OffsetTest, RoundTripBearingAndDistance) {
  LatLon origin(53.35, -6.26);
  for (double bearing : {0.0, 90.0, 180.0, 270.0, 33.0}) {
    LatLon moved = Offset(origin, 1000.0, bearing);
    EXPECT_NEAR(HaversineMeters(origin, moved), 1000.0, 0.5);
    double diff =
        std::fmod(BearingDegrees(origin, moved) - bearing + 360.0, 360.0);
    diff = std::min(diff, 360.0 - diff);  // circular distance
    EXPECT_NEAR(diff, 0.0, 0.5) << "bearing=" << bearing;
  }
}

TEST(ConversionTest, MetersToDegrees) {
  // One degree of latitude is ~111.2 km everywhere.
  EXPECT_NEAR(MetersToLatDegrees(111195.0), 1.0, 0.001);
  // Longitude degrees shrink with latitude.
  EXPECT_GT(MetersToLonDegrees(1000.0, 53.0), MetersToLonDegrees(1000.0, 0.0));
}

TEST(BBoxTest, EmptyBoxBehaviour) {
  BBox box;
  EXPECT_TRUE(box.IsEmpty());
  EXPECT_FALSE(box.Contains({53.35, -6.26}));
}

TEST(BBoxTest, ExtendAndContain) {
  BBox box;
  box.Extend({53.30, -6.30});
  box.Extend({53.40, -6.20});
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_TRUE(box.Contains({53.35, -6.25}));
  EXPECT_TRUE(box.Contains({53.30, -6.30}));  // boundary
  EXPECT_FALSE(box.Contains({53.29, -6.25}));
  EXPECT_FALSE(box.Contains({53.35, -6.31}));
}

TEST(BBoxTest, AroundPoints) {
  BBox box = BBox::Around({{53.1, -6.5}, {53.2, -6.1}, {53.5, -6.3}});
  // lint: float-eq-ok: Around() copies the input literal through
  // min/max untouched — exact propagation, no arithmetic.
  EXPECT_EQ(box.min_corner().lat, 53.1);
  // lint: float-eq-ok: same literal pass-through as above.
  EXPECT_EQ(box.max_corner().lon, -6.1);
}

TEST(BBoxTest, ExpandedByMeters) {
  BBox box({53.30, -6.30}, {53.40, -6.20});
  BBox big = box.ExpandedBy(1000.0);
  EXPECT_TRUE(big.Contains({53.2995, -6.30}));   // ~55 m south of edge
  EXPECT_FALSE(box.Contains({53.2995, -6.30}));
  EXPECT_NEAR(big.HeightMeters() - box.HeightMeters(), 2000.0, 10.0);
}

TEST(BBoxTest, DimensionsRoughlyMatchHaversine) {
  BBox box({53.30, -6.30}, {53.40, -6.20});
  EXPECT_NEAR(box.HeightMeters(), 11120.0, 100.0);
  EXPECT_GT(box.WidthMeters(), 6000.0);
  EXPECT_LT(box.WidthMeters(), 7000.0);
}

TEST(PolygonTest, SquareContains) {
  Polygon square({{0.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}, {1.0, 0.0}});
  EXPECT_TRUE(square.Contains({0.5, 0.5}));
  EXPECT_FALSE(square.Contains({1.5, 0.5}));
  EXPECT_FALSE(square.Contains({-0.1, 0.5}));
}

TEST(PolygonTest, ClosedRingInputIsNormalised) {
  Polygon square({{0, 0}, {0, 1}, {1, 1}, {1, 0}, {0, 0}});
  EXPECT_EQ(square.size(), 4u);
  EXPECT_TRUE(square.Contains({0.5, 0.5}));
}

TEST(PolygonTest, DegenerateRingIsEmpty) {
  Polygon line({{0, 0}, {1, 1}});
  EXPECT_TRUE(line.empty());
  EXPECT_FALSE(line.Contains({0.5, 0.5}));
}

TEST(PolygonTest, ConcavePolygon) {
  // A "C" shape: the notch must not be inside.
  Polygon c({{0, 0}, {0, 3}, {3, 3}, {3, 2}, {1, 2}, {1, 1}, {3, 1}, {3, 0}});
  EXPECT_TRUE(c.Contains({0.5, 1.5}));   // spine of the C
  EXPECT_FALSE(c.Contains({2.0, 1.5}));  // inside the notch
  EXPECT_TRUE(c.Contains({2.0, 2.5}));   // top arm
}

TEST(PolygonTest, SignedAreaSign) {
  // Reversed orientation flips the sign; magnitude is preserved.
  Polygon ccw({{0, 0}, {1, 1}, {0, 2}});  // (lat, lon) vertices
  Polygon cw({{0, 0}, {0, 2}, {1, 1}});
  EXPECT_LT(ccw.SignedAreaDeg2() * cw.SignedAreaDeg2(), 0.0);
  EXPECT_DOUBLE_EQ(std::abs(ccw.SignedAreaDeg2()),
                   std::abs(cw.SignedAreaDeg2()));
}

TEST(RegionTest, HolesAreExcluded) {
  Polygon outer({{0, 0}, {0, 10}, {10, 10}, {10, 0}});
  Polygon hole({{4, 4}, {4, 6}, {6, 6}, {6, 4}});
  Region region(outer, {hole});
  EXPECT_TRUE(region.Contains({2, 2}));
  EXPECT_FALSE(region.Contains({5, 5}));
  EXPECT_FALSE(region.Contains({11, 5}));
}

TEST(DublinTest, LandModelIsTopologicallySane) {
  Region land = DublinLand();
  // City centre is on land.
  EXPECT_TRUE(land.Contains({53.3498, -6.2603}));
  // The bay is not.
  EXPECT_FALSE(land.Contains(InBayPoint()));
  // Wicklow is outside the boundary.
  EXPECT_FALSE(land.Contains(OutsideDublinPoint()));
  // Mid-river point is in the Liffey hole.
  EXPECT_FALSE(land.Contains({53.3469, -6.2500}));
}

TEST(DublinTest, AllHotspotsOnLand) {
  Region land = DublinLand();
  for (const auto& h : DublinHotspots()) {
    EXPECT_TRUE(land.Contains(h.center)) << h.name;
    EXPECT_GT(h.weight, 0.0) << h.name;
    EXPECT_GT(h.spread_m, 0.0) << h.name;
  }
}

TEST(DublinTest, HotspotKindsCoverAllThree) {
  bool commute = false, leisure = false, mixed = false;
  for (const auto& h : DublinHotspots()) {
    switch (h.kind) {
      case Hotspot::Kind::kCommute:
        commute = true;
        break;
      case Hotspot::Kind::kLeisure:
        leisure = true;
        break;
      case Hotspot::Kind::kMixed:
        mixed = true;
        break;
    }
  }
  EXPECT_TRUE(commute);
  EXPECT_TRUE(leisure);
  EXPECT_TRUE(mixed);
}

}  // namespace
}  // namespace bikegraph::geo
