// Golden-bad: naked concurrency outside the designated threaded surface.
// A background thread mutating shared state from a random helper file is
// exactly what the naked-concurrency check keeps out of the tree — the
// TSan gate only races the surfaces the concurrent suites exercise, so a
// thread hidden here would never meet the sanitizer. The same content is
// also planted under src/query/ by the selftest, where it must be
// accepted (the serving layer owns threading).

#include <thread>
#include <vector>

namespace bikegraph {

void TouchAllInBackground(std::vector<int>* out) {
  std::thread worker([out] { out->push_back(1); });
  worker.join();
}

}  // namespace bikegraph
