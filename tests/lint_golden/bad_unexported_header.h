#pragma once

// Golden-bad: a public header under src/ that the scratch umbrella header
// does not #include and that is not registered in INTERNAL_HEADERS.
// The umbrella-export check must flag it.

namespace bikegraph {
int OrphanedApi();
}  // namespace bikegraph
