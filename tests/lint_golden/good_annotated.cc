// Golden-good: the same risky shapes as the bad_* snippets, but every
// site carries the justification annotation the checks require. The
// selftest asserts this file produces ZERO violations — i.e. the escape
// hatches keep working, so real annotated sites in the tree don't start
// failing the gate.

#include <algorithm>
#include <cstdint>
// lint: thread-ok: golden-good exemplar of the file-level escape — a
// threaded test racing readers against a writer is the intended user.
#include <thread>
#include <unordered_map>
#include <vector>

namespace bikegraph {

int RunOnWorkerThread() {
  int result = 0;
  std::thread worker([&result] { result = 1; });
  worker.join();
  return result;
}

std::vector<int32_t> SortedKeys(
    const std::unordered_map<int32_t, double>& score_by_comm) {
  std::vector<int32_t> keys;
  keys.reserve(score_by_comm.size());
  // lint: unordered-iter-ok: keys are sorted immediately below, so map
  // order cannot reach the output.
  for (const auto& [comm, score] : score_by_comm) {
    keys.push_back(comm);
    (void)score;
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

bool IsUntouchedWeight(double w) {
  // lint: float-eq-ok: 0.0 is an exact sentinel assigned, never computed.
  return w == 0.0;
}

}  // namespace bikegraph
