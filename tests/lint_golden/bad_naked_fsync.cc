// Golden-bad: raw fsync + rename outside src/core/io_env.cc.
// Crash consistency is a protocol, not a sprinkle: a lone fsync with no
// directory sync, or a rename with no tmp-file discipline, gives none of
// the guarantees docs/DURABILITY.md promises — and a syscall issued
// outside the IoEnv seam is invisible to fault injection and unprotected
// by the retry policy. The naked-io-syscall check must flag both calls
// here, even when the selftest plants this file at src/stream/wal.cc
// (the durability protocol itself goes through IoEnv now).

#include <cstdio>
#include <unistd.h>

namespace bikegraph {

void CasualDurability(int fd, const char* from, const char* to) {
  fsync(fd);
  rename(from, to);
}

}  // namespace bikegraph
