// Golden-bad: raw fsync + rename outside src/stream/{wal,checkpoint}.cc.
// Crash consistency is a protocol, not a sprinkle: a lone fsync with no
// directory sync, or a rename with no tmp-file discipline, gives none of
// the guarantees docs/DURABILITY.md promises. The naked-fsync-rename
// check must flag both calls here (and accept this same file when it is
// placed at src/stream/wal.cc in the selftest's scratch tree).

#include <cstdio>
#include <unistd.h>

namespace bikegraph {

void CasualDurability(int fd, const char* from, const char* to) {
  fsync(fd);
  rename(from, to);
}

}  // namespace bikegraph
