#ifndef BIKEGRAPH_LINT_GOLDEN_BAD_MISSING_PRAGMA_ONCE_H_
#define BIKEGRAPH_LINT_GOLDEN_BAD_MISSING_PRAGMA_ONCE_H_

// Golden-bad: classic include-guard macros instead of the repo's
// `#pragma once` convention. The pragma-once check must flag it (the
// repo standardizes on the pragma so the self-containment matrix can
// assert double inclusion uniformly).

namespace bikegraph {
int GuardedTheOldWay();
}  // namespace bikegraph

#endif  // BIKEGRAPH_LINT_GOLDEN_BAD_MISSING_PRAGMA_ONCE_H_
