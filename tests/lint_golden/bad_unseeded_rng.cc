// Golden-bad: platform randomness outside src/core/rng. Every stochastic
// choice in the library must flow through the seeded bikegraph::Rng so
// whole runs (and their WAL replays) are bit-replayable; rand() and
// std::random_device are unseedable from a config. The unseeded-rng
// check must flag all three lines (and accept this same file when placed
// at src/core/rng.cc, where wrapping the primitives is the job).

#include <cstdlib>
#include <random>

namespace bikegraph {

int UnreplayableChoice() {
  std::srand(42);
  std::random_device entropy;
  return std::rand() + static_cast<int>(entropy() % 7);
}

}  // namespace bikegraph
