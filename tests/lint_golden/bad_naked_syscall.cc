// Golden-bad: raw ::open / ::write / ::unlink outside src/core/io_env.cc.
// Direct syscalls bypass the IoEnv seam: the fault injector never sees
// them (so no fault schedule can exercise the failure path), the retry
// policy never protects them, and the crash model cannot account for
// what they wrote. The naked-io-syscall check must flag all three calls.
// Qualified wrappers (IoEnv::Open, std::fstream::open) must NOT match —
// only the global-namespace-qualified syscalls do.

#include <fcntl.h>
#include <unistd.h>

namespace bikegraph {

void CasualIo(const char* path, const void* buf, unsigned long len) {
  const int fd = ::open(path, O_WRONLY | O_CREAT, 0644);
  if (fd >= 0) {
    ::write(fd, buf, len);
    close(fd);
  }
  ::unlink(path);
}

}  // namespace bikegraph
