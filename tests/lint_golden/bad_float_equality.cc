// Golden-bad: exact ==/!= against floating-point literals outside the
// locked bit-identity suites and without a `lint: float-eq-ok:`
// justification. The float-equality check must flag both compares.

namespace bikegraph {

bool ConvergedExactly(double modularity_gain, float weight) {
  if (modularity_gain == 0.5) return true;
  return weight != 1.25f;
}

}  // namespace bikegraph
