// Golden-bad: range-for over an unordered_map whose visit order leaks
// straight into "ordered" output — the seed's community tie-break bug
// class. The unordered-iteration check must flag the loop (no
// `lint: unordered-iter-ok:` justification present).

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace bikegraph {

std::vector<int32_t> RankedCommunities(
    const std::unordered_map<int32_t, double>& score_by_comm) {
  std::vector<int32_t> ranked;
  int32_t best = -1;
  double best_score = -1.0;
  for (const auto& [comm, score] : score_by_comm) {
    if (score > best_score) {  // ties resolved by hash-map order: bug
      best_score = score;
      best = comm;
    }
  }
  ranked.push_back(best);
  return ranked;
}

}  // namespace bikegraph
