// Shard-partitioned ingestion: the ShardRouter partition function, the
// SPSC command ring, the merged freeze view, and the engine-level
// headline — an N-shard engine reproduces the single-writer engine's
// snapshots, profiles, and Louvain partitions bit for bit (merge-at-
// freeze), including the routing edge cases: a station first seen
// mid-stream landing on a previously idle shard, cross-shard pairs
// canonicalizing to one owner, and empty shards contributing empty
// (not stale) dirty sets to the delta freeze.
//
// lint: thread-ok: the SPSC ring handoff test needs a real producer and
// consumer thread — that cross-thread delivery is the property under test.

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "community/detector.h"
#include "core/civil_time.h"
#include "stream/engine.h"
#include "stream/replay.h"
#include "stream/shard.h"
#include "stream/snapshot.h"
#include "stream/spsc_ring.h"
#include "stream/testing.h"
#include "stream/window_graph.h"

#include <gtest/gtest.h>

#include "graph_test_util.h"

namespace bikegraph::stream {
namespace {

using bikegraph::ExpectGraphsIdentical;
using testing::PlantedStream;

CivilTime At(int day, int hour, int minute = 0) {
  return CivilTime::FromCalendar(2020, 1, day, hour, minute).ValueOrDie();
}

TripEvent Trip(int32_t from, int32_t to, CivilTime start,
               int64_t rental_id = 1) {
  TripEvent e;
  e.rental_id = rental_id;
  e.from_station = from;
  e.to_station = to;
  e.start_time = start;
  e.end_time = start.AddSeconds(600);
  return e;
}

// ---------------------------------------------------------------------------
// ShardRouter: the partition function must be stable across processes
// (WAL replay re-routes the merged log), orientation-free, and cover
// every shard.
// ---------------------------------------------------------------------------

TEST(ShardRouterTest, MixMatchesTheSplitmix64TestVector) {
  // The first two outputs of the reference splitmix64 stream seeded with
  // 0 — the published test vector. A platform or refactor that changes
  // these re-routes every station and silently breaks WAL recovery.
  EXPECT_EQ(ShardRouter::Mix(0), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(ShardRouter::Mix(0x9E3779B97F4A7C15ull), 0x6E789E6AA1B965F4ull);
}

TEST(ShardRouterTest, RoutingIsDeterministicAndInRange) {
  const ShardRouter a(4);
  const ShardRouter b(4);
  for (int32_t s = 0; s < 512; ++s) {
    const size_t owner = a.OwnerOf(s);
    EXPECT_LT(owner, 4u);
    EXPECT_EQ(owner, b.OwnerOf(s)) << "station " << s;
  }
}

TEST(ShardRouterTest, EveryShardOwnsStations) {
  const ShardRouter router(4);
  std::array<size_t, 4> owned{};
  for (int32_t s = 0; s < 256; ++s) ++owned[router.OwnerOf(s)];
  for (size_t shard = 0; shard < owned.size(); ++shard) {
    EXPECT_GT(owned[shard], 0u) << "shard " << shard;
    // The mix really spreads: no shard hoards the universe.
    EXPECT_LT(owned[shard], 256u) << "shard " << shard;
  }
}

TEST(ShardRouterTest, PairOwnershipIsOrientationFree) {
  const ShardRouter router(3);
  for (int32_t u = 0; u < 24; ++u) {
    for (int32_t v = 0; v < 24; ++v) {
      EXPECT_EQ(router.OwnerOfPair(u, v), router.OwnerOfPair(v, u))
          << u << "," << v;
      EXPECT_EQ(router.OwnerOfPair(u, v), router.OwnerOf(std::min(u, v)))
          << u << "," << v;
    }
  }
}

TEST(ShardRouterTest, ZeroShardCountClampsToOne) {
  const ShardRouter router(0);
  EXPECT_EQ(router.shard_count(), 1u);
  EXPECT_EQ(router.OwnerOf(12345), 0u);
}

// ---------------------------------------------------------------------------
// SpscRing: the bounded command channel between the ingest thread and a
// shard worker.
// ---------------------------------------------------------------------------

TEST(SpscRingTest, CapacityRoundsUpToAPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(0).capacity(), 2u);  // the floor
}

TEST(SpscRingTest, FillDrainAndWraparound) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));  // full: bounded means bounded
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.TryPop(out));
    EXPECT_EQ(out, i);  // FIFO
  }
  EXPECT_FALSE(ring.TryPop(out));  // empty
  // Many laps around the (power-of-two) index space: the monotonic
  // head/tail counters must keep masking correctly.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.TryPush(i));
    ASSERT_TRUE(ring.TryPop(out));
    ASSERT_EQ(out, i);
  }
}

TEST(SpscRingTest, TwoThreadHandoffDeliversEverythingInOrder) {
  // One producer, one consumer, a ring far smaller than the payload:
  // every value must arrive exactly once, in order (run under
  // BIKEGRAPH_SANITIZE=thread this is the data-race lock).
  SpscRing<uint64_t> ring(8);
  constexpr uint64_t kCount = 50000;
  std::thread producer([&ring] {
    for (uint64_t i = 0; i < kCount; ++i) {
      while (!ring.TryPush(i)) std::this_thread::yield();
    }
  });
  uint64_t expected = 0;
  while (expected < kCount) {
    uint64_t value = 0;
    if (!ring.TryPop(value)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(value, expected);
    ++expected;
  }
  producer.join();
  uint64_t leftover = 0;
  EXPECT_FALSE(ring.TryPop(leftover));
}

// ---------------------------------------------------------------------------
// MergeDirtySets: the freeze-time union of per-shard change records.
// ---------------------------------------------------------------------------

TEST(MergeDirtySetsTest, EmptyInputIsIncomplete) {
  const WindowDirtySet merged = MergeDirtySets({});
  EXPECT_FALSE(merged.complete);
}

TEST(MergeDirtySetsTest, DisjointPairsAndSharedStationsMerge) {
  WindowDirtySet a;
  a.complete = true;
  a.pairs = {SlidingWindowGraph::PairKey(0, 1),
             SlidingWindowGraph::PairKey(2, 3)};
  a.stations = {0, 1, 2, 3};
  WindowDirtySet b;
  b.complete = true;
  b.pairs = {SlidingWindowGraph::PairKey(1, 4)};
  b.stations = {1, 4};
  WindowDirtySet empty;  // an idle shard: complete, nothing changed
  empty.complete = true;

  const WindowDirtySet merged = MergeDirtySets({a, b, empty});
  EXPECT_TRUE(merged.complete);
  EXPECT_EQ(merged.pairs,
            (std::vector<uint64_t>{SlidingWindowGraph::PairKey(0, 1),
                                   SlidingWindowGraph::PairKey(1, 4),
                                   SlidingWindowGraph::PairKey(2, 3)}));
  EXPECT_EQ(merged.stations, (std::vector<int32_t>{0, 1, 2, 3, 4}));
}

TEST(MergeDirtySetsTest, OneIncompleteShardPoisonsTheMerge) {
  WindowDirtySet good;
  good.complete = true;
  good.pairs = {SlidingWindowGraph::PairKey(0, 1)};
  good.stations = {0, 1};
  WindowDirtySet overflowed;  // e.g. a first drain or a pair overflow
  overflowed.complete = false;
  const WindowDirtySet merged = MergeDirtySets({good, overflowed});
  EXPECT_FALSE(merged.complete);  // never a silent partial patch
}

// ---------------------------------------------------------------------------
// ShardedWindowView: the merged read surface must agree with a single
// window that ingested the union stream.
// ---------------------------------------------------------------------------

TEST(ShardedWindowViewTest, MergedViewMatchesTheUnionWindow) {
  const size_t stations = 32;
  const auto events = PlantedStream(stations, 4, 5, 400, 21);
  const ShardRouter router(3);
  const WindowGraphOptions options{stations, 2 * 86400};

  SlidingWindowGraph single(options);
  std::vector<SlidingWindowGraph> shards(3, SlidingWindowGraph(options));
  for (const TripEvent& e : events) {
    ASSERT_TRUE(single.Ingest(e).ok());
    ASSERT_TRUE(shards[router.OwnerOfPair(e.from_station, e.to_station)]
                    .Ingest(e)
                    .ok());
  }
  // Align every shard to the union watermark (the engine's phase-2
  // barrier) so expiry cutoffs agree.
  for (SlidingWindowGraph& shard : shards) shard.Advance(single.watermark());

  const ShardedWindowView view({&shards[0], &shards[1], &shards[2]});
  EXPECT_EQ(view.station_count(), single.station_count());
  EXPECT_EQ(view.trip_count(), single.trip_count());
  EXPECT_EQ(view.pair_count(), single.pair_count());
  EXPECT_EQ(view.watermark(), single.watermark());
  EXPECT_EQ(view.window_start(), single.window_start());
  for (int32_t s = 0; s < static_cast<int32_t>(stations); ++s) {
    EXPECT_EQ(view.DayCounts(s), single.DayCounts(s)) << "station " << s;
    EXPECT_EQ(view.HourCounts(s), single.HourCounts(s)) << "station " << s;
  }
  const analysis::StationProfiles merged_profiles = view.Profiles();
  const analysis::StationProfiles single_profiles = single.Profiles();
  EXPECT_EQ(merged_profiles.day, single_profiles.day);
  EXPECT_EQ(merged_profiles.hour, single_profiles.hour);

  // ForEachPair: identical (u, v, trips) sequence, ascending, no ties.
  std::vector<std::array<int64_t, 3>> from_view, from_single;
  view.ForEachPair([&](int32_t u, int32_t v, int64_t trips) {
    from_view.push_back({u, v, trips});
    EXPECT_EQ(view.TripsBetween(u, v), trips);
  });
  single.ForEachPair([&](int32_t u, int32_t v, int64_t trips) {
    from_single.push_back({u, v, trips});
  });
  EXPECT_EQ(from_view, from_single);

  // And the freeze built over the view is bit-identical to the freeze
  // built over the union window.
  auto merged_snap = FreezeSnapshot(view);
  auto single_snap = FreezeSnapshot(single);
  ASSERT_TRUE(merged_snap.ok());
  ASSERT_TRUE(single_snap.ok());
  EXPECT_EQ(merged_snap->trip_count, single_snap->trip_count);
  EXPECT_EQ(merged_snap->window_start, single_snap->window_start);
  EXPECT_EQ(merged_snap->window_end, single_snap->window_end);
  EXPECT_EQ(merged_snap->profiles.day, single_snap->profiles.day);
  EXPECT_EQ(merged_snap->profiles.hour, single_snap->profiles.hour);
  ExpectGraphsIdentical(merged_snap->graph, single_snap->graph);
}

TEST(ShardedWindowViewTest, EmptyShardsContributeNothing) {
  const WindowGraphOptions options{8, 86400};
  SlidingWindowGraph populated(options);
  SlidingWindowGraph empty_a(options);
  SlidingWindowGraph empty_b(options);
  ASSERT_TRUE(populated.Ingest(Trip(0, 1, At(6, 10))).ok());
  ASSERT_TRUE(populated.Ingest(Trip(1, 2, At(6, 11))).ok());

  const ShardedWindowView view({&empty_a, &populated, &empty_b});
  EXPECT_EQ(view.trip_count(), 2u);
  EXPECT_EQ(view.pair_count(), 2u);
  EXPECT_EQ(view.watermark(), populated.watermark());
  EXPECT_EQ(view.window_start(), populated.window_start());
  EXPECT_EQ(view.TripsBetween(0, 1), 1);
  EXPECT_EQ(view.TripsBetween(3, 4), 0);
  size_t visited = 0;
  view.ForEachPair([&](int32_t, int32_t, int64_t) { ++visited; });
  EXPECT_EQ(visited, 2u);
}

// ---------------------------------------------------------------------------
// Engine-level equivalence: the headline lock. An N-shard engine fed the
// same (jittered) stream as a single-writer engine must publish
// bit-identical snapshots and Louvain partitions at every barrier.
// ---------------------------------------------------------------------------

StreamEngineConfig BaseConfig(size_t stations, int64_t window_seconds,
                              size_t shard_count,
                              int64_t max_lateness_seconds = 0) {
  StreamEngineConfig config;
  config.station_count = stations;
  config.window_seconds = window_seconds;
  config.max_lateness_seconds = max_lateness_seconds;
  config.shard_count = shard_count;
  return config;
}

void ExpectSnapshotsIdentical(const WindowSnapshot& sharded,
                              const WindowSnapshot& single) {
  EXPECT_EQ(sharded.trip_count, single.trip_count);
  EXPECT_EQ(sharded.window_start, single.window_start);
  EXPECT_EQ(sharded.window_end, single.window_end);
  EXPECT_EQ(sharded.profiles.day, single.profiles.day);
  EXPECT_EQ(sharded.profiles.hour, single.profiles.hour);
  ExpectGraphsIdentical(sharded.graph, single.graph);
}

/// Feeds the identical jittered planted stream into a single-writer and
/// an N-shard engine, snapshotting mid-stream every `snapshot_every`
/// events (each one a sharded barrier), and requires bit identity at
/// every snapshot, at the final flush, and on the Louvain partition.
void ExpectShardedEquivalence(int64_t window_seconds, size_t shard_count) {
  const size_t stations = 24;
  const auto ordered = PlantedStream(stations, 3, 10, 300, 7);
  const auto jittered = JitterArrivalOrder(ordered, 1800, 99).events;
  const size_t snapshot_every = 617;

  StreamEngine single(BaseConfig(stations, window_seconds, 1, 1800));
  StreamEngine sharded(
      BaseConfig(stations, window_seconds, shard_count, 1800));
  ASSERT_EQ(sharded.shard_count(), shard_count);

  for (size_t i = 0; i < jittered.size(); ++i) {
    ASSERT_TRUE(single.Ingest(jittered[i]).ok());
    ASSERT_TRUE(sharded.Ingest(jittered[i]).ok());
    if ((i + 1) % snapshot_every == 0) {
      auto single_snap = single.Snapshot();
      auto sharded_snap = sharded.Snapshot();
      ASSERT_TRUE(single_snap.ok());
      ASSERT_TRUE(sharded_snap.ok());
      ExpectSnapshotsIdentical(**sharded_snap, **single_snap);
    }
  }
  ASSERT_TRUE(single.Flush().ok());
  ASSERT_TRUE(sharded.Flush().ok());

  // Quiescent now: the aggregate live stats must agree exactly.
  EXPECT_EQ(sharded.ingested_count(), single.ingested_count());
  EXPECT_EQ(sharded.trip_count(), single.trip_count());
  EXPECT_EQ(sharded.expired_count(), single.expired_count());
  EXPECT_EQ(sharded.watermark(), single.watermark());
  EXPECT_EQ(sharded.reordered_count(), single.reordered_count());
  EXPECT_EQ(sharded.late_dropped_count(), 0u);
  EXPECT_EQ(sharded.buffered_count(), 0u);
  EXPECT_GT(sharded.reordered_count(), 0u);

  auto single_snap = single.Snapshot();
  auto sharded_snap = sharded.Snapshot();
  ASSERT_TRUE(single_snap.ok());
  ASSERT_TRUE(sharded_snap.ok());
  ExpectSnapshotsIdentical(**sharded_snap, **single_snap);

  auto single_detect = single.DetectCurrent();
  auto sharded_detect = sharded.DetectCurrent();
  ASSERT_TRUE(single_detect.ok());
  ASSERT_TRUE(sharded_detect.ok());
  EXPECT_EQ(sharded_detect->result.partition.assignment,
            single_detect->result.partition.assignment);
  EXPECT_EQ(sharded_detect->result.modularity,
            single_detect->result.modularity);  // bitwise
}

TEST(ShardedEngineTest, TwoShardsSlidingBitForBit) {
  ExpectShardedEquivalence(/*window_seconds=*/3 * 86400, /*shard_count=*/2);
}

TEST(ShardedEngineTest, FourShardsSlidingBitForBit) {
  ExpectShardedEquivalence(/*window_seconds=*/3 * 86400, /*shard_count=*/4);
}

TEST(ShardedEngineTest, TwoShardsLandmarkBitForBit) {
  ExpectShardedEquivalence(/*window_seconds=*/0, /*shard_count=*/2);
}

TEST(ShardedEngineTest, FourShardsLandmarkBitForBit) {
  ExpectShardedEquivalence(/*window_seconds=*/0, /*shard_count=*/4);
}

TEST(ShardedEngineTest, ShardCountZeroMeansSingleWriter) {
  StreamEngine zero(BaseConfig(4, 0, 0));
  EXPECT_EQ(zero.shard_count(), 1u);
  StreamEngine four(BaseConfig(4, 0, 4));
  EXPECT_EQ(four.shard_count(), 4u);
}

TEST(ShardedEngineTest, ValidationStaysSynchronousWhenSharded) {
  // Endpoint validation and the flushed check happen at arrival, before
  // routing — only in-shard failures are deferred.
  StreamEngine engine(BaseConfig(4, 0, 2));
  EXPECT_EQ(engine.Ingest(Trip(0, 9, At(6, 10))).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(engine.Flush().ok());
  EXPECT_EQ(engine.Ingest(Trip(0, 1, At(6, 11))).code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Routing edge cases (the satellite locks).
// ---------------------------------------------------------------------------

/// The first station (by id) whose owner under `router` differs from
/// `avoid`, or -1.
int32_t FirstStationNotOwnedBy(const ShardRouter& router, size_t avoid,
                               size_t stations) {
  for (int32_t s = 0; s < static_cast<int32_t>(stations); ++s) {
    if (router.OwnerOf(s) != avoid) return s;
  }
  return -1;
}

TEST(ShardedEngineTest, MidStreamStationWakesAnIdleShard) {
  const size_t stations = 64;
  const ShardRouter router(4);
  // Warm phase: all trips among stations owned by one shard, so three
  // shards never see an event.
  const size_t hot = router.OwnerOf(0);
  std::vector<int32_t> hot_stations;
  for (int32_t s = 0; s < static_cast<int32_t>(stations); ++s) {
    if (router.OwnerOf(s) == hot) hot_stations.push_back(s);
  }
  ASSERT_GE(hot_stations.size(), 2u);
  // The wake-up pair must be *owned* by an idle shard: its canonical
  // (smaller) endpoint belongs to a shard with no prior events.
  const int32_t cold = FirstStationNotOwnedBy(router, hot, stations);
  ASSERT_GE(cold, 0);
  int32_t partner = -1;
  for (int32_t s : hot_stations) {
    if (s > cold) partner = s;
  }
  ASSERT_GE(partner, 0);
  ASSERT_NE(router.OwnerOfPair(cold, partner), hot);

  StreamEngine single(BaseConfig(stations, 0, 1));
  StreamEngine sharded(BaseConfig(stations, 0, 4));
  int64_t rental = 1;
  for (int minute = 0; minute < 30; ++minute) {
    const TripEvent e =
        Trip(hot_stations[0], hot_stations[1], At(6, 10, minute), rental++);
    ASSERT_TRUE(single.Ingest(e).ok());
    ASSERT_TRUE(sharded.Ingest(e).ok());
  }
  auto warm_single = single.Snapshot();
  auto warm_sharded = sharded.Snapshot();
  ASSERT_TRUE(warm_single.ok());
  ASSERT_TRUE(warm_sharded.ok());
  ExpectSnapshotsIdentical(**warm_sharded, **warm_single);

  // Mid-stream, a never-before-seen station routes its pair to a shard
  // that was idle through the warm phase and the first freeze.
  const TripEvent wake = Trip(cold, partner, At(6, 11), rental++);
  ASSERT_TRUE(single.Ingest(wake).ok());
  ASSERT_TRUE(sharded.Ingest(wake).ok());
  auto woken_single = single.Snapshot();
  auto woken_sharded = sharded.Snapshot();
  ASSERT_TRUE(woken_single.ok());
  ASSERT_TRUE(woken_sharded.ok());
  ExpectSnapshotsIdentical(**woken_sharded, **woken_single);
  EXPECT_EQ((*woken_sharded)->trip_count, 31u);
  EXPECT_EQ((*woken_sharded)->graph.edge_count(),
            (*warm_sharded)->graph.edge_count() + 1);
}

TEST(ShardedEngineTest, CrossShardPairCanonicalizesToOneOwner) {
  // Both orientations of a pair whose endpoints live on different shards
  // must land on the same shard and fold into one edge, exactly as in
  // the single-writer engine.
  const size_t stations = 16;
  const ShardRouter router(4);
  int32_t u = -1, v = -1;
  for (int32_t a = 0; a < static_cast<int32_t>(stations) && u < 0; ++a) {
    for (int32_t b = a + 1; b < static_cast<int32_t>(stations); ++b) {
      if (router.OwnerOf(a) != router.OwnerOf(b)) {
        u = a;
        v = b;
        break;
      }
    }
  }
  ASSERT_GE(u, 0);

  StreamEngine single(BaseConfig(stations, 0, 1));
  StreamEngine sharded(BaseConfig(stations, 0, 4));
  const std::vector<TripEvent> events = {Trip(u, v, At(6, 10), 1),
                                         Trip(v, u, At(6, 10, 5), 2),
                                         Trip(u, v, At(6, 10, 9), 3)};
  for (const TripEvent& e : events) {
    ASSERT_TRUE(single.Ingest(e).ok());
    ASSERT_TRUE(sharded.Ingest(e).ok());
  }
  ASSERT_TRUE(single.Flush().ok());
  ASSERT_TRUE(sharded.Flush().ok());
  EXPECT_EQ(sharded.trip_count(), 3u);
  auto single_snap = single.Snapshot();
  auto sharded_snap = sharded.Snapshot();
  ASSERT_TRUE(single_snap.ok());
  ASSERT_TRUE(sharded_snap.ok());
  ExpectSnapshotsIdentical(**sharded_snap, **single_snap);
  EXPECT_EQ((*sharded_snap)->graph.edge_count(), 1u);  // one folded edge
}

TEST(ShardedEngineTest, EmptyShardFreezeTakesTheDeltaPathNotAStaleSet) {
  // All events live on one shard; the other three stay empty across two
  // freezes. An empty shard must contribute a *complete empty* dirty
  // set to the second freeze — the merged record stays complete and the
  // copy-on-write delta path runs — rather than an incomplete (stale)
  // one forcing full rebuilds forever.
  const size_t stations = 64;
  const ShardRouter router(4);
  const size_t hot = router.OwnerOf(0);
  std::vector<int32_t> hot_stations;
  for (int32_t s = 0; s < static_cast<int32_t>(stations); ++s) {
    if (router.OwnerOf(s) == hot) hot_stations.push_back(s);
  }
  ASSERT_GE(hot_stations.size(), 16u);

  StreamEngine single(BaseConfig(stations, 0, 1));
  StreamEngine sharded(BaseConfig(stations, 0, 4));
  int64_t rental = 1;
  int minute = 0;
  const auto feed = [&](size_t a, size_t b) {
    const TripEvent e =
        Trip(hot_stations[a], hot_stations[b], At(6, 10, minute++), rental++);
    ASSERT_TRUE(single.Ingest(e).ok());
    ASSERT_TRUE(sharded.Ingest(e).ok());
  };
  // First epoch: 15 distinct pairs, so the one-pair second epoch stays
  // far under the delta policy's dirty-fraction cap.
  for (size_t i = 0; i + 1 < 16; ++i) feed(i, i + 1);
  auto first_single = single.Snapshot();
  auto first_sharded = sharded.Snapshot();
  ASSERT_TRUE(first_single.ok());
  ASSERT_TRUE(first_sharded.ok());
  ExpectSnapshotsIdentical(**first_sharded, **first_single);
  EXPECT_EQ(sharded.full_freeze_count(), 1u);  // first freeze arms dirty
                                               // tracking on every shard
  EXPECT_EQ(sharded.delta_freeze_count(), 0u);

  // A small second epoch: one touched pair out of fifteen edges.
  feed(0, 1);
  auto second_single = single.Snapshot();
  auto second_sharded = sharded.Snapshot();
  ASSERT_TRUE(second_single.ok());
  ASSERT_TRUE(second_sharded.ok());
  ExpectSnapshotsIdentical(**second_sharded, **second_single);
  // The empty shards' records were complete, so the merge stayed
  // complete and the delta path ran.
  EXPECT_EQ(sharded.delta_freeze_count(), 1u);
  EXPECT_EQ(sharded.full_freeze_count(), 1u);
}

TEST(ShardedEngineTest, DeferredShardErrorsSurfaceAtTheNextBarrier) {
  // Strict lateness (0, kError): the single-writer engine fails the
  // Ingest; a sharded engine accepts the enqueue and surfaces the
  // shard's error at the next barrier — exactly once.
  StreamEngine engine(BaseConfig(8, 0, 2));
  ASSERT_TRUE(engine.Ingest(Trip(0, 1, At(6, 10), 1)).ok());
  // A start-time regression under max_lateness 0 fails inside the
  // owning shard; the enqueuing call cannot see that.
  ASSERT_TRUE(engine.Ingest(Trip(2, 3, At(6, 9), 2)).ok());
  const Status deferred = engine.Flush();
  EXPECT_EQ(deferred.code(), StatusCode::kFailedPrecondition);
  // Surfaced once: the barrier cleared the parked error, and the good
  // event is in the window.
  auto snap = engine.Snapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ((*snap)->trip_count, 1u);
  EXPECT_EQ(engine.trip_count(), 1u);
}

}  // namespace
}  // namespace bikegraph::stream
