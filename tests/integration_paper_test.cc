// End-to-end integration test: runs the full paper reproduction at the
// calibrated scale and asserts the *shape* constraints of every table and
// figure (see DESIGN.md §4 and EXPERIMENTS.md). This is the executable
// contract that the bench harnesses print.

#include <set>

#include "analysis/experiment.h"
#include "geo/haversine.h"
#include "metrics/graph_stats.h"

#include <gtest/gtest.h>

#include "core/checked_cast.h"

using bikegraph::AsIndex;

namespace bikegraph {
namespace {

/// Shared across tests: the experiment takes ~1 s, run it once.
const analysis::ExperimentResult& Experiment() {
  static const analysis::ExperimentResult* result = [] {
    auto r = analysis::RunPaperExperiment(analysis::ExperimentConfig{});
    EXPECT_TRUE(r.ok()) << r.status();
    return new analysis::ExperimentResult(std::move(r).ValueOrDie());
  }();
  return *result;
}

TEST(PaperIntegrationTest, TableOneDatasetShape) {
  const auto& rep = Experiment().pipeline.cleaning_report;
  // Paper: 95 -> 92 stations, 62,324 -> 61,872 rentals, 14,239 -> 14,156
  // locations. Station counts match exactly; volumes within 10%.
  EXPECT_EQ(rep.before.station_count, 95u);
  EXPECT_EQ(rep.after.station_count, 92u);
  EXPECT_EQ(rep.after.rental_count, 61872u);
  EXPECT_NEAR(static_cast<double>(rep.before.rental_count), 62324.0, 800.0);
  EXPECT_NEAR(static_cast<double>(rep.before.location_count), 14239.0,
              1500.0);
  EXPECT_NEAR(static_cast<double>(rep.after.location_count), 14156.0, 1500.0);
  // Cleaning removes a small fraction, as in the paper (<2%).
  EXPECT_LT(rep.TotalRentalsDropped(), rep.before.rental_count / 50);
}

TEST(PaperIntegrationTest, TableTwoCandidateGraphShape) {
  const auto& net = Experiment().pipeline.candidate_network;
  auto counts = metrics::CountGraph(net.graph, "TRIP");
  // Paper: 1,172 nodes / 61,872 trips / 16,042 directed edges.
  EXPECT_NEAR(static_cast<double>(counts.nodes), 1172.0, 200.0);
  EXPECT_EQ(counts.trips, 61872u);
  EXPECT_GT(counts.directed_edges, counts.undirected_edges);
  EXPECT_GT(counts.undirected_edges, counts.undirected_edges_no_loops);
  EXPECT_GT(counts.directed_edges, counts.directed_edges_no_loops);
  // Far fewer distinct pairs than trips (heavy reuse of popular routes).
  EXPECT_LT(counts.directed_edges, counts.trips);
}

TEST(PaperIntegrationTest, TableThreeSelectedGraphShape) {
  const auto& net = Experiment().pipeline.final_network;
  const auto stats = net.ComputeStats();
  // Paper: 92 pre-existing + 146 new = 238.
  EXPECT_EQ(net.pre_existing_count, 92u);
  EXPECT_NEAR(static_cast<double>(net.selected_count()), 146.0, 40.0);
  // Trip conservation.
  EXPECT_EQ(stats.total_trips, 61872);
  EXPECT_EQ(stats.pre_existing.trips_from + stats.selected.trips_from,
            stats.total_trips);
  // Pre-existing stations dominate traffic (paper: 88% of starts).
  EXPECT_GT(stats.pre_existing.trips_from, stats.total_trips * 7 / 10);
  // New stations carry real traffic (paper: ~12%).
  EXPECT_GT(stats.selected.trips_from, stats.total_trips / 20);
}

TEST(PaperIntegrationTest, SelectionObeysAllRules) {
  const auto& pipeline = Experiment().pipeline;
  const auto& net = pipeline.candidate_network;
  const auto& sel = pipeline.selection;
  // Rule 3: every selected candidate clears the threshold.
  for (int32_t c : sel.selected) {
    EXPECT_GE(net.candidates[AsIndex(c)].degree(), sel.degree_threshold);
  }
  // Rule 4: >=250 m from every fixed station and from each other.
  std::vector<geo::LatLon> fixed;
  for (const auto& cand : net.candidates) {
    if (cand.is_fixed()) fixed.push_back(cand.centroid);
  }
  for (size_t i = 0; i < sel.selected.size(); ++i) {
    const auto& pos = net.candidates[AsIndex(sel.selected[i])].centroid;
    for (const auto& st : fixed) {
      EXPECT_GT(geo::HaversineMeters(pos, st), 250.0);
    }
    for (size_t j = i + 1; j < sel.selected.size(); ++j) {
      EXPECT_GT(geo::HaversineMeters(
                    pos, net.candidates[AsIndex(sel.selected[j])].centroid),
                250.0);
    }
  }
}

TEST(PaperIntegrationTest, CommunityCountsGrowWithGranularity) {
  const auto& r = Experiment();
  const size_t k_basic = r.gbasic.detection.partition.CommunityCount();
  const size_t k_day = r.gday.detection.partition.CommunityCount();
  const size_t k_hour = r.ghour.detection.partition.CommunityCount();
  // Paper: 3 -> 7 -> 10.
  EXPECT_GE(k_basic, 3u);
  EXPECT_LE(k_basic, 8u);
  EXPECT_GT(k_day, k_basic - 1);
  EXPECT_GT(k_hour, k_day);
  EXPECT_LE(k_hour, 16u);
}

TEST(PaperIntegrationTest, ModularityGrowsWithGranularity) {
  const auto& r = Experiment();
  // Paper: 0.25 -> 0.32 -> 0.54; ours must be positive and monotone.
  EXPECT_GT(r.gbasic.detection.modularity, 0.15);
  EXPECT_LT(r.gbasic.detection.modularity, 0.45);
  EXPECT_GT(r.gday.detection.modularity, r.gbasic.detection.modularity);
  EXPECT_GT(r.ghour.detection.modularity, r.gday.detection.modularity);
  EXPECT_LT(r.ghour.detection.modularity, 0.75);
}

TEST(PaperIntegrationTest, CommunitiesAreLargelySelfContained) {
  const auto& r = Experiment();
  // Paper: ~74% of GBasic trips start and end in the same community
  // (London 75%, Beijing 77%). Ours must clear 50% with few communities.
  EXPECT_GT(r.gbasic.stats.SelfContainedFraction(), 0.50);
  EXPECT_EQ(r.gbasic.stats.TotalTrips(), 61872);
}

TEST(PaperIntegrationTest, CommunitiesMixOldAndNewStations) {
  const auto& stats = Experiment().gbasic.stats;
  size_t total_old = 0, total_new = 0, with_both = 0;
  for (const auto& row : stats.rows) {
    total_old += row.old_stations;
    total_new += row.new_stations;
    if (row.old_stations > 0 && row.new_stations > 0) ++with_both;
  }
  EXPECT_EQ(total_old, 92u);
  EXPECT_EQ(total_new, Experiment().pipeline.final_network.selected_count());
  // New stations are not outliers: most communities contain both kinds
  // (the paper's validation question in §V-C).
  EXPECT_GE(with_both * 2, stats.rows.size());
}

TEST(PaperIntegrationTest, FigFiveDayPatternsSplit) {
  const auto& r = Experiment();
  auto shares = analysis::CommunityDayShares(r.pipeline.final_network,
                                             r.gday.detection.partition);
  ASSERT_TRUE(shares.ok());
  size_t commute = 0, leisure = 0;
  for (const auto& row : *shares) {
    switch (analysis::ClassifyDayPattern(row)) {
      case analysis::DayPattern::kWeekdayCommute:
        ++commute;
        break;
      case analysis::DayPattern::kWeekendLeisure:
        ++leisure;
        break;
      case analysis::DayPattern::kFlat:
        break;
    }
  }
  // Paper Fig. 5: some GDay communities trough at the weekend (commute),
  // others peak on Saturday (leisure).
  EXPECT_GE(commute, 1u);
  EXPECT_GE(leisure, 1u);
}

TEST(PaperIntegrationTest, FigSevenHourPatternsSplit) {
  const auto& r = Experiment();
  auto shares = analysis::CommunityHourShares(r.pipeline.final_network,
                                              r.ghour.detection.partition);
  ASSERT_TRUE(shares.ok());
  size_t commute = 0, midday = 0;
  for (const auto& row : *shares) {
    switch (analysis::ClassifyHourPattern(row)) {
      case analysis::HourPattern::kCommute:
        ++commute;
        break;
      case analysis::HourPattern::kMiddayLeisure:
        ++midday;
        break;
      case analysis::HourPattern::kOther:
        break;
    }
  }
  // Paper Fig. 7: rush-hour communities (7-9 am & ~5 pm) coexist with
  // midday-peaking leisure communities.
  EXPECT_GE(commute, 1u);
  EXPECT_GE(midday, 1u);
}

TEST(PaperIntegrationTest, DeterministicAcrossRuns) {
  // Rerunning the full experiment with the same config reproduces the
  // community structure exactly.
  auto again = analysis::RunPaperExperiment(analysis::ExperimentConfig{});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->gbasic.detection.partition.assignment,
            Experiment().gbasic.detection.partition.assignment);
  EXPECT_DOUBLE_EQ(again->ghour.detection.modularity,
                   Experiment().ghour.detection.modularity);
}

}  // namespace
}  // namespace bikegraph
