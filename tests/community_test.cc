#include <cmath>

#include "community/aggregate.h"
#include "community/fast_greedy.h"
#include "community/infomap.h"
#include "community/label_propagation.h"
#include "community/louvain.h"
#include "community/modularity.h"
#include "community/partition.h"
#include "core/rng.h"

#include <gtest/gtest.h>

#include "core/checked_cast.h"

using bikegraph::AsIndex;

namespace bikegraph::community {
namespace {

using graphdb::WeightedGraph;
using graphdb::WeightedGraphBuilder;

/// Two dense cliques of size `k` connected by a single weak bridge.
WeightedGraph TwoCliques(int k, double bridge_weight = 0.5) {
  WeightedGraphBuilder b(AsIndex(2 * k));
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      (void)b.AddEdge(i, j, 1.0);
      (void)b.AddEdge(k + i, k + j, 1.0);
    }
  }
  (void)b.AddEdge(0, k, bridge_weight);
  return b.Build();
}

/// Ring of `c` cliques, each of size `k`, adjacent cliques bridged.
WeightedGraph CliqueRing(int c, int k) {
  WeightedGraphBuilder b(AsIndex(c * k));
  for (int q = 0; q < c; ++q) {
    for (int i = 0; i < k; ++i) {
      for (int j = i + 1; j < k; ++j) {
        (void)b.AddEdge(q * k + i, q * k + j, 1.0);
      }
    }
    (void)b.AddEdge(q * k, ((q + 1) % c) * k + 1, 0.5);
  }
  return b.Build();
}

TEST(PartitionTest, RenumberAndCounts) {
  Partition p;
  p.assignment = {5, 3, 5, 9, 3};
  p.Renumber();
  EXPECT_EQ(p.assignment, (std::vector<int32_t>{0, 1, 0, 2, 1}));
  EXPECT_EQ(p.CommunityCount(), 3u);
  EXPECT_EQ(p.CommunitySizes(), (std::vector<size_t>{2, 2, 1}));
  auto members = p.CommunityMembers();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0], (std::vector<int32_t>{0, 2}));
}

TEST(PartitionTest, TrivialAndSingletons) {
  EXPECT_EQ(Partition::Trivial(4).CommunityCount(), 1u);
  EXPECT_EQ(Partition::Singletons(4).CommunityCount(), 4u);
}

TEST(NmiTest, IdenticalPartitionsScoreOne) {
  Partition a;
  a.assignment = {0, 0, 1, 1, 2};
  Partition relabeled;
  relabeled.assignment = {2, 2, 0, 0, 1};
  EXPECT_NEAR(NormalizedMutualInformation(a, a), 1.0, 1e-12);
  EXPECT_NEAR(NormalizedMutualInformation(a, relabeled), 1.0, 1e-12);
}

TEST(NmiTest, IndependentPartitionsScoreLow) {
  Partition a, b;
  for (int i = 0; i < 400; ++i) {
    a.assignment.push_back(i % 2);
    b.assignment.push_back((i / 2) % 2);  // unrelated split
  }
  EXPECT_LT(NormalizedMutualInformation(a, b), 0.05);
}

TEST(ModularityTest, TrivialPartitionScoresZero) {
  WeightedGraph g = TwoCliques(5);
  EXPECT_NEAR(Modularity(g, Partition::Trivial(g.node_count())), 0.0, 1e-12);
}

TEST(ModularityTest, PlantedPartitionBeatsTrivialAndRandom) {
  WeightedGraph g = TwoCliques(6);
  Partition planted;
  planted.assignment.assign(12, 0);
  for (int i = 6; i < 12; ++i) planted.assignment[AsIndex(i)] = 1;
  const double planted_q = Modularity(g, planted);
  EXPECT_GT(planted_q, 0.4);

  Partition scrambled;
  scrambled.assignment = {0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_LT(Modularity(g, scrambled), planted_q);
}

TEST(ModularityTest, KnownValueOnTinyGraph) {
  // Two nodes, one edge, separate communities: Q = 0 - (0.5^2)*2 = -0.5.
  WeightedGraphBuilder b(2);
  (void)b.AddEdge(0, 1, 1.0);
  WeightedGraph g = b.Build();
  EXPECT_NEAR(Modularity(g, Partition::Singletons(2)), -0.5, 1e-12);
  // Same community: Q = 1 - 1 = 0.
  EXPECT_NEAR(Modularity(g, Partition::Trivial(2)), 0.0, 1e-12);
}

TEST(ModularityTest, SelfLoopsCount) {
  WeightedGraphBuilder b(2);
  (void)b.AddEdge(0, 0, 1.0);
  (void)b.AddEdge(1, 1, 1.0);
  WeightedGraph g = b.Build();
  // Each node its own community, all weight internal: Q = 1 - 2*(1/2)^2.
  EXPECT_NEAR(Modularity(g, Partition::Singletons(2)), 0.5, 1e-12);
}

TEST(ModularityTest, ResolutionShiftsBalance) {
  WeightedGraph g = TwoCliques(5);
  Partition planted;
  planted.assignment.assign(10, 0);
  for (int i = 5; i < 10; ++i) planted.assignment[AsIndex(i)] = 1;
  EXPECT_GT(Modularity(g, planted, 0.5), Modularity(g, planted, 2.0));
}

TEST(AggregateTest, PreservesTotalWeight) {
  WeightedGraph g = TwoCliques(5);
  Partition p;
  p.assignment.assign(10, 0);
  for (int i = 5; i < 10; ++i) p.assignment[AsIndex(i)] = 1;
  WeightedGraph coarse = AggregateByPartition(g, p);
  EXPECT_EQ(coarse.node_count(), 2u);
  EXPECT_DOUBLE_EQ(coarse.total_weight(), g.total_weight());
  // Each clique's internal weight becomes a self-loop: C(5,2) = 10.
  EXPECT_DOUBLE_EQ(coarse.self_weight(0), 10.0);
  EXPECT_DOUBLE_EQ(coarse.WeightBetween(0, 1), 0.5);
}

TEST(AggregateTest, ModularityInvariantUnderAggregation) {
  // Q(partition on G) == Q(matching singleton partition on aggregate).
  WeightedGraph g = CliqueRing(4, 5);
  Partition p;
  p.assignment.resize(g.node_count());
  for (size_t i = 0; i < g.node_count(); ++i) {
    p.assignment[i] = static_cast<int32_t>(i / 5);
  }
  WeightedGraph coarse = AggregateByPartition(g, p);
  EXPECT_NEAR(Modularity(g, p),
              Modularity(coarse, Partition::Singletons(coarse.node_count())),
              1e-12);
}

TEST(ComposeTest, TwoLevelComposition) {
  Partition fine;
  fine.assignment = {0, 0, 1, 1, 2};
  Partition coarse;
  coarse.assignment = {0, 0, 1};  // communities 0,1 -> 0; 2 -> 1
  Partition composed = ComposePartitions(fine, coarse);
  EXPECT_EQ(composed.assignment, (std::vector<int32_t>{0, 0, 0, 0, 1}));
}

TEST(LouvainTest, RecoversTwoCliques) {
  WeightedGraph g = TwoCliques(8);
  auto result = RunLouvain(g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->partition.CommunityCount(), 2u);
  EXPECT_GT(result->modularity, 0.45);
  // All of clique 1 in one community.
  for (int i = 1; i < 8; ++i) {
    EXPECT_EQ(result->partition.assignment[AsIndex(i)], result->partition.assignment[0]);
    EXPECT_EQ(result->partition.assignment[AsIndex(8 + i)],
              result->partition.assignment[8]);
  }
}

TEST(LouvainTest, RecoversCliqueRing) {
  WeightedGraph g = CliqueRing(6, 6);
  auto result = RunLouvain(g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->partition.CommunityCount(), 6u);
  EXPECT_GT(result->modularity, 0.6);
}

TEST(LouvainTest, DeterministicForSeed) {
  WeightedGraph g = CliqueRing(5, 5);
  LouvainOptions opts;
  opts.seed = 33;
  auto a = RunLouvain(g, opts);
  auto b = RunLouvain(g, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->partition.assignment, b->partition.assignment);
  EXPECT_DOUBLE_EQ(a->modularity, b->modularity);
}

TEST(LouvainTest, EmptyAndSingletonGraphs) {
  WeightedGraphBuilder b0(0);
  auto empty = RunLouvain(b0.Build());
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->partition.node_count(), 0u);

  WeightedGraphBuilder b1(3);  // no edges
  auto isolated = RunLouvain(b1.Build());
  ASSERT_TRUE(isolated.ok());
  EXPECT_EQ(isolated->partition.CommunityCount(), 3u);
}

TEST(LouvainTest, ModularityMatchesReportedPartition) {
  WeightedGraph g = CliqueRing(4, 6);
  auto result = RunLouvain(g);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->modularity, Modularity(g, result->partition), 1e-12);
}

TEST(LouvainTest, HighResolutionFragmentsMore) {
  WeightedGraph g = CliqueRing(6, 6);
  LouvainOptions coarse_opts;
  coarse_opts.resolution = 0.1;
  LouvainOptions fine_opts;
  fine_opts.resolution = 3.0;
  auto coarse = RunLouvain(g, coarse_opts);
  auto fine = RunLouvain(g, fine_opts);
  ASSERT_TRUE(coarse.ok());
  ASSERT_TRUE(fine.ok());
  EXPECT_LE(coarse->partition.CommunityCount(),
            fine->partition.CommunityCount());
}

TEST(LouvainTest, RejectsBadResolution) {
  WeightedGraph g = TwoCliques(3);
  LouvainOptions opts;
  opts.resolution = 0.0;
  EXPECT_FALSE(RunLouvain(g, opts).ok());
}

TEST(LouvainTest, WeightedEdgesShiftCommunities) {
  // Two heavy pairs joined by a weak link: each pair must co-cluster and
  // the pairs must separate (Q ≈ 0.495 for the planted split).
  WeightedGraphBuilder b(4);
  (void)b.AddEdge(0, 1, 10.0);
  (void)b.AddEdge(2, 3, 10.0);
  (void)b.AddEdge(1, 2, 0.1);
  auto result = RunLouvain(b.Build());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->partition.assignment[0], result->partition.assignment[1]);
  EXPECT_EQ(result->partition.assignment[2], result->partition.assignment[3]);
  EXPECT_NE(result->partition.assignment[0], result->partition.assignment[2]);
  EXPECT_NEAR(result->modularity, 0.495, 0.01);
}

TEST(LabelPropagationTest, RecoversTwoCliques) {
  WeightedGraph g = TwoCliques(8);
  auto result = RunLabelPropagation(g);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->partition.CommunityCount(), 2u);
}

TEST(LabelPropagationTest, DeterministicForSeed) {
  WeightedGraph g = CliqueRing(4, 5);
  LabelPropagationOptions opts;
  opts.seed = 7;
  auto a = RunLabelPropagation(g, opts);
  auto b = RunLabelPropagation(g, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->partition.assignment, b->partition.assignment);
}

TEST(LabelPropagationTest, RejectsBadOptions) {
  LabelPropagationOptions opts;
  opts.max_iterations = 0;
  EXPECT_FALSE(RunLabelPropagation(TwoCliques(3), opts).ok());
}

TEST(FastGreedyTest, RecoversTwoCliques) {
  WeightedGraph g = TwoCliques(8);
  auto result = RunFastGreedy(g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->partition.CommunityCount(), 2u);
  EXPECT_GT(result->modularity, 0.45);
  EXPECT_GT(result->merges, 0u);
}

TEST(FastGreedyTest, StopsAtNonPositiveGain) {
  // Two disconnected edges: merging across components never helps.
  WeightedGraphBuilder b(4);
  (void)b.AddEdge(0, 1, 1.0);
  (void)b.AddEdge(2, 3, 1.0);
  auto result = RunFastGreedy(b.Build());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->partition.CommunityCount(), 2u);
  EXPECT_EQ(result->partition.assignment[0], result->partition.assignment[1]);
  EXPECT_NE(result->partition.assignment[0], result->partition.assignment[2]);
}

TEST(FastGreedyTest, ComparableModularityToLouvain) {
  WeightedGraph g = CliqueRing(5, 6);
  auto greedy = RunFastGreedy(g);
  auto louvain = RunLouvain(g);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(louvain.ok());
  EXPECT_GT(greedy->modularity, louvain->modularity * 0.8);
}

TEST(InfomapTest, CodelengthOfTrivialPartitionIsNodeEntropy) {
  WeightedGraph g = TwoCliques(4);
  // One module: no exit terms; L = H(node visit rates).
  double L = MapEquationCodelength(g, Partition::Trivial(g.node_count()));
  double H = 0.0;
  const double two_m = 2.0 * g.total_weight();
  for (size_t u = 0; u < g.node_count(); ++u) {
    double p = g.strength(static_cast<int32_t>(u)) / two_m;
    H -= p * std::log2(p);
  }
  EXPECT_NEAR(L, H, 1e-9);
}

TEST(InfomapTest, PlantedPartitionShortensCodelength) {
  WeightedGraph g = TwoCliques(8);
  Partition planted;
  planted.assignment.assign(16, 0);
  for (int i = 8; i < 16; ++i) planted.assignment[AsIndex(i)] = 1;
  EXPECT_LT(MapEquationCodelength(g, planted),
            MapEquationCodelength(g, Partition::Singletons(16)));
}

TEST(InfomapTest, RecoversTwoCliques) {
  WeightedGraph g = TwoCliques(8);
  auto result = RunInfomapLite(g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->partition.CommunityCount(), 2u);
  EXPECT_LT(result->codelength, result->singleton_codelength);
}

TEST(InfomapTest, RecoversCliqueRing) {
  WeightedGraph g = CliqueRing(6, 6);
  auto result = RunInfomapLite(g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->partition.CommunityCount(), 6u);
}

TEST(InfomapTest, CodelengthMatchesReportedPartition) {
  WeightedGraph g = CliqueRing(4, 5);
  auto result = RunInfomapLite(g);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->codelength,
              MapEquationCodelength(g, result->partition), 1e-9);
}

// Cross-algorithm property sweep: on planted clique rings every algorithm
// must find a partition at least as good as the planted one is non-trivial.
class AlgorithmComparisonTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(AlgorithmComparisonTest, AllAlgorithmsFindStructure) {
  auto [cliques, size] = GetParam();
  WeightedGraph g = CliqueRing(cliques, size);
  Partition planted;
  planted.assignment.resize(g.node_count());
  for (size_t i = 0; i < g.node_count(); ++i) {
    planted.assignment[i] = static_cast<int32_t>(i / AsIndex(size));
  }
  const double planted_q = Modularity(g, planted);

  auto louvain = RunLouvain(g);
  ASSERT_TRUE(louvain.ok());
  EXPECT_GE(louvain->modularity, planted_q - 1e-9);

  auto greedy = RunFastGreedy(g);
  ASSERT_TRUE(greedy.ok());
  EXPECT_GT(greedy->modularity, 0.5 * planted_q);

  auto lpa = RunLabelPropagation(g);
  ASSERT_TRUE(lpa.ok());
  EXPECT_GT(Modularity(g, lpa->partition), 0.5 * planted_q);

  auto infomap = RunInfomapLite(g);
  ASSERT_TRUE(infomap.ok());
  EXPECT_GT(Modularity(g, infomap->partition), 0.5 * planted_q);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AlgorithmComparisonTest,
                         ::testing::Values(std::pair{3, 5}, std::pair{5, 4},
                                           std::pair{8, 6}, std::pair{10, 8}));

}  // namespace
}  // namespace bikegraph::community
