#include <cmath>
#include <numeric>

#include "graphdb/property_graph.h"
#include "metrics/centrality.h"
#include "metrics/graph_stats.h"

#include <gtest/gtest.h>

#include "core/checked_cast.h"

using bikegraph::AsIndex;

namespace bikegraph::metrics {
namespace {

using graphdb::Digraph;
using graphdb::DigraphBuilder;
using graphdb::WeightedGraph;
using graphdb::WeightedGraphBuilder;

/// Path graph 0-1-2-...-(n-1).
WeightedGraph Path(int n) {
  WeightedGraphBuilder b(AsIndex(n));
  for (int i = 0; i + 1 < n; ++i) (void)b.AddEdge(i, i + 1, 1.0);
  return b.Build();
}

/// Star with `leaves` leaves around node 0.
WeightedGraph Star(int leaves) {
  WeightedGraphBuilder b(AsIndex(leaves + 1));
  for (int i = 1; i <= leaves; ++i) (void)b.AddEdge(0, i, 1.0);
  return b.Build();
}

TEST(PageRankTest, UniformOnSymmetricCycle) {
  DigraphBuilder b(4);
  for (int i = 0; i < 4; ++i) (void)b.AddEdge(i, (i + 1) % 4, 1.0);
  auto pr = PageRank(b.Build());
  ASSERT_TRUE(pr.ok());
  for (double v : *pr) EXPECT_NEAR(v, 0.25, 1e-9);
}

TEST(PageRankTest, SumsToOneWithDanglingNodes) {
  DigraphBuilder b(3);
  (void)b.AddEdge(0, 1, 1.0);
  (void)b.AddEdge(0, 2, 1.0);  // nodes 1, 2 dangle
  auto pr = PageRank(b.Build());
  ASSERT_TRUE(pr.ok());
  EXPECT_NEAR(std::accumulate(pr->begin(), pr->end(), 0.0), 1.0, 1e-9);
  EXPECT_GT((*pr)[1], (*pr)[0]);
}

TEST(PageRankTest, HubAccumulatesRank) {
  DigraphBuilder b(4);
  (void)b.AddEdge(1, 0, 1.0);
  (void)b.AddEdge(2, 0, 1.0);
  (void)b.AddEdge(3, 0, 1.0);
  (void)b.AddEdge(0, 1, 1.0);
  auto pr = PageRank(b.Build());
  ASSERT_TRUE(pr.ok());
  EXPECT_GT((*pr)[0], (*pr)[2] * 2);
}

TEST(PageRankTest, WeightsBiasDistribution) {
  DigraphBuilder b(3);
  (void)b.AddEdge(0, 1, 9.0);
  (void)b.AddEdge(0, 2, 1.0);
  (void)b.AddEdge(1, 0, 1.0);
  (void)b.AddEdge(2, 0, 1.0);
  auto pr = PageRank(b.Build());
  ASSERT_TRUE(pr.ok());
  EXPECT_GT((*pr)[1], (*pr)[2] * 2);
}

TEST(PageRankTest, RejectsBadDamping) {
  DigraphBuilder b(1);
  PageRankOptions opts;
  opts.damping = 1.0;
  EXPECT_FALSE(PageRank(b.Build(), opts).ok());
}

TEST(BetweennessTest, PathCenterDominates) {
  auto bc = Betweenness(Path(5));
  ASSERT_TRUE(bc.ok());
  // Middle node lies on all 2x3 pairs crossing it: score 4 for n=5 path
  // endpoints excluded... exact Brandes values: [0, 3, 4, 3, 0].
  EXPECT_DOUBLE_EQ((*bc)[0], 0.0);
  EXPECT_DOUBLE_EQ((*bc)[1], 3.0);
  EXPECT_DOUBLE_EQ((*bc)[2], 4.0);
  EXPECT_DOUBLE_EQ((*bc)[3], 3.0);
  EXPECT_DOUBLE_EQ((*bc)[4], 0.0);
}

TEST(BetweennessTest, StarCenterTakesAll) {
  const int leaves = 6;
  auto bc = Betweenness(Star(leaves));
  ASSERT_TRUE(bc.ok());
  // Center on all C(6,2) = 15 leaf pairs.
  EXPECT_DOUBLE_EQ((*bc)[0], 15.0);
  for (int i = 1; i <= leaves; ++i) EXPECT_DOUBLE_EQ((*bc)[AsIndex(i)], 0.0);
}

TEST(BetweennessTest, SplitsAcrossEqualPaths) {
  // A 4-cycle: two shortest paths between opposite corners; each middle
  // node carries half a dependency. Brandes: every node gets 0.5.
  WeightedGraphBuilder b(4);
  for (int i = 0; i < 4; ++i) (void)b.AddEdge(i, (i + 1) % 4, 1.0);
  auto bc = Betweenness(b.Build());
  ASSERT_TRUE(bc.ok());
  for (int i = 0; i < 4; ++i) EXPECT_NEAR((*bc)[AsIndex(i)], 0.5, 1e-9);
}

TEST(BetweennessTest, WeightedShortestPathsDiffer) {
  // Triangle where the direct edge 0-2 is "slow" (low weight = long).
  // Unweighted: 0-2 direct, node 1 unused. Weighted: route via 1.
  WeightedGraphBuilder b(3);
  (void)b.AddEdge(0, 1, 10.0);
  (void)b.AddEdge(1, 2, 10.0);
  (void)b.AddEdge(0, 2, 1.0);
  auto unweighted = Betweenness(b.Build(), /*weighted=*/false);
  auto weighted = Betweenness(b.Build(), /*weighted=*/true);
  ASSERT_TRUE(unweighted.ok());
  ASSERT_TRUE(weighted.ok());
  EXPECT_DOUBLE_EQ((*unweighted)[1], 0.0);
  EXPECT_GT((*weighted)[1], 0.5);
}

TEST(ClosenessTest, HarmonicOnPath) {
  auto hc = HarmonicCloseness(Path(3));
  ASSERT_TRUE(hc.ok());
  EXPECT_NEAR((*hc)[1], 2.0, 1e-9);        // 1/1 + 1/1
  EXPECT_NEAR((*hc)[0], 1.0 + 0.5, 1e-9);  // 1/1 + 1/2
}

TEST(ClosenessTest, DisconnectedComponentsAreFinite) {
  WeightedGraphBuilder b(4);
  (void)b.AddEdge(0, 1, 1.0);
  (void)b.AddEdge(2, 3, 1.0);
  auto hc = HarmonicCloseness(b.Build());
  ASSERT_TRUE(hc.ok());
  for (double v : *hc) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_NEAR(v, 1.0, 1e-9);
  }
}

TEST(ClusteringTest, TriangleIsFullyClustered) {
  WeightedGraphBuilder b(3);
  (void)b.AddEdge(0, 1, 1.0);
  (void)b.AddEdge(1, 2, 1.0);
  (void)b.AddEdge(0, 2, 1.0);
  auto cc = LocalClusteringCoefficients(b.Build());
  for (double v : cc) EXPECT_DOUBLE_EQ(v, 1.0);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(b.Build()), 1.0);
}

TEST(ClusteringTest, StarHasZeroClustering) {
  auto g = Star(5);
  auto cc = LocalClusteringCoefficients(g);
  for (double v : cc) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 0.0);
}

TEST(ClusteringTest, PartialTriangle) {
  // Square with one diagonal: diagonal endpoints see 2 closed wedges of 3
  // (cc = 2/3); the other two corners sit in one triangle each (cc = 1).
  WeightedGraphBuilder b(4);
  (void)b.AddEdge(0, 1, 1.0);
  (void)b.AddEdge(1, 2, 1.0);
  (void)b.AddEdge(2, 3, 1.0);
  (void)b.AddEdge(3, 0, 1.0);
  (void)b.AddEdge(0, 2, 1.0);
  auto cc = LocalClusteringCoefficients(b.Build());
  EXPECT_NEAR(cc[0], 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(cc[2], 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(cc[1], 1.0);
  EXPECT_DOUBLE_EQ(cc[3], 1.0);
}

TEST(GiniTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(GiniCoefficient({}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient({5.0, 5.0, 5.0}), 0.0);
}

TEST(GiniTest, KnownValues) {
  // One person owns everything among n: G = (n-1)/n.
  EXPECT_NEAR(GiniCoefficient({0.0, 0.0, 0.0, 10.0}), 0.75, 1e-9);
  // Linear distribution 1..n: G = (n-1)/(3n)... for {1,2,3}: 2/9.
  EXPECT_NEAR(GiniCoefficient({1.0, 2.0, 3.0}), 2.0 / 9.0, 1e-9);
}

TEST(GiniTest, InvariantToScaleAndOrder) {
  EXPECT_NEAR(GiniCoefficient({3.0, 1.0, 2.0}),
              GiniCoefficient({30.0, 10.0, 20.0}), 1e-12);
}

TEST(GraphCountsTest, TableTwoStyleCounters) {
  graphdb::PropertyGraph g;
  auto a = g.AddNode("S"), b = g.AddNode("S"), c = g.AddNode("S");
  (void)g.AddEdge(a, b, "TRIP");
  (void)g.AddEdge(a, b, "TRIP");  // parallel
  (void)g.AddEdge(b, a, "TRIP");  // reverse direction
  (void)g.AddEdge(a, a, "TRIP");  // loop
  (void)g.AddEdge(b, c, "TRIP");
  auto counts = CountGraph(g, "TRIP");
  EXPECT_EQ(counts.nodes, 3u);
  EXPECT_EQ(counts.trips, 5u);
  EXPECT_EQ(counts.directed_edges, 4u);           // ab, ba, aa, bc
  EXPECT_EQ(counts.directed_edges_no_loops, 3u);
  EXPECT_EQ(counts.undirected_edges, 3u);         // {ab}, {aa}, {bc}
  EXPECT_EQ(counts.undirected_edges_no_loops, 2u);
  EXPECT_NE(counts.ToString().find("#trips 5"), std::string::npos);
}

TEST(SummaryTest, WeightedGraphSummary) {
  WeightedGraphBuilder b(3);
  (void)b.AddEdge(0, 1, 2.0);
  (void)b.AddEdge(1, 2, 4.0);
  auto s = Summarize(b.Build());
  EXPECT_EQ(s.nodes, 3u);
  EXPECT_EQ(s.edges, 2u);
  EXPECT_DOUBLE_EQ(s.total_weight, 6.0);
  EXPECT_DOUBLE_EQ(s.max_strength, 6.0);
  EXPECT_NEAR(s.density, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(s.mean_degree, 4.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace bikegraph::metrics
