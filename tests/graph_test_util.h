// Shared graph-equality assertion for the streaming test suites: the
// strictest possible identity — every field and every adjacency entry
// bitwise-equal (EXPECT_EQ on doubles, never NEAR). Used by the
// jittered-replay, backend-equivalence, and delta-freeze locks, which
// all promise bit-for-bit reproduction.
#pragma once

#include <cstddef>
#include <cstdint>

#include "graphdb/weighted_graph.h"

#include <gtest/gtest.h>

namespace bikegraph {

inline void ExpectGraphsIdentical(const graphdb::WeightedGraph& a,
                                  const graphdb::WeightedGraph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  ASSERT_EQ(a.self_loop_count(), b.self_loop_count());
  EXPECT_EQ(a.total_weight(), b.total_weight());  // bitwise, not NEAR
  for (size_t u = 0; u < a.node_count(); ++u) {
    const auto ui = static_cast<int32_t>(u);
    ASSERT_EQ(a.self_weight(ui), b.self_weight(ui)) << "node " << u;
    ASSERT_EQ(a.strength(ui), b.strength(ui)) << "node " << u;
    auto na = a.neighbors(ui);
    auto nb = b.neighbors(ui);
    ASSERT_EQ(na.size(), nb.size()) << "node " << u;
    for (size_t i = 0; i < na.size(); ++i) {
      ASSERT_EQ(na[i].node, nb[i].node) << "node " << u << " nb " << i;
      ASSERT_EQ(na[i].weight, nb[i].weight) << "node " << u << " nb " << i;
    }
  }
}

}  // namespace bikegraph
