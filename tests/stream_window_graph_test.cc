// SlidingWindowGraph: ingest/expiry delta bookkeeping, the expiry ring,
// and the window-profile edge cases the streaming path hits
// (zero-activity stations, single-trip windows, profiles that empty out
// on expiry).

#include <array>
#include <cstdint>

#include "core/civil_time.h"
#include "core/rng.h"
#include "stream/window_graph.h"

#include <gtest/gtest.h>

#include "core/checked_cast.h"

using bikegraph::AsIndex;

namespace bikegraph::stream {

/// Test-only backdoor (befriended by SlidingWindowGraph): forges the
/// desync the ApplyDelta guard defends against — an expiry reversal for a
/// pair the map has never seen — which the public API cannot produce.
struct WindowGraphTestPeer {
  static void ForceReverseUnknownPair(SlidingWindowGraph* w) {
    SlidingWindowGraph::RingEntry entry;
    entry.start_seconds = 0;
    entry.from = 0;
    entry.to = 1;
    entry.day = 0;
    entry.hour = 0;
    w->ApplyDelta(entry, -1);
  }
};

namespace {

CivilTime At(int day, int hour, int minute = 0) {
  // Jan 2020; 2020-01-06 is a Monday, so `day` 6 = Monday.
  return CivilTime::FromCalendar(2020, 1, day, hour, minute).ValueOrDie();
}

TripEvent Trip(int32_t from, int32_t to, CivilTime start,
               int64_t rental_id = 1) {
  TripEvent e;
  e.rental_id = rental_id;
  e.from_station = from;
  e.to_station = to;
  e.start_time = start;
  e.end_time = start.AddSeconds(600);
  return e;
}

TEST(SlidingWindowGraphTest, IngestAppliesDeltas) {
  SlidingWindowGraph w({/*station_count=*/4, /*window_seconds=*/86400});
  ASSERT_TRUE(w.Ingest(Trip(0, 1, At(6, 8))).ok());   // Monday 08:00
  ASSERT_TRUE(w.Ingest(Trip(1, 0, At(6, 9))).ok());
  ASSERT_TRUE(w.Ingest(Trip(2, 2, At(6, 13))).ok());  // loop trip

  EXPECT_EQ(w.trip_count(), 3u);
  EXPECT_EQ(w.TripsBetween(0, 1), 2);
  EXPECT_EQ(w.TripsBetween(1, 0), 2);  // unordered
  EXPECT_EQ(w.TripsBetween(2, 2), 1);
  EXPECT_EQ(w.TripsBetween(0, 2), 0);
  // Monday = day 0; both endpoints counted, loops twice.
  EXPECT_EQ(w.DayCounts(0)[0], 2);
  EXPECT_EQ(w.HourCounts(0)[8], 1);
  EXPECT_EQ(w.HourCounts(0)[9], 1);
  EXPECT_EQ(w.DayCounts(2)[0], 2);
  EXPECT_EQ(w.HourCounts(2)[13], 2);
  EXPECT_EQ(w.EndpointCount(2), 2);
  // Station 3 never traded: zero activity.
  EXPECT_EQ(w.EndpointCount(3), 0);
}

TEST(SlidingWindowGraphTest, RejectsBadEvents) {
  // A negative window is a misconfiguration, not a landmark window.
  SlidingWindowGraph negative({2, -3600});
  EXPECT_FALSE(negative.Ingest(Trip(0, 1, At(6, 8))).ok());

  SlidingWindowGraph w({2, 3600});
  EXPECT_FALSE(w.Ingest(Trip(-1, 0, At(6, 8))).ok());
  EXPECT_FALSE(w.Ingest(Trip(0, 2, At(6, 8))).ok());
  ASSERT_TRUE(w.Ingest(Trip(0, 1, At(6, 9))).ok());
  // Time regression: the stream must be ordered by start time.
  EXPECT_FALSE(w.Ingest(Trip(0, 1, At(6, 8))).ok());
  // Equal timestamps are fine.
  EXPECT_TRUE(w.Ingest(Trip(1, 0, At(6, 9))).ok());
}

TEST(SlidingWindowGraphTest, SingleTripWindowEmptiesOnExpiry) {
  SlidingWindowGraph w({3, /*window_seconds=*/3600});
  ASSERT_TRUE(w.Ingest(Trip(0, 1, At(6, 8))).ok());
  EXPECT_EQ(w.trip_count(), 1u);
  EXPECT_EQ(w.pair_count(), 1u);

  // Advance just inside the window: the trip survives.
  w.Advance(At(6, 8).AddSeconds(3599));
  EXPECT_EQ(w.trip_count(), 1u);
  // The boundary is inclusive of the window: at exactly start + window
  // the trip has fallen out of (watermark - window, watermark].
  w.Advance(At(6, 9));
  EXPECT_EQ(w.trip_count(), 0u);
  EXPECT_EQ(w.pair_count(), 0u);
  EXPECT_EQ(w.TripsBetween(0, 1), 0);
  // Profiles emptied out with it — no floating-point residue.
  for (int d = 0; d < 7; ++d) {
    EXPECT_EQ(w.DayCounts(0)[AsIndex(d)], 0);
    EXPECT_EQ(w.DayCounts(1)[AsIndex(d)], 0);
  }
  for (int h = 0; h < 24; ++h) EXPECT_EQ(w.HourCounts(0)[AsIndex(h)], 0);
  EXPECT_EQ(w.EndpointCount(0), 0);
  // Monotonic counters keep the history.
  EXPECT_EQ(w.ingested_count(), 1u);
  EXPECT_EQ(w.expired_count(), 1u);
}

TEST(SlidingWindowGraphTest, AdvanceNeverBlocksLaggingIngest) {
  // Live pattern: the caller advances to wall-clock time during a lull;
  // the next trip to arrive *ends* now but *started* earlier. Ordering
  // is only enforced between events, not against the advanced watermark.
  SlidingWindowGraph w({2, /*window_seconds=*/3600});
  ASSERT_TRUE(w.Ingest(Trip(0, 1, At(6, 8))).ok());
  w.Advance(At(6, 10));  // quiet stream: 08:00 trip expired
  EXPECT_EQ(w.trip_count(), 0u);

  // A trip that started at 09:40 (before the 10:00 watermark) ingests
  // fine and is live: it is inside (09:00, 10:00].
  ASSERT_TRUE(w.Ingest(Trip(1, 0, At(6, 9, 40))).ok());
  EXPECT_EQ(w.trip_count(), 1u);
  EXPECT_EQ(w.watermark(), At(6, 10));  // watermark never goes backwards

  // A straggler entirely outside the window is accepted and immediately
  // retired — counters stay consistent, nothing lingers.
  w.Advance(At(6, 12));
  ASSERT_TRUE(w.Ingest(Trip(0, 0, At(6, 10, 30))).ok());
  EXPECT_EQ(w.trip_count(), 0u);
  EXPECT_EQ(w.TripsBetween(0, 0), 0);
  EXPECT_EQ(w.EndpointCount(0), 0);
  // Events must still be ordered among themselves.
  EXPECT_FALSE(w.Ingest(Trip(0, 1, At(6, 10))).ok());
}

// Satellite regression (PR 4): the window is the half-open interval
// (watermark - W, watermark] and window_start() is its *exclusive* lower
// bound — an event starting exactly there is already outside. Locked at
// the cutoff and one second to either side.
TEST(SlidingWindowGraphTest, WindowBoundaryIsHalfOpenAtTheCutoff) {
  const int64_t window = 3600;
  const CivilTime mark = At(6, 12);
  const CivilTime cutoff = mark.AddSeconds(-window);
  struct Case {
    int64_t offset;
    bool inside;
  };
  for (const Case& c :
       {Case{-1, false}, Case{0, false}, Case{1, true}}) {
    SlidingWindowGraph w({2, window});
    w.Advance(mark);
    EXPECT_EQ(w.window_start(), cutoff);
    const CivilTime start = cutoff.AddSeconds(c.offset);
    ASSERT_TRUE(w.Ingest(Trip(0, 1, start)).ok()) << c.offset;
    EXPECT_EQ(w.trip_count(), c.inside ? 1u : 0u) << c.offset;
    EXPECT_EQ(w.Contains(start), c.inside) << c.offset;
    EXPECT_EQ(w.EndpointCount(0), c.inside ? 1 : 0) << c.offset;
  }
}

TEST(SlidingWindowGraphTest, ContainsMatchesTheWindowInterval) {
  SlidingWindowGraph w({2, 3600});
  // Before any event or Advance there is no window at all.
  EXPECT_FALSE(w.Contains(At(6, 8)));
  w.Advance(At(6, 12));
  EXPECT_FALSE(w.Contains(w.window_start()));              // exclusive
  EXPECT_TRUE(w.Contains(w.window_start().AddSeconds(1)))  // first inside
      << "window must include the instant after its exclusive start";
  EXPECT_TRUE(w.Contains(w.watermark()));                  // inclusive
  EXPECT_FALSE(w.Contains(w.watermark().AddSeconds(1)));

  // Landmark windows contain all of the past, none of the future.
  SlidingWindowGraph landmark({2, 0});
  ASSERT_TRUE(landmark.Ingest(Trip(0, 1, At(6, 8))).ok());
  EXPECT_TRUE(landmark.Contains(At(1, 0)));
  EXPECT_TRUE(landmark.Contains(At(6, 8)));
  EXPECT_FALSE(landmark.Contains(At(6, 9)));
}

// Satellite regression (PR 4): a negative-delta reversal for a pair the
// map has no record of must be a loud skip (counted, state untouched),
// not a dereference of end() — pre-guard this was undefined behaviour
// that ASan flagged as a container-overflow.
TEST(SlidingWindowGraphTest, ExpiryDesyncIsLoudNotSilentCorruption) {
  SlidingWindowGraph w({2, 3600});
  EXPECT_EQ(w.delta_desync_count(), 0u);
#ifdef NDEBUG
  WindowGraphTestPeer::ForceReverseUnknownPair(&w);
  EXPECT_EQ(w.delta_desync_count(), 1u);
  // The skipped reversal touched nothing: no phantom negative counts.
  EXPECT_EQ(w.TripsBetween(0, 1), 0);
  EXPECT_EQ(w.EndpointCount(0), 0);
  EXPECT_EQ(w.EndpointCount(1), 0);
  EXPECT_EQ(w.pair_count(), 0u);
#else
  // With assertions enabled the guard aborts instead, which is just as
  // loud.
  EXPECT_DEATH(WindowGraphTestPeer::ForceReverseUnknownPair(&w),
               "unknown station pair");
#endif
  // A healthy ingest/expiry cycle never trips the guard.
  SlidingWindowGraph healthy({3, 1800});
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        healthy.Ingest(Trip(i % 3, (i + 1) % 3, At(6, 8).AddSeconds(i * 120),
                            i))
            .ok());
  }
  EXPECT_EQ(healthy.delta_desync_count(), 0u);
}

TEST(SlidingWindowGraphTest, LandmarkWindowNeverExpires) {
  SlidingWindowGraph w({2, /*window_seconds=*/0});
  ASSERT_TRUE(w.Ingest(Trip(0, 1, At(6, 8))).ok());
  w.Advance(At(20, 23));  // two weeks later
  ASSERT_TRUE(w.Ingest(Trip(1, 0, At(20, 23))).ok());
  EXPECT_EQ(w.trip_count(), 2u);
  EXPECT_EQ(w.TripsBetween(0, 1), 2);
  EXPECT_EQ(w.window_start().seconds_since_epoch(), INT64_MIN);
}

TEST(SlidingWindowGraphTest, ProfilesMatchCountersAndZeroActivity) {
  SlidingWindowGraph w({3, 86400});
  ASSERT_TRUE(w.Ingest(Trip(0, 1, At(6, 8))).ok());
  ASSERT_TRUE(w.Ingest(Trip(0, 1, At(6, 17))).ok());
  analysis::StationProfiles p = w.Profiles();
  ASSERT_EQ(p.day.size(), 3u);
  EXPECT_DOUBLE_EQ(p.day[0][0], 2.0);
  EXPECT_DOUBLE_EQ(p.hour[1][8], 1.0);
  EXPECT_DOUBLE_EQ(p.hour[1][17], 1.0);
  // Zero-activity station: all-zero profile, and the similarity
  // convention treats it as "no evidence of dissimilarity".
  for (int d = 0; d < 7; ++d) EXPECT_DOUBLE_EQ(p.day[2][AsIndex(d)], 0.0);
  EXPECT_DOUBLE_EQ(
      p.Similarity(2, 0, analysis::TemporalGranularity::kDay), 1.0);
  EXPECT_DOUBLE_EQ(
      p.Similarity(2, 2, analysis::TemporalGranularity::kHour), 1.0);
}

TEST(SlidingWindowGraphTest, ForEachPairIsSortedAndComplete) {
  SlidingWindowGraph w({5, 0});
  ASSERT_TRUE(w.Ingest(Trip(3, 1, At(6, 8))).ok());
  ASSERT_TRUE(w.Ingest(Trip(0, 4, At(6, 9))).ok());
  ASSERT_TRUE(w.Ingest(Trip(1, 3, At(6, 10))).ok());
  ASSERT_TRUE(w.Ingest(Trip(2, 2, At(6, 11))).ok());

  std::vector<std::array<int64_t, 3>> seen;
  w.ForEachPair([&](int32_t u, int32_t v, int64_t trips) {
    seen.push_back({u, v, trips});
  });
  const std::vector<std::array<int64_t, 3>> expected = {
      {0, 4, 1}, {1, 3, 2}, {2, 2, 1}};
  EXPECT_EQ(seen, expected);
}

// Drive many ingest/expiry cycles through a tiny ring and check the live
// state against a brute-force recomputation — the ring re-linearisation
// and delta reversal can't drift.
TEST(SlidingWindowGraphTest, RandomisedStreamMatchesBruteForce) {
  const int64_t window = 1800;
  const size_t stations = 6;
  SlidingWindowGraph w({stations, window});
  Rng rng(42);
  std::vector<TripEvent> all;
  CivilTime t = At(6, 0);
  for (int i = 0; i < 2000; ++i) {
    t = t.AddSeconds(static_cast<int64_t>(rng.NextBounded(120)));
    TripEvent e = Trip(static_cast<int32_t>(rng.NextBounded(stations)),
                       static_cast<int32_t>(rng.NextBounded(stations)), t,
                       i);
    all.push_back(e);
    ASSERT_TRUE(w.Ingest(e).ok());
  }
  // Brute force: trips with start in (t - window, t].
  const int64_t cutoff = t.seconds_since_epoch() - window;
  std::vector<std::vector<int64_t>> counts(stations,
                                           std::vector<int64_t>(stations, 0));
  std::vector<std::array<int64_t, 24>> hours(stations);
  for (auto& h : hours) h.fill(0);
  size_t live = 0;
  for (const TripEvent& e : all) {
    if (e.start_time.seconds_since_epoch() <= cutoff) continue;
    ++live;
    int32_t u = std::min(e.from_station, e.to_station);
    int32_t v = std::max(e.from_station, e.to_station);
    counts[AsIndex(u)][AsIndex(v)] += 1;
    hours[AsIndex(e.from_station)][AsIndex(e.hour())] += 1;
    hours[AsIndex(e.to_station)][AsIndex(e.hour())] += 1;
  }
  EXPECT_EQ(w.trip_count(), live);
  // 2000 ingest/expiry cycles through a tiny ring: the ring and pair map
  // never desynced (the ApplyDelta guard stayed silent).
  EXPECT_EQ(w.delta_desync_count(), 0u);
  for (size_t u = 0; u < stations; ++u) {
    for (size_t v = u; v < stations; ++v) {
      EXPECT_EQ(w.TripsBetween(static_cast<int32_t>(u),
                               static_cast<int32_t>(v)),
                counts[u][v])
          << u << "," << v;
    }
    EXPECT_EQ(w.HourCounts(static_cast<int32_t>(u)),
              hours[u]);
  }
}

// Satellite regression (PR 7): PairState::trips is int32_t, but a
// checkpointed landmark state carries int64_t counts. Pre-fix, restore
// narrowed with a bare static_cast, so a corrupt count of 2^32 + 1 came
// back as 1 trip — silently. It must be rejected as DataLoss instead.
TEST(SlidingWindowGraphTest, RestoreRejectsPairCountOverflowingInt32) {
  SlidingWindowGraph w({2, /*window_seconds=*/0});
  ASSERT_TRUE(w.Ingest(Trip(0, 1, At(6, 8))).ok());
  WindowGraphState state = w.ExportState();
  ASSERT_EQ(state.pairs.size(), 1u);

  // Round trip of the untampered state still works.
  SlidingWindowGraph restored({2, 0});
  ASSERT_TRUE(restored.RestoreState(state).ok());
  EXPECT_EQ(restored.TripsBetween(0, 1), 1);

  state.pairs[0].second = (int64_t{1} << 32) + 1;  // truncates to 1
  SlidingWindowGraph tampered({2, 0});
  const Status status = tampered.RestoreState(state);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace bikegraph::stream
