#include <cmath>

#include "analysis/community_stats.h"
#include "analysis/temporal_graph.h"
#include "core/civil_time.h"
#include "expansion/pipeline.h"
#include "geo/haversine.h"

#include <gtest/gtest.h>

namespace bikegraph::analysis {
namespace {

using geo::LatLon;
using geo::Offset;

const LatLon kCenter(53.35, -6.26);

/// Builds a tiny trip multigraph directly: 3 stations; edges carry day/hour.
graphdb::PropertyGraph TinyTrips() {
  graphdb::PropertyGraph g;
  for (int i = 0; i < 3; ++i) g.AddNode("Station");
  auto add = [&](int from, int to, int day, int hour) {
    auto e = g.AddEdge(from, to, "TRIP");
    (void)g.SetEdgeProperty(*e, "day", day);
    (void)g.SetEdgeProperty(*e, "hour", hour);
  };
  // Stations 0,1: weekday-morning trade. Station 2: weekend-midday loops.
  for (int i = 0; i < 10; ++i) add(0, 1, /*day=*/1, /*hour=*/8);
  for (int i = 0; i < 10; ++i) add(1, 0, 2, 9);
  for (int i = 0; i < 8; ++i) add(2, 2, 5, 13);
  add(0, 2, 1, 8);
  return g;
}

TEST(ProfilesTest, ExtractCountsEndpoints) {
  auto profiles = ExtractStationProfiles(TinyTrips());
  ASSERT_TRUE(profiles.ok());
  // Station 0: 10 out (day1 h8) + 10 in (day2 h9) + 1 out (day1 h8).
  EXPECT_DOUBLE_EQ(profiles->day[0][1], 11.0);
  EXPECT_DOUBLE_EQ(profiles->day[0][2], 10.0);
  EXPECT_DOUBLE_EQ(profiles->hour[0][8], 11.0);
  // Station 2: self-loops count twice per trip (both endpoints).
  EXPECT_DOUBLE_EQ(profiles->day[2][5], 16.0);
  EXPECT_DOUBLE_EQ(profiles->hour[2][13], 16.0);
}

TEST(ProfilesTest, MissingPropertiesFail) {
  graphdb::PropertyGraph g;
  g.AddNode("S");
  (void)g.AddEdge(0, 0, "TRIP");  // no day/hour
  EXPECT_FALSE(ExtractStationProfiles(g).ok());
}

TEST(ProfilesTest, SimilarityBounds) {
  auto profiles = ExtractStationProfiles(TinyTrips());
  ASSERT_TRUE(profiles.ok());
  // Identical profile => 1.
  EXPECT_DOUBLE_EQ(profiles->Similarity(0, 0, TemporalGranularity::kDay), 1.0);
  // Null granularity => always 1.
  EXPECT_DOUBLE_EQ(profiles->Similarity(0, 2, TemporalGranularity::kNull),
                   1.0);
  // Weekday pair vs weekend station: dissimilar.
  double d01 = profiles->Similarity(0, 1, TemporalGranularity::kDay);
  double d02 = profiles->Similarity(0, 2, TemporalGranularity::kDay);
  EXPECT_GT(d01, d02);
  EXPECT_GE(d02, 0.0);
  EXPECT_LE(d01, 1.0);
}

TEST(TemporalGraphTest, NullGranularityCountsTrips) {
  auto g = BuildTemporalGraph(TinyTrips());
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->WeightBetween(0, 1), 20.0);
  EXPECT_DOUBLE_EQ(g->self_weight(2), 8.0);
  EXPECT_DOUBLE_EQ(g->WeightBetween(0, 2), 1.0);
}

TEST(TemporalGraphTest, TemporalModulationWeakensDissimilarPairs) {
  TemporalGraphOptions day_opts{TemporalGranularity::kDay, 0.05, 1.0};
  auto basic = BuildTemporalGraph(TinyTrips());
  auto day = BuildTemporalGraph(TinyTrips(), day_opts);
  ASSERT_TRUE(basic.ok());
  ASSERT_TRUE(day.ok());
  // The 0-2 edge joins temporally dissimilar stations: its relative weight
  // must shrink under the day projection.
  double basic_ratio = basic->WeightBetween(0, 2) / basic->WeightBetween(0, 1);
  double day_ratio = day->WeightBetween(0, 2) / day->WeightBetween(0, 1);
  EXPECT_LT(day_ratio, basic_ratio);
}

TEST(TemporalGraphTest, ContrastSharpens) {
  TemporalGraphOptions soft{TemporalGranularity::kHour, 0.0, 1.0};
  TemporalGraphOptions sharp{TemporalGranularity::kHour, 0.0, 8.0};
  auto g_soft = BuildTemporalGraph(TinyTrips(), soft);
  auto g_sharp = BuildTemporalGraph(TinyTrips(), sharp);
  ASSERT_TRUE(g_soft.ok());
  ASSERT_TRUE(g_sharp.ok());
  EXPECT_LT(g_sharp->WeightBetween(0, 2), g_soft->WeightBetween(0, 2));
  // Similar pairs keep weight ~unchanged: trips between 0 and 1 are at
  // nearby hours, so sharpening must hit 0-2 harder than 0-1.
  EXPECT_LT(g_sharp->WeightBetween(0, 2) / g_soft->WeightBetween(0, 2),
            g_sharp->WeightBetween(0, 1) / g_soft->WeightBetween(0, 1) + 1e-9);
}

TEST(TemporalGraphTest, FloorBoundsWeights) {
  TemporalGraphOptions opts{TemporalGranularity::kDay, 0.2, 4.0};
  auto g = BuildTemporalGraph(TinyTrips(), opts);
  ASSERT_TRUE(g.ok());
  // Every projected edge weight is >= floor * trip count.
  EXPECT_GE(g->WeightBetween(0, 2), 0.2 * 1.0 - 1e-12);
  EXPECT_LE(g->WeightBetween(0, 1), 20.0 + 1e-12);
}

TEST(TemporalGraphTest, RejectsBadOptions) {
  TemporalGraphOptions opts;
  opts.similarity_floor = 1.5;
  EXPECT_FALSE(BuildTemporalGraph(TinyTrips(), opts).ok());
}

// ---------------------------------------------------------------------------
// Edge cases the sliding-window path hits: zero-activity stations,
// single-trip graphs, and profiles that have drained back to empty.
// ---------------------------------------------------------------------------

TEST(TemporalGraphTest, ZeroActivityStationsStayIsolatedButValid) {
  graphdb::PropertyGraph g;
  for (int i = 0; i < 4; ++i) g.AddNode("Station");
  auto e = g.AddEdge(0, 1, "TRIP");
  (void)g.SetEdgeProperty(*e, "day", 2);
  (void)g.SetEdgeProperty(*e, "hour", 8);
  // Stations 2 and 3 never trade: the projections must keep them as
  // isolated nodes at every granularity, not drop or crash on them.
  for (TemporalGranularity granularity :
       {TemporalGranularity::kNull, TemporalGranularity::kDay,
        TemporalGranularity::kHour}) {
    TemporalGraphOptions opts;
    opts.granularity = granularity;
    auto projected = BuildTemporalGraph(g, opts);
    ASSERT_TRUE(projected.ok());
    EXPECT_EQ(projected->node_count(), 4u);
    EXPECT_EQ(projected->degree(2), 0u);
    EXPECT_DOUBLE_EQ(projected->strength(3), 0.0);
  }
  // Zero-activity profiles compare as "no evidence of dissimilarity".
  auto profiles = ExtractStationProfiles(g);
  ASSERT_TRUE(profiles.ok());
  EXPECT_DOUBLE_EQ(profiles->Similarity(2, 3, TemporalGranularity::kDay), 1.0);
  EXPECT_DOUBLE_EQ(profiles->Similarity(2, 0, TemporalGranularity::kHour),
                   1.0);
}

TEST(TemporalGraphTest, SingleTripGraphKeepsFullWeight) {
  graphdb::PropertyGraph g;
  g.AddNode("Station");
  g.AddNode("Station");
  auto e = g.AddEdge(0, 1, "TRIP");
  (void)g.SetEdgeProperty(*e, "day", 4);
  (void)g.SetEdgeProperty(*e, "hour", 18);
  // A single trip gives both endpoints identical one-spike profiles, so
  // similarity is exactly 1 and the projected weight stays 1 at every
  // granularity and any contrast.
  for (double contrast : {1.0, 8.0, 28.0}) {
    TemporalGraphOptions opts{TemporalGranularity::kHour, 0.05, contrast};
    auto projected = BuildTemporalGraph(g, opts);
    ASSERT_TRUE(projected.ok());
    EXPECT_DOUBLE_EQ(projected->WeightBetween(0, 1), 1.0);
  }
}

TEST(TemporalGraphTest, SingleLoopTripCountsBothEndpoints) {
  graphdb::PropertyGraph g;
  g.AddNode("Station");
  auto e = g.AddEdge(0, 0, "TRIP");
  (void)g.SetEdgeProperty(*e, "day", 0);
  (void)g.SetEdgeProperty(*e, "hour", 7);
  auto profiles = ExtractStationProfiles(g);
  ASSERT_TRUE(profiles.ok());
  // Loop trips contribute both endpoints to the same station.
  EXPECT_DOUBLE_EQ(profiles->day[0][0], 2.0);
  EXPECT_DOUBLE_EQ(profiles->hour[0][7], 2.0);
  TemporalGraphOptions opts{TemporalGranularity::kDay, 0.1, 2.0};
  auto projected = BuildTemporalGraph(g, opts);
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->self_loop_count(), 1u);
  EXPECT_DOUBLE_EQ(projected->self_weight(0), 1.0);
}

TEST(TemporalGraphTest, EmptyTripGraphProjectsToEmptyGraph) {
  // The state a drained window reaches: stations exist, nothing trades.
  graphdb::PropertyGraph g;
  for (int i = 0; i < 3; ++i) g.AddNode("Station");
  for (TemporalGranularity granularity :
       {TemporalGranularity::kNull, TemporalGranularity::kDay,
        TemporalGranularity::kHour}) {
    TemporalGraphOptions opts;
    opts.granularity = granularity;
    auto projected = BuildTemporalGraph(g, opts);
    ASSERT_TRUE(projected.ok());
    EXPECT_EQ(projected->node_count(), 3u);
    EXPECT_EQ(projected->edge_count(), 0u);
    EXPECT_DOUBLE_EQ(projected->total_weight(), 0.0);
  }
  auto profiles = ExtractStationProfiles(g);
  ASSERT_TRUE(profiles.ok());
  // All-empty profiles: similarity defaults to 1 everywhere.
  EXPECT_DOUBLE_EQ(profiles->Similarity(0, 1, TemporalGranularity::kDay), 1.0);
  EXPECT_DOUBLE_EQ(profiles->Similarity(1, 2, TemporalGranularity::kHour),
                   1.0);
}

/// End-to-end mini network for the community-stats contract.
expansion::FinalNetwork MiniNetwork() {
  std::vector<data::LocationRecord> locs = {
      {1, kCenter, true, "A"},
      {2, Offset(kCenter, 600.0, 90.0), true, "B"},
      {3, Offset(kCenter, 5000.0, 0.0), true, "C"},
  };
  std::vector<data::RentalRecord> rentals;
  int64_t id = 1;
  auto add = [&](int64_t from, int64_t to, int day, int hour) {
    data::RentalRecord r;
    r.id = id++;
    r.bike_id = 1;
    r.start_time =
        CivilTime::FromCalendar(2020, 6, 1 + day, hour, 0, 0).ValueOrDie();
    r.end_time = r.start_time.AddSeconds(600);
    r.rental_location_id = from;
    r.return_location_id = to;
    rentals.push_back(r);
  };
  for (int i = 0; i < 6; ++i) add(1, 2, 0, 8);   // within AB block
  for (int i = 0; i < 4; ++i) add(2, 1, 1, 9);
  for (int i = 0; i < 5; ++i) add(3, 3, 5, 13);  // C loops
  add(1, 3, 2, 10);                              // cross
  add(3, 2, 3, 17);                              // cross
  data::Dataset ds(std::move(locs), std::move(rentals));
  auto pipeline = expansion::RunExpansionPipeline(ds);
  EXPECT_TRUE(pipeline.ok());
  return std::move(pipeline->final_network);
}

TEST(CommunityStatsTest, WithinOutInAccounting) {
  expansion::FinalNetwork net = MiniNetwork();
  community::Partition p;
  p.assignment = {0, 0, 1};  // A,B together; C alone
  auto stats = ComputeCommunityTripStats(net, p);
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_EQ(stats->rows.size(), 2u);
  EXPECT_EQ(stats->rows[0].within, 10);
  EXPECT_EQ(stats->rows[0].out, 1);
  EXPECT_EQ(stats->rows[0].in, 1);
  EXPECT_EQ(stats->rows[1].within, 5);
  EXPECT_EQ(stats->rows[0].old_stations, 2u);
  EXPECT_EQ(stats->rows[0].new_stations, 0u);
  // Paper "Total" column: within + out + in.
  EXPECT_EQ(stats->rows[0].total_trips(), 12);
  EXPECT_EQ(stats->TotalTrips(), 17);
  EXPECT_NEAR(stats->SelfContainedFraction(), 15.0 / 17.0, 1e-12);
}

TEST(CommunityStatsTest, SizeMismatchRejected) {
  expansion::FinalNetwork net = MiniNetwork();
  community::Partition p;
  p.assignment = {0, 0};  // too short
  EXPECT_FALSE(ComputeCommunityTripStats(net, p).ok());
  EXPECT_FALSE(CommunityDayShares(net, p).ok());
}

TEST(CommunityStatsTest, DaySharesSumToOne) {
  expansion::FinalNetwork net = MiniNetwork();
  community::Partition p;
  p.assignment = {0, 0, 1};
  auto shares = CommunityDayShares(net, p);
  ASSERT_TRUE(shares.ok());
  for (const auto& row : *shares) {
    double total = 0.0;
    for (double v : row) total += v;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  // Community 1 (station C) is weekend-heavy: day 5 dominates.
  EXPECT_GT((*shares)[1][5], 0.5);
}

TEST(CommunityStatsTest, HourSharesAttributeToOriginCommunity) {
  expansion::FinalNetwork net = MiniNetwork();
  community::Partition p;
  p.assignment = {0, 0, 1};
  auto shares = CommunityHourShares(net, p);
  ASSERT_TRUE(shares.ok());
  // Community 0 trips start at hours 8,9,10 only.
  EXPECT_GT((*shares)[0][8], 0.4);
  EXPECT_DOUBLE_EQ((*shares)[0][13], 0.0);
  // Community 1 starts at 13 and 17.
  EXPECT_GT((*shares)[1][13], 0.5);
}

TEST(PatternTest, DayPatternClassification) {
  std::array<double, 7> commute = {0.18, 0.18, 0.18, 0.18, 0.18, 0.05, 0.05};
  std::array<double, 7> leisure = {0.08, 0.08, 0.08, 0.08, 0.12, 0.30, 0.26};
  std::array<double, 7> flat = {0.14, 0.14, 0.14, 0.15, 0.15, 0.14, 0.14};
  EXPECT_EQ(ClassifyDayPattern(commute), DayPattern::kWeekdayCommute);
  EXPECT_EQ(ClassifyDayPattern(leisure), DayPattern::kWeekendLeisure);
  EXPECT_EQ(ClassifyDayPattern(flat), DayPattern::kFlat);
}

TEST(PatternTest, HourPatternClassification) {
  std::array<double, 24> commute{};
  commute[8] = 0.3;
  commute[17] = 0.3;
  commute[13] = 0.05;
  std::array<double, 24> midday{};
  midday[12] = 0.2;
  midday[13] = 0.3;
  midday[14] = 0.2;
  EXPECT_EQ(ClassifyHourPattern(commute), HourPattern::kCommute);
  EXPECT_EQ(ClassifyHourPattern(midday), HourPattern::kMiddayLeisure);
}

}  // namespace
}  // namespace bikegraph::analysis
