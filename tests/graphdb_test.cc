#include <cmath>

#include "graphdb/property_graph.h"
#include "graphdb/property_value.h"
#include "graphdb/weighted_graph.h"

#include <gtest/gtest.h>

namespace bikegraph::graphdb {
namespace {

TEST(PropertyValueTest, TypeChecksAndAccessors) {
  PropertyValue null_v;
  EXPECT_TRUE(null_v.is_null());
  EXPECT_FALSE(null_v.AsInt().ok());

  PropertyValue i(int64_t{42});
  EXPECT_TRUE(i.is_int());
  EXPECT_EQ(*i.AsInt(), 42);
  EXPECT_DOUBLE_EQ(*i.AsDouble(), 42.0);  // widening allowed
  EXPECT_FALSE(i.AsString().ok());

  PropertyValue d(3.5);
  EXPECT_TRUE(d.is_double());
  EXPECT_DOUBLE_EQ(*d.AsDouble(), 3.5);
  EXPECT_FALSE(d.AsInt().ok());  // no silent narrowing

  PropertyValue b(true);
  EXPECT_TRUE(b.is_bool());
  EXPECT_TRUE(*b.AsBool());

  PropertyValue s("hello");
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(*s.AsString(), "hello");
}

TEST(PropertyValueTest, NumericOrFallbacks) {
  EXPECT_DOUBLE_EQ(PropertyValue(int64_t{7}).NumericOr(0.0), 7.0);
  EXPECT_DOUBLE_EQ(PropertyValue(2.5).NumericOr(0.0), 2.5);
  EXPECT_DOUBLE_EQ(PropertyValue(true).NumericOr(0.0), 1.0);
  EXPECT_DOUBLE_EQ(PropertyValue("x").NumericOr(9.0), 9.0);
  EXPECT_DOUBLE_EQ(PropertyValue().NumericOr(-1.0), -1.0);
}

TEST(PropertyValueTest, ToStringForms) {
  EXPECT_EQ(PropertyValue().ToString(), "null");
  EXPECT_EQ(PropertyValue(int64_t{5}).ToString(), "5");
  EXPECT_EQ(PropertyValue(true).ToString(), "true");
  EXPECT_EQ(PropertyValue("abc").ToString(), "abc");
}

TEST(PropertyGraphTest, NodesAndEdges) {
  PropertyGraph g;
  NodeId a = g.AddNode("Station");
  NodeId b = g.AddNode("Station");
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(g.NodeCount(), 2u);

  auto e = g.AddEdge(a, b, "TRIP");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(g.EdgeCount(), 1u);
  EXPECT_EQ(g.EdgeFrom(*e), a);
  EXPECT_EQ(g.EdgeTo(*e), b);
  EXPECT_EQ(g.EdgeType(*e), "TRIP");
}

TEST(PropertyGraphTest, RejectsBadEndpoints) {
  PropertyGraph g;
  g.AddNode("X");
  EXPECT_FALSE(g.AddEdge(0, 5, "TRIP").ok());
  EXPECT_FALSE(g.AddEdge(-1, 0, "TRIP").ok());
}

TEST(PropertyGraphTest, ParallelEdgesAndLoops) {
  PropertyGraph g;
  NodeId a = g.AddNode("S"), b = g.AddNode("S");
  ASSERT_TRUE(g.AddEdge(a, b, "TRIP").ok());
  ASSERT_TRUE(g.AddEdge(a, b, "TRIP").ok());
  ASSERT_TRUE(g.AddEdge(a, a, "TRIP").ok());
  EXPECT_EQ(g.EdgeCount(), 3u);
  EXPECT_EQ(g.OutDegree(a), 3u);
  EXPECT_EQ(g.InDegree(a), 1u);
  EXPECT_EQ(g.InDegree(b), 2u);
  EXPECT_EQ(g.DistinctDirectedPairs(true), 2u);
  EXPECT_EQ(g.DistinctDirectedPairs(false), 1u);
  EXPECT_EQ(g.DistinctUndirectedPairs(true), 2u);
  EXPECT_EQ(g.DistinctUndirectedPairs(false), 1u);
}

TEST(PropertyGraphTest, Properties) {
  PropertyGraph g;
  NodeId a = g.AddNode("S");
  ASSERT_TRUE(g.SetNodeProperty(a, "lat", 53.35).ok());
  EXPECT_DOUBLE_EQ(*g.GetNodeProperty(a, "lat").AsDouble(), 53.35);
  EXPECT_TRUE(g.GetNodeProperty(a, "missing").is_null());
  EXPECT_FALSE(g.SetNodeProperty(99, "x", 1).ok());

  auto e = g.AddEdge(a, a, "TRIP");
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(g.SetEdgeProperty(*e, "day", 3).ok());
  EXPECT_EQ(*g.GetEdgeProperty(*e, "day").AsInt(), 3);
}

TEST(PropertyGraphTest, ForEachFiltersByLabelAndType) {
  PropertyGraph g;
  NodeId a = g.AddNode("Station");
  NodeId b = g.AddNode("Candidate");
  (void)g.AddEdge(a, b, "TRIP");
  (void)g.AddEdge(b, a, "NEAR");
  int stations = 0, trips = 0, all_edges = 0;
  g.ForEachNode("Station", [&](NodeId) { ++stations; });
  g.ForEachEdge("TRIP", [&](EdgeId) { ++trips; });
  g.ForEachEdge("", [&](EdgeId) { ++all_edges; });
  EXPECT_EQ(stations, 1);
  EXPECT_EQ(trips, 1);
  EXPECT_EQ(all_edges, 2);
}

TEST(WeightedGraphTest, EmptyGraphDefaults) {
  WeightedGraph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_DOUBLE_EQ(g.total_weight(), 0.0);
}

TEST(WeightedGraphTest, BuilderAccumulatesParallelEdges) {
  WeightedGraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(0, 1, 2.0).ok());
  ASSERT_TRUE(b.AddEdge(1, 0, 3.0).ok());  // same unordered pair
  ASSERT_TRUE(b.AddEdge(1, 2, 1.0).ok());
  WeightedGraph g = b.Build();
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_DOUBLE_EQ(g.WeightBetween(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(g.WeightBetween(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(g.WeightBetween(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 6.0);
}

TEST(WeightedGraphTest, SelfLoopConventions) {
  WeightedGraphBuilder b(2);
  ASSERT_TRUE(b.AddEdge(0, 0, 2.0).ok());
  ASSERT_TRUE(b.AddEdge(0, 1, 1.0).ok());
  WeightedGraph g = b.Build();
  EXPECT_EQ(g.self_loop_count(), 1u);
  EXPECT_DOUBLE_EQ(g.self_weight(0), 2.0);
  // strength counts the self-loop twice.
  EXPECT_DOUBLE_EQ(g.strength(0), 1.0 + 2.0 * 2.0);
  EXPECT_DOUBLE_EQ(g.strength(1), 1.0);
  // m = inter-edge + self weight.
  EXPECT_DOUBLE_EQ(g.total_weight(), 3.0);
  // Σ strength == 2m.
  EXPECT_DOUBLE_EQ(g.strength(0) + g.strength(1), 2.0 * g.total_weight());
}

TEST(WeightedGraphTest, BuilderRejectsBadInput) {
  WeightedGraphBuilder b(2);
  EXPECT_FALSE(b.AddEdge(-1, 0).ok());
  EXPECT_FALSE(b.AddEdge(0, 2).ok());
  EXPECT_FALSE(b.AddEdge(0, 1, -1.0).ok());
  EXPECT_FALSE(b.AddEdge(0, 1, std::nan("")).ok());
}

TEST(WeightedGraphTest, NeighborsAreSymmetric) {
  WeightedGraphBuilder b(4);
  (void)b.AddEdge(0, 1, 1.0);
  (void)b.AddEdge(0, 2, 2.0);
  (void)b.AddEdge(2, 3, 3.0);
  WeightedGraph g = b.Build();
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(3), 1u);
  bool found = false;
  for (const auto& nb : g.neighbors(2)) {
    if (nb.node == 0) {
      EXPECT_DOUBLE_EQ(nb.weight, 2.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ProjectionTest, CollapsesMultigraph) {
  PropertyGraph pg;
  NodeId a = pg.AddNode("S"), b = pg.AddNode("S");
  for (int i = 0; i < 3; ++i) (void)pg.AddEdge(a, b, "TRIP");
  (void)pg.AddEdge(b, a, "TRIP");
  (void)pg.AddEdge(a, a, "TRIP");
  auto g = ProjectUndirected(pg);
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->WeightBetween(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(g->self_weight(0), 1.0);
}

TEST(ProjectionTest, WeightPropertyAndLoopExclusion) {
  PropertyGraph pg;
  NodeId a = pg.AddNode("S"), b = pg.AddNode("S");
  auto e1 = pg.AddEdge(a, b, "TRIP");
  (void)pg.SetEdgeProperty(*e1, "w", 2.5);
  (void)pg.AddEdge(a, a, "TRIP");

  ProjectionOptions opts;
  // std::string{} rather than a raw literal assign: GCC 12's -Wrestrict
  // misfires on basic_string::operator=(const char*) under ASan's
  // inlining (bogus "may overlap" on the SSO copy) and the tree builds
  // -Werror; assigning an already-built string takes a different path.
  opts.weight_property = std::string("w");
  opts.include_loops = false;
  auto g = ProjectUndirected(pg, opts);
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->WeightBetween(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(g->self_weight(0), 0.0);
  EXPECT_EQ(g->self_loop_count(), 0u);
}

TEST(ProjectionTest, EdgeTypeFilter) {
  PropertyGraph pg;
  NodeId a = pg.AddNode("S"), b = pg.AddNode("S");
  (void)pg.AddEdge(a, b, "TRIP");
  (void)pg.AddEdge(a, b, "NEAR");
  ProjectionOptions opts;
  opts.edge_type = "TRIP";
  auto g = ProjectUndirected(pg, opts);
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->WeightBetween(0, 1), 1.0);
}

TEST(DigraphTest, BuildsCsrBothDirections) {
  DigraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(0, 1, 2.0).ok());
  ASSERT_TRUE(b.AddEdge(0, 1, 1.0).ok());  // merged
  ASSERT_TRUE(b.AddEdge(1, 2, 4.0).ok());
  Digraph g = b.Build();
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_DOUBLE_EQ(g.out_strength(0), 3.0);
  EXPECT_DOUBLE_EQ(g.in_strength(1), 3.0);
  EXPECT_DOUBLE_EQ(g.in_strength(2), 4.0);
  ASSERT_EQ(g.out_neighbors(0).size(), 1u);
  EXPECT_EQ(g.out_neighbors(0)[0].node, 1);
  ASSERT_EQ(g.in_neighbors(2).size(), 1u);
  EXPECT_EQ(g.in_neighbors(2)[0].node, 1);
}

TEST(DigraphTest, RejectsBadInput) {
  DigraphBuilder b(1);
  EXPECT_FALSE(b.AddEdge(0, 1).ok());
  EXPECT_FALSE(b.AddEdge(0, 0, -2.0).ok());
}

}  // namespace
}  // namespace bikegraph::graphdb
