// Warm-start (CommunityOptions::initial_partition) coverage: empty-seed
// runs must stay bit-identical to the cold path, singleton seeds must be
// indistinguishable from no seed, and real seeds must be honoured by the
// Louvain and label-propagation backends.

#include <cstdint>
#include <vector>

#include "community/detector.h"
#include "community/modularity.h"
#include "community/partition.h"
#include "core/rng.h"
#include "graphdb/weighted_graph.h"

#include <gtest/gtest.h>

#include "core/checked_cast.h"

using bikegraph::AsIndex;

namespace bikegraph::community {
namespace {

using graphdb::WeightedGraph;
using graphdb::WeightedGraphBuilder;

/// A planted-partition graph: `k` cliques of `size` nodes with random
/// intra-clique weights and a sparse ring of weak inter-clique edges.
WeightedGraph CliqueRing(int k, int size, uint64_t seed) {
  WeightedGraphBuilder b(static_cast<size_t>(k) * AsIndex(size));
  Rng rng(seed);
  for (int q = 0; q < k; ++q) {
    for (int i = 0; i < size; ++i) {
      for (int j = i + 1; j < size; ++j) {
        (void)b.AddEdge(q * size + i, q * size + j, 0.5 + rng.NextDouble());
      }
    }
    (void)b.AddEdge(q * size, ((q + 1) % k) * size + 1, 0.5);
  }
  return b.Build();
}

/// The planted ground truth of CliqueRing.
Partition PlantedPartition(int k, int size) {
  Partition p;
  p.assignment.resize(static_cast<size_t>(k) * AsIndex(size));
  for (int q = 0; q < k; ++q) {
    for (int i = 0; i < size; ++i) p.assignment[AsIndex(q * size + i)] = q;
  }
  return p;
}

void ExpectSameResult(const CommunityResult& a, const CommunityResult& b) {
  EXPECT_EQ(a.partition.assignment, b.partition.assignment);
  EXPECT_EQ(a.modularity, b.modularity);  // bit-identical, not just close
  EXPECT_EQ(a.quality, b.quality);
  EXPECT_EQ(a.levels, b.levels);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.level_partitions.size(), b.level_partitions.size());
}

class WarmStartAlgorithms
    : public ::testing::TestWithParam<AlgorithmId> {};

// A seed of singletons is exactly the cold start's initial state, so the
// result must match the unseeded run bit for bit — this locks the claim
// that adding the field changed nothing for existing callers.
TEST_P(WarmStartAlgorithms, SingletonSeedMatchesColdBitForBit) {
  for (uint64_t graph_seed : {7u, 21u, 99u}) {
    WeightedGraph g = CliqueRing(6, 8, graph_seed);

    DetectSpec cold;
    cold.algorithm = GetParam();
    auto cold_result = Detect(g, cold);
    ASSERT_TRUE(cold_result.ok());

    DetectSpec seeded = cold;
    seeded.options.initial_partition = Partition::Singletons(g.node_count());
    auto seeded_result = Detect(g, seeded);
    ASSERT_TRUE(seeded_result.ok());

    ExpectSameResult(*cold_result, *seeded_result);
  }
}

TEST_P(WarmStartAlgorithms, MismatchedSeedSizeRejected) {
  WeightedGraph g = CliqueRing(3, 5, 1);
  DetectSpec spec;
  spec.algorithm = GetParam();
  spec.options.initial_partition = Partition::Singletons(g.node_count() + 1);
  EXPECT_FALSE(Detect(g, spec).ok());
}

// Seeding with the planted communities must not lose quality: every move
// is strictly improving, so the warm result's modularity is at least the
// seed's.
TEST_P(WarmStartAlgorithms, PlantedSeedNeverDegrades) {
  WeightedGraph g = CliqueRing(6, 8, 3);
  Partition planted = PlantedPartition(6, 8);
  const double planted_q = Modularity(g, planted);
  ASSERT_GT(planted_q, 0.0);

  DetectSpec spec;
  spec.algorithm = GetParam();
  spec.options.initial_partition = planted;
  auto result = Detect(g, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->modularity, planted_q - 1e-9);
  // Valid dense partition over all nodes.
  ASSERT_EQ(result->partition.node_count(), g.node_count());
  EXPECT_GE(result->partition.CommunityCount(), 1u);
}

// Labels need not be dense: an arbitrary relabelling of the same grouping
// must behave like the renumbered one.
TEST_P(WarmStartAlgorithms, NonDenseSeedLabelsAccepted) {
  WeightedGraph g = CliqueRing(4, 6, 11);
  Partition sparse = PlantedPartition(4, 6);
  for (int32_t& label : sparse.assignment) label = label * 7 + 3;
  Partition dense = PlantedPartition(4, 6);

  DetectSpec spec;
  spec.algorithm = GetParam();
  spec.options.initial_partition = sparse;
  auto from_sparse = Detect(g, spec);
  spec.options.initial_partition = dense;
  auto from_dense = Detect(g, spec);
  ASSERT_TRUE(from_sparse.ok());
  ASSERT_TRUE(from_dense.ok());
  EXPECT_EQ(from_sparse->partition.assignment,
            from_dense->partition.assignment);
}

INSTANTIATE_TEST_SUITE_P(LouvainAndLabelProp, WarmStartAlgorithms,
                         ::testing::Values(AlgorithmId::kLouvain,
                                           AlgorithmId::kLabelPropagation),
                         [](const auto& param_info) {
                           return std::string(
                               AlgorithmName(param_info.param));
                         });

// Label propagation seeded with its own converged labels has nothing to
// do: one confirmation pass and out.
TEST(WarmStartTest, LabelPropagationSelfSeedConvergesImmediately) {
  WeightedGraph g = CliqueRing(6, 8, 5);
  DetectSpec spec;
  spec.algorithm = AlgorithmId::kLabelPropagation;
  auto cold = Detect(g, spec);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(cold->converged);

  spec.options.initial_partition = cold->partition;
  auto warm = Detect(g, spec);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->converged);
  EXPECT_EQ(warm->iterations, 1);
  EXPECT_EQ(warm->partition.assignment, cold->partition.assignment);
}

// Louvain seeded with its own final partition must keep it (no strictly
// improving move exists out of a Louvain-stable partition at level 0, and
// the seed beats singletons).
TEST(WarmStartTest, LouvainSelfSeedIsStable) {
  WeightedGraph g = CliqueRing(6, 8, 17);
  DetectSpec spec;
  auto cold = Detect(g, spec);
  ASSERT_TRUE(cold.ok());

  spec.options.initial_partition = cold->partition;
  auto warm = Detect(g, spec);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->partition.assignment, cold->partition.assignment);
  EXPECT_EQ(warm->modularity, cold->modularity);
}

// Algorithms that don't support seeding ignore it rather than erroring
// (the registry contract: the option matrix marks them "ignored").
TEST(WarmStartTest, FastGreedyAndInfomapIgnoreSeed) {
  WeightedGraph g = CliqueRing(4, 6, 23);
  for (AlgorithmId id : {AlgorithmId::kFastGreedy, AlgorithmId::kInfomap}) {
    DetectSpec cold;
    cold.algorithm = id;
    auto cold_result = Detect(g, cold);
    ASSERT_TRUE(cold_result.ok());

    DetectSpec seeded = cold;
    seeded.options.initial_partition = PlantedPartition(4, 6);
    auto seeded_result = Detect(g, seeded);
    ASSERT_TRUE(seeded_result.ok());
    EXPECT_EQ(cold_result->partition.assignment,
              seeded_result->partition.assignment);
  }
}

// The legacy Run* wrappers never set the field, so they keep matching the
// unseeded Detect() exactly (spot check on Louvain).
TEST(WarmStartTest, UnsetFieldKeepsLegacyWrapperEquivalence) {
  WeightedGraph g = CliqueRing(5, 7, 31);
  DetectSpec spec;
  auto detect = Detect(g, spec);
  ASSERT_TRUE(detect.ok());
  auto unified = internal::DetectLouvain(g, CommunityOptions{});
  ASSERT_TRUE(unified.ok());
  EXPECT_EQ(detect->partition.assignment, unified->partition.assignment);
  EXPECT_EQ(detect->modularity, unified->modularity);
}

}  // namespace
}  // namespace bikegraph::community
