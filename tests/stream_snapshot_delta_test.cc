// Copy-on-write snapshot deltas: the WeightedGraphPatcher's CSR patching
// against a rebuild-from-scratch reference, the SlidingWindowGraph dirty
// tracking contract (arming, exactness, overflow), and the headline lock
// — FreezeSnapshotDelta chained across a thousand randomized epochs is
// bit-identical to a full FreezeSnapshot of the same window, for the
// GBasic and temporal projections, with the engine wiring on top.

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/civil_time.h"
#include "core/rng.h"
#include "graphdb/weighted_graph.h"
#include "stream/engine.h"
#include "stream/snapshot.h"
#include "stream/testing.h"
#include "stream/window_graph.h"

#include <gtest/gtest.h>

#include "graph_test_util.h"

namespace bikegraph::stream {
namespace {

using bikegraph::ExpectGraphsIdentical;  // tests/graph_test_util.h
using graphdb::WeightedGraph;
using graphdb::WeightedGraphBuilder;
using graphdb::WeightedGraphPatcher;

// ---------------------------------------------------------------------------
// WeightedGraphPatcher: patching == rebuilding, on randomized graphs.
// ---------------------------------------------------------------------------

TEST(WeightedGraphPatcherTest, RandomizedPatchMatchesRebuild) {
  Rng rng(2026);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 4 + rng.NextBounded(40);
    // Base edge set: weight per pair (self pairs allowed).
    std::unordered_map<uint64_t, double> weights;
    const auto key = [](int32_t u, int32_t v) {
      if (u > v) std::swap(u, v);
      return (static_cast<uint64_t>(static_cast<uint32_t>(u)) << 32) |
             static_cast<uint32_t>(v);
    };
    const size_t base_edges = rng.NextBounded(4 * n) + 1;
    for (size_t i = 0; i < base_edges; ++i) {
      const auto u = static_cast<int32_t>(rng.NextBounded(n));
      const auto v = static_cast<int32_t>(rng.NextBounded(n));
      weights[key(u, v)] = 0.25 + rng.NextDouble();
    }
    const auto build = [&](const std::unordered_map<uint64_t, double>& w) {
      WeightedGraphBuilder b(n);
      std::vector<uint64_t> keys;
      // lint: unordered-iter-ok: keys are collected then sorted
      // immediately below; map order cannot reach the builder.
      for (const auto& [k, weight] : w) keys.push_back(k);
      std::sort(keys.begin(), keys.end());
      for (uint64_t k : keys) {
        EXPECT_TRUE(b.AddEdge(static_cast<int32_t>(k >> 32),
                              static_cast<int32_t>(k & 0xFFFFFFFFu),
                              w.at(k))
                        .ok());
      }
      return b.Build();
    };
    const WeightedGraph base = build(weights);

    // Random updates: removals, reweights, inserts (u > v on purpose
    // sometimes, the patcher canonicalises), plus duplicate updates for
    // the same pair (last wins) and removals of absent pairs (no-op).
    std::vector<WeightedGraphPatcher::EdgeUpdate> updates;
    auto next = weights;
    const size_t update_count = rng.NextBounded(3 * n) + 1;
    for (size_t i = 0; i < update_count; ++i) {
      auto u = static_cast<int32_t>(rng.NextBounded(n));
      auto v = static_cast<int32_t>(rng.NextBounded(n));
      const uint64_t k = key(u, v);
      if (rng.NextBounded(2) == 0) std::swap(u, v);
      const uint64_t action = rng.NextBounded(4);
      if (action == 0) {
        updates.push_back({u, v, 0.0, true});
        next.erase(k);
      } else {
        const double w = action == 1 ? 0.0 : 0.25 + rng.NextDouble();
        updates.push_back({u, v, w, false});
        next[k] = w;
      }
    }
    auto patched = WeightedGraphPatcher::Apply(base, updates);
    ASSERT_TRUE(patched.ok()) << patched.status();
    ExpectGraphsIdentical(*patched, build(next));
  }
}

TEST(WeightedGraphPatcherTest, ValidatesUpdates) {
  WeightedGraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(0, 1, 2.0).ok());
  const WeightedGraph base = b.Build();
  EXPECT_EQ(WeightedGraphPatcher::Apply(base, {{0, 3, 1.0, false}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(WeightedGraphPatcher::Apply(base, {{-1, 0, 1.0, false}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(WeightedGraphPatcher::Apply(base, {{0, 1, -1.0, false}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Removing an absent edge is a no-op, not an error.
  auto same = WeightedGraphPatcher::Apply(base, {{1, 2, 0.0, true}});
  ASSERT_TRUE(same.ok());
  ExpectGraphsIdentical(*same, base);
}

// ---------------------------------------------------------------------------
// SlidingWindowGraph::DrainDirty contract.
// ---------------------------------------------------------------------------

CivilTime At(int day, int hour, int minute = 0) {
  return CivilTime::FromCalendar(2020, 1, day, hour, minute).ValueOrDie();
}

TripEvent Trip(int32_t from, int32_t to, CivilTime start, int64_t id = 1) {
  TripEvent e;
  e.rental_id = id;
  e.from_station = from;
  e.to_station = to;
  e.start_time = start;
  e.end_time = start.AddSeconds(600);
  return e;
}

TEST(WindowDirtyTrackingTest, FirstDrainArmsAndReportsIncomplete) {
  SlidingWindowGraph w({4, 7200});  // wide enough that nothing expires
  ASSERT_TRUE(w.Ingest(Trip(0, 1, At(6, 8))).ok());
  WindowDirtySet first = w.DrainDirty();
  EXPECT_FALSE(first.complete);  // pre-arming changes were not tracked
  EXPECT_TRUE(first.pairs.empty());
  // Armed now: the next epoch records exactly what was touched.
  ASSERT_TRUE(w.Ingest(Trip(1, 2, At(6, 9))).ok());
  ASSERT_TRUE(w.Ingest(Trip(2, 1, At(6, 9, 5))).ok());
  WindowDirtySet second = w.DrainDirty();
  EXPECT_TRUE(second.complete);
  EXPECT_EQ(second.pairs,
            (std::vector<uint64_t>{SlidingWindowGraph::PairKey(1, 2)}));
  EXPECT_EQ(second.stations, (std::vector<int32_t>{1, 2}));
  // Nothing touched since: the next drain is complete and empty.
  WindowDirtySet third = w.DrainDirty();
  EXPECT_TRUE(third.complete);
  EXPECT_TRUE(third.pairs.empty());
  EXPECT_TRUE(third.stations.empty());
}

TEST(WindowDirtyTrackingTest, MarkIncompleteForcesOneFullDrain) {
  // The engine's freeze-failed path: the drained set is already gone, so
  // it poisons the next drain (one only) to force a full freeze.
  SlidingWindowGraph w({4, 0});
  (void)w.DrainDirty();  // arm
  ASSERT_TRUE(w.Ingest(Trip(0, 1, At(6, 8))).ok());
  w.MarkDirtyTrackingIncomplete();
  EXPECT_FALSE(w.DrainDirty().complete);
  ASSERT_TRUE(w.Ingest(Trip(2, 3, At(6, 9))).ok());
  WindowDirtySet next = w.DrainDirty();
  EXPECT_TRUE(next.complete);
  EXPECT_EQ(next.pairs,
            (std::vector<uint64_t>{SlidingWindowGraph::PairKey(2, 3)}));
}

TEST(WindowDirtyTrackingTest, ExpiryDirtiesTheRetiredPairs) {
  SlidingWindowGraph w({4, 1800});
  ASSERT_TRUE(w.Ingest(Trip(0, 1, At(6, 8))).ok());
  (void)w.DrainDirty();  // arm
  (void)w.DrainDirty();
  // Advancing far enough expires the (0, 1) trip: its pair and both
  // stations must be reported even though nothing was ingested.
  w.Advance(At(6, 12));
  EXPECT_EQ(w.trip_count(), 0u);
  WindowDirtySet dirty = w.DrainDirty();
  EXPECT_TRUE(dirty.complete);
  EXPECT_EQ(dirty.pairs,
            (std::vector<uint64_t>{SlidingWindowGraph::PairKey(0, 1)}));
  EXPECT_EQ(dirty.stations, (std::vector<int32_t>{0, 1}));
}

TEST(WindowDirtyTrackingTest, PathologicalChurnOverflowsToIncomplete) {
  // The dirty list caps at max(4096, 2 * live pairs): unreachable by
  // growth alone (every grown pair is live), so the overflow needs
  // churn — thousands of DISTINCT pairs created and expired within one
  // epoch, leaving the live set tiny while the dead-dirty list balloons.
  // The drain then reports incomplete (forcing a full freeze) and
  // re-arms cleanly.
  const size_t n = 128;
  SlidingWindowGraph w({n, 30});  // 30 s window, one event per minute
  (void)w.DrainDirty();           // arm
  CivilTime t = At(6, 0);
  size_t pushed = 0;
  for (size_t u = 0; u < n && pushed < 6000; ++u) {
    for (size_t v = u; v < n && pushed < 6000; ++v) {
      ASSERT_TRUE(w.Ingest(Trip(static_cast<int32_t>(u),
                                static_cast<int32_t>(v), t,
                                static_cast<int64_t>(pushed)))
                      .ok());
      t = t.AddSeconds(60);  // expires the previous pair immediately
      ++pushed;
    }
  }
  w.Advance(t.AddSeconds(3600));  // expire the last churn pair too
  EXPECT_EQ(w.pair_count(), 0u);
  WindowDirtySet overflowed = w.DrainDirty();
  EXPECT_FALSE(overflowed.complete);
  // The epoch after the overflow tracks normally again.
  ASSERT_TRUE(w.Ingest(Trip(0, 1, t)).ok());
  WindowDirtySet next = w.DrainDirty();
  EXPECT_TRUE(next.complete);
  EXPECT_EQ(next.pairs,
            (std::vector<uint64_t>{SlidingWindowGraph::PairKey(0, 1)}));
}

// ---------------------------------------------------------------------------
// Delta vs full freeze: bit identity across randomized epoch chains.
// ---------------------------------------------------------------------------

void ExpectSnapshotsIdentical(const WindowSnapshot& a,
                              const WindowSnapshot& b) {
  EXPECT_EQ(a.window_start, b.window_start);
  EXPECT_EQ(a.window_end, b.window_end);
  EXPECT_EQ(a.trip_count, b.trip_count);
  EXPECT_EQ(a.profiles.day, b.profiles.day);
  EXPECT_EQ(a.profiles.hour, b.profiles.hour);
  ExpectGraphsIdentical(a.graph, b.graph);
}

/// Chains FreezeSnapshotDelta across `epochs` randomized epochs (each
/// the previous delta's output — so patching errors would compound) and
/// checks every epoch against an independent full freeze, bit for bit.
void RunRandomizedEpochChain(const analysis::TemporalGraphOptions& projection,
                             int epochs, uint64_t seed,
                             int64_t window_seconds) {
  Rng rng(seed);
  const size_t stations = 16;
  SlidingWindowGraph window({stations, window_seconds});
  SnapshotDeltaPolicy force_delta;
  force_delta.max_dirty_fraction = 1e18;  // never fall back on size

  CivilTime t = At(6, 0);
  int64_t id = 0;
  (void)window.DrainDirty();  // arm tracking
  WindowSnapshot previous = FreezeSnapshot(window, projection).ValueOrDie();
  size_t delta_epochs = 0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const uint64_t events = rng.NextBounded(12);
    for (uint64_t i = 0; i < events; ++i) {
      t = t.AddSeconds(static_cast<int64_t>(rng.NextBounded(180)));
      ASSERT_TRUE(
          window
              .Ingest(Trip(static_cast<int32_t>(rng.NextBounded(stations)),
                           static_cast<int32_t>(rng.NextBounded(stations)),
                           t, ++id))
              .ok());
    }
    if (rng.NextBounded(8) == 0) {
      t = t.AddSeconds(static_cast<int64_t>(rng.NextBounded(7200)));
      window.Advance(t);  // expiry without ingestion
    }
    const WindowDirtySet dirty = window.DrainDirty();
    bool used_delta = false;
    auto delta = FreezeSnapshotDelta(window, previous, dirty, projection,
                                     nullptr, force_delta, &used_delta);
    ASSERT_TRUE(delta.ok()) << delta.status();
    if (used_delta) ++delta_epochs;
    auto full = FreezeSnapshot(window, projection);
    ASSERT_TRUE(full.ok());
    ExpectSnapshotsIdentical(*delta, *full);
    previous = std::move(*delta);
  }
  // The chain must actually exercise the patch path, not the fallback.
  EXPECT_GT(delta_epochs, static_cast<size_t>(epochs) * 9 / 10)
      << "delta fallback dominated; the test lost its teeth";
}

TEST(SnapshotDeltaTest, ThousandEpochBitIdentityGBasic) {
  RunRandomizedEpochChain({}, 1000, 101, /*window_seconds=*/1800);
}

TEST(SnapshotDeltaTest, ThousandEpochBitIdentityGDay) {
  analysis::TemporalGraphOptions projection;
  projection.granularity = analysis::TemporalGranularity::kDay;
  RunRandomizedEpochChain(projection, 1000, 202, /*window_seconds=*/1800);
}

TEST(SnapshotDeltaTest, EpochChainBitIdentityGHourLandmark) {
  analysis::TemporalGraphOptions projection;
  projection.granularity = analysis::TemporalGranularity::kHour;
  projection.similarity_floor = 0.2;
  projection.contrast = 2.0;
  RunRandomizedEpochChain(projection, 300, 303, /*window_seconds=*/0);
}

TEST(SnapshotDeltaTest, FallsBackWithoutPreviousCompatibleSnapshot) {
  SlidingWindowGraph window({4, 0});
  ASSERT_TRUE(window.Ingest(Trip(0, 1, At(6, 8))).ok());
  // Incomplete dirty set (tracking not yet armed) -> full freeze.
  WindowDirtySet dirty = window.DrainDirty();
  ASSERT_FALSE(dirty.complete);
  WindowSnapshot prev = FreezeSnapshot(window).ValueOrDie();
  bool used_delta = true;
  auto snap = FreezeSnapshotDelta(window, prev, dirty, {}, nullptr, {},
                                  &used_delta);
  ASSERT_TRUE(snap.ok());
  EXPECT_FALSE(used_delta);
  ExpectSnapshotsIdentical(*snap, prev);

  // Projection mismatch against the previous epoch -> full freeze.
  ASSERT_TRUE(window.Ingest(Trip(1, 2, At(6, 9))).ok());
  dirty = window.DrainDirty();
  ASSERT_TRUE(dirty.complete);
  analysis::TemporalGraphOptions day;
  day.granularity = analysis::TemporalGranularity::kDay;
  auto mismatched = FreezeSnapshotDelta(window, prev, dirty, day, nullptr,
                                        {}, &used_delta);
  ASSERT_TRUE(mismatched.ok());
  EXPECT_FALSE(used_delta);
  auto full = FreezeSnapshot(window, day);
  ASSERT_TRUE(full.ok());
  ExpectSnapshotsIdentical(*mismatched, *full);
}

TEST(SnapshotDeltaTest, LargeDirtyFractionFallsBackAndStaysCorrect) {
  SlidingWindowGraph window({8, 0});
  ASSERT_TRUE(window.Ingest(Trip(0, 1, At(6, 8), 1)).ok());
  (void)window.DrainDirty();
  WindowSnapshot prev = FreezeSnapshot(window).ValueOrDie();
  // Touch many new pairs: far beyond the default 25% dirty budget of a
  // 1-edge base graph.
  CivilTime t = At(6, 9);
  for (int32_t u = 0; u < 8; ++u) {
    for (int32_t v = u; v < 8; ++v) {
      ASSERT_TRUE(window.Ingest(Trip(u, v, t, 10 + u * 8 + v)).ok());
      t = t.AddSeconds(10);
    }
  }
  const WindowDirtySet dirty = window.DrainDirty();
  bool used_delta = true;
  auto snap =
      FreezeSnapshotDelta(window, prev, dirty, {}, nullptr, {}, &used_delta);
  ASSERT_TRUE(snap.ok());
  EXPECT_FALSE(used_delta);  // the policy chose the full rebuild
  auto full = FreezeSnapshot(window);
  ASSERT_TRUE(full.ok());
  ExpectSnapshotsIdentical(*snap, *full);
}

// ---------------------------------------------------------------------------
// Engine wiring: delta-frozen epochs match a delta-disabled engine.
// ---------------------------------------------------------------------------

TEST(SnapshotDeltaTest, EngineDeltaEpochsMatchFullFreezeEngine) {
  const size_t stations = 24;
  const auto events = testing::PlantedStream(stations, 3, 6, 500, 11);

  StreamEngineConfig config;
  config.station_count = stations;
  config.window_seconds = 2 * 86400;
  StreamEngine delta_engine(config);
  config.snapshot_delta.enabled = false;
  StreamEngine full_engine(config);

  size_t count = 0;
  for (const TripEvent& e : events) {
    ASSERT_TRUE(delta_engine.Ingest(e).ok());
    ASSERT_TRUE(full_engine.Ingest(e).ok());
    if (++count % 31 == 0) {
      auto ds = delta_engine.Snapshot();
      auto fs = full_engine.Snapshot();
      ASSERT_TRUE(ds.ok());
      ASSERT_TRUE(fs.ok());
      ExpectSnapshotsIdentical(**ds, **fs);
    }
  }
  EXPECT_GT(delta_engine.delta_freeze_count(), 0u);
  EXPECT_EQ(full_engine.delta_freeze_count(), 0u);
  EXPECT_GT(full_engine.full_freeze_count(), 0u);
  // Unchanged window: Snapshot() reuses the epoch, no freeze of either
  // kind.
  const uint64_t deltas = delta_engine.delta_freeze_count();
  const uint64_t fulls = delta_engine.full_freeze_count();
  auto first = delta_engine.Snapshot();
  auto second = delta_engine.Snapshot();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());
  EXPECT_EQ(delta_engine.delta_freeze_count() +
                delta_engine.full_freeze_count(),
            deltas + fulls + 1);
}

TEST(SnapshotDeltaTest, ShardedEngineDeltaEpochsMatchSingleWriterFull) {
  // The sharded composition of both machineries: a 3-shard engine
  // freezing through merged dirty sets and the copy-on-write patcher
  // must stay bit-identical to a single-writer engine that full-rebuilds
  // every epoch, across a chain of mid-stream epochs.
  const size_t stations = 24;
  const auto events = testing::PlantedStream(stations, 3, 6, 500, 11);

  StreamEngineConfig config;
  config.station_count = stations;
  config.window_seconds = 2 * 86400;
  config.shard_count = 3;
  StreamEngine sharded_delta(config);
  config.shard_count = 1;
  config.snapshot_delta.enabled = false;
  StreamEngine single_full(config);

  size_t count = 0;
  for (const TripEvent& e : events) {
    ASSERT_TRUE(sharded_delta.Ingest(e).ok());
    ASSERT_TRUE(single_full.Ingest(e).ok());
    if (++count % 31 == 0) {
      auto ss = sharded_delta.Snapshot();
      auto fs = single_full.Snapshot();
      ASSERT_TRUE(ss.ok());
      ASSERT_TRUE(fs.ok());
      ExpectSnapshotsIdentical(**ss, **fs);
    }
  }
  // The merged dirty sets really drove the patch path (first freeze and
  // any large epochs aside).
  EXPECT_GT(sharded_delta.delta_freeze_count(), 0u);
  EXPECT_EQ(single_full.delta_freeze_count(), 0u);
}

}  // namespace
}  // namespace bikegraph::stream
