// Locks the unified detection API to the legacy entry points: every legacy
// Run* call and its Detect() counterpart must return identical partitions
// (and matching counters) on randomized graphs, the name round-trip must
// hold for every registry entry, and bad names/options must surface proper
// Status errors.

#include "community/detector.h"

#include "core/checked_cast.h"

#include "community/fast_greedy.h"
#include "community/infomap.h"
#include "community/label_propagation.h"
#include "community/louvain.h"
#include "community/modularity.h"
#include "core/rng.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace bikegraph::community {

using bikegraph::AsIndex;
namespace {

using graphdb::WeightedGraph;
using graphdb::WeightedGraphBuilder;

/// Random weighted graph: n nodes, each pair present with probability p,
/// weights in (0, 4]; occasionally a self-loop. Deterministic in `seed`.
WeightedGraph RandomGraph(uint64_t seed, int n, double p) {
  Rng rng(seed);
  WeightedGraphBuilder b(AsIndex(n));
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.NextDouble() < p) {
        (void)b.AddEdge(u, v, 0.25 + 3.75 * rng.NextDouble());
      }
    }
    if (rng.NextDouble() < 0.05) (void)b.AddEdge(u, u, rng.NextDouble());
  }
  return b.Build();
}

/// Two cliques of size k with a weak bridge — planted structure for the
/// behavioral checks.
WeightedGraph TwoCliques(int k) {
  WeightedGraphBuilder b(AsIndex(2 * k));
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      (void)b.AddEdge(i, j, 1.0);
      (void)b.AddEdge(k + i, k + j, 1.0);
    }
  }
  (void)b.AddEdge(0, k, 0.5);
  return b.Build();
}

// ---------------------------------------------------------------------------
// (a) Legacy Run* <-> Detect() equivalence on randomized graphs.
// ---------------------------------------------------------------------------

TEST(DetectorEquivalenceTest, LouvainMatchesLegacyOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    WeightedGraph g = RandomGraph(seed, 8 + static_cast<int>(seed) * 5,
                                  seed % 2 ? 0.15 : 0.4);
    LouvainOptions legacy;
    legacy.seed = seed * 7;
    legacy.resolution = seed % 3 == 0 ? 0.5 : 1.0;

    DetectSpec spec;
    spec.algorithm = AlgorithmId::kLouvain;
    spec.options.seed = legacy.seed;
    spec.options.resolution = legacy.resolution;

    auto old_api = RunLouvain(g, legacy);
    auto new_api = Detect(g, spec);
    ASSERT_TRUE(old_api.ok()) << old_api.status();
    ASSERT_TRUE(new_api.ok()) << new_api.status();
    EXPECT_EQ(new_api->partition.assignment, old_api->partition.assignment)
        << "seed " << seed;
    EXPECT_DOUBLE_EQ(new_api->modularity, old_api->modularity);
    EXPECT_EQ(new_api->levels, old_api->levels);
    ASSERT_EQ(new_api->level_partitions.size(),
              old_api->level_partitions.size());
    for (size_t l = 0; l < new_api->level_partitions.size(); ++l) {
      EXPECT_EQ(new_api->level_partitions[l].assignment,
                old_api->level_partitions[l].assignment);
    }
    EXPECT_EQ(new_api->algorithm, AlgorithmId::kLouvain);
    EXPECT_DOUBLE_EQ(new_api->quality, new_api->modularity);
  }
}

TEST(DetectorEquivalenceTest, LabelPropagationMatchesLegacyOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    WeightedGraph g = RandomGraph(seed * 31, 6 + static_cast<int>(seed) * 4,
                                  0.3);
    LabelPropagationOptions legacy;
    legacy.seed = seed;
    legacy.max_iterations = seed % 4 == 0 ? 3 : 100;

    DetectSpec spec;
    spec.algorithm = AlgorithmId::kLabelPropagation;
    spec.options.seed = legacy.seed;
    spec.options.max_iterations = legacy.max_iterations;

    auto old_api = RunLabelPropagation(g, legacy);
    auto new_api = Detect(g, spec);
    ASSERT_TRUE(old_api.ok()) << old_api.status();
    ASSERT_TRUE(new_api.ok()) << new_api.status();
    EXPECT_EQ(new_api->partition.assignment, old_api->partition.assignment)
        << "seed " << seed;
    EXPECT_EQ(new_api->iterations, old_api->iterations);
    EXPECT_EQ(new_api->converged, old_api->converged);
  }
}

TEST(DetectorEquivalenceTest, FastGreedyMatchesLegacyOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    WeightedGraph g = RandomGraph(seed * 101, 8 + static_cast<int>(seed) * 4,
                                  0.25);
    DetectSpec spec;
    spec.algorithm = AlgorithmId::kFastGreedy;

    auto old_api = RunFastGreedy(g);
    auto new_api = Detect(g, spec);
    ASSERT_TRUE(old_api.ok()) << old_api.status();
    ASSERT_TRUE(new_api.ok()) << new_api.status();
    EXPECT_EQ(new_api->partition.assignment, old_api->partition.assignment)
        << "seed " << seed;
    EXPECT_DOUBLE_EQ(new_api->modularity, old_api->modularity);
    EXPECT_EQ(new_api->merges, old_api->merges);
    EXPECT_EQ(new_api->converged, old_api->converged);
  }
}

TEST(DetectorEquivalenceTest, InfomapMatchesLegacyOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    WeightedGraph g = RandomGraph(seed * 977, 6 + static_cast<int>(seed) * 4,
                                  0.35);
    InfomapOptions legacy;
    legacy.seed = seed * 3;

    DetectSpec spec;
    spec.algorithm = AlgorithmId::kInfomap;
    spec.options.seed = legacy.seed;

    auto old_api = RunInfomapLite(g, legacy);
    auto new_api = Detect(g, spec);
    ASSERT_TRUE(old_api.ok()) << old_api.status();
    ASSERT_TRUE(new_api.ok()) << new_api.status();
    EXPECT_EQ(new_api->partition.assignment, old_api->partition.assignment)
        << "seed " << seed;
    EXPECT_DOUBLE_EQ(new_api->quality, old_api->codelength);
    EXPECT_DOUBLE_EQ(new_api->singleton_quality,
                     old_api->singleton_codelength);
    EXPECT_EQ(new_api->levels, old_api->levels);
  }
}

TEST(DetectorEquivalenceTest, DefaultOptionsMatchLegacyDefaults) {
  // A default-constructed CommunityOptions must reproduce every legacy
  // default-options call exactly (the per-algorithm defaulting contract).
  WeightedGraph g = RandomGraph(42, 40, 0.2);
  for (AlgorithmId id : ListAlgorithms()) {
    DetectSpec spec;
    spec.algorithm = id;
    auto unified = Detect(g, spec);
    ASSERT_TRUE(unified.ok()) << AlgorithmName(id);
    Partition legacy;
    switch (id) {
      case AlgorithmId::kLouvain:
        legacy = RunLouvain(g)->partition;
        break;
      case AlgorithmId::kLabelPropagation:
        legacy = RunLabelPropagation(g)->partition;
        break;
      case AlgorithmId::kFastGreedy:
        legacy = RunFastGreedy(g)->partition;
        break;
      case AlgorithmId::kInfomap:
        legacy = RunInfomapLite(g)->partition;
        break;
    }
    EXPECT_EQ(unified->partition.assignment, legacy.assignment)
        << AlgorithmName(id);
  }
}

// ---------------------------------------------------------------------------
// (b) Registry and name round-trip.
// ---------------------------------------------------------------------------

TEST(DetectorRegistryTest, ListsAllFourAlgorithms) {
  const auto ids = ListAlgorithms();
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_EQ(ids[0], AlgorithmId::kLouvain);
  EXPECT_EQ(ids[1], AlgorithmId::kLabelPropagation);
  EXPECT_EQ(ids[2], AlgorithmId::kFastGreedy);
  EXPECT_EQ(ids[3], AlgorithmId::kInfomap);
  EXPECT_EQ(AlgorithmRegistry().size(), ids.size());
}

TEST(DetectorRegistryTest, NameParseRoundTripForEveryEntry) {
  for (const AlgorithmInfo& info : AlgorithmRegistry()) {
    EXPECT_EQ(AlgorithmName(info.id), info.name);
    auto parsed = ParseAlgorithm(info.name);
    ASSERT_TRUE(parsed.ok()) << info.name;
    EXPECT_EQ(*parsed, info.id);
    EXPECT_FALSE(info.description.empty());
    EXPECT_NE(info.run, nullptr);
  }
}

TEST(DetectorRegistryTest, ParseIsLenientAboutCaseAndSeparators) {
  EXPECT_EQ(*ParseAlgorithm("LOUVAIN"), AlgorithmId::kLouvain);
  EXPECT_EQ(*ParseAlgorithm("Label-Propagation"), AlgorithmId::kLabelPropagation);
  EXPECT_EQ(*ParseAlgorithm("lpa"), AlgorithmId::kLabelPropagation);
  EXPECT_EQ(*ParseAlgorithm("Fast Greedy"), AlgorithmId::kFastGreedy);
  EXPECT_EQ(*ParseAlgorithm("CNM"), AlgorithmId::kFastGreedy);
  EXPECT_EQ(*ParseAlgorithm("infomap-lite"), AlgorithmId::kInfomap);
  EXPECT_EQ(*ParseAlgorithm("map.equation"), AlgorithmId::kInfomap);
}

TEST(DetectorRegistryTest, RegistryEntriesRunThroughFunctionPointers) {
  WeightedGraph g = TwoCliques(6);
  for (const AlgorithmInfo& info : AlgorithmRegistry()) {
    auto result = info.run(g, CommunityOptions{});
    ASSERT_TRUE(result.ok()) << info.name;
    EXPECT_EQ(result->algorithm, info.id);
    EXPECT_EQ(result->partition.CommunityCount(), 2u) << info.name;
  }
}

// ---------------------------------------------------------------------------
// (c) Error paths.
// ---------------------------------------------------------------------------

TEST(DetectorErrorTest, UnknownNameReturnsNotFound) {
  auto r = ParseAlgorithm("leiden");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  // The error names the valid choices.
  EXPECT_NE(r.status().message().find("louvain"), std::string::npos);
  EXPECT_FALSE(ParseAlgorithm("").ok());
}

TEST(DetectorErrorTest, OutOfRangeAlgorithmIdIsRejected) {
  DetectSpec spec;
  spec.algorithm = static_cast<AlgorithmId>(99);
  auto r = Detect(TwoCliques(3), spec);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(AlgorithmName(static_cast<AlgorithmId>(99)), "unknown");
}

TEST(DetectorErrorTest, InvalidOptionsReturnInvalidArgument) {
  WeightedGraph g = TwoCliques(3);
  {
    DetectSpec spec;  // Louvain
    spec.options.resolution = 0.0;
    auto r = Detect(g, spec);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    DetectSpec spec;
    spec.algorithm = AlgorithmId::kLabelPropagation;
    spec.options.max_iterations = 0;
    auto r = Detect(g, spec);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    DetectSpec spec;
    spec.algorithm = AlgorithmId::kInfomap;
    spec.options.max_levels = -1;
    auto r = Detect(g, spec);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    DetectSpec spec;
    spec.algorithm = AlgorithmId::kFastGreedy;
    spec.options.min_gain = std::numeric_limits<double>::quiet_NaN();
    auto r = Detect(g, spec);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    DetectSpec spec;  // Louvain: non-finite gains and resolutions rejected
    spec.options.min_gain = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(Detect(g, spec).ok());
    spec.options.min_gain.reset();
    spec.options.resolution = std::numeric_limits<double>::infinity();
    EXPECT_FALSE(Detect(g, spec).ok());
  }
  {
    DetectSpec spec;
    spec.algorithm = AlgorithmId::kInfomap;
    spec.options.min_improvement = std::numeric_limits<double>::quiet_NaN();
    auto r = Detect(g, spec);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

// ---------------------------------------------------------------------------
// Unified-surface behavior: FastGreedyOptions satellite and result fields.
// ---------------------------------------------------------------------------

TEST(FastGreedyOptionsTest, MergeCapStopsEarlyAndClearsConverged) {
  WeightedGraph g = TwoCliques(8);  // full run needs 14 merges
  auto full = RunFastGreedy(g);
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full->converged);
  ASSERT_GT(full->merges, 3u);

  FastGreedyOptions capped;
  capped.max_merges = 3;
  auto partial = RunFastGreedy(g, capped);
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial->merges, 3u);
  EXPECT_FALSE(partial->converged);
  EXPECT_EQ(partial->partition.CommunityCount(), g.node_count() - 3);

  // The same cap through the unified surface.
  DetectSpec spec;
  spec.algorithm = AlgorithmId::kFastGreedy;
  spec.options.max_merges = 3;
  auto unified = Detect(g, spec);
  ASSERT_TRUE(unified.ok());
  EXPECT_EQ(unified->partition.assignment, partial->partition.assignment);
  EXPECT_FALSE(unified->converged);

  // A cap equal to the natural merge count forgoes nothing: still converged.
  FastGreedyOptions exact;
  exact.max_merges = full->merges;
  auto at_cap = RunFastGreedy(g, exact);
  ASSERT_TRUE(at_cap.ok());
  EXPECT_EQ(at_cap->merges, full->merges);
  EXPECT_TRUE(at_cap->converged);
  EXPECT_EQ(at_cap->partition.assignment, full->partition.assignment);
}

TEST(FastGreedyOptionsTest, HighMinGainStopsMergingEntirely) {
  WeightedGraph g = TwoCliques(6);
  FastGreedyOptions opts;
  opts.min_gain = 1.0;  // no pair can beat ΔQ > 1
  auto r = RunFastGreedy(g, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->merges, 0u);
  EXPECT_TRUE(r->converged);
  EXPECT_EQ(r->partition.CommunityCount(), g.node_count());
}

TEST(DetectorResultTest, ConvergedAndWallTimeArePopulated) {
  WeightedGraph g = TwoCliques(6);
  for (AlgorithmId id : ListAlgorithms()) {
    DetectSpec spec;
    spec.algorithm = id;
    auto r = Detect(g, spec);
    ASSERT_TRUE(r.ok()) << AlgorithmName(id);
    EXPECT_TRUE(r->converged) << AlgorithmName(id);
    EXPECT_GE(r->wall_time_ms, 0.0);
    EXPECT_GT(r->modularity, 0.3) << AlgorithmName(id);
  }
}

TEST(DetectorResultTest, EmptyGraphIsHandledByAllAlgorithms) {
  WeightedGraphBuilder b(0);
  WeightedGraph g = b.Build();
  for (AlgorithmId id : ListAlgorithms()) {
    DetectSpec spec;
    spec.algorithm = id;
    auto r = Detect(g, spec);
    ASSERT_TRUE(r.ok()) << AlgorithmName(id);
    EXPECT_EQ(r->partition.node_count(), 0u);
    EXPECT_TRUE(r->converged);
  }
}

TEST(DetectorResultTest, InfomapQualityIsCodelengthNotModularity) {
  WeightedGraph g = TwoCliques(8);
  DetectSpec spec;
  spec.algorithm = AlgorithmId::kInfomap;
  auto r = Detect(g, spec);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->quality, MapEquationCodelength(g, r->partition));
  EXPECT_LT(r->quality, r->singleton_quality);
  EXPECT_NEAR(r->modularity, Modularity(g, r->partition), 1e-12);
}

}  // namespace
}  // namespace bikegraph::community
