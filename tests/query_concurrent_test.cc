// The serving layer's headline concurrency lock: N reader threads hammer
// a QueryService with the mixed workload while the ingestion thread keeps
// ingesting and publishing epochs. Under BIKEGRAPH_SANITIZE=thread this
// is the TSan gate on the whole read path (pin, memo call_once, batch
// execution); in any build it checks the serving invariants — epochs
// never regress per reader, every answer comes from the pinned epoch,
// and the memoized heavies never run more than once per epoch.

#include <atomic>
#include <cstdint>
#include <random>
// lint: thread-ok: readers-vs-live-writer is the scenario under test.
#include <thread>
#include <vector>

#include "query/service.h"
#include "query/workload.h"
#include "stream/engine.h"
#include "stream/testing.h"

#include <gtest/gtest.h>

namespace bikegraph::query {
namespace {

std::vector<geo::LatLon> GridPositions(size_t n) {
  std::vector<geo::LatLon> positions;
  positions.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    positions.emplace_back(53.33 + 0.002 * static_cast<double>(i % 6),
                           -6.30 + 0.003 * static_cast<double>(i / 6));
  }
  return positions;
}

TEST(QueryConcurrentTest, ReadersServeWhileWriterPublishes) {
  constexpr size_t kStations = 24;
  constexpr int kReaders = 4;
  constexpr size_t kSnapshotEvery = 40;

  stream::StreamEngineConfig config;
  config.station_count = kStations;
  config.window_seconds = 2 * 86400;
  config.station_positions = GridPositions(kStations);
  stream::StreamEngine engine(std::move(config));

  QueryServiceOptions options;
  options.memo_epochs = 3;
  QueryService service(engine, options);

  const auto events = stream::testing::PlantedStream(
      kStations, 4, /*days=*/3, /*trips_per_day=*/150, /*seed=*/2024);

  // First epoch before the readers start, so every batch can pin.
  ASSERT_TRUE(engine.Ingest(events[0]).ok());
  ASSERT_TRUE(engine.Snapshot().ok());

  std::atomic<bool> done{false};
  std::atomic<uint64_t> batches_served{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937_64 rng(static_cast<uint64_t>(r) + 1);
      WorkloadSpec spec;
      spec.station_count = kStations;
      spec.community_count = 2;  // planted graphs never collapse below 2
      spec.batch_size = 8;
      uint64_t last_epoch = 0;
      // do-while: on a single-CPU host the writer can drain the whole
      // stream before a reader first runs; serve at least one batch.
      do {
        const auto batch = MakeWorkloadBatch(spec, rng);
        auto outcome = service.ExecuteBatch(batch);
        ASSERT_TRUE(outcome.ok());
        ASSERT_GE(outcome->epoch, last_epoch);  // epochs never regress
        last_epoch = outcome->epoch;
        ASSERT_EQ(outcome->answers.size(), batch.size());
        for (const auto& answer : outcome->answers) {
          // Station/knearest/profile/top-pairs slots are always valid
          // here; flow can race a partition with fewer communities than
          // the spec assumed, which must surface as a clean per-slot
          // InvalidArgument, never a crash or torn answer.
          if (!answer.ok()) {
            ASSERT_EQ(answer.status().code(),
                      StatusCode::kInvalidArgument);
          }
        }
        batches_served.fetch_add(1, std::memory_order_relaxed);
      } while (!done.load(std::memory_order_acquire));
    });
  }

  size_t i = 1;
  for (; i < events.size(); ++i) {
    ASSERT_TRUE(engine.Ingest(events[i]).ok());
    if (i % kSnapshotEvery == 0) {
      ASSERT_TRUE(engine.Snapshot().ok());
    }
  }
  ASSERT_TRUE(engine.Flush().ok());
  ASSERT_TRUE(engine.Snapshot().ok());
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_GT(batches_served.load(), 0u);
  const QueryServiceStats stats = service.stats();
  EXPECT_GT(stats.queries, 0u);
  // Compute-once per epoch: the detection ran at most once per published
  // epoch no matter how many readers raced on it.
  EXPECT_LE(stats.community_memo_misses, engine.publisher().epoch());
  EXPECT_LE(stats.pairs_memo_misses, engine.publisher().epoch());
  EXPECT_LE(service.memo_size(), options.memo_epochs);
}

}  // namespace
}  // namespace bikegraph::query
