#include "data/csv.h"

#include <gtest/gtest.h>

namespace bikegraph::data {
namespace {

TEST(CsvReaderTest, BasicParse) {
  auto table = CsvReader::ParseString("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[1][2], "6");
}

TEST(CsvReaderTest, QuotedFieldsWithCommas) {
  auto table = CsvReader::ParseString("name,pos\n\"Dun Laoghaire, Pier\",x\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "Dun Laoghaire, Pier");
}

TEST(CsvReaderTest, EscapedQuotes) {
  auto table = CsvReader::ParseString("a\n\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "say \"hi\"");
}

TEST(CsvReaderTest, QuotedNewlines) {
  auto table = CsvReader::ParseString("a,b\n\"line1\nline2\",x\n");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 1u);
  EXPECT_EQ(table->rows[0][0], "line1\nline2");
}

TEST(CsvReaderTest, CrLfTolerated) {
  auto table = CsvReader::ParseString("a,b\r\n1,2\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][1], "2");
}

TEST(CsvReaderTest, MissingTrailingNewline) {
  auto table = CsvReader::ParseString("a,b\n1,2");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 1u);
  EXPECT_EQ(table->rows[0][1], "2");
}

TEST(CsvReaderTest, EmptyFieldsPreserved) {
  auto table = CsvReader::ParseString("a,b,c\n,,\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0], (std::vector<std::string>{"", "", ""}));
}

TEST(CsvReaderTest, RowWidthMismatchIsError) {
  auto table = CsvReader::ParseString("a,b\n1,2,3\n");
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kDataLoss);
}

TEST(CsvReaderTest, UnterminatedQuoteIsError) {
  EXPECT_FALSE(CsvReader::ParseString("a\n\"oops\n").ok());
}

TEST(CsvReaderTest, EmptyDocumentIsError) {
  EXPECT_FALSE(CsvReader::ParseString("").ok());
}

TEST(CsvReaderTest, MissingFileIsIOError) {
  auto r = CsvReader::ReadFile("/no/such/file.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(CsvTableTest, ColumnIndexLookup) {
  auto table = CsvReader::ParseString("id,lat,lon\n1,2,3\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->ColumnIndex("lat"), 1);
  EXPECT_EQ(table->ColumnIndex("missing"), -1);
}

TEST(CsvWriterTest, RoundTripThroughReader) {
  CsvWriter w({"name", "value"});
  ASSERT_TRUE(w.AddRow({"plain", "1"}).ok());
  ASSERT_TRUE(w.AddRow({"with,comma", "2"}).ok());
  ASSERT_TRUE(w.AddRow({"with\"quote", "3"}).ok());
  ASSERT_TRUE(w.AddRow({"with\nnewline", "4"}).ok());
  auto table = CsvReader::ParseString(w.ToString());
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 4u);
  EXPECT_EQ(table->rows[1][0], "with,comma");
  EXPECT_EQ(table->rows[2][0], "with\"quote");
  EXPECT_EQ(table->rows[3][0], "with\nnewline");
}

TEST(CsvWriterTest, RowWidthEnforced) {
  CsvWriter w({"a", "b"});
  EXPECT_FALSE(w.AddRow({"only-one"}).ok());
  EXPECT_TRUE(w.AddRow({"x", "y"}).ok());
  EXPECT_EQ(w.row_count(), 1u);
}

}  // namespace
}  // namespace bikegraph::data
