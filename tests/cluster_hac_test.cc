#include "cluster/hac.h"

#include <algorithm>
#include <map>
#include <set>

#include "core/rng.h"
#include "geo/haversine.h"

#include <gtest/gtest.h>

namespace bikegraph::cluster {
namespace {

using geo::LatLon;
using geo::Offset;

const LatLon kCenter(53.35, -6.26);

/// Canonicalises a labelling so different label orders compare equal.
std::vector<int32_t> Canonical(std::vector<int32_t> labels) {
  std::map<int32_t, int32_t> remap;
  for (int32_t& l : labels) {
    auto [it, inserted] = remap.emplace(l, static_cast<int32_t>(remap.size()));
    l = it->second;
    (void)inserted;
  }
  return labels;
}

TEST(DenseHacTest, RejectsBadInput) {
  EXPECT_FALSE(DenseHac({}, 0, Linkage::kComplete).ok());
  EXPECT_FALSE(DenseHac({1.0, 2.0}, 3, Linkage::kComplete).ok());
}

TEST(DenseHacTest, SinglePointTrivial) {
  auto d = DenseHac({0.0}, 1, Linkage::kComplete);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->merges.empty());
  EXPECT_EQ(d->CutAt(100.0), std::vector<int32_t>{0});
}

TEST(DenseHacTest, TwoClustersAtObviousGap) {
  // Points at 0, 1, 10, 11 on a line (abstract distances).
  std::vector<double> pos = {0.0, 1.0, 10.0, 11.0};
  const size_t n = pos.size();
  std::vector<double> d(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) d[i * n + j] = std::abs(pos[i] - pos[j]);
  }
  for (Linkage linkage :
       {Linkage::kSingle, Linkage::kComplete, Linkage::kAverage}) {
    auto dendro = DenseHac(d, n, linkage);
    ASSERT_TRUE(dendro.ok());
    EXPECT_EQ(dendro->merges.size(), n - 1);
    auto labels = Canonical(dendro->CutAt(2.0));
    EXPECT_EQ(labels, (std::vector<int32_t>{0, 0, 1, 1}));
    // Cut above the full tree height: everything together.
    auto all = Canonical(dendro->CutAt(1000.0));
    EXPECT_EQ(all, (std::vector<int32_t>{0, 0, 0, 0}));
    // Cut below the smallest merge: all singletons.
    auto none = Canonical(dendro->CutAt(0.5));
    EXPECT_EQ(std::set<int32_t>(none.begin(), none.end()).size(), 4u);
  }
}

TEST(DenseHacTest, CompleteLinkageRespectsDiameter) {
  // Complete-linkage cut at t guarantees intra-cluster diameter <= t.
  Rng rng(5);
  std::vector<LatLon> points;
  for (int i = 0; i < 60; ++i) {
    points.push_back(Offset(kCenter, rng.NextUniform(0.0, 500.0),
                            rng.NextUniform(0.0, 360.0)));
  }
  auto dendro = DenseHacGeo(points, Linkage::kComplete);
  ASSERT_TRUE(dendro.ok());
  const double threshold = 120.0;
  auto labels = dendro->CutAt(threshold);
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = i + 1; j < points.size(); ++j) {
      if (labels[i] == labels[j]) {
        EXPECT_LE(geo::HaversineMeters(points[i], points[j]),
                  threshold + 1e-6);
      }
    }
  }
}

TEST(DenseHacTest, SingleLinkageChains) {
  // A chain of points 40 m apart: single linkage at 50 m joins the whole
  // chain; complete linkage cannot.
  std::vector<LatLon> points;
  for (int i = 0; i < 8; ++i) {
    points.push_back(Offset(kCenter, i * 40.0, 90.0));
  }
  auto single = DenseHacGeo(points, Linkage::kSingle);
  auto complete = DenseHacGeo(points, Linkage::kComplete);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(complete.ok());
  auto single_labels = Canonical(single->CutAt(50.0));
  auto complete_labels = Canonical(complete->CutAt(50.0));
  EXPECT_EQ(std::set<int32_t>(single_labels.begin(), single_labels.end()).size(),
            1u);
  EXPECT_GT(
      std::set<int32_t>(complete_labels.begin(), complete_labels.end()).size(),
      1u);
}

TEST(ThresholdHacTest, EmptyAndErrors) {
  auto empty = ThresholdCompleteLinkage({}, 100.0);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  EXPECT_FALSE(ThresholdCompleteLinkage({kCenter}, -1.0).ok());
  EXPECT_FALSE(
      ThresholdCompleteLinkage({LatLon(999.0, 0.0)}, 100.0).ok());
}

TEST(ThresholdHacTest, IsolatedPointsStaySingletons) {
  std::vector<LatLon> points = {
      kCenter, Offset(kCenter, 500.0, 0.0), Offset(kCenter, 500.0, 180.0)};
  auto labels = ThresholdCompleteLinkage(points, 100.0);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(std::set<int32_t>(labels->begin(), labels->end()).size(), 3u);
}

TEST(ThresholdHacTest, TightGroupMerges) {
  std::vector<LatLon> points = {
      kCenter, Offset(kCenter, 30.0, 0.0), Offset(kCenter, 30.0, 120.0),
      Offset(kCenter, 2000.0, 90.0)};
  auto labels = ThresholdCompleteLinkage(points, 100.0);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ((*labels)[0], (*labels)[1]);
  EXPECT_EQ((*labels)[0], (*labels)[2]);
  EXPECT_NE((*labels)[0], (*labels)[3]);
}

TEST(ThresholdHacTest, DiameterInvariantHolds) {
  Rng rng(11);
  std::vector<LatLon> points;
  for (int i = 0; i < 400; ++i) {
    points.push_back(Offset(kCenter, rng.NextUniform(0.0, 800.0),
                            rng.NextUniform(0.0, 360.0)));
  }
  const double threshold = 100.0;
  auto labels = ThresholdCompleteLinkage(points, threshold);
  ASSERT_TRUE(labels.ok());
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = i + 1; j < points.size(); ++j) {
      if ((*labels)[i] == (*labels)[j]) {
        EXPECT_LE(geo::HaversineMeters(points[i], points[j]),
                  threshold + 1e-6);
      }
    }
  }
}

// Property test: the scalable threshold HAC must produce exactly the same
// partition as the dense reference implementation cut at the same level.
class ThresholdEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double, int>> {};

TEST_P(ThresholdEquivalenceTest, MatchesDenseReference) {
  auto [seed, threshold, n] = GetParam();
  Rng rng(seed);
  std::vector<LatLon> points;
  for (int i = 0; i < n; ++i) {
    points.push_back(Offset(kCenter, rng.NextUniform(0.0, 600.0),
                            rng.NextUniform(0.0, 360.0)));
  }
  auto sparse = ThresholdCompleteLinkage(points, threshold);
  auto dense = DenseHacGeo(points, Linkage::kComplete);
  ASSERT_TRUE(sparse.ok());
  ASSERT_TRUE(dense.ok());
  EXPECT_EQ(Canonical(*sparse), Canonical(dense->CutAt(threshold)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ThresholdEquivalenceTest,
    ::testing::Values(std::tuple<uint64_t, double, int>{1, 80.0, 50},
                      std::tuple<uint64_t, double, int>{2, 120.0, 100},
                      std::tuple<uint64_t, double, int>{3, 60.0, 150},
                      std::tuple<uint64_t, double, int>{4, 200.0, 80},
                      std::tuple<uint64_t, double, int>{5, 100.0, 120}));

TEST(ThresholdHacTest, DuplicatePointsMergeAtZeroDistance) {
  std::vector<LatLon> points = {kCenter, kCenter, kCenter,
                                Offset(kCenter, 500.0, 0.0)};
  auto labels = ThresholdCompleteLinkage(points, 10.0);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ((*labels)[0], (*labels)[1]);
  EXPECT_EQ((*labels)[1], (*labels)[2]);
  EXPECT_NE((*labels)[0], (*labels)[3]);
}

}  // namespace
}  // namespace bikegraph::cluster
