#include "core/civil_time.h"

#include <gtest/gtest.h>

namespace bikegraph {
namespace {

TEST(CivilTimeTest, EpochIsThursday) {
  CivilTime t(0);
  EXPECT_EQ(t.year(), 1970);
  EXPECT_EQ(t.month(), 1);
  EXPECT_EQ(t.day(), 1);
  EXPECT_EQ(t.weekday(), Weekday::kThursday);
}

TEST(CivilTimeTest, FromCalendarRoundTrips) {
  auto t = CivilTime::FromCalendar(2020, 3, 15, 13, 45, 59);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->year(), 2020);
  EXPECT_EQ(t->month(), 3);
  EXPECT_EQ(t->day(), 15);
  EXPECT_EQ(t->hour(), 13);
  EXPECT_EQ(t->minute(), 45);
  EXPECT_EQ(t->second(), 59);
}

TEST(CivilTimeTest, StudyWindowWeekdays) {
  // 3 Jan 2020 (study start) was a Friday; 19 Sep 2021 (end) a Sunday.
  auto start = CivilTime::FromCalendar(2020, 1, 3);
  auto end = CivilTime::FromCalendar(2021, 9, 19);
  ASSERT_TRUE(start.ok());
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(start->weekday(), Weekday::kFriday);
  EXPECT_EQ(end->weekday(), Weekday::kSunday);
}

TEST(CivilTimeTest, LeapYearRules) {
  EXPECT_TRUE(IsLeapYear(2020));
  EXPECT_TRUE(IsLeapYear(2000));
  EXPECT_FALSE(IsLeapYear(1900));
  EXPECT_FALSE(IsLeapYear(2021));
}

TEST(CivilTimeTest, DaysInMonthRespectsLeapYears) {
  EXPECT_EQ(DaysInMonth(2020, 2), 29);
  EXPECT_EQ(DaysInMonth(2021, 2), 28);
  EXPECT_EQ(DaysInMonth(2021, 9), 30);
  EXPECT_EQ(DaysInMonth(2021, 12), 31);
  EXPECT_EQ(DaysInMonth(2021, 13), 0);
}

TEST(CivilTimeTest, RejectsInvalidCalendarFields) {
  EXPECT_FALSE(CivilTime::FromCalendar(2021, 2, 29).ok());
  EXPECT_FALSE(CivilTime::FromCalendar(2021, 0, 1).ok());
  EXPECT_FALSE(CivilTime::FromCalendar(2021, 13, 1).ok());
  EXPECT_FALSE(CivilTime::FromCalendar(2021, 6, 31).ok());
  EXPECT_FALSE(CivilTime::FromCalendar(2021, 6, 1, 24, 0, 0).ok());
  EXPECT_FALSE(CivilTime::FromCalendar(2021, 6, 1, 0, 60, 0).ok());
}

TEST(CivilTimeTest, ParseFullTimestamp) {
  auto t = CivilTime::Parse("2020-06-15 08:30:00");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->hour(), 8);
  EXPECT_EQ(t->minute(), 30);
}

TEST(CivilTimeTest, ParseIsoTSeparator) {
  auto t = CivilTime::Parse("2020-06-15T08:30:00");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->day(), 15);
}

TEST(CivilTimeTest, ParseBareDate) {
  auto t = CivilTime::Parse("2021-09-19");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->hour(), 0);
}

TEST(CivilTimeTest, ParseRejectsGarbage) {
  EXPECT_FALSE(CivilTime::Parse("not a date").ok());
  EXPECT_FALSE(CivilTime::Parse("").ok());
  EXPECT_FALSE(CivilTime::Parse("2020-13-40 99:99:99").ok());
}

TEST(CivilTimeTest, ToStringRoundTrips) {
  auto t = CivilTime::FromCalendar(2021, 12, 31, 23, 59, 58);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->ToString(), "2021-12-31 23:59:58");
  auto back = CivilTime::Parse(t->ToString());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, *t);
}

TEST(CivilTimeTest, AddDaysCrossesMonthAndYear) {
  auto t = CivilTime::FromCalendar(2020, 12, 31, 12, 0, 0);
  ASSERT_TRUE(t.ok());
  CivilTime next = t->AddDays(1);
  EXPECT_EQ(next.year(), 2021);
  EXPECT_EQ(next.month(), 1);
  EXPECT_EQ(next.day(), 1);
  EXPECT_EQ(next.hour(), 12);
}

TEST(CivilTimeTest, WeekdayCyclesOverWeek) {
  auto base = CivilTime::FromCalendar(2020, 1, 6);  // a Monday
  ASSERT_TRUE(base.ok());
  for (int i = 0; i < 14; ++i) {
    EXPECT_EQ(static_cast<int>(base->AddDays(i).weekday()), i % 7);
  }
}

TEST(CivilTimeTest, ComparisonOperators) {
  CivilTime a(100), b(200);
  EXPECT_LT(a, b);
  EXPECT_LE(a, b);
  EXPECT_GT(b, a);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, CivilTime(100));
}

TEST(CivilTimeTest, IsWeekendHelper) {
  EXPECT_TRUE(IsWeekend(Weekday::kSaturday));
  EXPECT_TRUE(IsWeekend(Weekday::kSunday));
  EXPECT_FALSE(IsWeekend(Weekday::kMonday));
  EXPECT_FALSE(IsWeekend(Weekday::kFriday));
}

TEST(CivilTimeTest, WeekdayNames) {
  EXPECT_STREQ(WeekdayName(Weekday::kMonday), "Mon");
  EXPECT_STREQ(WeekdayName(Weekday::kSunday), "Sun");
}

// Property sweep: DaysFromCivil and CivilFromDays are inverse over a wide
// range of dates.
class DaysRoundTripTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(DaysRoundTripTest, RoundTrips) {
  int64_t days = GetParam();
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  EXPECT_EQ(DaysFromCivil(y, m, d), days);
  EXPECT_GE(m, 1);
  EXPECT_LE(m, 12);
  EXPECT_GE(d, 1);
  EXPECT_LE(d, DaysInMonth(y, m));
}

INSTANTIATE_TEST_SUITE_P(WideRange, DaysRoundTripTest,
                         ::testing::Values(-719468, -1, 0, 1, 18262, 18993,
                                           20000, 365 * 100, 365 * 400 + 97,
                                           -365 * 100));

}  // namespace
}  // namespace bikegraph
