// Durability: WAL framing and torn-tail repair, crash-consistent
// checkpoints, and the headline lock — an engine killed at a randomized
// point and recovered (checkpoint + WAL replay) must be bit-identical to
// the uninterrupted run, for sliding and landmark windows alike.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/civil_time.h"
#include "core/rng.h"
#include "stream/checkpoint.h"
#include "stream/engine.h"
#include "stream/replay.h"
#include "stream/testing.h"
#include "stream/wal.h"

#include <gtest/gtest.h>

namespace bikegraph::stream {
namespace {

namespace fs = std::filesystem;

fs::path FreshDir(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("bg_dur_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<fs::path> SortedFiles(const fs::path& dir,
                                  const std::string& extension) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == extension) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

void FlipByteAt(const fs::path& path, int64_t offset_from_end) {
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good());
  file.seekg(0, std::ios::end);
  const int64_t size = file.tellg();
  ASSERT_GT(size, offset_from_end);
  file.seekg(size - offset_from_end);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5A);
  file.seekp(size - offset_from_end);
  file.write(&byte, 1);
}

// ---------------------------------------------------------------------
// CRC32C + WAL unit coverage.

TEST(Crc32cTest, KnownAnswer) {
  // RFC 3720 check value for the Castagnoli polynomial.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // Seed chaining: CRC of a split buffer equals CRC of the whole.
  const uint32_t whole = Crc32c("123456789", 9);
  EXPECT_EQ(Crc32c("6789", 4, Crc32c("12345", 5)), whole);
}

TEST(WalTest, RoundTripsEveryRecordType) {
  const fs::path dir = FreshDir("roundtrip");
  DurabilityConfig config;
  config.enabled = true;
  config.directory = dir.string();

  TripEvent event;
  event.rental_id = 77;
  event.from_station = 3;
  event.to_station = 9;
  event.start_time = CivilTime(1'600'000'123);
  event.end_time = CivilTime(1'600'000'999);
  community::DetectSpec spec;
  spec.options.seed = 42;
  spec.options.resolution = 1.5;
  spec.options.max_levels = 3;
  spec.options.min_gain = 0.25;

  {
    auto writer = WalWriter::Open(config, /*next_seq=*/1);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    WalRecord record;
    record.type = WalRecordType::kEvent;
    record.event = event;
    ASSERT_TRUE((*writer)->Append(record).ok());
    record = WalRecord{};
    record.type = WalRecordType::kAdvance;
    record.watermark_seconds = 1'600'003'600;
    ASSERT_TRUE((*writer)->Append(record).ok());
    record = WalRecord{};
    record.type = WalRecordType::kSnapshot;
    ASSERT_TRUE((*writer)->Append(record).ok());
    record = WalRecord{};
    record.type = WalRecordType::kDetect;
    record.default_spec = true;
    ASSERT_TRUE((*writer)->Append(record).ok());
    record = WalRecord{};
    record.type = WalRecordType::kDetect;
    record.default_spec = false;
    record.spec = spec;
    ASSERT_TRUE((*writer)->Append(record).ok());
    record = WalRecord{};
    record.type = WalRecordType::kFlush;
    ASSERT_TRUE((*writer)->Append(record).ok());
    ASSERT_TRUE((*writer)->Sync().ok());
    EXPECT_EQ((*writer)->next_seq(), 7u);
  }

  auto read = ReadWal(dir.string(), /*repair_torn_tail=*/false);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->records.size(), 6u);
  EXPECT_EQ(read->first_seq, 1u);
  EXPECT_EQ(read->last_seq, 6u);
  EXPECT_EQ(read->truncated_bytes, 0u);
  const WalRecord& r0 = read->records[0];
  EXPECT_EQ(r0.type, WalRecordType::kEvent);
  EXPECT_EQ(r0.event.rental_id, event.rental_id);
  EXPECT_EQ(r0.event.from_station, event.from_station);
  EXPECT_EQ(r0.event.to_station, event.to_station);
  EXPECT_EQ(r0.event.start_time, event.start_time);
  EXPECT_EQ(r0.event.end_time, event.end_time);
  EXPECT_EQ(read->records[1].type, WalRecordType::kAdvance);
  EXPECT_EQ(read->records[1].watermark_seconds, 1'600'003'600);
  EXPECT_EQ(read->records[2].type, WalRecordType::kSnapshot);
  EXPECT_EQ(read->records[3].type, WalRecordType::kDetect);
  EXPECT_TRUE(read->records[3].default_spec);
  const WalRecord& r4 = read->records[4];
  EXPECT_EQ(r4.type, WalRecordType::kDetect);
  EXPECT_FALSE(r4.default_spec);
  EXPECT_EQ(r4.spec.algorithm, spec.algorithm);
  EXPECT_EQ(r4.spec.options.seed, spec.options.seed);
  EXPECT_EQ(r4.spec.options.resolution, spec.options.resolution);
  EXPECT_EQ(r4.spec.options.max_levels, spec.options.max_levels);
  EXPECT_EQ(r4.spec.options.min_gain, spec.options.min_gain);
  EXPECT_EQ(read->records[5].type, WalRecordType::kFlush);
  fs::remove_all(dir);
}

TEST(WalTest, TornTailIsTruncatedNotFatal) {
  const fs::path dir = FreshDir("torn");
  DurabilityConfig config;
  config.enabled = true;
  config.directory = dir.string();
  {
    auto writer = WalWriter::Open(config, 1);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 5; ++i) {
      WalRecord record;
      record.type = WalRecordType::kAdvance;
      record.watermark_seconds = 1000 + i;
      ASSERT_TRUE((*writer)->Append(record).ok());
    }
  }
  auto segments = SortedFiles(dir, ".log");
  ASSERT_EQ(segments.size(), 1u);
  // Tear three bytes off the tail — a crash mid-append.
  fs::resize_file(segments[0], fs::file_size(segments[0]) - 3);

  auto read = ReadWal(dir.string(), /*repair_torn_tail=*/true);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->records.size(), 4u);
  EXPECT_EQ(read->last_seq, 4u);
  EXPECT_GT(read->truncated_bytes, 0u);

  // The repair ftruncated the torn bytes away: a second read is clean.
  auto again = ReadWal(dir.string(), /*repair_torn_tail=*/false);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->records.size(), 4u);
  EXPECT_EQ(again->truncated_bytes, 0u);
  fs::remove_all(dir);
}

TEST(WalTest, CorruptionAwayFromTailIsDataLoss) {
  const fs::path dir = FreshDir("midrot");
  DurabilityConfig config;
  config.enabled = true;
  config.directory = dir.string();
  config.segment_bytes = 1;  // rotate before every append after the first
  {
    auto writer = WalWriter::Open(config, 1);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 4; ++i) {
      WalRecord record;
      record.type = WalRecordType::kAdvance;
      record.watermark_seconds = i;
      ASSERT_TRUE((*writer)->Append(record).ok());
    }
    EXPECT_EQ((*writer)->segments_opened(), 4u);
  }
  auto segments = SortedFiles(dir, ".log");
  ASSERT_EQ(segments.size(), 4u);
  FlipByteAt(segments[1], 1);  // corrupt a non-tail segment's payload
  auto read = ReadWal(dir.string(), /*repair_torn_tail=*/true);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
  fs::remove_all(dir);
}

TEST(WalTest, RotationKeepsSequenceAndPruneRespectsBound) {
  const fs::path dir = FreshDir("rotate");
  DurabilityConfig config;
  config.enabled = true;
  config.directory = dir.string();
  config.segment_bytes = 1;
  {
    auto writer = WalWriter::Open(config, 1);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 6; ++i) {
      WalRecord record;
      record.type = WalRecordType::kAdvance;
      record.watermark_seconds = i;
      ASSERT_TRUE((*writer)->Append(record).ok());
    }
  }
  ASSERT_EQ(SortedFiles(dir, ".log").size(), 6u);
  auto read = ReadWal(dir.string(), false);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->first_seq, 1u);
  EXPECT_EQ(read->last_seq, 6u);
  EXPECT_EQ(read->segment_count, 6u);

  // Pruning through seq 3 keeps every segment a replay from 4 needs.
  uint64_t pruned = 0;
  ASSERT_TRUE(PruneWalSegments(dir.string(), 3, &pruned).ok());
  EXPECT_EQ(pruned, 3u);
  auto tail = ReadWal(dir.string(), false);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->first_seq, 4u);
  EXPECT_EQ(tail->last_seq, 6u);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Checkpoint unit coverage.

EngineCheckpoint SampleCheckpoint() {
  EngineCheckpoint c;
  c.wal_seq = 41;
  c.station_count = 4;
  c.window_seconds = 3600;
  c.max_lateness_seconds = 60;
  c.late_policy = 1;
  c.suppress_duplicates = 1;
  c.flushed = 0;
  c.snapshot_clean = 1;
  c.publisher_epoch = 3;
  c.published_window_start_seconds = 100;
  c.published_window_end_seconds = 4200;
  c.delta_freeze_count = 2;
  c.full_freeze_count = 1;
  c.desyncs_published = 0;
  c.reorder.watermark_seconds = 4200;
  c.reorder.reordered_count = 5;
  c.reorder.released_count = 11;
  TripEvent buffered;
  buffered.rental_id = 9;
  buffered.from_station = 1;
  buffered.to_station = 2;
  buffered.start_time = CivilTime(4199);
  buffered.end_time = CivilTime(4300);
  c.reorder.buffered.push_back(buffered);
  c.reorder.seen.emplace_back(4199, 9);
  c.window.watermark_seconds = 4200;
  c.window.last_event_seconds = 4190;
  c.window.ingested_count = 11;
  c.window.live_count = 1;
  c.window.ring.push_back({4190, 1, 2});
  c.tracker.refresh_count = 2;
  c.tracker.previous_modularity = 0.4375;
  community::Partition partition;
  partition.assignment = {0, 0, 1, 1};
  c.tracker.previous_partition = std::move(partition);
  // Sharded payload: shard 0 lives in the legacy fields above; one extra
  // shard with its own sequence space and components.
  c.shard_count = 2;
  c.shard_seqs = {7, 5};
  EngineCheckpoint::ShardComponents extra;
  extra.reorder.watermark_seconds = 4100;
  extra.reorder.released_count = 4;
  extra.window.watermark_seconds = 4100;
  extra.window.last_event_seconds = 4090;
  extra.window.ingested_count = 4;
  extra.window.live_count = 1;
  extra.window.ring.push_back({4090, 0, 3});
  c.extra_shards.push_back(std::move(extra));
  return c;
}

TEST(CheckpointTest, SerializeParseRoundTrip) {
  const EngineCheckpoint original = SampleCheckpoint();
  const std::string bytes = SerializeCheckpoint(original);
  auto parsed = ParseCheckpoint(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(SerializeCheckpoint(*parsed), bytes);

  // Truncation and trailing garbage are both DataLoss, not UB.
  EXPECT_FALSE(ParseCheckpoint(bytes.substr(0, bytes.size() - 1)).ok());
  EXPECT_FALSE(ParseCheckpoint(bytes + 'x').ok());
  EXPECT_FALSE(ParseCheckpoint("").ok());

  // A default (single-shard) checkpoint round-trips too: the sharded
  // extension appends shard_count 1, one sequence, and no extra blocks.
  const EngineCheckpoint single;
  const std::string single_bytes = SerializeCheckpoint(single);
  auto single_parsed = ParseCheckpoint(single_bytes);
  ASSERT_TRUE(single_parsed.ok()) << single_parsed.status().ToString();
  EXPECT_EQ(single_parsed->shard_count, 1u);
  EXPECT_EQ(single_parsed->shard_seqs, (std::vector<uint64_t>{0}));
  EXPECT_TRUE(single_parsed->extra_shards.empty());
  EXPECT_EQ(SerializeCheckpoint(*single_parsed), single_bytes);
}

TEST(CheckpointTest, NewestCorruptFallsBackToOlderAndTmpIsSwept) {
  const fs::path dir = FreshDir("ckpt_fallback");
  EngineCheckpoint older = SampleCheckpoint();
  older.wal_seq = 5;
  EngineCheckpoint newer = SampleCheckpoint();
  newer.wal_seq = 9;
  ASSERT_TRUE(WriteCheckpoint(dir.string(), older).ok());
  ASSERT_TRUE(WriteCheckpoint(dir.string(), newer).ok());
  auto files = SortedFiles(dir, ".ckpt");
  ASSERT_EQ(files.size(), 2u);
  FlipByteAt(files[1], 4);  // bit-rot the newest
  { std::ofstream stray(dir / "ckpt-junk.ckpt.tmp"); stray << "half"; }

  auto loaded = LoadNewestCheckpoint(dir.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->found);
  EXPECT_EQ(loaded->checkpoint.wal_seq, 5u);
  EXPECT_EQ(loaded->skipped, 1u);
  EXPECT_FALSE(fs::exists(dir / "ckpt-junk.ckpt.tmp"));

  // Prune keeps the newest (corrupt or not — pruning is by name).
  uint64_t oldest_kept = 0;
  ASSERT_TRUE(PruneCheckpoints(dir.string(), 1, &oldest_kept).ok());
  EXPECT_EQ(oldest_kept, 9u);
  EXPECT_EQ(SortedFiles(dir, ".ckpt").size(), 1u);
  fs::remove_all(dir);
}

TEST(CheckpointTest, MissingDirectoryIsNotFoundNotError) {
  auto loaded = LoadNewestCheckpoint(
      (fs::path(::testing::TempDir()) / "bg_dur_never_created").string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->found);
}

// ---------------------------------------------------------------------
// Engine-level durability plumbing.

TEST(StreamEngineDurabilityTest, FreshEngineRefusesDirectoryWithState) {
  const fs::path dir = FreshDir("refuse");
  StreamEngineConfig config;
  config.station_count = 4;
  config.durability.enabled = true;
  config.durability.directory = dir.string();
  {
    StreamEngine engine(config);
    TripEvent event;
    event.rental_id = 1;
    event.from_station = 0;
    event.to_station = 1;
    event.start_time = CivilTime(1000);
    event.end_time = CivilTime(1100);
    ASSERT_TRUE(engine.Ingest(event).ok());
    EXPECT_EQ(engine.wal_seq(), 1u);
  }
  StreamEngine second(config);
  TripEvent event;
  event.rental_id = 2;
  event.from_station = 0;
  event.to_station = 1;
  event.start_time = CivilTime(2000);
  event.end_time = CivilTime(2100);
  const Status status = second.Ingest(event);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  fs::remove_all(dir);
}

TEST(StreamEngineDurabilityTest, DisabledDurabilityHasNoDurableSurface) {
  StreamEngineConfig config;
  config.station_count = 4;
  StreamEngine engine(config);
  EXPECT_EQ(engine.wal_seq(), 0u);
  EXPECT_TRUE(engine.SyncWal().ok());
  const Status status = engine.Checkpoint();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

// Satellite regression (PR 7): in durable mode Advance write-ahead-logs
// the watermark move, so its Status can carry a real WAL I/O failure.
// examples/live_monitoring.cpp used to `(void)` that Status; this pins
// the engine behaviour the example (and every caller) must respect: the
// failed append surfaces at Advance, and poisons later durable calls
// rather than letting the log silently diverge from memory.
TEST(StreamEngineDurabilityTest, AdvanceSurfacesWalFailureAndPoisons) {
  const fs::path dir = FreshDir("advance_fail");
  StreamEngineConfig config;
  config.station_count = 4;
  config.durability.enabled = true;
  config.durability.directory = dir.string();
  // One record per segment: every append after the first rotates, and
  // rotation must create a file — which fails once the directory is gone.
  config.durability.segment_bytes = 1;
  StreamEngine engine(config);
  TripEvent event;
  event.rental_id = 1;
  event.from_station = 0;
  event.to_station = 1;
  event.start_time = CivilTime(1000);
  event.end_time = CivilTime(1100);
  ASSERT_TRUE(engine.Ingest(event).ok());
  fs::remove_all(dir);

  const Status status = engine.Advance(CivilTime(2000));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  // The writer is poisoned: the next durable call reports the same
  // failure instead of pretending the log is healthy.
  const Status again = engine.Advance(CivilTime(3000));
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kIOError);
}

TEST(StreamEngineDurabilityTest, RecoverEmptyDirectoryIsAFreshEngine) {
  const fs::path dir = FreshDir("recover_empty");
  StreamEngineConfig config;
  config.station_count = 4;
  config.durability.enabled = true;
  config.durability.directory = dir.string();
  StreamEngine::RecoveryStats stats;
  auto engine = StreamEngine::Recover(config, &stats);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_FALSE(stats.used_checkpoint);
  EXPECT_EQ(stats.replayed_records, 0u);
  EXPECT_EQ(stats.recovered_seq, 0u);
  TripEvent event;
  event.rental_id = 1;
  event.from_station = 0;
  event.to_station = 1;
  event.start_time = CivilTime(1000);
  event.end_time = CivilTime(1100);
  ASSERT_TRUE((*engine)->Ingest(event).ok());
  EXPECT_EQ((*engine)->wal_seq(), 1u);
  fs::remove_all(dir);
}

TEST(StreamEngineDurabilityTest, RecoverRejectsConfigFingerprintMismatch) {
  const fs::path dir = FreshDir("fingerprint");
  StreamEngineConfig config;
  config.station_count = 4;
  config.durability.enabled = true;
  config.durability.directory = dir.string();
  {
    StreamEngine engine(config);
    ASSERT_TRUE(engine.Checkpoint().ok());
  }
  StreamEngineConfig other = config;
  other.station_count = 8;
  auto recovered = StreamEngine::Recover(other);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kFailedPrecondition);
  fs::remove_all(dir);
}

TEST(StreamEngineDurabilityTest, RecoverRejectsShardCountMismatch) {
  // shard_count is part of the durable fingerprint: per-shard sequence
  // spaces and components only make sense under the partition that
  // wrote them.
  const fs::path dir = FreshDir("shard_fingerprint");
  StreamEngineConfig config;
  config.station_count = 8;
  config.shard_count = 2;
  config.durability.enabled = true;
  config.durability.directory = dir.string();
  {
    StreamEngine engine(config);
    ASSERT_TRUE(engine.Checkpoint().ok());
  }
  StreamEngineConfig other = config;
  other.shard_count = 3;
  auto recovered = StreamEngine::Recover(other);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kFailedPrecondition);
  // The matching shard count recovers cleanly.
  auto matching = StreamEngine::Recover(config);
  ASSERT_TRUE(matching.ok()) << matching.status().ToString();
  EXPECT_EQ((*matching)->shard_count(), 2u);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// The headline lock: randomized kill-point recovery, bit for bit.

struct Op {
  enum Kind : uint8_t { kIngest, kAdvance, kSnapshot, kDetect, kFlush };
  Kind kind = kIngest;
  TripEvent event{};
  int64_t watermark = 0;
};

/// An operation script where, by construction, every op appends exactly
/// one WAL record (Snapshot ops always directly follow a strictly-forward
/// Advance, so they never hit the unlogged reuse path; Flush appears
/// once). That makes `ops[i]` ↔ WAL seq `i + 1`, which is how the kill
/// test knows where to resume.
std::vector<Op> BuildOpScript(int64_t lateness, uint64_t seed) {
  auto jittered = JitterArrivalOrder(
      testing::PlantedStream(24, 3, /*days=*/3, /*trips_per_day=*/400, seed),
      /*shuffle_seconds=*/lateness, seed);
  std::vector<Op> ops;
  ops.reserve(jittered.events.size() + jittered.events.size() / 40 + 8);
  int64_t last_advance = INT64_MIN;
  for (size_t i = 0; i < jittered.events.size(); ++i) {
    Op op;
    op.kind = Op::kIngest;
    op.event = jittered.events[i];
    ops.push_back(op);
    if ((i + 1) % 60 == 0) {
      last_advance = std::max(last_advance + 1, jittered.report_seconds[i]);
      ops.push_back({Op::kAdvance, {}, last_advance});
      if ((i + 1) % 120 == 0) ops.push_back({Op::kSnapshot, {}, 0});
      if ((i + 1) % 360 == 0) ops.push_back({Op::kDetect, {}, 0});
    }
  }
  last_advance = std::max(last_advance + 1,
                          jittered.report_seconds.back() + lateness + 1);
  ops.push_back({Op::kAdvance, {}, last_advance});
  ops.push_back({Op::kFlush, {}, 0});
  ops.push_back({Op::kDetect, {}, 0});
  return ops;
}

void ApplyOp(StreamEngine& engine, const Op& op) {
  switch (op.kind) {
    case Op::kIngest: {
      const Status status = engine.Ingest(op.event);
      ASSERT_TRUE(status.ok()) << status.ToString();
      break;
    }
    case Op::kAdvance: {
      const Status status = engine.Advance(CivilTime(op.watermark));
      ASSERT_TRUE(status.ok()) << status.ToString();
      break;
    }
    case Op::kSnapshot: {
      auto snapshot = engine.Snapshot();
      ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
      break;
    }
    case Op::kDetect: {
      auto outcome = engine.DetectCurrent();
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      break;
    }
    case Op::kFlush: {
      const Status status = engine.Flush();
      ASSERT_TRUE(status.ok()) << status.ToString();
      break;
    }
  }
}

/// The bit-lock comparator: everything in the checkpoint except the WAL
/// position and the freeze-path counters (a recovered engine's first
/// post-recovery freeze may legitimately take the full path where the
/// uninterrupted run used a delta — the *results* are still identical,
/// which is exactly what the delta lock guarantees).
std::string ComparableState(const StreamEngine& engine) {
  EngineCheckpoint c = engine.CaptureState();
  c.wal_seq = 0;
  c.delta_freeze_count = 0;
  c.full_freeze_count = 0;
  return SerializeCheckpoint(c);
}

void ExpectGraphsIdentical(const graphdb::WeightedGraph& a,
                           const graphdb::WeightedGraph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  ASSERT_EQ(a.self_loop_count(), b.self_loop_count());
  EXPECT_EQ(a.total_weight(), b.total_weight());  // bitwise, not NEAR
  for (size_t u = 0; u < a.node_count(); ++u) {
    const auto ui = static_cast<int32_t>(u);
    EXPECT_EQ(a.self_weight(ui), b.self_weight(ui)) << "node " << u;
    auto na = a.neighbors(ui);
    auto nb = b.neighbors(ui);
    ASSERT_EQ(na.size(), nb.size()) << "node " << u;
    for (size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].node, nb[i].node) << "node " << u << " nb " << i;
      EXPECT_EQ(na[i].weight, nb[i].weight) << "node " << u << " nb " << i;
    }
  }
}

void RunKillPointLock(int64_t window_seconds, uint64_t seed,
                      const std::string& tag) {
  const int64_t lateness = 900;
  const std::vector<Op> ops = BuildOpScript(lateness, seed);

  StreamEngineConfig base;
  base.station_count = 24;
  base.window_seconds = window_seconds;
  base.max_lateness_seconds = lateness;
  base.suppress_duplicate_rentals = true;
  base.detection.options.seed = 7;

  // The uninterrupted reference run, no durability.
  StreamEngine reference(base);
  for (const Op& op : ops) {
    ApplyOp(reference, op);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
  }

  Rng rng(seed * 1000003 + 17);
  for (int trial = 0; trial < 4; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const fs::path dir = FreshDir(tag + "_" + std::to_string(trial));
    StreamEngineConfig durable = base;
    durable.durability.enabled = true;
    durable.durability.directory = dir.string();
    durable.durability.segment_bytes = 1 << 14;  // force rotations
    durable.durability.sync_interval_records = 64;

    const auto kill = static_cast<size_t>(rng.NextBounded(ops.size() + 1));
    const size_t checkpoint_every = 150 + rng.NextBounded(200);
    size_t checkpoints = 0;
    {
      StreamEngine engine(durable);
      for (size_t i = 0; i < kill; ++i) {
        ApplyOp(engine, ops[i]);
        ASSERT_FALSE(::testing::Test::HasFatalFailure());
        ASSERT_EQ(engine.wal_seq(), i + 1) << "op/seq mapping drifted";
        if ((i + 1) % checkpoint_every == 0) {
          ASSERT_TRUE(engine.Checkpoint().ok());
          ++checkpoints;
        }
      }
    }  // "crash" — the writer flushed its buffer, nothing else ran

    // Maybe tear the WAL tail: a crash mid-append leaves a half frame.
    if (rng.NextDouble() < 0.5) {
      auto segments = SortedFiles(dir, ".log");
      if (!segments.empty()) {
        const fs::path& tail = segments.back();
        const auto size = static_cast<int64_t>(fs::file_size(tail));
        const int64_t tear =
            std::min<int64_t>(size, 1 + rng.NextInt(0, 39));
        fs::resize_file(tail, static_cast<uint64_t>(size - tear));
      }
    }
    // Maybe bit-rot the newest checkpoint — only when an older one
    // survives to fall back to (with one checkpoint, rotting it can
    // legitimately strand pruned WAL history; that is real data loss,
    // not a recovery bug).
    if (checkpoints >= 2 && rng.NextDouble() < 0.5) {
      auto files = SortedFiles(dir, ".ckpt");
      if (files.size() >= 2) FlipByteAt(files.back(), 6);
    }

    StreamEngine::RecoveryStats stats;
    auto recovered = StreamEngine::Recover(durable, &stats);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    ASSERT_LE(stats.recovered_seq, kill);
    EXPECT_EQ(stats.replay_errors, 0u);
    EXPECT_EQ((*recovered)->wal_seq(), stats.recovered_seq);

    // Resume exactly where the log left off and finish the script.
    for (size_t i = stats.recovered_seq; i < ops.size(); ++i) {
      ApplyOp(**recovered, ops[i]);
      ASSERT_FALSE(::testing::Test::HasFatalFailure());
      ASSERT_EQ((*recovered)->wal_seq(), i + 1);
    }

    EXPECT_EQ(ComparableState(**recovered), ComparableState(reference))
        << "recovered state diverged from the uninterrupted run";
    auto snap_a = (*recovered)->LatestSnapshot();
    auto snap_b = reference.LatestSnapshot();
    ASSERT_NE(snap_a, nullptr);
    ASSERT_NE(snap_b, nullptr);
    EXPECT_EQ(snap_a->epoch, snap_b->epoch);
    EXPECT_EQ(snap_a->window_start, snap_b->window_start);
    EXPECT_EQ(snap_a->window_end, snap_b->window_end);
    EXPECT_EQ(snap_a->trip_count, snap_b->trip_count);
    ExpectGraphsIdentical(snap_a->graph, snap_b->graph);
    EXPECT_EQ(snap_a->profiles.day, snap_b->profiles.day);
    EXPECT_EQ(snap_a->profiles.hour, snap_b->profiles.hour);
    fs::remove_all(dir);
  }
}

TEST(StreamDurabilityLockTest, KillPointRecoveryIsBitIdenticalSliding) {
  RunKillPointLock(/*window_seconds=*/86400, /*seed=*/11, "kill_sliding");
}

TEST(StreamDurabilityLockTest, KillPointRecoveryIsBitIdenticalLandmark) {
  RunKillPointLock(/*window_seconds=*/0, /*seed=*/12, "kill_landmark");
}

// ---------------------------------------------------------------------
// Sharded kill-point recovery. The raw-checkpoint comparator above does
// not transfer to shard_count > 1: Checkpoint()'s barrier mutates shard
// clocks without logging anything (the mutations are idempotent maxima
// the next barrier re-derives), so a run recovered from an *older*
// checkpoint can lag the uninterrupted run's per-shard watermarks and
// applied counters until the next barrier — while every published
// snapshot stays bit-identical. The sharded lock therefore compares
// what the engine actually serves after the script's final barrier:
// the published snapshot, the Louvain partition, and the aggregate
// stream counters.

void RunShardedKillPointLock(int64_t window_seconds, size_t shard_count,
                             uint64_t seed, const std::string& tag) {
  const int64_t lateness = 900;
  const std::vector<Op> ops = BuildOpScript(lateness, seed);

  StreamEngineConfig base;
  base.station_count = 24;
  base.window_seconds = window_seconds;
  base.max_lateness_seconds = lateness;
  base.suppress_duplicate_rentals = true;
  base.detection.options.seed = 7;
  base.shard_count = shard_count;

  // The uninterrupted sharded reference, no durability.
  StreamEngine reference(base);
  for (const Op& op : ops) {
    ApplyOp(reference, op);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
  }

  Rng rng(seed * 1000003 + 29);
  for (int trial = 0; trial < 3; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const fs::path dir = FreshDir(tag + "_" + std::to_string(trial));
    StreamEngineConfig durable = base;
    durable.durability.enabled = true;
    durable.durability.directory = dir.string();
    durable.durability.segment_bytes = 1 << 14;
    durable.durability.sync_interval_records = 64;

    const auto kill = static_cast<size_t>(rng.NextBounded(ops.size() + 1));
    // Fixed cadence: which checkpoints exist must not depend on the
    // trial, only where the kill lands relative to them.
    const size_t checkpoint_every = 180;
    {
      StreamEngine engine(durable);
      ASSERT_EQ(engine.shard_count(), shard_count);
      for (size_t i = 0; i < kill; ++i) {
        ApplyOp(engine, ops[i]);
        ASSERT_FALSE(::testing::Test::HasFatalFailure());
        ASSERT_EQ(engine.wal_seq(), i + 1) << "op/seq mapping drifted";
        if ((i + 1) % checkpoint_every == 0) {
          ASSERT_TRUE(engine.Checkpoint().ok());
        }
      }
    }  // "crash": workers joined, writer flushed, nothing else ran

    if (rng.NextDouble() < 0.5) {
      auto segments = SortedFiles(dir, ".log");
      if (!segments.empty()) {
        const fs::path& tail = segments.back();
        const auto size = static_cast<int64_t>(fs::file_size(tail));
        const int64_t tear = std::min<int64_t>(size, 1 + rng.NextInt(0, 39));
        fs::resize_file(tail, static_cast<uint64_t>(size - tear));
      }
    }

    StreamEngine::RecoveryStats stats;
    auto recovered = StreamEngine::Recover(durable, &stats);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    ASSERT_LE(stats.recovered_seq, kill);
    EXPECT_EQ(stats.replay_errors, 0u);
    EXPECT_EQ((*recovered)->wal_seq(), stats.recovered_seq);
    EXPECT_EQ((*recovered)->shard_count(), shard_count);

    for (size_t i = stats.recovered_seq; i < ops.size(); ++i) {
      ApplyOp(**recovered, ops[i]);
      ASSERT_FALSE(::testing::Test::HasFatalFailure());
      ASSERT_EQ((*recovered)->wal_seq(), i + 1);
    }

    // The script ends with Flush (a full barrier) + Detect: both engines
    // are quiescent and aligned, so the aggregate counters and the
    // served snapshot must agree exactly.
    EXPECT_EQ((*recovered)->ingested_count(), reference.ingested_count());
    EXPECT_EQ((*recovered)->trip_count(), reference.trip_count());
    EXPECT_EQ((*recovered)->expired_count(), reference.expired_count());
    EXPECT_EQ((*recovered)->watermark(), reference.watermark());
    EXPECT_EQ((*recovered)->reordered_count(), reference.reordered_count());
    EXPECT_EQ((*recovered)->late_dropped_count(),
              reference.late_dropped_count());
    EXPECT_EQ((*recovered)->duplicate_count(), reference.duplicate_count());
    EXPECT_EQ((*recovered)->buffered_count(), 0u);

    auto snap_a = (*recovered)->LatestSnapshot();
    auto snap_b = reference.LatestSnapshot();
    ASSERT_NE(snap_a, nullptr);
    ASSERT_NE(snap_b, nullptr);
    EXPECT_EQ(snap_a->epoch, snap_b->epoch);
    EXPECT_EQ(snap_a->window_start, snap_b->window_start);
    EXPECT_EQ(snap_a->window_end, snap_b->window_end);
    EXPECT_EQ(snap_a->trip_count, snap_b->trip_count);
    ExpectGraphsIdentical(snap_a->graph, snap_b->graph);
    EXPECT_EQ(snap_a->profiles.day, snap_b->profiles.day);
    EXPECT_EQ(snap_a->profiles.hour, snap_b->profiles.hour);

    auto detect_a = (*recovered)->DetectCurrent();
    auto detect_b = reference.DetectCurrent();
    ASSERT_TRUE(detect_a.ok());
    ASSERT_TRUE(detect_b.ok());
    EXPECT_EQ(detect_a->result.partition.assignment,
              detect_b->result.partition.assignment);
    EXPECT_EQ(detect_a->result.modularity,
              detect_b->result.modularity);  // bitwise
    fs::remove_all(dir);
  }
}

TEST(StreamDurabilityLockTest, ShardedKillPointRecoveryConvergesSliding) {
  RunShardedKillPointLock(/*window_seconds=*/86400, /*shard_count=*/2,
                          /*seed=*/13, "kill_sharded_sliding");
}

TEST(StreamDurabilityLockTest, ShardedKillPointRecoveryConvergesLandmark) {
  RunShardedKillPointLock(/*window_seconds=*/0, /*shard_count=*/3,
                          /*seed=*/14, "kill_sharded_landmark");
}

}  // namespace
}  // namespace bikegraph::stream
