#include "data/dataset.h"

#include <cmath>

#include "core/civil_time.h"

#include <gtest/gtest.h>

namespace bikegraph::data {
namespace {

CivilTime At(int h) {
  return CivilTime::FromCalendar(2020, 6, 1, h, 0, 0).ValueOrDie();
}

Dataset SmallDataset() {
  std::vector<LocationRecord> locs = {
      {1, {53.35, -6.26}, true, "Stn A"},
      {2, {53.36, -6.25}, true, "Stn B"},
      {3, {53.34, -6.27}, false, ""},
  };
  std::vector<RentalRecord> rentals;
  RentalRecord r;
  r.id = 1;
  r.bike_id = 5;
  r.start_time = At(8);
  r.end_time = At(9);
  r.rental_location_id = 1;
  r.return_location_id = 3;
  rentals.push_back(r);
  r.id = 2;
  r.rental_location_id = 3;
  r.return_location_id = 2;
  rentals.push_back(r);
  return Dataset(std::move(locs), std::move(rentals));
}

TEST(DatasetTest, SummarizeCounts) {
  Dataset ds = SmallDataset();
  auto s = ds.Summarize();
  EXPECT_EQ(s.station_count, 2u);
  EXPECT_EQ(s.location_count, 3u);
  EXPECT_EQ(s.rental_count, 2u);
}

TEST(DatasetTest, FindLocation) {
  Dataset ds = SmallDataset();
  ASSERT_NE(ds.FindLocation(1), nullptr);
  EXPECT_EQ(ds.FindLocation(1)->name, "Stn A");
  EXPECT_EQ(ds.FindLocation(99), nullptr);
  EXPECT_TRUE(ds.HasLocation(3));
  EXPECT_FALSE(ds.HasLocation(0));
}

TEST(DatasetTest, ValidatePassesOnCleanData) {
  EXPECT_TRUE(SmallDataset().Validate().ok());
}

TEST(DatasetTest, ValidateCatchesDanglingFk) {
  Dataset ds = SmallDataset();
  ds.mutable_rentals()->front().return_location_id = 999;
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesMissingFk) {
  Dataset ds = SmallDataset();
  ds.mutable_rentals()->front().rental_location_id = kInvalidId;
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesDuplicateLocationIds) {
  Dataset ds = SmallDataset();
  ds.mutable_locations()->push_back({1, {53.0, -6.0}, false, ""});
  ds.RebuildIndex();
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesTimeTravel) {
  Dataset ds = SmallDataset();
  ds.mutable_rentals()->front().end_time = At(7);
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, CsvRoundTripPreservesEverything) {
  Dataset ds = SmallDataset();
  auto parsed =
      Dataset::FromCsvStrings(ds.LocationsCsvString(), ds.RentalsCsvString());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->locations().size(), 3u);
  EXPECT_EQ(parsed->rentals().size(), 2u);
  EXPECT_EQ(parsed->FindLocation(1)->name, "Stn A");
  EXPECT_TRUE(parsed->FindLocation(1)->is_station);
  EXPECT_FALSE(parsed->FindLocation(3)->is_station);
  EXPECT_NEAR(parsed->FindLocation(3)->position.lat, 53.34, 1e-6);
  EXPECT_EQ(parsed->rentals()[0].start_time, At(8));
  EXPECT_EQ(parsed->rentals()[1].return_location_id, 2);
}

TEST(DatasetTest, CsvRoundTripPreservesMissingValues) {
  std::vector<LocationRecord> locs;
  LocationRecord no_coords;
  no_coords.id = 7;
  locs.push_back(no_coords);
  std::vector<RentalRecord> rentals;
  RentalRecord r;
  r.id = 1;
  r.bike_id = 2;
  r.start_time = At(10);
  r.end_time = At(11);
  r.rental_location_id = kInvalidId;  // missing FK survives round trip
  r.return_location_id = 7;
  rentals.push_back(r);
  Dataset ds(std::move(locs), std::move(rentals));

  auto parsed =
      Dataset::FromCsvStrings(ds.LocationsCsvString(), ds.RentalsCsvString());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_FALSE(parsed->locations()[0].has_coordinates());
  EXPECT_EQ(parsed->rentals()[0].rental_location_id, kInvalidId);
  EXPECT_EQ(parsed->rentals()[0].return_location_id, 7);
}

TEST(DatasetTest, WriteCsvToDiskAndBack) {
  Dataset ds = SmallDataset();
  std::string dir = ::testing::TempDir();
  std::string lpath = dir + "/locs.csv", rpath = dir + "/rentals.csv";
  ASSERT_TRUE(ds.WriteCsv(lpath, rpath).ok());
  auto back = Dataset::ReadCsv(lpath, rpath);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->Summarize().rental_count, 2u);
  std::remove(lpath.c_str());
  std::remove(rpath.c_str());
}

TEST(RecordTest, DurationSeconds) {
  RentalRecord r;
  r.start_time = At(8);
  r.end_time = At(9);
  EXPECT_EQ(r.DurationSeconds(), 3600);
}

TEST(RecordTest, HasCoordinatesChecksNan) {
  LocationRecord loc;
  EXPECT_FALSE(loc.has_coordinates());
  loc.position = {53.0, -6.0};
  EXPECT_TRUE(loc.has_coordinates());
  loc.position.lon = std::nan("");
  EXPECT_FALSE(loc.has_coordinates());
}

}  // namespace
}  // namespace bikegraph::data
