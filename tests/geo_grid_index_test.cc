#include "geo/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <tuple>

#include "core/rng.h"
#include "geo/haversine.h"

#include <gtest/gtest.h>

namespace bikegraph::geo {
namespace {

TEST(GridIndexTest, EmptyIndexBehaviour) {
  GridIndex index;
  EXPECT_TRUE(index.empty());
  EXPECT_EQ(index.WithinRadius({53.35, -6.26}, 100.0).size(), 0u);
  EXPECT_EQ(index.Nearest({53.35, -6.26}).id, -1);
}

TEST(GridIndexTest, RejectsInvalidPoints) {
  GridIndex index;
  EXPECT_FALSE(index.Add(1, LatLon(std::nan(""), 0.0)));
  EXPECT_TRUE(index.Add(2, LatLon(53.35, -6.26)));
  EXPECT_EQ(index.size(), 1u);
}

TEST(GridIndexTest, WithinRadiusExactBoundary) {
  GridIndex index(50.0);
  LatLon center(53.35, -6.26);
  index.Add(1, Offset(center, 99.9, 90.0));
  index.Add(2, Offset(center, 100.1, 90.0));
  auto hits = index.WithinRadius(center, 100.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1);
}

TEST(GridIndexTest, NearestFindsClosest) {
  GridIndex index(100.0);
  LatLon center(53.35, -6.26);
  index.Add(10, Offset(center, 500.0, 0.0));
  index.Add(20, Offset(center, 120.0, 90.0));
  index.Add(30, Offset(center, 3000.0, 180.0));
  auto nearest = index.Nearest(center);
  EXPECT_EQ(nearest.id, 20);
  EXPECT_NEAR(nearest.distance_m, 120.0, 0.5);
}

TEST(GridIndexTest, NearestWithExclusion) {
  GridIndex index(100.0);
  LatLon center(53.35, -6.26);
  index.Add(1, center);
  index.Add(2, Offset(center, 80.0, 45.0));
  EXPECT_EQ(index.Nearest(center).id, 1);
  EXPECT_EQ(index.Nearest(center, /*exclude_id=*/1).id, 2);
}

TEST(GridIndexTest, NearestAcrossManyCells) {
  // Nearest neighbour far from the query: the ring search must expand.
  GridIndex index(50.0);
  LatLon center(53.35, -6.26);
  index.Add(7, Offset(center, 4000.0, 270.0));
  auto nearest = index.Nearest(center);
  EXPECT_EQ(nearest.id, 7);
  EXPECT_NEAR(nearest.distance_m, 4000.0, 2.0);
}

TEST(GridIndexTest, KNearestOrdering) {
  GridIndex index(100.0);
  LatLon center(53.35, -6.26);
  for (int i = 1; i <= 5; ++i) {
    index.Add(i, Offset(center, i * 100.0, 90.0));
  }
  auto knn = index.KNearest(center, 3);
  ASSERT_EQ(knn.size(), 3u);
  EXPECT_EQ(knn[0].id, 1);
  EXPECT_EQ(knn[1].id, 2);
  EXPECT_EQ(knn[2].id, 3);
  EXPECT_LT(knn[0].distance_m, knn[1].distance_m);
}

TEST(GridIndexTest, KNearestFewerThanK) {
  GridIndex index(100.0);
  index.Add(1, {53.35, -6.26});
  EXPECT_EQ(index.KNearest({53.35, -6.26}, 10).size(), 1u);
}

TEST(GridIndexTest, PointOfReturnsStoredCoordinate) {
  GridIndex index;
  LatLon p(53.351234, -6.267890);
  index.Add(42, p);
  EXPECT_EQ(index.PointOf(42), p);
  EXPECT_TRUE(std::isnan(index.PointOf(99).lat));
}

TEST(GridIndexTest, CountMatchesList) {
  GridIndex index(75.0);
  LatLon center(53.35, -6.26);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    index.Add(i, Offset(center, rng.NextUniform(0.0, 400.0),
                        rng.NextUniform(0.0, 360.0)));
  }
  for (double radius : {50.0, 150.0, 399.0}) {
    EXPECT_EQ(index.CountWithinRadius(center, radius),
              index.WithinRadius(center, radius).size());
  }
}

// Property test: grid results match a brute-force scan for random points
// and radii (various cell sizes).
class GridIndexPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(GridIndexPropertyTest, MatchesBruteForce) {
  const double cell_size = GetParam();
  GridIndex index(cell_size);
  Rng rng(99);
  const LatLon center(53.35, -6.26);
  std::vector<LatLon> points;
  for (int i = 0; i < 500; ++i) {
    LatLon p = Offset(center, rng.NextUniform(0.0, 2000.0),
                      rng.NextUniform(0.0, 360.0));
    points.push_back(p);
    index.Add(i, p);
  }
  for (int trial = 0; trial < 20; ++trial) {
    LatLon q = Offset(center, rng.NextUniform(0.0, 1500.0),
                      rng.NextUniform(0.0, 360.0));
    double radius = rng.NextUniform(10.0, 800.0);

    std::vector<int64_t> expected;
    int64_t best_id = -1;
    double best_dist = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < points.size(); ++i) {
      double d = HaversineMeters(points[i], q);
      if (d <= radius) expected.push_back(static_cast<int64_t>(i));
      if (d < best_dist ||
          (d == best_dist && static_cast<int64_t>(i) < best_id)) {
        best_dist = d;
        best_id = static_cast<int64_t>(i);
      }
    }
    std::sort(expected.begin(), expected.end());

    EXPECT_EQ(index.WithinRadius(q, radius), expected);
    auto nearest = index.Nearest(q);
    EXPECT_EQ(nearest.id, best_id);
    EXPECT_NEAR(nearest.distance_m, best_dist, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(CellSizes, GridIndexPropertyTest,
                         ::testing::Values(25.0, 100.0, 400.0, 2000.0));

// ---------------------------------------------------------------------------
// Freeze(): the sorted-cell build-once/query-many mode must answer every
// query identically to the lazy-hash representation.
// ---------------------------------------------------------------------------

using PairSet = std::set<std::tuple<int64_t, int64_t>>;

PairSet CollectPairs(const GridIndex& index, double radius) {
  PairSet pairs;
  index.ForEachPairWithinRadius(radius, [&](int64_t a, int64_t b, double) {
    pairs.insert({std::min(a, b), std::max(a, b)});
  });
  return pairs;
}

TEST(GridIndexFreezeTest, FrozenQueriesMatchUnfrozen) {
  const LatLon center(53.35, -6.26);
  Rng rng(123);
  GridIndex lazy(80.0);
  GridIndex frozen(80.0);
  for (int i = 0; i < 400; ++i) {
    LatLon p = Offset(center, rng.NextUniform(0.0, 1500.0),
                      rng.NextUniform(0.0, 360.0));
    lazy.Add(i, p);
    frozen.Add(i, p);
  }
  frozen.Freeze();
  EXPECT_TRUE(frozen.frozen());
  EXPECT_FALSE(lazy.frozen());

  for (int trial = 0; trial < 15; ++trial) {
    LatLon q = Offset(center, rng.NextUniform(0.0, 1200.0),
                      rng.NextUniform(0.0, 360.0));
    const double radius = rng.NextUniform(20.0, 600.0);
    EXPECT_EQ(frozen.WithinRadius(q, radius), lazy.WithinRadius(q, radius));
    EXPECT_EQ(frozen.CountWithinRadius(q, radius),
              lazy.CountWithinRadius(q, radius));
    auto nf = frozen.Nearest(q);
    auto nl = lazy.Nearest(q);
    EXPECT_EQ(nf.id, nl.id);
    EXPECT_EQ(nf.distance_m, nl.distance_m);
    auto kf = frozen.KNearest(q, 7);
    auto kl = lazy.KNearest(q, 7);
    ASSERT_EQ(kf.size(), kl.size());
    for (size_t i = 0; i < kf.size(); ++i) {
      EXPECT_EQ(kf[i].id, kl[i].id);
      EXPECT_EQ(kf[i].distance_m, kl[i].distance_m);
    }
  }
  // The all-pairs sweep enumerates the same pair set.
  for (double radius : {60.0, 200.0}) {
    EXPECT_EQ(CollectPairs(frozen, radius), CollectPairs(lazy, radius));
  }
  EXPECT_EQ(frozen.PointOf(17).lat, lazy.PointOf(17).lat);
}

TEST(GridIndexFreezeTest, AddAfterFreezeThaws) {
  const LatLon center(53.35, -6.26);
  GridIndex index(100.0);
  index.Add(0, center);
  index.Add(1, Offset(center, 120.0, 90.0));
  index.Freeze();
  ASSERT_TRUE(index.frozen());
  EXPECT_EQ(index.CountWithinRadius(center, 50.0), 1u);

  // Adding thaws; queries see old and new points.
  EXPECT_TRUE(index.Add(2, Offset(center, 30.0, 0.0)));
  EXPECT_FALSE(index.frozen());
  EXPECT_EQ(index.CountWithinRadius(center, 50.0), 2u);
  EXPECT_EQ(index.WithinRadius(center, 200.0),
            (std::vector<int64_t>{0, 1, 2}));

  // Re-freezing works and stays consistent.
  index.Freeze();
  EXPECT_EQ(index.WithinRadius(center, 200.0),
            (std::vector<int64_t>{0, 1, 2}));
  auto n = index.Nearest(center, /*exclude_id=*/0);
  EXPECT_EQ(n.id, 2);
}

TEST(GridIndexFreezeTest, FreezeEmptyAndIdempotent) {
  GridIndex index;
  index.Freeze();
  index.Freeze();
  EXPECT_TRUE(index.frozen());
  EXPECT_EQ(index.Nearest({53.35, -6.26}).id, -1);
  EXPECT_EQ(index.WithinRadius({53.35, -6.26}, 500.0).size(), 0u);
}

}  // namespace
}  // namespace bikegraph::geo
