#include "data/synthetic.h"

#include <set>

#include "data/cleaning.h"
#include "geo/dublin.h"
#include "geo/haversine.h"

#include <gtest/gtest.h>

#include "core/checked_cast.h"

using bikegraph::AsIndex;

namespace bikegraph::data {
namespace {

/// Small config for fast unit tests (the full-size generator is exercised
/// by the integration test and the benches).
SyntheticConfig SmallConfig() {
  SyntheticConfig cfg;
  cfg.clean_rental_count = 4000;
  cfg.station_count = 40;
  cfg.micro_concentration = 120.0;
  return cfg;
}

TEST(SyntheticTest, DeterministicForSeed) {
  auto a = GenerateSyntheticMoby(SmallConfig());
  auto b = GenerateSyntheticMoby(SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->locations().size(), b->locations().size());
  ASSERT_EQ(a->rentals().size(), b->rentals().size());
  for (size_t i = 0; i < a->rentals().size(); ++i) {
    EXPECT_EQ(a->rentals()[i].rental_location_id,
              b->rentals()[i].rental_location_id);
    EXPECT_EQ(a->rentals()[i].start_time, b->rentals()[i].start_time);
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticConfig c1 = SmallConfig(), c2 = SmallConfig();
  c2.seed = 777;
  auto a = GenerateSyntheticMoby(c1);
  auto b = GenerateSyntheticMoby(c2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Some rentals must differ.
  bool any_diff = a->rentals().size() != b->rentals().size();
  for (size_t i = 0; !any_diff && i < a->rentals().size(); ++i) {
    any_diff = a->rentals()[i].rental_location_id !=
               b->rentals()[i].rental_location_id;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, StationCountsMatchConfig) {
  auto ds = GenerateSyntheticMoby(SmallConfig());
  ASSERT_TRUE(ds.ok());
  auto summary = ds->Summarize();
  EXPECT_EQ(summary.station_count, 40u + 3u);  // good + bad stations
}

TEST(SyntheticTest, RentalTimesInsideStudyWindow) {
  auto ds = GenerateSyntheticMoby(SmallConfig());
  ASSERT_TRUE(ds.ok());
  const CivilTime start = CivilTime::FromCalendar(2020, 1, 3).ValueOrDie();
  const CivilTime end = CivilTime::FromCalendar(2021, 9, 21).ValueOrDie();
  for (const auto& r : ds->rentals()) {
    EXPECT_GE(r.start_time, start);
    EXPECT_LT(r.start_time, end);
    EXPECT_GE(r.end_time, r.start_time);
  }
}

TEST(SyntheticTest, CleaningRestoresConfiguredCounts) {
  SyntheticConfig cfg = SmallConfig();
  auto ds = GenerateSyntheticMoby(cfg);
  ASSERT_TRUE(ds.ok());
  auto cleaned = CleanDataset(*ds, geo::DublinLand());
  ASSERT_TRUE(cleaned.ok()) << cleaned.status();
  EXPECT_EQ(cleaned->report.after.rental_count, cfg.clean_rental_count);
  EXPECT_EQ(cleaned->report.after.station_count,
            static_cast<size_t>(cfg.station_count));
  EXPECT_EQ(cleaned->report.stations_removed,
            static_cast<size_t>(cfg.bad_station_count));
}

TEST(SyntheticTest, CleanLocationsAreOnLand) {
  auto ds = GenerateSyntheticMoby(SmallConfig());
  ASSERT_TRUE(ds.ok());
  auto cleaned = CleanDataset(*ds, geo::DublinLand());
  ASSERT_TRUE(cleaned.ok());
  geo::Region land = geo::DublinLand();
  for (const auto& loc : cleaned->dataset.locations()) {
    ASSERT_TRUE(loc.has_coordinates());
    EXPECT_TRUE(land.Contains(loc.position))
        << loc.id << " at " << loc.position.ToString();
  }
}

TEST(SyntheticTest, GpsJitterCreatesNearDuplicateLocations) {
  // The paper observed many distinct locations < 3 m apart; the generator
  // must reproduce that property.
  auto ds = GenerateSyntheticMoby(SmallConfig());
  ASSERT_TRUE(ds.ok());
  size_t near_duplicates = 0;
  const auto& locs = ds->locations();
  for (size_t i = 0; i + 1 < locs.size() && near_duplicates < 5; ++i) {
    if (!locs[i].has_coordinates()) continue;
    for (size_t j = i + 1; j < std::min(locs.size(), i + 200); ++j) {
      if (!locs[j].has_coordinates()) continue;
      if (geo::HaversineMeters(locs[i].position, locs[j].position) < 3.0) {
        ++near_duplicates;
        break;
      }
    }
  }
  EXPECT_GE(near_duplicates, 5u);
}

TEST(SyntheticTest, StationSitesRespectMinSeparation) {
  SyntheticConfig cfg = SmallConfig();
  auto sites = GenerateStationSites(cfg);
  ASSERT_EQ(sites.size(), static_cast<size_t>(cfg.station_count));
  for (size_t i = 0; i < sites.size(); ++i) {
    for (size_t j = i + 1; j < sites.size(); ++j) {
      EXPECT_GE(geo::HaversineMeters(sites[i], sites[j]),
                cfg.station_min_separation_m - 1.0);
    }
  }
}

TEST(SyntheticTest, BikeIdsWithinFleet) {
  auto ds = GenerateSyntheticMoby(SmallConfig());
  ASSERT_TRUE(ds.ok());
  for (const auto& r : ds->rentals()) {
    EXPECT_GE(r.bike_id, 1);
    EXPECT_LE(r.bike_id, 95);
  }
}

TEST(SyntheticTest, RejectsNonsenseConfig) {
  SyntheticConfig cfg;
  cfg.station_count = 0;
  EXPECT_FALSE(GenerateSyntheticMoby(cfg).ok());
  cfg = SyntheticConfig();
  cfg.clean_rental_count = 0;
  EXPECT_FALSE(GenerateSyntheticMoby(cfg).ok());
  cfg = SyntheticConfig();
  cfg.end_year = 2019;  // window before start
  EXPECT_FALSE(GenerateSyntheticMoby(cfg).ok());
}

TEST(ProfileTest, CommuteWeekdayHasDoubleRush) {
  auto p = HourProfile(geo::Hotspot::Kind::kCommute, /*weekend=*/false);
  // 8am and 5pm dominate midday and night.
  EXPECT_GT(p[8], p[13]);
  EXPECT_GT(p[17], p[13]);
  EXPECT_GT(p[8], p[3] * 10);
}

TEST(ProfileTest, LeisurePeaksMidday) {
  auto p = HourProfile(geo::Hotspot::Kind::kLeisure, /*weekend=*/true);
  int argmax = 0;
  for (int h = 1; h < 24; ++h) {
    if (p[AsIndex(h)] > p[AsIndex(argmax)]) argmax = h;
  }
  EXPECT_GE(argmax, 11);
  EXPECT_LE(argmax, 16);
}

TEST(ProfileTest, DayProfilesContrastWeekend) {
  auto commute = DayProfile(geo::Hotspot::Kind::kCommute);
  auto leisure = DayProfile(geo::Hotspot::Kind::kLeisure);
  // Commute: weekdays above weekend; leisure: the reverse.
  EXPECT_GT(commute[0], commute[5]);
  EXPECT_LT(leisure[0], leisure[5]);
}

TEST(ProfileTest, SeasonalCovidDip) {
  // April 2020 (full lockdown) far below June 2021 (recovery).
  EXPECT_LT(SeasonalFactor(2020, 4), SeasonalFactor(2021, 6) * 0.5);
  // Summer beats winter within a year.
  EXPECT_GT(SeasonalFactor(2021, 7), SeasonalFactor(2021, 1));
}

}  // namespace
}  // namespace bikegraph::data
