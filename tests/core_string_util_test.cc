#include "core/string_util.h"

#include <gtest/gtest.h>

namespace bikegraph {
namespace {

TEST(SplitTest, BasicSplit) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  auto parts = Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, NoDelimiterYieldsWholeString) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(ToLowerTest, AsciiLowercasing) {
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
}

TEST(ParseIntTest, ParsesValidIntegers) {
  EXPECT_EQ(*ParseInt("42"), 42);
  EXPECT_EQ(*ParseInt("-17"), -17);
  EXPECT_EQ(*ParseInt("  99  "), 99);
  EXPECT_EQ(*ParseInt("0"), 0);
}

TEST(ParseIntTest, RejectsInvalid) {
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("abc").ok());
  EXPECT_FALSE(ParseInt("12x").ok());
  EXPECT_FALSE(ParseInt("1.5").ok());
  EXPECT_FALSE(ParseInt("999999999999999999999999").ok());
}

TEST(ParseDoubleTest, ParsesValidDoubles) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-6.2603"), -6.2603);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e3"), 1000.0);
}

TEST(ParseDoubleTest, RejectsInvalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("12.3.4").ok());
  EXPECT_FALSE(ParseDouble("lat").ok());
}

TEST(FormatTest, FormatDoubleDecimals) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(-0.5, 3), "-0.500");
}

TEST(FormatTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(61872), "61,872");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(-61872), "-61,872");
}

}  // namespace
}  // namespace bikegraph
