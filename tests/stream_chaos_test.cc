// Hostile-input chaos suite: randomized streams full of demand surges,
// station outages and additions, clock skew, duplicate storms, and
// late-event floods aimed at the admission horizon. No golden outputs —
// the checks are invariants: every call succeeds under kDrop, the
// engine's counters reconcile exactly, profiles stay consistent with the
// live window, desync never fires, and memory stays bounded. Run under
// ASan/UBSan via `tools/ci.sh --chaos`.

#include <array>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/civil_time.h"
#include "core/rng.h"
#include "stream/chaos.h"
#include "stream/checkpoint.h"
#include "stream/engine.h"

#include <gtest/gtest.h>

namespace bikegraph::stream {
namespace {

namespace fs = std::filesystem;

StreamEngineConfig EngineConfigFor(const ChaosConfig& chaos,
                                   ReorderBackend backend) {
  StreamEngineConfig config;
  config.station_count = chaos.station_count;
  config.window_seconds = 6 * 3600;
  config.max_lateness_seconds = chaos.max_lateness_seconds;
  config.late_policy = LateEventPolicy::kDrop;
  config.suppress_duplicate_rentals = true;
  config.reorder_backend = backend;
  config.detection.options.seed = 19;
  return config;
}

void ApplyAction(StreamEngine& engine, const ChaosAction& action) {
  if (action.kind == ChaosAction::Kind::kEvent) {
    const Status status = engine.Ingest(action.event);
    ASSERT_TRUE(status.ok()) << status.ToString();
  } else {
    const Status status = engine.Advance(action.watermark);
    ASSERT_TRUE(status.ok()) << status.ToString();
  }
}

/// The invariants every hostile run must uphold, checked after Flush.
void CheckInvariants(const StreamEngine& engine, const ChaosStats& stats) {
  // Exact counter reconciliation: every generated event is accounted for
  // as released into the window, dropped late, or suppressed duplicate —
  // nothing lost, nothing double-counted. (After Flush nothing is still
  // buffered.)
  EXPECT_EQ(engine.buffered_count(), 0u);
  EXPECT_EQ(engine.window().ingested_count() + engine.late_dropped_count() +
                engine.duplicate_count(),
            stats.events);
  // The duplicate-storm scenario is the only duplicate source, and
  // suppression (set large enough to never evict here) must catch every
  // redelivery whose original is still inside the horizon — at minimum,
  // nothing beyond the generated redeliveries is ever suppressed.
  EXPECT_LE(engine.duplicate_count(), stats.duplicate_redeliveries);
  // The ApplyDelta desync guard must never fire on hostile-but-legal
  // input; a non-zero count here is window-graph state corruption.
  EXPECT_EQ(engine.delta_desync_count(), 0u);
  // Bounded memory: the id set never outgrew its cap.
  if (engine.config().max_duplicate_rental_ids > 0) {
    EXPECT_LE(engine.duplicate_ids_high_water(),
              engine.config().max_duplicate_rental_ids);
  }

  // Window-internal consistency: the pair map, the per-station profiles
  // and the endpoint counters must all describe the same trip multiset
  // (each live trip contributes both endpoints).
  const SlidingWindowGraph& window = engine.window();
  int64_t pair_trips = 0;
  window.ForEachPair([&](int32_t, int32_t, int64_t trips) {
    pair_trips += trips;
  });
  EXPECT_EQ(static_cast<size_t>(pair_trips), window.trip_count());
  int64_t day_total = 0;
  int64_t hour_total = 0;
  int64_t endpoint_total = 0;
  for (size_t s = 0; s < window.station_count(); ++s) {
    const auto si = static_cast<int32_t>(s);
    for (int64_t v : window.DayCounts(si)) day_total += v;
    for (int64_t v : window.HourCounts(si)) hour_total += v;
    endpoint_total += window.EndpointCount(si);
  }
  const auto expected = static_cast<int64_t>(2 * window.trip_count());
  EXPECT_EQ(day_total, expected);
  EXPECT_EQ(hour_total, expected);
  EXPECT_EQ(endpoint_total, expected);
}

TEST(ChaosGeneratorTest, DeterministicAndScenariosFire) {
  ChaosConfig config;
  config.seed = 5;
  const ChaosStream a = GenerateChaosStream(config);
  const ChaosStream b = GenerateChaosStream(config);
  ASSERT_EQ(a.actions.size(), b.actions.size());
  EXPECT_EQ(a.stats.events, b.stats.events);
  EXPECT_EQ(a.stats.duplicate_redeliveries, b.stats.duplicate_redeliveries);
  for (size_t i = 0; i < a.actions.size(); i += 97) {
    EXPECT_EQ(a.actions[i].kind, b.actions[i].kind);
    EXPECT_EQ(a.actions[i].event.rental_id, b.actions[i].event.rental_id);
    EXPECT_EQ(a.actions[i].event.start_time, b.actions[i].event.start_time);
  }
  // A two-day run at the default rates exercises every scenario.
  EXPECT_GT(a.stats.events, 0u);
  EXPECT_GT(a.stats.advances, 0u);
  EXPECT_GT(a.stats.surges, 0u);
  EXPECT_GT(a.stats.outages, 0u);
  EXPECT_GT(a.stats.additions, 0u);
  EXPECT_GT(a.stats.skew_segments, 0u);
  EXPECT_GT(a.stats.duplicate_storms, 0u);
  EXPECT_GT(a.stats.late_floods, 0u);
  EXPECT_GT(a.stats.duplicate_redeliveries, 0u);
  EXPECT_GT(a.stats.boundary_flood_events, 0u);

  ChaosConfig other = config;
  other.seed = 6;
  const ChaosStream c = GenerateChaosStream(other);
  EXPECT_NE(a.stats.events, c.stats.events);
}

TEST(ChaosGeneratorTest, TogglesIsolateScenarios) {
  ChaosConfig calm;
  calm.seed = 3;
  calm.demand_surges = false;
  calm.station_outages = false;
  calm.station_additions = false;
  calm.clock_skew = false;
  calm.duplicate_storms = false;
  calm.late_floods = false;
  const ChaosStream stream = GenerateChaosStream(calm);
  EXPECT_EQ(stream.stats.surges, 0u);
  EXPECT_EQ(stream.stats.outages, 0u);
  EXPECT_EQ(stream.stats.additions, 0u);
  EXPECT_EQ(stream.stats.skew_segments, 0u);
  EXPECT_EQ(stream.stats.duplicate_redeliveries, 0u);
  EXPECT_EQ(stream.stats.boundary_flood_events, 0u);
  EXPECT_EQ(stream.stats.outage_suppressed, 0u);
  EXPECT_EQ(stream.stats.events, stream.stats.fresh_events);
}

class ChaosPropertyTest
    : public ::testing::TestWithParam<std::tuple<ReorderBackend, uint64_t>> {
};

TEST_P(ChaosPropertyTest, HostileStreamUpholdsInvariants) {
  const auto [backend, seed] = GetParam();
  ChaosConfig chaos;
  chaos.seed = seed;
  chaos.duration_seconds = 86'400;  // one day keeps sanitizer runs quick
  const ChaosStream stream = GenerateChaosStream(chaos);

  StreamEngine engine(EngineConfigFor(chaos, backend));
  size_t step = 0;
  for (const ChaosAction& action : stream.actions) {
    ApplyAction(engine, action);
    ASSERT_FALSE(::testing::Test::HasFatalFailure()) << "step " << step;
    // Bounded memory mid-run: the buffer can never hold more events
    // than the generator emitted above the admission horizon.
    if (++step % 4096 == 0) {
      EXPECT_LE(engine.buffered_count(), stream.stats.max_events_in_horizon);
      auto snapshot = engine.Snapshot();
      ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    }
  }
  ASSERT_TRUE(engine.Flush().ok());
  auto outcome = engine.DetectCurrent();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // Planted structure survives the hostility: detection still finds a
  // non-trivial partition over the final window.
  EXPECT_GT(outcome->result.partition.assignment.size(), 0u);
  CheckInvariants(engine, stream.stats);
}

INSTANTIATE_TEST_SUITE_P(
    BackendsAndSeeds, ChaosPropertyTest,
    ::testing::Combine(::testing::Values(ReorderBackend::kWheel,
                                         ReorderBackend::kHeap),
                       ::testing::Values(uint64_t{1}, uint64_t{2},
                                         uint64_t{3})));

TEST(ChaosPropertyTest, DuplicateStormRespectsIdCap) {
  ChaosConfig chaos;
  chaos.seed = 9;
  chaos.duration_seconds = 43'200;
  const ChaosStream stream = GenerateChaosStream(chaos);

  StreamEngineConfig config = EngineConfigFor(chaos, ReorderBackend::kWheel);
  config.max_duplicate_rental_ids = 256;  // far below one horizon of ids
  StreamEngine engine(config);
  for (const ChaosAction& action : stream.actions) {
    ApplyAction(engine, action);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
  }
  ASSERT_TRUE(engine.Flush().ok());
  // The cap held, evictions actually happened (the stream floods more
  // distinct ids than 256 into one horizon), and the engine stayed
  // consistent throughout — duplicates missed past the cap are admitted,
  // not lost.
  EXPECT_LE(engine.duplicate_ids_high_water(), 256u);
  EXPECT_GT(engine.duplicate_ids_evicted(), 0u);
  EXPECT_EQ(engine.window().ingested_count() + engine.late_dropped_count() +
                engine.duplicate_count(),
            stream.stats.events);
  EXPECT_EQ(engine.delta_desync_count(), 0u);
}

// Chaos meets durability: kill a durable engine mid-hostility, recover,
// resume, and the result must match the uninterrupted hostile run bit
// for bit. Chaos actions are all Ingest/Advance, so action i ↔ WAL seq
// i + 1 and the resume point falls straight out of RecoveryStats.
TEST(ChaosDurabilityTest, KillAndRecoverUnderHostileStream) {
  ChaosConfig chaos;
  chaos.seed = 21;
  chaos.duration_seconds = 43'200;
  const ChaosStream stream = GenerateChaosStream(chaos);
  ASSERT_GT(stream.actions.size(), 100u);

  const StreamEngineConfig base =
      EngineConfigFor(chaos, ReorderBackend::kWheel);
  StreamEngine reference(base);
  for (const ChaosAction& action : stream.actions) {
    ApplyAction(reference, action);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
  }
  ASSERT_TRUE(reference.Flush().ok());

  Rng rng(chaos.seed);
  for (int trial = 0; trial < 3; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const fs::path dir = fs::path(::testing::TempDir()) /
                         ("bg_chaos_" + std::to_string(trial));
    fs::remove_all(dir);
    StreamEngineConfig durable = base;
    durable.durability.enabled = true;
    durable.durability.directory = dir.string();
    durable.durability.sync_interval_records = 128;

    const auto kill =
        static_cast<size_t>(rng.NextBounded(stream.actions.size() + 1));
    {
      StreamEngine engine(durable);
      for (size_t i = 0; i < kill; ++i) {
        ApplyAction(engine, stream.actions[i]);
        ASSERT_FALSE(::testing::Test::HasFatalFailure());
        if ((i + 1) % 5000 == 0) {
          ASSERT_TRUE(engine.Checkpoint().ok());
        }
      }
    }
    StreamEngine::RecoveryStats stats;
    auto recovered = StreamEngine::Recover(durable, &stats);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    ASSERT_EQ(stats.recovered_seq, kill);
    for (size_t i = kill; i < stream.actions.size(); ++i) {
      ApplyAction(**recovered, stream.actions[i]);
      ASSERT_FALSE(::testing::Test::HasFatalFailure());
    }
    ASSERT_TRUE((*recovered)->Flush().ok());

    EngineCheckpoint a = (*recovered)->CaptureState();
    EngineCheckpoint b = reference.CaptureState();
    a.wal_seq = b.wal_seq = 0;
    a.delta_freeze_count = b.delta_freeze_count = 0;
    a.full_freeze_count = b.full_freeze_count = 0;
    EXPECT_EQ(SerializeCheckpoint(a), SerializeCheckpoint(b))
        << "recovered hostile run diverged from the uninterrupted one";
    fs::remove_all(dir);
  }
}

}  // namespace
}  // namespace bikegraph::stream
