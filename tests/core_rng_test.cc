#include "core/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

namespace bikegraph {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedStaysInBound) {
  Rng rng(3);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(23);
  for (double mean : {0.5, 3.0, 20.0, 100.0}) {
    const int n = 20000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.NextPoisson(mean);
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(29);
  EXPECT_EQ(rng.NextPoisson(0.0), 0);
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(31);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.NextWeighted(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(RngTest, WeightedIgnoresNegativeWeights) {
  Rng rng(37);
  std::vector<double> w = {-5.0, 1.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextWeighted(w), 1u);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleDeterministicForSeed) {
  std::vector<int> a(50), b(50);
  std::iota(a.begin(), a.end(), 0);
  std::iota(b.begin(), b.end(), 0);
  Rng r1(99), r2(99);
  r1.Shuffle(&a);
  r2.Shuffle(&b);
  EXPECT_EQ(a, b);
}

TEST(RngTest, ShuffleHandlesTinyInputs) {
  Rng rng(43);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {7};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{7});
}

}  // namespace
}  // namespace bikegraph
