file(REMOVE_RECURSE
  "CMakeFiles/bench_query_serving.dir/bench/bench_query_serving.cc.o"
  "CMakeFiles/bench_query_serving.dir/bench/bench_query_serving.cc.o.d"
  "bench_query_serving"
  "bench_query_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
