file(REMOVE_RECURSE
  "CMakeFiles/stream_reorder_test.dir/tests/stream_reorder_test.cc.o"
  "CMakeFiles/stream_reorder_test.dir/tests/stream_reorder_test.cc.o.d"
  "stream_reorder_test"
  "stream_reorder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_reorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
