# Empty dependencies file for stream_reorder_test.
# This may be replaced when dependencies are built.
