# Empty dependencies file for bench_table5_gday.
# This may be replaced when dependencies are built.
