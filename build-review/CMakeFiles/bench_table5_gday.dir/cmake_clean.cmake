file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_gday.dir/bench/bench_table5_gday.cc.o"
  "CMakeFiles/bench_table5_gday.dir/bench/bench_table5_gday.cc.o.d"
  "bench_table5_gday"
  "bench_table5_gday.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_gday.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
