# Empty dependencies file for bench_fig2_selected_map.
# This may be replaced when dependencies are built.
