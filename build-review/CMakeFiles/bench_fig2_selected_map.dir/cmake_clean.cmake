file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_selected_map.dir/bench/bench_fig2_selected_map.cc.o"
  "CMakeFiles/bench_fig2_selected_map.dir/bench/bench_fig2_selected_map.cc.o.d"
  "bench_fig2_selected_map"
  "bench_fig2_selected_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_selected_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
