file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_geo.dir/bench/bench_perf_geo.cc.o"
  "CMakeFiles/bench_perf_geo.dir/bench/bench_perf_geo.cc.o.d"
  "bench_perf_geo"
  "bench_perf_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
