# Empty dependencies file for bench_perf_geo.
# This may be replaced when dependencies are built.
