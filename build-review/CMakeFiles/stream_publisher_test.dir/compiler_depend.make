# Empty compiler generated dependencies file for stream_publisher_test.
# This may be replaced when dependencies are built.
