file(REMOVE_RECURSE
  "CMakeFiles/stream_publisher_test.dir/tests/stream_publisher_test.cc.o"
  "CMakeFiles/stream_publisher_test.dir/tests/stream_publisher_test.cc.o.d"
  "stream_publisher_test"
  "stream_publisher_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_publisher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
