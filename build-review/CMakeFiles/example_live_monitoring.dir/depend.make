# Empty dependencies file for example_live_monitoring.
# This may be replaced when dependencies are built.
