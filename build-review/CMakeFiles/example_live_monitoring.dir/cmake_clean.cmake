file(REMOVE_RECURSE
  "CMakeFiles/example_live_monitoring.dir/examples/live_monitoring.cpp.o"
  "CMakeFiles/example_live_monitoring.dir/examples/live_monitoring.cpp.o.d"
  "example_live_monitoring"
  "example_live_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_live_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
