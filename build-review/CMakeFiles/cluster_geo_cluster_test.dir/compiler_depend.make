# Empty compiler generated dependencies file for cluster_geo_cluster_test.
# This may be replaced when dependencies are built.
