file(REMOVE_RECURSE
  "CMakeFiles/cluster_geo_cluster_test.dir/tests/cluster_geo_cluster_test.cc.o"
  "CMakeFiles/cluster_geo_cluster_test.dir/tests/cluster_geo_cluster_test.cc.o.d"
  "cluster_geo_cluster_test"
  "cluster_geo_cluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_geo_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
