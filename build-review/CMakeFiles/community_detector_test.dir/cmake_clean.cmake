file(REMOVE_RECURSE
  "CMakeFiles/community_detector_test.dir/tests/community_detector_test.cc.o"
  "CMakeFiles/community_detector_test.dir/tests/community_detector_test.cc.o.d"
  "community_detector_test"
  "community_detector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
