file(REMOVE_RECURSE
  "CMakeFiles/example_community_analysis.dir/examples/community_analysis.cpp.o"
  "CMakeFiles/example_community_analysis.dir/examples/community_analysis.cpp.o.d"
  "example_community_analysis"
  "example_community_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_community_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
