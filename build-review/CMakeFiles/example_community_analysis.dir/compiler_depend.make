# Empty compiler generated dependencies file for example_community_analysis.
# This may be replaced when dependencies are built.
