file(REMOVE_RECURSE
  "CMakeFiles/core_status_test.dir/tests/core_status_test.cc.o"
  "CMakeFiles/core_status_test.dir/tests/core_status_test.cc.o.d"
  "core_status_test"
  "core_status_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_status_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
