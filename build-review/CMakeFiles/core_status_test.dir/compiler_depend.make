# Empty compiler generated dependencies file for core_status_test.
# This may be replaced when dependencies are built.
