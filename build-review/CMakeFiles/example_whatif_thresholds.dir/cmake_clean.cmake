file(REMOVE_RECURSE
  "CMakeFiles/example_whatif_thresholds.dir/examples/whatif_thresholds.cpp.o"
  "CMakeFiles/example_whatif_thresholds.dir/examples/whatif_thresholds.cpp.o.d"
  "example_whatif_thresholds"
  "example_whatif_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_whatif_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
