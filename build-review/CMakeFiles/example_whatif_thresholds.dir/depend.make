# Empty dependencies file for example_whatif_thresholds.
# This may be replaced when dependencies are built.
