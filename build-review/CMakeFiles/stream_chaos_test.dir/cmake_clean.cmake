file(REMOVE_RECURSE
  "CMakeFiles/stream_chaos_test.dir/tests/stream_chaos_test.cc.o"
  "CMakeFiles/stream_chaos_test.dir/tests/stream_chaos_test.cc.o.d"
  "stream_chaos_test"
  "stream_chaos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_chaos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
