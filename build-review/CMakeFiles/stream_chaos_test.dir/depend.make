# Empty dependencies file for stream_chaos_test.
# This may be replaced when dependencies are built.
