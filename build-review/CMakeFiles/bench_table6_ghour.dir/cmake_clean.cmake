file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_ghour.dir/bench/bench_table6_ghour.cc.o"
  "CMakeFiles/bench_table6_ghour.dir/bench/bench_table6_ghour.cc.o.d"
  "bench_table6_ghour"
  "bench_table6_ghour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_ghour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
