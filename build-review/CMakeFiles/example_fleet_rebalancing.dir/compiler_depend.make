# Empty compiler generated dependencies file for example_fleet_rebalancing.
# This may be replaced when dependencies are built.
