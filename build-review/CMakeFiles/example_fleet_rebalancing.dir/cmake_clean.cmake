file(REMOVE_RECURSE
  "CMakeFiles/example_fleet_rebalancing.dir/examples/fleet_rebalancing.cpp.o"
  "CMakeFiles/example_fleet_rebalancing.dir/examples/fleet_rebalancing.cpp.o.d"
  "example_fleet_rebalancing"
  "example_fleet_rebalancing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fleet_rebalancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
