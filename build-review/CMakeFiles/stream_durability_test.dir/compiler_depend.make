# Empty compiler generated dependencies file for stream_durability_test.
# This may be replaced when dependencies are built.
