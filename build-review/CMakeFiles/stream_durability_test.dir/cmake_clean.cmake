file(REMOVE_RECURSE
  "CMakeFiles/stream_durability_test.dir/tests/stream_durability_test.cc.o"
  "CMakeFiles/stream_durability_test.dir/tests/stream_durability_test.cc.o.d"
  "stream_durability_test"
  "stream_durability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_durability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
