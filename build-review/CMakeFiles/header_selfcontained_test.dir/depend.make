# Empty dependencies file for header_selfcontained_test.
# This may be replaced when dependencies are built.
