file(REMOVE_RECURSE
  "CMakeFiles/cluster_hac_test.dir/tests/cluster_hac_test.cc.o"
  "CMakeFiles/cluster_hac_test.dir/tests/cluster_hac_test.cc.o.d"
  "cluster_hac_test"
  "cluster_hac_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_hac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
