file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_hourly_profiles.dir/bench/bench_fig7_hourly_profiles.cc.o"
  "CMakeFiles/bench_fig7_hourly_profiles.dir/bench/bench_fig7_hourly_profiles.cc.o.d"
  "bench_fig7_hourly_profiles"
  "bench_fig7_hourly_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_hourly_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
