# Empty compiler generated dependencies file for bench_fig7_hourly_profiles.
# This may be replaced when dependencies are built.
