file(REMOVE_RECURSE
  "CMakeFiles/community_warm_start_test.dir/tests/community_warm_start_test.cc.o"
  "CMakeFiles/community_warm_start_test.dir/tests/community_warm_start_test.cc.o.d"
  "community_warm_start_test"
  "community_warm_start_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_warm_start_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
