# Empty compiler generated dependencies file for community_warm_start_test.
# This may be replaced when dependencies are built.
