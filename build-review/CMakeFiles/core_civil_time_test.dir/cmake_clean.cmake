file(REMOVE_RECURSE
  "CMakeFiles/core_civil_time_test.dir/tests/core_civil_time_test.cc.o"
  "CMakeFiles/core_civil_time_test.dir/tests/core_civil_time_test.cc.o.d"
  "core_civil_time_test"
  "core_civil_time_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_civil_time_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
