# Empty dependencies file for core_civil_time_test.
# This may be replaced when dependencies are built.
