file(REMOVE_RECURSE
  "CMakeFiles/data_cleaning_test.dir/tests/data_cleaning_test.cc.o"
  "CMakeFiles/data_cleaning_test.dir/tests/data_cleaning_test.cc.o.d"
  "data_cleaning_test"
  "data_cleaning_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_cleaning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
