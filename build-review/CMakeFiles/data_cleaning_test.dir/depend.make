# Empty dependencies file for data_cleaning_test.
# This may be replaced when dependencies are built.
