file(REMOVE_RECURSE
  "CMakeFiles/query_service_test.dir/tests/query_service_test.cc.o"
  "CMakeFiles/query_service_test.dir/tests/query_service_test.cc.o.d"
  "query_service_test"
  "query_service_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
