# Empty dependencies file for bench_table2_candidate_graph.
# This may be replaced when dependencies are built.
