# Empty dependencies file for umbrella_header_test.
# This may be replaced when dependencies are built.
