file(REMOVE_RECURSE
  "CMakeFiles/umbrella_header_test.dir/tests/umbrella_header_test.cc.o"
  "CMakeFiles/umbrella_header_test.dir/tests/umbrella_header_test.cc.o.d"
  "umbrella_header_test"
  "umbrella_header_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umbrella_header_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
