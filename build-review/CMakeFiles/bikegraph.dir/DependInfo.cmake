
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/community_stats.cc" "CMakeFiles/bikegraph.dir/src/analysis/community_stats.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/analysis/community_stats.cc.o.d"
  "/root/repo/src/analysis/experiment.cc" "CMakeFiles/bikegraph.dir/src/analysis/experiment.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/analysis/experiment.cc.o.d"
  "/root/repo/src/analysis/temporal_graph.cc" "CMakeFiles/bikegraph.dir/src/analysis/temporal_graph.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/analysis/temporal_graph.cc.o.d"
  "/root/repo/src/cluster/geo_cluster.cc" "CMakeFiles/bikegraph.dir/src/cluster/geo_cluster.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/cluster/geo_cluster.cc.o.d"
  "/root/repo/src/cluster/hac.cc" "CMakeFiles/bikegraph.dir/src/cluster/hac.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/cluster/hac.cc.o.d"
  "/root/repo/src/community/aggregate.cc" "CMakeFiles/bikegraph.dir/src/community/aggregate.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/community/aggregate.cc.o.d"
  "/root/repo/src/community/detector.cc" "CMakeFiles/bikegraph.dir/src/community/detector.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/community/detector.cc.o.d"
  "/root/repo/src/community/fast_greedy.cc" "CMakeFiles/bikegraph.dir/src/community/fast_greedy.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/community/fast_greedy.cc.o.d"
  "/root/repo/src/community/infomap.cc" "CMakeFiles/bikegraph.dir/src/community/infomap.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/community/infomap.cc.o.d"
  "/root/repo/src/community/label_propagation.cc" "CMakeFiles/bikegraph.dir/src/community/label_propagation.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/community/label_propagation.cc.o.d"
  "/root/repo/src/community/louvain.cc" "CMakeFiles/bikegraph.dir/src/community/louvain.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/community/louvain.cc.o.d"
  "/root/repo/src/community/modularity.cc" "CMakeFiles/bikegraph.dir/src/community/modularity.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/community/modularity.cc.o.d"
  "/root/repo/src/community/partition.cc" "CMakeFiles/bikegraph.dir/src/community/partition.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/community/partition.cc.o.d"
  "/root/repo/src/core/civil_time.cc" "CMakeFiles/bikegraph.dir/src/core/civil_time.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/core/civil_time.cc.o.d"
  "/root/repo/src/core/logging.cc" "CMakeFiles/bikegraph.dir/src/core/logging.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/core/logging.cc.o.d"
  "/root/repo/src/core/rng.cc" "CMakeFiles/bikegraph.dir/src/core/rng.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/core/rng.cc.o.d"
  "/root/repo/src/core/status.cc" "CMakeFiles/bikegraph.dir/src/core/status.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/core/status.cc.o.d"
  "/root/repo/src/core/string_util.cc" "CMakeFiles/bikegraph.dir/src/core/string_util.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/core/string_util.cc.o.d"
  "/root/repo/src/data/cleaning.cc" "CMakeFiles/bikegraph.dir/src/data/cleaning.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/data/cleaning.cc.o.d"
  "/root/repo/src/data/csv.cc" "CMakeFiles/bikegraph.dir/src/data/csv.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/data/csv.cc.o.d"
  "/root/repo/src/data/dataset.cc" "CMakeFiles/bikegraph.dir/src/data/dataset.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/data/dataset.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "CMakeFiles/bikegraph.dir/src/data/synthetic.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/data/synthetic.cc.o.d"
  "/root/repo/src/expansion/candidate.cc" "CMakeFiles/bikegraph.dir/src/expansion/candidate.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/expansion/candidate.cc.o.d"
  "/root/repo/src/expansion/final_network.cc" "CMakeFiles/bikegraph.dir/src/expansion/final_network.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/expansion/final_network.cc.o.d"
  "/root/repo/src/expansion/pipeline.cc" "CMakeFiles/bikegraph.dir/src/expansion/pipeline.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/expansion/pipeline.cc.o.d"
  "/root/repo/src/expansion/selection.cc" "CMakeFiles/bikegraph.dir/src/expansion/selection.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/expansion/selection.cc.o.d"
  "/root/repo/src/geo/bbox.cc" "CMakeFiles/bikegraph.dir/src/geo/bbox.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/geo/bbox.cc.o.d"
  "/root/repo/src/geo/dublin.cc" "CMakeFiles/bikegraph.dir/src/geo/dublin.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/geo/dublin.cc.o.d"
  "/root/repo/src/geo/geojson.cc" "CMakeFiles/bikegraph.dir/src/geo/geojson.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/geo/geojson.cc.o.d"
  "/root/repo/src/geo/grid_index.cc" "CMakeFiles/bikegraph.dir/src/geo/grid_index.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/geo/grid_index.cc.o.d"
  "/root/repo/src/geo/haversine.cc" "CMakeFiles/bikegraph.dir/src/geo/haversine.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/geo/haversine.cc.o.d"
  "/root/repo/src/geo/latlon.cc" "CMakeFiles/bikegraph.dir/src/geo/latlon.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/geo/latlon.cc.o.d"
  "/root/repo/src/geo/polygon.cc" "CMakeFiles/bikegraph.dir/src/geo/polygon.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/geo/polygon.cc.o.d"
  "/root/repo/src/graphdb/property_graph.cc" "CMakeFiles/bikegraph.dir/src/graphdb/property_graph.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/graphdb/property_graph.cc.o.d"
  "/root/repo/src/graphdb/property_value.cc" "CMakeFiles/bikegraph.dir/src/graphdb/property_value.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/graphdb/property_value.cc.o.d"
  "/root/repo/src/graphdb/weighted_graph.cc" "CMakeFiles/bikegraph.dir/src/graphdb/weighted_graph.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/graphdb/weighted_graph.cc.o.d"
  "/root/repo/src/metrics/centrality.cc" "CMakeFiles/bikegraph.dir/src/metrics/centrality.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/metrics/centrality.cc.o.d"
  "/root/repo/src/metrics/graph_stats.cc" "CMakeFiles/bikegraph.dir/src/metrics/graph_stats.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/metrics/graph_stats.cc.o.d"
  "/root/repo/src/query/epoch_memo.cc" "CMakeFiles/bikegraph.dir/src/query/epoch_memo.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/query/epoch_memo.cc.o.d"
  "/root/repo/src/query/service.cc" "CMakeFiles/bikegraph.dir/src/query/service.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/query/service.cc.o.d"
  "/root/repo/src/query/workload.cc" "CMakeFiles/bikegraph.dir/src/query/workload.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/query/workload.cc.o.d"
  "/root/repo/src/stream/chaos.cc" "CMakeFiles/bikegraph.dir/src/stream/chaos.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/stream/chaos.cc.o.d"
  "/root/repo/src/stream/checkpoint.cc" "CMakeFiles/bikegraph.dir/src/stream/checkpoint.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/stream/checkpoint.cc.o.d"
  "/root/repo/src/stream/engine.cc" "CMakeFiles/bikegraph.dir/src/stream/engine.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/stream/engine.cc.o.d"
  "/root/repo/src/stream/incremental_community.cc" "CMakeFiles/bikegraph.dir/src/stream/incremental_community.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/stream/incremental_community.cc.o.d"
  "/root/repo/src/stream/reorder_buffer.cc" "CMakeFiles/bikegraph.dir/src/stream/reorder_buffer.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/stream/reorder_buffer.cc.o.d"
  "/root/repo/src/stream/replay.cc" "CMakeFiles/bikegraph.dir/src/stream/replay.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/stream/replay.cc.o.d"
  "/root/repo/src/stream/snapshot.cc" "CMakeFiles/bikegraph.dir/src/stream/snapshot.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/stream/snapshot.cc.o.d"
  "/root/repo/src/stream/wal.cc" "CMakeFiles/bikegraph.dir/src/stream/wal.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/stream/wal.cc.o.d"
  "/root/repo/src/stream/window_graph.cc" "CMakeFiles/bikegraph.dir/src/stream/window_graph.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/stream/window_graph.cc.o.d"
  "/root/repo/src/viz/ascii_table.cc" "CMakeFiles/bikegraph.dir/src/viz/ascii_table.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/viz/ascii_table.cc.o.d"
  "/root/repo/src/viz/map_export.cc" "CMakeFiles/bikegraph.dir/src/viz/map_export.cc.o" "gcc" "CMakeFiles/bikegraph.dir/src/viz/map_export.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
