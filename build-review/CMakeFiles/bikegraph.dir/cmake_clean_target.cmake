file(REMOVE_RECURSE
  "libbikegraph.a"
)
