# Empty dependencies file for bikegraph.
# This may be replaced when dependencies are built.
