file(REMOVE_RECURSE
  "CMakeFiles/bench_stream_throughput.dir/bench/bench_stream_throughput.cc.o"
  "CMakeFiles/bench_stream_throughput.dir/bench/bench_stream_throughput.cc.o.d"
  "bench_stream_throughput"
  "bench_stream_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stream_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
