# Empty dependencies file for bench_stream_throughput.
# This may be replaced when dependencies are built.
