# Empty dependencies file for core_string_util_test.
# This may be replaced when dependencies are built.
