file(REMOVE_RECURSE
  "CMakeFiles/core_string_util_test.dir/tests/core_string_util_test.cc.o"
  "CMakeFiles/core_string_util_test.dir/tests/core_string_util_test.cc.o.d"
  "core_string_util_test"
  "core_string_util_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_string_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
