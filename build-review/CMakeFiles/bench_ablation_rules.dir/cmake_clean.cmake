file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rules.dir/bench/bench_ablation_rules.cc.o"
  "CMakeFiles/bench_ablation_rules.dir/bench/bench_ablation_rules.cc.o.d"
  "bench_ablation_rules"
  "bench_ablation_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
