file(REMOVE_RECURSE
  "CMakeFiles/bench_fig346_community_maps.dir/bench/bench_fig346_community_maps.cc.o"
  "CMakeFiles/bench_fig346_community_maps.dir/bench/bench_fig346_community_maps.cc.o.d"
  "bench_fig346_community_maps"
  "bench_fig346_community_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig346_community_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
