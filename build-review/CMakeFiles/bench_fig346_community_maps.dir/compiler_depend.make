# Empty compiler generated dependencies file for bench_fig346_community_maps.
# This may be replaced when dependencies are built.
