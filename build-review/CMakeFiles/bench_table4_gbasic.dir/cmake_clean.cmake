file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_gbasic.dir/bench/bench_table4_gbasic.cc.o"
  "CMakeFiles/bench_table4_gbasic.dir/bench/bench_table4_gbasic.cc.o.d"
  "bench_table4_gbasic"
  "bench_table4_gbasic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_gbasic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
