file(REMOVE_RECURSE
  "CMakeFiles/query_concurrent_test.dir/tests/query_concurrent_test.cc.o"
  "CMakeFiles/query_concurrent_test.dir/tests/query_concurrent_test.cc.o.d"
  "query_concurrent_test"
  "query_concurrent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_concurrent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
