# Empty dependencies file for query_concurrent_test.
# This may be replaced when dependencies are built.
