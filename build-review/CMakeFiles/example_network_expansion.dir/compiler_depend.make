# Empty compiler generated dependencies file for example_network_expansion.
# This may be replaced when dependencies are built.
