file(REMOVE_RECURSE
  "CMakeFiles/example_network_expansion.dir/examples/network_expansion.cpp.o"
  "CMakeFiles/example_network_expansion.dir/examples/network_expansion.cpp.o.d"
  "example_network_expansion"
  "example_network_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_network_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
