# Empty dependencies file for bench_fig5_daily_profiles.
# This may be replaced when dependencies are built.
