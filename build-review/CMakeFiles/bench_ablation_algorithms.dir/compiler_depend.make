# Empty compiler generated dependencies file for bench_ablation_algorithms.
# This may be replaced when dependencies are built.
