file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_algorithms.dir/bench/bench_ablation_algorithms.cc.o"
  "CMakeFiles/bench_ablation_algorithms.dir/bench/bench_ablation_algorithms.cc.o.d"
  "bench_ablation_algorithms"
  "bench_ablation_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
