file(REMOVE_RECURSE
  "CMakeFiles/core_rng_test.dir/tests/core_rng_test.cc.o"
  "CMakeFiles/core_rng_test.dir/tests/core_rng_test.cc.o.d"
  "core_rng_test"
  "core_rng_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_rng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
