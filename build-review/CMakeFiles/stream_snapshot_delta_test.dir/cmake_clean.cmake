file(REMOVE_RECURSE
  "CMakeFiles/stream_snapshot_delta_test.dir/tests/stream_snapshot_delta_test.cc.o"
  "CMakeFiles/stream_snapshot_delta_test.dir/tests/stream_snapshot_delta_test.cc.o.d"
  "stream_snapshot_delta_test"
  "stream_snapshot_delta_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_snapshot_delta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
