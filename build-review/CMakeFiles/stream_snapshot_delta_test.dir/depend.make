# Empty dependencies file for stream_snapshot_delta_test.
# This may be replaced when dependencies are built.
