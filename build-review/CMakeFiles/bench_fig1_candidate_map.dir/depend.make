# Empty dependencies file for bench_fig1_candidate_map.
# This may be replaced when dependencies are built.
