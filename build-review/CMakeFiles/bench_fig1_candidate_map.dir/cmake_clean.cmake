file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_candidate_map.dir/bench/bench_fig1_candidate_map.cc.o"
  "CMakeFiles/bench_fig1_candidate_map.dir/bench/bench_fig1_candidate_map.cc.o.d"
  "bench_fig1_candidate_map"
  "bench_fig1_candidate_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_candidate_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
