# Empty compiler generated dependencies file for graphdb_test.
# This may be replaced when dependencies are built.
