file(REMOVE_RECURSE
  "CMakeFiles/graphdb_test.dir/tests/graphdb_test.cc.o"
  "CMakeFiles/graphdb_test.dir/tests/graphdb_test.cc.o.d"
  "graphdb_test"
  "graphdb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
