file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_louvain.dir/bench/bench_perf_louvain.cc.o"
  "CMakeFiles/bench_perf_louvain.dir/bench/bench_perf_louvain.cc.o.d"
  "bench_perf_louvain"
  "bench_perf_louvain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_louvain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
