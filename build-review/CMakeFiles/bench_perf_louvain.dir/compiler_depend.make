# Empty compiler generated dependencies file for bench_perf_louvain.
# This may be replaced when dependencies are built.
