# Empty compiler generated dependencies file for bench_table3_selected_graph.
# This may be replaced when dependencies are built.
