file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_selected_graph.dir/bench/bench_table3_selected_graph.cc.o"
  "CMakeFiles/bench_table3_selected_graph.dir/bench/bench_table3_selected_graph.cc.o.d"
  "bench_table3_selected_graph"
  "bench_table3_selected_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_selected_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
