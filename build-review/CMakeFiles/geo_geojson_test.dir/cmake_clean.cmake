file(REMOVE_RECURSE
  "CMakeFiles/geo_geojson_test.dir/tests/geo_geojson_test.cc.o"
  "CMakeFiles/geo_geojson_test.dir/tests/geo_geojson_test.cc.o.d"
  "geo_geojson_test"
  "geo_geojson_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_geojson_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
