# Empty compiler generated dependencies file for geo_geojson_test.
# This may be replaced when dependencies are built.
