file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_hac.dir/bench/bench_perf_hac.cc.o"
  "CMakeFiles/bench_perf_hac.dir/bench/bench_perf_hac.cc.o.d"
  "bench_perf_hac"
  "bench_perf_hac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_hac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
