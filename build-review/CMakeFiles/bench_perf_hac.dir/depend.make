# Empty dependencies file for bench_perf_hac.
# This may be replaced when dependencies are built.
