file(REMOVE_RECURSE
  "CMakeFiles/integration_paper_test.dir/tests/integration_paper_test.cc.o"
  "CMakeFiles/integration_paper_test.dir/tests/integration_paper_test.cc.o.d"
  "integration_paper_test"
  "integration_paper_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_paper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
