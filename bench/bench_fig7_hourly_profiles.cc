// Reproduces Fig. 7 — hourly travel patterns per GHour community: the
// share of each community's trips starting in each hour of the day, with
// the commute / midday-leisure classification of the paper.

#include "analysis/community_stats.h"
#include "bench_common.h"

using namespace bikegraph;
using namespace bikegraph::bench;

namespace {

const char* PatternName(analysis::HourPattern p) {
  switch (p) {
    case analysis::HourPattern::kCommute:
      return "commute (7-9am & 5pm)";
    case analysis::HourPattern::kMiddayLeisure:
      return "midday-leisure";
    case analysis::HourPattern::kOther:
      return "other";
  }
  return "?";
}

std::string Sparkline(const std::array<double, 24>& shares) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "#", "@"};
  double max = 0.0;
  for (double v : shares) max = std::max(max, v);
  std::string out;
  for (double v : shares) {
    int level = max > 0 ? static_cast<int>(6.0 * v / max) : 0;
    out += kLevels[level];
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== Fig. 7: hourly travel patterns per GHour community ===\n");
  auto result = RunExperimentOrDie();
  auto shares = analysis::CommunityHourShares(result.pipeline.final_network,
                                              result.ghour.detection.partition);
  if (!shares.ok()) {
    std::fprintf(stderr, "%s\n", shares.status().ToString().c_str());
    return 1;
  }

  viz::AsciiTable t({"Community", "0h......6h......12h.....18h.....23h",
                     "AM peak", "PM peak", "Midday", "Pattern"});
  size_t commute = 0, midday = 0;
  for (size_t c = 0; c < shares->size(); ++c) {
    const auto& row = (*shares)[c];
    auto pattern = analysis::ClassifyHourPattern(row);
    if (pattern == analysis::HourPattern::kCommute) ++commute;
    if (pattern == analysis::HourPattern::kMiddayLeisure) ++midday;
    double am = row[7] + row[8] + row[9];
    double pm = row[16] + row[17] + row[18];
    double mid = row[11] + row[12] + row[13] + row[14];
    t.AddRow({std::to_string(c + 1), Sparkline(row), Pct(am), Pct(pm),
              Pct(mid), PatternName(pattern)});
  }
  std::fputs(t.ToString().c_str(), stdout);

  std::printf(
      "\n%zu commute communities (paper: e.g. 9 & 10, spikes 7-9 am and "
      "~5 pm) and %zu midday communities (paper: 1 & 7, Phoenix Park / "
      "Dun Laoghaire).\n",
      commute, midday);
  return 0;
}
