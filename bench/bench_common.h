#pragma once

// Shared helpers for the table/figure reproduction benches. Each bench is a
// standalone binary that regenerates one table or figure of the paper and
// prints a paper-vs-measured comparison (see EXPERIMENTS.md).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/experiment.h"
#include "core/string_util.h"
#include "viz/ascii_table.h"

namespace bikegraph::bench {

/// Runs the calibrated paper experiment; aborts the bench on failure.
inline analysis::ExperimentResult RunExperimentOrDie() {
  auto start = std::chrono::steady_clock::now();
  auto result = analysis::RunPaperExperiment(analysis::ExperimentConfig{});
  if (!result.ok()) {
    std::cerr << "experiment failed: " << result.status() << "\n";
    std::exit(1);
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  std::printf("[pipeline: synthetic Moby dataset -> cleaning -> HAC -> "
              "Algorithm 1 -> Louvain x3 in %lld ms]\n\n",
              static_cast<long long>(elapsed));
  return std::move(result).ValueOrDie();
}

inline std::string Fmt(int64_t v) { return FormatWithCommas(v); }
inline std::string Fmt(size_t v) {
  return FormatWithCommas(static_cast<int64_t>(v));
}
inline std::string Pct(double v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.0f%%", 100.0 * v);
  return buf;
}
inline std::string Num(double v, int decimals = 2) {
  return FormatDouble(v, decimals);
}

}  // namespace bikegraph::bench
