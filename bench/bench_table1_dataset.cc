// Reproduces Table I — dataset overview: original vs cleaned counts of
// stations, rentals and locations, plus the per-rule cleaning breakdown.

#include "bench_common.h"

using namespace bikegraph;
using namespace bikegraph::bench;

int main() {
  std::printf("=== Table I: dataset overview (paper vs measured) ===\n");
  auto result = RunExperimentOrDie();
  const auto& rep = result.pipeline.cleaning_report;
  const analysis::PaperExpectations paper;

  viz::AsciiTable t({"Measure", "Paper original", "Ours original",
                     "Paper cleaned", "Ours cleaned"});
  t.AddRow({"#stations", Fmt(paper.original_stations),
            Fmt(rep.before.station_count), Fmt(paper.cleaned_stations),
            Fmt(rep.after.station_count)});
  t.AddRow({"#rental", Fmt(paper.original_rentals), Fmt(rep.before.rental_count),
            Fmt(paper.cleaned_rentals), Fmt(rep.after.rental_count)});
  t.AddRow({"#location", Fmt(paper.original_locations),
            Fmt(rep.before.location_count), Fmt(paper.cleaned_locations),
            Fmt(rep.after.location_count)});
  std::fputs(t.ToString().c_str(), stdout);

  std::printf("\nPer-rule breakdown (paper reports only the aggregate):\n%s",
              rep.ToString().c_str());
  std::printf("\nDuration of data: Jan 2020 - Sept 2021 (~21 months), both.\n");
  return 0;
}
