// Performance benchmarks for the geospatial substrate: Haversine vs the
// equirectangular approximation, and GridIndex queries vs linear scans.
// These justify the design choices in DESIGN.md (grid cell sizing, distance
// function selection).

#include <benchmark/benchmark.h>

#include "core/rng.h"
#include "geo/grid_index.h"
#include "geo/haversine.h"

namespace bikegraph::geo {
namespace {

std::vector<LatLon> RandomPoints(size_t n, uint64_t seed = 7) {
  Rng rng(seed);
  const LatLon center(53.35, -6.26);
  std::vector<LatLon> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    points.push_back(Offset(center, rng.NextUniform(0.0, 8000.0),
                            rng.NextUniform(0.0, 360.0)));
  }
  return points;
}

void BM_Haversine(benchmark::State& state) {
  auto points = RandomPoints(1024);
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = points[i % points.size()];
    const auto& b = points[(i * 7 + 1) % points.size()];
    benchmark::DoNotOptimize(HaversineMeters(a, b));
    ++i;
  }
}
BENCHMARK(BM_Haversine);

void BM_Equirectangular(benchmark::State& state) {
  auto points = RandomPoints(1024);
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = points[i % points.size()];
    const auto& b = points[(i * 7 + 1) % points.size()];
    benchmark::DoNotOptimize(EquirectangularMeters(a, b));
    ++i;
  }
}
BENCHMARK(BM_Equirectangular);

void BM_GridIndexBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto points = RandomPoints(n);
  for (auto _ : state) {
    GridIndex index(100.0);
    for (size_t i = 0; i < n; ++i) {
      index.Add(static_cast<int64_t>(i), points[i]);
    }
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_GridIndexBuild)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_GridIndexRadiusQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto points = RandomPoints(n);
  GridIndex index(100.0);
  for (size_t i = 0; i < n; ++i) {
    index.Add(static_cast<int64_t>(i), points[i]);
  }
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.WithinRadius(points[q % n], 100.0));
    ++q;
  }
}
BENCHMARK(BM_GridIndexRadiusQuery)->Arg(1000)->Arg(10000)->Arg(50000);

// Same query stream against a frozen (sorted-cell) index — the
// build-once/query-many mode snapshots use.
void BM_GridIndexFrozenRadiusQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto points = RandomPoints(n);
  GridIndex index(100.0);
  for (size_t i = 0; i < n; ++i) {
    index.Add(static_cast<int64_t>(i), points[i]);
  }
  index.Freeze();
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.WithinRadius(points[q % n], 100.0));
    ++q;
  }
}
BENCHMARK(BM_GridIndexFrozenRadiusQuery)->Arg(1000)->Arg(10000)->Arg(50000);

// Build + freeze, the snapshot-side construction cost (Add never hashes;
// Freeze sorts once).
void BM_GridIndexBuildFrozen(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto points = RandomPoints(n);
  for (auto _ : state) {
    GridIndex index(100.0);
    for (size_t i = 0; i < n; ++i) {
      index.Add(static_cast<int64_t>(i), points[i]);
    }
    index.Freeze();
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_GridIndexBuildFrozen)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_LinearRadiusQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto points = RandomPoints(n);
  size_t q = 0;
  for (auto _ : state) {
    std::vector<int64_t> hits;
    const LatLon& query = points[q % n];
    for (size_t i = 0; i < n; ++i) {
      if (HaversineMeters(points[i], query) <= 100.0) {
        hits.push_back(static_cast<int64_t>(i));
      }
    }
    benchmark::DoNotOptimize(hits);
    ++q;
  }
}
BENCHMARK(BM_LinearRadiusQuery)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_GridIndexNearest(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto points = RandomPoints(n);
  auto queries = RandomPoints(256, /*seed=*/13);
  GridIndex index(100.0);
  for (size_t i = 0; i < n; ++i) {
    index.Add(static_cast<int64_t>(i), points[i]);
  }
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Nearest(queries[q % queries.size()]));
    ++q;
  }
}
BENCHMARK(BM_GridIndexNearest)->Arg(1000)->Arg(10000)->Arg(50000);

}  // namespace
}  // namespace bikegraph::geo

BENCHMARK_MAIN();
