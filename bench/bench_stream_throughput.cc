// Streaming-engine throughput benchmarks: event ingestion through the
// sliding window, snapshot freezing, and warm-start community refresh vs
// a full re-detect on consecutive windows. Wired into tools/run_benches.sh
// and BENCH_perf.json alongside the bench_perf_* microbenches.

#include <benchmark/benchmark.h>

#include <vector>

#include "community/detector.h"
#include "stream/engine.h"
#include "stream/incremental_community.h"
#include "stream/reorder_buffer.h"
#include "stream/replay.h"
#include "stream/snapshot.h"
#include "stream/testing.h"
#include "stream/window_graph.h"

namespace bikegraph::stream {
namespace {

using testing::PlantedStream;

// Raw ingestion throughput (deltas + expiry ring) through a 7-day
// sliding window — the per-event hot path of the live engine.
void BM_StreamIngest(benchmark::State& state) {
  const auto stations = static_cast<size_t>(state.range(0));
  const auto events = PlantedStream(stations, 4, 28, 4000, 17);
  for (auto _ : state) {
    SlidingWindowGraph window({stations, 7 * 86400});
    for (const TripEvent& e : events) {
      benchmark::DoNotOptimize(window.Ingest(e).ok());
    }
    benchmark::DoNotOptimize(window.trip_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_StreamIngest)->Arg(64)->Arg(256);

// Out-of-order ingestion: the same planted stream with up to an hour of
// arrival jitter (the shared stream::JitterArrivalOrder model), pushed
// through the reorder buffer in front of the window. Compare against
// BM_StreamIngest to read the buffer's overhead; the measured numbers
// are discussed in docs/STREAMING.md.
void BM_StreamIngestOutOfOrder(benchmark::State& state) {
  const auto stations = static_cast<size_t>(state.range(0));
  const auto events =
      JitterArrivalOrder(PlantedStream(stations, 4, 28, 4000, 17), 3600, 99)
          .events;
  ReorderBufferOptions options;
  options.max_lateness_seconds = 3600;
  for (auto _ : state) {
    ReorderBuffer buffer(options);
    SlidingWindowGraph window({stations, 7 * 86400});
    for (const TripEvent& e : events) {
      benchmark::DoNotOptimize(buffer.Push(e).ok());
      while (auto released = buffer.PopReady()) {
        benchmark::DoNotOptimize(window.Ingest(*released).ok());
      }
    }
    buffer.Flush();
    while (auto released = buffer.PopReady()) {
      benchmark::DoNotOptimize(window.Ingest(*released).ok());
    }
    benchmark::DoNotOptimize(window.trip_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_StreamIngestOutOfOrder)->Arg(64)->Arg(256);

// Freezing the live window into an immutable CSR snapshot (GBasic
// projection), the read-side publication step.
void BM_SnapshotFreeze(benchmark::State& state) {
  const auto stations = static_cast<size_t>(state.range(0));
  SlidingWindowGraph window({stations, 0});
  for (const TripEvent& e : PlantedStream(stations, 4, 7, 4000, 23)) {
    (void)window.Ingest(e);
  }
  for (auto _ : state) {
    auto snap = FreezeSnapshot(window);
    benchmark::DoNotOptimize(snap.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(window.trip_count()));
}
BENCHMARK(BM_SnapshotFreeze)->Arg(64)->Arg(256);

/// Consecutive window graphs for the refresh benchmarks: one frozen
/// snapshot per day over a 7-day sliding window.
std::vector<graphdb::WeightedGraph> WindowSequence(size_t stations) {
  std::vector<graphdb::WeightedGraph> graphs;
  SlidingWindowGraph window({stations, 7 * 86400});
  const auto events = PlantedStream(stations, 4, 21, 2000, 31);
  int day = 0;
  const int64_t first = events.front().start_time.seconds_since_epoch();
  for (const TripEvent& e : events) {
    (void)window.Ingest(e);
    const int event_day =
        static_cast<int>((e.start_time.seconds_since_epoch() - first) / 86400);
    if (event_day > day && event_day >= 7) {
      day = event_day;
      graphs.push_back(FreezeSnapshot(window).ValueOrDie().graph);
    }
  }
  return graphs;
}

// Warm-start refresh: each window's Louvain run is seeded with the
// previous window's partition through the incremental tracker.
void BM_WarmStartRefresh(benchmark::State& state) {
  const auto stations = static_cast<size_t>(state.range(0));
  const auto graphs = WindowSequence(stations);
  community::DetectSpec spec;
  for (auto _ : state) {
    IncrementalCommunityTracker tracker;
    for (const auto& g : graphs) {
      benchmark::DoNotOptimize(tracker.Refresh(g, spec).ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(graphs.size()));
}
BENCHMARK(BM_WarmStartRefresh)->Arg(64)->Arg(256);

// The baseline the warm start must beat: a cold Louvain run per window.
void BM_FullRedetect(benchmark::State& state) {
  const auto stations = static_cast<size_t>(state.range(0));
  const auto graphs = WindowSequence(stations);
  community::DetectSpec spec;
  for (auto _ : state) {
    for (const auto& g : graphs) {
      benchmark::DoNotOptimize(community::Detect(g, spec).ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(graphs.size()));
}
BENCHMARK(BM_FullRedetect)->Arg(64)->Arg(256);

}  // namespace
}  // namespace bikegraph::stream

BENCHMARK_MAIN();
