// Streaming-engine throughput benchmarks: event ingestion through the
// sliding window, snapshot freezing, and warm-start community refresh vs
// a full re-detect on consecutive windows. Wired into tools/run_benches.sh
// and BENCH_perf.json alongside the bench_perf_* microbenches.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>
#include <vector>

#include "community/detector.h"
#include "stream/engine.h"
#include "stream/incremental_community.h"
#include "stream/reorder_buffer.h"
#include "stream/replay.h"
#include "stream/snapshot.h"
#include "stream/testing.h"
#include "stream/window_graph.h"

namespace bikegraph::stream {
namespace {

using testing::PlantedStream;

// Raw ingestion throughput (deltas + expiry ring) through a 7-day
// sliding window — the per-event hot path of the live engine.
void BM_StreamIngest(benchmark::State& state) {
  const auto stations = static_cast<size_t>(state.range(0));
  const auto events = PlantedStream(stations, 4, 28, 4000, 17);
  for (auto _ : state) {
    SlidingWindowGraph window({stations, 7 * 86400});
    for (const TripEvent& e : events) {
      benchmark::DoNotOptimize(window.Ingest(e).ok());
    }
    benchmark::DoNotOptimize(window.trip_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_StreamIngest)->Arg(64)->Arg(256);

// Out-of-order ingestion: the same planted stream with up to an hour of
// arrival jitter (the shared stream::JitterArrivalOrder model), pushed
// through the reorder buffer in front of the window — the engine's
// Ingest/DrainReady shape (batch ForEachReady release, no per-event
// optional). Compare against BM_StreamIngest to read the buffer's
// overhead; the measured numbers are discussed in docs/STREAMING.md.
void StreamIngestOutOfOrder(benchmark::State& state, ReorderBackend backend) {
  const auto stations = static_cast<size_t>(state.range(0));
  const auto events =
      JitterArrivalOrder(PlantedStream(stations, 4, 28, 4000, 17), 3600, 99)
          .events;
  ReorderBufferOptions options;
  options.max_lateness_seconds = 3600;
  options.backend = backend;
  for (auto _ : state) {
    ReorderBuffer buffer(options);
    SlidingWindowGraph window({stations, 7 * 86400});
    const auto ingest = [&window](const TripEvent& e) {
      return window.Ingest(e);
    };
    for (const TripEvent& e : events) {
      benchmark::DoNotOptimize(buffer.Push(e).ok());
      benchmark::DoNotOptimize(buffer.ForEachReady(ingest).ok());
    }
    buffer.Flush();
    benchmark::DoNotOptimize(buffer.ForEachReady(ingest).ok());
    benchmark::DoNotOptimize(window.trip_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
}

// The PR 4 min-heap backend, kept selectable for multi-month horizons.
void BM_StreamIngestOutOfOrder(benchmark::State& state) {
  StreamIngestOutOfOrder(state, ReorderBackend::kHeap);
}
BENCHMARK(BM_StreamIngestOutOfOrder)->Arg(64)->Arg(256);

// The timing-wheel backend (the default): amortized O(1) release.
void BM_StreamIngestWheel(benchmark::State& state) {
  StreamIngestOutOfOrder(state, ReorderBackend::kWheel);
}
BENCHMARK(BM_StreamIngestWheel)->Arg(64)->Arg(256);

// Full-engine ingestion with and without the write-ahead log. The two
// variants differ only in config.durability, so their per-item delta is
// the durability tax: record framing + CRC32C + buffered write() +
// one group fsync per sync_interval_records (the default 512). The
// disabled variant is also the "WAL off costs nothing" reference —
// it must stay within noise of plain engine ingestion (the numbers are
// discussed in docs/DURABILITY.md).
void StreamEngineIngest(benchmark::State& state, bool durable) {
  const auto stations = static_cast<size_t>(state.range(0));
  const auto events = PlantedStream(stations, 4, 28, 4000, 17);
  static int run = 0;
  for (auto _ : state) {
    StreamEngineConfig config;
    config.station_count = stations;
    config.window_seconds = 7 * 86400;
    std::filesystem::path dir;
    if (durable) {
      dir = std::filesystem::temp_directory_path() /
            ("bikegraph_bench_wal_" + std::to_string(++run));
      std::filesystem::remove_all(dir);
      config.durability.enabled = true;
      config.durability.directory = dir.string();
    }
    StreamEngine engine(config);
    for (const TripEvent& e : events) {
      benchmark::DoNotOptimize(engine.Ingest(e).ok());
    }
    benchmark::DoNotOptimize(engine.window().trip_count());
    if (durable) {
      state.PauseTiming();
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
}

// Baseline: the engine with durability disabled (the default).
void BM_StreamEngineIngest(benchmark::State& state) {
  StreamEngineIngest(state, /*durable=*/false);
}
BENCHMARK(BM_StreamEngineIngest)->Arg(64)->Arg(256);

// Every event framed, CRC'd, and group-fsynced through the WAL.
void BM_StreamIngestWithWal(benchmark::State& state) {
  StreamEngineIngest(state, /*durable=*/true);
}
BENCHMARK(BM_StreamIngestWithWal)->Arg(64)->Arg(256);

// The shard-scaling curve: full-engine ingestion (ingest thread routing
// events into per-shard SPSC rings, one worker per shard, merge barrier
// + freeze at the end) at 1, 2, and 4 shards over the identical planted
// stream. Arg(1) runs the inline single-writer path — the same code
// BM_StreamEngineIngest exercises — so the 2- and 4-shard rows read
// directly as the parallel speedup (or, on a single-CPU host, the
// queue-hand-off tax; see docs/STREAMING.md for the measured curve and
// the merge-cost model).
void BM_ShardedIngest(benchmark::State& state) {
  const size_t stations = 256;
  const auto shard_count = static_cast<size_t>(state.range(0));
  const auto events = PlantedStream(stations, 4, 28, 4000, 17);
  for (auto _ : state) {
    StreamEngineConfig config;
    config.station_count = stations;
    config.window_seconds = 7 * 86400;
    config.shard_count = shard_count;
    StreamEngine engine(config);
    for (const TripEvent& e : events) {
      benchmark::DoNotOptimize(engine.Ingest(e).ok());
    }
    // The merge barrier + freeze is part of the serving cadence, so it
    // is part of the measured cost.
    benchmark::DoNotOptimize(engine.Snapshot().ok());
    benchmark::DoNotOptimize(engine.trip_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
}
// Wall-clock time, not the default CPU-time base: with N > 1 the shard
// workers burn their cycles off the timed thread, so a CPU-time rate
// would credit the ingest thread's cheap ring pushes as end-to-end
// throughput (a flattering ~3x on a host where wall clock got *slower*).
BENCHMARK(BM_ShardedIngest)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// Freezing the live window into an immutable CSR snapshot (GBasic
// projection), the read-side publication step.
void BM_SnapshotFreeze(benchmark::State& state) {
  const auto stations = static_cast<size_t>(state.range(0));
  SlidingWindowGraph window({stations, 0});
  for (const TripEvent& e : PlantedStream(stations, 4, 7, 4000, 23)) {
    (void)window.Ingest(e);
  }
  for (auto _ : state) {
    auto snap = FreezeSnapshot(window);
    benchmark::DoNotOptimize(snap.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(window.trip_count()));
}
BENCHMARK(BM_SnapshotFreeze)->Arg(64)->Arg(256);

// Per-epoch freeze cost at a small dirty fraction (~50 events against a
// 7-day window), the live engine's minute-cadence publication shape:
// warm up a sliding window (excluded from timing), then repeatedly
// ingest one epoch's events and freeze. The two variants differ only in
// the freeze call, so their per-item delta is the full-rebuild vs
// copy-on-write-patch gap; bit-identity of the two paths is locked by
// stream_snapshot_delta_test.cc.
void SnapshotEpochFreeze(benchmark::State& state, bool use_delta) {
  const auto stations = static_cast<size_t>(state.range(0));
  constexpr int kEpochs = 64;
  constexpr int kEventsPerEpoch = 50;
  const auto events = PlantedStream(stations, 4, 8, 4000, 23);
  const size_t warmup = events.size() - kEpochs * kEventsPerEpoch;
  SnapshotDeltaPolicy policy;
  for (auto _ : state) {
    state.PauseTiming();
    SlidingWindowGraph window({stations, 7 * 86400});
    for (size_t i = 0; i < warmup; ++i) (void)window.Ingest(events[i]);
    (void)window.DrainDirty();  // arm tracking
    WindowSnapshot previous = FreezeSnapshot(window).ValueOrDie();
    size_t cursor = warmup;
    state.ResumeTiming();
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      for (int i = 0; i < kEventsPerEpoch; ++i) {
        (void)window.Ingest(events[cursor++]);
      }
      if (use_delta) {
        const WindowDirtySet dirty = window.DrainDirty();
        previous =
            FreezeSnapshotDelta(window, previous, dirty, {}, nullptr, policy)
                .ValueOrDie();
      } else {
        (void)window.DrainDirty();
        previous = FreezeSnapshot(window).ValueOrDie();
      }
      benchmark::DoNotOptimize(previous.graph.total_weight());
    }
  }
  state.SetItemsProcessed(state.iterations() * kEpochs);
}

// Baseline: every epoch rebuilds the CSR and profiles from the window.
void BM_SnapshotEpochFullFreeze(benchmark::State& state) {
  SnapshotEpochFreeze(state, /*use_delta=*/false);
}
BENCHMARK(BM_SnapshotEpochFullFreeze)->Arg(64)->Arg(256);

// Copy-on-write: only the epoch's dirty pairs/profiles are recomputed.
void BM_SnapshotDeltaFreeze(benchmark::State& state) {
  SnapshotEpochFreeze(state, /*use_delta=*/true);
}
BENCHMARK(BM_SnapshotDeltaFreeze)->Arg(64)->Arg(256);

/// Consecutive window graphs for the refresh benchmarks: one frozen
/// snapshot per day over a 7-day sliding window.
std::vector<graphdb::WeightedGraph> WindowSequence(size_t stations) {
  std::vector<graphdb::WeightedGraph> graphs;
  SlidingWindowGraph window({stations, 7 * 86400});
  const auto events = PlantedStream(stations, 4, 21, 2000, 31);
  int day = 0;
  const int64_t first = events.front().start_time.seconds_since_epoch();
  for (const TripEvent& e : events) {
    (void)window.Ingest(e);
    const int event_day =
        static_cast<int>((e.start_time.seconds_since_epoch() - first) / 86400);
    if (event_day > day && event_day >= 7) {
      day = event_day;
      graphs.push_back(FreezeSnapshot(window).ValueOrDie().graph);
    }
  }
  return graphs;
}

// Warm-start refresh: each window's Louvain run is seeded with the
// previous window's partition through the incremental tracker.
void BM_WarmStartRefresh(benchmark::State& state) {
  const auto stations = static_cast<size_t>(state.range(0));
  const auto graphs = WindowSequence(stations);
  community::DetectSpec spec;
  for (auto _ : state) {
    IncrementalCommunityTracker tracker;
    for (const auto& g : graphs) {
      benchmark::DoNotOptimize(tracker.Refresh(g, spec).ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(graphs.size()));
}
BENCHMARK(BM_WarmStartRefresh)->Arg(64)->Arg(256);

// The baseline the warm start must beat: a cold Louvain run per window.
void BM_FullRedetect(benchmark::State& state) {
  const auto stations = static_cast<size_t>(state.range(0));
  const auto graphs = WindowSequence(stations);
  community::DetectSpec spec;
  for (auto _ : state) {
    for (const auto& g : graphs) {
      benchmark::DoNotOptimize(community::Detect(g, spec).ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(graphs.size()));
}
BENCHMARK(BM_FullRedetect)->Arg(64)->Arg(256);

}  // namespace
}  // namespace bikegraph::stream

BENCHMARK_MAIN();
