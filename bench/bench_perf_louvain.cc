// Performance benchmarks for the community-detection algorithms: Louvain
// vs label propagation vs CNM fast-greedy vs Infomap-lite, on planted
// clique-ring graphs of growing size.

#include <benchmark/benchmark.h>

#include "community/fast_greedy.h"
#include "core/checked_cast.h"
#include "community/infomap.h"
#include "community/label_propagation.h"
#include "community/louvain.h"
#include "community/modularity.h"
#include "core/rng.h"

namespace bikegraph::community {
namespace {

graphdb::WeightedGraph CliqueRing(int cliques, int size, uint64_t seed = 5) {
  graphdb::WeightedGraphBuilder b(AsIndex(cliques * size));
  Rng rng(seed);
  for (int q = 0; q < cliques; ++q) {
    for (int i = 0; i < size; ++i) {
      for (int j = i + 1; j < size; ++j) {
        (void)b.AddEdge(q * size + i, q * size + j,
                        0.5 + rng.NextDouble());
      }
    }
    (void)b.AddEdge(q * size, ((q + 1) % cliques) * size + 1, 0.5);
  }
  return b.Build();
}

// Graph construction cost in isolation: replay a pre-generated edge stream
// (with duplicates, so weight merging is exercised) into the builder.
void BM_WeightedGraphBuild(benchmark::State& state) {
  const int cliques = static_cast<int>(state.range(0));
  const int size = 12;
  const int n = cliques * size;
  struct Edge {
    int32_t u, v;
    double w;
  };
  std::vector<Edge> edges;
  Rng rng(11);
  for (int q = 0; q < cliques; ++q) {
    for (int i = 0; i < size; ++i) {
      for (int j = i + 1; j < size; ++j) {
        edges.push_back(Edge{q * size + i, q * size + j,
                             0.5 + rng.NextDouble()});
      }
    }
    edges.push_back(Edge{q * size, ((q + 1) % cliques) * size + 1, 0.5});
  }
  // Duplicate a third of the edges to exercise parallel-edge merging.
  const size_t base = edges.size();
  for (size_t i = 0; i < base; i += 3) edges.push_back(edges[i]);
  for (auto _ : state) {
    graphdb::WeightedGraphBuilder b(AsIndex(n));
    for (const Edge& e : edges) (void)b.AddEdge(e.u, e.v, e.w);
    auto g = b.Build();
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(edges.size()));
}
BENCHMARK(BM_WeightedGraphBuild)->Arg(50)->Arg(200)->Arg(800);

void BM_Louvain(benchmark::State& state) {
  auto g = CliqueRing(static_cast<int>(state.range(0)), 12);
  for (auto _ : state) {
    auto r = RunLouvain(g);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.node_count()));
}
BENCHMARK(BM_Louvain)->Arg(10)->Arg(50)->Arg(200);

void BM_LabelPropagation(benchmark::State& state) {
  auto g = CliqueRing(static_cast<int>(state.range(0)), 12);
  for (auto _ : state) {
    auto r = RunLabelPropagation(g);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_LabelPropagation)->Arg(10)->Arg(50)->Arg(200);

void BM_FastGreedy(benchmark::State& state) {
  auto g = CliqueRing(static_cast<int>(state.range(0)), 12);
  for (auto _ : state) {
    auto r = RunFastGreedy(g);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FastGreedy)->Arg(10)->Arg(50)->Arg(200);

void BM_InfomapLite(benchmark::State& state) {
  auto g = CliqueRing(static_cast<int>(state.range(0)), 12);
  for (auto _ : state) {
    auto r = RunInfomapLite(g);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_InfomapLite)->Arg(10)->Arg(50)->Arg(200);

void BM_Modularity(benchmark::State& state) {
  auto g = CliqueRing(100, 12);
  auto partition = RunLouvain(g).ValueOrDie().partition;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Modularity(g, partition));
  }
}
BENCHMARK(BM_Modularity);

}  // namespace
}  // namespace bikegraph::community

BENCHMARK_MAIN();
