// Performance benchmarks for the community-detection algorithms: Louvain
// vs label propagation vs CNM fast-greedy vs Infomap-lite, on planted
// clique-ring graphs of growing size.

#include <benchmark/benchmark.h>

#include "community/fast_greedy.h"
#include "community/infomap.h"
#include "community/label_propagation.h"
#include "community/louvain.h"
#include "community/modularity.h"
#include "core/rng.h"

namespace bikegraph::community {
namespace {

graphdb::WeightedGraph CliqueRing(int cliques, int size, uint64_t seed = 5) {
  graphdb::WeightedGraphBuilder b(cliques * size);
  Rng rng(seed);
  for (int q = 0; q < cliques; ++q) {
    for (int i = 0; i < size; ++i) {
      for (int j = i + 1; j < size; ++j) {
        (void)b.AddEdge(q * size + i, q * size + j,
                        0.5 + rng.NextDouble());
      }
    }
    (void)b.AddEdge(q * size, ((q + 1) % cliques) * size + 1, 0.5);
  }
  return b.Build();
}

void BM_Louvain(benchmark::State& state) {
  auto g = CliqueRing(static_cast<int>(state.range(0)), 12);
  for (auto _ : state) {
    auto r = RunLouvain(g);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.node_count()));
}
BENCHMARK(BM_Louvain)->Arg(10)->Arg(50)->Arg(200);

void BM_LabelPropagation(benchmark::State& state) {
  auto g = CliqueRing(static_cast<int>(state.range(0)), 12);
  for (auto _ : state) {
    auto r = RunLabelPropagation(g);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_LabelPropagation)->Arg(10)->Arg(50)->Arg(200);

void BM_FastGreedy(benchmark::State& state) {
  auto g = CliqueRing(static_cast<int>(state.range(0)), 12);
  for (auto _ : state) {
    auto r = RunFastGreedy(g);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FastGreedy)->Arg(10)->Arg(50)->Arg(200);

void BM_InfomapLite(benchmark::State& state) {
  auto g = CliqueRing(static_cast<int>(state.range(0)), 12);
  for (auto _ : state) {
    auto r = RunInfomapLite(g);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_InfomapLite)->Arg(10)->Arg(50)->Arg(200);

void BM_Modularity(benchmark::State& state) {
  auto g = CliqueRing(100, 12);
  auto partition = RunLouvain(g).ValueOrDie().partition;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Modularity(g, partition));
  }
}
BENCHMARK(BM_Modularity);

}  // namespace
}  // namespace bikegraph::community

BENCHMARK_MAIN();
