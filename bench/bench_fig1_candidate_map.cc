// Reproduces Fig. 1 — the candidate graph map (HAC output including the
// pre-existing stations). Exports GeoJSON and prints the spatial summary a
// reader would check against the paper's figure.

#include "bench_common.h"
#include "viz/map_export.h"

using namespace bikegraph;
using namespace bikegraph::bench;

int main() {
  std::printf("=== Fig. 1: candidate graph map ===\n");
  auto result = RunExperimentOrDie();
  const auto& net = result.pipeline.candidate_network;

  const std::string path = "fig1_candidate_graph.geojson";
  auto status = viz::WriteCandidateMap(net, path);
  if (!status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", status.ToString().c_str());
    return 1;
  }

  size_t stations = 0, candidates = 0;
  double min_lat = 90, max_lat = -90, min_lon = 180, max_lon = -180;
  for (const auto& cand : net.candidates) {
    (cand.is_fixed() ? stations : candidates)++;
    min_lat = std::min(min_lat, cand.centroid.lat);
    max_lat = std::max(max_lat, cand.centroid.lat);
    min_lon = std::min(min_lon, cand.centroid.lon);
    max_lon = std::max(max_lon, cand.centroid.lon);
  }
  std::printf("wrote %s\n", path.c_str());
  std::printf("nodes: %zu stations (purple in paper) + %zu candidates\n",
              stations, candidates);
  std::printf("spatial extent: lat [%.4f, %.4f], lon [%.4f, %.4f] — "
              "Dublin city & inner suburbs\n",
              min_lat, max_lat, min_lon, max_lon);
  std::printf("view: load the GeoJSON in geojson.io / QGIS / kepler.gl\n");
  return 0;
}
