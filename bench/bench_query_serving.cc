// Closed-loop serving benchmark for the query layer: N reader threads
// hammer a QueryService with the mixed workload (query/workload.h) while
// the ingestion thread ingests an arrival-jittered planted stream and
// publishes epochs. Reported per variant: batch latency p50/p99, queries
// per second, and the writer's per-event cost — the Arg(0) (no readers)
// variant is the interference baseline the loaded writer numbers compare
// against. Wired into tools/run_benches.sh and BENCH_perf.json; the
// numbers (and the single-CPU emulated-host caveat) are discussed in
// docs/SERVING.md.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <random>
// lint: thread-ok: closed-loop readers-vs-writer is what this measures.
#include <thread>
#include <vector>

#include "query/service.h"
#include "query/workload.h"
#include "stream/engine.h"
#include "stream/replay.h"
#include "stream/testing.h"

namespace bikegraph::query {
namespace {

constexpr size_t kStations = 64;
constexpr size_t kSnapshotEvery = 200;

std::vector<geo::LatLon> GridPositions(size_t n) {
  std::vector<geo::LatLon> positions;
  positions.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    positions.emplace_back(53.33 + 0.002 * static_cast<double>(i % 8),
                           -6.30 + 0.003 * static_cast<double>(i / 8));
  }
  return positions;
}

/// The serving engine config every variant uses: 2-day sliding window,
/// an hour of arrival-jitter tolerance, station positions so k-nearest
/// queries are answerable.
stream::StreamEngineConfig ServingConfig() {
  stream::StreamEngineConfig config;
  config.station_count = kStations;
  config.window_seconds = 2 * 86400;
  config.max_lateness_seconds = 3600;
  config.station_positions = GridPositions(kStations);
  return config;
}

double PercentileNs(std::vector<int64_t>& sorted_samples, double pct) {
  if (sorted_samples.empty()) return 0.0;
  const auto rank = static_cast<size_t>(
      static_cast<double>(sorted_samples.size() - 1) * pct / 100.0);
  return static_cast<double>(sorted_samples[rank]);
}

// One closed-loop episode per iteration: the writer (this thread) pushes
// the whole jittered stream through the engine, freezing an epoch every
// kSnapshotEvery events, while `readers` threads execute mixed batches
// against the service until the stream ends.
void BM_QueryServingClosedLoop(benchmark::State& state) {
  const auto readers = static_cast<size_t>(state.range(0));
  const auto events =
      stream::JitterArrivalOrder(
          stream::testing::PlantedStream(kStations, 4, /*days=*/2,
                                         /*trips_per_day=*/2000, /*seed=*/7),
          /*max_jitter_seconds=*/3600, /*seed=*/13)
          .events;

  std::vector<int64_t> latencies_ns;
  uint64_t total_queries = 0;
  double serve_seconds = 0.0;

  for (auto _ : state) {
    stream::StreamEngine engine(ServingConfig());
    QueryService service(engine);
    // First epoch before the readers start, so every batch can pin.
    (void)engine.Ingest(events.front());
    (void)engine.Snapshot();

    std::atomic<bool> done{false};
    std::vector<std::vector<int64_t>> local_latencies(readers);
    std::vector<uint64_t> local_queries(readers, 0);
    std::vector<std::thread> pool;
    pool.reserve(readers);
    for (size_t r = 0; r < readers; ++r) {
      pool.emplace_back([&, r] {
        std::mt19937_64 rng(7919 * (r + 1));
        WorkloadSpec spec;
        spec.station_count = kStations;
        spec.community_count = 2;
        spec.batch_size = 16;
        // do-while: even if the writer outruns this thread's first
        // schedule (single-CPU hosts), every reader samples once.
        do {
          const auto batch = MakeWorkloadBatch(spec, rng);
          const auto t0 = std::chrono::steady_clock::now();
          auto outcome = service.ExecuteBatch(batch);
          const auto t1 = std::chrono::steady_clock::now();
          if (!outcome.ok()) continue;
          local_latencies[r].push_back(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count());
          local_queries[r] += outcome->answers.size();
        } while (!done.load(std::memory_order_acquire));
      });
    }

    const auto w0 = std::chrono::steady_clock::now();
    for (size_t i = 1; i < events.size(); ++i) {
      (void)engine.Ingest(events[i]);
      if (i % kSnapshotEvery == 0) (void)engine.Snapshot();
    }
    (void)engine.Flush();
    (void)engine.Snapshot();
    const auto w1 = std::chrono::steady_clock::now();
    done.store(true, std::memory_order_release);
    for (auto& t : pool) t.join();

    serve_seconds += std::chrono::duration<double>(w1 - w0).count();
    for (size_t r = 0; r < readers; ++r) {
      latencies_ns.insert(latencies_ns.end(), local_latencies[r].begin(),
                          local_latencies[r].end());
      total_queries += local_queries[r];
    }
    benchmark::DoNotOptimize(engine.publisher().epoch());
  }

  std::sort(latencies_ns.begin(), latencies_ns.end());
  state.counters["readers"] = static_cast<double>(readers);
  state.counters["qps"] =
      serve_seconds > 0.0 ? static_cast<double>(total_queries) / serve_seconds
                          : 0.0;
  state.counters["batch_p50_ns"] = PercentileNs(latencies_ns, 50.0);
  state.counters["batch_p99_ns"] = PercentileNs(latencies_ns, 99.0);
  state.counters["writer_ns_per_event"] =
      serve_seconds * 1e9 /
      (static_cast<double>(state.iterations()) *
       static_cast<double>(events.size()));
  state.SetItemsProcessed(
      readers > 0
          ? static_cast<int64_t>(total_queries)
          : static_cast<int64_t>(state.iterations()) *
                static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_QueryServingClosedLoop)
    ->Arg(0)   // interference baseline: the writer alone
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The read path alone: mixed batches against one pinned, fully-memoized
// epoch — the per-batch cost floor with no writer, no publication, and
// warm memo (community + top-pairs computed once before timing).
void BM_QueryBatchOnPinnedEpoch(benchmark::State& state) {
  stream::StreamEngine engine(ServingConfig());
  for (const auto& e : stream::testing::PlantedStream(
           kStations, 4, /*days=*/2, /*trips_per_day=*/2000, /*seed=*/7)) {
    (void)engine.Ingest(e);
  }
  (void)engine.Flush();
  (void)engine.Snapshot();
  QueryService service(engine);
  auto pinned = service.Pin();
  if (!pinned.ok()) {
    state.SkipWithError("pin failed");
    return;
  }
  (void)pinned->CommunityOf(0);  // warm the memo outside the timing loop
  (void)pinned->TopPairs(10);

  std::mt19937_64 rng(23);
  WorkloadSpec spec;
  spec.station_count = kStations;
  spec.community_count = 2;
  spec.batch_size = 16;
  uint64_t queries = 0;
  for (auto _ : state) {
    const auto batch = MakeWorkloadBatch(spec, rng);
    auto outcome = service.ExecuteBatchOn(*pinned, batch);
    benchmark::DoNotOptimize(outcome.answers.size());
    queries += outcome.answers.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(queries));
}
BENCHMARK(BM_QueryBatchOnPinnedEpoch);

}  // namespace
}  // namespace bikegraph::query

BENCHMARK_MAIN();
