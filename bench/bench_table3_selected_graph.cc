// Reproduces Table III — details of the selected graph: station counts,
// trips from/to and distinct directed edges split by station class
// (pre-existing vs newly selected).

#include "bench_common.h"

using namespace bikegraph;
using namespace bikegraph::bench;

int main() {
  std::printf("=== Table III: selected graph (paper vs measured) ===\n");
  auto result = RunExperimentOrDie();
  const auto& net = result.pipeline.final_network;
  const auto stats = net.ComputeStats();
  const analysis::PaperExpectations paper;

  viz::AsciiTable t({"Stations", "Count (paper/ours)", "Trips From (paper/ours)",
                     "Trips To (paper/ours)", "Edges From (ours)",
                     "Edges To (ours)"});
  t.AddRow({"Pre-existing", "92 / " + Fmt(stats.pre_existing.stations),
            Fmt(paper.pre_existing_trips_from) + " / " +
                Fmt(stats.pre_existing.trips_from),
            Fmt(paper.pre_existing_trips_to) + " / " +
                Fmt(stats.pre_existing.trips_to),
            Fmt(stats.pre_existing.edges_from),
            Fmt(stats.pre_existing.edges_to)});
  t.AddRow({"Selected", "146 / " + Fmt(stats.selected.stations),
            Fmt(paper.selected_trips_from) + " / " +
                Fmt(stats.selected.trips_from),
            Fmt(paper.selected_trips_to) + " / " + Fmt(stats.selected.trips_to),
            Fmt(stats.selected.edges_from), Fmt(stats.selected.edges_to)});
  t.AddSeparator();
  t.AddRow({"Total",
            Fmt(paper.selected_total_stations) + " / " + Fmt(net.stations.size()),
            Fmt(stats.total_trips) + " (conserved)", "",
            Fmt(paper.selected_total_edges) + " / " + Fmt(stats.total_edges),
            ""});
  std::fputs(t.ToString().c_str(), stdout);

  const auto& sel = result.pipeline.selection;
  std::printf(
      "\nAlgorithm 1 audit: degree threshold %lld (min fixed-station degree), "
      "%zu below-degree rejections, %zu near-station rejections, %zu peer "
      "suppressions, %d suppression rounds, %zu locations reassigned.\n",
      static_cast<long long>(sel.degree_threshold),
      sel.RejectedCount(expansion::RejectionReason::kBelowDegree),
      sel.RejectedCount(expansion::RejectionReason::kNearFixedStation),
      sel.RejectedCount(expansion::RejectionReason::kSuppressedByPeer),
      sel.suppression_rounds, net.reassigned_locations);
  return 0;
}
