// The paper's future-work experiment: compare community-detection
// algorithms (Louvain, Label Propagation, Infomap, fast-greedy CNM) on the
// same three temporal graphs. Reports community counts, modularity,
// self-containment and pairwise NMI agreement with Louvain.

#include "bench_common.h"
#include "community/fast_greedy.h"
#include "community/infomap.h"
#include "community/label_propagation.h"
#include "community/modularity.h"

using namespace bikegraph;
using namespace bikegraph::bench;

namespace {

struct AlgoResult {
  std::string name;
  community::Partition partition;
};

void CompareOn(const analysis::CommunityExperiment& exp,
               const expansion::FinalNetwork& net, const char* graph_name) {
  std::vector<AlgoResult> results;
  results.push_back({"Louvain", exp.louvain.partition});

  auto lpa = community::RunLabelPropagation(exp.graph);
  if (lpa.ok()) results.push_back({"LabelPropagation", lpa->partition});

  auto greedy = community::RunFastGreedy(exp.graph);
  if (greedy.ok()) results.push_back({"FastGreedy(CNM)", greedy->partition});

  auto infomap = community::RunInfomapLite(exp.graph);
  if (infomap.ok()) results.push_back({"Infomap-lite", infomap->partition});

  viz::AsciiTable t({"Algorithm", "Communities", "Modularity",
                     "Self-contained", "NMI vs Louvain"});
  for (const auto& r : results) {
    auto stats = analysis::ComputeCommunityTripStats(net, r.partition);
    const double q = community::Modularity(exp.graph, r.partition);
    const double nmi = community::NormalizedMutualInformation(
        r.partition, exp.louvain.partition);
    t.AddRow({r.name, Fmt(r.partition.CommunityCount()), Num(q),
              stats.ok() ? Pct(stats->SelfContainedFraction()) : "-",
              Num(nmi)});
  }
  std::printf("%s:\n%s\n", graph_name, t.ToString().c_str());
}

}  // namespace

int main() {
  std::printf("=== Ablation: community-detection algorithms "
              "(paper future work, §VI) ===\n");
  auto result = RunExperimentOrDie();
  const auto& net = result.pipeline.final_network;
  CompareOn(result.gbasic, net, "GBasic (no temporal features)");
  CompareOn(result.gday, net, "GDay (day-of-week)");
  CompareOn(result.ghour, net, "GHour (hour-of-day)");
  std::printf("Reading: all algorithms agree on the coarse spatial "
              "structure (high NMI); modularity-based methods fragment "
              "more as temporal granularity sharpens.\n");
  return 0;
}
