// The paper's future-work experiment: compare every registered
// community-detection algorithm on the same three temporal graphs. The
// algorithm list comes from the registry (community::ListAlgorithms()), so
// a newly registered algorithm shows up here with zero code changes.
// Reports community counts, modularity, self-containment, NMI agreement
// with Louvain, and wall time per run.

#include "bench_common.h"
#include "community/detector.h"
#include "community/modularity.h"

using namespace bikegraph;
using namespace bikegraph::bench;

namespace {

void CompareOn(const analysis::CommunityExperiment& exp,
               const expansion::FinalNetwork& net, const char* graph_name) {
  // One Detect() per registry entry; the Louvain row doubles as the NMI
  // reference (pinned by id, not by whatever the experiment config ran).
  std::vector<std::pair<community::AlgorithmId, community::CommunityResult>>
      runs;
  for (community::AlgorithmId id : community::ListAlgorithms()) {
    community::DetectSpec spec;
    spec.algorithm = id;
    auto run = community::Detect(exp.graph, spec);
    if (!run.ok()) {
      std::fprintf(stderr, "%s failed on %s: %s\n",
                   std::string(community::AlgorithmName(id)).c_str(),
                   graph_name, run.status().ToString().c_str());
      continue;
    }
    runs.emplace_back(id, std::move(run).ValueOrDie());
  }
  const community::Partition* reference = nullptr;
  for (const auto& [id, run] : runs) {
    if (id == community::AlgorithmId::kLouvain) reference = &run.partition;
  }

  viz::AsciiTable t({"Algorithm", "Communities", "Modularity",
                     "Self-contained", "NMI vs Louvain", "Wall (ms)"});
  for (const auto& [id, run] : runs) {
    auto stats = analysis::ComputeCommunityTripStats(net, run.partition);
    t.AddRow({std::string(community::AlgorithmName(id)),
              Fmt(run.partition.CommunityCount()), Num(run.modularity),
              stats.ok() ? Pct(stats->SelfContainedFraction()) : "-",
              reference ? Num(community::NormalizedMutualInformation(
                              run.partition, *reference))
                        : "-",
              Num(run.wall_time_ms, 1)});
  }
  std::printf("%s:\n%s\n", graph_name, t.ToString().c_str());
}

}  // namespace

int main() {
  std::printf("=== Ablation: community-detection algorithms "
              "(paper future work, §VI) ===\n");
  auto result = RunExperimentOrDie();
  const auto& net = result.pipeline.final_network;
  CompareOn(result.gbasic, net, "GBasic (no temporal features)");
  CompareOn(result.gday, net, "GDay (day-of-week)");
  CompareOn(result.ghour, net, "GHour (hour-of-day)");
  std::printf("Reading: all algorithms agree on the coarse spatial "
              "structure (high NMI); modularity-based methods fragment "
              "more as temporal granularity sharpens.\n");
  return 0;
}
