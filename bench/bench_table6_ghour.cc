// Reproduces Table VI (and the statistics behind Fig. 6) — Louvain on
// GHour, the graph whose edges carry the hour-of-day temporal property.

#include "bench_common.h"

using namespace bikegraph;
using namespace bikegraph::bench;

int main() {
  std::printf("=== Table VI / Fig. 6: GHour community detection ===\n");
  auto result = RunExperimentOrDie();
  const auto& exp = result.ghour;
  const analysis::PaperExpectations paper;

  viz::AsciiTable headline({"Measure", "Paper", "Ours"});
  headline.AddRow({"communities", Fmt(paper.ghour_communities),
                   Fmt(exp.detection.partition.CommunityCount())});
  headline.AddRow({"modularity", Num(paper.ghour_modularity),
                   Num(exp.detection.modularity)});
  std::fputs(headline.ToString().c_str(), stdout);
  std::printf("\n");

  viz::AsciiTable t({"ID", "Old", "New", "Total stations", "Within", "Out",
                     "In", "Total trips"});
  for (size_t c = 0; c < exp.stats.rows.size(); ++c) {
    const auto& row = exp.stats.rows[c];
    t.AddRow({std::to_string(c + 1), Fmt(row.old_stations),
              Fmt(row.new_stations), Fmt(row.total_stations()),
              Fmt(row.within), Fmt(row.out), Fmt(row.in),
              Fmt(row.total_trips())});
  }
  std::printf("GHour communities (ours):\n%s", t.ToString().c_str());

  // The monotone-granularity law the paper demonstrates across IV-VI.
  std::printf("\nGranularity sweep (communities / modularity):\n");
  std::printf("  GBasic: %zu / %.2f   (paper 3 / 0.25)\n",
              result.gbasic.detection.partition.CommunityCount(),
              result.gbasic.detection.modularity);
  std::printf("  GDay:   %zu / %.2f   (paper 7 / 0.32)\n",
              result.gday.detection.partition.CommunityCount(),
              result.gday.detection.modularity);
  std::printf("  GHour:  %zu / %.2f   (paper 10 / 0.54)\n",
              result.ghour.detection.partition.CommunityCount(),
              result.ghour.detection.modularity);
  return 0;
}
