// Reproduces Fig. 5 — daily travel patterns per GDay community: the share
// of each community's trips on each day of the week, rendered as rows of
// percentages plus an ASCII sparkline, with the commute/leisure
// classification the paper draws from the figure.

#include "analysis/community_stats.h"
#include "bench_common.h"
#include "core/civil_time.h"

#include "core/checked_cast.h"

using namespace bikegraph;
using namespace bikegraph::bench;

namespace {

const char* PatternName(analysis::DayPattern p) {
  switch (p) {
    case analysis::DayPattern::kWeekdayCommute:
      return "weekday-commute";
    case analysis::DayPattern::kWeekendLeisure:
      return "weekend-leisure";
    case analysis::DayPattern::kFlat:
      return "flat";
  }
  return "?";
}

std::string Sparkline(const std::array<double, 7>& shares) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "#", "@"};
  double max = 0.0;
  for (double v : shares) max = std::max(max, v);
  std::string out;
  for (double v : shares) {
    int level = max > 0 ? static_cast<int>(6.0 * v / max) : 0;
    out += kLevels[level];
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== Fig. 5: daily travel patterns per GDay community ===\n");
  auto result = RunExperimentOrDie();
  auto shares = analysis::CommunityDayShares(result.pipeline.final_network,
                                             result.gday.detection.partition);
  if (!shares.ok()) {
    std::fprintf(stderr, "%s\n", shares.status().ToString().c_str());
    return 1;
  }

  viz::AsciiTable t({"Community", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat",
                     "Sun", "Mon..Sun", "Pattern"});
  size_t commute = 0, leisure = 0;
  for (size_t c = 0; c < shares->size(); ++c) {
    const auto& row = (*shares)[c];
    auto pattern = analysis::ClassifyDayPattern(row);
    if (pattern == analysis::DayPattern::kWeekdayCommute) ++commute;
    if (pattern == analysis::DayPattern::kWeekendLeisure) ++leisure;
    std::vector<std::string> cells = {std::to_string(c + 1)};
    for (int d = 0; d < 7; ++d) cells.push_back(Pct(row[AsIndex(d)]));
    cells.push_back(Sparkline(row));
    cells.push_back(PatternName(pattern));
    t.AddRow(cells);
  }
  std::fputs(t.ToString().c_str(), stdout);

  std::printf(
      "\n%zu weekday-commute communities and %zu weekend-leisure communities "
      "(paper Fig. 5: usage lowest at weekends in communities 2/4/6, peaking "
      "Saturday in 1/3/7 — the same qualitative split).\n",
      commute, leisure);
  std::printf("Rebalancing hint (paper §V-C2): move bikes from commute "
              "communities to leisure communities on Friday night.\n");
  return 0;
}
