// Reproduces Table IV (and the statistics behind Fig. 3) — Louvain
// community detection on GBasic: per-community station split (old/new) and
// trip flows (within/out/in), plus modularity and self-containment.

#include "bench_common.h"

using namespace bikegraph;
using namespace bikegraph::bench;

namespace {

void PrintCommunityTable(const analysis::CommunityExperiment& exp,
                         const char* name) {
  viz::AsciiTable t({"ID", "Old", "New", "Total stations", "Within", "Out",
                     "In", "Total trips"});
  for (size_t c = 0; c < exp.stats.rows.size(); ++c) {
    const auto& row = exp.stats.rows[c];
    t.AddRow({std::to_string(c + 1), Fmt(row.old_stations),
              Fmt(row.new_stations), Fmt(row.total_stations()),
              Fmt(row.within), Fmt(row.out), Fmt(row.in),
              Fmt(row.total_trips())});
  }
  std::printf("%s communities (ours):\n%s", name, t.ToString().c_str());
}

}  // namespace

int main() {
  std::printf("=== Table IV / Fig. 3: GBasic community detection ===\n");
  auto result = RunExperimentOrDie();
  const auto& exp = result.gbasic;
  const analysis::PaperExpectations paper;

  viz::AsciiTable headline({"Measure", "Paper", "Ours"});
  headline.AddRow({"communities", Fmt(paper.gbasic_communities),
                   Fmt(exp.detection.partition.CommunityCount())});
  headline.AddRow({"modularity", Num(paper.gbasic_modularity),
                   Num(exp.detection.modularity)});
  headline.AddRow({"self-contained trips", Pct(paper.gbasic_self_contained),
                   Pct(exp.stats.SelfContainedFraction())});
  std::fputs(headline.ToString().c_str(), stdout);
  std::printf("\n");
  PrintCommunityTable(exp, "GBasic");
  std::printf(
      "\nPaper context: London 75%% and Beijing 77%% of trips were "
      "self-contained; the paper reports ~74%% for Moby.\n");
  return 0;
}
