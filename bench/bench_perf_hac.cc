// Performance benchmarks for the clustering substrate: the scalable
// threshold-bounded complete-linkage HAC vs the dense O(n^2) reference, and
// linkage-criterion comparison. The sparse variant is what makes the
// paper's 14k-location clustering tractable (the paper itself reports
// being "impeded by the sheer number of locations and software
// limitations").

#include <benchmark/benchmark.h>

#include "cluster/hac.h"
#include "core/rng.h"
#include "geo/haversine.h"

namespace bikegraph::cluster {
namespace {

using geo::LatLon;

std::vector<LatLon> ClusteredPoints(size_t n, uint64_t seed = 3) {
  Rng rng(seed);
  const LatLon center(53.35, -6.26);
  // Mimic the dockless distribution: points clump around micro-centres.
  std::vector<LatLon> micros;
  const size_t n_micros = std::max<size_t>(8, n / 12);
  for (size_t i = 0; i < n_micros; ++i) {
    micros.push_back(geo::Offset(center, rng.NextUniform(0.0, 5000.0),
                                 rng.NextUniform(0.0, 360.0)));
  }
  std::vector<LatLon> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const LatLon& m = micros[rng.NextBounded(micros.size())];
    points.push_back(geo::Offset(m, rng.NextExponential(1.0 / 25.0),
                                 rng.NextUniform(0.0, 360.0)));
  }
  return points;
}

void BM_ThresholdHac(benchmark::State& state) {
  auto points = ClusteredPoints(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto labels = ThresholdCompleteLinkage(points, 100.0);
    benchmark::DoNotOptimize(labels);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ThresholdHac)->Arg(500)->Arg(2000)->Arg(8000)->Arg(16000);

void BM_DenseHacComplete(benchmark::State& state) {
  auto points = ClusteredPoints(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto dendro = DenseHacGeo(points, Linkage::kComplete);
    benchmark::DoNotOptimize(dendro);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
// The dense reference is O(n^2) memory; keep sizes modest.
BENCHMARK(BM_DenseHacComplete)->Arg(500)->Arg(1000)->Arg(2000);

void BM_DenseHacLinkages(benchmark::State& state) {
  auto points = ClusteredPoints(600);
  const auto linkage = static_cast<Linkage>(state.range(0));
  for (auto _ : state) {
    auto dendro = DenseHacGeo(points, linkage);
    benchmark::DoNotOptimize(dendro);
  }
}
BENCHMARK(BM_DenseHacLinkages)
    ->Arg(static_cast<int>(Linkage::kSingle))
    ->Arg(static_cast<int>(Linkage::kComplete))
    ->Arg(static_cast<int>(Linkage::kAverage));

void BM_DendrogramCut(benchmark::State& state) {
  auto points = ClusteredPoints(1000);
  auto dendro = DenseHacGeo(points, Linkage::kComplete).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dendro.CutAt(100.0));
  }
}
BENCHMARK(BM_DendrogramCut);

}  // namespace
}  // namespace bikegraph::cluster

BENCHMARK_MAIN();
