// Ablation of Algorithm 1's rule thresholds — the paper's own limitation
// section notes that the 100 m cluster boundary and 250 m secondary
// distance "were not motivated by empirical evidence". This bench sweeps
// both and reports how the selected-station count and captured traffic
// respond, regenerating the data the authors would need for that analysis.

#include "analysis/experiment.h"
#include "bench_common.h"
#include "data/cleaning.h"
#include "data/synthetic.h"
#include "geo/dublin.h"

using namespace bikegraph;
using namespace bikegraph::bench;

int main() {
  std::printf("=== Ablation: Algorithm 1 rule thresholds ===\n");
  auto raw = data::GenerateSyntheticMoby(data::SyntheticConfig{});
  if (!raw.ok()) {
    std::fprintf(stderr, "%s\n", raw.status().ToString().c_str());
    return 1;
  }

  // Sweep 1: cluster boundary (Rule 1), secondary distance fixed at 250 m.
  std::printf("\nSweep 1 — Rule 1 cluster boundary (paper: 100 m):\n");
  viz::AsciiTable t1({"Boundary (m)", "Candidates", "Selected",
                      "New-station trip share", "Degree threshold"});
  for (double boundary : {50.0, 75.0, 100.0, 150.0, 200.0}) {
    expansion::PipelineConfig config;
    config.clustering.cluster_boundary_m = boundary;
    auto r = expansion::RunExpansionPipeline(*raw, config);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    auto stats = r->final_network.ComputeStats();
    t1.AddRow({Num(boundary, 0), Fmt(r->candidate_network.free_count()),
               Fmt(r->final_network.selected_count()),
               Pct(static_cast<double>(stats.selected.trips_from) /
                   static_cast<double>(stats.total_trips)),
               Fmt(r->selection.degree_threshold)});
  }
  std::fputs(t1.ToString().c_str(), stdout);

  // Sweep 2: secondary distance (Rule 4), boundary fixed at 100 m.
  std::printf("\nSweep 2 — Rule 4 secondary distance (paper: 250 m):\n");
  viz::AsciiTable t2({"Secondary distance (m)", "Selected",
                      "New-station trip share", "Peer suppressions"});
  for (double secondary : {100.0, 175.0, 250.0, 350.0, 500.0}) {
    expansion::PipelineConfig config;
    config.selection.secondary_distance_m = secondary;
    auto r = expansion::RunExpansionPipeline(*raw, config);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    auto stats = r->final_network.ComputeStats();
    t2.AddRow({Num(secondary, 0), Fmt(r->final_network.selected_count()),
               Pct(static_cast<double>(stats.selected.trips_from) /
                   static_cast<double>(stats.total_trips)),
               Fmt(r->selection.RejectedCount(
                   expansion::RejectionReason::kSuppressedByPeer))});
  }
  std::fputs(t2.ToString().c_str(), stdout);

  // Sweep 3: absorption radius (preprocessing, paper: 50 m).
  std::printf("\nSweep 3 — station absorption radius (paper: 50 m):\n");
  viz::AsciiTable t3({"Absorption (m)", "Candidates", "Selected"});
  for (double absorb : {25.0, 50.0, 100.0, 200.0}) {
    expansion::PipelineConfig config;
    config.clustering.station_absorption_m = absorb;
    auto r = expansion::RunExpansionPipeline(*raw, config);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    t3.AddRow({Num(absorb, 0), Fmt(r->candidate_network.free_count()),
               Fmt(r->final_network.selected_count())});
  }
  std::fputs(t3.ToString().c_str(), stdout);

  std::printf("\nReading: tighter boundaries fragment demand into more, "
              "weaker candidates; larger secondary distances thin the "
              "selected set via peer suppression.\n");
  return 0;
}
