// Reproduces Fig. 2 — the selected graph map: pre-existing + selected
// stations, nodes sized by self-trips, only the top-1% heaviest edges
// drawn (the paper's rendering convention).

#include "bench_common.h"
#include "geo/haversine.h"
#include "viz/map_export.h"

using namespace bikegraph;
using namespace bikegraph::bench;

int main() {
  std::printf("=== Fig. 2: selected graph map ===\n");
  auto result = RunExperimentOrDie();
  const auto& net = result.pipeline.final_network;

  const std::string path = "fig2_selected_graph.geojson";
  auto status = viz::WriteSelectedMap(net, path, /*edge_weight_percentile=*/0.99);
  if (!status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (top-1%% of directed edge weights drawn)\n",
              path.c_str());
  std::printf("stations: %zu pre-existing + %zu selected = %zu total "
              "(paper: 92 + 146 = 238)\n",
              net.pre_existing_count, net.selected_count(),
              net.stations.size());

  // Spatial check the paper makes visually: new stations concentrate
  // around the city centre, extending into the suburbs.
  const geo::LatLon centre(53.3478, -6.2597);
  double new_within_3km = 0, new_total = 0;
  for (const auto& st : net.stations) {
    if (st.pre_existing) continue;
    ++new_total;
    if (geo::HaversineMeters(st.position, centre) < 3000.0) ++new_within_3km;
  }
  std::printf("new stations within 3 km of O'Connell Bridge: %.0f / %.0f "
              "(%.0f%%) — paper: \"predominantly concentrated around Dublin "
              "City Centre\"\n",
              new_within_3km, new_total, 100.0 * new_within_3km / new_total);
  return 0;
}
