// Reproduces Table V (and the statistics behind Fig. 4) — Louvain on GDay,
// the graph whose edges carry the day-of-week temporal property.

#include "bench_common.h"

using namespace bikegraph;
using namespace bikegraph::bench;

int main() {
  std::printf("=== Table V / Fig. 4: GDay community detection ===\n");
  auto result = RunExperimentOrDie();
  const auto& exp = result.gday;
  const analysis::PaperExpectations paper;

  viz::AsciiTable headline({"Measure", "Paper", "Ours"});
  headline.AddRow({"communities", Fmt(paper.gday_communities),
                   Fmt(exp.detection.partition.CommunityCount())});
  headline.AddRow({"modularity", Num(paper.gday_modularity),
                   Num(exp.detection.modularity)});
  std::fputs(headline.ToString().c_str(), stdout);
  std::printf("\n");

  viz::AsciiTable t({"ID", "Old", "New", "Total stations", "Within", "Out",
                     "In", "Total trips"});
  for (size_t c = 0; c < exp.stats.rows.size(); ++c) {
    const auto& row = exp.stats.rows[c];
    t.AddRow({std::to_string(c + 1), Fmt(row.old_stations),
              Fmt(row.new_stations), Fmt(row.total_stations()),
              Fmt(row.within), Fmt(row.out), Fmt(row.in),
              Fmt(row.total_trips())});
  }
  std::printf("GDay communities (ours):\n%s", t.ToString().c_str());
  std::printf(
      "\nPaper shape check: more communities than GBasic, higher modularity, "
      "and some communities dominated by new stations (paper's communities "
      "2/4/6 were all-new).\n");
  return 0;
}
