// Reproduces the map renderings of Figs. 3, 4 and 6 — stations coloured by
// their community assignment for GBasic, GDay and GHour — and prints the
// spatial character of each GBasic community (the paper's southside /
// suburbs / centre-north reading of Fig. 3).

#include "bench_common.h"
#include "geo/haversine.h"
#include "viz/map_export.h"

#include "core/checked_cast.h"

using namespace bikegraph;
using namespace bikegraph::bench;

int main() {
  std::printf("=== Figs. 3/4/6: community maps ===\n");
  auto result = RunExperimentOrDie();
  const auto& net = result.pipeline.final_network;

  struct Job {
    const analysis::CommunityExperiment* exp;
    const char* path;
    const char* figure;
  };
  const Job jobs[] = {
      {&result.gbasic, "fig3_gbasic_communities.geojson", "Fig. 3 (GBasic)"},
      {&result.gday, "fig4_gday_communities.geojson", "Fig. 4 (GDay)"},
      {&result.ghour, "fig6_ghour_communities.geojson", "Fig. 6 (GHour)"},
  };
  for (const Job& job : jobs) {
    auto status =
        viz::WriteCommunityMap(net, job.exp->detection.partition, job.path);
    if (!status.ok()) {
      std::fprintf(stderr, "export failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("%s -> %s (%zu communities, Q=%.2f)\n", job.figure, job.path,
                job.exp->detection.partition.CommunityCount(),
                job.exp->detection.modularity);
  }

  // Spatial character of the GBasic communities: centroid and side of the
  // Liffey (the paper reads Fig. 3 as southside / suburbs / centre-north).
  std::printf("\nGBasic community geography:\n");
  const auto& partition = result.gbasic.detection.partition;
  const size_t k = partition.CommunityCount();
  std::vector<double> lat(k, 0), lon(k, 0), dist(k, 0);
  std::vector<size_t> count(k, 0), south(k, 0);
  const geo::LatLon centre(53.3478, -6.2597);
  for (size_t s = 0; s < net.stations.size(); ++s) {
    const int32_t c = partition.assignment[s];
    lat[AsIndex(c)] += net.stations[s].position.lat;
    lon[AsIndex(c)] += net.stations[s].position.lon;
    dist[AsIndex(c)] += geo::HaversineMeters(net.stations[s].position, centre);
    if (net.stations[s].position.lat < 53.3468) ++south[AsIndex(c)];
    ++count[AsIndex(c)];
  }
  viz::AsciiTable t({"Community", "Stations", "Centroid", "Mean dist to centre",
                     "South of Liffey"});
  for (size_t c = 0; c < k; ++c) {
    char centroid[48], mean_d[24];
    const double cnt = static_cast<double>(count[c]);
    std::snprintf(centroid, sizeof(centroid), "(%.4f, %.4f)", lat[c] / cnt,
                  lon[c] / cnt);
    std::snprintf(mean_d, sizeof(mean_d), "%.1f km", dist[c] / cnt / 1000.0);
    t.AddRow({std::to_string(c + 1), Fmt(count[c]), centroid, mean_d,
              Pct(static_cast<double>(south[c]) / cnt)});
  }
  std::fputs(t.ToString().c_str(), stdout);
  std::printf("\nPaper reading of Fig. 3: one community exclusively "
              "southside, one suburban (far from centre), one centre/north "
              "— check the 'South of Liffey' and distance columns above.\n");
  return 0;
}
