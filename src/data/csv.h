#pragma once

#include <string>
#include <vector>

#include "core/result.h"
#include "core/status.h"

namespace bikegraph::data {

/// \brief A parsed CSV table: a header row plus data rows of equal width.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or -1 when absent.
  int ColumnIndex(const std::string& name) const;
};

/// \brief RFC-4180-style CSV parsing (quoted fields, embedded commas,
/// doubled quotes, CRLF tolerance).
///
/// The Moby data arrives as two SQL-exported tables (Rental, Location);
/// this reader is the ingestion path for them and for any user-supplied
/// dataset in the same schema.
class CsvReader {
 public:
  /// Parses an in-memory CSV document. The first row is the header.
  /// Rows whose field count differs from the header are a kDataLoss error.
  [[nodiscard]] static Result<CsvTable> ParseString(const std::string& text);

  /// Reads and parses a CSV file.
  [[nodiscard]] static Result<CsvTable> ReadFile(const std::string& path);
};

/// \brief CSV writer with minimal quoting (fields containing a comma,
/// quote, or newline are quoted).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends one row; must match the header width.
  [[nodiscard]] Status AddRow(std::vector<std::string> row);

  /// Serialises header + rows.
  std::string ToString() const;

  /// Writes to a file.
  [[nodiscard]] Status WriteToFile(const std::string& path) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bikegraph::data
