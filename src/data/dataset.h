#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "core/result.h"
#include "core/status.h"
#include "data/records.h"

namespace bikegraph::data {

/// \brief Summary counts in the shape of the paper's Table I.
struct DatasetSummary {
  size_t station_count = 0;
  size_t rental_count = 0;
  size_t location_count = 0;
};

/// \brief The two-table Moby dataset: Rental and Location.
///
/// This is the root input of the whole pipeline. The container owns both
/// tables, maintains a by-id index over locations, and offers CSV round-trip
/// I/O in the export schema (`locations.csv`: id,lat,lon,is_station,name;
/// `rentals.csv`: id,bike_id,start_time,end_time,rental_location_id,
/// return_location_id — empty string encodes a missing value).
class Dataset {
 public:
  Dataset() = default;
  Dataset(std::vector<LocationRecord> locations,
          std::vector<RentalRecord> rentals);

  const std::vector<LocationRecord>& locations() const { return locations_; }
  const std::vector<RentalRecord>& rentals() const { return rentals_; }

  /// Mutable access invalidates the id index; call RebuildIndex() after
  /// bulk edits.
  std::vector<LocationRecord>* mutable_locations() { return &locations_; }
  std::vector<RentalRecord>* mutable_rentals() { return &rentals_; }
  void RebuildIndex();

  /// Looks up a location row by id; nullptr when absent.
  const LocationRecord* FindLocation(int64_t id) const;

  /// True iff the Location table contains `id`.
  bool HasLocation(int64_t id) const { return FindLocation(id) != nullptr; }

  /// Table-I style counts: #stations, #rentals, #locations.
  DatasetSummary Summarize() const;

  /// Structural validation: unique location ids, rentals referencing
  /// existing locations, start <= end. Returns the first violation.
  Status Validate() const;

  /// CSV round trip in the export schema described above.
  Status WriteCsv(const std::string& locations_path,
                  const std::string& rentals_path) const;
  static Result<Dataset> ReadCsv(const std::string& locations_path,
                                 const std::string& rentals_path);

  /// Serialise/parse without touching the filesystem (used in tests).
  std::string LocationsCsvString() const;
  std::string RentalsCsvString() const;
  static Result<Dataset> FromCsvStrings(const std::string& locations_csv,
                                        const std::string& rentals_csv);

 private:
  std::vector<LocationRecord> locations_;
  std::vector<RentalRecord> rentals_;
  std::unordered_map<int64_t, size_t> location_index_;
};

}  // namespace bikegraph::data
