#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/result.h"
#include "core/rng.h"
#include "data/dataset.h"
#include "geo/dublin.h"

namespace bikegraph::data {

/// \brief Configuration of the synthetic Moby Bikes dataset generator.
///
/// Defaults are calibrated so that the generated "original" dataset matches
/// the paper's Table I scale (95 stations / 62,324 rentals / 14,239
/// locations, Jan 2020 – Sep 2021) and so that the downstream pipeline
/// (constrained HAC → Algorithm 1 → Louvain) reproduces the *shape* of the
/// paper's results. All stochastic choices derive from `seed`.
struct SyntheticConfig {
  uint64_t seed = 20200103;

  /// Number of valid fixed stations (the paper's cleaned count is 92).
  int station_count = 92;
  /// Invalid stations injected as dirty data (paper: 95 - 92 = 3); one gets
  /// no coordinates, one lands in Dublin Bay, one outside the study area.
  int bad_station_count = 3;

  /// Rentals to generate *before* dirty-record injection.
  size_t clean_rental_count = 61872;

  /// Study window (inclusive start, exclusive end).
  int start_year = 2020, start_month = 1, start_day = 3;
  int end_year = 2021, end_month = 9, end_day = 20;

  /// Fleet size; bike ids are 1..bike_count.
  int bike_count = 95;

  /// Probability that a trip endpoint is at a fixed station (Moby's
  /// financial incentive to return bikes to charging stations).
  double station_endpoint_prob = 0.70;

  /// Gravity multiplier for trips that cross the River Liffey. Dublin's
  /// river splits the city; the paper's GBasic communities fall almost
  /// exactly along it (southside vs northside vs outer suburbs).
  double river_crossing_factor = 0.45;

  /// Probability that a station or dockless micro-centre inherits its
  /// hotspot's behavioural kind (commute/leisure/mixed); otherwise it draws
  /// a uniformly random kind. Values below 1 interleave temporal classes
  /// within neighbourhoods, giving individual stations the idiosyncratic
  /// hourly signatures that drive the paper's GHour fragmentation.
  double kind_fidelity = 0.60;

  /// Dockless endpoint model: a two-level Chinese-restaurant process.
  /// Level 1 grows "micro-centres" (street corners, shop fronts — the
  /// natural pick-up/drop-off niches that the HAC stage later rediscovers
  /// as candidate clusters); level 2 grows "popular spots" a few metres
  /// around a micro-centre. `micro_concentration` is the level-1 CRP alpha
  /// summed over all hotspots (≈ number of distinct niches, i.e. the
  /// eventual candidate-cluster count); `spot_alpha_per_micro` is the
  /// level-2 alpha (distinct spots per niche). `gps_jitter_prob` is the
  /// chance an endpoint logs a fresh location a few metres from its spot
  /// instead of reusing the spot's canonical location (the paper observes
  /// "a high number of distinct locations ... less than three meters
  /// apart").
  double micro_concentration = 290.0;
  double spot_alpha_per_micro = 3.0;
  double micro_sigma_m = 18.0;  ///< spot scatter around its micro-centre
  double gps_jitter_prob = 0.26;
  double gps_jitter_sigma_m = 4.0;

  /// Gravity decay for destination choice: weight ~ exp(-d / scale). Short
  /// scales make trips local, which drives the self-contained communities
  /// the paper observes (~74% of trips stay inside one community).
  double trip_distance_scale_m = 2800.0;
  /// Gravity self-weight of a hotspot (share of loop-ish trips).
  double self_gravity = 4.2;

  /// Mean riding speed (m/s) used to derive trip end times.
  double ride_speed_mps = 3.4;

  /// Minimum separation enforced between generated stations, metres.
  double station_min_separation_m = 420.0;

  /// Dirty-record injection counts (paper's cleaning removes 452 rentals
  /// and 83 locations, 3 of them stations).
  int dirty_outside_locations = 17;
  int dirty_water_locations = 15;
  int dirty_missing_coord_locations = 13;
  int dirty_rentals_per_bad_location = 7;  // mean, Poisson
  int dirty_missing_fk_rentals = 61;
  int dirty_dangling_fk_rentals = 73;
  int dirty_unreferenced_locations = 32;
};

/// \brief Generates the full "original" (dirty) dataset.
///
/// The result is intended to be fed to CleanDataset(); the cleaned output
/// then matches the paper's cleaned Table I row in scale and structure.
/// Generation is deterministic for a fixed config.
Result<Dataset> GenerateSyntheticMoby(const SyntheticConfig& config);

/// \brief The generator's internal station placement, exposed for tests and
/// for experiments that need ground-truth station sites: positions of the
/// `station_count` valid stations, in id order (location ids 1..N).
std::vector<geo::LatLon> GenerateStationSites(const SyntheticConfig& config);

/// \brief Hour-of-day demand profile (24 weights, unnormalised) for a
/// hotspot kind on a weekday or weekend day. Exposed for tests and for the
/// temporal-profile validation in the analysis layer.
std::array<double, 24> HourProfile(geo::Hotspot::Kind kind, bool weekend);

/// \brief Day-of-week demand multiplier for a hotspot kind (index 0 = Mon).
std::array<double, 7> DayProfile(geo::Hotspot::Kind kind);

/// \brief Seasonal × pandemic demand multiplier for a calendar day. Models
/// the COVID-19 collapse of March–May 2020 and the summer peaks.
double SeasonalFactor(int year, int month);

}  // namespace bikegraph::data
