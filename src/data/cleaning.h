#pragma once

#include <string>

#include "core/result.h"
#include "data/dataset.h"
#include "geo/polygon.h"

namespace bikegraph::data {

/// \brief Per-rule drop counters produced by the cleaning pipeline.
///
/// The six rules are exactly the paper's Section III list:
///  1. locations outside Dublin, and rentals that start or end at them;
///  2. locations not on land, and associated rentals;
///  3. locations missing latitude or longitude, and associated rentals;
///  4. rentals missing a Rental Location ID or Return Location ID;
///  5. rentals whose Rental/Return Location ID is not in the Location table;
///  6. location rows never referenced by any (surviving) rental.
struct CleaningReport {
  DatasetSummary before;
  DatasetSummary after;

  size_t locations_outside_area = 0;   // rule 1
  size_t locations_in_water = 0;       // rule 2
  size_t locations_missing_coords = 0; // rule 3
  size_t rentals_at_bad_locations = 0; // rules 1-3 cascade
  size_t rentals_missing_ids = 0;      // rule 4
  size_t rentals_dangling_ids = 0;     // rule 5
  size_t locations_unreferenced = 0;   // rule 6
  size_t stations_removed = 0;

  size_t TotalRentalsDropped() const {
    return rentals_at_bad_locations + rentals_missing_ids +
           rentals_dangling_ids;
  }
  size_t TotalLocationsDropped() const {
    return locations_outside_area + locations_in_water +
           locations_missing_coords + locations_unreferenced;
  }

  /// Renders the report as a small human-readable table (Table I shape plus
  /// the per-rule breakdown).
  std::string ToString() const;
};

/// \brief Output bundle of the cleaning pipeline.
struct CleaningResult {
  Dataset dataset;  ///< the cleaned dataset (valid per Dataset::Validate)
  CleaningReport report;
};

/// \brief Executes the paper's six-rule cleaning pipeline against `input`,
/// using `land` as the study-area/land model (see geo::DublinLand()).
///
/// The pipeline is order-dependent in the same way as the paper: spatial
/// rules first (1–3) with their rental cascades, then rental referential
/// rules (4–5), then the unreferenced-location sweep (6). The input dataset
/// is not modified.
Result<CleaningResult> CleanDataset(const Dataset& input,
                                    const geo::Region& land);

}  // namespace bikegraph::data
