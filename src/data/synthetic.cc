#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "core/civil_time.h"
#include "geo/grid_index.h"
#include "geo/haversine.h"

#include "core/checked_cast.h"

namespace bikegraph::data {

std::array<double, 24> HourProfile(geo::Hotspot::Kind kind, bool weekend) {
  using Kind = geo::Hotspot::Kind;
  std::array<double, 24> w{};
  auto bump = [&w](double center, double sigma, double height) {
    for (int h = 0; h < 24; ++h) {
      double d = h - center;
      w[AsIndex(h)] += height * std::exp(-(d * d) / (2.0 * sigma * sigma));
    }
  };
  // Base activity: quiet nights. The three kinds form three separable
  // hourly classes: commute (AM+PM rush), leisure (midday), mixed
  // (evening social/errands) — the classes the paper's Fig. 7 surfaces.
  for (int h = 0; h < 24; ++h) {
    w[AsIndex(h)] = (h >= 7 && h <= 22) ? 0.15 : 0.02;
  }
  switch (kind) {
    case Kind::kCommute:
      if (weekend) {
        bump(13.0, 3.5, 0.6);  // weak midday bump
      } else {
        bump(8.0, 1.2, 2.8);   // morning rush
        bump(17.3, 1.6, 2.6);  // evening rush
        bump(13.0, 2.0, 0.4);  // lunch
      }
      break;
    case Kind::kLeisure:
      bump(13.5, 2.4, weekend ? 3.2 : 1.8);  // midday leisure
      bump(17.5, 2.0, 0.4);
      break;
    case Kind::kMixed:
      // Evening-heavy social/errand usage, both weekday and weekend.
      bump(19.0, 1.8, weekend ? 2.4 : 2.0);
      bump(9.0, 2.0, 0.5);
      break;
  }
  return w;
}

std::array<double, 7> DayProfile(geo::Hotspot::Kind kind) {
  using Kind = geo::Hotspot::Kind;
  switch (kind) {
    case Kind::kCommute:
      return {1.00, 1.05, 1.05, 1.02, 0.98, 0.48, 0.40};
    case Kind::kLeisure:
      return {0.55, 0.55, 0.58, 0.62, 0.80, 1.55, 1.35};
    case Kind::kMixed:
      return {0.90, 0.92, 0.92, 0.92, 0.95, 1.05, 0.95};
  }
  return {1, 1, 1, 1, 1, 1, 1};
}

double SeasonalFactor(int year, int month) {
  // Seasonal shape: cycling peaks May-September.
  static const double kMonthly[12] = {0.55, 0.60, 0.75, 0.90, 1.05, 1.15,
                                      1.20, 1.15, 1.05, 0.90, 0.70, 0.55};
  double f = kMonthly[month - 1];
  // COVID-19: WHO pandemic declaration March 2020; severe Irish lockdown
  // Mar-May 2020, partial recovery through the summer, winter 20/21
  // restrictions, strong recovery from mid-2021.
  if (year == 2020) {
    if (month == 3) f *= 0.55;
    else if (month == 4) f *= 0.35;
    else if (month == 5) f *= 0.45;
    else if (month == 6) f *= 0.70;
    else if (month >= 7 && month <= 9) f *= 0.85;
    else if (month >= 10) f *= 0.70;
  } else if (year == 2021) {
    if (month <= 2) f *= 0.60;
    else if (month <= 4) f *= 0.75;
    else if (month <= 6) f *= 0.95;
    // July on: back to normal.
  }
  return f;
}

namespace {

using geo::Hotspot;
using geo::LatLon;

/// Draws a point from a 2-D Gaussian around `center`, rejected into `land`.
LatLon SamplePointNear(const LatLon& center, double spread_m,
                       const geo::Region& land, Rng* rng) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    double dx = rng->NextGaussian() * spread_m;  // east metres
    double dy = rng->NextGaussian() * spread_m;  // north metres
    LatLon p(center.lat + geo::MetersToLatDegrees(dy),
             center.lon + geo::MetersToLonDegrees(dx, center.lat));
    if (land.Contains(p)) return p;
  }
  return center;  // hotspot centres are always on land
}

/// One dockless "popular spot": a canonical location plus its CRP mass.
struct Spot {
  LatLon position;
  int64_t canonical_location_id;
  double popularity = 1.0;
};

/// A micro-centre (street corner / shop front): the level-1 CRP unit; owns
/// a pool of spots grown by the level-2 CRP. Each micro-centre carries its
/// own behavioural kind — usually inherited from its hotspot, sometimes not
/// (a cafe row inside a commuter district behaves like a leisure spot).
/// This per-endpoint idiosyncrasy is what gives individual stations the
/// distinct temporal signatures the paper's GHour analysis surfaces.
struct MicroCenter {
  LatLon position;
  double popularity = 1.0;
  Hotspot::Kind kind = Hotspot::Kind::kMixed;
  std::vector<size_t> spot_ids;  // into GenState::spots
};

/// Generator state shared across trip sampling.
struct GenState {
  SyntheticConfig config;
  geo::Region land;
  std::vector<Hotspot> hotspots;
  std::vector<LatLon> station_sites;           // index = station ordinal
  std::vector<int64_t> station_location_ids;   // parallel to station_sites
  std::vector<int> station_hotspot;            // owning hotspot per station
  std::vector<Hotspot::Kind> station_kind;     // behavioural kind per station
  geo::GridIndex station_index{200.0};

  std::vector<LocationRecord> locations;
  std::vector<Spot> spots;
  std::vector<MicroCenter> micros;
  std::vector<std::vector<size_t>> hotspot_micros;  // micro ids per hotspot
  double micro_alpha_unit = 0.0;  // level-1 alpha per unit of hotspot weight
  int64_t next_location_id = 1;

  // Precomputed per-hotspot pairwise gravity weights for destination choice.
  std::vector<std::vector<double>> dest_weights;

  Rng rng{0};
};

/// Draws an endpoint kind: inherit the hotspot's kind with probability
/// `fidelity`, otherwise uniform over the three kinds.
Hotspot::Kind SampleKind(Rng* rng, Hotspot::Kind hotspot_kind,
                         double fidelity) {
  if (rng->NextDouble() < fidelity) return hotspot_kind;
  switch (rng->NextBounded(3)) {
    case 0:
      return Hotspot::Kind::kCommute;
    case 1:
      return Hotspot::Kind::kLeisure;
    default:
      return Hotspot::Kind::kMixed;
  }
}

int64_t NewLocation(GenState* state, const LatLon& pos, bool is_station,
                    const std::string& name) {
  int64_t id = state->next_location_id++;
  state->locations.emplace_back(id, pos, is_station, name);
  return id;
}

void PlaceStations(GenState* state) {
  const auto& cfg = state->config;
  std::vector<double> weights;
  weights.reserve(state->hotspots.size());
  for (const auto& h : state->hotspots) weights.push_back(h.weight);

  geo::GridIndex placed(cfg.station_min_separation_m);
  int made = 0;
  int guard = 0;
  while (made < cfg.station_count && guard++ < 100000) {
    int h = static_cast<int>(state->rng.NextWeighted(weights));
    const Hotspot& hot = state->hotspots[AsIndex(h)];
    LatLon p = SamplePointNear(hot.center, hot.spread_m * 1.1, state->land,
                               &state->rng);
    if (!placed.empty()) {
      auto near = placed.Nearest(p);
      if (near.id >= 0 && near.distance_m < cfg.station_min_separation_m) {
        continue;
      }
    }
    placed.Add(made, p);
    state->station_sites.push_back(p);
    state->station_hotspot.push_back(h);
    state->station_kind.push_back(
        SampleKind(&state->rng, hot.kind, cfg.kind_fidelity));
    std::string name = hot.name + " / Stn " + std::to_string(made + 1);
    state->station_location_ids.push_back(NewLocation(state, p, true, name));
    state->station_index.Add(made, p);
    ++made;
  }
}

/// A sampled trip endpoint: the location-table id plus the behavioural
/// kind of the niche it belongs to.
struct Endpoint {
  int64_t location_id;
  Hotspot::Kind kind;
};

/// Hour-activity multiplier of a behavioural kind at a given hour; used to
/// steer trips towards endpoints that are "open" at the trip's start time
/// (a commute niche absorbs rush-hour arrivals, a park absorbs midday
/// ones). `hour < 0` disables the modulation.
double HourAffinity(Hotspot::Kind kind, bool weekend, int hour) {
  if (hour < 0) return 1.0;
  return 0.05 + HourProfile(kind, weekend)[AsIndex(hour)];
}

/// Chooses (or creates) the dockless location for an endpoint near
/// hotspot `h`. Two-level CRP: pick/grow a micro-centre, then pick/grow a
/// spot inside it, with occasional GPS jitter producing a fresh location a
/// few metres away. When `hour >= 0`, micro-centres are weighted by their
/// kind's activity at that hour.
Endpoint SampleDocklessLocation(GenState* state, int h, int hour = -1,
                                bool weekend = false) {
  auto& cfg = state->config;
  Rng& rng = state->rng;

  // Level 1: micro-centre CRP within the hotspot.
  auto& pool = state->hotspot_micros[AsIndex(h)];
  const double micro_alpha =
      state->micro_alpha_unit * std::max(0.2, state->hotspots[AsIndex(h)].weight);
  double total_mass = micro_alpha;
  for (size_t mid : pool) {
    total_mass += state->micros[mid].popularity *
                  HourAffinity(state->micros[mid].kind, weekend, hour);
  }
  double pick = rng.NextDouble() * total_mass;
  size_t micro_id = SIZE_MAX;
  double acc = 0.0;
  for (size_t mid : pool) {
    acc += state->micros[mid].popularity *
           HourAffinity(state->micros[mid].kind, weekend, hour);
    if (pick < acc) {
      micro_id = mid;
      break;
    }
  }
  if (micro_id == SIZE_MAX) {
    const Hotspot& hot = state->hotspots[AsIndex(h)];
    MicroCenter micro;
    micro.position =
        SamplePointNear(hot.center, hot.spread_m, state->land, &rng);
    micro.kind = SampleKind(&rng, hot.kind, cfg.kind_fidelity);
    state->micros.push_back(std::move(micro));
    micro_id = state->micros.size() - 1;
    pool.push_back(micro_id);
  }
  MicroCenter& micro = state->micros[micro_id];
  micro.popularity += 1.0;

  // Level 2: spot CRP within the micro-centre.
  double spot_mass = cfg.spot_alpha_per_micro;
  for (size_t sid : micro.spot_ids) {
    spot_mass += state->spots[sid].popularity;
  }
  pick = rng.NextDouble() * spot_mass;
  size_t spot_id = SIZE_MAX;
  acc = 0.0;
  for (size_t sid : micro.spot_ids) {
    acc += state->spots[sid].popularity;
    if (pick < acc) {
      spot_id = sid;
      break;
    }
  }
  if (spot_id == SIZE_MAX) {
    Spot spot;
    spot.position = SamplePointNear(micro.position, cfg.micro_sigma_m,
                                    state->land, &rng);
    spot.canonical_location_id = NewLocation(state, spot.position, false, "");
    state->spots.push_back(spot);
    spot_id = state->spots.size() - 1;
    micro.spot_ids.push_back(spot_id);
    return {state->spots[spot_id].canonical_location_id, micro.kind};
  }
  Spot& spot = state->spots[spot_id];
  spot.popularity += 1.0;
  if (rng.NextDouble() < cfg.gps_jitter_prob) {
    // A fresh location a few metres from the spot (GPS scatter).
    double dx = rng.NextGaussian() * cfg.gps_jitter_sigma_m;
    double dy = rng.NextGaussian() * cfg.gps_jitter_sigma_m;
    LatLon p(spot.position.lat + geo::MetersToLatDegrees(dy),
             spot.position.lon +
                 geo::MetersToLonDegrees(dx, spot.position.lat));
    if (!state->land.Contains(p)) p = spot.position;
    return {NewLocation(state, p, false, ""), micro.kind};
  }
  return {spot.canonical_location_id, micro.kind};
}

/// True when a trip between the two points crosses the Liffey corridor
/// (the river runs east-west at ~53.3468 between Heuston and the port).
bool CrossesRiver(const LatLon& a, const LatLon& b) {
  constexpr double kRiverLat = 53.3468;
  if ((a.lat > kRiverLat) == (b.lat > kRiverLat)) return false;
  // Longitude where the segment crosses the river's latitude.
  const double t = (kRiverLat - a.lat) / (b.lat - a.lat);
  const double lon = a.lon + t * (b.lon - a.lon);
  return lon >= -6.31 && lon <= -6.10;  // river + estuary span
}

void PrecomputeDestinationWeights(GenState* state) {
  const size_t n = state->hotspots.size();
  state->dest_weights.assign(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      const LatLon& pi = state->hotspots[i].center;
      const LatLon& pj = state->hotspots[j].center;
      double d = geo::HaversineMeters(pi, pj);
      double gravity = std::exp(-d / state->config.trip_distance_scale_m);
      // Self-trips (loops within a hotspot) are common in BSS data.
      if (i == j) gravity = state->config.self_gravity;
      if (CrossesRiver(pi, pj)) {
        gravity *= state->config.river_crossing_factor;
      }
      state->dest_weights[i][j] = state->hotspots[j].weight * gravity;
    }
  }
}

/// Per-day sampling weights across the study window.
std::vector<double> BuildDayWeights(CivilTime start, int n_days) {
  std::vector<double> w(AsIndex(n_days));
  for (int i = 0; i < n_days; ++i) {
    CivilTime day = start.AddDays(i);
    w[AsIndex(i)] = SeasonalFactor(day.year(), day.month());
  }
  return w;
}

int SampleHour(GenState* state, Hotspot::Kind kind, bool weekend) {
  auto profile = HourProfile(kind, weekend);
  std::vector<double> w(profile.begin(), profile.end());
  return static_cast<int>(state->rng.NextWeighted(w));
}

}  // namespace

std::vector<geo::LatLon> GenerateStationSites(const SyntheticConfig& config) {
  GenState state;
  state.config = config;
  state.land = geo::DublinLand();
  state.hotspots = geo::DublinHotspots();
  state.rng = Rng(config.seed);
  PlaceStations(&state);
  return state.station_sites;
}

Result<Dataset> GenerateSyntheticMoby(const SyntheticConfig& config) {
  if (config.station_count <= 0 || config.clean_rental_count == 0) {
    return Status::InvalidArgument("station_count and clean_rental_count must be positive");
  }
  GenState state;
  state.config = config;
  state.land = geo::DublinLand();
  state.hotspots = geo::DublinHotspots();
  state.rng = Rng(config.seed);
  state.hotspot_micros.assign(state.hotspots.size(), {});
  double total_hotspot_weight = 0.0;
  for (const auto& h : state.hotspots) {
    total_hotspot_weight += std::max(0.2, h.weight);
  }
  state.micro_alpha_unit = config.micro_concentration / total_hotspot_weight;

  PlaceStations(&state);
  PrecomputeDestinationWeights(&state);

  BIKEGRAPH_ASSIGN_OR_RETURN(
      CivilTime window_start,
      CivilTime::FromCalendar(config.start_year, config.start_month,
                              config.start_day));
  BIKEGRAPH_ASSIGN_OR_RETURN(
      CivilTime window_end,
      CivilTime::FromCalendar(config.end_year, config.end_month,
                              config.end_day));
  const int n_days = static_cast<int>(
      (window_end.seconds_since_epoch() - window_start.seconds_since_epoch()) /
      86400);
  if (n_days <= 0) {
    return Status::InvalidArgument("study window is empty");
  }
  std::vector<double> day_weights = BuildDayWeights(window_start, n_days);

  std::vector<double> hotspot_weights;
  for (const auto& h : state.hotspots) hotspot_weights.push_back(h.weight);

  std::vector<RentalRecord> rentals;
  rentals.reserve(config.clean_rental_count);

  // Per-station endpoint weights inside a hotspot: stations owned by the
  // hotspot, popularity heavy-tailed.
  std::vector<std::vector<int>> hotspot_stations(state.hotspots.size());
  for (size_t s = 0; s < state.station_sites.size(); ++s) {
    hotspot_stations[AsIndex(state.station_hotspot[s])].push_back(static_cast<int>(s));
  }
  std::vector<double> station_popularity(state.station_sites.size());
  for (auto& p : station_popularity) {
    p = 0.02 + state.rng.NextExponential(1.1);  // heavy-ish tail
  }

  auto pick_station_near = [&](int h, const LatLon& fallback, int hour,
                               bool weekend) -> Endpoint {
    // Prefer stations of the hotspot (hour-weighted when the trip's start
    // time is already known); fall back to the nearest station.
    const auto& owned = hotspot_stations[AsIndex(h)];
    int s;
    if (!owned.empty()) {
      std::vector<double> w;
      w.reserve(owned.size());
      for (int idx : owned) {
        w.push_back(station_popularity[AsIndex(idx)] *
                    HourAffinity(state.station_kind[AsIndex(idx)], weekend, hour));
      }
      s = owned[state.rng.NextWeighted(w)];
    } else {
      s = static_cast<int>(state.station_index.Nearest(fallback).id);
    }
    return {state.station_location_ids[AsIndex(s)], state.station_kind[AsIndex(s)]};
  };

  // Per-kind day distributions: seasonal weight x the kind's day-of-week
  // profile. The trip's calendar day is drawn from its *origin endpoint's*
  // kind, which is what stamps individual stations with commute-like or
  // leisure-like weekly signatures.
  std::array<std::vector<double>, 3> kind_day_weights;
  for (int k = 0; k < 3; ++k) {
    auto profile = DayProfile(static_cast<Hotspot::Kind>(k));
    kind_day_weights[AsIndex(k)].resize(AsIndex(n_days));
    for (int i = 0; i < n_days; ++i) {
      const int dow =
          static_cast<int>(window_start.AddDays(i).weekday());
      kind_day_weights[AsIndex(k)][AsIndex(i)] = day_weights[AsIndex(i)] * profile[AsIndex(dow)];
    }
  }

  int64_t rental_id = 1;
  for (size_t t = 0; t < config.clean_rental_count; ++t) {
    // Origin hotspot by static attraction weight, then the origin endpoint
    // (fixed station or dockless niche), whose kind drives the temporal
    // sampling below.
    const int oh = static_cast<int>(state.rng.NextWeighted(hotspot_weights));
    Endpoint origin;
    if (state.rng.NextDouble() < config.station_endpoint_prob) {
      origin = pick_station_near(oh, state.hotspots[AsIndex(oh)].center, /*hour=*/-1,
                                 /*weekend=*/false);
    } else {
      origin = SampleDocklessLocation(&state, oh);
    }
    const int kind_idx = static_cast<int>(origin.kind);

    // Calendar day and start hour from the origin's kind (seasonal x
    // weekly profile; kind-specific hourly profile).
    const int day_idx = static_cast<int>(
        state.rng.NextWeighted(kind_day_weights[AsIndex(kind_idx)]));
    const CivilTime day = window_start.AddDays(day_idx);
    const bool weekend = IsWeekend(day.weekday());
    const int dow = static_cast<int>(day.weekday());
    const int hour = SampleHour(&state, origin.kind, weekend);

    // Destination hotspot: gravity x the destination's weekly profile x its
    // hourly activity (rush-hour trips flow towards commute niches, midday
    // trips towards leisure ones).
    std::vector<double> dest_w(state.hotspots.size());
    for (size_t h = 0; h < state.hotspots.size(); ++h) {
      dest_w[h] = state.dest_weights[AsIndex(oh)][h] *
                  DayProfile(state.hotspots[h].kind)[AsIndex(dow)] *
                  HourAffinity(state.hotspots[h].kind, weekend, hour);
    }
    const int dh = static_cast<int>(state.rng.NextWeighted(dest_w));
    Endpoint dest;
    if (state.rng.NextDouble() < config.station_endpoint_prob) {
      dest = pick_station_near(dh, state.hotspots[AsIndex(dh)].center, hour, weekend);
    } else {
      dest = SampleDocklessLocation(&state, dh, hour, weekend);
    }
    const int64_t origin_loc = origin.location_id;
    const int64_t dest_loc = dest.location_id;
    const int minute = static_cast<int>(state.rng.NextBounded(60));
    const int second = static_cast<int>(state.rng.NextBounded(60));
    CivilTime start_time = CivilTime(day.seconds_since_epoch() + hour * 3600 +
                                     minute * 60 + second);

    // Duration from straight-line distance at riding speed, plus overhead.
    const LatLon origin_pos = state.locations[AsIndex(origin_loc - 1)].position;
    const LatLon dest_pos = state.locations[AsIndex(dest_loc - 1)].position;
    double dist = geo::HaversineMeters(origin_pos, dest_pos);
    double detour = 1.25 + 0.15 * state.rng.NextDouble();
    double ride_s = dist * detour / config.ride_speed_mps;
    double overhead_s = 90.0 + state.rng.NextExponential(1.0 / 240.0);
    if (dist < 30.0) {
      // Loop trip: leisure ride returning to the same area.
      ride_s = 600.0 + state.rng.NextExponential(1.0 / 1200.0);
    }
    CivilTime end_time =
        start_time.AddSeconds(static_cast<int64_t>(ride_s + overhead_s));

    RentalRecord r;
    r.id = rental_id++;
    r.bike_id = 1 + static_cast<int64_t>(state.rng.NextBounded(
                        static_cast<uint64_t>(config.bike_count)));
    r.start_time = start_time;
    r.end_time = end_time;
    r.rental_location_id = origin_loc;
    r.return_location_id = dest_loc;
    rentals.push_back(r);
  }

  // ---- Dirty-record injection -------------------------------------------
  Rng& rng = state.rng;
  auto random_clean_location = [&]() -> int64_t {
    return rentals[rng.NextBounded(rentals.size())].rental_location_id;
  };
  auto random_time = [&]() {
    int day_idx = static_cast<int>(rng.NextWeighted(day_weights));
    CivilTime day = window_start.AddDays(day_idx);
    return CivilTime(day.seconds_since_epoch() +
                     static_cast<int64_t>(rng.NextBounded(86400)));
  };
  auto add_dirty_rentals_at = [&](int64_t bad_loc, int mean_count) {
    int k = rng.NextPoisson(mean_count);
    for (int i = 0; i < k; ++i) {
      RentalRecord r;
      r.id = rental_id++;
      r.bike_id = 1 + static_cast<int64_t>(
                          rng.NextBounded(static_cast<uint64_t>(config.bike_count)));
      r.start_time = random_time();
      r.end_time = r.start_time.AddSeconds(
          300 + static_cast<int64_t>(rng.NextBounded(3600)));
      if (rng.NextDouble() < 0.5) {
        r.rental_location_id = bad_loc;
        r.return_location_id = random_clean_location();
      } else {
        r.rental_location_id = random_clean_location();
        r.return_location_id = bad_loc;
      }
      rentals.push_back(r);
    }
  };

  // Bad stations first (paper: 95 stations before cleaning, 92 after).
  const geo::LatLon outside = geo::OutsideDublinPoint();
  const geo::LatLon in_bay = geo::InBayPoint();
  for (int b = 0; b < config.bad_station_count; ++b) {
    LatLon pos;
    bool missing = false;
    switch (b % 3) {
      case 0:
        pos = LatLon(outside.lat + 0.002 * b, outside.lon - 0.003 * b);
        break;
      case 1:
        pos = LatLon(in_bay.lat + 0.002 * b, in_bay.lon + 0.002 * b);
        break;
      default:
        missing = true;
        break;
    }
    LocationRecord rec;
    rec.id = state.next_location_id++;
    rec.is_station = true;
    rec.name = "Decommissioned Stn " + std::to_string(b + 1);
    if (!missing) rec.position = pos;
    state.locations.push_back(rec);
    add_dirty_rentals_at(rec.id, config.dirty_rentals_per_bad_location);
  }

  // Rule-1 fodder: locations outside the study area.
  for (int i = 0; i < config.dirty_outside_locations; ++i) {
    LatLon p(outside.lat + rng.NextUniform(-0.05, 0.02),
             outside.lon + rng.NextUniform(-0.06, 0.06));
    int64_t id = NewLocation(&state, p, false, "");
    add_dirty_rentals_at(id, config.dirty_rentals_per_bad_location);
  }
  // Rule-2 fodder: locations in the bay.
  for (int i = 0; i < config.dirty_water_locations; ++i) {
    LatLon p(in_bay.lat + rng.NextUniform(-0.015, 0.02),
             in_bay.lon + rng.NextUniform(-0.01, 0.05));
    int64_t id = NewLocation(&state, p, false, "");
    add_dirty_rentals_at(id, config.dirty_rentals_per_bad_location);
  }
  // Rule-3 fodder: locations with missing coordinates.
  for (int i = 0; i < config.dirty_missing_coord_locations; ++i) {
    LocationRecord rec;
    rec.id = state.next_location_id++;
    state.locations.push_back(rec);
    add_dirty_rentals_at(rec.id, config.dirty_rentals_per_bad_location);
  }
  // Rule-4 fodder: rentals with a missing FK.
  for (int i = 0; i < config.dirty_missing_fk_rentals; ++i) {
    RentalRecord r;
    r.id = rental_id++;
    r.bike_id = 1 + static_cast<int64_t>(
                        rng.NextBounded(static_cast<uint64_t>(config.bike_count)));
    r.start_time = random_time();
    r.end_time = r.start_time.AddSeconds(600);
    if (rng.NextDouble() < 0.5) {
      r.rental_location_id = kInvalidId;
      r.return_location_id = random_clean_location();
    } else {
      r.rental_location_id = random_clean_location();
      r.return_location_id = kInvalidId;
    }
    rentals.push_back(r);
  }
  // Rule-5 fodder: rentals referencing ids absent from the Location table.
  for (int i = 0; i < config.dirty_dangling_fk_rentals; ++i) {
    RentalRecord r;
    r.id = rental_id++;
    r.bike_id = 1 + static_cast<int64_t>(
                        rng.NextBounded(static_cast<uint64_t>(config.bike_count)));
    r.start_time = random_time();
    r.end_time = r.start_time.AddSeconds(600);
    int64_t ghost = 10000000 + static_cast<int64_t>(rng.NextBounded(100000));
    if (rng.NextDouble() < 0.5) {
      r.rental_location_id = ghost;
      r.return_location_id = random_clean_location();
    } else {
      r.rental_location_id = random_clean_location();
      r.return_location_id = ghost;
    }
    rentals.push_back(r);
  }
  // Rule-6 fodder: locations never referenced by any rental.
  for (int i = 0; i < config.dirty_unreferenced_locations; ++i) {
    int h = static_cast<int>(rng.NextWeighted(hotspot_weights));
    LatLon p = SamplePointNear(state.hotspots[AsIndex(h)].center,
                               state.hotspots[AsIndex(h)].spread_m, state.land, &rng);
    NewLocation(&state, p, false, "");
  }

  return Dataset(std::move(state.locations), std::move(rentals));
}

}  // namespace bikegraph::data
