#include "data/cleaning.h"

#include <sstream>
#include <unordered_set>

#include "core/string_util.h"

namespace bikegraph::data {

std::string CleaningReport::ToString() const {
  std::ostringstream os;
  os << "Cleaning report\n";
  os << "  before: " << before.station_count << " stations, "
     << FormatWithCommas(static_cast<int64_t>(before.rental_count))
     << " rentals, "
     << FormatWithCommas(static_cast<int64_t>(before.location_count))
     << " locations\n";
  os << "  after:  " << after.station_count << " stations, "
     << FormatWithCommas(static_cast<int64_t>(after.rental_count))
     << " rentals, "
     << FormatWithCommas(static_cast<int64_t>(after.location_count))
     << " locations\n";
  os << "  rule 1 (outside study area): " << locations_outside_area
     << " locations\n";
  os << "  rule 2 (not on land):        " << locations_in_water
     << " locations\n";
  os << "  rule 3 (missing coords):     " << locations_missing_coords
     << " locations\n";
  os << "  rules 1-3 rental cascade:    " << rentals_at_bad_locations
     << " rentals\n";
  os << "  rule 4 (missing FK):         " << rentals_missing_ids
     << " rentals\n";
  os << "  rule 5 (dangling FK):        " << rentals_dangling_ids
     << " rentals\n";
  os << "  rule 6 (unreferenced):       " << locations_unreferenced
     << " locations\n";
  os << "  stations removed:            " << stations_removed << "\n";
  return os.str();
}

Result<CleaningResult> CleanDataset(const Dataset& input,
                                    const geo::Region& land) {
  CleaningResult result;
  CleaningReport& report = result.report;
  report.before = input.Summarize();

  // Rules 1-3: classify every location.
  std::unordered_set<int64_t> bad_locations;
  size_t stations_before = 0;
  for (const auto& loc : input.locations()) {
    if (loc.is_station) ++stations_before;
    if (!loc.has_coordinates()) {
      ++report.locations_missing_coords;
      bad_locations.insert(loc.id);
    } else if (!land.boundary().Contains(loc.position)) {
      ++report.locations_outside_area;
      bad_locations.insert(loc.id);
    } else if (!land.Contains(loc.position)) {
      ++report.locations_in_water;
      bad_locations.insert(loc.id);
    }
  }

  // Rentals: cascade of rules 1-3, then rules 4-5.
  std::vector<RentalRecord> kept_rentals;
  kept_rentals.reserve(input.rentals().size());
  for (const auto& r : input.rentals()) {
    if (!r.has_location_ids()) {
      ++report.rentals_missing_ids;  // rule 4
      continue;
    }
    if (!input.HasLocation(r.rental_location_id) ||
        !input.HasLocation(r.return_location_id)) {
      ++report.rentals_dangling_ids;  // rule 5
      continue;
    }
    if (bad_locations.count(r.rental_location_id) > 0 ||
        bad_locations.count(r.return_location_id) > 0) {
      ++report.rentals_at_bad_locations;  // rules 1-3 cascade
      continue;
    }
    kept_rentals.push_back(r);
  }

  // Rule 6: locations must be referenced by at least one surviving rental.
  std::unordered_set<int64_t> referenced;
  referenced.reserve(kept_rentals.size() * 2);
  for (const auto& r : kept_rentals) {
    referenced.insert(r.rental_location_id);
    referenced.insert(r.return_location_id);
  }
  std::vector<LocationRecord> kept_locations;
  kept_locations.reserve(input.locations().size());
  size_t stations_after = 0;
  for (const auto& loc : input.locations()) {
    if (bad_locations.count(loc.id) > 0) continue;
    if (referenced.count(loc.id) == 0) {
      ++report.locations_unreferenced;
      continue;
    }
    if (loc.is_station) ++stations_after;
    kept_locations.push_back(loc);
  }
  report.stations_removed = stations_before - stations_after;

  result.dataset =
      Dataset(std::move(kept_locations), std::move(kept_rentals));
  report.after = result.dataset.Summarize();
  BIKEGRAPH_RETURN_NOT_OK(result.dataset.Validate());
  return result;
}

}  // namespace bikegraph::data
