#pragma once

#include <cmath>
#include <cstdint>
#include <string>

#include "core/civil_time.h"
#include "geo/latlon.h"

namespace bikegraph::data {

/// \brief Sentinel for a missing foreign key or id.
inline constexpr int64_t kInvalidId = -1;

/// \brief One row of the Location table: a distinct place a bike was rented
/// from or returned to during the study period.
///
/// Stations (the 92–95 fixed charging points) are Location rows with
/// `is_station == true` and a human-readable name. Missing GPS coordinates
/// are represented by NaN lat/lon (see `has_coordinates()`), matching the
/// paper's "locations missing latitude or longitude" cleaning rule.
struct LocationRecord {
  int64_t id = kInvalidId;
  geo::LatLon position;
  bool is_station = false;
  std::string name;  ///< non-empty for stations only

  LocationRecord() { position = geo::LatLon(std::nan(""), std::nan("")); }
  LocationRecord(int64_t location_id, geo::LatLon pos, bool station = false,
                 std::string station_name = "")
      : id(location_id),
        position(pos),
        is_station(station),
        name(std::move(station_name)) {}

  /// True iff both coordinates are present (not NaN).
  bool has_coordinates() const {
    return !std::isnan(position.lat) && !std::isnan(position.lon);
  }
};

/// \brief One row of the Rental table: a single logged trip.
struct RentalRecord {
  int64_t id = kInvalidId;
  int64_t bike_id = kInvalidId;
  CivilTime start_time;
  CivilTime end_time;
  int64_t rental_location_id = kInvalidId;  ///< origin, FK into Location
  int64_t return_location_id = kInvalidId;  ///< destination, FK into Location

  /// True iff both foreign keys are present (may still dangle; the cleaning
  /// pipeline checks referential integrity separately).
  bool has_location_ids() const {
    return rental_location_id != kInvalidId &&
           return_location_id != kInvalidId;
  }

  /// Trip duration in seconds (may be 0 for degenerate records).
  int64_t DurationSeconds() const {
    return end_time.seconds_since_epoch() - start_time.seconds_since_epoch();
  }
};

}  // namespace bikegraph::data
