#include "data/csv.h"

#include <fstream>
#include <sstream>

namespace bikegraph::data {

int CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

namespace {

// Parses the whole document in one pass, honouring quoted fields that may
// contain commas, newlines, and doubled quotes.
Result<std::vector<std::vector<std::string>>> ParseRows(
    const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t i = 0;
  const size_t n = text.size();
  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&]() {
    end_field();
    // Skip rows that are entirely empty (e.g. trailing newline).
    if (!(row.size() == 1 && row[0].empty())) {
      rows.push_back(std::move(row));
    }
    row.clear();
  };
  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field.push_back(c);
      ++i;
      continue;
    }
    switch (c) {
      case '"':
        if (!field_started && field.empty()) {
          in_quotes = true;
          field_started = true;
        } else {
          field.push_back(c);  // quote mid-field: keep verbatim
        }
        ++i;
        break;
      case ',':
        end_field();
        ++i;
        break;
      case '\r':
        ++i;  // tolerate CRLF
        break;
      case '\n':
        end_row();
        ++i;
        break;
      default:
        field.push_back(c);
        field_started = true;
        ++i;
        break;
    }
  }
  if (in_quotes) {
    return Status::DataLoss("unterminated quoted field at end of input");
  }
  if (field_started || !field.empty() || !row.empty()) {
    end_row();
  }
  return rows;
}

bool NeedsQuoting(const std::string& s) {
  for (char c : s) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendField(std::string* out, const std::string& field) {
  if (!NeedsQuoting(field)) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

Result<CsvTable> CsvReader::ParseString(const std::string& text) {
  BIKEGRAPH_ASSIGN_OR_RETURN(auto rows, ParseRows(text));
  if (rows.empty()) return Status::DataLoss("empty CSV document");
  CsvTable table;
  table.header = std::move(rows.front());
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != table.header.size()) {
      return Status::DataLoss("row " + std::to_string(r) + " has " +
                              std::to_string(rows[r].size()) +
                              " fields, header has " +
                              std::to_string(table.header.size()));
    }
    table.rows.push_back(std::move(rows[r]));
  }
  return table;
}

Result<CsvTable> CsvReader::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseString(buffer.str());
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

Status CsvWriter::AddRow(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    return Status::InvalidArgument(
        "row width " + std::to_string(row.size()) + " != header width " +
        std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

std::string CsvWriter::ToString() const {
  std::string out;
  for (size_t i = 0; i < header_.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendField(&out, header_[i]);
  }
  out.push_back('\n');
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendField(&out, row[i]);
    }
    out.push_back('\n');
  }
  return out;
}

Status CsvWriter::WriteToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << ToString();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace bikegraph::data
