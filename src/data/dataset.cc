#include "data/dataset.h"

#include <cmath>
#include <fstream>
#include <set>

#include "core/string_util.h"
#include "data/csv.h"

#include "core/checked_cast.h"

namespace bikegraph::data {

Dataset::Dataset(std::vector<LocationRecord> locations,
                 std::vector<RentalRecord> rentals)
    : locations_(std::move(locations)), rentals_(std::move(rentals)) {
  RebuildIndex();
}

void Dataset::RebuildIndex() {
  location_index_.clear();
  location_index_.reserve(locations_.size());
  for (size_t i = 0; i < locations_.size(); ++i) {
    location_index_.emplace(locations_[i].id, i);
  }
}

const LocationRecord* Dataset::FindLocation(int64_t id) const {
  auto it = location_index_.find(id);
  if (it == location_index_.end()) return nullptr;
  return &locations_[it->second];
}

DatasetSummary Dataset::Summarize() const {
  DatasetSummary s;
  s.rental_count = rentals_.size();
  s.location_count = locations_.size();
  for (const auto& loc : locations_) {
    if (loc.is_station) ++s.station_count;
  }
  return s;
}

Status Dataset::Validate() const {
  std::set<int64_t> seen;
  for (const auto& loc : locations_) {
    if (loc.id == kInvalidId) {
      return Status::DataLoss("location with invalid id");
    }
    if (!seen.insert(loc.id).second) {
      return Status::DataLoss("duplicate location id " +
                              std::to_string(loc.id));
    }
  }
  for (const auto& r : rentals_) {
    if (!r.has_location_ids()) {
      return Status::DataLoss("rental " + std::to_string(r.id) +
                              " missing a location id");
    }
    if (!HasLocation(r.rental_location_id)) {
      return Status::DataLoss("rental " + std::to_string(r.id) +
                              " references unknown rental location " +
                              std::to_string(r.rental_location_id));
    }
    if (!HasLocation(r.return_location_id)) {
      return Status::DataLoss("rental " + std::to_string(r.id) +
                              " references unknown return location " +
                              std::to_string(r.return_location_id));
    }
    if (r.end_time < r.start_time) {
      return Status::DataLoss("rental " + std::to_string(r.id) +
                              " ends before it starts");
    }
  }
  return Status::OK();
}

std::string Dataset::LocationsCsvString() const {
  CsvWriter w({"id", "lat", "lon", "is_station", "name"});
  for (const auto& loc : locations_) {
    std::string lat = std::isnan(loc.position.lat)
                          ? ""
                          : FormatDouble(loc.position.lat, 6);
    std::string lon = std::isnan(loc.position.lon)
                          ? ""
                          : FormatDouble(loc.position.lon, 6);
    (void)w.AddRow({std::to_string(loc.id), lat, lon,
                    loc.is_station ? "1" : "0", loc.name});
  }
  return w.ToString();
}

std::string Dataset::RentalsCsvString() const {
  CsvWriter w({"id", "bike_id", "start_time", "end_time",
               "rental_location_id", "return_location_id"});
  for (const auto& r : rentals_) {
    auto fk = [](int64_t id) {
      return id == kInvalidId ? std::string() : std::to_string(id);
    };
    (void)w.AddRow({std::to_string(r.id), std::to_string(r.bike_id),
                    r.start_time.ToString(), r.end_time.ToString(),
                    fk(r.rental_location_id), fk(r.return_location_id)});
  }
  return w.ToString();
}

Status Dataset::WriteCsv(const std::string& locations_path,
                         const std::string& rentals_path) const {
  auto write = [](const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary);
    if (!out) return Status::IOError("cannot open for write: " + path);
    out << content;
    if (!out) return Status::IOError("write failed: " + path);
    return Status::OK();
  };
  BIKEGRAPH_RETURN_NOT_OK(write(locations_path, LocationsCsvString()));
  return write(rentals_path, RentalsCsvString());
}

namespace {

Result<std::vector<LocationRecord>> ParseLocations(const CsvTable& table) {
  const int id_col = table.ColumnIndex("id");
  const int lat_col = table.ColumnIndex("lat");
  const int lon_col = table.ColumnIndex("lon");
  const int station_col = table.ColumnIndex("is_station");
  const int name_col = table.ColumnIndex("name");
  if (id_col < 0 || lat_col < 0 || lon_col < 0 || station_col < 0 ||
      name_col < 0) {
    return Status::DataLoss("locations CSV missing a required column");
  }
  std::vector<LocationRecord> out;
  out.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    LocationRecord loc;
    BIKEGRAPH_ASSIGN_OR_RETURN(loc.id, ParseInt(row[AsIndex(id_col)]));
    if (!row[AsIndex(lat_col)].empty() && !row[AsIndex(lon_col)].empty()) {
      BIKEGRAPH_ASSIGN_OR_RETURN(loc.position.lat, ParseDouble(row[AsIndex(lat_col)]));
      BIKEGRAPH_ASSIGN_OR_RETURN(loc.position.lon, ParseDouble(row[AsIndex(lon_col)]));
    }
    loc.is_station = row[AsIndex(station_col)] == "1";
    loc.name = row[AsIndex(name_col)];
    out.push_back(std::move(loc));
  }
  return out;
}

Result<std::vector<RentalRecord>> ParseRentals(const CsvTable& table) {
  const int id_col = table.ColumnIndex("id");
  const int bike_col = table.ColumnIndex("bike_id");
  const int start_col = table.ColumnIndex("start_time");
  const int end_col = table.ColumnIndex("end_time");
  const int rent_col = table.ColumnIndex("rental_location_id");
  const int ret_col = table.ColumnIndex("return_location_id");
  if (id_col < 0 || bike_col < 0 || start_col < 0 || end_col < 0 ||
      rent_col < 0 || ret_col < 0) {
    return Status::DataLoss("rentals CSV missing a required column");
  }
  std::vector<RentalRecord> out;
  out.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    RentalRecord r;
    BIKEGRAPH_ASSIGN_OR_RETURN(r.id, ParseInt(row[AsIndex(id_col)]));
    BIKEGRAPH_ASSIGN_OR_RETURN(r.bike_id, ParseInt(row[AsIndex(bike_col)]));
    BIKEGRAPH_ASSIGN_OR_RETURN(r.start_time, CivilTime::Parse(row[AsIndex(start_col)]));
    BIKEGRAPH_ASSIGN_OR_RETURN(r.end_time, CivilTime::Parse(row[AsIndex(end_col)]));
    if (!row[AsIndex(rent_col)].empty()) {
      BIKEGRAPH_ASSIGN_OR_RETURN(r.rental_location_id,
                                 ParseInt(row[AsIndex(rent_col)]));
    }
    if (!row[AsIndex(ret_col)].empty()) {
      BIKEGRAPH_ASSIGN_OR_RETURN(r.return_location_id, ParseInt(row[AsIndex(ret_col)]));
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace

Result<Dataset> Dataset::FromCsvStrings(const std::string& locations_csv,
                                        const std::string& rentals_csv) {
  BIKEGRAPH_ASSIGN_OR_RETURN(auto loc_table,
                             CsvReader::ParseString(locations_csv));
  BIKEGRAPH_ASSIGN_OR_RETURN(auto rent_table,
                             CsvReader::ParseString(rentals_csv));
  BIKEGRAPH_ASSIGN_OR_RETURN(auto locations, ParseLocations(loc_table));
  BIKEGRAPH_ASSIGN_OR_RETURN(auto rentals, ParseRentals(rent_table));
  return Dataset(std::move(locations), std::move(rentals));
}

Result<Dataset> Dataset::ReadCsv(const std::string& locations_path,
                                 const std::string& rentals_path) {
  BIKEGRAPH_ASSIGN_OR_RETURN(auto loc_table,
                             CsvReader::ReadFile(locations_path));
  BIKEGRAPH_ASSIGN_OR_RETURN(auto rent_table,
                             CsvReader::ReadFile(rentals_path));
  BIKEGRAPH_ASSIGN_OR_RETURN(auto locations, ParseLocations(loc_table));
  BIKEGRAPH_ASSIGN_OR_RETURN(auto rentals, ParseRentals(rent_table));
  return Dataset(std::move(locations), std::move(rentals));
}

}  // namespace bikegraph::data
