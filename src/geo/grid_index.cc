#include "geo/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geo/haversine.h"

namespace bikegraph::geo {

GridIndex::GridIndex(double cell_size_m, double reference_lat) {
  if (cell_size_m <= 0.0) cell_size_m = 100.0;
  cell_lat_deg_ = MetersToLatDegrees(cell_size_m);
  cell_lon_deg_ = MetersToLonDegrees(cell_size_m, reference_lat);
}

GridIndex::CellKey GridIndex::KeyFor(const LatLon& p) const {
  return CellKey{static_cast<int32_t>(std::floor(p.lat / cell_lat_deg_)),
                 static_cast<int32_t>(std::floor(p.lon / cell_lon_deg_))};
}

bool GridIndex::Add(int64_t id, const LatLon& point) {
  if (!point.IsValid()) return false;
  cells_[KeyFor(point)].push_back(id);
  points_[id] = point;
  return true;
}

std::vector<int64_t> GridIndex::WithinRadius(const LatLon& center,
                                             double radius_m) const {
  std::vector<int64_t> out;
  if (radius_m < 0.0 || points_.empty()) return out;
  const double dlat = MetersToLatDegrees(radius_m);
  const double dlon = MetersToLonDegrees(radius_m, center.lat);
  const CellKey lo = KeyFor(LatLon(center.lat - dlat, center.lon - dlon));
  const CellKey hi = KeyFor(LatLon(center.lat + dlat, center.lon + dlon));
  for (int32_t row = lo.row; row <= hi.row; ++row) {
    for (int32_t col = lo.col; col <= hi.col; ++col) {
      auto it = cells_.find(CellKey{row, col});
      if (it == cells_.end()) continue;
      for (int64_t id : it->second) {
        if (HaversineMeters(points_.at(id), center) <= radius_m) {
          out.push_back(id);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t GridIndex::CountWithinRadius(const LatLon& center,
                                    double radius_m) const {
  if (radius_m < 0.0 || points_.empty()) return 0;
  const double dlat = MetersToLatDegrees(radius_m);
  const double dlon = MetersToLonDegrees(radius_m, center.lat);
  const CellKey lo = KeyFor(LatLon(center.lat - dlat, center.lon - dlon));
  const CellKey hi = KeyFor(LatLon(center.lat + dlat, center.lon + dlon));
  size_t count = 0;
  for (int32_t row = lo.row; row <= hi.row; ++row) {
    for (int32_t col = lo.col; col <= hi.col; ++col) {
      auto it = cells_.find(CellKey{row, col});
      if (it == cells_.end()) continue;
      for (int64_t id : it->second) {
        if (HaversineMeters(points_.at(id), center) <= radius_m) ++count;
      }
    }
  }
  return count;
}

GridIndex::Neighbor GridIndex::Nearest(const LatLon& query,
                                       int64_t exclude_id) const {
  Neighbor best;
  best.distance_m = std::numeric_limits<double>::infinity();
  if (points_.empty()) return best;
  // Expanding ring search: examine cells at increasing Chebyshev radius until
  // the best candidate is provably closer than any unexplored cell.
  const CellKey origin = KeyFor(query);
  const double cell_m =
      kEarthRadiusMeters * DegToRad(cell_lat_deg_);  // cell edge in metres
  // Bound the ring search by the grid's populated extent.
  for (int32_t ring = 0;; ++ring) {
    bool any_cell_checked = false;
    for (int32_t row = origin.row - ring; row <= origin.row + ring; ++row) {
      for (int32_t col = origin.col - ring; col <= origin.col + ring; ++col) {
        // Only the boundary of the ring (interior was covered earlier).
        if (ring > 0 && std::abs(row - origin.row) != ring &&
            std::abs(col - origin.col) != ring) {
          continue;
        }
        auto it = cells_.find(CellKey{row, col});
        if (it == cells_.end()) continue;
        any_cell_checked = true;
        for (int64_t id : it->second) {
          if (id == exclude_id) continue;
          double d = HaversineMeters(points_.at(id), query);
          if (d < best.distance_m ||
              (d == best.distance_m && id < best.id)) {
            best.id = id;
            best.distance_m = d;
          }
        }
      }
    }
    // Stop when we have a hit and the next ring cannot contain anything
    // closer: the nearest point in ring r+1 is at least r*cell_m away.
    if (best.id >= 0 && best.distance_m <= ring * cell_m) break;
    // Safety stop: if we've searched far past the data extent, give up ring
    // growth and fall back to a full scan.
    if (ring > 4096) {
      for (const auto& [id, p] : points_) {
        if (id == exclude_id) continue;
        double d = HaversineMeters(p, query);
        if (d < best.distance_m || (d == best.distance_m && id < best.id)) {
          best.id = id;
          best.distance_m = d;
        }
      }
      break;
    }
    (void)any_cell_checked;
  }
  return best;
}

std::vector<GridIndex::Neighbor> GridIndex::KNearest(const LatLon& query,
                                                     size_t k,
                                                     int64_t exclude_id) const {
  std::vector<Neighbor> all;
  all.reserve(points_.size());
  for (const auto& [id, p] : points_) {
    if (id == exclude_id) continue;
    all.push_back(Neighbor{id, HaversineMeters(p, query)});
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance_m != b.distance_m) return a.distance_m < b.distance_m;
    return a.id < b.id;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

LatLon GridIndex::PointOf(int64_t id) const {
  auto it = points_.find(id);
  if (it == points_.end()) return LatLon(std::nan(""), std::nan(""));
  return it->second;
}

}  // namespace bikegraph::geo
