#include "geo/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geo/haversine.h"

#include "core/checked_cast.h"

namespace bikegraph::geo {

GridIndex::GridIndex(double cell_size_m, double reference_lat) {
  if (cell_size_m <= 0.0) cell_size_m = 100.0;
  cell_lat_deg_ = MetersToLatDegrees(cell_size_m);
  cell_lon_deg_ = MetersToLonDegrees(cell_size_m, reference_lat);
}

GridIndex::CellKey GridIndex::KeyFor(const LatLon& p) const {
  return CellKey{static_cast<int32_t>(std::floor(p.lat / cell_lat_deg_)),
                 static_cast<int32_t>(std::floor(p.lon / cell_lon_deg_))};
}

double GridIndex::RingCellExtentMeters(double query_lat, int32_t ring) const {
  // Most poleward latitude ring+1 can reach: longitude cells are narrowest
  // there, so this is the conservative per-ring distance bound.
  const double reach =
      std::min(90.0, std::abs(query_lat) +
                         (static_cast<double>(ring) + 1.0) * cell_lat_deg_);
  return std::max(1e-9, MinCellExtentMeters(std::cos(DegToRad(reach))));
}

double GridIndex::MinCellExtentMeters(double cos_query_lat) const {
  const double cell_lat_m = kEarthRadiusMeters * DegToRad(cell_lat_deg_);
  // A longitude cell spans cell_lon_deg_ degrees, whose metric width shrinks
  // with cos(latitude): away from the reference latitude it can be narrower
  // than the latitude edge, so the ring-termination bound must use the
  // smaller of the two extents or the search could stop while a closer
  // point sits in an unvisited lateral cell.
  const double cell_lon_m = kEarthRadiusMeters * DegToRad(cell_lon_deg_) *
                            std::max(0.0, cos_query_lat);
  return std::min(cell_lat_m, cell_lon_m);
}

bool GridIndex::Add(int64_t id, const LatLon& point) {
  if (!point.IsValid()) return false;
  if (frozen_) {
    // Thaw: drop the frozen arrays and let the lazy hash build re-bucket
    // everything (slot_keys_ still holds every slot's cell) on the next
    // query.
    frozen_ = false;
    frozen_keys_.clear();
    frozen_offsets_.clear();
    frozen_slots_.clear();
    cells_.clear();
    hashed_upto_ = 0;
  }
  const int32_t slot = static_cast<int32_t>(points_.size());
  points_.push_back(point);
  ids_.push_back(id);
  cos_lat_.push_back(std::cos(DegToRad(point.lat)));
  slot_keys_.push_back(KeyFor(point));
  id_to_slot_[id] = slot;
  return true;
}

void GridIndex::EnsureHashed() const {
  for (; hashed_upto_ < slot_keys_.size(); ++hashed_upto_) {
    cells_[slot_keys_[hashed_upto_]].push_back(
        static_cast<int32_t>(hashed_upto_));
  }
}

void GridIndex::Freeze() {
  if (frozen_) return;
  const size_t n = slot_keys_.size();
  // Sort slots by cell key (stable, so each cell keeps insertion order —
  // the same order the hash buckets would hold).
  std::vector<int32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<int32_t>(i);
  std::stable_sort(order.begin(), order.end(),
                   [&](int32_t a, int32_t b) {
                     return slot_keys_[AsIndex(a)] < slot_keys_[AsIndex(b)];
                   });
  frozen_keys_.clear();
  frozen_offsets_.clear();
  frozen_slots_.clear();
  frozen_slots_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const CellKey key = slot_keys_[AsIndex(order[i])];
    if (frozen_keys_.empty() || !(frozen_keys_.back() == key)) {
      frozen_keys_.push_back(key);
      frozen_offsets_.push_back(i);
    }
    frozen_slots_.push_back(order[i]);
  }
  frozen_offsets_.push_back(n);
  cells_.clear();
  hashed_upto_ = n;
  frozen_ = true;
}

std::vector<int64_t> GridIndex::WithinRadius(const LatLon& center,
                                             double radius_m) const {
  std::vector<int64_t> out;
  ForEachWithinRadius(center, radius_m,
                      [&](int64_t id, double) { out.push_back(id); });
  std::sort(out.begin(), out.end());
  return out;
}

size_t GridIndex::CountWithinRadius(const LatLon& center,
                                    double radius_m) const {
  size_t count = 0;
  ForEachWithinRadius(center, radius_m, [&](int64_t, double) { ++count; });
  return count;
}

GridIndex::Neighbor GridIndex::Nearest(const LatLon& query,
                                       int64_t exclude_id) const {
  Neighbor best;
  best.distance_m = std::numeric_limits<double>::infinity();
  if (points_.empty()) return best;
  // Expanding ring search: examine cells at increasing Chebyshev radius until
  // the best candidate is provably closer than any unexplored cell.
  const CellKey origin = KeyFor(query);
  const double cos_query = std::cos(DegToRad(query.lat));
  size_t visited = 0;
  for (int32_t ring = 0;; ++ring) {
    for (int32_t row = origin.row - ring; row <= origin.row + ring; ++row) {
      for (int32_t col = origin.col - ring; col <= origin.col + ring; ++col) {
        // Only the boundary of the ring (interior was covered earlier).
        if (ring > 0 && std::abs(row - origin.row) != ring &&
            std::abs(col - origin.col) != ring) {
          continue;
        }
        for (int32_t slot : CellSlots(CellKey{row, col})) {
          ++visited;
          if (ids_[AsIndex(slot)] == exclude_id) continue;
          double d = HaversineMetersWithCos(points_[AsIndex(slot)], query,
                                            cos_lat_[AsIndex(slot)], cos_query);
          if (d < best.distance_m ||
              (d == best.distance_m && ids_[AsIndex(slot)] < best.id)) {
            best.id = ids_[AsIndex(slot)];
            best.distance_m = d;
          }
        }
      }
    }
    // Stop when we have a hit and the next ring cannot contain anything
    // closer: the nearest point in ring r+1 is at least r*cell_m away, with
    // the cell extent evaluated at the most poleward latitude the next ring
    // can reach (longitude cells only get narrower toward the poles).
    if (best.id >= 0 &&
        best.distance_m <= ring * RingCellExtentMeters(query.lat, ring)) {
      break;
    }
    // Every stored point has been examined — no further ring can help.
    if (visited >= points_.size()) break;
    // Far past any sane grid extent (e.g. a degenerate near-pole cell
    // metric): fall back to an exhaustive scan rather than miss points.
    if (ring > 1 << 16) {
      for (size_t slot = 0; slot < points_.size(); ++slot) {
        if (ids_[slot] == exclude_id) continue;
        double d = HaversineMetersWithCos(points_[slot], query,
                                          cos_lat_[slot], cos_query);
        if (d < best.distance_m ||
            (d == best.distance_m && ids_[slot] < best.id)) {
          best.id = ids_[slot];
          best.distance_m = d;
        }
      }
      break;
    }
  }
  return best;
}

std::vector<GridIndex::Neighbor> GridIndex::KNearest(const LatLon& query,
                                                     size_t k,
                                                     int64_t exclude_id) const {
  std::vector<Neighbor> heap;  // max-heap: farthest of the k best at front
  if (k == 0 || points_.empty()) return heap;
  heap.reserve(std::min(k, points_.size()) + 1);
  auto closer = [](const Neighbor& x, const Neighbor& y) {
    if (x.distance_m != y.distance_m) return x.distance_m < y.distance_m;
    return x.id < y.id;
  };

  const CellKey origin = KeyFor(query);
  const double cos_query = std::cos(DegToRad(query.lat));
  auto consider = [&](int32_t slot) {
    if (ids_[AsIndex(slot)] == exclude_id) return;
    Neighbor cand{ids_[AsIndex(slot)],
                  HaversineMetersWithCos(points_[AsIndex(slot)], query, cos_lat_[AsIndex(slot)],
                                         cos_query)};
    if (heap.size() < k) {
      heap.push_back(cand);
      std::push_heap(heap.begin(), heap.end(), closer);
    } else if (closer(cand, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), closer);
      heap.back() = cand;
      std::push_heap(heap.begin(), heap.end(), closer);
    }
  };
  size_t visited = 0;
  for (int32_t ring = 0;; ++ring) {
    for (int32_t row = origin.row - ring; row <= origin.row + ring; ++row) {
      for (int32_t col = origin.col - ring; col <= origin.col + ring; ++col) {
        if (ring > 0 && std::abs(row - origin.row) != ring &&
            std::abs(col - origin.col) != ring) {
          continue;
        }
        for (int32_t slot : CellSlots(CellKey{row, col})) {
          ++visited;
          consider(slot);
        }
      }
    }
    // The k-th best is provably closer than anything in ring r+1.
    if (heap.size() == k &&
        heap.front().distance_m <= ring * RingCellExtentMeters(query.lat,
                                                               ring)) {
      break;
    }
    if (visited >= points_.size()) break;
    if (ring > 1 << 16) {  // degenerate metric: exhaustive fallback
      // Restart from scratch — the ring scan already pushed some of these
      // slots, and re-considering them would duplicate ids in the heap.
      heap.clear();
      for (size_t slot = 0; slot < points_.size(); ++slot) {
        consider(static_cast<int32_t>(slot));
      }
      break;
    }
  }
  std::sort(heap.begin(), heap.end(), closer);
  return heap;
}

LatLon GridIndex::PointOf(int64_t id) const {
  auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end()) return LatLon(std::nan(""), std::nan(""));
  return points_[AsIndex(it->second)];
}

}  // namespace bikegraph::geo
