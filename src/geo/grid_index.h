#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/bbox.h"
#include "geo/latlon.h"

namespace bikegraph::geo {

/// \brief A spatial hash grid over lat/lon points supporting radius queries
/// and nearest-neighbour lookups.
///
/// Points are bucketed into square cells of `cell_size_m` metres. A radius
/// query inspects only the cells overlapping the query disc, so queries are
/// O(points in neighbourhood) instead of O(n). This is the workhorse behind
/// the 50 m fixed-station absorption step, the 100 m geo-component
/// construction for HAC, Rule 2/4 proximity checks, and nearest-station
/// reassignment.
///
/// The index is append-only: build it with Add()/Build y querying is valid
/// after any Add (no explicit build step required).
class GridIndex {
 public:
  /// \param cell_size_m edge length of a grid cell in metres. Choose it near
  ///   the typical query radius; defaults to 100 m (the paper's cluster
  ///   boundary scale).
  /// \param reference_lat latitude at which the metres→degrees conversion for
  ///   cell widths is computed; defaults to Dublin.
  explicit GridIndex(double cell_size_m = 100.0, double reference_lat = 53.35);

  /// Inserts a point with an opaque caller id (typically an index into the
  /// caller's own array). Invalid coordinates are ignored and return false.
  bool Add(int64_t id, const LatLon& point);

  /// Number of points stored.
  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  /// Ids of all points within `radius_m` metres of `center` (Haversine),
  /// inclusive of the boundary. Order is unspecified but deterministic.
  std::vector<int64_t> WithinRadius(const LatLon& center, double radius_m) const;

  /// Number of points within `radius_m` of `center` (cheaper than
  /// materialising the id list).
  size_t CountWithinRadius(const LatLon& center, double radius_m) const;

  /// Id and distance of the nearest point to `query`, or {-1, inf} when the
  /// index is empty. `exclude_id` (if >= 0) is skipped — useful when the
  /// query point itself is in the index.
  struct Neighbor {
    int64_t id = -1;
    double distance_m = 0.0;
  };
  Neighbor Nearest(const LatLon& query, int64_t exclude_id = -1) const;

  /// The `k` nearest points (ascending distance). Fewer if the index holds
  /// fewer than `k` (excluding `exclude_id`).
  std::vector<Neighbor> KNearest(const LatLon& query, size_t k,
                                 int64_t exclude_id = -1) const;

  /// Stored coordinate for an id added earlier; invalid LatLon if unknown.
  LatLon PointOf(int64_t id) const;

 private:
  struct CellKey {
    int32_t row;
    int32_t col;
    bool operator==(const CellKey& o) const { return row == o.row && col == o.col; }
  };
  struct CellKeyHash {
    size_t operator()(const CellKey& k) const {
      return std::hash<int64_t>()((static_cast<int64_t>(k.row) << 32) ^
                                  static_cast<uint32_t>(k.col));
    }
  };

  CellKey KeyFor(const LatLon& p) const;

  double cell_lat_deg_;
  double cell_lon_deg_;
  std::unordered_map<CellKey, std::vector<int64_t>, CellKeyHash> cells_;
  std::unordered_map<int64_t, LatLon> points_;
};

}  // namespace bikegraph::geo
