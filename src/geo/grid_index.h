#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "geo/bbox.h"
#include "geo/haversine.h"
#include "geo/latlon.h"

#include "core/checked_cast.h"

namespace bikegraph::geo {

/// \brief A spatial hash grid over lat/lon points supporting radius queries
/// and nearest-neighbour lookups.
///
/// Points are bucketed into square cells of `cell_size_m` metres. A radius
/// query inspects only the cells overlapping the query disc, so queries are
/// O(points in neighbourhood) instead of O(n). This is the workhorse behind
/// the 50 m fixed-station absorption step, the 100 m geo-component
/// construction for HAC, Rule 2/4 proximity checks, and nearest-station
/// reassignment.
///
/// Storage is dense: coordinates, caller ids and precomputed cos(latitude)
/// live in flat arrays indexed by insertion slot, and grid cells hold slot
/// indices. Queries therefore never hash per distance check — the id hash
/// map is only consulted by Add() and PointOf().
///
/// The index is append-only: build it with Add(); querying is valid
/// after any Add (no explicit build step required). Cell buckets are
/// built lazily at the first query, so Add() itself never hashes — a
/// pure build phase costs only flat appends. Consequently the first
/// query after an Add mutates internal state: an unfrozen index is NOT
/// safe for concurrent readers. Call Freeze() before sharing across
/// threads (frozen queries are pure reads).
///
/// Build-once / query-many workloads should call Freeze() after the last
/// Add: the cells collapse into a sorted flat array (binary-searched per
/// lookup, cache-friendly slot runs) and the bucket hash map is dropped
/// entirely. A frozen index answers the same queries with identical
/// results; Add() after Freeze() transparently thaws back to the lazy
/// hash representation.
class GridIndex {
 public:
  /// \param cell_size_m edge length of a grid cell in metres. Choose it near
  ///   the typical query radius; defaults to 100 m (the paper's cluster
  ///   boundary scale).
  /// \param reference_lat latitude at which the metres→degrees conversion for
  ///   cell widths is computed; defaults to Dublin.
  explicit GridIndex(double cell_size_m = 100.0, double reference_lat = 53.35);

  /// Inserts a point with an opaque caller id (typically an index into the
  /// caller's own array). Invalid coordinates are ignored and return false.
  bool Add(int64_t id, const LatLon& point);

  /// Number of points stored.
  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  /// Calls `visit(id, distance_m)` for every point within `radius_m` metres
  /// of `center` (Haversine), inclusive of the boundary. Zero allocations.
  /// Visit order is deterministic but unspecified (cell-scan order, not
  /// sorted by id or distance).
  template <typename Visitor>
  void ForEachWithinRadius(const LatLon& center, double radius_m,
                           Visitor&& visit) const {
    if (radius_m < 0.0 || points_.empty()) return;
    const double cos_center = std::cos(DegToRad(center.lat));
    // Cheap rejection on the haversine kernel h: d <= r ⟺ h <= sin²(r/2R).
    // The bound is padded so rounding can never reject a boundary point;
    // survivors still take the exact d <= radius_m test, so results match
    // HaversineMeters bit for bit.
    const double sin_r = std::sin(radius_m / (2.0 * kEarthRadiusMeters));
    const double h_max =
        radius_m >= 3.14 * kEarthRadiusMeters ? 1.1
                                              : sin_r * sin_r * (1.0 + 1e-9);
    const double dlat = MetersToLatDegrees(radius_m);
    // Any point within radius_m differs in latitude by at most dlat
    // (great-circle distance >= meridian distance), so one compare rejects
    // the top/bottom bands of the scanned cells before any trig.
    const double dlat_pad = dlat * (1.0 + 1e-9);
    const double dlon = MetersToLonDegrees(radius_m, center.lat);
    const CellKey lo = KeyFor(LatLon(center.lat - dlat, center.lon - dlon));
    const CellKey hi = KeyFor(LatLon(center.lat + dlat, center.lon + dlon));
    for (int32_t row = lo.row; row <= hi.row; ++row) {
      for (int32_t col = lo.col; col <= hi.col; ++col) {
        for (int32_t slot : CellSlots(CellKey{row, col})) {
          const LatLon& p = points_[AsIndex(slot)];
          if (std::abs(p.lat - center.lat) > dlat_pad) continue;
          // Inlined haversine kernel of (p, center) — identical operations
          // to HaversineMetersWithCos, split so rejected candidates skip
          // the sqrt/asin tail.
          const double sin_dphi = std::sin(DegToRad(center.lat - p.lat) / 2.0);
          const double sin_dlambda =
              std::sin(DegToRad(center.lon - p.lon) / 2.0);
          const double h = sin_dphi * sin_dphi + cos_lat_[AsIndex(slot)] * cos_center *
                                                     sin_dlambda * sin_dlambda;
          if (h > h_max) continue;
          const double d = 2.0 * kEarthRadiusMeters *
                           std::asin(std::min(1.0, std::sqrt(h)));
          if (d <= radius_m) visit(ids_[AsIndex(slot)], d);
        }
      }
    }
  }

  /// Calls `visit(id_a, id_b, distance_m)` once for every unordered pair of
  /// distinct stored points within `radius_m` of each other (boundary
  /// inclusive). Each pair is enumerated exactly once via a forward
  /// half-neighbourhood sweep over the cells, so the whole sweep costs half
  /// of n per-point radius queries and allocates nothing. Pair order is
  /// deterministic but unspecified.
  template <typename Visitor>
  void ForEachPairWithinRadius(double radius_m, Visitor&& visit) const {
    if (radius_m < 0.0 || points_.empty()) return;
    const double sin_r = std::sin(radius_m / (2.0 * kEarthRadiusMeters));
    const double h_max =
        radius_m >= 3.14 * kEarthRadiusMeters ? 1.1
                                              : sin_r * sin_r * (1.0 + 1e-9);
    const double dlat_pad = MetersToLatDegrees(radius_m) * (1.0 + 1e-9);
    // Cell spans that cover the radius in each axis; +1 guards the floor
    // rounding at the query box edges (over-covering only costs a rejected
    // candidate, never a missed pair).
    const int32_t row_span =
        static_cast<int32_t>(dlat_pad / cell_lat_deg_) + 1;
    auto pair_kernel = [&](int32_t sa, int32_t sb) {
      const LatLon& pa = points_[AsIndex(sa)];
      const LatLon& pb = points_[AsIndex(sb)];
      if (std::abs(pa.lat - pb.lat) > dlat_pad) return;
      const double sin_dphi = std::sin(DegToRad(pb.lat - pa.lat) / 2.0);
      const double sin_dlambda = std::sin(DegToRad(pb.lon - pa.lon) / 2.0);
      const double h = sin_dphi * sin_dphi + cos_lat_[AsIndex(sa)] * cos_lat_[AsIndex(sb)] *
                                                 sin_dlambda * sin_dlambda;
      if (h > h_max) return;
      const double d =
          2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(h)));
      if (d <= radius_m) visit(ids_[AsIndex(sa)], ids_[AsIndex(sb)], d);
    };
    ForEachCell([&](const CellKey& key, std::span<const int32_t> slots) {
      // Intra-cell pairs.
      for (size_t i = 0; i < slots.size(); ++i) {
        for (size_t j = i + 1; j < slots.size(); ++j) {
          pair_kernel(slots[i], slots[j]);
        }
      }
      // Inter-cell pairs against the forward half-neighbourhood, so each
      // cell pair is visited from exactly one side. The longitude span is
      // evaluated at the most poleward latitude any partner of a point in
      // this row can occupy — the row's far cell EDGE plus the radius —
      // because longitude cells narrow toward the poles.
      const double row_edge_lat =
          std::max(std::abs(static_cast<double>(key.row)) ,
                   std::abs(static_cast<double>(key.row) + 1.0)) *
          cell_lat_deg_;
      const double dlon = MetersToLonDegrees(
          radius_m, std::min(89.9, row_edge_lat + dlat_pad));
      const int32_t col_span = static_cast<int32_t>(dlon / cell_lon_deg_) + 1;
      for (int32_t dr = 0; dr <= row_span; ++dr) {
        const int32_t dc_begin = dr == 0 ? 1 : -col_span;
        for (int32_t dc = dc_begin; dc <= col_span; ++dc) {
          const std::span<const int32_t> other =
              CellSlots(CellKey{key.row + dr, key.col + dc});
          if (other.empty()) continue;
          for (int32_t sa : slots) {
            for (int32_t sb : other) pair_kernel(sa, sb);
          }
        }
      }
    });
  }

  /// Ids of all points within `radius_m` metres of `center` (Haversine),
  /// inclusive of the boundary, sorted ascending. Prefer
  /// ForEachWithinRadius in hot loops — this materialises a vector.
  std::vector<int64_t> WithinRadius(const LatLon& center, double radius_m) const;

  /// Number of points within `radius_m` of `center` (cheaper than
  /// materialising the id list).
  size_t CountWithinRadius(const LatLon& center, double radius_m) const;

  /// Id and distance of the nearest point to `query`, or {-1, inf} when the
  /// index is empty. `exclude_id` (if >= 0) is skipped — useful when the
  /// query point itself is in the index.
  struct Neighbor {
    int64_t id = -1;
    double distance_m = 0.0;
  };
  Neighbor Nearest(const LatLon& query, int64_t exclude_id = -1) const;

  /// The `k` nearest points (ascending distance, ties by id). Fewer if the
  /// index holds fewer than `k` (excluding `exclude_id`). Expanding-ring
  /// search: only the cells near the query are inspected.
  std::vector<Neighbor> KNearest(const LatLon& query, size_t k,
                                 int64_t exclude_id = -1) const;

  /// Stored coordinate for an id added earlier; invalid LatLon if unknown.
  LatLon PointOf(int64_t id) const;

  /// Compacts the cell buckets into a sorted flat array (build-once /
  /// query-many mode): cell lookup becomes a binary search over sorted
  /// keys with contiguous slot runs, and the bucket hash map is freed.
  /// Query results are identical to the unfrozen index (pair/radius visit
  /// order may differ — it was always unspecified). Idempotent; O(n log n).
  void Freeze();

  /// True while in frozen (sorted-cell) mode; cleared by Add().
  bool frozen() const { return frozen_; }

 private:
  struct CellKey {
    int32_t row;
    int32_t col;
    bool operator==(const CellKey& o) const { return row == o.row && col == o.col; }
    bool operator<(const CellKey& o) const {
      return row != o.row ? row < o.row : col < o.col;
    }
  };
  struct CellKeyHash {
    size_t operator()(const CellKey& k) const {
      return std::hash<int64_t>()((static_cast<int64_t>(k.row) << 32) ^
                                  static_cast<uint32_t>(k.col));
    }
  };

  CellKey KeyFor(const LatLon& p) const;

  /// Smallest metric extent of a grid cell at `query_lat_rad`'s cosine: the
  /// safe per-ring distance bound for expanding-ring searches.
  double MinCellExtentMeters(double cos_query_lat) const;

  /// Conservative per-ring bound: the smallest cell extent anywhere within
  /// reach of ring `ring`+1 around latitude `query_lat`.
  double RingCellExtentMeters(double query_lat, int32_t ring) const;

  /// Inserts any not-yet-bucketed slots into the hash cells (the lazy
  /// build step; no-op when frozen or already caught up).
  void EnsureHashed() const;

  /// Slots of one cell — binary search over the frozen arrays, or a hash
  /// lookup (after the lazy build) otherwise. Empty span for empty cells.
  std::span<const int32_t> CellSlots(const CellKey& key) const {
    if (frozen_) {
      auto it = std::lower_bound(frozen_keys_.begin(), frozen_keys_.end(),
                                 key);
      if (it == frozen_keys_.end() || !(*it == key)) return {};
      const size_t c = static_cast<size_t>(it - frozen_keys_.begin());
      return {frozen_slots_.data() + frozen_offsets_[c],
              frozen_offsets_[c + 1] - frozen_offsets_[c]};
    }
    EnsureHashed();
    auto it = cells_.find(key);
    if (it == cells_.end()) return {};
    return {it->second.data(), it->second.size()};
  }

  /// Visits every non-empty cell as (key, slots). Frozen: sorted key
  /// order; unfrozen: hash order (callers must not rely on either).
  template <typename Fn>
  void ForEachCell(Fn&& fn) const {
    if (frozen_) {
      for (size_t c = 0; c < frozen_keys_.size(); ++c) {
        fn(frozen_keys_[c],
           std::span<const int32_t>(frozen_slots_.data() + frozen_offsets_[c],
                                    frozen_offsets_[c + 1] -
                                        frozen_offsets_[c]));
      }
      return;
    }
    EnsureHashed();
    // lint: unordered-iter-ok: unordered enumeration is the lazy
    // path's documented contract; ordered consumers must Freeze()
    // first and take the sorted frozen branch above.
    for (const auto& [key, slots] : cells_) {
      fn(key, std::span<const int32_t>(slots.data(), slots.size()));
    }
  }

  double cell_lat_deg_;
  double cell_lon_deg_;
  // Lazy bucket map: slots [0, hashed_upto_) are bucketed; Add() only
  // appends to the flat arrays, and EnsureHashed() catches up on the
  // first query. Dropped entirely while frozen.
  mutable std::unordered_map<CellKey, std::vector<int32_t>, CellKeyHash>
      cells_;
  mutable size_t hashed_upto_ = 0;
  // Frozen (sorted-cell) representation: unique keys sorted by (row,
  // col), with each cell's slots contiguous in frozen_slots_.
  bool frozen_ = false;
  std::vector<CellKey> frozen_keys_;
  std::vector<size_t> frozen_offsets_;
  std::vector<int32_t> frozen_slots_;
  // Dense per-slot storage (slot = insertion order).
  std::vector<LatLon> points_;
  std::vector<int64_t> ids_;
  std::vector<double> cos_lat_;
  std::vector<CellKey> slot_keys_;
  std::unordered_map<int64_t, int32_t> id_to_slot_;
};

}  // namespace bikegraph::geo
