#pragma once

#include <vector>

#include "geo/bbox.h"
#include "geo/latlon.h"

namespace bikegraph::geo {

/// \brief A simple (non-self-intersecting) polygon on the lat/lon plane.
///
/// Used to model the Dublin study-area boundary and water bodies (Dublin
/// Bay, the Liffey estuary) for the cleaning rules "locations outside
/// Dublin" and "locations that are not on land". At city scale the planar
/// even-odd test on raw degrees is accurate to centimetres, which is far
/// below the 50 m decision granularity of the pipeline.
class Polygon {
 public:
  Polygon() = default;

  /// The ring is implicitly closed; passing a first==last vertex is allowed.
  explicit Polygon(std::vector<LatLon> ring);

  /// Number of distinct vertices.
  size_t size() const { return ring_.size(); }
  bool empty() const { return ring_.size() < 3; }
  const std::vector<LatLon>& ring() const { return ring_; }

  /// Even-odd (ray casting) point-in-polygon test. Points exactly on an edge
  /// may land on either side; callers at metre precision don't care.
  bool Contains(const LatLon& p) const;

  /// Tight bounding box of the ring.
  const BBox& bounds() const { return bounds_; }

  /// Signed planar area in squared degrees (positive if counter-clockwise).
  /// Only the sign is meaningful to callers.
  double SignedAreaDeg2() const;

 private:
  std::vector<LatLon> ring_;
  BBox bounds_;
};

/// \brief A region made of an outer boundary minus a set of holes
/// (e.g. "Dublin land" = boundary polygon minus water polygons).
class Region {
 public:
  Region() = default;
  Region(Polygon boundary, std::vector<Polygon> holes)
      : boundary_(std::move(boundary)), holes_(std::move(holes)) {}

  /// True iff `p` is inside the boundary and outside every hole.
  bool Contains(const LatLon& p) const;

  const Polygon& boundary() const { return boundary_; }
  const std::vector<Polygon>& holes() const { return holes_; }

 private:
  Polygon boundary_;
  std::vector<Polygon> holes_;
};

}  // namespace bikegraph::geo
