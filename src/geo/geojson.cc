#include "geo/geojson.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace bikegraph::geo {
namespace {

std::string CoordPair(const LatLon& p) {
  char buf[64];
  // GeoJSON order is [lon, lat].
  std::snprintf(buf, sizeof(buf), "[%.6f,%.6f]", p.lon, p.lat);
  return buf;
}

bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

std::string PropsJson(const GeoJsonWriter::Properties& props) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [key, value] : props) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(key) << "\":";
    if (LooksNumeric(value)) {
      os << value;
    } else {
      os << "\"" << JsonEscape(value) << "\"";
    }
  }
  os << "}";
  return os.str();
}

std::string Feature(const std::string& geometry,
                    const GeoJsonWriter::Properties& props) {
  std::ostringstream os;
  os << "{\"type\":\"Feature\",\"geometry\":" << geometry
     << ",\"properties\":" << PropsJson(props) << "}";
  return os.str();
}

}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void GeoJsonWriter::AddPoint(const LatLon& p, const Properties& props) {
  features_.push_back(Feature(
      "{\"type\":\"Point\",\"coordinates\":" + CoordPair(p) + "}", props));
}

void GeoJsonWriter::AddLine(const LatLon& from, const LatLon& to,
                            const Properties& props) {
  AddLineString({from, to}, props);
}

void GeoJsonWriter::AddLineString(const std::vector<LatLon>& points,
                                  const Properties& props) {
  std::ostringstream geom;
  geom << "{\"type\":\"LineString\",\"coordinates\":[";
  for (size_t i = 0; i < points.size(); ++i) {
    if (i > 0) geom << ",";
    geom << CoordPair(points[i]);
  }
  geom << "]}";
  features_.push_back(Feature(geom.str(), props));
}

void GeoJsonWriter::AddPolygon(const Polygon& polygon,
                               const Properties& props) {
  std::ostringstream geom;
  geom << "{\"type\":\"Polygon\",\"coordinates\":[[";
  const auto& ring = polygon.ring();
  for (size_t i = 0; i < ring.size(); ++i) {
    if (i > 0) geom << ",";
    geom << CoordPair(ring[i]);
  }
  if (!ring.empty()) geom << "," << CoordPair(ring.front());  // close ring
  geom << "]]}";
  features_.push_back(Feature(geom.str(), props));
}

std::string GeoJsonWriter::ToString() const {
  std::ostringstream os;
  os << "{\"type\":\"FeatureCollection\",\"features\":[";
  for (size_t i = 0; i < features_.size(); ++i) {
    if (i > 0) os << ",";
    os << "\n" << features_[i];
  }
  os << "\n]}\n";
  return os.str();
}

Status GeoJsonWriter::WriteToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << ToString();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace bikegraph::geo
