#include "geo/bbox.h"

#include <algorithm>

#include "geo/haversine.h"

namespace bikegraph::geo {

BBox::BBox() : min_(90.0, 180.0), max_(-90.0, -180.0) {}

BBox::BBox(const LatLon& min_corner, const LatLon& max_corner)
    : min_(min_corner), max_(max_corner) {}

BBox BBox::Around(const std::vector<LatLon>& points) {
  BBox box;
  for (const auto& p : points) box.Extend(p);
  return box;
}

bool BBox::IsEmpty() const { return min_.lat > max_.lat || min_.lon > max_.lon; }

void BBox::Extend(const LatLon& p) {
  min_.lat = std::min(min_.lat, p.lat);
  min_.lon = std::min(min_.lon, p.lon);
  max_.lat = std::max(max_.lat, p.lat);
  max_.lon = std::max(max_.lon, p.lon);
}

bool BBox::Contains(const LatLon& p) const {
  return !IsEmpty() && p.lat >= min_.lat && p.lat <= max_.lat &&
         p.lon >= min_.lon && p.lon <= max_.lon;
}

BBox BBox::ExpandedBy(double meters) const {
  if (IsEmpty()) return *this;
  const double dlat = MetersToLatDegrees(meters);
  const double ref_lat = std::max(std::abs(min_.lat), std::abs(max_.lat));
  const double dlon = MetersToLonDegrees(meters, ref_lat);
  return BBox(LatLon(min_.lat - dlat, min_.lon - dlon),
              LatLon(max_.lat + dlat, max_.lon + dlon));
}

LatLon BBox::Center() const {
  return LatLon((min_.lat + max_.lat) / 2.0, (min_.lon + max_.lon) / 2.0);
}

double BBox::HeightMeters() const {
  if (IsEmpty()) return 0.0;
  double mid_lon = (min_.lon + max_.lon) / 2.0;
  return HaversineMeters(LatLon(min_.lat, mid_lon), LatLon(max_.lat, mid_lon));
}

double BBox::WidthMeters() const {
  if (IsEmpty()) return 0.0;
  double mid_lat = (min_.lat + max_.lat) / 2.0;
  return HaversineMeters(LatLon(mid_lat, min_.lon), LatLon(mid_lat, max_.lon));
}

}  // namespace bikegraph::geo
