#include "geo/polygon.h"

namespace bikegraph::geo {

Polygon::Polygon(std::vector<LatLon> ring) : ring_(std::move(ring)) {
  if (ring_.size() >= 2 && ring_.front() == ring_.back()) {
    ring_.pop_back();
  }
  for (const auto& p : ring_) bounds_.Extend(p);
}

bool Polygon::Contains(const LatLon& p) const {
  if (empty() || !bounds_.Contains(p)) return false;
  bool inside = false;
  const size_t n = ring_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const LatLon& a = ring_[i];
    const LatLon& b = ring_[j];
    const bool crosses = (a.lat > p.lat) != (b.lat > p.lat);
    if (!crosses) continue;
    const double x_at =
        (b.lon - a.lon) * (p.lat - a.lat) / (b.lat - a.lat) + a.lon;
    if (p.lon < x_at) inside = !inside;
  }
  return inside;
}

double Polygon::SignedAreaDeg2() const {
  if (empty()) return 0.0;
  double acc = 0.0;
  const size_t n = ring_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    acc += (ring_[j].lon * ring_[i].lat) - (ring_[i].lon * ring_[j].lat);
  }
  return acc / 2.0;
}

bool Region::Contains(const LatLon& p) const {
  if (!boundary_.Contains(p)) return false;
  for (const auto& hole : holes_) {
    if (hole.Contains(p)) return false;
  }
  return true;
}

}  // namespace bikegraph::geo
