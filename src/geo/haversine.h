#pragma once

#include <algorithm>
#include <cmath>

#include "geo/latlon.h"

namespace bikegraph::geo {

/// \brief Great-circle distance between two points in metres, using the
/// Haversine formula (paper eq. 1).
///
/// Haversine is numerically stable at the small distances that dominate
/// bike-share analysis (tens of metres), unlike the spherical law of
/// cosines — which is why the paper selects it.
double HaversineMeters(const LatLon& a, const LatLon& b);

/// \brief Haversine with the two cos(latitude) factors supplied by the
/// caller. Bit-identical to HaversineMeters when `cos_lat_a/b` equal
/// `std::cos(DegToRad(a.lat))` / `std::cos(DegToRad(b.lat))` — hot loops
/// (distance matrices, grid queries) precompute them once per point
/// instead of twice per pair.
inline double HaversineMetersWithCos(const LatLon& a, const LatLon& b,
                                     double cos_lat_a, double cos_lat_b) {
  const double dphi = DegToRad(b.lat - a.lat);
  const double dlambda = DegToRad(b.lon - a.lon);
  const double sin_dphi = std::sin(dphi / 2.0);
  const double sin_dlambda = std::sin(dlambda / 2.0);
  const double h = sin_dphi * sin_dphi +
                   cos_lat_a * cos_lat_b * sin_dlambda * sin_dlambda;
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(h)));
}

/// \brief Fast flat-Earth (equirectangular) approximation of the distance in
/// metres. Accurate to well under 0.1% at intra-city scales; used as the
/// cheap comparator in the geo ablation benchmark and inside hot loops where
/// a conservative bound suffices.
double EquirectangularMeters(const LatLon& a, const LatLon& b);

/// \brief Initial great-circle bearing from `a` to `b` in degrees [0, 360).
double BearingDegrees(const LatLon& a, const LatLon& b);

/// \brief Destination point `distance_m` metres from `origin` along
/// `bearing_deg` (great-circle).
LatLon Offset(const LatLon& origin, double distance_m, double bearing_deg);

/// \brief Degrees of latitude spanned by `meters` (constant everywhere).
double MetersToLatDegrees(double meters);

/// \brief Degrees of longitude spanned by `meters` at latitude `at_lat_deg`.
double MetersToLonDegrees(double meters, double at_lat_deg);

}  // namespace bikegraph::geo
