#pragma once

#include "geo/latlon.h"

namespace bikegraph::geo {

/// \brief Great-circle distance between two points in metres, using the
/// Haversine formula (paper eq. 1).
///
/// Haversine is numerically stable at the small distances that dominate
/// bike-share analysis (tens of metres), unlike the spherical law of
/// cosines — which is why the paper selects it.
double HaversineMeters(const LatLon& a, const LatLon& b);

/// \brief Fast flat-Earth (equirectangular) approximation of the distance in
/// metres. Accurate to well under 0.1% at intra-city scales; used as the
/// cheap comparator in the geo ablation benchmark and inside hot loops where
/// a conservative bound suffices.
double EquirectangularMeters(const LatLon& a, const LatLon& b);

/// \brief Initial great-circle bearing from `a` to `b` in degrees [0, 360).
double BearingDegrees(const LatLon& a, const LatLon& b);

/// \brief Destination point `distance_m` metres from `origin` along
/// `bearing_deg` (great-circle).
LatLon Offset(const LatLon& origin, double distance_m, double bearing_deg);

/// \brief Degrees of latitude spanned by `meters` (constant everywhere).
double MetersToLatDegrees(double meters);

/// \brief Degrees of longitude spanned by `meters` at latitude `at_lat_deg`.
double MetersToLonDegrees(double meters, double at_lat_deg);

}  // namespace bikegraph::geo
