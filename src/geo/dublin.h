#pragma once

#include <string>
#include <vector>

#include "geo/polygon.h"

namespace bikegraph::geo {

/// \brief Geographic fixtures for the Dublin study area.
///
/// The paper's dataset is confined to Dublin city: the cleaning pipeline
/// drops locations outside Dublin and locations "not on land" (GPS fixes in
/// Dublin Bay or the Liffey). These fixtures provide a simplified but
/// self-consistent model of that geography: a study-area boundary polygon
/// and water polygons (Dublin Bay, the River Liffey corridor) subtracted as
/// holes. Coordinates approximate the real city; the pipeline only relies on
/// topological consistency (stations on land, bay to the east, river through
/// the centre), not on cartographic fidelity.

/// \brief The study-area boundary (an octagon around Dublin city and its
/// inner suburbs, roughly 20 km across).
Polygon DublinBoundary();

/// \brief Dublin Bay — the water body east of the city. Any GPS fix inside
/// it fails the "on land" cleaning rule.
Polygon DublinBay();

/// \brief The River Liffey corridor through the city centre (a thin
/// east-west strip ~90 m wide).
Polygon RiverLiffey();

/// \brief The full land region: boundary minus bay minus river.
Region DublinLand();

/// \brief A demand hotspot used by the synthetic trip generator: a named
/// centre of gravity with an attraction weight and a spatial spread.
///
/// `kind` drives the temporal mixture of trips touching the hotspot:
/// commute hotspots peak on weekday rush hours, leisure hotspots peak on
/// weekends and middays (the patterns the paper observes around Phoenix
/// Park and Dún Laoghaire), and mixed hotspots blend both.
struct Hotspot {
  std::string name;
  LatLon center;
  double weight;     ///< relative share of trip endpoints drawn to it
  double spread_m;   ///< Gaussian spatial spread of endpoints around it
  enum class Kind { kCommute, kLeisure, kMixed } kind = Kind::kMixed;
};

/// \brief The canonical hotspot set: city-centre commute cores, Phoenix
/// Park and Dún Laoghaire leisure areas, and suburban residential anchors.
std::vector<Hotspot> DublinHotspots();

/// \brief A point well outside the study area (Co. Wicklow) for
/// dirty-record injection.
LatLon OutsideDublinPoint();

/// \brief A point inside Dublin Bay (water) for dirty-record injection.
LatLon InBayPoint();

}  // namespace bikegraph::geo
