#pragma once

#include <vector>

#include "geo/latlon.h"

namespace bikegraph::geo {

/// \brief An axis-aligned latitude/longitude bounding box.
///
/// Used for coarse spatial filtering (the Dublin study-area gate in the
/// cleaning pipeline) and as the extent of the GridIndex. Boxes never wrap
/// the antimeridian — Dublin is comfortably far from it.
class BBox {
 public:
  /// Constructs an empty (inverted) box; extend with Extend().
  BBox();
  BBox(const LatLon& min_corner, const LatLon& max_corner);

  /// Builds the tight box around `points` (empty input yields empty box).
  static BBox Around(const std::vector<LatLon>& points);

  bool IsEmpty() const;

  /// Grows the box to include `p`.
  void Extend(const LatLon& p);

  /// True iff `p` lies inside or on the boundary.
  bool Contains(const LatLon& p) const;

  /// Returns a copy expanded by `meters` on all sides (latitude-correct).
  BBox ExpandedBy(double meters) const;

  const LatLon& min_corner() const { return min_; }
  const LatLon& max_corner() const { return max_; }

  /// Centre of the box.
  LatLon Center() const;

  /// Height/width in metres (Haversine along the mid-lines).
  double HeightMeters() const;
  double WidthMeters() const;

 private:
  LatLon min_;
  LatLon max_;
};

}  // namespace bikegraph::geo
