#include "geo/latlon.h"

#include <cstdio>

namespace bikegraph::geo {

std::string LatLon::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%.6f, %.6f)", lat, lon);
  return buf;
}

}  // namespace bikegraph::geo
