#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/status.h"
#include "geo/latlon.h"
#include "geo/polygon.h"

namespace bikegraph::geo {

/// \brief Incremental writer for a GeoJSON FeatureCollection.
///
/// Produces the map artefacts corresponding to the paper's Figures 1–4
/// and 6 (candidate graph, selected graph, community maps). Feature
/// properties are flat string→(string|number) maps; values that parse as
/// numbers are emitted unquoted so styling tools can scale by them.
///
/// \code
///   GeoJsonWriter w;
///   w.AddPoint(station.pos, {{"name", station.name}, {"degree", "42"}});
///   w.AddLine(a, b, {{"weight", "17"}});
///   BIKEGRAPH_RETURN_NOT_OK(w.WriteToFile("selected_graph.geojson"));
/// \endcode
class GeoJsonWriter {
 public:
  using Properties = std::map<std::string, std::string>;

  /// Adds a Point feature.
  void AddPoint(const LatLon& p, const Properties& props = {});

  /// Adds a two-vertex LineString feature (an edge on the map).
  void AddLine(const LatLon& from, const LatLon& to,
               const Properties& props = {});

  /// Adds a multi-vertex LineString.
  void AddLineString(const std::vector<LatLon>& points,
                     const Properties& props = {});

  /// Adds a Polygon feature from a ring.
  void AddPolygon(const Polygon& polygon, const Properties& props = {});

  /// Number of features added so far.
  size_t feature_count() const { return features_.size(); }

  /// Serialises the FeatureCollection to a JSON string.
  std::string ToString() const;

  /// Writes the FeatureCollection to `path`.
  Status WriteToFile(const std::string& path) const;

 private:
  std::vector<std::string> features_;
};

/// \brief Escapes a string for embedding in JSON (quotes not included).
std::string JsonEscape(const std::string& text);

}  // namespace bikegraph::geo
