#include "geo/haversine.h"

#include <cmath>

namespace bikegraph::geo {

double HaversineMeters(const LatLon& a, const LatLon& b) {
  const double phi1 = DegToRad(a.lat);
  const double phi2 = DegToRad(b.lat);
  const double dphi = DegToRad(b.lat - a.lat);
  const double dlambda = DegToRad(b.lon - a.lon);
  const double sin_dphi = std::sin(dphi / 2.0);
  const double sin_dlambda = std::sin(dlambda / 2.0);
  const double h =
      sin_dphi * sin_dphi + std::cos(phi1) * std::cos(phi2) * sin_dlambda * sin_dlambda;
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(h)));
}

double EquirectangularMeters(const LatLon& a, const LatLon& b) {
  const double mean_lat = DegToRad((a.lat + b.lat) / 2.0);
  const double x = DegToRad(b.lon - a.lon) * std::cos(mean_lat);
  const double y = DegToRad(b.lat - a.lat);
  return kEarthRadiusMeters * std::sqrt(x * x + y * y);
}

double BearingDegrees(const LatLon& a, const LatLon& b) {
  const double phi1 = DegToRad(a.lat);
  const double phi2 = DegToRad(b.lat);
  const double dlambda = DegToRad(b.lon - a.lon);
  const double y = std::sin(dlambda) * std::cos(phi2);
  const double x = std::cos(phi1) * std::sin(phi2) -
                   std::sin(phi1) * std::cos(phi2) * std::cos(dlambda);
  double theta = RadToDeg(std::atan2(y, x));
  if (theta < 0.0) theta += 360.0;
  return theta;
}

LatLon Offset(const LatLon& origin, double distance_m, double bearing_deg) {
  const double delta = distance_m / kEarthRadiusMeters;
  const double theta = DegToRad(bearing_deg);
  const double phi1 = DegToRad(origin.lat);
  const double lambda1 = DegToRad(origin.lon);
  const double sin_phi2 = std::sin(phi1) * std::cos(delta) +
                          std::cos(phi1) * std::sin(delta) * std::cos(theta);
  const double phi2 = std::asin(std::max(-1.0, std::min(1.0, sin_phi2)));
  const double y = std::sin(theta) * std::sin(delta) * std::cos(phi1);
  const double x = std::cos(delta) - std::sin(phi1) * sin_phi2;
  const double lambda2 = lambda1 + std::atan2(y, x);
  return LatLon(RadToDeg(phi2), RadToDeg(lambda2));
}

double MetersToLatDegrees(double meters) {
  return RadToDeg(meters / kEarthRadiusMeters);
}

double MetersToLonDegrees(double meters, double at_lat_deg) {
  const double scale = std::cos(DegToRad(at_lat_deg));
  return RadToDeg(meters / (kEarthRadiusMeters * (scale <= 1e-9 ? 1e-9 : scale)));
}

}  // namespace bikegraph::geo
