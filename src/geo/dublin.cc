#include "geo/dublin.h"

namespace bikegraph::geo {

Polygon DublinBoundary() {
  // Octagon around Dublin city & inner suburbs (clockwise from NW).
  return Polygon({
      {53.425, -6.400},  // NW (near Blanchardstown)
      {53.430, -6.250},  // N (near Dublin Airport approach)
      {53.410, -6.100},  // NE (Howth side)
      {53.350, -6.040},  // E (bay mouth)
      {53.270, -6.050},  // SE (Dalkey side)
      {53.245, -6.180},  // S (Dundrum side)
      {53.260, -6.350},  // SW (Tallaght side)
      {53.340, -6.430},  // W (Lucan side)
  });
}

Polygon DublinBay() {
  // Water east of the coastline; the coast runs from the Howth side down
  // through the port mouth and around to Dún Laoghaire.
  return Polygon({
      {53.405, -6.055},  // NE open water
      {53.390, -6.120},  // north shore (Sutton strand)
      {53.365, -6.165},  // Clontarf front
      {53.348, -6.185},  // port mouth, north wall
      {53.332, -6.205},  // Sandymount strand
      {53.315, -6.180},  // Booterstown front
      {53.300, -6.150},  // Blackrock front
      {53.291, -6.120},  // Dún Laoghaire harbour mouth
      {53.278, -6.080},  // Sandycove front
      {53.262, -6.055},  // SE open water
  });
}

Polygon RiverLiffey() {
  // A thin strip through the city centre: ~90 m wide, from Heuston (-6.295)
  // to the port (-6.19).
  return Polygon({
      {53.3472, -6.295},
      {53.3476, -6.240},
      {53.3474, -6.190},
      {53.3466, -6.190},
      {53.3468, -6.240},
      {53.3464, -6.295},
  });
}

Region DublinLand() {
  return Region(DublinBoundary(), {DublinBay(), RiverLiffey()});
}

std::vector<Hotspot> DublinHotspots() {
  using Kind = Hotspot::Kind;
  return {
      // City-centre commute cores. These dominate trip volume (the paper:
      // ~50% of trips start in the central green community).
      {"City Centre North (O'Connell St)", {53.3508, -6.2603}, 16.0, 450.0, Kind::kCommute},
      {"City Centre South (Grafton St)", {53.3414, -6.2601}, 15.0, 450.0, Kind::kCommute},
      {"IFSC / Docklands", {53.3492, -6.2415}, 10.0, 400.0, Kind::kCommute},
      {"Grand Canal Dock", {53.3392, -6.2376}, 8.0, 350.0, Kind::kCommute},
      {"Heuston Station", {53.3464, -6.2923}, 6.0, 300.0, Kind::kCommute},
      {"Connolly Station", {53.3531, -6.2466}, 5.0, 300.0, Kind::kCommute},
      {"St Stephen's Green", {53.3382, -6.2591}, 6.0, 350.0, Kind::kMixed},
      {"Smithfield", {53.3489, -6.2785}, 4.0, 300.0, Kind::kMixed},
      {"Trinity College", {53.3438, -6.2546}, 5.0, 250.0, Kind::kCommute},
      {"DCU Glasnevin", {53.3857, -6.2567}, 3.0, 350.0, Kind::kCommute},
      // Leisure anchors — weekend/midday peaks (paper: communities 1 & 7 in
      // GDay; 1 & 7 in GHour).
      {"Phoenix Park (Parkgate)", {53.3522, -6.3095}, 5.0, 500.0, Kind::kLeisure},
      {"Phoenix Park (North Rd)", {53.3638, -6.3297}, 3.0, 550.0, Kind::kLeisure},
      {"Dun Laoghaire Pier", {53.2949, -6.1339}, 4.0, 400.0, Kind::kLeisure},
      {"Blackrock Park", {53.3022, -6.1778}, 3.0, 350.0, Kind::kLeisure},
      {"Sandymount Strand", {53.3337, -6.2210}, 3.0, 400.0, Kind::kLeisure},
      {"Herbert Park", {53.3270, -6.2336}, 2.0, 300.0, Kind::kLeisure},
      // Residential / suburban anchors — commute origins.
      {"Drumcondra", {53.3710, -6.2536}, 3.0, 400.0, Kind::kCommute},
      {"Phibsborough", {53.3606, -6.2734}, 3.0, 350.0, Kind::kCommute},
      {"Rathmines", {53.3213, -6.2654}, 4.0, 400.0, Kind::kCommute},
      {"Ranelagh", {53.3262, -6.2564}, 3.0, 350.0, Kind::kCommute},
      {"Rathgar", {53.3133, -6.2756}, 2.0, 350.0, Kind::kCommute},
      {"Donnybrook", {53.3195, -6.2331}, 2.0, 350.0, Kind::kCommute},
      {"Ballsbridge", {53.3288, -6.2291}, 3.0, 300.0, Kind::kCommute},
      {"Inchicore", {53.3364, -6.3111}, 2.0, 400.0, Kind::kCommute},
      {"Kilmainham", {53.3418, -6.3076}, 2.0, 350.0, Kind::kMixed},
      {"Stoneybatter", {53.3555, -6.2893}, 2.5, 350.0, Kind::kCommute},
      {"Cabra", {53.3652, -6.2963}, 2.0, 400.0, Kind::kCommute},
      {"Clontarf", {53.3635, -6.2070}, 2.5, 450.0, Kind::kMixed},
      {"Fairview", {53.3582, -6.2329}, 2.0, 350.0, Kind::kCommute},
      {"East Wall", {53.3543, -6.2266}, 1.5, 300.0, Kind::kCommute},
      {"Ringsend", {53.3410, -6.2266}, 2.5, 300.0, Kind::kMixed},
      {"Irishtown", {53.3373, -6.2236}, 1.5, 300.0, Kind::kMixed},
      {"Harold's Cross", {53.3229, -6.2838}, 2.0, 350.0, Kind::kCommute},
      {"Crumlin", {53.3225, -6.3091}, 1.5, 450.0, Kind::kCommute},
      {"Dolphin's Barn", {53.3318, -6.2906}, 1.5, 350.0, Kind::kCommute},
      {"The Liberties", {53.3404, -6.2804}, 3.0, 350.0, Kind::kMixed},
      {"Christchurch", {53.3434, -6.2700}, 3.0, 250.0, Kind::kMixed},
      {"Booterstown", {53.3086, -6.1957}, 1.5, 350.0, Kind::kCommute},
      {"Monkstown", {53.2937, -6.1528}, 1.5, 350.0, Kind::kLeisure},
      {"Glasthule", {53.2890, -6.1220}, 1.2, 300.0, Kind::kLeisure},
      {"Donnycarney", {53.3747, -6.2206}, 1.2, 400.0, Kind::kCommute},
      {"Santry", {53.3951, -6.2430}, 1.0, 450.0, Kind::kCommute},
      {"Walkinstown", {53.3156, -6.3287}, 1.0, 450.0, Kind::kCommute},
      {"Terenure", {53.3098, -6.2857}, 1.5, 400.0, Kind::kCommute},
      {"Milltown", {53.3098, -6.2494}, 1.2, 350.0, Kind::kCommute},
      {"Dundrum", {53.2920, -6.2459}, 1.5, 450.0, Kind::kMixed},
      {"Stillorgan", {53.2887, -6.1994}, 1.2, 450.0, Kind::kCommute},
      {"Finglas", {53.3903, -6.2977}, 1.0, 500.0, Kind::kCommute},
      {"Coolock", {53.3898, -6.1969}, 0.8, 500.0, Kind::kCommute},
      {"Raheny", {53.3810, -6.1747}, 0.8, 450.0, Kind::kMixed},
  };
}

LatLon OutsideDublinPoint() { return {53.145, -6.070}; }  // Co. Wicklow hills

LatLon InBayPoint() { return {53.330, -6.130}; }  // middle of Dublin Bay

}  // namespace bikegraph::geo
