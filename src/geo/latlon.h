#pragma once

#include <cmath>
#include <string>

namespace bikegraph::geo {

/// \brief A WGS-84 geographic coordinate in decimal degrees.
///
/// Latitude is positive north, longitude positive east. Dublin sits around
/// (53.35, -6.26). The struct is a plain value type; distance computations
/// live in haversine.h.
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;

  LatLon() = default;
  LatLon(double lat_deg, double lon_deg) : lat(lat_deg), lon(lon_deg) {}

  /// True iff both coordinates are finite and within the valid WGS-84 range.
  bool IsValid() const {
    return std::isfinite(lat) && std::isfinite(lon) && lat >= -90.0 &&
           lat <= 90.0 && lon >= -180.0 && lon <= 180.0;
  }

  bool operator==(const LatLon& o) const { return lat == o.lat && lon == o.lon; }
  bool operator!=(const LatLon& o) const { return !(*this == o); }

  std::string ToString() const;
};

/// \brief Degree/radian conversions.
inline double DegToRad(double deg) { return deg * 0.017453292519943295; }
inline double RadToDeg(double rad) { return rad * 57.29577951308232; }

/// \brief Mean Earth radius in metres (IUGG), used by the Haversine formula.
inline constexpr double kEarthRadiusMeters = 6371008.8;

}  // namespace bikegraph::geo
