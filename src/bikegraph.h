#pragma once

/// \file bikegraph.h
/// \brief Umbrella header: the full public API of the BikeGraph library.
///
/// Downstream users can include this single header and link
/// `bikegraph::bikegraph`. Individual module headers remain includable on
/// their own for finer-grained dependencies.

// Core substrate: error handling, RNG, time.
#include "core/checked_cast.h"
#include "core/civil_time.h"
#include "core/io_env.h"
#include "core/logging.h"
#include "core/result.h"
#include "core/rng.h"
#include "core/status.h"
#include "core/string_util.h"

// Geospatial substrate.
#include "geo/bbox.h"
#include "geo/dublin.h"
#include "geo/geojson.h"
#include "geo/grid_index.h"
#include "geo/haversine.h"
#include "geo/latlon.h"
#include "geo/polygon.h"

// Data layer.
#include "data/cleaning.h"
#include "data/csv.h"
#include "data/dataset.h"
#include "data/records.h"
#include "data/synthetic.h"

// Graph store.
#include "graphdb/property_graph.h"
#include "graphdb/property_value.h"
#include "graphdb/weighted_graph.h"

// Clustering.
#include "cluster/geo_cluster.h"
#include "cluster/hac.h"

// The paper's core contribution: expansion optimisation.
#include "expansion/candidate.h"
#include "expansion/final_network.h"
#include "expansion/pipeline.h"
#include "expansion/selection.h"

// Community detection. detector.h is the unified entry point (Detect(),
// algorithm registry); the per-algorithm headers remain for the legacy
// Run* wrappers and their option/result structs.
#include "community/aggregate.h"
#include "community/detector.h"
#include "community/fast_greedy.h"
#include "community/infomap.h"
#include "community/label_propagation.h"
#include "community/louvain.h"
#include "community/modularity.h"
#include "community/partition.h"

// Network metrics.
#include "metrics/centrality.h"
#include "metrics/graph_stats.h"

// Streaming ingestion: sliding-window graphs, immutable snapshots,
// warm-start community refresh (see docs/STREAMING.md); durability —
// write-ahead log, crash-consistent checkpoints, hostile-input chaos
// streams (see docs/DURABILITY.md).
#include "stream/chaos.h"
#include "stream/checkpoint.h"
#include "stream/engine.h"
#include "stream/event.h"
#include "stream/incremental_community.h"
#include "stream/reorder_buffer.h"
#include "stream/replay.h"
#include "stream/shard.h"
#include "stream/snapshot.h"
#include "stream/spsc_ring.h"
#include "stream/wal.h"
#include "stream/window_graph.h"

// Query serving: epoch-pinned concurrent reads over published snapshots
// with per-epoch memoization (see docs/SERVING.md).
#include "query/epoch_memo.h"
#include "query/query.h"
#include "query/service.h"
#include "query/workload.h"

// Analysis & experiments.
#include "analysis/community_stats.h"
#include "analysis/experiment.h"
#include "analysis/temporal_graph.h"

// Visualisation.
#include "viz/ascii_table.h"
#include "viz/map_export.h"
