#pragma once

#include <cstdint>
#include <vector>

#include "core/result.h"
#include "geo/latlon.h"

namespace bikegraph::cluster {

/// \brief Linkage criterion for hierarchical agglomerative clustering.
///
/// The paper uses Complete linkage: the distance between two clusters is
/// the largest pairwise distance, so a cut at threshold t guarantees every
/// cluster has diameter <= t (Rule 1, the 100 m cluster boundary).
enum class Linkage { kSingle, kComplete, kAverage };

/// \brief One merge step of a dendrogram. Cluster ids: 0..n-1 are the input
/// points; merge i creates cluster n+i.
struct MergeStep {
  int32_t left;
  int32_t right;
  double distance;  ///< linkage distance at which the merge happened
};

/// \brief Full dendrogram produced by DenseHac.
struct Dendrogram {
  size_t point_count = 0;
  std::vector<MergeStep> merges;  ///< size point_count-1 for a full tree

  /// Cuts the dendrogram at `threshold`: merges with distance <= threshold
  /// are applied. Returns a cluster label per point (labels are dense,
  /// 0-based, ordered by first point occurrence).
  std::vector<int32_t> CutAt(double threshold) const;
};

/// \brief Exact O(n^2 log n) HAC over an explicit distance matrix
/// (Lance–Williams updates). Intended for small-to-medium inputs
/// (n up to a few thousand) and as the reference implementation the
/// scalable geo variant is tested against.
///
/// `distances` is a flat row-major n*n symmetric matrix.
Result<Dendrogram> DenseHac(const std::vector<double>& distances, size_t n,
                            Linkage linkage);

/// \brief Convenience: dense HAC over geographic points using the
/// Haversine metric (paper eq. 1).
Result<Dendrogram> DenseHacGeo(const std::vector<geo::LatLon>& points,
                               Linkage linkage);

/// \brief Scalable threshold-bounded complete-linkage HAC over geographic
/// points.
///
/// Produces exactly the clusters of DenseHacGeo(points, kComplete) cut at
/// `threshold_m`, but never materialises the O(n^2) matrix: only point
/// pairs within `threshold_m` (found via a spatial grid) can ever merge, so
/// the candidate structure is sparse. Complete linkage is computed by
/// Lance–Williams max-updates over the sparse neighbour maps; pairs that
/// leave the threshold are dropped (they can never merge again, because
/// complete-linkage distances only grow).
///
/// Complexity: O(P log P) with P = number of point pairs within
/// `threshold_m`. Returns a cluster label per point.
Result<std::vector<int32_t>> ThresholdCompleteLinkage(
    const std::vector<geo::LatLon>& points, double threshold_m);

}  // namespace bikegraph::cluster
