#include "cluster/geo_cluster.h"

#include <algorithm>

#include "cluster/hac.h"
#include "geo/grid_index.h"
#include "geo/haversine.h"

#include "core/checked_cast.h"

namespace bikegraph::cluster {

size_t GeoClusteringResult::station_group_count() const {
  size_t c = 0;
  for (const auto& g : clusters) {
    if (g.is_station_group()) ++c;
  }
  return c;
}

size_t GeoClusteringResult::free_cluster_count() const {
  return clusters.size() - station_group_count();
}

geo::LatLon Centroid(const std::vector<geo::LatLon>& points) {
  if (points.empty()) return geo::LatLon();
  double lat = 0.0, lon = 0.0;
  for (const auto& p : points) {
    lat += p.lat;
    lon += p.lon;
  }
  return geo::LatLon(lat / static_cast<double>(points.size()),
                     lon / static_cast<double>(points.size()));
}

Result<GeoClusteringResult> ClusterLocations(
    const std::vector<geo::LatLon>& locations,
    const std::vector<geo::LatLon>& stations,
    const GeoClusterParams& params) {
  if (params.cluster_boundary_m <= 0.0 || params.station_absorption_m < 0.0) {
    return Status::InvalidArgument("non-positive clustering thresholds");
  }
  GeoClusteringResult result;
  result.assignment.assign(locations.size(), -1);

  // Station groups first, preserving station order (groups are immovable
  // centroids per the paper's preprocessing).
  geo::GridIndex station_grid(
      std::max(params.station_absorption_m * 2.0, 50.0));
  for (size_t s = 0; s < stations.size(); ++s) {
    if (!stations[s].IsValid()) {
      return Status::InvalidArgument("invalid station coordinate at index " +
                                     std::to_string(s));
    }
    GeoCluster group;
    group.centroid = stations[s];
    group.station_index = static_cast<int32_t>(s);
    result.clusters.push_back(std::move(group));
    station_grid.Add(static_cast<int64_t>(s), stations[s]);
  }

  // Absorption pass: a location within the absorption radius of any station
  // joins the *nearest* station's group and is excluded from clustering.
  std::vector<int32_t> free_indices;
  free_indices.reserve(locations.size());
  std::vector<geo::LatLon> free_points;
  for (size_t i = 0; i < locations.size(); ++i) {
    if (!locations[i].IsValid()) {
      return Status::InvalidArgument("invalid location coordinate at index " +
                                     std::to_string(i));
    }
    bool absorbed = false;
    if (!stations.empty()) {
      auto nearest = station_grid.Nearest(locations[i]);
      if (nearest.id >= 0 &&
          nearest.distance_m <= params.station_absorption_m) {
        const int32_t group = static_cast<int32_t>(nearest.id);
        result.clusters[AsIndex(group)].member_indices.push_back(
            static_cast<int32_t>(i));
        result.assignment[i] = group;
        ++result.absorbed_count;
        absorbed = true;
      }
    }
    if (!absorbed) {
      free_indices.push_back(static_cast<int32_t>(i));
      free_points.push_back(locations[i]);
    }
  }

  // Complete-linkage HAC over the free locations, cut at the boundary.
  if (!free_points.empty()) {
    BIKEGRAPH_ASSIGN_OR_RETURN(
        std::vector<int32_t> labels,
        ThresholdCompleteLinkage(free_points, params.cluster_boundary_m));
    int32_t max_label = -1;
    for (int32_t l : labels) max_label = std::max(max_label, l);
    const size_t base = result.clusters.size();
    result.clusters.resize(base + static_cast<size_t>(max_label + 1));
    for (size_t k = 0; k < labels.size(); ++k) {
      const size_t group = base + static_cast<size_t>(labels[k]);
      result.clusters[group].member_indices.push_back(free_indices[k]);
      result.assignment[AsIndex(free_indices[k])] = static_cast<int32_t>(group);
    }
    for (size_t g = base; g < result.clusters.size(); ++g) {
      std::vector<geo::LatLon> members;
      members.reserve(result.clusters[g].member_indices.size());
      for (int32_t idx : result.clusters[g].member_indices) {
        members.push_back(locations[AsIndex(idx)]);
      }
      result.clusters[g].centroid = Centroid(members);
    }
  }
  return result;
}

}  // namespace bikegraph::cluster
