#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/result.h"
#include "geo/latlon.h"

namespace bikegraph::cluster {

/// \brief Parameters of the constrained geo-clustering stage (paper §IV-A).
struct GeoClusterParams {
  /// Rule 1 — Cluster-Boundary: maximum distance between any two locations
  /// inside one cluster (complete-linkage cut threshold).
  double cluster_boundary_m = 100.0;
  /// Preprocessing: locations within this radius of a fixed station are
  /// absorbed into the station's group and excluded from clustering (also
  /// Rule 2's minimum centroid separation).
  double station_absorption_m = 50.0;
};

/// \brief One group produced by the constrained clustering: either a fixed
/// station with its absorbed locations, or a free cluster of dockless
/// locations.
struct GeoCluster {
  /// Group centroid. Fixed-station groups keep the station position
  /// (stations are "immovable"); free clusters use the arithmetic mean of
  /// their members, which is exact to millimetres at <=100 m extents.
  geo::LatLon centroid;
  /// Indices into the input `locations` vector.
  std::vector<int32_t> member_indices;
  /// Index into the input `stations` vector, or -1 for a free cluster.
  int32_t station_index = -1;

  bool is_station_group() const { return station_index >= 0; }
};

/// \brief Result of the constrained clustering pass.
struct GeoClusteringResult {
  /// All groups; station groups first (in station order), then free
  /// clusters in deterministic order.
  std::vector<GeoCluster> clusters;
  /// For each input location, the index of its group in `clusters`.
  std::vector<int32_t> assignment;
  /// Locations absorbed into stations during preprocessing.
  size_t absorbed_count = 0;

  size_t station_group_count() const;
  size_t free_cluster_count() const;
};

/// \brief Runs the paper's constrained clustering: fixed stations are
/// immovable centroids; locations within `station_absorption_m` of a
/// station are absorbed to the nearest such station; the remaining
/// locations are clustered by complete-linkage HAC cut at
/// `cluster_boundary_m`.
///
/// \param locations dockless (non-station) location coordinates.
/// \param stations fixed station coordinates.
Result<GeoClusteringResult> ClusterLocations(
    const std::vector<geo::LatLon>& locations,
    const std::vector<geo::LatLon>& stations,
    const GeoClusterParams& params = {});

/// \brief Mean of a set of points (component-wise; valid at city scale).
geo::LatLon Centroid(const std::vector<geo::LatLon>& points);

}  // namespace bikegraph::cluster
