#include "cluster/hac.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>

#include "geo/grid_index.h"
#include "geo/haversine.h"

namespace bikegraph::cluster {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Union-find with path compression.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<int32_t>(i);
  }
  int32_t Find(int32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int32_t a, int32_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int32_t> parent_;
};

}  // namespace

std::vector<int32_t> Dendrogram::CutAt(double threshold) const {
  const size_t n = point_count;
  UnionFind uf(n + merges.size());
  // `intact[c]` marks dendrogram clusters whose internal merges were all
  // applied; a merge is applied only when both children are intact. This is
  // robust even if the merge list is not distance-sorted.
  std::vector<bool> intact(n + merges.size(), true);
  for (size_t i = 0; i < merges.size(); ++i) {
    const MergeStep& m = merges[i];
    const size_t new_id = n + i;
    if (m.distance <= threshold && intact[m.left] && intact[m.right]) {
      uf.Union(m.left, static_cast<int32_t>(new_id));
      uf.Union(m.right, static_cast<int32_t>(new_id));
    } else {
      intact[new_id] = false;
    }
  }
  // Labels considering only point entries.
  std::vector<int32_t> labels(n, -1);
  std::unordered_map<int32_t, int32_t> remap;
  for (size_t i = 0; i < n; ++i) {
    int32_t root = uf.Find(static_cast<int32_t>(i));
    auto [it, inserted] =
        remap.emplace(root, static_cast<int32_t>(remap.size()));
    labels[i] = it->second;
    (void)inserted;
  }
  return labels;
}

Result<Dendrogram> DenseHac(const std::vector<double>& distances, size_t n,
                            Linkage linkage) {
  if (n == 0) return Status::InvalidArgument("empty input");
  if (distances.size() != n * n) {
    return Status::InvalidArgument("distance matrix size mismatch");
  }
  Dendrogram dendro;
  dendro.point_count = n;
  if (n == 1) return dendro;

  // Working copy; slot i holds the current distance row of active cluster i.
  std::vector<double> d(distances);
  auto at = [&](size_t i, size_t j) -> double& { return d[i * n + j]; };

  std::vector<bool> active(n, true);
  std::vector<size_t> size(n, 1);
  std::vector<int32_t> dendro_id(n);  // slot -> dendrogram cluster id
  for (size_t i = 0; i < n; ++i) dendro_id[i] = static_cast<int32_t>(i);

  // Nearest-neighbour candidate list per active slot.
  std::vector<size_t> nn(n, SIZE_MAX);
  std::vector<double> nn_dist(n, kInf);
  auto recompute_nn = [&](size_t i) {
    nn[i] = SIZE_MAX;
    nn_dist[i] = kInf;
    for (size_t j = 0; j < n; ++j) {
      if (j == i || !active[j]) continue;
      double dij = at(i, j);
      if (dij < nn_dist[i] || (dij == nn_dist[i] && j < nn[i])) {
        nn_dist[i] = dij;
        nn[i] = j;
      }
    }
  };
  for (size_t i = 0; i < n; ++i) recompute_nn(i);

  for (size_t merge_round = 0; merge_round + 1 < n; ++merge_round) {
    // Global minimum over candidate list.
    size_t best = SIZE_MAX;
    for (size_t i = 0; i < n; ++i) {
      if (!active[i] || nn[i] == SIZE_MAX) continue;
      if (best == SIZE_MAX || nn_dist[i] < nn_dist[best] ||
          (nn_dist[i] == nn_dist[best] && i < best)) {
        best = i;
      }
    }
    if (best == SIZE_MAX) break;  // disconnected (infinite distances)
    size_t a = best;
    size_t b = nn[best];
    if (a > b) std::swap(a, b);
    const double merge_dist = at(a, b);
    if (!std::isfinite(merge_dist)) break;

    dendro.merges.push_back(
        MergeStep{dendro_id[a], dendro_id[b], merge_dist});
    const int32_t new_id =
        static_cast<int32_t>(n + dendro.merges.size() - 1);

    // Lance–Williams update into slot a; deactivate slot b.
    for (size_t k = 0; k < n; ++k) {
      if (!active[k] || k == a || k == b) continue;
      double dak = at(a, k), dbk = at(b, k);
      double dnew = kInf;
      switch (linkage) {
        case Linkage::kSingle:
          dnew = std::min(dak, dbk);
          break;
        case Linkage::kComplete:
          dnew = std::max(dak, dbk);
          break;
        case Linkage::kAverage:
          dnew = (static_cast<double>(size[a]) * dak +
                  static_cast<double>(size[b]) * dbk) /
                 static_cast<double>(size[a] + size[b]);
          break;
      }
      at(a, k) = dnew;
      at(k, a) = dnew;
    }
    active[b] = false;
    size[a] += size[b];
    dendro_id[a] = new_id;

    // Refresh candidate lists touching a or b.
    recompute_nn(a);
    for (size_t k = 0; k < n; ++k) {
      if (!active[k] || k == a) continue;
      if (nn[k] == a || nn[k] == b) {
        recompute_nn(k);
      } else if (at(k, a) < nn_dist[k]) {
        nn[k] = a;
        nn_dist[k] = at(k, a);
      }
    }
  }
  return dendro;
}

Result<Dendrogram> DenseHacGeo(const std::vector<geo::LatLon>& points,
                               Linkage linkage) {
  const size_t n = points.size();
  if (n == 0) return Status::InvalidArgument("empty input");
  std::vector<double> d(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double dist = geo::HaversineMeters(points[i], points[j]);
      d[i * n + j] = dist;
      d[j * n + i] = dist;
    }
  }
  return DenseHac(d, n, linkage);
}

Result<std::vector<int32_t>> ThresholdCompleteLinkage(
    const std::vector<geo::LatLon>& points, double threshold_m) {
  const size_t n = points.size();
  if (threshold_m < 0.0) {
    return Status::InvalidArgument("threshold must be >= 0");
  }
  if (n == 0) return std::vector<int32_t>{};

  // Sparse candidate pairs from the grid: only pairs within threshold can
  // ever merge under complete linkage.
  geo::GridIndex grid(std::max(threshold_m, 1.0));
  for (size_t i = 0; i < n; ++i) {
    if (!points[i].IsValid()) {
      return Status::InvalidArgument("invalid coordinate at index " +
                                     std::to_string(i));
    }
    grid.Add(static_cast<int64_t>(i), points[i]);
  }

  // Cluster slots: 0..n-1 are points; merged clusters append new slots.
  // A heap entry (a, b) is valid iff both slots are still active: the
  // complete-linkage distance between two clusters never changes while both
  // survive, so no version counters are needed.
  std::vector<std::unordered_map<int32_t, double>> nbrs(n);
  std::vector<bool> active(n, true);

  struct HeapEntry {
    double dist;
    int32_t a, b;
    bool operator>(const HeapEntry& o) const {
      if (dist != o.dist) return dist > o.dist;
      if (a != o.a) return a > o.a;
      return b > o.b;
    }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;

  for (size_t i = 0; i < n; ++i) {
    for (int64_t j : grid.WithinRadius(points[i], threshold_m)) {
      if (j <= static_cast<int64_t>(i)) continue;
      double dist = geo::HaversineMeters(points[i], points[j]);
      if (dist > threshold_m) continue;
      nbrs[i].emplace(static_cast<int32_t>(j), dist);
      nbrs[j].emplace(static_cast<int32_t>(i), dist);
      heap.push(
          HeapEntry{dist, static_cast<int32_t>(i), static_cast<int32_t>(j)});
    }
  }

  // Union-find over slots; point labels read off at the end.
  std::vector<int32_t> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = static_cast<int32_t>(i);
  std::function<int32_t(int32_t)> find = [&](int32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  while (!heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    if (top.a >= static_cast<int32_t>(active.size()) ||
        top.b >= static_cast<int32_t>(active.size())) {
      continue;
    }
    if (!active[top.a] || !active[top.b]) continue;

    // Merge slots a and b into new slot c.
    const int32_t a = top.a, b = top.b;
    const int32_t c = static_cast<int32_t>(nbrs.size());
    active[a] = active[b] = false;
    parent.push_back(c);
    active.push_back(true);
    parent[find(a)] = c;
    parent[find(b)] = c;

    // Complete linkage: d(c,k) = max(d(a,k), d(b,k)); k must be a
    // within-threshold neighbour of BOTH a and b, otherwise d(c,k) exceeds
    // the threshold and the pair is dropped forever.
    std::unordered_map<int32_t, double> merged;
    const auto& small = nbrs[a].size() <= nbrs[b].size() ? nbrs[a] : nbrs[b];
    const auto& large = nbrs[a].size() <= nbrs[b].size() ? nbrs[b] : nbrs[a];
    for (const auto& [k, dk] : small) {
      if (k == a || k == b) continue;
      if (!active[k]) continue;
      auto it = large.find(k);
      if (it == large.end()) continue;
      double dck = std::max(dk, it->second);
      if (dck > threshold_m) continue;
      merged.emplace(k, dck);
    }
    nbrs.push_back(std::move(merged));
    // Update the surviving neighbours' maps and push fresh heap entries.
    for (const auto& [k, dck] : nbrs[c]) {
      nbrs[k].erase(a);
      nbrs[k].erase(b);
      nbrs[k].emplace(c, dck);
      heap.push(HeapEntry{dck, std::min(c, k), std::max(c, k)});
    }
    nbrs[a].clear();
    nbrs[b].clear();
  }

  // Dense labels for the points.
  std::vector<int32_t> labels(n, -1);
  std::unordered_map<int32_t, int32_t> remap;
  for (size_t i = 0; i < n; ++i) {
    int32_t root = find(static_cast<int32_t>(i));
    auto [it, inserted] =
        remap.emplace(root, static_cast<int32_t>(remap.size()));
    labels[i] = it->second;
    (void)inserted;
  }
  return labels;
}

}  // namespace bikegraph::cluster
