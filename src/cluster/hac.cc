#include "cluster/hac.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "geo/grid_index.h"
#include "geo/haversine.h"

#include "core/checked_cast.h"

namespace bikegraph::cluster {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Union-find with path compression.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<int32_t>(i);
  }
  int32_t Find(int32_t x) {
    while (parent_[AsIndex(x)] != x) {
      parent_[AsIndex(x)] = parent_[AsIndex(parent_[AsIndex(x)])];
      x = parent_[AsIndex(x)];
    }
    return x;
  }
  void Union(int32_t a, int32_t b) { parent_[AsIndex(Find(a))] = Find(b); }

 private:
  std::vector<int32_t> parent_;
};

}  // namespace

std::vector<int32_t> Dendrogram::CutAt(double threshold) const {
  const size_t n = point_count;
  UnionFind uf(n + merges.size());
  // `intact[c]` marks dendrogram clusters whose internal merges were all
  // applied; a merge is applied only when both children are intact. This is
  // robust even if the merge list is not distance-sorted.
  std::vector<bool> intact(n + merges.size(), true);
  for (size_t i = 0; i < merges.size(); ++i) {
    const MergeStep& m = merges[i];
    const size_t new_id = n + i;
    if (m.distance <= threshold && intact[AsIndex(m.left)] && intact[AsIndex(m.right)]) {
      uf.Union(m.left, static_cast<int32_t>(new_id));
      uf.Union(m.right, static_cast<int32_t>(new_id));
    } else {
      intact[new_id] = false;
    }
  }
  // Labels considering only point entries; roots are dense cluster ids, so
  // a flat remap table suffices.
  std::vector<int32_t> labels(n, -1);
  std::vector<int32_t> remap(n + merges.size(), -1);
  int32_t next = 0;
  for (size_t i = 0; i < n; ++i) {
    int32_t root = uf.Find(static_cast<int32_t>(i));
    if (remap[AsIndex(root)] < 0) remap[AsIndex(root)] = next++;
    labels[i] = remap[AsIndex(root)];
  }
  return labels;
}

Result<Dendrogram> DenseHac(const std::vector<double>& distances, size_t n,
                            Linkage linkage) {
  if (n == 0) return Status::InvalidArgument("empty input");
  if (distances.size() != n * n) {
    return Status::InvalidArgument("distance matrix size mismatch");
  }
  Dendrogram dendro;
  dendro.point_count = n;
  if (n == 1) return dendro;

  // Working copy; slot i holds the current distance row of active cluster i.
  std::vector<double> d(distances);
  auto at = [&](size_t i, size_t j) -> double& { return d[i * n + j]; };

  std::vector<bool> active(n, true);
  std::vector<size_t> size(n, 1);
  std::vector<int32_t> dendro_id(n);  // slot -> dendrogram cluster id
  for (size_t i = 0; i < n; ++i) dendro_id[i] = static_cast<int32_t>(i);

  // Nearest-neighbour candidate list per active slot.
  std::vector<size_t> nn(n, SIZE_MAX);
  std::vector<double> nn_dist(n, kInf);
  auto recompute_nn = [&](size_t i) {
    nn[i] = SIZE_MAX;
    nn_dist[i] = kInf;
    for (size_t j = 0; j < n; ++j) {
      if (j == i || !active[j]) continue;
      double dij = at(i, j);
      if (dij < nn_dist[i] || (dij == nn_dist[i] && j < nn[i])) {
        nn_dist[i] = dij;
        nn[i] = j;
      }
    }
  };
  for (size_t i = 0; i < n; ++i) recompute_nn(i);

  for (size_t merge_round = 0; merge_round + 1 < n; ++merge_round) {
    // Global minimum over candidate list.
    size_t best = SIZE_MAX;
    for (size_t i = 0; i < n; ++i) {
      if (!active[i] || nn[i] == SIZE_MAX) continue;
      if (best == SIZE_MAX || nn_dist[i] < nn_dist[best] ||
          (nn_dist[i] == nn_dist[best] && i < best)) {
        best = i;
      }
    }
    if (best == SIZE_MAX) break;  // disconnected (infinite distances)
    size_t a = best;
    size_t b = nn[best];
    if (a > b) std::swap(a, b);
    const double merge_dist = at(a, b);
    if (!std::isfinite(merge_dist)) break;

    dendro.merges.push_back(
        MergeStep{dendro_id[a], dendro_id[b], merge_dist});
    const int32_t new_id =
        static_cast<int32_t>(n + dendro.merges.size() - 1);

    // Lance–Williams update into slot a; deactivate slot b.
    for (size_t k = 0; k < n; ++k) {
      if (!active[k] || k == a || k == b) continue;
      double dak = at(a, k), dbk = at(b, k);
      double dnew = kInf;
      switch (linkage) {
        case Linkage::kSingle:
          dnew = std::min(dak, dbk);
          break;
        case Linkage::kComplete:
          dnew = std::max(dak, dbk);
          break;
        case Linkage::kAverage:
          dnew = (static_cast<double>(size[a]) * dak +
                  static_cast<double>(size[b]) * dbk) /
                 static_cast<double>(size[a] + size[b]);
          break;
      }
      at(a, k) = dnew;
      at(k, a) = dnew;
    }
    active[b] = false;
    size[a] += size[b];
    dendro_id[a] = new_id;

    // Refresh candidate lists touching a or b.
    recompute_nn(a);
    for (size_t k = 0; k < n; ++k) {
      if (!active[k] || k == a) continue;
      if (nn[k] == a || nn[k] == b) {
        recompute_nn(k);
      } else if (at(k, a) < nn_dist[k]) {
        nn[k] = a;
        nn_dist[k] = at(k, a);
      }
    }
  }
  return dendro;
}

Result<Dendrogram> DenseHacGeo(const std::vector<geo::LatLon>& points,
                               Linkage linkage) {
  const size_t n = points.size();
  if (n == 0) return Status::InvalidArgument("empty input");
  // Precompute per-point cos(latitude) once: the O(n^2) matrix fill then
  // pays two sin calls per pair instead of two sin and two cos.
  std::vector<double> cos_lat(n);
  for (size_t i = 0; i < n; ++i) {
    cos_lat[i] = std::cos(geo::DegToRad(points[i].lat));
  }
  std::vector<double> d(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double dist = geo::HaversineMetersWithCos(points[i], points[j],
                                                cos_lat[i], cos_lat[j]);
      d[i * n + j] = dist;
      d[j * n + i] = dist;
    }
  }
  return DenseHac(d, n, linkage);
}

Result<std::vector<int32_t>> ThresholdCompleteLinkage(
    const std::vector<geo::LatLon>& points, double threshold_m) {
  const size_t n = points.size();
  if (threshold_m < 0.0) {
    return Status::InvalidArgument("threshold must be >= 0");
  }
  if (n == 0) return std::vector<int32_t>{};

  // Sparse candidate pairs from the grid: only pairs within threshold can
  // ever merge under complete linkage.
  geo::GridIndex grid(std::max(threshold_m, 1.0));
  for (size_t i = 0; i < n; ++i) {
    if (!points[i].IsValid()) {
      return Status::InvalidArgument("invalid coordinate at index " +
                                     std::to_string(i));
    }
    grid.Add(static_cast<int64_t>(i), points[i]);
  }

  // Cluster slots: 0..n-1 are points; merged clusters append new slots, so
  // there are at most 2n-1 slots in total. A heap entry (a, b) is valid iff
  // both slots are still active: the complete-linkage distance between two
  // clusters never changes while both survive, so no version counters are
  // needed.
  //
  // Per-slot neighbour lists are flat (slot, distance) vectors. Entries
  // pointing at deactivated slots are skipped on read instead of erased
  // (lazy deletion); slot ids are never reused, so each list holds at most
  // one entry per active slot.
  struct Entry {
    int32_t slot;
    double dist;
  };
  const size_t max_slots = 2 * n;
  std::vector<std::vector<Entry>> nbrs(n);
  std::vector<bool> active(n, true);
  nbrs.reserve(max_slots);
  active.reserve(max_slots);

  struct HeapEntry {
    double dist;
    int32_t a, b;
    bool operator<(const HeapEntry& o) const {
      if (dist != o.dist) return dist < o.dist;
      if (a != o.a) return a < o.a;
      return b < o.b;
    }
    bool operator>(const HeapEntry& o) const { return o < *this; }
  };

  // Candidate pairs arrive in two streams. The initial within-threshold
  // pairs are sorted once and consumed by index — skipping a stale entry is
  // O(1) instead of a heap pop (the vast majority of entries go stale
  // before they surface). Only merge-generated pairs need a live heap.
  std::vector<HeapEntry> initial;
  grid.ForEachPairWithinRadius(
      threshold_m, [&](int64_t a64, int64_t b64, double dist) {
        const int32_t i = static_cast<int32_t>(std::min(a64, b64));
        const int32_t j = static_cast<int32_t>(std::max(a64, b64));
        nbrs[AsIndex(i)].push_back(Entry{j, dist});
        nbrs[AsIndex(j)].push_back(Entry{i, dist});
        initial.push_back(HeapEntry{dist, i, j});
      });
  std::sort(initial.begin(), initial.end());
  size_t next_initial = 0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      generated;

  // Union-find over slots; point labels read off at the end.
  std::vector<int32_t> parent(n);
  parent.reserve(max_slots);
  for (size_t i = 0; i < n; ++i) parent[i] = static_cast<int32_t>(i);
  auto find = [&parent](int32_t x) {
    while (parent[AsIndex(x)] != x) {
      parent[AsIndex(x)] = parent[AsIndex(parent[AsIndex(x)])];
      x = parent[AsIndex(x)];
    }
    return x;
  };

  // Flat intersection scratch, reset after every merge.
  std::vector<double> dist_to(max_slots, 0.0);
  std::vector<char> mark(max_slots, 0);
  std::vector<Entry> merged;  // reused per merge

  while (true) {
    // Drop stale candidates from both streams, then take the global min.
    while (next_initial < initial.size() &&
           (!active[AsIndex(initial[next_initial].a)] ||
            !active[AsIndex(initial[next_initial].b)])) {
      ++next_initial;
    }
    while (!generated.empty() && (!active[AsIndex(generated.top().a)] ||
                                  !active[AsIndex(generated.top().b)])) {
      generated.pop();
    }
    HeapEntry top;
    if (next_initial < initial.size() &&
        (generated.empty() || initial[next_initial] < generated.top())) {
      top = initial[next_initial++];
    } else if (!generated.empty()) {
      top = generated.top();
      generated.pop();
    } else {
      break;
    }

    // Merge slots a and b into new slot c.
    const int32_t a = top.a, b = top.b;
    const int32_t c = static_cast<int32_t>(nbrs.size());
    active[AsIndex(a)] = active[AsIndex(b)] = false;
    parent.push_back(c);
    active.push_back(true);
    parent[AsIndex(find(a))] = c;
    parent[AsIndex(find(b))] = c;

    // Complete linkage: d(c,k) = max(d(a,k), d(b,k)); k must be a
    // within-threshold neighbour of BOTH a and b, otherwise d(c,k) exceeds
    // the threshold and the pair is dropped forever. The intersection runs
    // over the flat lists via the mark scratch — no hashing. Marks are only
    // ever set for active slots, so the second scan needs no active check.
    merged.clear();
    for (const Entry& e : nbrs[AsIndex(a)]) {
      if (!active[AsIndex(e.slot)]) continue;
      mark[AsIndex(e.slot)] = 1;
      dist_to[AsIndex(e.slot)] = e.dist;
    }
    for (const Entry& e : nbrs[AsIndex(b)]) {
      if (!mark[AsIndex(e.slot)]) continue;
      mark[AsIndex(e.slot)] = 0;  // consume so nothing can match twice
      const double dck = std::max(dist_to[AsIndex(e.slot)], e.dist);
      if (dck > threshold_m) continue;
      merged.push_back(Entry{e.slot, dck});
    }
    for (const Entry& e : nbrs[AsIndex(a)]) mark[AsIndex(e.slot)] = 0;
    nbrs.emplace_back(merged.begin(), merged.end());
    // Tell the surviving neighbours about c and push fresh heap entries;
    // their stale a/b entries are skipped lazily via the active flags.
    for (const Entry& e : nbrs[AsIndex(c)]) {
      nbrs[AsIndex(e.slot)].push_back(Entry{c, e.dist});
      generated.push(
          HeapEntry{e.dist, std::min(c, e.slot), std::max(c, e.slot)});
    }
    nbrs[AsIndex(a)].clear();
    nbrs[AsIndex(a)].shrink_to_fit();
    nbrs[AsIndex(b)].clear();
    nbrs[AsIndex(b)].shrink_to_fit();
  }

  // Dense labels for the points; roots are slot ids, so the remap is flat.
  std::vector<int32_t> labels(n, -1);
  std::vector<int32_t> remap(nbrs.size(), -1);
  int32_t next = 0;
  for (size_t i = 0; i < n; ++i) {
    int32_t root = find(static_cast<int32_t>(i));
    if (remap[AsIndex(root)] < 0) remap[AsIndex(root)] = next++;
    labels[i] = remap[AsIndex(root)];
  }
  return labels;
}

}  // namespace bikegraph::cluster
