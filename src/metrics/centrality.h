#pragma once

#include <cstdint>
#include <vector>

#include "core/result.h"
#include "graphdb/weighted_graph.h"

namespace bikegraph::metrics {

/// Network metrics used across the BSS literature the paper surveys (§II):
/// connectivity (degree, strength, node flux), spatial structure (local
/// clustering coefficient), stability/prominence (betweenness, closeness,
/// PageRank) and equity (Gini).

/// \brief Options for PageRank on a directed graph.
struct PageRankOptions {
  double damping = 0.85;
  int max_iterations = 200;
  double tolerance = 1e-10;  ///< L1 change per iteration to stop
};

/// \brief Weighted PageRank on a Digraph. Dangling mass is redistributed
/// uniformly. Returns one score per node, summing to 1.
Result<std::vector<double>> PageRank(const graphdb::Digraph& graph,
                                     const PageRankOptions& options = {});

/// \brief Brandes betweenness centrality on the undirected graph.
///
/// If `weighted` is true, edges are traversed with Dijkstra using
/// length = 1/weight (heavier flows are "closer"), the standard convention
/// for flow networks; otherwise BFS hop counts are used. Self-loops are
/// ignored. Scores are unnormalised pair-dependency sums (each unordered
/// pair counted once).
Result<std::vector<double>> Betweenness(const graphdb::WeightedGraph& graph,
                                        bool weighted = false);

/// \brief Harmonic closeness centrality: C(u) = Σ_{v≠u} 1/d(u,v), with the
/// same edge-length convention as Betweenness. Harmonic closeness is used
/// (rather than classic closeness) so disconnected graphs are handled
/// gracefully.
Result<std::vector<double>> HarmonicCloseness(
    const graphdb::WeightedGraph& graph, bool weighted = false);

/// \brief Local clustering coefficient per node (unweighted triangles over
/// wedges on the simple graph; self-loops ignored). Degree<2 nodes score 0.
std::vector<double> LocalClusteringCoefficients(
    const graphdb::WeightedGraph& graph);

/// \brief Global clustering coefficient: 3·triangles / wedges.
double GlobalClusteringCoefficient(const graphdb::WeightedGraph& graph);

/// \brief Gini coefficient of a non-negative value vector (0 = perfectly
/// equal, →1 = concentrated). Used as the equity metric over station
/// strengths. Empty or all-zero input yields 0.
double GiniCoefficient(std::vector<double> values);

}  // namespace bikegraph::metrics
