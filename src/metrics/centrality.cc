#include "metrics/centrality.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stack>
#include <unordered_set>

#include "core/checked_cast.h"

namespace bikegraph::metrics {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Single-source shortest paths for Brandes/closeness: fills distances,
/// predecessor DAG, path counts and the stack of nodes in non-decreasing
/// distance order.
struct SsspResult {
  std::vector<double> dist;
  std::vector<std::vector<int32_t>> preds;
  std::vector<double> sigma;  // shortest-path counts
  std::vector<int32_t> order; // settled, nearest first
};

SsspResult Sssp(const graphdb::WeightedGraph& g, int32_t source,
                bool weighted) {
  const size_t n = g.node_count();
  SsspResult r;
  r.dist.assign(n, kInf);
  r.preds.assign(n, {});
  r.sigma.assign(n, 0.0);
  r.order.reserve(n);
  r.dist[AsIndex(source)] = 0.0;
  r.sigma[AsIndex(source)] = 1.0;

  if (!weighted) {
    std::queue<int32_t> q;
    q.push(source);
    while (!q.empty()) {
      int32_t u = q.front();
      q.pop();
      r.order.push_back(u);
      for (const auto& nb : g.neighbors(u)) {
        int32_t v = nb.node;
        if (r.dist[AsIndex(v)] == kInf) {
          r.dist[AsIndex(v)] = r.dist[AsIndex(u)] + 1.0;
          q.push(v);
        }
        if (r.dist[AsIndex(v)] == r.dist[AsIndex(u)] + 1.0) {
          r.sigma[AsIndex(v)] += r.sigma[AsIndex(u)];
          r.preds[AsIndex(v)].push_back(u);
        }
      }
    }
    return r;
  }

  // Dijkstra with length = 1/weight.
  using Entry = std::pair<double, int32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  std::vector<bool> settled(n, false);
  pq.push({0.0, source});
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (settled[AsIndex(u)]) continue;
    settled[AsIndex(u)] = true;
    r.order.push_back(u);
    for (const auto& nb : g.neighbors(u)) {
      if (nb.weight <= 0.0) continue;
      const double len = 1.0 / nb.weight;
      const int32_t v = nb.node;
      const double nd = d + len;
      if (nd < r.dist[AsIndex(v)] - 1e-12) {
        r.dist[AsIndex(v)] = nd;
        r.sigma[AsIndex(v)] = r.sigma[AsIndex(u)];
        r.preds[AsIndex(v)].assign(1, u);
        pq.push({nd, v});
      } else if (std::abs(nd - r.dist[AsIndex(v)]) <= 1e-12 && !settled[AsIndex(v)]) {
        r.sigma[AsIndex(v)] += r.sigma[AsIndex(u)];
        r.preds[AsIndex(v)].push_back(u);
      }
    }
  }
  return r;
}

}  // namespace

Result<std::vector<double>> PageRank(const graphdb::Digraph& graph,
                                     const PageRankOptions& options) {
  if (options.damping < 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping must be in [0, 1)");
  }
  const size_t n = graph.node_count();
  std::vector<double> rank(n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
  if (n == 0) return rank;

  std::vector<double> next(n, 0.0);
  const double dn = static_cast<double>(n);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double dangling = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (size_t u = 0; u < n; ++u) {
      const double out = graph.out_strength(static_cast<int32_t>(u));
      if (out <= 0.0) {
        dangling += rank[u];
        continue;
      }
      for (const auto& nb : graph.out_neighbors(static_cast<int32_t>(u))) {
        next[AsIndex(nb.node)] += rank[u] * nb.weight / out;
      }
    }
    double delta = 0.0;
    for (size_t u = 0; u < n; ++u) {
      const double v = (1.0 - options.damping) / dn +
                       options.damping * (next[u] + dangling / dn);
      delta += std::abs(v - rank[u]);
      next[u] = v;
    }
    rank.swap(next);
    if (delta < options.tolerance) break;
  }
  return rank;
}

Result<std::vector<double>> Betweenness(const graphdb::WeightedGraph& graph,
                                        bool weighted) {
  const size_t n = graph.node_count();
  std::vector<double> bc(n, 0.0);
  for (size_t s = 0; s < n; ++s) {
    SsspResult r = Sssp(graph, static_cast<int32_t>(s), weighted);
    std::vector<double> delta(n, 0.0);
    for (auto it = r.order.rbegin(); it != r.order.rend(); ++it) {
      const int32_t w = *it;
      for (int32_t v : r.preds[AsIndex(w)]) {
        delta[AsIndex(v)] += r.sigma[AsIndex(v)] / r.sigma[AsIndex(w)] * (1.0 + delta[AsIndex(w)]);
      }
      if (w != static_cast<int32_t>(s)) bc[AsIndex(w)] += delta[AsIndex(w)];
    }
  }
  // Each unordered pair was counted twice (once per endpoint as source).
  for (double& v : bc) v /= 2.0;
  return bc;
}

Result<std::vector<double>> HarmonicCloseness(
    const graphdb::WeightedGraph& graph, bool weighted) {
  const size_t n = graph.node_count();
  std::vector<double> hc(n, 0.0);
  for (size_t s = 0; s < n; ++s) {
    SsspResult r = Sssp(graph, static_cast<int32_t>(s), weighted);
    double acc = 0.0;
    for (size_t v = 0; v < n; ++v) {
      if (v == s || r.dist[v] == kInf || r.dist[v] <= 0.0) continue;
      acc += 1.0 / r.dist[v];
    }
    hc[s] = acc;
  }
  return hc;
}

std::vector<double> LocalClusteringCoefficients(
    const graphdb::WeightedGraph& graph) {
  const size_t n = graph.node_count();
  std::vector<double> cc(n, 0.0);
  // Adjacency sets for O(1) membership checks.
  std::vector<std::unordered_set<int32_t>> adj(n);
  for (size_t u = 0; u < n; ++u) {
    for (const auto& nb : graph.neighbors(static_cast<int32_t>(u))) {
      adj[u].insert(nb.node);
    }
  }
  for (size_t u = 0; u < n; ++u) {
    const size_t deg = adj[u].size();
    if (deg < 2) continue;
    size_t links = 0;
    const auto span = graph.neighbors(static_cast<int32_t>(u));
    for (size_t i = 0; i < span.size(); ++i) {
      for (size_t j = i + 1; j < span.size(); ++j) {
        if (adj[AsIndex(span[i].node)].count(span[j].node) > 0) ++links;
      }
    }
    cc[u] = 2.0 * static_cast<double>(links) /
            (static_cast<double>(deg) * static_cast<double>(deg - 1));
  }
  return cc;
}

double GlobalClusteringCoefficient(const graphdb::WeightedGraph& graph) {
  const size_t n = graph.node_count();
  std::vector<std::unordered_set<int32_t>> adj(n);
  for (size_t u = 0; u < n; ++u) {
    for (const auto& nb : graph.neighbors(static_cast<int32_t>(u))) {
      adj[u].insert(nb.node);
    }
  }
  uint64_t closed = 0;  // ordered wedges that close (3! per triangle x2?)
  uint64_t wedges = 0;
  for (size_t u = 0; u < n; ++u) {
    const size_t deg = adj[u].size();
    if (deg < 2) continue;
    wedges += deg * (deg - 1) / 2;
    const auto span = graph.neighbors(static_cast<int32_t>(u));
    for (size_t i = 0; i < span.size(); ++i) {
      for (size_t j = i + 1; j < span.size(); ++j) {
        if (adj[AsIndex(span[i].node)].count(span[j].node) > 0) ++closed;
      }
    }
  }
  if (wedges == 0) return 0.0;
  return static_cast<double>(closed) / static_cast<double>(wedges);
}

double GiniCoefficient(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double total = 0.0, weighted_sum = 0.0;
  const double n = static_cast<double>(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] < 0.0) return 0.0;  // undefined for negative values
    total += values[i];
    weighted_sum += (static_cast<double>(i) + 1.0) * values[i];
  }
  if (total <= 0.0) return 0.0;
  return (2.0 * weighted_sum) / (n * total) - (n + 1.0) / n;
}

}  // namespace bikegraph::metrics
