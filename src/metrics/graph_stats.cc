#include "metrics/graph_stats.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "core/string_util.h"

namespace bikegraph::metrics {

std::string GraphCounts::ToString() const {
  std::ostringstream os;
  os << "#nodes " << FormatWithCommas(static_cast<int64_t>(nodes))
     << ", #undirected " << FormatWithCommas(static_cast<int64_t>(undirected_edges))
     << " (" << FormatWithCommas(static_cast<int64_t>(undirected_edges_no_loops))
     << " no loops), #directed "
     << FormatWithCommas(static_cast<int64_t>(directed_edges)) << " ("
     << FormatWithCommas(static_cast<int64_t>(directed_edges_no_loops))
     << " no loops), #trips "
     << FormatWithCommas(static_cast<int64_t>(trips));
  return os.str();
}

GraphCounts CountGraph(const graphdb::PropertyGraph& graph,
                       const std::string& edge_type) {
  GraphCounts counts;
  counts.nodes = graph.NodeCount();
  std::unordered_set<uint64_t> directed, undirected;
  size_t trips = 0, directed_loops = 0, undirected_loops = 0;
  graph.ForEachEdge(edge_type, [&](graphdb::EdgeId e) {
    ++trips;
    const auto from = static_cast<uint64_t>(graph.EdgeFrom(e));
    const auto to = static_cast<uint64_t>(graph.EdgeTo(e));
    directed.insert((from << 32) | to);
    const uint64_t lo = std::min(from, to), hi = std::max(from, to);
    undirected.insert((lo << 32) | hi);
  });
  // lint: unordered-iter-ok: order-independent integer counting
  // (self-loop detection); increments commute.
  for (uint64_t key : directed) {
    if ((key >> 32) == (key & 0xFFFFFFFFULL)) ++directed_loops;
  }
  // lint: unordered-iter-ok: same order-independent counting as
  // the directed loop above.
  for (uint64_t key : undirected) {
    if ((key >> 32) == (key & 0xFFFFFFFFULL)) ++undirected_loops;
  }
  counts.trips = trips;
  counts.directed_edges = directed.size();
  counts.directed_edges_no_loops = directed.size() - directed_loops;
  counts.undirected_edges = undirected.size();
  counts.undirected_edges_no_loops = undirected.size() - undirected_loops;
  return counts;
}

WeightedGraphSummary Summarize(const graphdb::WeightedGraph& graph) {
  WeightedGraphSummary s;
  s.nodes = graph.node_count();
  s.edges = graph.edge_count();
  s.total_weight = graph.total_weight();
  if (s.nodes == 0) return s;
  double strength_sum = 0.0;
  size_t degree_sum = 0;
  for (size_t u = 0; u < s.nodes; ++u) {
    const double st = graph.strength(static_cast<int32_t>(u));
    strength_sum += st;
    s.max_strength = std::max(s.max_strength, st);
    degree_sum += graph.degree(static_cast<int32_t>(u));
  }
  s.mean_degree = static_cast<double>(degree_sum) / static_cast<double>(s.nodes);
  s.mean_strength = strength_sum / static_cast<double>(s.nodes);
  if (s.nodes > 1) {
    s.density = static_cast<double>(s.edges) /
                (static_cast<double>(s.nodes) *
                 static_cast<double>(s.nodes - 1) / 2.0);
  }
  return s;
}

}  // namespace bikegraph::metrics
