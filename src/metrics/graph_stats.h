#pragma once

#include <string>

#include "graphdb/property_graph.h"
#include "graphdb/weighted_graph.h"

namespace bikegraph::metrics {

/// \brief Structural counters of a trip multigraph, in the shape of the
/// paper's Table II (candidate graph details).
struct GraphCounts {
  size_t nodes = 0;
  size_t undirected_edges = 0;           ///< distinct unordered pairs, loops in
  size_t undirected_edges_no_loops = 0;  ///< distinct unordered pairs, no loops
  size_t directed_edges = 0;             ///< distinct ordered pairs, loops in
  size_t directed_edges_no_loops = 0;    ///< distinct ordered pairs, no loops
  size_t trips = 0;                      ///< multigraph relationship count

  std::string ToString() const;
};

/// \brief Computes Table-II style counters from a trip multigraph where
/// every relationship is one trip.
GraphCounts CountGraph(const graphdb::PropertyGraph& graph,
                       const std::string& edge_type = "");

/// \brief Simple scalar summaries of a weighted graph.
struct WeightedGraphSummary {
  size_t nodes = 0;
  size_t edges = 0;
  double total_weight = 0.0;
  double mean_degree = 0.0;
  double mean_strength = 0.0;
  double max_strength = 0.0;
  double density = 0.0;  ///< edges / (n choose 2)
};

WeightedGraphSummary Summarize(const graphdb::WeightedGraph& graph);

}  // namespace bikegraph::metrics
