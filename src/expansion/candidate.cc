#include "expansion/candidate.h"

#include "core/checked_cast.h"

namespace bikegraph::expansion {

Result<CandidateNetwork> BuildCandidateNetwork(
    const data::Dataset& cleaned, const cluster::GeoClusterParams& params) {
  CandidateNetwork net;

  // Split the location table into fixed stations and dockless locations.
  std::vector<geo::LatLon> station_points, dockless_points;
  std::vector<const data::LocationRecord*> stations, dockless;
  for (const auto& loc : cleaned.locations()) {
    if (!loc.has_coordinates()) {
      return Status::FailedPrecondition(
          "dataset not cleaned: location " + std::to_string(loc.id) +
          " has no coordinates");
    }
    if (loc.is_station) {
      stations.push_back(&loc);
      station_points.push_back(loc.position);
    } else {
      dockless.push_back(&loc);
      dockless_points.push_back(loc.position);
    }
  }

  BIKEGRAPH_ASSIGN_OR_RETURN(
      cluster::GeoClusteringResult clustering,
      cluster::ClusterLocations(dockless_points, station_points, params));

  // Materialise candidates: station groups first, then free clusters
  // (ClusterLocations already orders them this way).
  net.candidates.resize(clustering.clusters.size());
  net.fixed_count = stations.size();
  for (size_t g = 0; g < clustering.clusters.size(); ++g) {
    const auto& group = clustering.clusters[g];
    CandidateStation& cand = net.candidates[g];
    cand.centroid = group.centroid;
    cand.station_index = group.station_index;
    if (group.is_station_group()) {
      const auto* st = stations[AsIndex(group.station_index)];
      cand.name = st->name;
      cand.location_ids.push_back(st->id);
      net.location_to_candidate[st->id] = static_cast<int32_t>(g);
    }
    for (int32_t member : group.member_indices) {
      cand.location_ids.push_back(dockless[AsIndex(member)]->id);
      net.location_to_candidate[dockless[AsIndex(member)]->id] =
          static_cast<int32_t>(g);
    }
  }

  // Candidate trip graph: one node per candidate, one relationship per trip.
  for (size_t g = 0; g < net.candidates.size(); ++g) {
    const CandidateStation& cand = net.candidates[g];
    graphdb::NodeId node = net.graph.AddNode(
        cand.is_fixed() ? "Station" : "Candidate");
    (void)net.graph.SetNodeProperty(node, "lat", cand.centroid.lat);
    (void)net.graph.SetNodeProperty(node, "lon", cand.centroid.lon);
    (void)net.graph.SetNodeProperty(node, "is_station", cand.is_fixed());
    if (!cand.name.empty()) {
      (void)net.graph.SetNodeProperty(node, "name", cand.name);
    }
  }
  for (const auto& rental : cleaned.rentals()) {
    auto from_it = net.location_to_candidate.find(rental.rental_location_id);
    auto to_it = net.location_to_candidate.find(rental.return_location_id);
    if (from_it == net.location_to_candidate.end() ||
        to_it == net.location_to_candidate.end()) {
      return Status::FailedPrecondition(
          "dataset not cleaned: rental " + std::to_string(rental.id) +
          " references an unmapped location");
    }
    const int32_t from = from_it->second;
    const int32_t to = to_it->second;
    BIKEGRAPH_ASSIGN_OR_RETURN(graphdb::EdgeId edge,
                               net.graph.AddEdge(from, to, "TRIP"));
    (void)net.graph.SetEdgeProperty(edge, "rental_id", rental.id);
    (void)net.graph.SetEdgeProperty(
        edge, "day", static_cast<int64_t>(rental.start_time.weekday()));
    (void)net.graph.SetEdgeProperty(
        edge, "hour", static_cast<int64_t>(rental.start_time.hour()));
    ++net.candidates[AsIndex(from)].trips_from;
    ++net.candidates[AsIndex(to)].trips_to;
  }
  return net;
}

}  // namespace bikegraph::expansion
