#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/result.h"
#include "cluster/geo_cluster.h"
#include "data/dataset.h"
#include "graphdb/property_graph.h"

namespace bikegraph::expansion {

/// \brief One node of the candidate graph: either a pre-existing fixed
/// station (with its absorbed locations) or a candidate station produced by
/// the constrained HAC stage.
struct CandidateStation {
  geo::LatLon centroid;
  /// Location-table ids grouped into this candidate.
  std::vector<int64_t> location_ids;
  /// Trips starting / ending here (self-trips count in both).
  int64_t trips_from = 0;
  int64_t trips_to = 0;
  /// Index into the original station list for fixed stations, else -1.
  int32_t station_index = -1;
  /// Station name for fixed stations.
  std::string name;

  bool is_fixed() const { return station_index >= 0; }
  /// Degree as used by Algorithm 1's ranking: total trip endpoints here.
  int64_t degree() const { return trips_from + trips_to; }
};

/// \brief The candidate graph (paper Fig. 1 / Table II): every group from
/// the constrained clustering becomes a node; every trip becomes a directed
/// relationship between the groups of its endpoints.
struct CandidateNetwork {
  /// Fixed-station groups first (in dataset station order), then free
  /// candidate clusters. Indices equal node ids in `graph`.
  std::vector<CandidateStation> candidates;
  /// Location-table id -> candidate index.
  std::unordered_map<int64_t, int32_t> location_to_candidate;
  /// Trip multigraph over candidates. Node properties: lat, lon,
  /// is_station, name. Edge properties: rental_id, day (0=Mon), hour.
  graphdb::PropertyGraph graph;

  size_t fixed_count = 0;  ///< number of fixed-station nodes
  size_t free_count() const { return candidates.size() - fixed_count; }
};

/// \brief Builds the candidate network from a *cleaned* dataset: splits
/// locations into stations/dockless, runs the constrained clustering
/// (paper §IV-A) and materialises the candidate trip graph.
Result<CandidateNetwork> BuildCandidateNetwork(
    const data::Dataset& cleaned,
    const cluster::GeoClusterParams& params = {});

}  // namespace bikegraph::expansion
