#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/result.h"
#include "data/dataset.h"
#include "expansion/candidate.h"
#include "expansion/selection.h"
#include "graphdb/property_graph.h"

namespace bikegraph::expansion {

/// \brief One station of the expanded network (paper Fig. 2 / Table III):
/// either a pre-existing fixed station or a newly selected one.
struct FinalStation {
  geo::LatLon position;
  bool pre_existing = false;
  std::string name;
  /// Index into CandidateNetwork::candidates this station came from.
  int32_t candidate_index = -1;
};

/// \brief Per-class counters in the shape of the paper's Table III.
struct SelectedGraphStats {
  struct Row {
    size_t stations = 0;
    int64_t trips_from = 0;
    int64_t trips_to = 0;
    size_t edges_from = 0;  ///< distinct directed pairs by source class
    size_t edges_to = 0;    ///< distinct directed pairs by target class
  };
  Row pre_existing;
  Row selected;
  int64_t total_trips = 0;
  size_t total_edges = 0;  ///< distinct directed pairs
};

/// \brief The expanded station network after Algorithm 1 + reassignment.
struct FinalNetwork {
  /// Pre-existing stations first (dataset order), then selected new
  /// stations in ranking order. Indices equal node ids in `graph`.
  std::vector<FinalStation> stations;
  /// Location-table id -> final station index (every cleaned location maps
  /// somewhere; unselected candidates were reassigned to their nearest
  /// station, so no trips are lost — Table III's invariant).
  std::unordered_map<int64_t, int32_t> location_to_station;
  /// Trip multigraph over the final stations. Edge properties: rental_id,
  /// day (0=Mon), hour (0-23).
  graphdb::PropertyGraph graph;
  /// Number of locations whose candidate was not selected and that were
  /// reassigned to the nearest station.
  size_t reassigned_locations = 0;

  size_t pre_existing_count = 0;
  size_t selected_count() const { return stations.size() - pre_existing_count; }

  /// Computes the Table III counters.
  SelectedGraphStats ComputeStats() const;
};

/// \brief Builds the final expanded network: converts the selected
/// candidates into stations and reassigns every location of an unselected
/// candidate to the nearest station (pre-existing or new), then rebuilds the
/// trip multigraph (Algorithm 1 line "unconverted candidate locations are
/// reassigned to the nearest station").
Result<FinalNetwork> BuildFinalNetwork(const data::Dataset& cleaned,
                                       const CandidateNetwork& network,
                                       const SelectionResult& selection);

}  // namespace bikegraph::expansion
