#include "expansion/final_network.h"

#include <unordered_set>

#include "geo/grid_index.h"

#include "core/checked_cast.h"

namespace bikegraph::expansion {

SelectedGraphStats FinalNetwork::ComputeStats() const {
  SelectedGraphStats stats;
  stats.pre_existing.stations = pre_existing_count;
  stats.selected.stations = selected_count();

  auto row_of = [&](int32_t station) -> SelectedGraphStats::Row& {
    return stations[AsIndex(station)].pre_existing ? stats.pre_existing
                                          : stats.selected;
  };

  std::unordered_set<uint64_t> directed_pairs;
  graph.ForEachEdge("TRIP", [&](graphdb::EdgeId e) {
    const int32_t from = static_cast<int32_t>(graph.EdgeFrom(e));
    const int32_t to = static_cast<int32_t>(graph.EdgeTo(e));
    ++row_of(from).trips_from;
    ++row_of(to).trips_to;
    ++stats.total_trips;
    directed_pairs.insert((static_cast<uint64_t>(from) << 32) |
                          static_cast<uint64_t>(to));
  });
  // lint: unordered-iter-ok: order-independent integer counting;
  // per-endpoint edge-count increments commute.
  for (uint64_t key : directed_pairs) {
    const int32_t from = static_cast<int32_t>(key >> 32);
    const int32_t to = static_cast<int32_t>(key & 0xFFFFFFFFULL);
    ++row_of(from).edges_from;
    ++row_of(to).edges_to;
  }
  stats.total_edges = directed_pairs.size();
  return stats;
}

Result<FinalNetwork> BuildFinalNetwork(const data::Dataset& cleaned,
                                       const CandidateNetwork& network,
                                       const SelectionResult& selection) {
  FinalNetwork net;

  // Station list: pre-existing first, then the selected candidates in rank
  // order. Remember candidate -> final-station mapping where one exists.
  std::vector<int32_t> candidate_to_station(network.candidates.size(), -1);
  for (size_t c = 0; c < network.candidates.size(); ++c) {
    const CandidateStation& cand = network.candidates[c];
    if (!cand.is_fixed()) continue;
    FinalStation st;
    st.position = cand.centroid;
    st.pre_existing = true;
    st.name = cand.name;
    st.candidate_index = static_cast<int32_t>(c);
    candidate_to_station[c] = static_cast<int32_t>(net.stations.size());
    net.stations.push_back(std::move(st));
  }
  net.pre_existing_count = net.stations.size();
  for (size_t rank = 0; rank < selection.selected.size(); ++rank) {
    const int32_t c = selection.selected[rank];
    const CandidateStation& cand = network.candidates[AsIndex(c)];
    FinalStation st;
    st.position = cand.centroid;
    st.pre_existing = false;
    st.name = "New Stn #" + std::to_string(rank + 1);
    st.candidate_index = c;
    candidate_to_station[AsIndex(c)] = static_cast<int32_t>(net.stations.size());
    net.stations.push_back(std::move(st));
  }

  // Spatial index over the final stations for nearest-station
  // reassignment — frozen at the build/query boundary (one build, one
  // Nearest query per unassigned location).
  geo::GridIndex station_index(300.0);
  for (size_t s = 0; s < net.stations.size(); ++s) {
    station_index.Add(static_cast<int64_t>(s), net.stations[s].position);
  }
  station_index.Freeze();

  // Map every cleaned location to a final station.
  for (const auto& loc : cleaned.locations()) {
    auto it = network.location_to_candidate.find(loc.id);
    if (it == network.location_to_candidate.end()) {
      return Status::FailedPrecondition(
          "location " + std::to_string(loc.id) +
          " is not part of the candidate network");
    }
    const int32_t candidate = it->second;
    int32_t station = candidate_to_station[AsIndex(candidate)];
    if (station < 0) {
      auto nearest = station_index.Nearest(loc.position);
      if (nearest.id < 0) {
        return Status::FailedPrecondition("final network has no stations");
      }
      station = static_cast<int32_t>(nearest.id);
      ++net.reassigned_locations;
    }
    net.location_to_station[loc.id] = station;
  }

  // Rebuild the trip multigraph over final stations.
  for (const auto& st : net.stations) {
    graphdb::NodeId node = net.graph.AddNode("Station");
    (void)net.graph.SetNodeProperty(node, "lat", st.position.lat);
    (void)net.graph.SetNodeProperty(node, "lon", st.position.lon);
    (void)net.graph.SetNodeProperty(node, "pre_existing", st.pre_existing);
    (void)net.graph.SetNodeProperty(node, "name", st.name);
  }
  for (const auto& rental : cleaned.rentals()) {
    const int32_t from = net.location_to_station.at(rental.rental_location_id);
    const int32_t to = net.location_to_station.at(rental.return_location_id);
    BIKEGRAPH_ASSIGN_OR_RETURN(graphdb::EdgeId edge,
                               net.graph.AddEdge(from, to, "TRIP"));
    (void)net.graph.SetEdgeProperty(edge, "rental_id", rental.id);
    (void)net.graph.SetEdgeProperty(
        edge, "day", static_cast<int64_t>(rental.start_time.weekday()));
    (void)net.graph.SetEdgeProperty(
        edge, "hour", static_cast<int64_t>(rental.start_time.hour()));
  }
  return net;
}

}  // namespace bikegraph::expansion
