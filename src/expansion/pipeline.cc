#include "expansion/pipeline.h"

#include "geo/dublin.h"

namespace bikegraph::expansion {

Result<PipelineResult> RunExpansionPipeline(const data::Dataset& raw,
                                            const geo::Region& land,
                                            const PipelineConfig& config) {
  PipelineResult result;

  BIKEGRAPH_ASSIGN_OR_RETURN(data::CleaningResult cleaned,
                             data::CleanDataset(raw, land));
  result.cleaning_report = cleaned.report;
  result.cleaned = std::move(cleaned.dataset);

  BIKEGRAPH_ASSIGN_OR_RETURN(
      result.candidate_network,
      BuildCandidateNetwork(result.cleaned, config.clustering));

  BIKEGRAPH_ASSIGN_OR_RETURN(
      result.selection,
      SelectStations(result.candidate_network, config.selection));

  BIKEGRAPH_ASSIGN_OR_RETURN(
      result.final_network,
      BuildFinalNetwork(result.cleaned, result.candidate_network,
                        result.selection));
  return result;
}

Result<PipelineResult> RunExpansionPipeline(const data::Dataset& raw,
                                            const PipelineConfig& config) {
  return RunExpansionPipeline(raw, geo::DublinLand(), config);
}

}  // namespace bikegraph::expansion
