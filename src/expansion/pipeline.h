#pragma once

#include "core/result.h"
#include "cluster/geo_cluster.h"
#include "data/cleaning.h"
#include "data/dataset.h"
#include "expansion/candidate.h"
#include "expansion/final_network.h"
#include "expansion/selection.h"

namespace bikegraph::expansion {

/// \brief Configuration of the end-to-end expansion pipeline.
struct PipelineConfig {
  cluster::GeoClusterParams clustering;
  SelectionParams selection;
};

/// \brief Everything the paper's methodology produces, bundled: the
/// cleaning report (Table I), the candidate network (Fig. 1 / Table II),
/// the Algorithm-1 outcome, and the final expanded network
/// (Fig. 2 / Table III).
struct PipelineResult {
  data::CleaningReport cleaning_report;
  data::Dataset cleaned;
  CandidateNetwork candidate_network;
  SelectionResult selection;
  FinalNetwork final_network;
};

/// \brief Runs the full three-step methodology of §IV on a raw dataset:
/// (1) clean + constrained graph construction, (2) station ranking and
/// selection, (3) reassignment into the final expanded network. Community
/// detection (step 3 of the paper) lives in the analysis module and
/// consumes the returned FinalNetwork.
Result<PipelineResult> RunExpansionPipeline(const data::Dataset& raw,
                                            const geo::Region& land,
                                            const PipelineConfig& config = {});

/// \brief Convenience overload using the Dublin land model.
Result<PipelineResult> RunExpansionPipeline(const data::Dataset& raw,
                                            const PipelineConfig& config = {});

}  // namespace bikegraph::expansion
