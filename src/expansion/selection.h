#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/result.h"
#include "expansion/candidate.h"

namespace bikegraph::expansion {

/// \brief Parameters of the station selection algorithm (paper §IV-B,
/// Algorithm 1). Defaults are the paper's settings.
struct SelectionParams {
  /// Rule 4 — Secondary-Distance: a new station must be at least this far
  /// from every pre-existing station, and (via the iterative suppression
  /// loop) from every other accepted new station. The paper uses 0.25 km.
  double secondary_distance_m = 250.0;
  /// Rule 3 — Degree-Threshold: minimum degree. By default the minimum
  /// degree over the pre-existing stations is used (Algorithm 1 line 1);
  /// tests and ablations may override it.
  std::optional<int64_t> degree_threshold_override;
};

/// \brief Why a candidate was rejected (audit trail for the ablation bench
/// and for debugging rule interactions).
enum class RejectionReason {
  kNone = 0,           ///< selected
  kBelowDegree,        ///< Rule 3: degree < threshold
  kNearFixedStation,   ///< Rule 4 vs pre-existing stations
  kSuppressedByPeer,   ///< iterative pairwise suppression (lines 10-16)
};

/// \brief Result of running Algorithm 1.
struct SelectionResult {
  /// Candidate indices (into CandidateNetwork::candidates) accepted as new
  /// stations, sorted by descending score (degree), ties by index.
  std::vector<int32_t> selected;
  /// Per-candidate final score (0 for rejected; degree for selected).
  /// Indexed like CandidateNetwork::candidates; fixed stations hold 0.
  std::vector<int64_t> scores;
  /// Per-candidate rejection reason (kNone for fixed stations & selected).
  std::vector<RejectionReason> reasons;
  /// The degree threshold actually applied (Algorithm 1 line 1).
  int64_t degree_threshold = 0;
  /// Suppression loop iterations until fixpoint.
  int suppression_rounds = 0;

  size_t RejectedCount(RejectionReason reason) const;
};

/// \brief Runs Algorithm 1 (station ranking and selection) over the free
/// candidates of `network`.
///
/// Implementation notes:
///  - Rule 1 (cluster boundary) and Rule 2 (centroid proximity >= 50 m) are
///    enforced structurally by the clustering stage; this routine asserts
///    Rule 2 against fixed stations via the 250 m secondary distance, which
///    subsumes it.
///  - The suppression loop zeroes the lower-degree member of every
///    conflicting pair until no two surviving candidates are within the
///    secondary distance, exactly as lines 10-16 of the paper's pseudocode.
Result<SelectionResult> SelectStations(const CandidateNetwork& network,
                                       const SelectionParams& params = {});

}  // namespace bikegraph::expansion
