#include "expansion/selection.h"

#include <algorithm>
#include <limits>

#include "geo/grid_index.h"
#include "geo/haversine.h"

#include "core/checked_cast.h"

namespace bikegraph::expansion {

size_t SelectionResult::RejectedCount(RejectionReason reason) const {
  size_t c = 0;
  for (RejectionReason r : reasons) {
    if (r == reason) ++c;
  }
  return c;
}

Result<SelectionResult> SelectStations(const CandidateNetwork& network,
                                       const SelectionParams& params) {
  if (params.secondary_distance_m < 0.0) {
    return Status::InvalidArgument("secondary distance must be >= 0");
  }
  const size_t n = network.candidates.size();
  SelectionResult result;
  result.scores.assign(n, 0);
  result.reasons.assign(n, RejectionReason::kNone);

  // Algorithm 1, line 1: threshold = minimum degree of pre-existing
  // stations.
  if (params.degree_threshold_override.has_value()) {
    result.degree_threshold = *params.degree_threshold_override;
  } else {
    int64_t min_degree = std::numeric_limits<int64_t>::max();
    bool any_fixed = false;
    for (const auto& cand : network.candidates) {
      if (!cand.is_fixed()) continue;
      any_fixed = true;
      min_degree = std::min(min_degree, cand.degree());
    }
    if (!any_fixed) {
      return Status::FailedPrecondition(
          "no pre-existing stations to derive the degree threshold from");
    }
    result.degree_threshold = min_degree;
  }

  // Spatial index over fixed stations for the Rule-4 distance check.
  // Built once, queried per candidate: freeze at the build/query
  // boundary so the Nearest loop below runs on the sorted-cell layout
  // (and never lazily mutates the bucket map mid-scoring).
  geo::GridIndex fixed_index(std::max(params.secondary_distance_m, 50.0));
  for (size_t i = 0; i < n; ++i) {
    if (network.candidates[i].is_fixed()) {
      fixed_index.Add(static_cast<int64_t>(i),
                      network.candidates[i].centroid);
    }
  }
  fixed_index.Freeze();

  // Lines 2-9: initial scoring.
  for (size_t i = 0; i < n; ++i) {
    const CandidateStation& cand = network.candidates[i];
    if (cand.is_fixed()) continue;
    if (cand.degree() < result.degree_threshold) {
      result.reasons[i] = RejectionReason::kBelowDegree;
      continue;
    }
    if (!fixed_index.empty()) {
      auto near = fixed_index.Nearest(cand.centroid);
      if (near.id >= 0 && near.distance_m <= params.secondary_distance_m) {
        result.reasons[i] = RejectionReason::kNearFixedStation;
        continue;
      }
    }
    result.scores[i] = cand.degree();
  }

  // Lines 10-16: iterative pairwise suppression among surviving candidates.
  // A grid over survivors finds conflicting pairs without O(n^2) scans.
  bool changed = true;
  std::vector<int32_t> survivors;
  std::vector<int64_t> in_range;  // reused query buffer, sorted per query
  while (changed) {
    changed = false;
    ++result.suppression_rounds;
    geo::GridIndex survivor_index(std::max(params.secondary_distance_m, 50.0));
    survivors.clear();
    for (size_t i = 0; i < n; ++i) {
      if (result.scores[i] > 0) {
        survivor_index.Add(static_cast<int64_t>(i),
                           network.candidates[i].centroid);
        survivors.push_back(static_cast<int32_t>(i));
      }
    }
    // Each suppression round is build-then-query-many, the freeze sweet
    // spot (results are identical either way; the radius visitor's order
    // was never a contract — the sort below pins it).
    survivor_index.Freeze();
    for (int32_t i : survivors) {
      if (result.scores[AsIndex(i)] == 0) continue;  // suppressed earlier this round
      // Ascending-id order keeps the loser choice deterministic, so the
      // visitor fills a reusable buffer that is sorted before use.
      in_range.clear();
      survivor_index.ForEachWithinRadius(
          network.candidates[AsIndex(i)].centroid, params.secondary_distance_m,
          [&](int64_t j, double) { in_range.push_back(j); });
      std::sort(in_range.begin(), in_range.end());
      for (int64_t j : in_range) {
        if (j == i || result.scores[AsIndex(j)] == 0 || result.scores[AsIndex(i)] == 0) continue;
        // Zero the lower-degree member (ties: the higher index loses, so
        // the earlier/denser cluster survives deterministically).
        const int64_t di = network.candidates[AsIndex(i)].degree();
        const int64_t dj = network.candidates[AsIndex(j)].degree();
        int32_t loser;
        if (di != dj) {
          loser = di < dj ? i : static_cast<int32_t>(j);
        } else {
          loser = std::max(i, static_cast<int32_t>(j));
        }
        result.scores[AsIndex(loser)] = 0;
        result.reasons[AsIndex(loser)] = RejectionReason::kSuppressedByPeer;
        changed = true;
      }
    }
  }

  // Lines 17-18: rank the survivors by score, descending.
  for (size_t i = 0; i < n; ++i) {
    if (result.scores[i] > 0) result.selected.push_back(static_cast<int32_t>(i));
  }
  std::sort(result.selected.begin(), result.selected.end(),
            [&](int32_t a, int32_t b) {
              if (result.scores[AsIndex(a)] != result.scores[AsIndex(b)]) {
                return result.scores[AsIndex(a)] > result.scores[AsIndex(b)];
              }
              return a < b;
            });
  return result;
}

}  // namespace bikegraph::expansion
