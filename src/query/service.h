#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "community/detector.h"
#include "core/result.h"
#include "query/epoch_memo.h"
#include "query/query.h"
#include "stream/snapshot.h"

namespace bikegraph::stream {
class StreamEngine;
}  // namespace bikegraph::stream

namespace bikegraph::query {

/// \brief Tuning knobs of a QueryService.
struct QueryServiceOptions {
  /// The detection the memoized partition runs (once per epoch).
  community::DetectSpec detection;
  /// Length of the memoized top-pairs ranking. TopPairs queries with
  /// k <= this limit are served from the memo; larger k recomputes the
  /// full ranking per query (correct, just unmemoized).
  size_t top_pairs_limit = 256;
  /// Memo cells kept alive at once (LRU by epoch: the oldest epoch's
  /// cell is evicted first). Pinned handles keep their cell via
  /// shared_ptr, so eviction never invalidates an in-flight reader.
  size_t memo_epochs = 4;
};

/// \brief Monotonic serving counters, readable from any thread.
struct QueryServiceStats {
  uint64_t pins = 0;
  uint64_t batches = 0;
  uint64_t queries = 0;
  uint64_t query_errors = 0;
  uint64_t community_memo_hits = 0;
  uint64_t community_memo_misses = 0;
  uint64_t pairs_memo_hits = 0;
  uint64_t pairs_memo_misses = 0;
};

/// \brief The concurrent snapshot query-serving layer: epoch-pinned reads
/// over a live `stream::SnapshotPublisher`, with per-epoch memoization of
/// the expensive derived artifacts (community partition, top-pair
/// ranking).
///
/// Thread model (the repo's single-writer / many-reader contract):
///  - the ingestion thread keeps mutating its StreamEngine and publishing
///    epochs; the service never touches the engine's mutating API;
///  - any number of reader threads call Pin() / ExecuteBatch() / the
///    Pinned query methods concurrently, with no reader-side locking on
///    the query path: Pin() is one atomic snapshot load plus one short
///    memo-map critical section, and the queries themselves run on the
///    pinned immutable snapshot.
///
/// Pinning semantics: a `Pinned` handle is a consistent view of exactly
/// one epoch. Every query through it answers from that epoch — bit-
/// identical to the direct computation on the same snapshot — no matter
/// how many newer epochs are published meanwhile. The handle's
/// shared_ptrs keep both the snapshot and its memo cell alive past any
/// publisher hand-off or memo eviction.
class QueryService {
 public:
  /// Serves from `publisher`, which must outlive the service. The
  /// publisher may be empty now and publish later — Pin() reports
  /// FailedPrecondition until the first epoch lands.
  explicit QueryService(const stream::SnapshotPublisher& publisher,
                        QueryServiceOptions options = {});

  /// Serves from `engine.publisher()`; the engine must outlive the
  /// service. Only the publisher hand-off point is touched — safe while
  /// the ingestion thread keeps feeding the engine.
  explicit QueryService(const stream::StreamEngine& engine,
                        QueryServiceOptions options = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// \brief An epoch-pinned read handle: one snapshot, one memo cell.
  ///
  /// Cheap to copy (two shared_ptrs + a back-pointer) and safe to use
  /// from the thread that pinned it; distinct handles are safe on
  /// distinct threads concurrently (all queries are const reads of the
  /// immutable snapshot; memo computation is call_once-guarded).
  /// Must not outlive the service.
  class Pinned {
   public:
    /// The pinned epoch (stable for the handle's lifetime).
    uint64_t epoch() const { return snapshot_->epoch; }
    /// The pinned snapshot itself, for direct reads next to the typed
    /// queries.
    const stream::WindowSnapshot& snapshot() const { return *snapshot_; }
    /// The underlying handle, shareable beyond this Pinned.
    const std::shared_ptr<const stream::WindowSnapshot>& handle() const {
      return snapshot_;
    }

    /// Community label + context for `station` in the epoch's memoized
    /// partition. InvalidArgument for an out-of-range station.
    Result<CommunityOfStationResult> CommunityOf(int32_t station) const;
    /// Communities in the epoch's memoized partition.
    Result<size_t> CommunityCount() const;
    /// The k nearest stations through the snapshot's frozen GridIndex.
    /// FailedPrecondition when the snapshot carries no station index.
    Result<KNearestStationsResult> KNearest(int32_t station, size_t k) const;
    /// Inter-community flow between two labels of the memoized
    /// partition. InvalidArgument for out-of-range labels.
    Result<InterCommunityFlowResult> Flow(int32_t community_a,
                                          int32_t community_b) const;
    /// The k busiest station pairs of the pinned epoch.
    Result<TopPairsResult> TopPairs(size_t k) const;
    /// Day/hour usage profile of `station` in the pinned window.
    Result<StationProfileResult> Profile(int32_t station) const;

    /// Dispatches any vocabulary query to the methods above.
    Result<QueryAnswer> Execute(const Query& q) const;

   private:
    friend class QueryService;
    Pinned(const QueryService* service,
           std::shared_ptr<const stream::WindowSnapshot> snapshot,
           std::shared_ptr<EpochMemo> memo)
        : service_(service),
          snapshot_(std::move(snapshot)),
          memo_(std::move(memo)) {}

    Result<const CommunityArtifacts*> Communities() const;

    const QueryService* service_;
    std::shared_ptr<const stream::WindowSnapshot> snapshot_;
    std::shared_ptr<EpochMemo> memo_;
  };

  /// Pins the publisher's current epoch. FailedPrecondition before the
  /// first publish. Safe from any thread, concurrently with the writer.
  Result<Pinned> Pin() const;

  /// One batch's answers: every query answered from the same pinned
  /// epoch, slot i answering queries[i] (per-slot errors stay in their
  /// slot; the batch itself only fails when there is nothing to pin).
  struct BatchOutcome {
    uint64_t epoch = 0;
    std::vector<Result<QueryAnswer>> answers;
  };

  /// Pins the current epoch once and executes the whole batch against
  /// it — the one-acquire-many-queries path readers should prefer.
  Result<BatchOutcome> ExecuteBatch(std::span<const Query> queries) const;

  /// Executes a batch against an existing pin (same per-slot semantics).
  BatchOutcome ExecuteBatchOn(const Pinned& pinned,
                              std::span<const Query> queries) const;

  /// Point-in-time copy of the serving counters. Safe from any thread.
  QueryServiceStats stats() const;

  /// Memo cells currently retained (<= options().memo_epochs).
  size_t memo_size() const;

  const QueryServiceOptions& options() const { return options_; }

 private:
  /// The memo cell for `epoch`, creating (and bounding the map) under
  /// the memo mutex. Eviction drops the smallest epoch; live Pinned
  /// handles keep evicted cells alive through their shared_ptr.
  std::shared_ptr<EpochMemo> MemoFor(uint64_t epoch) const;

  const stream::SnapshotPublisher* publisher_;
  QueryServiceOptions options_;

  mutable std::mutex memo_mutex_;
  mutable std::map<uint64_t, std::shared_ptr<EpochMemo>> memos_;

  mutable std::atomic<uint64_t> stat_pins_{0};
  mutable std::atomic<uint64_t> stat_batches_{0};
  mutable std::atomic<uint64_t> stat_queries_{0};
  mutable std::atomic<uint64_t> stat_query_errors_{0};
  mutable std::atomic<uint64_t> stat_community_hits_{0};
  mutable std::atomic<uint64_t> stat_community_misses_{0};
  mutable std::atomic<uint64_t> stat_pairs_hits_{0};
  mutable std::atomic<uint64_t> stat_pairs_misses_{0};
};

}  // namespace bikegraph::query
