#include "query/workload.h"

#include <cstdint>

namespace bikegraph::query {

std::vector<Query> MakeWorkloadBatch(const WorkloadSpec& spec,
                                     std::mt19937_64& rng) {
  const auto station = [&]() -> int32_t {
    if (spec.station_count == 0) return 0;
    return static_cast<int32_t>(rng() % spec.station_count);
  };
  const auto community = [&]() -> int32_t {
    if (spec.community_count == 0) return 0;
    return static_cast<int32_t>(rng() % spec.community_count);
  };
  std::vector<Query> batch;
  batch.reserve(spec.batch_size);
  for (size_t i = 0; i < spec.batch_size; ++i) {
    const uint64_t roll = rng() % 10;
    if (roll < 4) {
      batch.push_back(StationProfileQuery{station()});
    } else if (roll < 6) {
      batch.push_back(KNearestStationsQuery{station(), 1 + rng() % 8});
    } else if (roll < 8) {
      batch.push_back(CommunityOfStationQuery{station()});
    } else if (roll < 9) {
      batch.push_back(TopPairsQuery{1 + rng() % 20});
    } else {
      batch.push_back(InterCommunityFlowQuery{community(), community()});
    }
  }
  return batch;
}

}  // namespace bikegraph::query
