#pragma once

#include <cstddef>
#include <random>
#include <vector>

#include "query/query.h"

namespace bikegraph::query {

/// \brief Shape of the synthetic mixed workload the serving bench and the
/// live-monitoring example both drive: per batch slot, 40% station
/// profiles, 20% k-nearest, 20% community-of-station, 10% top pairs,
/// 10% inter-community flow — dashboard-style traffic, dominated by the
/// cheap point lookups with a steady trickle of the memoized heavies.
struct WorkloadSpec {
  /// Stations to draw point queries from (ids 0..station_count-1).
  size_t station_count = 0;
  /// Community labels to draw flow queries from (0..community_count-1).
  /// Use the served partition's count; 0 falls back to label 0.
  size_t community_count = 0;
  /// Queries per generated batch.
  size_t batch_size = 16;
};

/// \brief One batch of the mixed workload, drawn from `rng` (caller seeds
/// it — reproducible workloads are seeded workloads).
std::vector<Query> MakeWorkloadBatch(const WorkloadSpec& spec,
                                     std::mt19937_64& rng);

}  // namespace bikegraph::query
