#include "query/service.h"

#include <algorithm>
#include <utility>

#include "core/checked_cast.h"
#include "stream/engine.h"

namespace bikegraph::query {

namespace {

/// Wraps a typed query result into the variant answer, propagating errors.
template <typename T>
Result<QueryAnswer> ToAnswer(Result<T> r) {
  if (!r.ok()) return r.status();
  return QueryAnswer(std::move(r).ValueOrDie());
}

}  // namespace

QueryService::QueryService(const stream::SnapshotPublisher& publisher,
                           QueryServiceOptions options)
    : publisher_(&publisher), options_(std::move(options)) {}

QueryService::QueryService(const stream::StreamEngine& engine,
                           QueryServiceOptions options)
    : QueryService(engine.publisher(), std::move(options)) {}

Result<QueryService::Pinned> QueryService::Pin() const {
  auto snapshot = publisher_->Current();
  if (snapshot == nullptr) {
    return Status::FailedPrecondition(
        "nothing published yet: pin after the first snapshot epoch");
  }
  stat_pins_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t epoch = snapshot->epoch;
  return Pinned(this, std::move(snapshot), MemoFor(epoch));
}

std::shared_ptr<EpochMemo> QueryService::MemoFor(uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(memo_mutex_);
  auto it = memos_.find(epoch);
  if (it != memos_.end()) return it->second;
  auto cell = std::make_shared<EpochMemo>();
  memos_.emplace(epoch, cell);
  // Bound the map by evicting the oldest epochs. A cell evicted while a
  // Pinned handle still holds it stays alive through that shared_ptr —
  // eviction only stops NEW pins from sharing it.
  while (memos_.size() > options_.memo_epochs && !memos_.empty()) {
    memos_.erase(memos_.begin());
  }
  return cell;
}

Result<const CommunityArtifacts*> QueryService::Pinned::Communities() const {
  bool computed = false;
  auto result =
      memo_->Communities(*snapshot_, service_->options_.detection, &computed);
  (computed ? service_->stat_community_misses_
            : service_->stat_community_hits_)
      .fetch_add(1, std::memory_order_relaxed);
  return result;
}

Result<CommunityOfStationResult> QueryService::Pinned::CommunityOf(
    int32_t station) const {
  BIKEGRAPH_ASSIGN_OR_RETURN(const CommunityArtifacts* art, Communities());
  const auto& assignment = art->detection.partition.assignment;
  if (station < 0 || AsIndex(station) >= assignment.size()) {
    return Status::InvalidArgument("station out of range");
  }
  CommunityOfStationResult result;
  result.community = assignment[AsIndex(station)];
  result.community_size = art->sizes[AsIndex(result.community)];
  result.community_count = art->community_count;
  result.modularity = art->detection.modularity;
  return result;
}

Result<size_t> QueryService::Pinned::CommunityCount() const {
  BIKEGRAPH_ASSIGN_OR_RETURN(const CommunityArtifacts* art, Communities());
  return art->community_count;
}

Result<KNearestStationsResult> QueryService::Pinned::KNearest(
    int32_t station, size_t k) const {
  const geo::GridIndex* index = snapshot_->station_index.get();
  if (index == nullptr) {
    return Status::FailedPrecondition(
        "snapshot carries no station index (engine without "
        "station_positions)");
  }
  if (station < 0 || AsIndex(station) >= index->size()) {
    return Status::InvalidArgument("station out of range");
  }
  KNearestStationsResult result;
  result.neighbors =
      index->KNearest(index->PointOf(station), k, /*exclude_id=*/station);
  return result;
}

Result<InterCommunityFlowResult> QueryService::Pinned::Flow(
    int32_t community_a, int32_t community_b) const {
  BIKEGRAPH_ASSIGN_OR_RETURN(const CommunityArtifacts* art, Communities());
  const size_t c = art->community_count;
  if (community_a < 0 || community_b < 0 || AsIndex(community_a) >= c ||
      AsIndex(community_b) >= c) {
    return Status::InvalidArgument("community label out of range");
  }
  InterCommunityFlowResult result;
  result.flow = art->flow[AsIndex(community_a) * c + AsIndex(community_b)];
  return result;
}

Result<TopPairsResult> QueryService::Pinned::TopPairs(size_t k) const {
  TopPairsResult result;
  if (k <= service_->options_.top_pairs_limit) {
    bool computed = false;
    const auto& ranked = memo_->TopPairs(
        *snapshot_, service_->options_.top_pairs_limit, &computed);
    (computed ? service_->stat_pairs_misses_ : service_->stat_pairs_hits_)
        .fetch_add(1, std::memory_order_relaxed);
    result.pairs.assign(
        ranked.begin(),
        ranked.begin() +
            static_cast<std::ptrdiff_t>(std::min(k, ranked.size())));
    return result;
  }
  // k beyond the memoized limit: compute the ranking for this query
  // alone (counted as a miss — a ranking computation happened).
  service_->stat_pairs_misses_.fetch_add(1, std::memory_order_relaxed);
  result.pairs = ComputeTopPairs(snapshot_->graph, k);
  return result;
}

Result<StationProfileResult> QueryService::Pinned::Profile(
    int32_t station) const {
  const auto& profiles = snapshot_->profiles;
  if (station < 0 || AsIndex(station) >= profiles.day.size()) {
    return Status::InvalidArgument("station out of range");
  }
  StationProfileResult result;
  result.day = profiles.day[AsIndex(station)];
  result.hour = profiles.hour[AsIndex(station)];
  for (double d : result.day) result.endpoint_total += d;
  return result;
}

Result<QueryAnswer> QueryService::Pinned::Execute(const Query& q) const {
  service_->stat_queries_.fetch_add(1, std::memory_order_relaxed);
  auto answer = std::visit(
      [this](const auto& typed) -> Result<QueryAnswer> {
        using Q = std::decay_t<decltype(typed)>;
        if constexpr (std::is_same_v<Q, CommunityOfStationQuery>) {
          return ToAnswer(CommunityOf(typed.station));
        } else if constexpr (std::is_same_v<Q, KNearestStationsQuery>) {
          return ToAnswer(KNearest(typed.station, typed.k));
        } else if constexpr (std::is_same_v<Q, InterCommunityFlowQuery>) {
          return ToAnswer(Flow(typed.community_a, typed.community_b));
        } else if constexpr (std::is_same_v<Q, TopPairsQuery>) {
          return ToAnswer(TopPairs(typed.k));
        } else {
          static_assert(std::is_same_v<Q, StationProfileQuery>);
          return ToAnswer(Profile(typed.station));
        }
      },
      q);
  if (!answer.ok()) {
    service_->stat_query_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  return answer;
}

Result<QueryService::BatchOutcome> QueryService::ExecuteBatch(
    std::span<const Query> queries) const {
  BIKEGRAPH_ASSIGN_OR_RETURN(Pinned pinned, Pin());
  return ExecuteBatchOn(pinned, queries);
}

QueryService::BatchOutcome QueryService::ExecuteBatchOn(
    const Pinned& pinned, std::span<const Query> queries) const {
  stat_batches_.fetch_add(1, std::memory_order_relaxed);
  BatchOutcome outcome;
  outcome.epoch = pinned.epoch();
  outcome.answers.reserve(queries.size());
  for (const Query& q : queries) outcome.answers.push_back(pinned.Execute(q));
  return outcome;
}

QueryServiceStats QueryService::stats() const {
  QueryServiceStats s;
  s.pins = stat_pins_.load(std::memory_order_relaxed);
  s.batches = stat_batches_.load(std::memory_order_relaxed);
  s.queries = stat_queries_.load(std::memory_order_relaxed);
  s.query_errors = stat_query_errors_.load(std::memory_order_relaxed);
  s.community_memo_hits = stat_community_hits_.load(std::memory_order_relaxed);
  s.community_memo_misses =
      stat_community_misses_.load(std::memory_order_relaxed);
  s.pairs_memo_hits = stat_pairs_hits_.load(std::memory_order_relaxed);
  s.pairs_memo_misses = stat_pairs_misses_.load(std::memory_order_relaxed);
  return s;
}

size_t QueryService::memo_size() const {
  std::lock_guard<std::mutex> lock(memo_mutex_);
  return memos_.size();
}

}  // namespace bikegraph::query
