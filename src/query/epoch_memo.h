#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

#include "community/detector.h"
#include "core/result.h"
#include "graphdb/weighted_graph.h"
#include "query/query.h"
#include "stream/snapshot.h"

namespace bikegraph::query {

/// \brief Everything the serving layer derives from one snapshot epoch and
/// is too expensive to recompute per query: the community partition (one
/// `community::Detect` run) plus the structures hung off it.
///
/// Derivation order is deterministic (stations ascending, neighbors
/// ascending), so the bit-identity suite can reproduce every field from
/// the same snapshot by hand.
struct CommunityArtifacts {
  /// The partition and its quality metrics, exactly as Detect returned
  /// them (wall_time_ms is the one nondeterministic field).
  community::CommunityResult detection;
  /// Stations per community (dense labels).
  std::vector<size_t> sizes;
  /// Inter-community flow, a C×C symmetric matrix in row-major order:
  /// flow[a*C + b] = Σ w(u, v) over unordered station pairs with u ∈ a,
  /// v ∈ b, each pair counted once (both triangles carry the value;
  /// the diagonal includes self-loops). Accumulated u-ascending,
  /// neighbor-ascending.
  std::vector<double> flow;
  size_t community_count = 0;
};

/// \brief Runs the service's DetectSpec on the snapshot's graph and builds
/// the flow matrix and size table. Pure function of (snapshot, spec).
Result<CommunityArtifacts> ComputeCommunityArtifacts(
    const stream::WindowSnapshot& snapshot,
    const community::DetectSpec& spec);

/// \brief Ranks the snapshot graph's station pairs (u <= v, self pairs
/// included) by weight descending, ties by (u, v) ascending, and returns
/// the best `limit` of them. Pure function of the graph.
std::vector<TopPair> ComputeTopPairs(const graphdb::WeightedGraph& graph,
                                     size_t limit);

/// \brief One epoch's lazily-computed, compute-once memo cell.
///
/// Shared by every `QueryService::Pinned` handle pinning that epoch. Each
/// artifact family is guarded by its own `std::once_flag`, so N reader
/// threads racing on the first community query of an epoch run exactly
/// one Detect; everyone else blocks on that once_flag and then reads the
/// published value (the call_once completion synchronizes-with the
/// blocked callers). Queries that never need an artifact never pay for
/// it — a profile-only workload computes nothing.
class EpochMemo {
 public:
  /// The community artifacts for `snapshot`, computing them on first call
  /// with `spec`. Thread-safe; compute-once per memo cell. A failed
  /// Detect is also memoized: every caller sees the same error.
  /// `computed` (optional) reports whether *this* call did the work —
  /// the service's hit/miss accounting.
  Result<const CommunityArtifacts*> Communities(
      const stream::WindowSnapshot& snapshot,
      const community::DetectSpec& spec, bool* computed = nullptr);

  /// The top-`limit` pair ranking for `snapshot`, computing it on first
  /// call. Thread-safe; compute-once per memo cell. The limit is fixed by
  /// the service's options, so every caller asks for the same ranking.
  const std::vector<TopPair>& TopPairs(const stream::WindowSnapshot& snapshot,
                                       size_t limit,
                                       bool* computed = nullptr);

 private:
  std::once_flag community_once_;
  std::once_flag pairs_once_;
  // Written exactly once inside the call_once body; read only after the
  // corresponding call_once returns (which synchronizes).
  Status community_status_ = Status::OK();
  std::optional<CommunityArtifacts> community_;
  std::vector<TopPair> top_pairs_;
};

}  // namespace bikegraph::query
