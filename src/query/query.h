#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <variant>
#include <vector>

#include "geo/grid_index.h"

namespace bikegraph::query {

/// \file query.h
/// \brief The serving layer's typed query vocabulary (see docs/SERVING.md).
///
/// Every query is answered from one epoch-pinned, immutable
/// `stream::WindowSnapshot` — a plain value a reader thread holds while
/// the ingestion thread keeps publishing newer epochs. The vocabulary is
/// deliberately small and closed (a std::variant, not an interface
/// hierarchy): batch execution dispatches without allocation, and every
/// query has a hand-derivable reference answer the bit-identity suite
/// (tests/query_service_test.cc) checks against the same snapshot.

/// \brief Which community a station belongs to, in the snapshot's
/// memoized partition (computed once per epoch with the service's
/// configured DetectSpec).
struct CommunityOfStationQuery {
  int32_t station = 0;
};

/// \brief The answer: the station's community label, that community's
/// size, and the partition-level context a dashboard wants alongside.
struct CommunityOfStationResult {
  int32_t community = 0;
  /// Stations in that community.
  size_t community_size = 0;
  /// Communities in the whole partition.
  size_t community_count = 0;
  /// Modularity of the memoized partition.
  double modularity = 0.0;
};

/// \brief The k stations nearest to `station` (itself excluded), through
/// the snapshot's frozen GridIndex. Requires the snapshot to carry a
/// station index (engines configured with station_positions).
struct KNearestStationsQuery {
  int32_t station = 0;
  size_t k = 5;
};

/// \brief Ascending by distance, ties by station id — exactly
/// `geo::GridIndex::KNearest` order.
struct KNearestStationsResult {
  std::vector<geo::GridIndex::Neighbor> neighbors;
};

/// \brief Total edge weight the snapshot's graph carries between two
/// communities of the memoized partition (a == b sums the intra-community
/// weight, self-loops included).
struct InterCommunityFlowQuery {
  int32_t community_a = 0;
  int32_t community_b = 0;
};

struct InterCommunityFlowResult {
  /// Σ w(u, v) over unordered station pairs with u in a, v in b (each
  /// pair counted once; for a == b this includes self-loops).
  double flow = 0.0;
};

/// \brief The k busiest station pairs of the snapshot, ranked by graph
/// edge weight (for the GBasic projection that is exactly the trip
/// count), descending; ties by (u, v) ascending so the ranking is
/// deterministic. Self pairs (loop trips) are ranked too.
struct TopPairsQuery {
  size_t k = 10;
};

struct TopPair {
  int32_t u = 0;
  int32_t v = 0;  ///< u <= v (u == v is a loop-trip pair)
  double weight = 0.0;
};

struct TopPairsResult {
  std::vector<TopPair> pairs;
};

/// \brief One station's day-of-week / hour-of-day usage profile in the
/// snapshot's window (the paper's GDay/GHour features).
struct StationProfileQuery {
  int32_t station = 0;
};

struct StationProfileResult {
  std::array<double, 7> day{};    ///< Monday first
  std::array<double, 24> hour{};
  /// Trip endpoints touching the station in the window (2x loop trips).
  double endpoint_total = 0.0;
};

/// \brief Any query in the serving vocabulary — the unit QueryBatch
/// executes over one snapshot acquire.
using Query = std::variant<CommunityOfStationQuery, KNearestStationsQuery,
                           InterCommunityFlowQuery, TopPairsQuery,
                           StationProfileQuery>;

/// \brief Any answer, index-aligned with the Query alternatives.
using QueryAnswer =
    std::variant<CommunityOfStationResult, KNearestStationsResult,
                 InterCommunityFlowResult, TopPairsResult,
                 StationProfileResult>;

}  // namespace bikegraph::query
