#include "query/epoch_memo.h"

#include <algorithm>

#include "core/checked_cast.h"

namespace bikegraph::query {

Result<CommunityArtifacts> ComputeCommunityArtifacts(
    const stream::WindowSnapshot& snapshot,
    const community::DetectSpec& spec) {
  CommunityArtifacts art;
  BIKEGRAPH_ASSIGN_OR_RETURN(art.detection,
                             community::Detect(snapshot.graph, spec));
  art.sizes = art.detection.partition.CommunitySizes();
  art.community_count = art.sizes.size();

  const auto& part = art.detection.partition.assignment;
  const auto& graph = snapshot.graph;
  const size_t c = art.community_count;
  art.flow.assign(c * c, 0.0);
  // Upper triangle first, in (u ascending, neighbor ascending) order —
  // the accumulation order the bit-identity suite reproduces.
  for (size_t u = 0; u < graph.node_count(); ++u) {
    const auto iu = static_cast<int32_t>(u);
    const size_t cu = AsIndex(part[u]);
    art.flow[cu * c + cu] += graph.self_weight(iu);
    for (const auto& nb : graph.neighbors(iu)) {
      if (nb.node <= iu) continue;  // each unordered pair counted once
      const size_t cv = AsIndex(part[AsIndex(nb.node)]);
      art.flow[std::min(cu, cv) * c + std::max(cu, cv)] += nb.weight;
    }
  }
  for (size_t a = 0; a < c; ++a) {
    for (size_t b = a + 1; b < c; ++b) {
      art.flow[b * c + a] = art.flow[a * c + b];
    }
  }
  return art;
}

std::vector<TopPair> ComputeTopPairs(const graphdb::WeightedGraph& graph,
                                     size_t limit) {
  std::vector<TopPair> pairs;
  pairs.reserve(graph.edge_count() + graph.self_loop_count());
  for (size_t u = 0; u < graph.node_count(); ++u) {
    const auto iu = static_cast<int32_t>(u);
    const double self = graph.self_weight(iu);
    if (self > 0.0) pairs.push_back({iu, iu, self});
    for (const auto& nb : graph.neighbors(iu)) {
      if (nb.node > iu) pairs.push_back({iu, nb.node, nb.weight});
    }
  }
  const auto keep =
      static_cast<std::ptrdiff_t>(std::min(limit, pairs.size()));
  std::partial_sort(pairs.begin(), pairs.begin() + keep, pairs.end(),
                    [](const TopPair& a, const TopPair& b) {
                      if (a.weight > b.weight) return true;
                      if (b.weight > a.weight) return false;
                      if (a.u != b.u) return a.u < b.u;
                      return a.v < b.v;
                    });
  pairs.resize(static_cast<size_t>(keep));
  return pairs;
}

Result<const CommunityArtifacts*> EpochMemo::Communities(
    const stream::WindowSnapshot& snapshot, const community::DetectSpec& spec,
    bool* computed) {
  bool did_compute = false;
  std::call_once(community_once_, [&] {
    did_compute = true;
    auto result = ComputeCommunityArtifacts(snapshot, spec);
    if (result.ok()) {
      community_ = std::move(result).ValueOrDie();
    } else {
      community_status_ = result.status();
    }
  });
  if (computed != nullptr) *computed = did_compute;
  if (!community_status_.ok()) return community_status_;
  return &*community_;
}

const std::vector<TopPair>& EpochMemo::TopPairs(
    const stream::WindowSnapshot& snapshot, size_t limit, bool* computed) {
  bool did_compute = false;
  std::call_once(pairs_once_, [&] {
    did_compute = true;
    top_pairs_ = ComputeTopPairs(snapshot.graph, limit);
  });
  if (computed != nullptr) *computed = did_compute;
  return top_pairs_;
}

}  // namespace bikegraph::query
