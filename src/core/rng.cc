#include "core/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace bikegraph {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextExponential(double lambda) {
  assert(lambda > 0.0);
  double u = NextDouble();
  while (u <= 0.0) u = NextDouble();
  return -std::log(u) / lambda;
}

int Rng::NextPoisson(double mean) {
  assert(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction, clamped at zero.
    double v = NextGaussian(mean, std::sqrt(mean)) + 0.5;
    return v < 0.0 ? 0 : static_cast<int>(v);
  }
  const double limit = std::exp(-mean);
  double product = NextDouble();
  int count = 0;
  while (product > limit) {
    product *= NextDouble();
    ++count;
  }
  return count;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  assert(total > 0.0);
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace bikegraph
