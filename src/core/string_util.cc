#include "core/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace bikegraph {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

Result<int64_t> ParseInt(std::string_view text) {
  std::string t(Trim(text));
  if (t.empty()) return Status::DataLoss("empty integer field");
  errno = 0;
  char* end = nullptr;
  int64_t value = std::strtoll(t.c_str(), &end, 10);
  if (errno == ERANGE) return Status::OutOfRange("integer overflow: " + t);
  if (end != t.c_str() + t.size()) {
    return Status::DataLoss("invalid integer: '" + t + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view text) {
  std::string t(Trim(text));
  if (t.empty()) return Status::DataLoss("empty numeric field");
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(t.c_str(), &end);
  if (errno == ERANGE) return Status::OutOfRange("double overflow: " + t);
  if (end != t.c_str() + t.size()) {
    return Status::DataLoss("invalid number: '" + t + "'");
  }
  return value;
}

std::string FormatDouble(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string FormatWithCommas(int64_t value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (value < 0) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace bikegraph
