#pragma once

#include <sstream>
#include <string>

namespace bikegraph {

/// \brief Severity levels for the library logger, in increasing order.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Minimal leveled logger used by the library.
///
/// The logger writes to stderr with a `[LEVEL] message` prefix. The global
/// threshold defaults to `kWarning` so that library internals stay quiet in
/// tests and benchmarks; examples raise it to `kInfo`.
class Logger {
 public:
  /// Sets the global minimum level that will be emitted.
  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();

  /// Emits `message` at `level` if it passes the threshold.
  static void Log(LogLevel level, const std::string& message);
};

namespace internal {

/// Stream-style log statement collector; emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Log(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define BIKEGRAPH_LOG(level) \
  ::bikegraph::internal::LogMessage(::bikegraph::LogLevel::k##level)

}  // namespace bikegraph
