#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/result.h"

namespace bikegraph {

/// \brief Splits `text` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char delim);

/// \brief Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// \brief Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// \brief Case-sensitive prefix/suffix checks.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// \brief ASCII lower-casing.
std::string ToLower(std::string_view text);

/// \brief Strict numeric parsing: the whole (trimmed) string must parse.
Result<int64_t> ParseInt(std::string_view text);
Result<double> ParseDouble(std::string_view text);

/// \brief Formats `value` with `decimals` digits after the point.
std::string FormatDouble(double value, int decimals);

/// \brief Formats an integer with thousands separators ("61,872"), matching
/// the paper's table style.
std::string FormatWithCommas(int64_t value);

}  // namespace bikegraph
