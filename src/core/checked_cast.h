#pragma once

#include <cassert>
#include <cstddef>
#include <type_traits>

namespace bikegraph {

/// \brief Signed-to-`size_t` container-index cast, debug-checked.
///
/// The graph layers address everything by signed ids (`int32_t` station
/// slots, `NodeId`/`EdgeId`) because -1 is the universal "no such"
/// sentinel, while the standard containers index by `size_t`. Under the
/// tree-wide `-Wsign-conversion -Werror` floor every such subscript must
/// say what it means: `AsIndex(i)` asserts non-negativity in debug builds
/// and compiles to the bare cast in release — unlike a naked
/// `static_cast<size_t>`, a sentinel that leaks into an index trips an
/// assert instead of wrapping to 2^64-ish and scribbling.
template <typename T>
constexpr size_t AsIndex(T v) {
  static_assert(std::is_integral_v<T>, "AsIndex takes integers");
  if constexpr (std::is_signed_v<T>) {
    assert(v >= 0 && "negative value used as container index");
  }
  return static_cast<size_t>(v);
}

/// \brief Value-preserving narrowing cast, debug-checked.
///
/// For counters and wire fields that must shrink (size_t -> uint32_t,
/// int64 -> int32): asserts the round trip is exact (value and sign) in
/// debug builds, compiles to the bare cast in release.
template <typename To, typename From>
constexpr To CheckedNarrow(From v) {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                "CheckedNarrow takes integers");
  const To narrowed = static_cast<To>(v);
  assert(static_cast<From>(narrowed) == v &&
         ((narrowed < To{}) == (v < From{})) &&
         "narrowing conversion changed the value");
  return narrowed;
}

}  // namespace bikegraph
