#include "core/io_env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>

// The one file where raw I/O syscalls are legal (the `naked-io-syscall`
// lint pins the whole durability protocol onto this seam; see
// docs/STATIC_ANALYSIS.md).

namespace bikegraph {

namespace fs = std::filesystem;

IoEnv::~IoEnv() = default;

int IoEnv::Open(const char* path, int flags, unsigned int mode) {
  return ::open(path, flags, static_cast<mode_t>(mode));
}

int64_t IoEnv::Write(int fd, const void* data, size_t size) {
  return static_cast<int64_t>(::write(fd, data, size));
}

int IoEnv::Fsync(int fd) { return ::fsync(fd); }

int IoEnv::Rename(const char* from, const char* to) {
  return ::rename(from, to);
}

int IoEnv::Unlink(const char* path) { return ::unlink(path); }

int IoEnv::FsyncDir(const char* path) {
  const int fd = ::open(path, O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return -1;
  }
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  errno = saved_errno;
  return rc;
}

int IoEnv::Truncate(int fd, int64_t size) {
  return ::ftruncate(fd, static_cast<off_t>(size));
}

int IoEnv::Close(int fd) { return ::close(fd); }

void IoEnv::SleepMs(int64_t ms) {
  if (ms <= 0) {
    return;
  }
  timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000);
  // lint: thread-ok: nanosleep is the backoff clock, not synchronization.
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

IoEnv* IoEnv::Default() {
  static IoEnv env;
  return &env;
}

namespace {

uint64_t RealFileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return 0;
  }
  return st.st_size >= 0 ? static_cast<uint64_t>(st.st_size) : 0;
}

bool SameDirectory(const std::string& file, const std::string& directory) {
  return fs::path(file).lexically_normal().parent_path() ==
         fs::path(directory).lexically_normal();
}

}  // namespace

FaultInjectingIoEnv::FaultInjectingIoEnv(FaultPlan plan)
    : plan_(std::move(plan)) {}

FaultInjectingIoEnv::~FaultInjectingIoEnv() = default;

void FaultInjectingIoEnv::AddRule(const FaultPlan::Rule& rule) {
  plan_.rules.push_back(rule);
}

const FaultPlan::Rule* FaultInjectingIoEnv::Match(
    IoOp op, uint64_t idx, const std::string& path) const {
  for (const FaultPlan::Rule& rule : plan_.rules) {
    if (rule.op != op || idx < rule.after || idx - rule.after >= rule.count) {
      continue;
    }
    if (!rule.path_substr.empty() &&
        path.find(rule.path_substr) == std::string::npos) {
      continue;
    }
    return &rule;
  }
  return nullptr;
}

std::string FaultInjectingIoEnv::PathOf(int fd) const {
  const auto it = fds_.find(fd);
  return it == fds_.end() ? std::string() : it->second;
}

FaultInjectingIoEnv::FileState* FaultInjectingIoEnv::Tracked(
    const std::string& path) {
  const auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

int FaultInjectingIoEnv::Open(const char* path, int flags,
                              unsigned int mode) {
  const uint64_t idx = op_counts_[static_cast<size_t>(IoOp::kOpen)]++;
  if (const FaultPlan::Rule* rule = Match(IoOp::kOpen, idx, path)) {
    switch (rule->kind) {
      case FaultPlan::Kind::kError:
        ++faults_injected_;
        errno = rule->error;
        return -1;
      case FaultPlan::Kind::kEintrStorm:
        ++faults_injected_;
        errno = EINTR;
        return -1;
      case FaultPlan::Kind::kShortWrite:
      case FaultPlan::Kind::kSyncLie:
        break;  // meaningless for open; pass through
    }
  }
  const bool existed = ::access(path, F_OK) == 0;
  const int fd = IoEnv::Open(path, flags, mode);
  if (fd < 0) {
    return fd;
  }
  auto it = files_.find(path);
  if (it == files_.end()) {
    FileState state;
    if (existed) {
      // First sight of a pre-existing file: its current content predates
      // this environment and is treated as durable.
      state.size = RealFileSize(path);
      state.synced = state.size;
    } else {
      pending_creates_.push_back(path);
    }
    it = files_.emplace(path, state).first;
  }
  if (existed && (flags & O_TRUNC) != 0) {
    it->second.size = 0;
    it->second.synced = 0;
  }
  fds_[fd] = path;
  return fd;
}

int64_t FaultInjectingIoEnv::Write(int fd, const void* data, size_t size) {
  const uint64_t idx = op_counts_[static_cast<size_t>(IoOp::kWrite)]++;
  const std::string path = PathOf(fd);
  size_t effective = size;
  if (const FaultPlan::Rule* rule = Match(IoOp::kWrite, idx, path)) {
    switch (rule->kind) {
      case FaultPlan::Kind::kError:
        ++faults_injected_;
        errno = rule->error;
        return -1;
      case FaultPlan::Kind::kEintrStorm:
        ++faults_injected_;
        errno = EINTR;
        return -1;
      case FaultPlan::Kind::kShortWrite:
        if (size > 1) {
          effective = size / 2;
          ++faults_injected_;
        }
        break;
      case FaultPlan::Kind::kSyncLie:
        break;  // meaningless for write; pass through
    }
  }
  if (plan_.disk_capacity_bytes > 0) {
    if (disk_used_ >= plan_.disk_capacity_bytes) {
      ++faults_injected_;
      errno = ENOSPC;
      return -1;
    }
    // A nearly-full disk writes what fits and the next attempt hits
    // ENOSPC — the short-write-then-fail shape real filesystems produce.
    effective = std::min<uint64_t>(effective,
                                   plan_.disk_capacity_bytes - disk_used_);
  }
  const int64_t written = IoEnv::Write(fd, data, effective);
  if (written > 0) {
    disk_used_ += static_cast<uint64_t>(written);
    if (FileState* file = Tracked(path)) {
      file->size += static_cast<uint64_t>(written);
    }
  }
  return written;
}

int FaultInjectingIoEnv::Fsync(int fd) {
  const uint64_t idx = op_counts_[static_cast<size_t>(IoOp::kFsync)]++;
  const std::string path = PathOf(fd);
  if (const FaultPlan::Rule* rule = Match(IoOp::kFsync, idx, path)) {
    switch (rule->kind) {
      case FaultPlan::Kind::kError:
        ++faults_injected_;
        errno = rule->error;
        return -1;
      case FaultPlan::Kind::kEintrStorm:
        ++faults_injected_;
        errno = EINTR;
        return -1;
      case FaultPlan::Kind::kSyncLie:
        // Report success without marking anything durable: the caller's
        // bytes stay in the crash-vulnerable window.
        ++faults_injected_;
        return 0;
      case FaultPlan::Kind::kShortWrite:
        break;  // meaningless for fsync; pass through
    }
  }
  const int rc = IoEnv::Fsync(fd);
  if (rc == 0) {
    if (FileState* file = Tracked(path)) {
      file->synced = file->size;
    }
  }
  return rc;
}

int FaultInjectingIoEnv::Rename(const char* from, const char* to) {
  const uint64_t idx = op_counts_[static_cast<size_t>(IoOp::kRename)]++;
  const std::string joined = std::string(from) + "|" + to;
  if (const FaultPlan::Rule* rule = Match(IoOp::kRename, idx, joined)) {
    switch (rule->kind) {
      case FaultPlan::Kind::kError:
        ++faults_injected_;
        errno = rule->error;
        return -1;
      case FaultPlan::Kind::kEintrStorm:
        ++faults_injected_;
        errno = EINTR;
        return -1;
      case FaultPlan::Kind::kShortWrite:
      case FaultPlan::Kind::kSyncLie:
        break;  // meaningless for rename; pass through
    }
  }
  const int rc = IoEnv::Rename(from, to);
  if (rc == 0) {
    const auto it = files_.find(from);
    if (it != files_.end()) {
      files_[to] = it->second;
      files_.erase(it);
    }
    for (auto& [fd, fd_path] : fds_) {
      (void)fd;
      if (fd_path == from) {
        fd_path = to;
      }
    }
    pending_renames_.emplace_back(from, to);
  }
  return rc;
}

int FaultInjectingIoEnv::Unlink(const char* path) {
  const uint64_t idx = op_counts_[static_cast<size_t>(IoOp::kUnlink)]++;
  if (const FaultPlan::Rule* rule = Match(IoOp::kUnlink, idx, path)) {
    switch (rule->kind) {
      case FaultPlan::Kind::kError:
        ++faults_injected_;
        errno = rule->error;
        return -1;
      case FaultPlan::Kind::kEintrStorm:
        ++faults_injected_;
        errno = EINTR;
        return -1;
      case FaultPlan::Kind::kShortWrite:
      case FaultPlan::Kind::kSyncLie:
        break;  // meaningless for unlink; pass through
    }
  }
  const FileState* file = Tracked(path);
  const uint64_t freed = file != nullptr ? file->size : RealFileSize(path);
  const int rc = IoEnv::Unlink(path);
  if (rc == 0) {
    disk_used_ -= std::min(disk_used_, freed);
    files_.erase(path);
    pending_creates_.erase(
        std::remove(pending_creates_.begin(), pending_creates_.end(), path),
        pending_creates_.end());
    // A rename whose target was unlinked can no longer be undone; the
    // crash outcome for that path is "gone" either way.
    pending_renames_.erase(
        std::remove_if(pending_renames_.begin(), pending_renames_.end(),
                       [&](const auto& entry) { return entry.second == path; }),
        pending_renames_.end());
  }
  return rc;
}

int FaultInjectingIoEnv::FsyncDir(const char* path) {
  const uint64_t idx = op_counts_[static_cast<size_t>(IoOp::kFsyncDir)]++;
  if (const FaultPlan::Rule* rule = Match(IoOp::kFsyncDir, idx, path)) {
    switch (rule->kind) {
      case FaultPlan::Kind::kError:
        ++faults_injected_;
        errno = rule->error;
        return -1;
      case FaultPlan::Kind::kEintrStorm:
        ++faults_injected_;
        errno = EINTR;
        return -1;
      case FaultPlan::Kind::kSyncLie:
        // Claims the metadata barrier happened; the pending creates and
        // renames stay crash-vulnerable.
        ++faults_injected_;
        return 0;
      case FaultPlan::Kind::kShortWrite:
        break;  // meaningless for fsyncdir; pass through
    }
  }
  const int rc = IoEnv::FsyncDir(path);
  if (rc == 0) {
    pending_creates_.erase(
        std::remove_if(pending_creates_.begin(), pending_creates_.end(),
                       [&](const std::string& p) {
                         return SameDirectory(p, path);
                       }),
        pending_creates_.end());
    pending_renames_.erase(
        std::remove_if(pending_renames_.begin(), pending_renames_.end(),
                       [&](const auto& entry) {
                         return SameDirectory(entry.second, path);
                       }),
        pending_renames_.end());
  }
  return rc;
}

int FaultInjectingIoEnv::Truncate(int fd, int64_t size) {
  const uint64_t idx = op_counts_[static_cast<size_t>(IoOp::kTruncate)]++;
  const std::string path = PathOf(fd);
  if (const FaultPlan::Rule* rule = Match(IoOp::kTruncate, idx, path)) {
    switch (rule->kind) {
      case FaultPlan::Kind::kError:
        ++faults_injected_;
        errno = rule->error;
        return -1;
      case FaultPlan::Kind::kEintrStorm:
        ++faults_injected_;
        errno = EINTR;
        return -1;
      case FaultPlan::Kind::kShortWrite:
      case FaultPlan::Kind::kSyncLie:
        break;  // meaningless for truncate; pass through
    }
  }
  const int rc = IoEnv::Truncate(fd, size);
  if (rc == 0) {
    if (FileState* file = Tracked(path)) {
      const uint64_t new_size =
          size >= 0 ? static_cast<uint64_t>(size) : 0;
      if (new_size < file->size) {
        disk_used_ -= std::min(disk_used_, file->size - new_size);
      }
      file->size = new_size;
      file->synced = std::min(file->synced, new_size);
    }
  }
  return rc;
}

int FaultInjectingIoEnv::Close(int fd) {
  fds_.erase(fd);
  return IoEnv::Close(fd);
}

void FaultInjectingIoEnv::SleepMs(int64_t ms) {
  sleep_log_.push_back(ms);
  virtual_now_ms_ += ms;
}

void FaultInjectingIoEnv::SimulateCrash() {
  ++crash_count_;
  // Metadata first, newest-first: a rename the directory never committed
  // rolls back to the old name; a create it never committed disappears.
  for (auto it = pending_renames_.rbegin(); it != pending_renames_.rend();
       ++it) {
    if (::rename(it->second.c_str(), it->first.c_str()) == 0) {
      const auto state = files_.find(it->second);
      if (state != files_.end()) {
        files_[it->first] = state->second;
        files_.erase(state);
      }
    }
  }
  pending_renames_.clear();
  for (auto it = pending_creates_.rbegin(); it != pending_creates_.rend();
       ++it) {
    if (::unlink(it->c_str()) == 0 || errno == ENOENT) {
      files_.erase(*it);
    }
  }
  pending_creates_.clear();
  // Data second: every surviving file keeps only what a truthful fsync
  // covered (a lying fsync left `synced` behind `size` — this is where
  // the lie lands).
  for (auto& [path, file] : files_) {
    if (file.size > file.synced) {
      if (::truncate(path.c_str(), static_cast<off_t>(file.synced)) == 0) {
        disk_used_ -= std::min(disk_used_, file.size - file.synced);
        file.size = file.synced;
      }
    }
  }
}

}  // namespace bikegraph
