#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace bikegraph {

/// \brief Deterministic 64-bit pseudo-random number generator
/// (xoshiro256**), seeded via SplitMix64.
///
/// Every stochastic component in the library (synthetic data generation,
/// Louvain node shuffling, label propagation) takes an explicit seed and
/// draws from an `Rng` instance so that experiments are reproducible
/// run-to-run and across platforms — the generator's output sequence is
/// fully specified, unlike `std::mt19937` + `std::*_distribution`, whose
/// distribution algorithms are implementation-defined.
class Rng {
 public:
  /// Seeds the generator. Two `Rng`s with the same seed produce identical
  /// sequences.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) using Lemire rejection; bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box–Muller (deterministic pairing).
  double NextGaussian();

  /// Normal with given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Exponential with the given rate (lambda > 0).
  double NextExponential(double lambda);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  int NextPoisson(double mean);

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// Non-positive weights are treated as zero; requires a positive total.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->size() < 2) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace bikegraph
