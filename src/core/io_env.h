#pragma once

#include <array>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace bikegraph {

/// \brief The I/O operations the durability protocol performs, named so a
/// fault plan can target them individually (see FaultPlan::Rule).
enum class IoOp : uint8_t {
  kOpen = 0,
  kWrite,
  kFsync,
  kRename,
  kUnlink,
  kFsyncDir,
  kTruncate,
};
inline constexpr size_t kIoOpCount = 7;

/// \brief The syscall seam under the durability protocol. Every raw
/// `::open/::write/::fsync/::rename/::unlink` the WAL writer, checkpoint
/// commit, and WAL repair perform goes through one of these virtual
/// methods (enforced by the `naked-io-syscall` lint), so tests can
/// substitute a FaultInjectingIoEnv and exercise ENOSPC, EINTR storms,
/// short writes, torn renames, and lying fsyncs deterministically.
///
/// The base class *is* the production implementation: a zero-cost
/// passthrough to the POSIX calls (one predictable virtual dispatch per
/// I/O operation — invisible next to the syscall itself; the bench guard
/// in BENCH_perf.json holds WAL-on ingest within 1.15× of the pre-seam
/// numbers). All methods follow POSIX conventions: -1 with `errno` set on
/// failure, except Write which returns the byte count (possibly short).
///
/// Thread model: the engine serializes all durable I/O on the ingestion
/// thread; IoEnv implementations are not required to be thread-safe.
class IoEnv {
 public:
  virtual ~IoEnv();

  /// `::open(path, flags, mode)`.
  virtual int Open(const char* path, int flags, unsigned int mode);
  /// `::write(fd, data, size)`; short writes are legal per POSIX and the
  /// callers loop.
  virtual int64_t Write(int fd, const void* data, size_t size);
  /// `::fsync(fd)`.
  virtual int Fsync(int fd);
  /// `::rename(from, to)`.
  virtual int Rename(const char* from, const char* to);
  /// `::unlink(path)`.
  virtual int Unlink(const char* path);
  /// Opens `path` as a directory and fsyncs it (the rename/create
  /// metadata barrier of the commit protocols in docs/DURABILITY.md).
  virtual int FsyncDir(const char* path);
  /// `::ftruncate(fd, size)` (WAL torn-tail repair).
  virtual int Truncate(int fd, int64_t size);
  /// `::close(fd)`.
  virtual int Close(int fd);

  /// Blocks for `ms` milliseconds — the retry-backoff clock (see
  /// DurabilityConfig::faults). Virtual so tests can inject a clock that
  /// records instead of sleeping; production nanosleeps.
  virtual void SleepMs(int64_t ms);

  /// The process-wide production environment (the passthrough above).
  static IoEnv* Default();
};

/// \brief A deterministic, seeded schedule of injected I/O faults.
///
/// Grammar: a plan is (a) a list of rules, each targeting one IoOp over a
/// half-open window of that op's call indices, plus (b) an optional
/// simulated disk capacity. Call indices count per-op across the whole
/// environment lifetime (the 0th fsync, the 7th write, ...), so the same
/// plan against the same workload injects the same faults — no wall
/// clock, no global RNG (randomized plans are drawn up front from a
/// seeded bikegraph::Rng by stream::MakeRandomFaultPlan).
struct FaultPlan {
  enum class Kind : uint8_t {
    /// The call fails with `error` for every call in the window.
    kError,
    /// Write only: the call writes at most half the requested bytes (a
    /// legal POSIX short write; callers must loop).
    kShortWrite,
    /// The call fails with EINTR for every call in the window (the
    /// signal-storm scenario; callers must retry for free).
    kEintrStorm,
    /// Fsync/FsyncDir only: the call *reports success* without making
    /// anything durable — the lying-fsync scenario. The lie becomes
    /// visible at SimulateCrash(), which drops the un-durable bytes and
    /// metadata the caller believed were safe.
    kSyncLie,
  };
  struct Rule {
    IoOp op = IoOp::kWrite;
    Kind kind = Kind::kError;
    /// Fires on matching calls with per-op index in [after, after+count).
    uint64_t after = 0;
    uint64_t count = 1;
    /// errno injected by kError.
    int error = EIO;
    /// When non-empty, the rule applies only to paths containing this
    /// substring (e.g. "ckpt-" to target checkpoint files). The per-op
    /// index still counts every call of the op.
    std::string path_substr;
  };
  std::vector<Rule> rules;
  /// Simulated disk: total bytes writable through the environment before
  /// Write fails with ENOSPC. Unlinking a file credits its bytes back —
  /// which is exactly what the WAL writer's ENOSPC self-heal (prune old
  /// segments, retry) relies on. 0 = unlimited.
  uint64_t disk_capacity_bytes = 0;
};

/// \brief An IoEnv that executes real I/O but injects the faults a
/// FaultPlan schedules, and models crash durability: it tracks, per file,
/// how many bytes a *truthful* fsync has made durable and which creates/
/// renames a directory fsync has committed, so SimulateCrash() can roll
/// the real filesystem back to exactly what a power cut would have left.
///
/// Usage: construct with a plan, point DurabilityConfig::io_env at it,
/// run the workload, destroy the engine (its writer flushes through the
/// environment), then SimulateCrash() and recover with a clean
/// environment. Not thread-safe (the engine serializes durable I/O).
class FaultInjectingIoEnv final : public IoEnv {
 public:
  explicit FaultInjectingIoEnv(FaultPlan plan);
  ~FaultInjectingIoEnv() override;

  int Open(const char* path, int flags, unsigned int mode) override;
  int64_t Write(int fd, const void* data, size_t size) override;
  int Fsync(int fd) override;
  int Rename(const char* from, const char* to) override;
  int Unlink(const char* path) override;
  int FsyncDir(const char* path) override;
  int Truncate(int fd, int64_t size) override;
  int Close(int fd) override;
  /// Advances the virtual clock and records the sleep; never blocks —
  /// the retry-determinism tests assert the exact schedule.
  void SleepMs(int64_t ms) override;

  /// Appends a rule mid-run (windows are relative to the op counters, so
  /// `{op, kind, op_count(op)}` targets the very next call of `op`).
  void AddRule(const FaultPlan::Rule& rule);

  /// Rolls the real filesystem back to the crash-consistent state: undoes
  /// renames and deletes creations no directory fsync committed (newest
  /// first), then truncates every tracked file to its last truthfully
  /// fsynced length. Call with no fds open through this environment (the
  /// writing engine must be destroyed first).
  void SimulateCrash();

  uint64_t faults_injected() const { return faults_injected_; }
  uint64_t op_count(IoOp op) const {
    return op_counts_[static_cast<size_t>(op)];
  }
  uint64_t crash_count() const { return crash_count_; }
  uint64_t disk_used_bytes() const { return disk_used_; }
  /// Every SleepMs duration, in call order (the backoff schedule).
  const std::vector<int64_t>& sleep_log() const { return sleep_log_; }
  /// Sum of the recorded sleeps — the virtual "now".
  int64_t virtual_now_ms() const { return virtual_now_ms_; }

 private:
  struct FileState {
    uint64_t size = 0;    ///< bytes written (through this env)
    uint64_t synced = 0;  ///< bytes a truthful fsync covered
  };

  const FaultPlan::Rule* Match(IoOp op, uint64_t idx,
                               const std::string& path) const;
  std::string PathOf(int fd) const;
  FileState* Tracked(const std::string& path);

  FaultPlan plan_;
  std::array<uint64_t, kIoOpCount> op_counts_{};
  uint64_t faults_injected_ = 0;
  uint64_t crash_count_ = 0;
  uint64_t disk_used_ = 0;
  std::vector<int64_t> sleep_log_;
  int64_t virtual_now_ms_ = 0;
  std::map<int, std::string> fds_;
  std::map<std::string, FileState> files_;
  /// Creations/renames no directory fsync has committed yet, in op
  /// order; a crash undoes them newest-first.
  std::vector<std::string> pending_creates_;
  std::vector<std::pair<std::string, std::string>> pending_renames_;
};

}  // namespace bikegraph
