#pragma once

#include <ostream>
#include <string>
#include <utility>

namespace bikegraph {

/// \brief Machine-readable error category carried by a Status.
///
/// The set mirrors the error taxonomy used throughout the library:
/// `kInvalidArgument` for caller mistakes, `kNotFound` for missing
/// keys/ids/files, `kOutOfRange` for index/coordinate violations,
/// `kFailedPrecondition` for calls made in the wrong state, `kDataLoss` for
/// malformed external input (e.g. a corrupt CSV row), and `kInternal` for
/// invariant violations that indicate a library bug.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kDataLoss = 6,
  kIOError = 7,
  kUnimplemented = 8,
  kInternal = 9,
};

/// \brief Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Result of an operation that can fail, without a payload.
///
/// Follows the Arrow/RocksDB idiom: functions that can fail return a
/// `Status` (or `Result<T>`, see result.h) instead of throwing. A `Status`
/// is cheap to copy in the OK case (no allocation) and carries a code plus a
/// context message otherwise.
///
/// Typical use:
/// \code
///   Status s = dataset.Validate();
///   if (!s.ok()) return s;
/// \endcode
///
/// The class itself is `[[nodiscard]]`: any call returning a `Status` by
/// value must be checked (or explicitly voided with a comment saying why).
/// A silently dropped Status in the WAL/checkpoint path is a latent
/// data-loss bug; the compiler now refuses to let one through.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the status carries no error.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK status to the caller. Usable in any function
/// returning `Status` or `Result<T>` (Result converts from Status).
#define BIKEGRAPH_RETURN_NOT_OK(expr)              \
  do {                                             \
    ::bikegraph::Status _st = (expr);              \
    if (!_st.ok()) return _st;                     \
  } while (false)

}  // namespace bikegraph
