#include "core/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace bikegraph {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void Logger::SetLevel(LogLevel level) { g_level.store(level); }

LogLevel Logger::GetLevel() { return g_level.load(); }

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[" << LevelName(level) << "] " << message << "\n";
}

}  // namespace bikegraph
