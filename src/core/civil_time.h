#pragma once

#include <cstdint>
#include <string>

#include "core/result.h"

namespace bikegraph {

/// \brief Day of the week; numbering follows ISO-8601 (Monday first), which
/// matches the paper's Figure 5 x-axis.
enum class Weekday {
  kMonday = 0,
  kTuesday = 1,
  kWednesday = 2,
  kThursday = 3,
  kFriday = 4,
  kSaturday = 5,
  kSunday = 6,
};

/// \brief Short English name ("Mon".."Sun").
const char* WeekdayName(Weekday day);

/// True for Saturday/Sunday.
inline bool IsWeekend(Weekday day) {
  return day == Weekday::kSaturday || day == Weekday::kSunday;
}

/// \brief A wall-clock timestamp with second resolution, stored as seconds
/// since the Unix epoch (UTC, no leap seconds).
///
/// The Moby dataset spans January 2020 – September 2021; all rental start
/// and end times in the library are `CivilTime`s. Conversions use Howard
/// Hinnant's `days_from_civil` algorithm, valid far beyond the study window,
/// so day-of-week and hour-of-day extraction (the GDay/GHour temporal
/// features) are exact and timezone-free.
class CivilTime {
 public:
  CivilTime() : seconds_(0) {}
  explicit CivilTime(int64_t seconds_since_epoch)
      : seconds_(seconds_since_epoch) {}

  /// Builds a timestamp from calendar fields. Fields are validated
  /// (month 1–12, day within month incl. leap years, hour 0–23, etc.).
  static Result<CivilTime> FromCalendar(int year, int month, int day,
                                        int hour = 0, int minute = 0,
                                        int second = 0);

  /// Parses "YYYY-MM-DD HH:MM:SS" (also accepts 'T' as the separator and a
  /// bare "YYYY-MM-DD" date).
  static Result<CivilTime> Parse(const std::string& text);

  int64_t seconds_since_epoch() const { return seconds_; }

  /// Calendar field accessors (proleptic Gregorian, UTC).
  int year() const;
  int month() const;   ///< 1-12
  int day() const;     ///< 1-31
  int hour() const;    ///< 0-23
  int minute() const;  ///< 0-59
  int second() const;  ///< 0-59

  /// ISO weekday of this timestamp.
  Weekday weekday() const;

  /// Formats as "YYYY-MM-DD HH:MM:SS".
  std::string ToString() const;

  /// Returns this time advanced by `seconds` (may be negative).
  CivilTime AddSeconds(int64_t seconds) const {
    return CivilTime(seconds_ + seconds);
  }
  CivilTime AddDays(int64_t days) const { return AddSeconds(days * 86400); }

  bool operator==(const CivilTime& o) const { return seconds_ == o.seconds_; }
  bool operator!=(const CivilTime& o) const { return seconds_ != o.seconds_; }
  bool operator<(const CivilTime& o) const { return seconds_ < o.seconds_; }
  bool operator<=(const CivilTime& o) const { return seconds_ <= o.seconds_; }
  bool operator>(const CivilTime& o) const { return seconds_ > o.seconds_; }
  bool operator>=(const CivilTime& o) const { return seconds_ >= o.seconds_; }

 private:
  int64_t seconds_;
};

/// \brief Number of days from 1970-01-01 to year/month/day (proleptic
/// Gregorian). Hinnant's algorithm; exposed for testing.
int64_t DaysFromCivil(int year, int month, int day);

/// \brief Inverse of DaysFromCivil. Writes the calendar date of the given
/// epoch-day into the out parameters.
void CivilFromDays(int64_t days, int* year, int* month, int* day);

/// \brief True if `year` is a Gregorian leap year.
bool IsLeapYear(int year);

/// \brief Number of days in `month` (1-12) of `year`.
int DaysInMonth(int year, int month);

}  // namespace bikegraph
