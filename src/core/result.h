#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "core/status.h"

namespace bikegraph {

/// \brief A value-or-error type in the Arrow idiom.
///
/// A `Result<T>` holds either a `T` (status is OK) or a non-OK `Status`.
/// Accessing the value of an errored result aborts in debug builds and is
/// undefined otherwise; callers must check `ok()` first or use
/// `ValueOrDie()` in contexts where failure is a programming error.
///
/// \code
///   Result<Dataset> r = Dataset::FromCsv(path);
///   if (!r.ok()) return r.status();
///   Dataset ds = std::move(r).ValueOrDie();
/// \endcode
///
/// Like `Status`, the class is `[[nodiscard]]`: a `Result` returned by
/// value must be examined — discarding one silently discards the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs an errored result. `status` must be non-OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT implicit
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the held value; requires `ok()`.
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Alias for ValueOrDie for terser call sites.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }

  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value if OK, otherwise `fallback`.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }
  T ValueOr(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a `Result` expression to `lhs`, or propagates the
/// error. `lhs` may include a declaration, e.g.
/// `BIKEGRAPH_ASSIGN_OR_RETURN(auto ds, Dataset::FromCsv(p));`
#define BIKEGRAPH_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).ValueOrDie()

#define BIKEGRAPH_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define BIKEGRAPH_ASSIGN_OR_RETURN_NAME(a, b) \
  BIKEGRAPH_ASSIGN_OR_RETURN_CONCAT(a, b)

#define BIKEGRAPH_ASSIGN_OR_RETURN(lhs, expr)                               \
  BIKEGRAPH_ASSIGN_OR_RETURN_IMPL(                                          \
      BIKEGRAPH_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, (expr))

}  // namespace bikegraph
