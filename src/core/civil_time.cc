#include "core/civil_time.h"

#include <cstdio>

namespace bikegraph {

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) return 0;
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

int64_t DaysFromCivil(int y, int m, int d) {
  // Howard Hinnant, "chrono-Compatible Low-Level Date Algorithms".
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);          // [0,399]
  const unsigned doy = static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);  // [0,365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;  // [0,146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* year, int* month, int* day) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0,146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0,399]
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0,365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0,11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;               // [1,31]
  const unsigned m = mp < 10 ? mp + 3 : mp - 9;                  // [1,12]
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

const char* WeekdayName(Weekday day) {
  static const char* kNames[] = {"Mon", "Tue", "Wed", "Thu",
                                 "Fri", "Sat", "Sun"};
  return kNames[static_cast<int>(day)];
}

Result<CivilTime> CivilTime::FromCalendar(int year, int month, int day,
                                          int hour, int minute, int second) {
  if (month < 1 || month > 12) {
    return Status::InvalidArgument("month out of range: " +
                                   std::to_string(month));
  }
  if (day < 1 || day > DaysInMonth(year, month)) {
    return Status::InvalidArgument("day out of range: " + std::to_string(day));
  }
  if (hour < 0 || hour > 23 || minute < 0 || minute > 59 || second < 0 ||
      second > 59) {
    return Status::InvalidArgument("time-of-day out of range");
  }
  int64_t days = DaysFromCivil(year, month, day);
  return CivilTime(days * 86400 + hour * 3600 + minute * 60 + second);
}

Result<CivilTime> CivilTime::Parse(const std::string& text) {
  int y = 0, mo = 0, d = 0, h = 0, mi = 0, s = 0;
  char sep = 0;
  int n = std::sscanf(text.c_str(), "%d-%d-%d%c%d:%d:%d", &y, &mo, &d, &sep,
                      &h, &mi, &s);
  if (n == 3) {
    return FromCalendar(y, mo, d);
  }
  if (n == 7 && (sep == ' ' || sep == 'T')) {
    return FromCalendar(y, mo, d, h, mi, s);
  }
  return Status::DataLoss("unparseable timestamp: '" + text + "'");
}

namespace {

// Floor division helpers so pre-epoch timestamps behave.
int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

int64_t FloorMod(int64_t a, int64_t b) { return a - FloorDiv(a, b) * b; }

}  // namespace

int CivilTime::year() const {
  int y, m, d;
  CivilFromDays(FloorDiv(seconds_, 86400), &y, &m, &d);
  return y;
}

int CivilTime::month() const {
  int y, m, d;
  CivilFromDays(FloorDiv(seconds_, 86400), &y, &m, &d);
  return m;
}

int CivilTime::day() const {
  int y, m, d;
  CivilFromDays(FloorDiv(seconds_, 86400), &y, &m, &d);
  return d;
}

int CivilTime::hour() const {
  return static_cast<int>(FloorMod(seconds_, 86400) / 3600);
}

int CivilTime::minute() const {
  return static_cast<int>(FloorMod(seconds_, 3600) / 60);
}

int CivilTime::second() const { return static_cast<int>(FloorMod(seconds_, 60)); }

Weekday CivilTime::weekday() const {
  // 1970-01-01 was a Thursday (ISO index 3).
  int64_t days = FloorDiv(seconds_, 86400);
  return static_cast<Weekday>(FloorMod(days + 3, 7));
}

std::string CivilTime::ToString() const {
  int y, mo, d;
  CivilFromDays(FloorDiv(seconds_, 86400), &y, &mo, &d);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", y, mo, d,
                hour(), minute(), second());
  return buf;
}

}  // namespace bikegraph
