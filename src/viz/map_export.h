#pragma once

#include <string>

#include "core/status.h"
#include "community/partition.h"
#include "expansion/candidate.h"
#include "expansion/final_network.h"

namespace bikegraph::viz {

/// Map artefacts corresponding to the paper's figures. Each writer emits a
/// GeoJSON FeatureCollection viewable in any GeoJSON tool (geojson.io,
/// QGIS, kepler.gl).

/// \brief Fig. 1 — the candidate graph: one point per candidate (purple in
/// the paper; we tag `kind` = station|candidate) and one line per distinct
/// directed station pair, weighted by trip count.
Status WriteCandidateMap(const expansion::CandidateNetwork& network,
                         const std::string& path);

/// \brief Fig. 2 — the selected graph: stations sized by self-trips, edges
/// by directed trip counts; only edges with weight in the top
/// `edge_weight_percentile` (e.g. 0.99 = top 1%) are drawn, matching the
/// paper's rendering.
Status WriteSelectedMap(const expansion::FinalNetwork& network,
                        const std::string& path,
                        double edge_weight_percentile = 0.99);

/// \brief Figs. 3/4/6 — community maps: stations coloured by community
/// (we tag `community` and a repeating colour name so styling is trivial).
Status WriteCommunityMap(const expansion::FinalNetwork& network,
                         const community::Partition& partition,
                         const std::string& path);

/// \brief Graphviz DOT export of a final network's aggregated trip graph
/// (edges above `min_weight` trips), for quick `dot -Tsvg` rendering.
Status WriteDot(const expansion::FinalNetwork& network,
                const std::string& path, double min_weight = 50.0);

}  // namespace bikegraph::viz
