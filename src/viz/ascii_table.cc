#include "viz/ascii_table.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace bikegraph::viz {

namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  size_t digits = 0;
  for (char c : s) {
    if ((c >= '0' && c <= '9')) {
      ++digits;
    } else if (c != '.' && c != ',' && c != '-' && c != '+' && c != '%' &&
               c != 'e' && c != 'x') {
      return false;
    }
  }
  return digits > 0;
}

}  // namespace

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void AsciiTable::AddSeparator() { rows_.emplace_back(); }

std::string AsciiTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_sep = [&]() {
    os << "+";
    for (size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << "+";
    }
    os << "\n";
  };
  auto emit_row = [&](const std::vector<std::string>& cells, bool is_header) {
    os << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      const size_t pad = widths[c] - cell.size();
      const bool right = !is_header && LooksNumeric(cell);
      os << " ";
      if (right) os << std::string(pad, ' ');
      os << cell;
      if (!right) os << std::string(pad, ' ');
      os << " |";
    }
    os << "\n";
  };

  emit_sep();
  emit_row(header_, true);
  emit_sep();
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_sep();
    } else {
      emit_row(row, false);
    }
  }
  emit_sep();
  return os.str();
}

}  // namespace bikegraph::viz
