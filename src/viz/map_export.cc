#include "viz/map_export.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <unordered_map>

#include "core/string_util.h"
#include "geo/geojson.h"

#include "core/checked_cast.h"

namespace bikegraph::viz {

namespace {

/// The paper's community colour cycle (Figs. 3/4/6 legend order).
const char* kColors[] = {"blue", "orange", "green",  "red",  "purple",
                         "brown", "pink",  "gray",  "olive", "cyan"};

/// Aggregates a TRIP multigraph into directed (from, to) -> count.
std::map<std::pair<int32_t, int32_t>, int64_t> AggregateTrips(
    const graphdb::PropertyGraph& graph) {
  std::map<std::pair<int32_t, int32_t>, int64_t> counts;
  graph.ForEachEdge("TRIP", [&](graphdb::EdgeId e) {
    counts[{static_cast<int32_t>(graph.EdgeFrom(e)),
            static_cast<int32_t>(graph.EdgeTo(e))}]++;
  });
  return counts;
}

}  // namespace

Status WriteCandidateMap(const expansion::CandidateNetwork& network,
                         const std::string& path) {
  geo::GeoJsonWriter w;
  for (size_t i = 0; i < network.candidates.size(); ++i) {
    const auto& cand = network.candidates[i];
    w.AddPoint(cand.centroid,
               {{"kind", cand.is_fixed() ? "station" : "candidate"},
                {"degree", std::to_string(cand.degree())},
                {"locations", std::to_string(cand.location_ids.size())},
                {"name", cand.name}});
  }
  for (const auto& [pair, count] : AggregateTrips(network.graph)) {
    if (pair.first == pair.second) continue;
    w.AddLine(network.candidates[AsIndex(pair.first)].centroid,
              network.candidates[AsIndex(pair.second)].centroid,
              {{"trips", std::to_string(count)}});
  }
  return w.WriteToFile(path);
}

Status WriteSelectedMap(const expansion::FinalNetwork& network,
                        const std::string& path,
                        double edge_weight_percentile) {
  if (edge_weight_percentile < 0.0 || edge_weight_percentile > 1.0) {
    return Status::InvalidArgument("percentile must be in [0, 1]");
  }
  auto counts = AggregateTrips(network.graph);

  // Self-trip counts size the nodes (the paper's Fig. 2 styling).
  std::unordered_map<int32_t, int64_t> self_trips;
  std::vector<int64_t> weights;
  for (const auto& [pair, count] : counts) {
    if (pair.first == pair.second) {
      self_trips[pair.first] = count;
    } else {
      weights.push_back(count);
    }
  }
  int64_t cutoff = 0;
  if (!weights.empty()) {
    std::sort(weights.begin(), weights.end());
    const size_t idx = std::min(
        weights.size() - 1,
        static_cast<size_t>(edge_weight_percentile *
                            static_cast<double>(weights.size())));
    cutoff = weights[idx];
  }

  geo::GeoJsonWriter w;
  for (size_t s = 0; s < network.stations.size(); ++s) {
    const auto& st = network.stations[s];
    w.AddPoint(st.position,
               {{"name", st.name},
                {"pre_existing", st.pre_existing ? "1" : "0"},
                {"self_trips",
                 std::to_string(self_trips.count(static_cast<int32_t>(s))
                                    ? self_trips[static_cast<int32_t>(s)]
                                    : 0)}});
  }
  for (const auto& [pair, count] : counts) {
    if (pair.first == pair.second || count < cutoff) continue;
    w.AddLine(network.stations[AsIndex(pair.first)].position,
              network.stations[AsIndex(pair.second)].position,
              {{"trips", std::to_string(count)}});
  }
  return w.WriteToFile(path);
}

Status WriteCommunityMap(const expansion::FinalNetwork& network,
                         const community::Partition& partition,
                         const std::string& path) {
  if (partition.assignment.size() != network.stations.size()) {
    return Status::InvalidArgument(
        "partition size does not match station count");
  }
  geo::GeoJsonWriter w;
  constexpr size_t kColorCount = sizeof(kColors) / sizeof(kColors[0]);
  for (size_t s = 0; s < network.stations.size(); ++s) {
    const auto& st = network.stations[s];
    const int32_t c = partition.assignment[s];
    w.AddPoint(st.position,
               {{"name", st.name},
                {"pre_existing", st.pre_existing ? "1" : "0"},
                {"community", std::to_string(c + 1)},
                {"color", kColors[static_cast<size_t>(c) % kColorCount]}});
  }
  return w.WriteToFile(path);
}

Status WriteDot(const expansion::FinalNetwork& network,
                const std::string& path, double min_weight) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << "digraph bss {\n  node [shape=point];\n";
  auto counts = AggregateTrips(network.graph);
  for (size_t s = 0; s < network.stations.size(); ++s) {
    out << "  n" << s << " [xlabel=\""
        << geo::JsonEscape(network.stations[s].name) << "\"];\n";
  }
  for (const auto& [pair, count] : counts) {
    if (static_cast<double>(count) < min_weight) continue;
    out << "  n" << pair.first << " -> n" << pair.second << " [weight="
        << count << ", penwidth="
        << FormatDouble(
               std::min(6.0, 0.5 + static_cast<double>(count) / 200.0), 2)
        << "];\n";
  }
  out << "}\n";
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace bikegraph::viz
