#pragma once

#include <string>
#include <vector>

namespace bikegraph::viz {

/// \brief Minimal fixed-width table renderer used by the bench harnesses to
/// print paper-vs-measured tables.
///
/// \code
///   AsciiTable t({"Measure", "Paper", "Measured"});
///   t.AddRow({"#stations", "92", "92"});
///   std::cout << t.ToString();
/// \endcode
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  /// Appends a row; short rows are padded with empty cells, long rows are
  /// truncated to the header width.
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void AddSeparator();

  size_t row_count() const { return rows_.size(); }

  /// Renders with column auto-sizing; numeric-looking cells right-align.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector = separator
};

}  // namespace bikegraph::viz
