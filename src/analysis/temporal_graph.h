#pragma once

#include <array>
#include <vector>

#include "core/result.h"
#include "graphdb/property_graph.h"
#include "graphdb/weighted_graph.h"

namespace bikegraph::analysis {

/// \brief The paper's three levels of temporal granularity (§IV-C):
/// T_Null (no temporal features), T_Day (day of week a trip took place),
/// T_Hour (time of day a trip began).
enum class TemporalGranularity { kNull, kDay, kHour };

/// \brief Options for building the GBasic / GDay / GHour graphs from a trip
/// multigraph.
struct TemporalGraphOptions {
  TemporalGranularity granularity = TemporalGranularity::kNull;
  /// Weight floor for temporally dissimilar station pairs: the projected
  /// edge weight is trips × (floor + (1 − floor) × similarity^contrast),
  /// where similarity is the centred (Pearson) correlation of the
  /// endpoints' temporal profiles mapped to [0, 1]. A small positive floor
  /// keeps the graph connected so Louvain still sees the full topology.
  double similarity_floor = 0.05;
  /// Sharpening exponent on the similarity. Hour-of-day profiles share a
  /// strong common daytime baseline, so the paper's highly fragmented
  /// GHour structure (10 communities, Q = 0.54 vs GDay's 7 / 0.32) needs a
  /// higher contrast to surface; see DESIGN.md "Substitutions".
  double contrast = 1.0;
};

/// \brief Per-station temporal usage profile extracted from the trip
/// multigraph: trip-endpoint counts per day-of-week and per hour-of-day
/// (each trip contributes its start time to both of its endpoints, the
/// convention the paper uses for station behaviour).
struct StationProfiles {
  std::vector<std::array<double, 7>> day;    ///< per node, Monday first
  std::vector<std::array<double, 24>> hour;  ///< per node

  /// L2-normalised cosine similarity of two stations' profiles at the given
  /// granularity; 1.0 for kNull. Zero-activity stations compare as 1.0
  /// (no evidence of dissimilarity).
  double Similarity(size_t a, size_t b, TemporalGranularity g) const;
};

/// \brief Extracts per-station profiles from a trip multigraph whose edges
/// carry integer "day" (0=Mon) and "hour" (0-23) properties.
Result<StationProfiles> ExtractStationProfiles(
    const graphdb::PropertyGraph& trips);

/// \brief Weight one trip between stations `a` and `b` contributes to the
/// projected graph: floor + (1 − floor) · similarity^contrast. The single
/// source of the projection formula — BuildTemporalGraph applies it per
/// trip edge and the streaming snapshot freeze applies it per window
/// pair, so the two stay bit-identical by construction.
double PerTripWeight(const StationProfiles& profiles, size_t a, size_t b,
                     const TemporalGraphOptions& options);

/// \brief Builds the undirected weighted graph for one temporal granularity
/// (paper §IV-C "Network Structures").
///
/// - kNull (GBasic): stations are nodes, edge weight = number of trips.
/// - kDay (GDay) / kHour (GHour): the paper attaches the day/hour property
///   to every trip edge; the projection reconstructed here modulates each
///   aggregated edge weight by the cosine similarity of the endpoints'
///   day-of-week / hour-of-day profiles, so stations that exchange trips
///   but behave differently in time are weakly coupled. (The paper does not
///   spell out the Neo4j projection; see DESIGN.md "Substitutions".)
Result<graphdb::WeightedGraph> BuildTemporalGraph(
    const graphdb::PropertyGraph& trips,
    const TemporalGraphOptions& options = {});

}  // namespace bikegraph::analysis
