#include "analysis/temporal_graph.h"

#include <cmath>

#include "core/checked_cast.h"

namespace bikegraph::analysis {

namespace {

/// Pearson correlation of two profiles, mapped from [-1, 1] to [0, 1].
/// Centring matters: raw cosine similarity of all-positive demand profiles
/// is inflated towards 1 by the shared baseline, hiding exactly the
/// weekday-vs-weekend and rush-vs-midday contrasts the paper's GDay/GHour
/// graphs are built to expose.
template <size_t N>
double CenteredSimilarity(const std::array<double, N>& a,
                          const std::array<double, N>& b) {
  double mean_a = 0.0, mean_b = 0.0;
  for (size_t i = 0; i < N; ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= static_cast<double>(N);
  mean_b /= static_cast<double>(N);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < N; ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    dot += da * db;
    na += da * da;
    nb += db * db;
  }
  if (na <= 0.0 || nb <= 0.0) return 1.0;  // no evidence of dissimilarity
  const double corr = dot / (std::sqrt(na) * std::sqrt(nb));
  return (1.0 + corr) / 2.0;
}

}  // namespace

double StationProfiles::Similarity(size_t a, size_t b,
                                   TemporalGranularity g) const {
  switch (g) {
    case TemporalGranularity::kNull:
      return 1.0;
    case TemporalGranularity::kDay:
      return CenteredSimilarity(day[a], day[b]);
    case TemporalGranularity::kHour:
      return CenteredSimilarity(hour[a], hour[b]);
  }
  return 1.0;
}

double PerTripWeight(const StationProfiles& profiles, size_t a, size_t b,
                     const TemporalGraphOptions& options) {
  const double sim = profiles.Similarity(a, b, options.granularity);
  const double sharpened = std::pow(std::max(0.0, sim), options.contrast);
  return options.similarity_floor +
         (1.0 - options.similarity_floor) * sharpened;
}

Result<StationProfiles> ExtractStationProfiles(
    const graphdb::PropertyGraph& trips) {
  StationProfiles profiles;
  profiles.day.assign(trips.NodeCount(), {});
  profiles.hour.assign(trips.NodeCount(), {});
  Status status = Status::OK();
  trips.ForEachEdge("TRIP", [&](graphdb::EdgeId e) {
    if (!status.ok()) return;
    auto day_r = trips.GetEdgeProperty(e, "day").AsInt();
    auto hour_r = trips.GetEdgeProperty(e, "hour").AsInt();
    if (!day_r.ok() || !hour_r.ok()) {
      status = Status::FailedPrecondition(
          "trip edge " + std::to_string(e) + " lacks day/hour properties");
      return;
    }
    const int64_t d = day_r.ValueOrDie();
    const int64_t h = hour_r.ValueOrDie();
    if (d < 0 || d > 6 || h < 0 || h > 23) {
      status = Status::DataLoss("trip edge " + std::to_string(e) +
                                " has out-of-range day/hour");
      return;
    }
    for (graphdb::NodeId node : {trips.EdgeFrom(e), trips.EdgeTo(e)}) {
      profiles.day[AsIndex(node)][AsIndex(d)] += 1.0;
      profiles.hour[AsIndex(node)][AsIndex(h)] += 1.0;
    }
  });
  BIKEGRAPH_RETURN_NOT_OK(status);
  return profiles;
}

Result<graphdb::WeightedGraph> BuildTemporalGraph(
    const graphdb::PropertyGraph& trips, const TemporalGraphOptions& options) {
  if (options.similarity_floor < 0.0 || options.similarity_floor > 1.0) {
    return Status::InvalidArgument("similarity_floor must be in [0, 1]");
  }

  // Aggregate trip counts first (the GBasic weights).
  graphdb::WeightedGraphBuilder builder(trips.NodeCount());
  Status status = Status::OK();

  if (options.granularity == TemporalGranularity::kNull) {
    trips.ForEachEdge("TRIP", [&](graphdb::EdgeId e) {
      if (!status.ok()) return;
      status = builder.AddEdge(static_cast<int32_t>(trips.EdgeFrom(e)),
                               static_cast<int32_t>(trips.EdgeTo(e)), 1.0);
    });
    BIKEGRAPH_RETURN_NOT_OK(status);
    return builder.Build();
  }

  BIKEGRAPH_ASSIGN_OR_RETURN(StationProfiles profiles,
                             ExtractStationProfiles(trips));
  trips.ForEachEdge("TRIP", [&](graphdb::EdgeId e) {
    if (!status.ok()) return;
    const auto from = static_cast<size_t>(trips.EdgeFrom(e));
    const auto to = static_cast<size_t>(trips.EdgeTo(e));
    status = builder.AddEdge(static_cast<int32_t>(from),
                             static_cast<int32_t>(to),
                             PerTripWeight(profiles, from, to, options));
  });
  BIKEGRAPH_RETURN_NOT_OK(status);
  return builder.Build();
}

}  // namespace bikegraph::analysis
