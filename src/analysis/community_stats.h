#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/result.h"
#include "community/partition.h"
#include "expansion/final_network.h"

namespace bikegraph::analysis {

/// \brief Per-community rows in the shape of the paper's Tables IV-VI:
/// station split (old = pre-existing / new = selected) and trip flows
/// (within / out / in).
struct CommunityTripStats {
  struct Row {
    size_t old_stations = 0;
    size_t new_stations = 0;
    int64_t within = 0;  ///< trips starting and ending in the community
    int64_t out = 0;     ///< trips leaving to another community
    int64_t in = 0;      ///< trips arriving from another community

    size_t total_stations() const { return old_stations + new_stations; }
    /// The paper's "Total" column: within + out + in.
    int64_t total_trips() const { return within + out + in; }
  };
  std::vector<Row> rows;  ///< indexed by community label

  /// Fraction of all trips that start and end in the same community (the
  /// paper reports ~74% for GBasic, in line with London's 75% and
  /// Beijing's 77%).
  double SelfContainedFraction() const;
  int64_t TotalTrips() const;  ///< Σ within + Σ out (= Σ within + Σ in)
};

/// \brief Computes Tables IV-VI style statistics for a partition of the
/// final network's stations.
Result<CommunityTripStats> ComputeCommunityTripStats(
    const expansion::FinalNetwork& network,
    const community::Partition& partition);

/// \brief Share of each community's trips per day of week (rows sum to 1;
/// paper Fig. 5). A trip is attributed to the community of its origin.
Result<std::vector<std::array<double, 7>>> CommunityDayShares(
    const expansion::FinalNetwork& network,
    const community::Partition& partition);

/// \brief Share of each community's trips per hour of day (rows sum to 1;
/// paper Fig. 7).
Result<std::vector<std::array<double, 24>>> CommunityHourShares(
    const expansion::FinalNetwork& network,
    const community::Partition& partition);

/// \brief Classifies a day-share profile as weekday-commute-like (weekend
/// trough), weekend-leisure-like (weekend peak) or flat — the qualitative
/// split the paper draws from Fig. 5. The margin is the relative difference
/// between the mean weekend and mean weekday share required to call a peak.
enum class DayPattern { kWeekdayCommute, kWeekendLeisure, kFlat };
DayPattern ClassifyDayPattern(const std::array<double, 7>& shares,
                              double margin = 0.15);

/// \brief Classifies an hour-share profile as commute-like (AM+PM rush
/// peaks) or midday-leisure-like — the qualitative split of Fig. 7.
enum class HourPattern { kCommute, kMiddayLeisure, kOther };
HourPattern ClassifyHourPattern(const std::array<double, 24>& shares);

}  // namespace bikegraph::analysis
