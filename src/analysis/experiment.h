#pragma once

#include <cstdint>
#include <string>

#include "core/result.h"
#include "analysis/community_stats.h"
#include "analysis/temporal_graph.h"
#include "community/detector.h"
#include "data/synthetic.h"
#include "expansion/pipeline.h"
#include "graphdb/weighted_graph.h"

namespace bikegraph::analysis {

/// \brief The numbers the paper reports, used by EXPERIMENTS.md and the
/// bench harnesses to print paper-vs-measured rows. Absolute values are not
/// expected to match (our substrate is a synthetic generator); the *shape*
/// is (see DESIGN.md §4).
struct PaperExpectations {
  // Table I.
  size_t original_stations = 95, cleaned_stations = 92;
  size_t original_rentals = 62324, cleaned_rentals = 61872;
  size_t original_locations = 14239, cleaned_locations = 14156;
  // Table II.
  size_t candidate_nodes = 1172;
  size_t candidate_undirected_edges = 8240;
  size_t candidate_undirected_edges_no_loops = 7820;
  size_t candidate_directed_edges = 16042;
  size_t candidate_directed_edges_no_loops = 15604;
  size_t candidate_trips = 61872;
  // Table III.
  size_t selected_new_stations = 146;
  size_t selected_total_stations = 238;
  int64_t pre_existing_trips_from = 54670, pre_existing_trips_to = 54727;
  int64_t selected_trips_from = 7202, selected_trips_to = 7145;
  size_t selected_total_edges = 8509;
  // Tables IV-VI (community counts and modularity).
  size_t gbasic_communities = 3;
  double gbasic_modularity = 0.25;
  double gbasic_self_contained = 0.74;
  size_t gday_communities = 7;
  double gday_modularity = 0.32;
  size_t ghour_communities = 10;
  double ghour_modularity = 0.54;
};

/// \brief Configuration of the full paper reproduction.
struct ExperimentConfig {
  data::SyntheticConfig synthetic;
  expansion::PipelineConfig pipeline;
  /// Which community-detection algorithm to run, with which options. The
  /// default (Louvain, default CommunityOptions) reproduces the paper's
  /// setting; any registry algorithm can be swapped in by name or id.
  community::DetectSpec detection;
  /// Temporal projection settings (see TemporalGraphOptions). Hour-of-day
  /// profiles share a strong daytime baseline, so GHour uses a higher
  /// contrast to surface the commute-vs-midday split the paper reports.
  TemporalGraphOptions gday{TemporalGranularity::kDay, /*floor=*/0.05,
                            /*contrast=*/8.0};
  TemporalGraphOptions ghour{TemporalGranularity::kHour, /*floor=*/0.01,
                             /*contrast=*/28.0};
};

/// \brief One community-detection experiment (GBasic, GDay or GHour).
struct CommunityExperiment {
  TemporalGranularity granularity = TemporalGranularity::kNull;
  graphdb::WeightedGraph graph;
  /// Unified result of the configured algorithm (Louvain by default).
  community::CommunityResult detection;
  CommunityTripStats stats;
};

/// \brief Everything needed to regenerate the paper's tables and figures.
struct ExperimentResult {
  expansion::PipelineResult pipeline;
  CommunityExperiment gbasic;
  CommunityExperiment gday;
  CommunityExperiment ghour;
};

/// \brief Runs the full reproduction: synthetic Moby dataset → cleaning →
/// candidate graph → Algorithm 1 → final network → community detection at
/// the three temporal granularities (Louvain by default, per the paper).
Result<ExperimentResult> RunPaperExperiment(const ExperimentConfig& config = {});

/// \brief Runs one community-detection experiment on an existing final
/// network with any registered algorithm.
Result<CommunityExperiment> RunCommunityExperiment(
    const expansion::FinalNetwork& network,
    const TemporalGraphOptions& graph_options,
    const community::DetectSpec& detect_spec);

}  // namespace bikegraph::analysis
