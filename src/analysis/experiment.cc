#include "analysis/experiment.h"

namespace bikegraph::analysis {

Result<CommunityExperiment> RunCommunityExperiment(
    const expansion::FinalNetwork& network,
    const TemporalGraphOptions& graph_options,
    const community::DetectSpec& detect_spec) {
  CommunityExperiment exp;
  exp.granularity = graph_options.granularity;
  BIKEGRAPH_ASSIGN_OR_RETURN(exp.graph,
                             BuildTemporalGraph(network.graph, graph_options));
  BIKEGRAPH_ASSIGN_OR_RETURN(exp.detection,
                             community::Detect(exp.graph, detect_spec));
  BIKEGRAPH_ASSIGN_OR_RETURN(
      exp.stats,
      ComputeCommunityTripStats(network, exp.detection.partition));
  return exp;
}

Result<ExperimentResult> RunPaperExperiment(const ExperimentConfig& config) {
  ExperimentResult result;
  BIKEGRAPH_ASSIGN_OR_RETURN(data::Dataset raw,
                             data::GenerateSyntheticMoby(config.synthetic));
  BIKEGRAPH_ASSIGN_OR_RETURN(
      result.pipeline,
      expansion::RunExpansionPipeline(raw, config.pipeline));

  const expansion::FinalNetwork& net = result.pipeline.final_network;
  TemporalGraphOptions gbasic_options;  // kNull
  BIKEGRAPH_ASSIGN_OR_RETURN(
      result.gbasic,
      RunCommunityExperiment(net, gbasic_options, config.detection));
  BIKEGRAPH_ASSIGN_OR_RETURN(
      result.gday, RunCommunityExperiment(net, config.gday, config.detection));
  BIKEGRAPH_ASSIGN_OR_RETURN(
      result.ghour,
      RunCommunityExperiment(net, config.ghour, config.detection));
  return result;
}

}  // namespace bikegraph::analysis
