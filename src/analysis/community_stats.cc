#include "analysis/community_stats.h"

#include <algorithm>
#include <cmath>

#include "core/checked_cast.h"

namespace bikegraph::analysis {

double CommunityTripStats::SelfContainedFraction() const {
  int64_t within = 0, total = 0;
  for (const auto& row : rows) {
    within += row.within;
    total += row.within + row.out;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(within) / static_cast<double>(total);
}

int64_t CommunityTripStats::TotalTrips() const {
  int64_t total = 0;
  for (const auto& row : rows) total += row.within + row.out;
  return total;
}

namespace {

Status CheckPartition(const expansion::FinalNetwork& network,
                      const community::Partition& partition) {
  if (partition.assignment.size() != network.stations.size()) {
    return Status::InvalidArgument(
        "partition size does not match station count");
  }
  for (int32_t c : partition.assignment) {
    if (c < 0) return Status::InvalidArgument("negative community label");
  }
  return Status::OK();
}

}  // namespace

Result<CommunityTripStats> ComputeCommunityTripStats(
    const expansion::FinalNetwork& network,
    const community::Partition& partition) {
  BIKEGRAPH_RETURN_NOT_OK(CheckPartition(network, partition));
  CommunityTripStats stats;
  stats.rows.assign(partition.CommunityCount(), {});

  for (size_t s = 0; s < network.stations.size(); ++s) {
    auto& row = stats.rows[AsIndex(partition.assignment[s])];
    if (network.stations[s].pre_existing) {
      ++row.old_stations;
    } else {
      ++row.new_stations;
    }
  }

  Status status = Status::OK();
  network.graph.ForEachEdge("TRIP", [&](graphdb::EdgeId e) {
    const int32_t cf = partition.assignment[AsIndex(network.graph.EdgeFrom(e))];
    const int32_t ct = partition.assignment[AsIndex(network.graph.EdgeTo(e))];
    if (cf == ct) {
      ++stats.rows[AsIndex(cf)].within;
    } else {
      ++stats.rows[AsIndex(cf)].out;
      ++stats.rows[AsIndex(ct)].in;
    }
  });
  BIKEGRAPH_RETURN_NOT_OK(status);
  return stats;
}

namespace {

template <size_t N>
Result<std::vector<std::array<double, N>>> CommunityShares(
    const expansion::FinalNetwork& network,
    const community::Partition& partition, const char* property,
    int64_t max_value) {
  BIKEGRAPH_RETURN_NOT_OK(CheckPartition(network, partition));
  std::vector<std::array<double, N>> shares(partition.CommunityCount());
  for (auto& arr : shares) arr.fill(0.0);
  Status status = Status::OK();
  network.graph.ForEachEdge("TRIP", [&](graphdb::EdgeId e) {
    if (!status.ok()) return;
    auto value = network.graph.GetEdgeProperty(e, property).AsInt();
    if (!value.ok() || value.ValueOrDie() < 0 ||
        value.ValueOrDie() > max_value) {
      status = Status::FailedPrecondition(
          std::string("trip edge lacks a valid '") + property +
          "' property");
      return;
    }
    const int32_t c = partition.assignment[AsIndex(network.graph.EdgeFrom(e))];
    shares[AsIndex(c)][AsIndex(value.ValueOrDie())] += 1.0;
  });
  BIKEGRAPH_RETURN_NOT_OK(status);
  for (auto& arr : shares) {
    double total = 0.0;
    for (double v : arr) total += v;
    if (total > 0.0) {
      for (double& v : arr) v /= total;
    }
  }
  return shares;
}

}  // namespace

Result<std::vector<std::array<double, 7>>> CommunityDayShares(
    const expansion::FinalNetwork& network,
    const community::Partition& partition) {
  return CommunityShares<7>(network, partition, "day", 6);
}

Result<std::vector<std::array<double, 24>>> CommunityHourShares(
    const expansion::FinalNetwork& network,
    const community::Partition& partition) {
  return CommunityShares<24>(network, partition, "hour", 23);
}

DayPattern ClassifyDayPattern(const std::array<double, 7>& shares,
                              double margin) {
  const double weekday =
      (shares[0] + shares[1] + shares[2] + shares[3] + shares[4]) / 5.0;
  const double weekend = (shares[5] + shares[6]) / 2.0;
  if (weekday <= 0.0 && weekend <= 0.0) return DayPattern::kFlat;
  const double base = std::max(weekday, weekend);
  if (weekend > weekday * (1.0 + margin)) return DayPattern::kWeekendLeisure;
  if (weekday > weekend * (1.0 + margin)) return DayPattern::kWeekdayCommute;
  (void)base;
  return DayPattern::kFlat;
}

HourPattern ClassifyHourPattern(const std::array<double, 24>& shares) {
  // Mass in the morning rush (7-9), evening rush (16-18) and midday
  // (11-14) windows, normalised per-hour.
  auto mean_over = [&](int lo, int hi) {
    double acc = 0.0;
    for (int h = lo; h <= hi; ++h) acc += shares[AsIndex(h)];
    return acc / static_cast<double>(hi - lo + 1);
  };
  const double am = mean_over(7, 9);
  const double pm = mean_over(16, 18);
  const double midday = mean_over(11, 14);
  const double rush = (am + pm) / 2.0;
  if (rush > midday * 1.1 && am > 0.0 && pm > 0.0) {
    return HourPattern::kCommute;
  }
  if (midday > rush * 1.1) return HourPattern::kMiddayLeisure;
  return HourPattern::kOther;
}

}  // namespace bikegraph::analysis
