#include "graphdb/property_graph.h"

#include <unordered_set>

#include "core/checked_cast.h"

namespace bikegraph::graphdb {

NodeId PropertyGraph::AddNode(std::string label) {
  NodeId id = static_cast<NodeId>(node_labels_.size());
  node_labels_.push_back(std::move(label));
  node_props_.emplace_back();
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  return id;
}

Result<EdgeId> PropertyGraph::AddEdge(NodeId from, NodeId to,
                                      std::string type) {
  if (!HasNode(from) || !HasNode(to)) {
    return Status::NotFound("edge endpoint does not exist: " +
                            std::to_string(from) + " -> " +
                            std::to_string(to));
  }
  EdgeId id = static_cast<EdgeId>(edge_from_.size());
  edge_from_.push_back(from);
  edge_to_.push_back(to);
  edge_types_.push_back(std::move(type));
  edge_props_.emplace_back();
  out_edges_[AsIndex(from)].push_back(id);
  in_edges_[AsIndex(to)].push_back(id);
  return id;
}

Status PropertyGraph::SetNodeProperty(NodeId id, const std::string& key,
                                      PropertyValue v) {
  if (!HasNode(id)) return Status::NotFound("no such node");
  node_props_[AsIndex(id)][key] = std::move(v);
  return Status::OK();
}

Status PropertyGraph::SetEdgeProperty(EdgeId id, const std::string& key,
                                      PropertyValue v) {
  if (!HasEdge(id)) return Status::NotFound("no such edge");
  edge_props_[AsIndex(id)][key] = std::move(v);
  return Status::OK();
}

PropertyValue PropertyGraph::GetNodeProperty(NodeId id,
                                             const std::string& key) const {
  if (!HasNode(id)) return PropertyValue();
  auto it = node_props_[AsIndex(id)].find(key);
  return it == node_props_[AsIndex(id)].end() ? PropertyValue() : it->second;
}

PropertyValue PropertyGraph::GetEdgeProperty(EdgeId id,
                                             const std::string& key) const {
  if (!HasEdge(id)) return PropertyValue();
  auto it = edge_props_[AsIndex(id)].find(key);
  return it == edge_props_[AsIndex(id)].end() ? PropertyValue() : it->second;
}

void PropertyGraph::ForEachNode(const std::string& label,
                                const std::function<void(NodeId)>& fn) const {
  for (NodeId id = 0; id < static_cast<NodeId>(NodeCount()); ++id) {
    if (label.empty() || node_labels_[AsIndex(id)] == label) fn(id);
  }
}

void PropertyGraph::ForEachEdge(const std::string& type,
                                const std::function<void(EdgeId)>& fn) const {
  for (EdgeId id = 0; id < static_cast<EdgeId>(EdgeCount()); ++id) {
    if (type.empty() || edge_types_[AsIndex(id)] == type) fn(id);
  }
}

size_t PropertyGraph::DistinctDirectedPairs(bool include_loops) const {
  std::unordered_set<uint64_t> pairs;
  pairs.reserve(EdgeCount());
  for (size_t e = 0; e < EdgeCount(); ++e) {
    if (!include_loops && edge_from_[e] == edge_to_[e]) continue;
    pairs.insert((static_cast<uint64_t>(edge_from_[e]) << 32) ^
                 static_cast<uint64_t>(edge_to_[e]));
  }
  return pairs.size();
}

size_t PropertyGraph::DistinctUndirectedPairs(bool include_loops) const {
  std::unordered_set<uint64_t> pairs;
  pairs.reserve(EdgeCount());
  for (size_t e = 0; e < EdgeCount(); ++e) {
    NodeId a = edge_from_[e], b = edge_to_[e];
    if (!include_loops && a == b) continue;
    if (a > b) std::swap(a, b);
    pairs.insert((static_cast<uint64_t>(a) << 32) ^ static_cast<uint64_t>(b));
  }
  return pairs.size();
}

}  // namespace bikegraph::graphdb
