#include "graphdb/property_value.h"

#include "core/string_util.h"

namespace bikegraph::graphdb {

Result<int64_t> PropertyValue::AsInt() const {
  if (auto* v = std::get_if<int64_t>(&value_)) return *v;
  return Status::InvalidArgument("property is not an integer");
}

Result<double> PropertyValue::AsDouble() const {
  if (auto* v = std::get_if<double>(&value_)) return *v;
  if (auto* v = std::get_if<int64_t>(&value_)) return static_cast<double>(*v);
  return Status::InvalidArgument("property is not numeric");
}

Result<bool> PropertyValue::AsBool() const {
  if (auto* v = std::get_if<bool>(&value_)) return *v;
  return Status::InvalidArgument("property is not a boolean");
}

Result<std::string> PropertyValue::AsString() const {
  if (auto* v = std::get_if<std::string>(&value_)) return *v;
  return Status::InvalidArgument("property is not a string");
}

double PropertyValue::NumericOr(double fallback) const {
  if (auto* v = std::get_if<double>(&value_)) return *v;
  if (auto* v = std::get_if<int64_t>(&value_)) return static_cast<double>(*v);
  if (auto* v = std::get_if<bool>(&value_)) return *v ? 1.0 : 0.0;
  return fallback;
}

std::string PropertyValue::ToString() const {
  if (is_null()) return "null";
  if (auto* v = std::get_if<int64_t>(&value_)) return std::to_string(*v);
  if (auto* v = std::get_if<double>(&value_)) return FormatDouble(*v, 6);
  if (auto* v = std::get_if<bool>(&value_)) return *v ? "true" : "false";
  return std::get<std::string>(value_);
}

}  // namespace bikegraph::graphdb
