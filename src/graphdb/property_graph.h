#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/result.h"
#include "graphdb/property_value.h"

#include "core/checked_cast.h"

namespace bikegraph::graphdb {

using NodeId = int64_t;
using EdgeId = int64_t;

/// \brief An in-memory labelled property graph — the library's substitute
/// for the Neo4j store used in the paper.
///
/// Data model:
///  - nodes carry a label (e.g. "Station") and a property map;
///  - relationships are directed, typed (e.g. "TRIP"), may be parallel
///    (multigraph — one relationship per trip in GDay/GHour) and carry
///    their own property map;
///  - adjacency is indexed in both directions.
///
/// Ids are dense and assigned sequentially by AddNode/AddEdge, so they can
/// index into caller-side arrays directly.
class PropertyGraph {
 public:
  PropertyGraph() = default;

  /// Adds a node; returns its dense id (0-based).
  NodeId AddNode(std::string label);

  /// Adds a directed relationship; endpoints must exist.
  Result<EdgeId> AddEdge(NodeId from, NodeId to, std::string type);

  size_t NodeCount() const { return node_labels_.size(); }
  size_t EdgeCount() const { return edge_from_.size(); }

  bool HasNode(NodeId id) const {
    return id >= 0 && static_cast<size_t>(id) < NodeCount();
  }
  bool HasEdge(EdgeId id) const {
    return id >= 0 && static_cast<size_t>(id) < EdgeCount();
  }

  const std::string& NodeLabel(NodeId id) const { return node_labels_[AsIndex(id)]; }
  const std::string& EdgeType(EdgeId id) const { return edge_types_[AsIndex(id)]; }
  NodeId EdgeFrom(EdgeId id) const { return edge_from_[AsIndex(id)]; }
  NodeId EdgeTo(EdgeId id) const { return edge_to_[AsIndex(id)]; }

  /// Property access. Setting overwrites; getting a missing key returns a
  /// null PropertyValue.
  Status SetNodeProperty(NodeId id, const std::string& key, PropertyValue v);
  Status SetEdgeProperty(EdgeId id, const std::string& key, PropertyValue v);
  PropertyValue GetNodeProperty(NodeId id, const std::string& key) const;
  PropertyValue GetEdgeProperty(EdgeId id, const std::string& key) const;

  /// Outgoing / incoming relationship ids of a node.
  const std::vector<EdgeId>& OutEdges(NodeId id) const { return out_edges_[AsIndex(id)]; }
  const std::vector<EdgeId>& InEdges(NodeId id) const { return in_edges_[AsIndex(id)]; }

  /// Degree counts on the multigraph (parallel edges counted separately;
  /// self-loops counted once in each direction).
  size_t OutDegree(NodeId id) const { return out_edges_[AsIndex(id)].size(); }
  size_t InDegree(NodeId id) const { return in_edges_[AsIndex(id)].size(); }
  size_t Degree(NodeId id) const { return OutDegree(id) + InDegree(id); }

  /// Calls `fn` for every node id with the given label ("" = all).
  void ForEachNode(const std::string& label,
                   const std::function<void(NodeId)>& fn) const;

  /// Calls `fn` for every edge id with the given type ("" = all).
  void ForEachEdge(const std::string& type,
                   const std::function<void(EdgeId)>& fn) const;

  /// Number of distinct (from, to) ordered pairs, optionally skipping loops
  /// — the "directed edges (no loops)" counters in the paper's Table II.
  size_t DistinctDirectedPairs(bool include_loops) const;

  /// Number of distinct unordered {from, to} pairs.
  size_t DistinctUndirectedPairs(bool include_loops) const;

 private:
  std::vector<std::string> node_labels_;
  std::vector<std::string> edge_types_;
  std::vector<NodeId> edge_from_;
  std::vector<NodeId> edge_to_;
  std::vector<std::vector<EdgeId>> out_edges_;
  std::vector<std::vector<EdgeId>> in_edges_;
  std::vector<std::unordered_map<std::string, PropertyValue>> node_props_;
  std::vector<std::unordered_map<std::string, PropertyValue>> edge_props_;
};

}  // namespace bikegraph::graphdb
