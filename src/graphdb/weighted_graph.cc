#include "graphdb/weighted_graph.h"

#include <algorithm>
#include <cmath>

#include "graphdb/property_graph.h"

namespace bikegraph::graphdb {

double WeightedGraph::WeightBetween(int32_t u, int32_t v) const {
  if (u == v) return self_weight_[u];
  auto row = neighbors(u);
  auto it = std::lower_bound(
      row.begin(), row.end(), v,
      [](const Neighbor& n, int32_t node) { return n.node < node; });
  if (it != row.end() && it->node == v) return it->weight;
  return 0.0;
}

WeightedGraphBuilder::WeightedGraphBuilder(size_t node_count)
    : node_count_(node_count),
      check_limit_(static_cast<uint32_t>(
          std::min<size_t>(node_count, uint32_t{1} << 31))),
      self_weight_(node_count, 0.0) {}

namespace {

/// One scattered adjacency entry: the key packs (neighbour, slot) so a
/// plain key sort orders each row by neighbour id while keeping parallel
/// edges in insertion order — weight accumulation then matches what an
/// incremental map would have produced, bit for bit. The weight travels in
/// the same 16 bytes, so neither the sort nor the merge scan touches a
/// second array.
struct RowEntry {
  RowEntry() {}  // intentionally no init: buffers are fully overwritten
  RowEntry(uint64_t k, double weight) : key(k), w(weight) {}
  uint64_t key;
  double w;
  bool operator<(const RowEntry& o) const { return key < o.key; }
};

/// `slot` may be any value ascending in insertion order within the row —
/// the global scatter position qualifies.
inline uint64_t PackRowKey(int32_t neighbor, uint32_t slot) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(neighbor)) << 32) |
         slot;
}

/// Keys are unique, so plain insertion sort; rows are short, so the inline
/// loop beats a std::sort dispatch per row.
inline void SortRow(RowEntry* begin, RowEntry* end) {
  if (end - begin > 32) {
    std::sort(begin, end);
    return;
  }
  for (RowEntry* i = begin + 1; i < end; ++i) {
    if (i[-1].key <= i->key) continue;
    RowEntry tmp = *i;
    RowEntry* j = i;
    do {
      *j = j[-1];
      --j;
    } while (j > begin && j[-1].key > tmp.key);
    *j = tmp;
  }
}

}  // namespace

WeightedGraph WeightedGraphBuilder::Build() const {
  const size_t n = node_count_;
  WeightedGraph g;
  g.self_weight_ = self_weight_;
  g.strength_.assign(n, 0.0);
  g.offsets_.assign(n + 1, 0);

  // Single symmetric counting sort: scatter both directions of every edge
  // into per-node rows, sort each short row by (neighbour, insertion
  // order), then merge duplicates straight into the final CSR arrays.
  const size_t entries = 2 * edges_.size();
  std::vector<uint32_t> start(n + 1, 0);
  for (const EdgeTriple& e : edges_) {
    ++start[e.u + 1];
    ++start[e.v + 1];
  }
  for (size_t u = 0; u < n; ++u) start[u + 1] += start[u];

  // Scatter, using start[] itself as the cursor array — afterwards start[u]
  // holds the END of row u, so row boundaries are still recoverable.
  std::vector<RowEntry> rows(entries);
  for (const EdgeTriple& e : edges_) {
    const uint32_t p = start[e.u]++;
    rows[p] = RowEntry(PackRowKey(e.v, p), e.w);
    const uint32_t q = start[e.v]++;
    rows[q] = RowEntry(PackRowKey(e.u, q), e.w);
  }

  g.adj_.resize(entries);  // upper bound; Neighbor() performs no init
  size_t out = 0;
  size_t pair_count = 0;
  g.offsets_[0] = 0;
  for (size_t u = 0; u < n; ++u) {
    const uint32_t beg = u == 0 ? 0 : start[u - 1], end = start[u];
    if (end - beg > 1) SortRow(rows.data() + beg, rows.data() + end);
    double strength = 0.0;
    for (uint32_t i = beg; i < end;) {
      const int32_t v = static_cast<int32_t>(rows[i].key >> 32);
      double w = 0.0;
      while (i < end && static_cast<int32_t>(rows[i].key >> 32) == v) {
        w += rows[i].w;
        ++i;
      }
      g.adj_[out++] = WeightedGraph::Neighbor(v, w);
      strength += w;
      if (v > static_cast<int32_t>(u)) ++pair_count;
    }
    g.strength_[u] = strength;
    g.offsets_[u + 1] = out;
  }
  g.adj_.resize(out);
  if (g.adj_.capacity() > 2 * (out + 8)) g.adj_.shrink_to_fit();
  g.edge_count_ = pair_count;
  double total = 0.0;
  size_t loops = 0;
  for (size_t u = 0; u < n; ++u) {
    total += g.strength_[u];
    if (g.self_weight_[u] > 0.0) ++loops;
    g.strength_[u] += 2.0 * g.self_weight_[u];
  }
  total /= 2.0;
  for (size_t u = 0; u < n; ++u) total += g.self_weight_[u];
  g.total_weight_ = total;
  g.self_loop_count_ = loops;
  return g;
}

Result<WeightedGraph> ProjectUndirected(const PropertyGraph& graph,
                                        const ProjectionOptions& options) {
  WeightedGraphBuilder builder(graph.NodeCount());
  Status status = Status::OK();
  graph.ForEachEdge(options.edge_type, [&](EdgeId e) {
    if (!status.ok()) return;
    NodeId from = graph.EdgeFrom(e);
    NodeId to = graph.EdgeTo(e);
    if (!options.include_loops && from == to) return;
    double w = 1.0;
    if (!options.weight_property.empty()) {
      w = graph.GetEdgeProperty(e, options.weight_property).NumericOr(1.0);
    }
    status = builder.AddEdge(static_cast<int32_t>(from),
                             static_cast<int32_t>(to), w);
  });
  BIKEGRAPH_RETURN_NOT_OK(status);
  return builder.Build();
}

DigraphBuilder::DigraphBuilder(size_t node_count) : node_count_(node_count) {}

Digraph DigraphBuilder::Build() const {
  const size_t n = node_count_;
  Digraph g;
  g.out_offsets_.assign(n + 1, 0);
  g.in_offsets_.assign(n + 1, 0);
  g.out_strength_.assign(n, 0.0);
  g.in_strength_.assign(n, 0.0);

  // Counting sort by `from`, then the same fused in-place sort/merge/compact
  // as the undirected builder; the in-adjacency is derived from the merged
  // out-rows afterwards.
  std::vector<uint32_t> start(n + 1, 0);
  for (const EdgeTriple& e : edges_) ++start[e.from + 1];
  for (size_t u = 0; u < n; ++u) start[u + 1] += start[u];
  g.out_adj_.resize(edges_.size());
  Digraph::Neighbor* adj = g.out_adj_.data();
  for (const EdgeTriple& e : edges_) {
    adj[start[e.from]++] = Digraph::Neighbor(e.to, e.w);
  }
  size_t out = 0;
  for (size_t u = 0; u < n; ++u) {
    const uint32_t beg = u == 0 ? 0 : start[u - 1], end = start[u];
    uint32_t merged_end = beg;
    if (end - beg > 64) {
      std::stable_sort(adj + beg, adj + end,
                       [](const Digraph::Neighbor& a,
                          const Digraph::Neighbor& b) {
                         return a.node < b.node;
                       });
      for (uint32_t i = beg; i < end;) {
        const int32_t v = adj[i].node;
        double w = adj[i].weight;
        ++i;
        while (i < end && adj[i].node == v) {
          w += adj[i].weight;
          ++i;
        }
        adj[merged_end++] = Digraph::Neighbor(v, w);
      }
    } else {
      for (uint32_t i = beg; i < end; ++i) {
        const int32_t v = adj[i].node;
        const double w = adj[i].weight;
        uint32_t j = merged_end;
        while (j > beg && adj[j - 1].node > v) --j;
        if (j > beg && adj[j - 1].node == v) {
          adj[j - 1].weight += w;
          continue;
        }
        for (uint32_t k = merged_end; k > j; --k) adj[k] = adj[k - 1];
        adj[j] = Digraph::Neighbor(v, w);
        ++merged_end;
      }
    }
    double strength = 0.0;
    const uint32_t len = merged_end - beg;
    for (uint32_t i = 0; i < len; ++i) {
      const Digraph::Neighbor nb = adj[beg + i];
      adj[out + i] = nb;
      strength += nb.weight;
      ++g.in_offsets_[nb.node + 1];  // in-degree count over merged edges
    }
    out += len;
    g.out_strength_[u] = strength;
    g.out_offsets_[u + 1] = out;
  }
  g.out_adj_.resize(out);

  for (size_t u = 0; u < n; ++u) g.in_offsets_[u + 1] += g.in_offsets_[u];
  g.in_adj_.resize(out);
  std::vector<size_t> in_cursor(g.in_offsets_.begin(),
                                g.in_offsets_.end() - 1);
  for (size_t u = 0; u < n; ++u) {
    for (size_t i = g.out_offsets_[u]; i < g.out_offsets_[u + 1]; ++i) {
      const Digraph::Neighbor& nb = g.out_adj_[i];
      g.in_adj_[in_cursor[nb.node]++] =
          Digraph::Neighbor(static_cast<int32_t>(u), nb.weight);
      g.in_strength_[nb.node] += nb.weight;
    }
  }
  return g;
}

}  // namespace bikegraph::graphdb
