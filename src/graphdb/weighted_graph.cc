#include "graphdb/weighted_graph.h"

#include <algorithm>
#include <cmath>

#include "graphdb/property_graph.h"

#include "core/checked_cast.h"

namespace bikegraph::graphdb {

double WeightedGraph::WeightBetween(int32_t u, int32_t v) const {
  if (u == v) return self_weight_[AsIndex(u)];
  auto row = neighbors(u);
  auto it = std::lower_bound(
      row.begin(), row.end(), v,
      [](const Neighbor& n, int32_t node) { return n.node < node; });
  if (it != row.end() && it->node == v) return it->weight;
  return 0.0;
}

WeightedGraphBuilder::WeightedGraphBuilder(size_t node_count)
    : node_count_(node_count),
      check_limit_(static_cast<uint32_t>(
          std::min<size_t>(node_count, uint32_t{1} << 31))),
      self_weight_(node_count, 0.0) {}

namespace {

/// One directed adjacency entry mid-radix: 16 bytes, so each scatter
/// pass streams exactly one entry-sized store.
struct DirectedEntry {
  DirectedEntry() {}  // intentionally no init: buffers are fully overwritten
  DirectedEntry(int32_t r, int32_t n, double weight)
      : row(r), nbr(n), w(weight) {}
  int32_t row;
  int32_t nbr;
  double w;
};

}  // namespace

WeightedGraph WeightedGraphBuilder::Build() const {
  const size_t n = node_count_;
  WeightedGraph g;
  g.self_weight_ = self_weight_;
  g.strength_.assign(n, 0.0);
  g.offsets_.assign(n + 1, 0);

  // Two-pass stable LSD radix: scatter every directed entry by its
  // NEIGHBOUR id, then re-scatter that order by ROW id. Afterwards each
  // row is grouped and sorted by neighbour with parallel edges still in
  // AddEdge call order (both passes are stable), so the merge is a plain
  // linear accumulate-compact — no per-row comparison sort at all, which
  // is where the previous builder spent most of its time. Both keys have
  // the same histogram (every edge contributes u and v to each), so one
  // counting pass serves both scatters.
  const size_t entries = 2 * edges_.size();
  std::vector<uint32_t> cnt(n + 1, 0);
  for (const EdgeTriple& e : edges_) {
    ++cnt[AsIndex(e.u + 1)];
    ++cnt[AsIndex(e.v + 1)];
  }
  for (size_t u = 0; u < n; ++u) cnt[u + 1] += cnt[u];

  // Pass 1: order by neighbour id (the future within-row order).
  std::vector<DirectedEntry> by_nbr(entries);
  // Fresh cursor copies per pass keep cnt itself reusable as the row
  // boundaries for the merge.
  std::vector<uint32_t> cursor(cnt.begin(), cnt.end() - 1);
  for (const EdgeTriple& e : edges_) {
    by_nbr[cursor[AsIndex(e.v)]] = DirectedEntry(e.u, e.v, e.w);
    ++cursor[AsIndex(e.v)];
    by_nbr[cursor[AsIndex(e.u)]] = DirectedEntry(e.v, e.u, e.w);
    ++cursor[AsIndex(e.u)];
  }

  // Pass 2: stable re-scatter by row with the duplicate merge fused in —
  // a parallel edge arrives right after its twin (same row, same
  // neighbour, insertion order), so it accumulates into the row's tail
  // entry instead of appending. Row begin and write cursor live in one
  // 8-byte struct so the append-or-accumulate decision costs a single
  // random cache line per entry.
  g.adj_.resize(entries);  // upper bound; Neighbor() performs no init
  WeightedGraph::Neighbor* adj = g.adj_.data();
  struct RowCursor {
    uint32_t beg;
    uint32_t cur;
  };
  std::vector<RowCursor> row(n);
  for (size_t u = 0; u < n; ++u) row[u] = RowCursor{cnt[u], cnt[u]};
  for (const DirectedEntry& t : by_nbr) {
    RowCursor& rc = row[AsIndex(t.row)];
    if (rc.cur != rc.beg && adj[rc.cur - 1].node == t.nbr) {
      adj[rc.cur - 1].weight += t.w;
    } else {
      adj[rc.cur++] = WeightedGraph::Neighbor(t.nbr, t.w);
    }
  }

  // Compact the merged rows forward and reduce strengths in one
  // sequential pass.
  size_t out = 0;
  size_t pair_count = 0;
  g.offsets_[0] = 0;
  for (size_t u = 0; u < n; ++u) {
    const uint32_t beg = row[u].beg, end = row[u].cur;
    double strength = 0.0;
    for (uint32_t i = beg; i < end; ++i) {
      const WeightedGraph::Neighbor nb = adj[i];
      adj[out++] = nb;
      strength += nb.weight;
      if (nb.node > static_cast<int32_t>(u)) ++pair_count;
    }
    g.strength_[u] = strength;
    g.offsets_[u + 1] = out;
  }
  g.adj_.resize(out);
  if (g.adj_.capacity() > 2 * (out + 8)) g.adj_.shrink_to_fit();
  g.edge_count_ = pair_count;
  double total = 0.0;
  size_t loops = 0;
  for (size_t u = 0; u < n; ++u) {
    total += g.strength_[u];
    if (g.self_weight_[u] > 0.0) ++loops;
    g.strength_[u] += 2.0 * g.self_weight_[u];
  }
  total /= 2.0;
  for (size_t u = 0; u < n; ++u) total += g.self_weight_[u];
  g.total_weight_ = total;
  g.self_loop_count_ = loops;
  return g;
}

Result<WeightedGraph> WeightedGraphPatcher::Apply(
    const WeightedGraph& base, std::vector<EdgeUpdate> updates) {
  const size_t n = base.node_count();
  for (EdgeUpdate& up : updates) {
    if (up.u < 0 || up.v < 0 || static_cast<size_t>(up.u) >= n ||
        static_cast<size_t>(up.v) >= n) {
      return Status::InvalidArgument("edge update endpoint out of range");
    }
    if (!up.removed && (!std::isfinite(up.weight) || up.weight < 0.0)) {
      return Status::InvalidArgument("edge weight must be finite and >= 0");
    }
    if (up.u > up.v) std::swap(up.u, up.v);
  }
  // One update per pair: stable sort, keep the last of each run.
  std::stable_sort(updates.begin(), updates.end(),
                   [](const EdgeUpdate& a, const EdgeUpdate& b) {
                     return a.u != b.u ? a.u < b.u : a.v < b.v;
                   });
  size_t kept = 0;
  for (size_t i = 0; i < updates.size(); ++i) {
    if (i + 1 < updates.size() && updates[i].u == updates[i + 1].u &&
        updates[i].v == updates[i + 1].v) {
      continue;
    }
    updates[kept++] = updates[i];
  }
  updates.resize(kept);

  WeightedGraph g;
  g.self_weight_ = base.self_weight_;

  // Self updates go straight to the weight array; proper edges become a
  // (row, neighbour)-sorted directed list driving the row merges.
  struct Directed {
    int32_t row, nbr;
    double weight;
    bool removed;
  };
  std::vector<Directed> dir;
  dir.reserve(2 * updates.size());
  std::vector<uint8_t> row_touched(n, 0);
  for (const EdgeUpdate& up : updates) {
    if (up.u == up.v) {
      g.self_weight_[AsIndex(up.u)] = up.removed ? 0.0 : up.weight;
      row_touched[AsIndex(up.u)] = 1;
      continue;
    }
    row_touched[AsIndex(up.u)] = 1;
    row_touched[AsIndex(up.v)] = 1;
    dir.push_back({up.u, up.v, up.weight, up.removed});
    dir.push_back({up.v, up.u, up.weight, up.removed});
  }
  std::sort(dir.begin(), dir.end(),
            [](const Directed& a, const Directed& b) {
              return a.row != b.row ? a.row < b.row : a.nbr < b.nbr;
            });

  g.offsets_.assign(n + 1, 0);
  g.adj_.reserve(base.adj_.size() + dir.size());
  int64_t pair_delta = 0;
  size_t cursor = 0;
  size_t row = 0;
  while (row < n) {
    const size_t next_affected =
        cursor < dir.size() ? static_cast<size_t>(dir[cursor].row) : n;
    if (row < next_affected) {
      // Untouched rows copy as one contiguous block; their offsets just
      // shift by the net insert/remove count so far.
      const size_t from = base.offsets_[row];
      const size_t block_start = g.adj_.size();
      g.adj_.insert(
          g.adj_.end(), base.adj_.begin() + static_cast<std::ptrdiff_t>(from),
          base.adj_.begin() +
              static_cast<std::ptrdiff_t>(base.offsets_[next_affected]));
      for (; row < next_affected; ++row) {
        g.offsets_[row + 1] = block_start + (base.offsets_[row + 1] - from);
      }
      continue;
    }
    // Sorted merge of the old row with its updates.
    auto old_row = base.neighbors(static_cast<int32_t>(row));
    size_t i = 0;
    while (i < old_row.size() ||
           (cursor < dir.size() &&
            static_cast<size_t>(dir[cursor].row) == row)) {
      const bool has_update =
          cursor < dir.size() && static_cast<size_t>(dir[cursor].row) == row;
      if (!has_update ||
          (i < old_row.size() && old_row[i].node < dir[cursor].nbr)) {
        g.adj_.push_back(old_row[i]);
        ++i;
        continue;
      }
      const Directed& up = dir[cursor];
      if (i < old_row.size() && old_row[i].node == up.nbr) {
        // Reweight or remove an existing edge.
        if (!up.removed) {
          g.adj_.push_back(WeightedGraph::Neighbor(up.nbr, up.weight));
        } else if (static_cast<size_t>(up.nbr) > row) {
          --pair_delta;  // each undirected pair is counted from u < v
        }
        ++i;
        ++cursor;
        continue;
      }
      // No existing edge: insert, or ignore a removal of an absent pair.
      if (!up.removed) {
        g.adj_.push_back(WeightedGraph::Neighbor(up.nbr, up.weight));
        if (static_cast<size_t>(up.nbr) > row) ++pair_delta;
      }
      ++cursor;
    }
    g.offsets_[row + 1] = g.adj_.size();
    ++row;
  }

  // Strength and total-weight reduction in exactly Build()'s order (row
  // sums in ascending-neighbour order, then the same two global passes),
  // so an unchanged row keeps bit-identical aggregates. Untouched rows
  // skip the re-sum: with a zero (and untouched) self weight, the
  // stored strength IS the row sum bitwise (x + 0.0 == x), so only
  // touched rows and self-loop carriers pay the adjacency walk.
  g.strength_.assign(n, 0.0);
  for (size_t u = 0; u < n; ++u) {
    // lint: float-eq-ok: 0.0 self weight is an exact untouched
    // sentinel (assigned, never computed); the x + 0.0 == x
    // identity above depends on it being exactly zero.
    if (row_touched[u] == 0 && g.self_weight_[u] == 0.0) {
      g.strength_[u] = base.strength_[u];
      continue;
    }
    double strength = 0.0;
    for (size_t i = g.offsets_[u]; i < g.offsets_[u + 1]; ++i) {
      strength += g.adj_[i].weight;
    }
    g.strength_[u] = strength;
  }
  g.edge_count_ =
      static_cast<size_t>(static_cast<int64_t>(base.edge_count_) + pair_delta);
  double total = 0.0;
  size_t loops = 0;
  for (size_t u = 0; u < n; ++u) {
    total += g.strength_[u];
    if (g.self_weight_[u] > 0.0) ++loops;
    g.strength_[u] += 2.0 * g.self_weight_[u];
  }
  total /= 2.0;
  for (size_t u = 0; u < n; ++u) total += g.self_weight_[u];
  g.total_weight_ = total;
  g.self_loop_count_ = loops;
  return g;
}

Result<WeightedGraph> ProjectUndirected(const PropertyGraph& graph,
                                        const ProjectionOptions& options) {
  WeightedGraphBuilder builder(graph.NodeCount());
  Status status = Status::OK();
  graph.ForEachEdge(options.edge_type, [&](EdgeId e) {
    if (!status.ok()) return;
    NodeId from = graph.EdgeFrom(e);
    NodeId to = graph.EdgeTo(e);
    if (!options.include_loops && from == to) return;
    double w = 1.0;
    if (!options.weight_property.empty()) {
      w = graph.GetEdgeProperty(e, options.weight_property).NumericOr(1.0);
    }
    status = builder.AddEdge(static_cast<int32_t>(from),
                             static_cast<int32_t>(to), w);
  });
  BIKEGRAPH_RETURN_NOT_OK(status);
  return builder.Build();
}

DigraphBuilder::DigraphBuilder(size_t node_count) : node_count_(node_count) {}

Digraph DigraphBuilder::Build() const {
  const size_t n = node_count_;
  Digraph g;
  g.out_offsets_.assign(n + 1, 0);
  g.in_offsets_.assign(n + 1, 0);
  g.out_strength_.assign(n, 0.0);
  g.in_strength_.assign(n, 0.0);

  // Counting sort by `from`, then the same fused in-place sort/merge/compact
  // as the undirected builder; the in-adjacency is derived from the merged
  // out-rows afterwards.
  std::vector<uint32_t> start(n + 1, 0);
  for (const EdgeTriple& e : edges_) ++start[AsIndex(e.from + 1)];
  for (size_t u = 0; u < n; ++u) start[u + 1] += start[u];
  g.out_adj_.resize(edges_.size());
  Digraph::Neighbor* adj = g.out_adj_.data();
  for (const EdgeTriple& e : edges_) {
    adj[start[AsIndex(e.from)]++] = Digraph::Neighbor(e.to, e.w);
  }
  size_t out = 0;
  for (size_t u = 0; u < n; ++u) {
    const uint32_t beg = u == 0 ? 0 : start[u - 1], end = start[u];
    uint32_t merged_end = beg;
    if (end - beg > 64) {
      std::stable_sort(adj + beg, adj + end,
                       [](const Digraph::Neighbor& a,
                          const Digraph::Neighbor& b) {
                         return a.node < b.node;
                       });
      for (uint32_t i = beg; i < end;) {
        const int32_t v = adj[i].node;
        double w = adj[i].weight;
        ++i;
        while (i < end && adj[i].node == v) {
          w += adj[i].weight;
          ++i;
        }
        adj[merged_end++] = Digraph::Neighbor(v, w);
      }
    } else {
      for (uint32_t i = beg; i < end; ++i) {
        const int32_t v = adj[i].node;
        const double w = adj[i].weight;
        uint32_t j = merged_end;
        while (j > beg && adj[j - 1].node > v) --j;
        if (j > beg && adj[j - 1].node == v) {
          adj[j - 1].weight += w;
          continue;
        }
        for (uint32_t k = merged_end; k > j; --k) adj[k] = adj[k - 1];
        adj[j] = Digraph::Neighbor(v, w);
        ++merged_end;
      }
    }
    double strength = 0.0;
    const uint32_t len = merged_end - beg;
    for (uint32_t i = 0; i < len; ++i) {
      const Digraph::Neighbor nb = adj[beg + i];
      adj[out + i] = nb;
      strength += nb.weight;
      ++g.in_offsets_[AsIndex(nb.node + 1)];  // in-degree count over merged edges
    }
    out += len;
    g.out_strength_[u] = strength;
    g.out_offsets_[u + 1] = out;
  }
  g.out_adj_.resize(out);

  for (size_t u = 0; u < n; ++u) g.in_offsets_[u + 1] += g.in_offsets_[u];
  g.in_adj_.resize(out);
  std::vector<size_t> in_cursor(g.in_offsets_.begin(),
                                g.in_offsets_.end() - 1);
  for (size_t u = 0; u < n; ++u) {
    for (size_t i = g.out_offsets_[u]; i < g.out_offsets_[u + 1]; ++i) {
      const Digraph::Neighbor& nb = g.out_adj_[i];
      g.in_adj_[in_cursor[AsIndex(nb.node)]++] =
          Digraph::Neighbor(static_cast<int32_t>(u), nb.weight);
      g.in_strength_[AsIndex(nb.node)] += nb.weight;
    }
  }
  return g;
}

}  // namespace bikegraph::graphdb
