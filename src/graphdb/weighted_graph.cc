#include "graphdb/weighted_graph.h"

#include <cmath>

#include "graphdb/property_graph.h"

namespace bikegraph::graphdb {

double WeightedGraph::WeightBetween(int32_t u, int32_t v) const {
  if (u == v) return self_weight_[u];
  for (const Neighbor& n : neighbors(u)) {
    if (n.node == v) return n.weight;
  }
  return 0.0;
}

WeightedGraphBuilder::WeightedGraphBuilder(size_t node_count)
    : pair_weights_(node_count), self_weight_(node_count, 0.0) {}

Status WeightedGraphBuilder::AddEdge(int32_t u, int32_t v, double weight) {
  if (u < 0 || v < 0 || static_cast<size_t>(u) >= pair_weights_.size() ||
      static_cast<size_t>(v) >= pair_weights_.size()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (!std::isfinite(weight) || weight < 0.0) {
    return Status::InvalidArgument("edge weight must be finite and >= 0");
  }
  if (u == v) {
    self_weight_[u] += weight;
    return Status::OK();
  }
  if (u > v) std::swap(u, v);
  pair_weights_[u][v] += weight;
  return Status::OK();
}

WeightedGraph WeightedGraphBuilder::Build() const {
  const size_t n = pair_weights_.size();
  WeightedGraph g;
  g.self_weight_ = self_weight_;
  g.strength_.assign(n, 0.0);
  g.offsets_.assign(n + 1, 0);

  // First pass: count symmetric adjacency entries.
  std::vector<size_t> deg(n, 0);
  size_t pair_count = 0;
  for (size_t u = 0; u < n; ++u) {
    for (const auto& [v, w] : pair_weights_[u]) {
      ++deg[u];
      ++deg[v];
      ++pair_count;
      (void)w;
    }
  }
  g.offsets_[0] = 0;
  for (size_t u = 0; u < n; ++u) g.offsets_[u + 1] = g.offsets_[u] + deg[u];
  g.adj_.resize(g.offsets_[n]);

  std::vector<size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (size_t u = 0; u < n; ++u) {
    for (const auto& [v, w] : pair_weights_[u]) {
      g.adj_[cursor[u]++] = {static_cast<int32_t>(v), w};
      g.adj_[cursor[v]++] = {static_cast<int32_t>(u), w};
      g.strength_[u] += w;
      g.strength_[v] += w;
    }
  }
  g.edge_count_ = pair_count;
  double total = 0.0;
  size_t loops = 0;
  for (size_t u = 0; u < n; ++u) {
    total += g.strength_[u];
    if (g.self_weight_[u] > 0.0) ++loops;
    g.strength_[u] += 2.0 * g.self_weight_[u];
  }
  total /= 2.0;
  for (size_t u = 0; u < n; ++u) total += g.self_weight_[u];
  g.total_weight_ = total;
  g.self_loop_count_ = loops;
  return g;
}

Result<WeightedGraph> ProjectUndirected(const PropertyGraph& graph,
                                        const ProjectionOptions& options) {
  WeightedGraphBuilder builder(graph.NodeCount());
  Status status = Status::OK();
  graph.ForEachEdge(options.edge_type, [&](EdgeId e) {
    if (!status.ok()) return;
    NodeId from = graph.EdgeFrom(e);
    NodeId to = graph.EdgeTo(e);
    if (!options.include_loops && from == to) return;
    double w = 1.0;
    if (!options.weight_property.empty()) {
      w = graph.GetEdgeProperty(e, options.weight_property).NumericOr(1.0);
    }
    status = builder.AddEdge(static_cast<int32_t>(from),
                             static_cast<int32_t>(to), w);
  });
  BIKEGRAPH_RETURN_NOT_OK(status);
  return builder.Build();
}

DigraphBuilder::DigraphBuilder(size_t node_count) : out_(node_count) {}

Status DigraphBuilder::AddEdge(int32_t from, int32_t to, double weight) {
  if (from < 0 || to < 0 || static_cast<size_t>(from) >= out_.size() ||
      static_cast<size_t>(to) >= out_.size()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (!std::isfinite(weight) || weight < 0.0) {
    return Status::InvalidArgument("edge weight must be finite and >= 0");
  }
  out_[from][to] += weight;
  return Status::OK();
}

Digraph DigraphBuilder::Build() const {
  const size_t n = out_.size();
  Digraph g;
  g.out_offsets_.assign(n + 1, 0);
  g.in_offsets_.assign(n + 1, 0);
  g.out_strength_.assign(n, 0.0);
  g.in_strength_.assign(n, 0.0);

  std::vector<size_t> in_deg(n, 0);
  size_t total_edges = 0;
  for (size_t u = 0; u < n; ++u) {
    total_edges += out_[u].size();
    for (const auto& [v, w] : out_[u]) {
      ++in_deg[v];
      (void)w;
    }
  }
  for (size_t u = 0; u < n; ++u) {
    g.out_offsets_[u + 1] = g.out_offsets_[u] + out_[u].size();
    g.in_offsets_[u + 1] = g.in_offsets_[u] + in_deg[u];
  }
  g.out_adj_.resize(total_edges);
  g.in_adj_.resize(total_edges);

  std::vector<size_t> out_cursor(g.out_offsets_.begin(),
                                 g.out_offsets_.end() - 1);
  std::vector<size_t> in_cursor(g.in_offsets_.begin(),
                                g.in_offsets_.end() - 1);
  for (size_t u = 0; u < n; ++u) {
    for (const auto& [v, w] : out_[u]) {
      g.out_adj_[out_cursor[u]++] = {static_cast<int32_t>(v), w};
      g.in_adj_[in_cursor[v]++] = {static_cast<int32_t>(u), w};
      g.out_strength_[u] += w;
      g.in_strength_[v] += w;
    }
  }
  return g;
}

}  // namespace bikegraph::graphdb
