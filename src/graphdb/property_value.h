#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "core/result.h"

namespace bikegraph::graphdb {

/// \brief A typed property value stored on a node or relationship.
///
/// Mirrors the Neo4j property model restricted to the types the pipeline
/// uses: integers (ids, trip counts, day-of-week, hour), floats (weights,
/// coordinates), strings (names) and booleans (is_station).
class PropertyValue {
 public:
  PropertyValue() : value_(std::monostate{}) {}
  PropertyValue(int64_t v) : value_(v) {}              // NOLINT implicit
  PropertyValue(int v) : value_(int64_t{v}) {}         // NOLINT implicit
  PropertyValue(double v) : value_(v) {}               // NOLINT implicit
  PropertyValue(bool v) : value_(v) {}                 // NOLINT implicit
  PropertyValue(std::string v) : value_(std::move(v)) {}  // NOLINT implicit
  PropertyValue(const char* v) : value_(std::string(v)) {}  // NOLINT implicit

  bool is_null() const { return std::holds_alternative<std::monostate>(value_); }
  bool is_int() const { return std::holds_alternative<int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }

  /// Typed accessors; non-matching access is an error status.
  Result<int64_t> AsInt() const;
  Result<double> AsDouble() const;  ///< ints widen to double
  Result<bool> AsBool() const;
  Result<std::string> AsString() const;

  /// Loose numeric view: int/double/bool → double, else 0.0 (used by
  /// weight-by-property projections with a documented default).
  double NumericOr(double fallback) const;

  std::string ToString() const;

  bool operator==(const PropertyValue& other) const {
    return value_ == other.value_;
  }

 private:
  std::variant<std::monostate, int64_t, double, bool, std::string> value_;
};

}  // namespace bikegraph::graphdb
