#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/result.h"

#include "core/checked_cast.h"

namespace bikegraph::graphdb {

class PropertyGraph;

/// \brief An immutable undirected weighted simple graph in CSR form — the
/// input format of all community-detection and metric algorithms.
///
/// Parallel edges are merged by weight accumulation at build time.
/// Self-loops are stored separately from the adjacency lists. Weight
/// conventions follow standard practice for modularity:
///  - `strength(u)` = Σ_v w(u,v) + 2·self_weight(u);
///  - `total_weight()` (the `m` of eq. 2) = Σ_{u<v} w(u,v) + Σ_u self(u)
///    = Σ_u strength(u) / 2.
class WeightedGraph {
 public:
  struct Neighbor {
    Neighbor() {}  // no init: Build() fills adjacency without a memset pass
    Neighbor(int32_t n, double w) : node(n), weight(w) {}
    int32_t node;
    double weight;
  };

  /// An empty graph (0 nodes); usable as a value-type default.
  WeightedGraph() : offsets_{0} {}

  size_t node_count() const { return offsets_.size() - 1; }
  size_t edge_count() const { return edge_count_; }  ///< distinct u<v pairs
  size_t self_loop_count() const { return self_loop_count_; }

  /// Neighbors of `u`, sorted ascending by node id (a Build() invariant).
  std::span<const Neighbor> neighbors(int32_t u) const {
    return {adj_.data() + offsets_[AsIndex(u)], offsets_[AsIndex(u + 1)] - offsets_[AsIndex(u)]};
  }
  double self_weight(int32_t u) const { return self_weight_[AsIndex(u)]; }
  double strength(int32_t u) const { return strength_[AsIndex(u)]; }
  size_t degree(int32_t u) const { return offsets_[AsIndex(u + 1)] - offsets_[AsIndex(u)]; }
  double total_weight() const { return total_weight_; }

  /// Weight of edge {u,v}; 0 when absent. O(log degree(u)) binary search
  /// over the sorted adjacency row.
  double WeightBetween(int32_t u, int32_t v) const;

 private:
  friend class WeightedGraphBuilder;
  friend class WeightedGraphPatcher;
  std::vector<size_t> offsets_;
  std::vector<Neighbor> adj_;
  std::vector<double> self_weight_;
  std::vector<double> strength_;
  double total_weight_ = 0.0;
  size_t edge_count_ = 0;
  size_t self_loop_count_ = 0;
};

/// \brief Accumulating builder for WeightedGraph.
///
/// AddEdge(u, v, w) accumulates weight onto the unordered pair {u, v};
/// u == v accumulates a self-loop. Build() freezes into CSR.
///
/// AddEdge is an O(1) append into a flat edge-triple buffer — no per-edge
/// node allocations. Parallel edges are merged once at Build() by a stable
/// sort + linear scan, so duplicate weights accumulate in AddEdge call
/// order (bit-identical to incremental accumulation).
class WeightedGraphBuilder {
 public:
  explicit WeightedGraphBuilder(size_t node_count);

  /// Accumulates weight on {u,v}. Returns InvalidArgument for bad ids or
  /// non-finite/negative weight. Inline: this is called once per edge on
  /// every graph-construction hot path.
  Status AddEdge(int32_t u, int32_t v, double weight = 1.0) {
    // Unsigned compares cover the range checks and negatives in one branch
    // each (negative ids wrap to huge unsigned values).
    if (static_cast<uint32_t>(u) >= check_limit_ ||
        static_cast<uint32_t>(v) >= check_limit_) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    if (!std::isfinite(weight) || weight < 0.0) {
      return Status::InvalidArgument("edge weight must be finite and >= 0");
    }
    if (u == v) {
      self_weight_[AsIndex(u)] += weight;
      return Status::OK();
    }
    if (u > v) std::swap(u, v);
    // Grow 4x: large buffers come from fresh pages, so fewer reallocations
    // beat tighter memory on every platform we run on.
    if (edges_.size() == edges_.capacity()) {
      edges_.reserve(edges_.capacity() < 256 ? 1024 : 4 * edges_.capacity());
    }
    edges_.push_back(EdgeTriple{u, v, weight});
    return Status::OK();
  }

  /// Pre-sizes the edge buffer for `edge_count` AddEdge calls.
  void Reserve(size_t edge_count) { edges_.reserve(edge_count); }

  size_t node_count() const { return node_count_; }

  WeightedGraph Build() const;

 private:
  struct EdgeTriple {
    int32_t u, v;  // canonicalised so u < v
    double w;
  };
  size_t node_count_;
  uint32_t check_limit_;  // min(node_count, 2^31): ids are int32
  std::vector<EdgeTriple> edges_;
  std::vector<double> self_weight_;
};

/// \brief Copy-on-write edge patching of an immutable WeightedGraph.
///
/// `Apply(base, updates)` returns the graph a WeightedGraphBuilder would
/// produce from base's edge set with the updates applied — bit-identical,
/// including float accumulation order of per-node strengths and the total
/// weight — without re-sorting or re-merging the untouched rows: runs of
/// unaffected adjacency rows are block-copied, affected rows are merged
/// with their sorted updates, and the strength/total reduction is a single
/// sequential pass. Cost is O(nodes + edges copied + updates log updates),
/// with no hashing and no per-edge weight recomputation — the incremental
/// backbone of the streaming snapshot delta freeze (stream/snapshot.h).
class WeightedGraphPatcher {
 public:
  /// One absolute edge-state change: pair {u, v} now carries `weight`
  /// (inserted if absent, reweighted if present), or no longer exists
  /// (`removed`, `weight` ignored). u == v addresses the self-loop.
  /// Duplicate pairs in one batch are allowed; the last wins.
  struct EdgeUpdate {
    int32_t u = 0;
    int32_t v = 0;
    double weight = 0.0;
    bool removed = false;
  };

  /// Applies `updates` to `base`. InvalidArgument on out-of-range ids or
  /// non-finite/negative weights (matching WeightedGraphBuilder::AddEdge);
  /// removing an absent edge is a no-op.
  static Result<WeightedGraph> Apply(const WeightedGraph& base,
                                     std::vector<EdgeUpdate> updates);
};

/// \brief Options for projecting a PropertyGraph into a WeightedGraph.
struct ProjectionOptions {
  /// Edge type filter; empty = all relationships.
  std::string edge_type;
  /// If non-empty, edge weight is this numeric property (missing -> 1.0);
  /// otherwise each relationship contributes weight 1.
  std::string weight_property;
  /// Drop self-loops entirely.
  bool include_loops = true;
};

/// \brief Collapses a (multi-)PropertyGraph into an undirected weighted
/// simple graph. Node ids are preserved (dense in both).
Result<WeightedGraph> ProjectUndirected(const PropertyGraph& graph,
                                        const ProjectionOptions& options = {});

/// \brief A small immutable directed graph in CSR form (out- and in-
/// adjacency), used by PageRank and the directed summary statistics.
class Digraph {
 public:
  struct Neighbor {
    Neighbor() {}  // no init: Build() fills adjacency without a memset pass
    Neighbor(int32_t n, double w) : node(n), weight(w) {}
    int32_t node;
    double weight;
  };

  size_t node_count() const { return out_offsets_.size() - 1; }
  size_t edge_count() const { return out_adj_.size(); }

  std::span<const Neighbor> out_neighbors(int32_t u) const {
    return {out_adj_.data() + out_offsets_[AsIndex(u)],
            out_offsets_[AsIndex(u + 1)] - out_offsets_[AsIndex(u)]};
  }
  std::span<const Neighbor> in_neighbors(int32_t u) const {
    return {in_adj_.data() + in_offsets_[AsIndex(u)],
            in_offsets_[AsIndex(u + 1)] - in_offsets_[AsIndex(u)]};
  }
  double out_strength(int32_t u) const { return out_strength_[AsIndex(u)]; }
  double in_strength(int32_t u) const { return in_strength_[AsIndex(u)]; }

 private:
  friend class DigraphBuilder;
  std::vector<size_t> out_offsets_, in_offsets_;
  std::vector<Neighbor> out_adj_, in_adj_;
  std::vector<double> out_strength_, in_strength_;
};

/// \brief Accumulating builder for Digraph (parallel edges merged at
/// Build() by stable sort + scan, like WeightedGraphBuilder).
class DigraphBuilder {
 public:
  explicit DigraphBuilder(size_t node_count);
  Status AddEdge(int32_t from, int32_t to, double weight = 1.0) {
    if (from < 0 || to < 0 || static_cast<size_t>(from) >= node_count_ ||
        static_cast<size_t>(to) >= node_count_) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    if (!std::isfinite(weight) || weight < 0.0) {
      return Status::InvalidArgument("edge weight must be finite and >= 0");
    }
    if (edges_.size() == edges_.capacity()) {
      edges_.reserve(edges_.capacity() < 256 ? 1024 : 4 * edges_.capacity());
    }
    edges_.push_back(EdgeTriple{from, to, weight});
    return Status::OK();
  }
  void Reserve(size_t edge_count) { edges_.reserve(edge_count); }
  Digraph Build() const;

 private:
  struct EdgeTriple {
    int32_t from, to;
    double w;
  };
  size_t node_count_;
  std::vector<EdgeTriple> edges_;
};

}  // namespace bikegraph::graphdb
