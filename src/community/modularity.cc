#include "community/modularity.h"

#include "core/checked_cast.h"

namespace bikegraph::community {

double Modularity(const graphdb::WeightedGraph& graph,
                  const Partition& partition, double resolution) {
  const size_t n = graph.node_count();
  if (n == 0 || partition.assignment.size() != n) return 0.0;
  const double m = graph.total_weight();
  if (m <= 0.0) return 0.0;

  const size_t k = partition.CommunityCount();
  std::vector<double> sigma_in(k, 0.0);   // 2 * internal weight
  std::vector<double> sigma_tot(k, 0.0);  // summed strength

  for (size_t u = 0; u < n; ++u) {
    const int32_t cu = partition.assignment[u];
    sigma_tot[AsIndex(cu)] += graph.strength(static_cast<int32_t>(u));
    sigma_in[AsIndex(cu)] += 2.0 * graph.self_weight(static_cast<int32_t>(u));
    for (const auto& nb : graph.neighbors(static_cast<int32_t>(u))) {
      if (partition.assignment[AsIndex(nb.node)] == cu) {
        sigma_in[AsIndex(cu)] += nb.weight;  // each internal edge visited from both ends
      }
    }
  }

  double q = 0.0;
  const double two_m = 2.0 * m;
  for (size_t c = 0; c < k; ++c) {
    q += sigma_in[c] / two_m -
         resolution * (sigma_tot[c] / two_m) * (sigma_tot[c] / two_m);
  }
  return q;
}

}  // namespace bikegraph::community
