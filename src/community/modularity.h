#pragma once

#include "community/partition.h"
#include "graphdb/weighted_graph.h"

namespace bikegraph::community {

/// \brief Newman weighted modularity of a partition (paper eq. 2):
///
///   Q = Σ_c [ Σ_in(c) / 2m − (Σ_tot(c) / 2m)² ]
///
/// where m is the graph's total edge weight, Σ_in(c) the total weight of
/// intra-community edge endpoints (each internal edge counted twice, self
/// loops twice) and Σ_tot(c) the summed strength of the community's nodes.
/// Q ∈ [−1, 1]; positive values indicate community structure.
///
/// `resolution` is the standard γ multiplier on the null-model term
/// (γ = 1 is the paper's setting).
double Modularity(const graphdb::WeightedGraph& graph,
                  const Partition& partition, double resolution = 1.0);

}  // namespace bikegraph::community
