#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/result.h"
#include "community/partition.h"
#include "graphdb/weighted_graph.h"

namespace bikegraph::community {

/// \brief Identifier of a community-detection algorithm in the registry.
///
/// Louvain is the algorithm the paper runs (via Neo4j GDS); the other three
/// are the comparison algorithms it names as future work. Adding an
/// algorithm means adding an enum value and one registry entry in
/// detector.cc — every consumer that iterates `ListAlgorithms()` (ablation
/// benches, sweeps, examples) picks it up without code changes.
enum class AlgorithmId : int32_t {
  kLouvain = 0,
  kLabelPropagation = 1,
  kFastGreedy = 2,
  kInfomap = 3,
};

/// \brief Unified options for all registered algorithms — the superset of
/// the four legacy option structs.
///
/// Fields held in a `std::optional` default to the consuming algorithm's
/// legacy default when unset, so a default-constructed `CommunityOptions`
/// reproduces every legacy `Run*` call bit-for-bit. Per-algorithm mapping
/// (fields not listed are ignored by that algorithm):
///
///   | field               | Louvain | LabelProp | FastGreedy | Infomap |
///   |---------------------|---------|-----------|------------|---------|
///   | seed                | yes     | yes       | —          | yes     |
///   | resolution          | yes (1) | —         | —          | —       |
///   | max_levels          | 64      | —         | —          | 32      |
///   | max_sweeps_per_level| 128     | —         | —          | 64      |
///   | max_iterations      | —       | 100       | —          | —       |
///   | max_merges          | —       | —         | 0 (∞)      | —       |
///   | min_gain            | 1e-9    | —         | 0.0        | —       |
///   | min_improvement     | —       | —         | —          | 1e-10   |
///   | initial_partition   | yes     | yes       | ignored    | ignored |
struct CommunityOptions {
  /// Seed for node-visit shuffling (Louvain, label propagation, Infomap).
  uint64_t seed = 1;
  /// Resolution γ of the modularity objective (Louvain; 1 = paper setting).
  double resolution = 1.0;
  /// Aggregation-level cap. Unset: Louvain 64, Infomap 32.
  std::optional<int> max_levels;
  /// Local-moving sweep cap per level. Unset: Louvain 128, Infomap 64.
  std::optional<int> max_sweeps_per_level;
  /// Full-pass cap for label propagation. Unset: 100.
  std::optional<int> max_iterations;
  /// Merge cap for fast-greedy; 0 means unlimited (legacy behavior).
  size_t max_merges = 0;
  /// Minimum gain to continue. Louvain: modularity gain per level (unset:
  /// 1e-9). FastGreedy: a merge requires ΔQ > min_gain (unset: 0.0).
  std::optional<double> min_gain;
  /// Minimum codelength improvement (bits) per Infomap level (unset: 1e-10).
  std::optional<double> min_improvement;
  /// Warm-start seed: start the algorithm from this partition instead of
  /// singletons (labels need not be dense; a renumbered copy is used).
  /// Louvain seeds its first local-moving phase with it; label
  /// propagation seeds its labels. Fast-greedy and Infomap ignore it.
  /// Must cover exactly the input graph's nodes when set. The streaming
  /// layer threads the previous window's partition through this field
  /// (see stream/incremental_community.h); unset reproduces the cold
  /// start bit for bit.
  std::optional<Partition> initial_partition;
};

/// \brief What `Detect()` should run: which algorithm, with which options.
struct DetectSpec {
  AlgorithmId algorithm = AlgorithmId::kLouvain;
  CommunityOptions options;
};

/// \brief Unified result of any registered algorithm.
///
/// Per-algorithm field population (unused counters stay at their zero
/// defaults):
///   - Louvain: partition, modularity (at the requested resolution),
///     quality = modularity, levels, level_partitions, converged.
///   - LabelPropagation: partition, modularity (γ=1), quality = modularity,
///     iterations, converged.
///   - FastGreedy: partition, modularity (γ=1), quality = modularity,
///     merges, converged.
///   - Infomap: partition, modularity (γ=1), quality = codelength (bits,
///     lower is better), singleton_quality = all-singletons codelength,
///     levels, converged.
struct CommunityResult {
  AlgorithmId algorithm = AlgorithmId::kLouvain;
  /// Final partition over the input graph's nodes (dense labels).
  Partition partition;
  /// Newman modularity of `partition` on the input graph.
  double modularity = 0.0;
  /// The algorithm's own objective on `partition`: modularity for the
  /// modularity-based algorithms, map-equation codelength for Infomap.
  double quality = 0.0;
  /// Reference value of `quality` (Infomap: singleton codelength).
  double singleton_quality = 0.0;
  /// Aggregation levels performed (Louvain, Infomap).
  int levels = 0;
  /// Full passes performed (label propagation).
  int iterations = 0;
  /// Community merges performed (fast-greedy).
  size_t merges = 0;
  /// True when the algorithm stopped because it converged rather than
  /// hitting an iteration/level/merge cap.
  bool converged = false;
  /// Wall-clock time of the run; filled by `Detect()` (zero when a backend
  /// is invoked directly, e.g. through a legacy wrapper).
  double wall_time_ms = 0.0;
  /// Partition of the input nodes at each level, coarsest last (Louvain
  /// only; `level_partitions.back()` equals `partition` when non-empty).
  std::vector<Partition> level_partitions;
};

/// \brief One registry row: identity, canonical name, and the entry point.
struct AlgorithmInfo {
  AlgorithmId id;
  /// Canonical name, accepted by ParseAlgorithm (e.g. "louvain").
  std::string_view name;
  /// One-line human description for tables and --help output.
  std::string_view description;
  /// The backend: validates options, runs, fills the unified result
  /// (everything except wall_time_ms, which Detect() stamps).
  Result<CommunityResult> (*run)(const graphdb::WeightedGraph& graph,
                                 const CommunityOptions& options);
  /// True when the backend honours CommunityOptions::initial_partition.
  /// Capability data lives here (not hard-coded at call sites) so
  /// consumers like the streaming warm-start tracker pick up new
  /// seedable backends without code changes.
  bool supports_warm_start = false;
};

/// \brief All registered algorithms, in stable AlgorithmId order.
std::span<const AlgorithmInfo> AlgorithmRegistry();

/// \brief Ids of all registered algorithms (registry order).
std::vector<AlgorithmId> ListAlgorithms();

/// \brief Canonical name of an algorithm ("louvain", "label_propagation",
/// "fast_greedy", "infomap"). Round-trips through ParseAlgorithm.
std::string_view AlgorithmName(AlgorithmId id);

/// \brief Parses an algorithm name. Matching is case-insensitive and
/// ignores '-', '_', ' ' and '.', and common aliases are accepted
/// ("lpa", "cnm", "infomap-lite", ...). Unknown names return NotFound
/// listing the canonical names.
Result<AlgorithmId> ParseAlgorithm(std::string_view name);

/// \brief The single entry point: runs `spec.algorithm` on `graph` with
/// `spec.options` and stamps the wall time. Invalid option values return
/// InvalidArgument; an id outside the registry returns InvalidArgument.
Result<CommunityResult> Detect(const graphdb::WeightedGraph& graph,
                               const DetectSpec& spec);

namespace internal {

/// Algorithm backends, each implemented next to its legacy entry point
/// (louvain.cc, label_propagation.cc, fast_greedy.cc, infomap.cc). The
/// legacy `Run*` functions are thin wrappers over these, so `Detect()` and
/// the legacy API are bit-identical by construction. Not part of the public
/// surface — call `Detect()` instead. Note: the label-propagation and
/// Infomap backends leave `modularity` unset (their legacy results have no
/// such field); the registry adapters in detector.cc fill it for the
/// unified surface.
Result<CommunityResult> DetectLouvain(const graphdb::WeightedGraph& graph,
                                      const CommunityOptions& options);
Result<CommunityResult> DetectLabelPropagation(
    const graphdb::WeightedGraph& graph, const CommunityOptions& options);
Result<CommunityResult> DetectFastGreedy(const graphdb::WeightedGraph& graph,
                                         const CommunityOptions& options);
Result<CommunityResult> DetectInfomap(const graphdb::WeightedGraph& graph,
                                      const CommunityOptions& options);

}  // namespace internal

}  // namespace bikegraph::community
