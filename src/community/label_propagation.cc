#include "community/label_propagation.h"

#include "core/rng.h"
#include "community/detector.h"

#include "core/checked_cast.h"

namespace bikegraph::community {

namespace internal {

Result<CommunityResult> DetectLabelPropagation(
    const graphdb::WeightedGraph& graph, const CommunityOptions& options) {
  const int max_iterations = options.max_iterations.value_or(100);
  if (max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  CommunityResult result;
  result.algorithm = AlgorithmId::kLabelPropagation;
  const size_t n = graph.node_count();
  result.partition = Partition::Singletons(n);
  if (n == 0) {
    result.converged = true;
    return result;
  }

  Rng rng(options.seed);
  std::vector<int32_t>& labels = result.partition.assignment;
  // Warm start: begin from the seed's (renumbered, hence dense < n)
  // labels instead of singletons. The propagation loop below is
  // unchanged, so an unset seed is bit-identical to the cold start.
  if (options.initial_partition.has_value()) {
    if (options.initial_partition->node_count() != n) {
      return Status::InvalidArgument(
          "initial_partition must cover exactly the graph's nodes");
    }
    Partition seed = *options.initial_partition;
    seed.Renumber();
    labels = std::move(seed.assignment);
  }
  std::vector<int32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<int32_t>(i);

  // Flat vote scratch indexed by label (labels stay < n); reset via the
  // touched list so each node costs O(degree), allocation-free.
  std::vector<double> votes(n, 0.0);
  std::vector<char> seen(n, 0);
  std::vector<int32_t> touched;
  touched.reserve(64);
  for (int iter = 0; iter < max_iterations; ++iter) {
    ++result.iterations;
    rng.Shuffle(&order);
    bool changed = false;
    for (int32_t u : order) {
      auto nbs = graph.neighbors(u);
      if (nbs.empty()) continue;
      for (const auto& nb : nbs) {
        const int32_t l = labels[AsIndex(nb.node)];
        if (!seen[AsIndex(l)]) {
          seen[AsIndex(l)] = 1;
          touched.push_back(l);
        }
        votes[AsIndex(l)] += nb.weight;
      }
      // Exact argmax of (weight, -label): order-independent, so the touched
      // list needs no sorting; scratch reset is fused into the scan.
      int32_t best = labels[AsIndex(u)];
      double best_w = -1.0;
      for (int32_t label : touched) {
        const double w = votes[AsIndex(label)];
        votes[AsIndex(label)] = 0.0;
        seen[AsIndex(label)] = 0;
        if (w > best_w || (w == best_w && label < best)) {
          best_w = w;
          best = label;
        }
      }
      touched.clear();
      if (best != labels[AsIndex(u)]) {
        labels[AsIndex(u)] = best;
        changed = true;
      }
    }
    if (!changed) {
      result.converged = true;
      break;
    }
  }
  result.partition.Renumber();
  // modularity/quality are filled by the registry adapter (detector.cc):
  // label propagation has no native objective, and the legacy wrapper
  // below would only throw the extra O(V+E) scan away.
  return result;
}

}  // namespace internal

Result<LabelPropagationResult> RunLabelPropagation(
    const graphdb::WeightedGraph& graph,
    const LabelPropagationOptions& options) {
  CommunityOptions unified;
  unified.seed = options.seed;
  unified.max_iterations = options.max_iterations;
  BIKEGRAPH_ASSIGN_OR_RETURN(
      CommunityResult detected,
      internal::DetectLabelPropagation(graph, unified));
  LabelPropagationResult result;
  result.partition = std::move(detected.partition);
  result.iterations = detected.iterations;
  result.converged = detected.converged;
  return result;
}

}  // namespace bikegraph::community
