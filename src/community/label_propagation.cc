#include "community/label_propagation.h"

#include <unordered_map>

#include "core/rng.h"

namespace bikegraph::community {

Result<LabelPropagationResult> RunLabelPropagation(
    const graphdb::WeightedGraph& graph,
    const LabelPropagationOptions& options) {
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  LabelPropagationResult result;
  const size_t n = graph.node_count();
  result.partition = Partition::Singletons(n);
  if (n == 0) {
    result.converged = true;
    return result;
  }

  Rng rng(options.seed);
  std::vector<int32_t>& labels = result.partition.assignment;
  std::vector<int32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<int32_t>(i);

  std::unordered_map<int32_t, double> votes;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    rng.Shuffle(&order);
    bool changed = false;
    for (int32_t u : order) {
      auto nbs = graph.neighbors(u);
      if (nbs.empty()) continue;
      votes.clear();
      for (const auto& nb : nbs) votes[labels[nb.node]] += nb.weight;
      int32_t best = labels[u];
      double best_w = -1.0;
      for (const auto& [label, w] : votes) {
        if (w > best_w + 1e-12 ||
            (w > best_w - 1e-12 && label < best)) {
          best_w = w;
          best = label;
        }
      }
      if (best != labels[u]) {
        labels[u] = best;
        changed = true;
      }
    }
    if (!changed) {
      result.converged = true;
      break;
    }
  }
  result.partition.Renumber();
  return result;
}

}  // namespace bikegraph::community
