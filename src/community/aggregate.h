#pragma once

#include "community/partition.h"
#include "graphdb/weighted_graph.h"

namespace bikegraph::community {

/// \brief Coarsens `graph` by `partition`: each community becomes a
/// supernode; inter-community weights are summed onto single edges and
/// intra-community weight (including member self-loops) becomes the
/// supernode's self-loop. Total weight is preserved exactly.
///
/// Requires dense labels (call Partition::Renumber() first).
graphdb::WeightedGraph AggregateByPartition(const graphdb::WeightedGraph& graph,
                                            const Partition& partition);

/// \brief Composes two levels of assignment: node -> fine community ->
/// coarse community.
Partition ComposePartitions(const Partition& fine, const Partition& coarse);

}  // namespace bikegraph::community
