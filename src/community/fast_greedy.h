#pragma once

#include <cstddef>

#include "core/result.h"
#include "community/partition.h"
#include "graphdb/weighted_graph.h"

namespace bikegraph::community {

/// \brief Options for the fast-greedy (CNM) agglomeration. Defaults
/// reproduce the historical parameterless behavior exactly: merge while the
/// best candidate has strictly positive gain, with no merge cap.
struct FastGreedyOptions {
  /// Maximum number of community merges; 0 means unlimited.
  size_t max_merges = 0;
  /// A merge is performed only while the best candidate's ΔQ exceeds this
  /// threshold. Must be finite; 0 reproduces the classic stopping rule.
  double min_gain = 0.0;
};

/// \brief Result of a fast-greedy (CNM) run.
struct FastGreedyResult {
  Partition partition;
  double modularity = 0.0;
  size_t merges = 0;  ///< number of community merges performed
  /// True when the run stopped because no candidate merge beat `min_gain`
  /// (or the heap drained), false when it stopped at `max_merges`.
  bool converged = true;
};

/// \brief Clauset–Newman–Moore greedy modularity agglomeration — the
/// "fast greedy algorithm" used by Zhou's Chicago BSS study the paper
/// builds on (§II).
///
/// Starts from singleton communities and repeatedly merges the pair of
/// connected communities with the largest modularity gain
/// ΔQ(i,j) = 2·(e_ij − a_i·a_j), stopping when no merge has positive gain.
/// Weighted edges and self-loops are supported; complexity is
/// O(E log E) via a lazy min-heap over candidate merges.
Result<FastGreedyResult> RunFastGreedy(const graphdb::WeightedGraph& graph,
                                       const FastGreedyOptions& options = {});

}  // namespace bikegraph::community
