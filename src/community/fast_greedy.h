#pragma once

#include "core/result.h"
#include "community/partition.h"
#include "graphdb/weighted_graph.h"

namespace bikegraph::community {

/// \brief Result of a fast-greedy (CNM) run.
struct FastGreedyResult {
  Partition partition;
  double modularity = 0.0;
  size_t merges = 0;  ///< number of community merges performed
};

/// \brief Clauset–Newman–Moore greedy modularity agglomeration — the
/// "fast greedy algorithm" used by Zhou's Chicago BSS study the paper
/// builds on (§II).
///
/// Starts from singleton communities and repeatedly merges the pair of
/// connected communities with the largest modularity gain
/// ΔQ(i,j) = 2·(e_ij − a_i·a_j), stopping when no merge has positive gain.
/// Weighted edges and self-loops are supported; complexity is
/// O(E log E) via a lazy min-heap over candidate merges.
Result<FastGreedyResult> RunFastGreedy(const graphdb::WeightedGraph& graph);

}  // namespace bikegraph::community
