#include "community/aggregate.h"

#include "core/checked_cast.h"

namespace bikegraph::community {

graphdb::WeightedGraph AggregateByPartition(
    const graphdb::WeightedGraph& graph, const Partition& partition) {
  const size_t k = partition.CommunityCount();
  graphdb::WeightedGraphBuilder builder(k);
  builder.Reserve(graph.edge_count() + graph.self_loop_count());
  for (size_t u = 0; u < graph.node_count(); ++u) {
    const int32_t cu = partition.assignment[u];
    const double self = graph.self_weight(static_cast<int32_t>(u));
    if (self > 0.0) {
      (void)builder.AddEdge(cu, cu, self);
    }
    for (const auto& nb : graph.neighbors(static_cast<int32_t>(u))) {
      if (nb.node < static_cast<int32_t>(u)) continue;  // each pair once
      (void)builder.AddEdge(cu, partition.assignment[AsIndex(nb.node)], nb.weight);
    }
  }
  return builder.Build();
}

Partition ComposePartitions(const Partition& fine, const Partition& coarse) {
  Partition out;
  out.assignment.resize(fine.assignment.size());
  for (size_t u = 0; u < fine.assignment.size(); ++u) {
    out.assignment[u] = coarse.assignment[AsIndex(fine.assignment[u])];
  }
  return out;
}

}  // namespace bikegraph::community
