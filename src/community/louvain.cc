#include "community/louvain.h"

#include <cmath>

#include "core/rng.h"
#include "community/aggregate.h"
#include "community/detector.h"
#include "community/modularity.h"

#include "core/checked_cast.h"

namespace bikegraph::community {

namespace {

using graphdb::WeightedGraph;
using graphdb::WeightedGraphBuilder;

/// One local-moving phase. Returns the (renumbered) partition and whether
/// any node moved.
struct LocalMoveOutcome {
  Partition partition;
  bool improved = false;
};

/// `seed_assignment` (optional) warm-starts the phase: communities begin
/// as the seed's (dense-labelled) groups instead of singletons. Null
/// keeps the cold-start path untouched.
LocalMoveOutcome LocalMoving(const WeightedGraph& g, int max_sweeps,
                             double resolution, Rng* rng,
                             const std::vector<int32_t>* seed_assignment) {
  const size_t n = g.node_count();
  const double m = g.total_weight();
  LocalMoveOutcome out;
  out.partition = Partition::Singletons(n);
  if (n == 0 || m <= 0.0) return out;

  std::vector<int32_t>& comm = out.partition.assignment;
  // Σ_tot per community (summed strengths).
  std::vector<double> sigma_tot(n);
  if (seed_assignment == nullptr) {
    for (size_t u = 0; u < n; ++u) {
      sigma_tot[u] = g.strength(static_cast<int32_t>(u));
    }
  } else {
    comm = *seed_assignment;
    std::fill(sigma_tot.begin(), sigma_tot.end(), 0.0);
    for (size_t u = 0; u < n; ++u) {
      sigma_tot[AsIndex(comm[u])] += g.strength(static_cast<int32_t>(u));
    }
  }

  std::vector<int32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<int32_t>(i);
  rng->Shuffle(&order);

  // Flat scratch: weight from the current node to each neighbouring
  // community, indexed by community label (always < n). Only the entries in
  // `touched` are live; they are reset after every node, so the cost per
  // node is O(degree), not O(n).
  std::vector<double> w_to_comm(n, 0.0);
  std::vector<char> comm_seen(n, 0);
  std::vector<int32_t> touched;
  touched.reserve(64);
  const double inv_two_m = 1.0 / (2.0 * m);

  // Pruned local moving: after the initial shuffled pass, only nodes whose
  // neighbourhood changed are re-evaluated (a ring-buffer work queue instead
  // of full sweeps — the standard Louvain pruning). The evaluation budget
  // matches the seed's sweep cap.
  std::vector<int32_t> queue(order);
  std::vector<char> in_queue(n, 1);
  size_t head = 0;
  size_t budget = static_cast<size_t>(max_sweeps) * n;

  bool any_move_ever = false;
  while (head < queue.size() && budget > 0) {
    --budget;
    const int32_t u = queue[head++];
    // Recycle consumed prefix storage once it dominates the buffer.
    if (head >= 16384 && head * 2 >= queue.size()) {
      queue.erase(queue.begin(), queue.begin() + static_cast<long>(head));
      head = 0;
    }
    in_queue[AsIndex(u)] = 0;

    const int32_t cu = comm[AsIndex(u)];
    const double k_u = g.strength(u);

    comm_seen[AsIndex(cu)] = 1;  // ensure current community is a candidate
    touched.push_back(cu);
    for (const auto& nb : g.neighbors(u)) {
      const int32_t c = comm[AsIndex(nb.node)];
      if (!comm_seen[AsIndex(c)]) {
        comm_seen[AsIndex(c)] = 1;
        touched.push_back(c);
      }
      w_to_comm[AsIndex(c)] += nb.weight;
    }

    // Remove u from its community.
    sigma_tot[AsIndex(cu)] -= k_u;

    // Gain of joining community c:
    //   ΔQ ∝ w(u→c) − γ · k_u · Σ_tot(c) / 2m
    // (constant terms w.r.t. the choice of c are dropped).
    // The winner is the exact argmax of (gain, -label) among communities
    // strictly better than staying — an order-independent rule, so the
    // touched list needs no sorting. Scratch reset is fused into the scan.
    const double ku_res = resolution * k_u * inv_two_m;
    const double stay_gain = w_to_comm[AsIndex(cu)] - ku_res * sigma_tot[AsIndex(cu)];
    int32_t best_comm = cu;
    double best_gain = stay_gain;
    for (int32_t c : touched) {
      const double w_uc = w_to_comm[AsIndex(c)];
      w_to_comm[AsIndex(c)] = 0.0;
      comm_seen[AsIndex(c)] = 0;
      if (c == cu) continue;
      const double gain = w_uc - ku_res * sigma_tot[AsIndex(c)];
      if (gain > best_gain ||
          (gain == best_gain && gain > stay_gain && c < best_comm)) {
        best_gain = gain;
        best_comm = c;
      }
    }
    touched.clear();

    sigma_tot[AsIndex(best_comm)] += k_u;
    if (best_comm != cu) {
      comm[AsIndex(u)] = best_comm;
      any_move_ever = true;
      // Re-evaluate neighbours outside the destination community — members
      // of best_comm only gained an ally, so they have no new reason to
      // leave (the standard Louvain pruning rule).
      for (const auto& nb : g.neighbors(u)) {
        if (comm[AsIndex(nb.node)] != best_comm && !in_queue[AsIndex(nb.node)]) {
          in_queue[AsIndex(nb.node)] = 1;
          queue.push_back(nb.node);
        }
      }
    }
  }
  out.partition.Renumber();
  out.improved = any_move_ever;
  return out;
}

}  // namespace

namespace internal {

Result<CommunityResult> DetectLouvain(const graphdb::WeightedGraph& graph,
                                      const CommunityOptions& options) {
  if (!std::isfinite(options.resolution) || options.resolution <= 0.0) {
    return Status::InvalidArgument("resolution must be positive and finite");
  }
  const int max_levels = options.max_levels.value_or(64);
  const int max_sweeps = options.max_sweeps_per_level.value_or(128);
  const double min_gain = options.min_gain.value_or(1e-9);
  if (!std::isfinite(min_gain)) {
    return Status::InvalidArgument("min_gain must be finite");
  }

  CommunityResult result;
  result.algorithm = AlgorithmId::kLouvain;
  const size_t n = graph.node_count();
  result.partition = Partition::Singletons(n);
  if (n == 0) {
    result.converged = true;
    return result;
  }

  // Warm start: the first local-moving phase begins from the seed's
  // communities. The seed is only a starting point — every move still
  // requires a strict modularity improvement, and a seed that scores no
  // better than singletons is discarded by the level-acceptance test
  // below. Empty graphs (m = 0) have nothing to move, so seeding is
  // skipped there and the cold path answers.
  Partition seed;
  bool seeded = false;
  if (options.initial_partition.has_value()) {
    if (options.initial_partition->node_count() != n) {
      return Status::InvalidArgument(
          "initial_partition must cover exactly the graph's nodes");
    }
    if (graph.total_weight() > 0.0) {
      seed = *options.initial_partition;
      seed.Renumber();
      seeded = true;
    }
  }

  Rng rng(options.seed);
  // The first level runs on the input graph directly (no copy); aggregated
  // levels own their shrinking graphs.
  const WeightedGraph* level_graph = &graph;
  WeightedGraph owned_level;
  Partition cumulative = Partition::Singletons(n);
  double best_q = Modularity(graph, cumulative, options.resolution);

  bool converged = false;
  for (int level = 0; level < max_levels; ++level) {
    const bool seed_level = seeded && level == 0;
    LocalMoveOutcome outcome =
        LocalMoving(*level_graph, max_sweeps, options.resolution, &rng,
                    seed_level ? &seed.assignment : nullptr);
    // A seeded first level is scored even when no node moved: the seed
    // itself may already beat singletons, and bailing here would throw
    // the warm start away.
    if (!outcome.improved && !seed_level) {
      converged = true;
      break;
    }
    Partition candidate = ComposePartitions(cumulative, outcome.partition);
    candidate.Renumber();
    // Modularity is invariant under aggregation (self-loops and strengths
    // are preserved), so score the level partition on the small level graph
    // instead of rescanning the full input graph.
    const double q =
        Modularity(*level_graph, outcome.partition, options.resolution);
    if (q <= best_q + min_gain) {
      converged = true;
      break;
    }
    best_q = q;
    cumulative = candidate;
    result.level_partitions.push_back(candidate);
    ++result.levels;
    if (outcome.partition.CommunityCount() == level_graph->node_count()) {
      converged = true;  // no aggregation possible
      break;
    }
    owned_level = AggregateByPartition(*level_graph, outcome.partition);
    level_graph = &owned_level;
  }
  result.converged = converged;

  result.partition = cumulative;
  result.partition.Renumber();
  result.modularity = Modularity(graph, result.partition, options.resolution);
  result.quality = result.modularity;
  return result;
}

}  // namespace internal

Result<LouvainResult> RunLouvain(const graphdb::WeightedGraph& graph,
                                 const LouvainOptions& options) {
  CommunityOptions unified;
  unified.seed = options.seed;
  unified.resolution = options.resolution;
  unified.max_levels = options.max_levels;
  unified.max_sweeps_per_level = options.max_sweeps_per_level;
  unified.min_gain = options.min_gain;
  BIKEGRAPH_ASSIGN_OR_RETURN(CommunityResult detected,
                             internal::DetectLouvain(graph, unified));
  LouvainResult result;
  result.partition = std::move(detected.partition);
  result.modularity = detected.modularity;
  result.levels = detected.levels;
  result.level_partitions = std::move(detected.level_partitions);
  return result;
}

}  // namespace bikegraph::community
