#include "community/louvain.h"

#include <cmath>
#include <unordered_map>

#include "core/rng.h"
#include "community/aggregate.h"
#include "community/modularity.h"

namespace bikegraph::community {

namespace {

using graphdb::WeightedGraph;
using graphdb::WeightedGraphBuilder;

/// One local-moving phase. Returns the (renumbered) partition and whether
/// any node moved.
struct LocalMoveOutcome {
  Partition partition;
  bool improved = false;
};

LocalMoveOutcome LocalMoving(const WeightedGraph& g,
                             const LouvainOptions& options, Rng* rng) {
  const size_t n = g.node_count();
  const double m = g.total_weight();
  LocalMoveOutcome out;
  out.partition = Partition::Singletons(n);
  if (n == 0 || m <= 0.0) return out;

  std::vector<int32_t>& comm = out.partition.assignment;
  // Σ_tot per community (summed strengths).
  std::vector<double> sigma_tot(n);
  for (size_t u = 0; u < n; ++u) {
    sigma_tot[u] = g.strength(static_cast<int32_t>(u));
  }

  std::vector<int32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<int32_t>(i);
  rng->Shuffle(&order);

  // Scratch: weight from the current node to each neighbouring community.
  std::unordered_map<int32_t, double> w_to_comm;
  const double two_m = 2.0 * m;

  bool any_move_ever = false;
  for (int sweep = 0; sweep < options.max_sweeps_per_level; ++sweep) {
    bool moved_this_sweep = false;
    for (int32_t u : order) {
      const int32_t cu = comm[u];
      const double k_u = g.strength(u);

      w_to_comm.clear();
      w_to_comm[cu];  // ensure current community is a candidate
      for (const auto& nb : g.neighbors(u)) {
        w_to_comm[comm[nb.node]] += nb.weight;
      }

      // Remove u from its community.
      sigma_tot[cu] -= k_u;

      // Gain of joining community c:
      //   ΔQ ∝ w(u→c) − γ · k_u · Σ_tot(c) / 2m
      // (constant terms w.r.t. the choice of c are dropped).
      int32_t best_comm = cu;
      double best_gain = w_to_comm[cu] -
                         options.resolution * k_u * sigma_tot[cu] / two_m;
      // Strictly-better gain wins; near-ties break to the smaller label for
      // determinism across platforms.
      for (const auto& [c, w_uc] : w_to_comm) {
        if (c == cu) continue;
        double gain =
            w_uc - options.resolution * k_u * sigma_tot[c] / two_m;
        const bool better = gain > best_gain + 1e-12;
        const bool tie = std::abs(gain - best_gain) <= 1e-12 && c < best_comm;
        if (better || tie) {
          if (gain > best_gain) best_gain = gain;
          best_comm = c;
        }
      }

      sigma_tot[best_comm] += k_u;
      if (best_comm != cu) {
        comm[u] = best_comm;
        moved_this_sweep = true;
        any_move_ever = true;
      }
    }
    if (!moved_this_sweep) break;
  }
  out.partition.Renumber();
  out.improved = any_move_ever;
  return out;
}

}  // namespace

Result<LouvainResult> RunLouvain(const graphdb::WeightedGraph& graph,
                                 const LouvainOptions& options) {
  if (options.resolution <= 0.0) {
    return Status::InvalidArgument("resolution must be positive");
  }
  LouvainResult result;
  const size_t n = graph.node_count();
  result.partition = Partition::Singletons(n);
  if (n == 0) return result;

  Rng rng(options.seed);
  WeightedGraph level_graph = graph;  // copy; levels shrink quickly
  Partition cumulative = Partition::Singletons(n);
  double best_q = Modularity(graph, cumulative, options.resolution);

  for (int level = 0; level < options.max_levels; ++level) {
    LocalMoveOutcome outcome = LocalMoving(level_graph, options, &rng);
    if (!outcome.improved) break;
    Partition candidate = ComposePartitions(cumulative, outcome.partition);
    candidate.Renumber();
    const double q = Modularity(graph, candidate, options.resolution);
    if (q <= best_q + options.min_gain) break;
    best_q = q;
    cumulative = candidate;
    result.level_partitions.push_back(candidate);
    ++result.levels;
    if (outcome.partition.CommunityCount() == level_graph.node_count()) {
      break;  // no aggregation possible
    }
    level_graph = AggregateByPartition(level_graph, outcome.partition);
  }

  result.partition = cumulative;
  result.partition.Renumber();
  result.modularity = Modularity(graph, result.partition, options.resolution);
  return result;
}

}  // namespace bikegraph::community
