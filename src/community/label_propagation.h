#pragma once

#include <cstdint>

#include "core/result.h"
#include "community/partition.h"
#include "graphdb/weighted_graph.h"

namespace bikegraph::community {

/// \brief Options for asynchronous Label Propagation (Raghavan et al. 2007),
/// one of the comparison algorithms the paper recommends as future work.
struct LabelPropagationOptions {
  uint64_t seed = 1;
  /// Maximum full passes over the node set.
  int max_iterations = 100;
};

/// \brief Result of a label-propagation run.
struct LabelPropagationResult {
  Partition partition;
  int iterations = 0;   ///< passes actually performed
  bool converged = false;
};

/// \brief Asynchronous weighted label propagation: each node repeatedly
/// adopts the label with the largest summed incident edge weight among its
/// neighbours (ties broken by smaller label; visit order shuffled by seed).
/// Terminates when a full pass changes no label.
Result<LabelPropagationResult> RunLabelPropagation(
    const graphdb::WeightedGraph& graph,
    const LabelPropagationOptions& options = {});

}  // namespace bikegraph::community
