#include "community/fast_greedy.h"

#include <cmath>
#include <queue>

#include "community/detector.h"
#include "community/modularity.h"

#include "core/checked_cast.h"

namespace bikegraph::community {

namespace internal {

Result<CommunityResult> DetectFastGreedy(const graphdb::WeightedGraph& graph,
                                         const CommunityOptions& options) {
  const double min_gain = options.min_gain.value_or(0.0);
  if (!std::isfinite(min_gain)) {
    return Status::InvalidArgument("min_gain must be finite");
  }
  CommunityResult result;
  result.algorithm = AlgorithmId::kFastGreedy;
  result.converged = true;
  const size_t n = graph.node_count();
  result.partition = Partition::Singletons(n);
  if (n == 0) return result;
  const double m = graph.total_weight();
  if (m <= 0.0) {
    result.modularity = 0.0;
    return result;
  }
  const double two_m = 2.0 * m;
  const size_t merge_cap =
      options.max_merges == 0 ? static_cast<size_t>(-1) : options.max_merges;

  // Community slots: 0..n-1 singletons; merges append, so there are at most
  // 2n-1 slots over the whole run. e_ij = w_ij / 2m between distinct
  // communities; a_i = strength_i / 2m.
  //
  // Per-slot neighbour lists are flat (slot, weight) vectors. Entries
  // pointing at deactivated slots are skipped on read instead of erased
  // (lazy deletion): a slot id is never reused, so at most one entry per
  // list refers to any active slot.
  struct Entry {
    int32_t slot;
    double e;
  };
  const size_t max_slots = 2 * n;
  std::vector<std::vector<Entry>> e(n);
  std::vector<double> a(n);
  std::vector<bool> active(n, true);
  e.reserve(max_slots);
  a.reserve(max_slots);
  active.reserve(max_slots);
  for (size_t u = 0; u < n; ++u) {
    a[u] = graph.strength(static_cast<int32_t>(u)) / two_m;
    auto nbs = graph.neighbors(static_cast<int32_t>(u));
    e[u].reserve(nbs.size());
    for (const auto& nb : nbs) {
      e[u].push_back(Entry{nb.node, nb.weight / two_m});
    }
  }

  struct Candidate {
    double gain;
    int32_t a, b;
    bool operator<(const Candidate& o) const {
      if (gain != o.gain) return gain < o.gain;  // max-heap by gain
      if (a != o.a) return a > o.a;
      return b > o.b;
    }
  };
  std::priority_queue<Candidate> heap;
  auto delta_q = [&](int32_t i, int32_t j, double eij) {
    return 2.0 * (eij - a[AsIndex(i)] * a[AsIndex(j)]);
  };
  for (size_t u = 0; u < n; ++u) {
    for (const auto& [v, euv] : e[u]) {
      if (v <= static_cast<int32_t>(u)) continue;
      heap.push(Candidate{delta_q(static_cast<int32_t>(u), v, euv),
                          static_cast<int32_t>(u), v});
    }
  }

  // Union-find over slots.
  std::vector<int32_t> parent(n);
  parent.reserve(max_slots);
  for (size_t i = 0; i < n; ++i) parent[i] = static_cast<int32_t>(i);
  auto find = [&](int32_t x) {
    while (parent[AsIndex(x)] != x) {
      parent[AsIndex(x)] = parent[AsIndex(parent[AsIndex(x)])];
      x = parent[AsIndex(x)];
    }
    return x;
  };

  // Flat merge scratch, reset through the touched list after every merge.
  std::vector<double> acc(max_slots, 0.0);
  std::vector<char> seen(max_slots, 0);
  std::vector<int32_t> touched;
  touched.reserve(64);

  while (!heap.empty()) {
    Candidate top = heap.top();
    heap.pop();
    if (!active[AsIndex(top.a)] || !active[AsIndex(top.b)]) continue;
    // Gains of surviving pairs never change (e_ij and a_i are only touched
    // by merges that deactivate a slot), so an entry is fresh iff both
    // slots are active.
    if (top.gain <= min_gain) break;
    // Cap check only once a profitable merge is actually on deck, so a cap
    // equal to the natural merge count still reports convergence.
    if (result.merges >= merge_cap) {
      result.converged = false;  // stopped by the cap, not by gain exhaustion
      break;
    }

    const int32_t i = top.a, j = top.b;
    const int32_t c = static_cast<int32_t>(e.size());
    active[AsIndex(i)] = active[AsIndex(j)] = false;
    active.push_back(true);
    parent.push_back(c);
    parent[AsIndex(find(i))] = c;
    parent[AsIndex(find(j))] = c;
    ++result.merges;

    touched.clear();
    for (const auto& src : {i, j}) {
      for (const auto& [k, eik] : e[AsIndex(src)]) {
        if (k == i || k == j) continue;
        if (!active[AsIndex(k)]) continue;
        if (!seen[AsIndex(k)]) {
          seen[AsIndex(k)] = 1;
          touched.push_back(k);
        }
        acc[AsIndex(k)] += eik;
      }
    }
    a.push_back(a[AsIndex(i)] + a[AsIndex(j)]);
    std::vector<Entry> merged;
    merged.reserve(touched.size());
    for (int32_t k : touched) {
      merged.push_back(Entry{k, acc[AsIndex(k)]});
      acc[AsIndex(k)] = 0.0;
      seen[AsIndex(k)] = 0;
    }
    e.push_back(std::move(merged));
    for (const auto& [k, eck] : e[AsIndex(c)]) {
      e[AsIndex(k)].push_back(Entry{c, eck});  // i/j leftovers are skipped lazily
      heap.push(Candidate{delta_q(std::min(c, k), std::max(c, k), eck),
                          std::min(c, k), std::max(c, k)});
    }
    e[AsIndex(i)].clear();
    e[AsIndex(i)].shrink_to_fit();
    e[AsIndex(j)].clear();
    e[AsIndex(j)].shrink_to_fit();
  }

  // Labels for original nodes.
  std::vector<int32_t>& labels = result.partition.assignment;
  for (size_t u = 0; u < n; ++u) labels[u] = find(static_cast<int32_t>(u));
  result.partition.Renumber();
  result.modularity = Modularity(graph, result.partition);
  result.quality = result.modularity;
  return result;
}

}  // namespace internal

Result<FastGreedyResult> RunFastGreedy(const graphdb::WeightedGraph& graph,
                                       const FastGreedyOptions& options) {
  CommunityOptions unified;
  unified.max_merges = options.max_merges;
  unified.min_gain = options.min_gain;
  BIKEGRAPH_ASSIGN_OR_RETURN(CommunityResult detected,
                             internal::DetectFastGreedy(graph, unified));
  FastGreedyResult result;
  result.partition = std::move(detected.partition);
  result.modularity = detected.modularity;
  result.merges = detected.merges;
  result.converged = detected.converged;
  return result;
}

}  // namespace bikegraph::community
