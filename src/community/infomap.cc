#include "community/infomap.h"

#include <cmath>
#include <unordered_map>

#include "core/rng.h"
#include "community/aggregate.h"
#include "community/detector.h"

#include "core/checked_cast.h"

namespace bikegraph::community {

namespace {

using graphdb::WeightedGraph;

double PLogP(double x) { return x > 0.0 ? x * std::log2(x) : 0.0; }

/// Module-level flow statistics for a partition.
struct Flows {
  std::vector<double> q;   ///< exit probability per module
  std::vector<double> pm;  ///< Σ p_i per module
  double sum_q = 0.0;
};

Flows ComputeFlows(const WeightedGraph& g, const std::vector<int32_t>& comm,
                   size_t k) {
  Flows f;
  f.q.assign(k, 0.0);
  f.pm.assign(k, 0.0);
  const double two_m = 2.0 * g.total_weight();
  for (size_t u = 0; u < g.node_count(); ++u) {
    const int32_t cu = comm[u];
    f.pm[AsIndex(cu)] += g.strength(static_cast<int32_t>(u)) / two_m;
    for (const auto& nb : g.neighbors(static_cast<int32_t>(u))) {
      if (comm[AsIndex(nb.node)] != cu) f.q[AsIndex(cu)] += nb.weight / two_m;
    }
  }
  for (double v : f.q) f.sum_q += v;
  return f;
}

/// Codelength from flow statistics plus the node-entropy constant.
double CodelengthFromFlows(const Flows& f, double node_entropy_term) {
  double L = PLogP(f.sum_q) - node_entropy_term;
  for (size_t c = 0; c < f.q.size(); ++c) {
    L += -2.0 * PLogP(f.q[c]) + PLogP(f.q[c] + f.pm[c]);
  }
  return L;
}

double NodeEntropyTerm(const WeightedGraph& g) {
  const double two_m = 2.0 * g.total_weight();
  double t = 0.0;
  for (size_t u = 0; u < g.node_count(); ++u) {
    t += PLogP(g.strength(static_cast<int32_t>(u)) / two_m);
  }
  return t;
}

/// One local-moving phase minimising the two-level map equation.
struct LocalMoveOutcome {
  Partition partition;
  bool improved = false;
};

LocalMoveOutcome LocalMoving(const WeightedGraph& g, int max_sweeps,
                             Rng* rng) {
  const size_t n = g.node_count();
  LocalMoveOutcome out;
  out.partition = Partition::Singletons(n);
  const double m = g.total_weight();
  if (n == 0 || m <= 0.0) return out;
  const double two_m = 2.0 * m;

  std::vector<int32_t>& comm = out.partition.assignment;
  Flows f = ComputeFlows(g, comm, n);

  std::vector<int32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<int32_t>(i);
  rng->Shuffle(&order);

  std::unordered_map<int32_t, double> w_to_comm;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool moved = false;
    for (int32_t u : order) {
      const int32_t cu = comm[AsIndex(u)];
      const double p_u = g.strength(u) / two_m;
      const double omega_total =
          (g.strength(u) - 2.0 * g.self_weight(u)) / two_m;

      w_to_comm.clear();
      for (const auto& nb : g.neighbors(u)) {
        w_to_comm[comm[AsIndex(nb.node)]] += nb.weight / two_m;
      }
      const double omega_to_cu = w_to_comm.count(cu) ? w_to_comm[cu] : 0.0;

      // Candidate evaluation: ΔL of moving u from cu to c.
      const double q_cu_removed = f.q[AsIndex(cu)] - omega_total + 2.0 * omega_to_cu;
      int32_t best_comm = cu;
      double best_delta = 0.0;
      // lint: unordered-iter-ok: visit order can break exact ΔL
      // ties; deterministic for a fixed stdlib and locked
      // bit-identical against the legacy backend by
      // community_detector_test. Sorted-candidate iteration is a
      // behavior-changing ROADMAP item.
      for (const auto& [c, omega_to_c] : w_to_comm) {
        if (c == cu) continue;
        const double q_c_added = f.q[AsIndex(c)] + omega_total - 2.0 * omega_to_c;
        const double sum_q2 =
            f.sum_q - f.q[AsIndex(cu)] - f.q[AsIndex(c)] + q_cu_removed + q_c_added;
        double delta = PLogP(sum_q2) - PLogP(f.sum_q);
        delta += -2.0 * (PLogP(q_cu_removed) + PLogP(q_c_added) -
                         PLogP(f.q[AsIndex(cu)]) - PLogP(f.q[AsIndex(c)]));
        delta += PLogP(q_cu_removed + f.pm[AsIndex(cu)] - p_u) +
                 PLogP(q_c_added + f.pm[AsIndex(c)] + p_u) -
                 PLogP(f.q[AsIndex(cu)] + f.pm[AsIndex(cu)]) - PLogP(f.q[AsIndex(c)] + f.pm[AsIndex(c)]);
        if (delta < best_delta - 1e-12 ||
            (delta < best_delta + 1e-12 && delta < -1e-12 &&
             c < best_comm)) {
          best_delta = delta;
          best_comm = c;
        }
      }
      if (best_comm != cu) {
        const double omega_to_best = w_to_comm[best_comm];
        f.sum_q += -f.q[AsIndex(cu)] - f.q[AsIndex(best_comm)] + q_cu_removed +
                   (f.q[AsIndex(best_comm)] + omega_total - 2.0 * omega_to_best);
        f.q[AsIndex(best_comm)] += omega_total - 2.0 * omega_to_best;
        f.q[AsIndex(cu)] = q_cu_removed;
        f.pm[AsIndex(cu)] -= p_u;
        f.pm[AsIndex(best_comm)] += p_u;
        comm[AsIndex(u)] = best_comm;
        moved = true;
        out.improved = true;
      }
    }
    if (!moved) break;
  }
  out.partition.Renumber();
  return out;
}

}  // namespace

double MapEquationCodelength(const graphdb::WeightedGraph& graph,
                             const Partition& partition) {
  if (graph.node_count() == 0 || graph.total_weight() <= 0.0) return 0.0;
  Flows f = ComputeFlows(graph, partition.assignment,
                         partition.CommunityCount());
  return CodelengthFromFlows(f, NodeEntropyTerm(graph));
}

namespace internal {

Result<CommunityResult> DetectInfomap(const graphdb::WeightedGraph& graph,
                                      const CommunityOptions& options) {
  const int max_levels = options.max_levels.value_or(32);
  const int max_sweeps = options.max_sweeps_per_level.value_or(64);
  const double min_improvement = options.min_improvement.value_or(1e-10);
  if (max_levels <= 0 || max_sweeps <= 0) {
    return Status::InvalidArgument("iteration limits must be positive");
  }
  if (!std::isfinite(min_improvement)) {
    return Status::InvalidArgument("min_improvement must be finite");
  }
  CommunityResult result;
  result.algorithm = AlgorithmId::kInfomap;
  const size_t n = graph.node_count();
  result.partition = Partition::Singletons(n);
  if (n == 0) {
    result.converged = true;
    return result;
  }

  result.singleton_quality = MapEquationCodelength(graph, result.partition);

  Rng rng(options.seed);
  WeightedGraph level_graph = graph;
  Partition cumulative = Partition::Singletons(n);
  double best_len = result.singleton_quality;

  bool converged = false;
  for (int level = 0; level < max_levels; ++level) {
    LocalMoveOutcome outcome = LocalMoving(level_graph, max_sweeps, &rng);
    if (!outcome.improved) {
      converged = true;
      break;
    }
    Partition candidate = ComposePartitions(cumulative, outcome.partition);
    candidate.Renumber();
    const double len = MapEquationCodelength(graph, candidate);
    if (len >= best_len - min_improvement) {
      converged = true;
      break;
    }
    best_len = len;
    cumulative = candidate;
    ++result.levels;
    if (outcome.partition.CommunityCount() == level_graph.node_count()) {
      converged = true;
      break;
    }
    level_graph = AggregateByPartition(level_graph, outcome.partition);
  }
  result.converged = converged;

  result.partition = cumulative;
  result.partition.Renumber();
  result.quality = MapEquationCodelength(graph, result.partition);
  // modularity is filled by the registry adapter (detector.cc); the legacy
  // wrapper below has no field for it.
  return result;
}

}  // namespace internal

Result<InfomapResult> RunInfomapLite(const graphdb::WeightedGraph& graph,
                                     const InfomapOptions& options) {
  CommunityOptions unified;
  unified.seed = options.seed;
  unified.max_levels = options.max_levels;
  unified.max_sweeps_per_level = options.max_sweeps_per_level;
  unified.min_improvement = options.min_improvement;
  BIKEGRAPH_ASSIGN_OR_RETURN(CommunityResult detected,
                             internal::DetectInfomap(graph, unified));
  InfomapResult result;
  result.partition = std::move(detected.partition);
  result.codelength = detected.quality;
  result.singleton_codelength = detected.singleton_quality;
  result.levels = detected.levels;
  return result;
}

}  // namespace bikegraph::community
