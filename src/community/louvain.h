#pragma once

#include <cstdint>
#include <vector>

#include "core/result.h"
#include "community/partition.h"
#include "graphdb/weighted_graph.h"

namespace bikegraph::community {

/// \brief Options for the Louvain algorithm.
struct LouvainOptions {
  /// Seed for the node-visit shuffling in the local-moving phase. Louvain
  /// output can depend on visit order; fixing the seed makes runs
  /// reproducible (the paper's experiments rely on one such run).
  uint64_t seed = 1;
  /// Resolution γ of the modularity objective (1 = paper setting).
  double resolution = 1.0;
  /// Safety caps; defaults are far above practical convergence.
  int max_levels = 64;
  int max_sweeps_per_level = 128;
  /// Minimum total modularity gain for a level to count as an improvement.
  double min_gain = 1e-9;
};

/// \brief Result of a Louvain run.
struct LouvainResult {
  /// Final partition over the input graph's nodes (dense labels).
  Partition partition;
  /// Modularity of `partition` on the input graph.
  double modularity = 0.0;
  /// Number of aggregation levels performed (hierarchy depth).
  int levels = 0;
  /// Partition of the input nodes at each level, coarsest last
  /// (`level_partitions.back()` equals `partition`).
  std::vector<Partition> level_partitions;
};

/// \brief Multi-level Louvain community detection (Blondel et al. 2008) —
/// the algorithm the paper runs via the Neo4j GDS library.
///
/// Phase 1 (local moving) repeatedly moves nodes to the neighbouring
/// community with the largest positive modularity gain; phase 2 aggregates
/// communities into supernodes (intra-community weight becomes a self-loop)
/// and recurses. Weighted edges and self-loops are handled throughout.
Result<LouvainResult> RunLouvain(const graphdb::WeightedGraph& graph,
                                 const LouvainOptions& options = {});

}  // namespace bikegraph::community
