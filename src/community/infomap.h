#pragma once

#include <cstdint>

#include "core/result.h"
#include "community/partition.h"
#include "graphdb/weighted_graph.h"

namespace bikegraph::community {

/// \brief Options for the two-level map-equation optimiser.
struct InfomapOptions {
  uint64_t seed = 1;
  int max_levels = 32;
  int max_sweeps_per_level = 64;
  /// Minimum codelength improvement (bits) to accept a level.
  double min_improvement = 1e-10;
};

/// \brief Result of an Infomap-lite run.
struct InfomapResult {
  Partition partition;
  /// Two-level map-equation codelength (bits per step) of `partition`.
  double codelength = 0.0;
  /// Codelength of the all-singletons partition, for reference.
  double singleton_codelength = 0.0;
  int levels = 0;
};

/// \brief Two-level map-equation codelength L(M) of a partition on an
/// undirected graph (Rosvall & Bergstrom 2008), with node visit rates
/// proportional to strength (no teleportation):
///
///   L = plogp(Σ_M q_M) − 2·Σ_M plogp(q_M) − Σ_i plogp(p_i)
///       + Σ_M plogp(q_M + Σ_{i∈M} p_i)
///
/// where p_i = strength_i / 2m and q_M is the probability of exiting
/// module M. Lower is better.
double MapEquationCodelength(const graphdb::WeightedGraph& graph,
                             const Partition& partition);

/// \brief "Infomap-lite": optimises the two-level map equation with
/// Louvain-style local moving + aggregation. This is a faithful two-level
/// variant of the Infomap algorithm the paper lists as future-work
/// comparison (the full Infomap adds multi-level codebooks and fine-tuning
/// passes that rarely change two-level results on small graphs).
Result<InfomapResult> RunInfomapLite(const graphdb::WeightedGraph& graph,
                                     const InfomapOptions& options = {});

}  // namespace bikegraph::community
